//===- simtsr-torture.cpp - Differential torture harness driver ---------------===//
///
/// \file
/// Command-line driver for the fuzz subsystem: generates seeded random
/// divergent kernels, runs each through the differential oracle (every
/// pipeline configuration under every scheduler policy), shrinks any
/// failure to a minimal repro, and writes the repro as a replayable `.sir`
/// file with the failure context in its header comments.
///
/// Repro files land in --repro-dir (default: the working directory;
/// --out is the pre-unification alias). tests/repros/ keeps the checked-in
/// corpus of historical repros replayed by the regression suite.
///
/// Exit codes: 0 on a clean sweep (or, with --expect-caught, when at least
/// one failure was caught); 1 on usage errors; 2 when unexpected failures
/// were found (or --expect-caught found none).
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "fuzz/KernelGen.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"
#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

struct TortureOptions {
  uint64_t Seeds = 100;
  std::string ReproDir = ".";
  std::string ReplayFile;
  bool ExpectCaught = false;
  bool NoShrink = false;
  bool Verbose = false;
  /// --progress-sweep: fair/hsa/obe/bounded:4 per seed, weak-model
  /// livelocks classified instead of failed.
  bool ProgressSweep = false;
  OracleOptions Oracle;
  ShrinkOptions Shrink;
};

/// The model axis a --progress-sweep run exercises: every guarantee the
/// simulator implements, weakest conforming scheduler each.
std::vector<ProgressSpec> sweepModels() {
  std::vector<ProgressSpec> Models = {ProgressSpec{}};
  for (const char *Name : {"hsa", "obe", "bounded:4"}) {
    ProgressSpec S;
    parseProgressSpec(Name, S);
    Models.push_back(S);
  }
  return Models;
}

/// True when the oracle runs more than the legacy fair-only axis — the
/// cue to extend repro headers, the summary line and the JSON payload
/// (all byte-identical to the legacy output otherwise).
bool progressAxisActive(const TortureOptions &Opts) {
  return Opts.Oracle.ProgressModels.size() > 1;
}

std::string progressAxisString(const TortureOptions &Opts) {
  std::string S;
  for (const ProgressSpec &PS : Opts.Oracle.ProgressModels) {
    if (!S.empty())
      S += ",";
    S += formatProgressSpec(PS);
  }
  return S;
}

int replay(const TortureOptions &Opts) {
  std::string Text, Error;
  if (!driver::readFileToString(Opts.ReplayFile, Text, Error)) {
    std::fprintf(stderr, "simtsr-torture: %s\n", Error.c_str());
    return 1;
  }
  OracleResult R = runDifferentialOracle(Text, Opts.Oracle);
  if (R.ok()) {
    std::printf("replay %s: clean over %zu runs\n", Opts.ReplayFile.c_str(),
                R.Runs.size());
    for (const std::string &L : R.ProgressLivelocks)
      std::printf("  classified progress-livelock: %s\n", L.c_str());
    return 0;
  }
  std::printf("replay %s: %s\n  %s\n", Opts.ReplayFile.c_str(),
              getFailureKindName(R.Kind), R.Detail.c_str());
  return 2;
}

std::string reproPath(const TortureOptions &Opts, uint64_t Seed,
                      FailureKind Kind) {
  return Opts.ReproDir + "/repro-seed" + std::to_string(Seed) + "-" +
         getFailureKindName(Kind) + ".sir";
}

bool writeRepro(const std::string &Path, uint64_t Seed,
                const OracleResult &Failure, const TortureOptions &Opts,
                size_t OriginalSize, const std::string &Text,
                const ShrinkResult *Shrunk) {
  std::error_code Ec;
  std::filesystem::create_directories(Opts.ReproDir, Ec);
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "simtsr-torture: cannot write '%s'\n",
                 Path.c_str());
    return false;
  }
  Out << "; simtsr-torture repro\n";
  Out << ";   seed:      " << Seed << "\n";
  Out << ";   failure:   " << getFailureKindName(Failure.Kind) << "\n";
  Out << ";   detail:    " << Failure.Detail << "\n";
  Out << ";   warp-size: " << Opts.Oracle.WarpSize << "\n";
  Out << ";   sim-seed:  " << Opts.Oracle.SimSeed << "\n";
  if (progressAxisActive(Opts))
    Out << ";   progress:  " << progressAxisString(Opts) << "\n";
  // Per-config schedule digests make the repro self-describing: a fix can
  // be validated against exactly the schedules that disagreed, without
  // rerunning the whole cross product by hand (docs/OBSERVABILITY.md).
  for (const OracleRun &Run : Failure.Runs) {
    char Line[160];
    std::snprintf(Line, sizeof(Line),
                  ";   run:       %s/%s status=%s checksum=0x%016llx "
                  "digest=0x%016llx",
                  Run.Config.c_str(), getPolicyName(Run.Policy),
                  getRunStatusName(Run.St),
                  static_cast<unsigned long long>(Run.Checksum),
                  static_cast<unsigned long long>(Run.TraceDigest));
    Out << Line;
    // Fair run lines stay byte-identical to the legacy format.
    if (!Run.Progress.isFair())
      Out << " progress=" << formatProgressSpec(Run.Progress);
    Out << "\n";
  }
  for (const std::string &Line : Failure.ProgressLivelocks)
    Out << ";   classified: " << Line << "\n";
  // The static analyzer's verdict per config (--lint-oracle): which side
  // of a lint-mismatch to believe starts from these lines.
  for (const std::string &Line : Failure.LintLines)
    Out << ";   lint:      " << Line << "\n";
  if (Shrunk)
    Out << ";   shrunk:    " << OriginalSize << " -> " << Text.size()
        << " bytes (" << Shrunk->StepsAccepted << " steps, "
        << Shrunk->AttemptsUsed << " attempts)\n";
  Out << ";   replay:    simtsr-torture --replay " << Path;
  if (Opts.ProgressSweep)
    Out << " --progress-sweep";
  else if (progressAxisActive(Opts))
    Out << " --progress "
        << formatProgressSpec(Opts.Oracle.ProgressModels.back());
  Out << "\n";
  Out << Text;
  return Out.good();
}

struct FailureRecord {
  uint64_t Seed = 0;
  std::string Kind;
  std::string Detail;
  std::string ReproPath;
};

void emitJson(const TortureOptions &Opts, uint64_t Clean, uint64_t Failures,
              uint64_t ClassifiedLivelocks,
              const std::vector<FailureRecord> &Records) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.string("simtsr-torture-v1");
  W.key("seeds");
  W.numberUnsigned(Opts.Seeds);
  W.key("clean");
  W.numberUnsigned(Clean);
  W.key("failures");
  W.numberUnsigned(Failures);
  // Progress fields appear only when the model axis is active, so the
  // legacy fair-only payload stays byte-identical.
  if (progressAxisActive(Opts)) {
    W.key("progress_models");
    W.string(progressAxisString(Opts));
    W.key("progress_livelocks");
    W.numberUnsigned(ClassifiedLivelocks);
  }
  W.key("repro_dir");
  W.string(Opts.ReproDir);
  W.key("records");
  W.beginArray();
  for (const FailureRecord &R : Records) {
    W.beginObject();
    W.key("seed");
    W.numberUnsigned(R.Seed);
    W.key("kind");
    W.string(R.Kind);
    W.key("detail");
    W.string(R.Detail);
    W.key("repro");
    W.string(R.ReproPath);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::printf("%s\n", W.take().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  driver::ToolConfig C;
  TortureOptions Opts;
  uint64_t WarpSize = 32;

  driver::ArgParser P("simtsr-torture");
  P.uns("--seeds", "N", "number of seeds to torture (default 100)",
        &Opts.Seeds);
  P.uns("--start-seed", "N", "first seed (default 0)", &C.StartSeed);
  P.uns("--warp-size", "N", "warp size for every run (default 32)",
        &WarpSize, 1, 32);
  P.uns("--max-issue", "N", "per-run issue-slot limit",
        &Opts.Oracle.MaxIssueSlots);
  P.uns("--watchdog-ms", "N", "per-run wall-clock watchdog (0 disables)",
        &Opts.Oracle.MaxWallMillis);
  P.custom("--inject", "MODE",
           "miscompile the 'sr' config: swap-br | drop-cancels",
           [&Opts](const std::string &V) {
             if (V == "swap-br")
               Opts.Oracle.Inject = FaultInjection::SwapBranchTargets;
             else if (V == "drop-cancels")
               Opts.Oracle.Inject = FaultInjection::DropCancels;
             else
               return false;
             return true;
           });
  P.flag("--lint-oracle",
         "cross-check the static convergence lint against every run "
         "(implies --progress-sweep unless --progress picks one model)",
         &Opts.Oracle.LintCheck);
  driver::addProgressFlag(P, C);
  P.flag("--progress-sweep",
         "run every seed under fair, hsa, obe and bounded:4, classifying "
         "weak-model-only livelocks instead of failing on them",
         &Opts.ProgressSweep);
  P.flag("--expect-caught", "succeed iff at least one failure is caught",
         &Opts.ExpectCaught);
  P.flag("--no-shrink", "skip repro minimization", &Opts.NoShrink);
  P.str("--repro-dir", "DIR",
        "directory for repro .sir files (default: working directory)",
        &Opts.ReproDir);
  P.alias("--out", "--repro-dir");
  P.str("--replay", "FILE", "run the oracle on one .sir file and exit",
        &Opts.ReplayFile);
  P.flag("--verbose", "log every seed, not just failures", &Opts.Verbose);
  P.exitAction("--list-pipelines",
               "print the pipeline catalog the oracle fans out over",
               [] { driver::printPipelineCatalog(stdout); });
  driver::addJsonFlag(P, C);

  switch (P.parse(Argc, Argv)) {
  case driver::ArgParser::Result::Ok:
    break;
  case driver::ArgParser::Result::Exit:
    return 0;
  case driver::ArgParser::Result::Error:
    return 1;
  }
  Opts.Oracle.WarpSize = static_cast<unsigned>(WarpSize);
  if (Opts.ProgressSweep && !C.Progress.isFair()) {
    std::fprintf(stderr, "simtsr-torture: --progress and --progress-sweep "
                         "are mutually exclusive\n");
    return 1;
  }
  // The lint models fair scheduling but its clean bill must survive every
  // guarantee: a barrier trap under hsa/obe/bounded impeaches it just as a
  // fair one does. So --lint-oracle sweeps the whole model axis unless an
  // explicit --progress narrows the run to one targeted model.
  if (Opts.Oracle.LintCheck && C.Progress.isFair())
    Opts.ProgressSweep = true;
  if (Opts.ProgressSweep) {
    // Sweep mode: a weak-model-only livelock is a property of the kernel,
    // not a miscompile — classify it and keep going. Genuine divergences
    // (weak-model traps, checksum mismatches) still fail the sweep.
    Opts.Oracle.ProgressModels = sweepModels();
    Opts.Oracle.OnProgressLivelock = OracleOptions::ProgressVerdict::Classify;
  } else if (!C.Progress.isFair()) {
    // Targeted mode: fair establishes the baseline, the requested model
    // runs against it, and a weak-model-only failure IS the verdict (what
    // the shrinker minimizes into a progress repro). Under --lint-oracle
    // the verdict under test is static-vs-dynamic agreement instead, so
    // livelocks classify exactly as they do in the sweep.
    Opts.Oracle.ProgressModels = {ProgressSpec{}, C.Progress};
    Opts.Oracle.OnProgressLivelock =
        Opts.Oracle.LintCheck ? OracleOptions::ProgressVerdict::Classify
                              : OracleOptions::ProgressVerdict::Fail;
  }
  Opts.Shrink.Oracle = Opts.Oracle;

  if (!Opts.ReplayFile.empty())
    return replay(Opts);

  uint64_t Failures = 0;
  uint64_t Clean = 0;
  uint64_t ClassifiedLivelocks = 0;
  std::vector<FailureRecord> Records;
  for (uint64_t Seed = C.StartSeed; Seed < C.StartSeed + Opts.Seeds;
       ++Seed) {
    GenOptions Gen;
    Gen.Seed = Seed;
    Gen.MaxWarpSize = Opts.Oracle.WarpSize;
    std::string Text = generateKernelText(Gen);
    OracleResult R = runDifferentialOracle(Text, Opts.Oracle);
    ClassifiedLivelocks += R.ProgressLivelocks.size();
    if (R.ok()) {
      ++Clean;
      if (Opts.Verbose && !C.Json) {
        std::printf("seed %llu: clean (%zu runs)\n",
                    static_cast<unsigned long long>(Seed), R.Runs.size());
        for (const std::string &L : R.ProgressLivelocks)
          std::printf("  classified: %s\n", L.c_str());
      }
      continue;
    }
    ++Failures;
    if (!C.Json)
      std::printf("seed %llu: %s\n  %s\n",
                  static_cast<unsigned long long>(Seed),
                  getFailureKindName(R.Kind), R.Detail.c_str());

    std::string Repro = Text;
    ShrinkResult Shrunk;
    bool DidShrink = false;
    if (!Opts.NoShrink) {
      Shrunk = shrinkFailingModule(Text, R.Kind, Opts.Shrink);
      if (Shrunk.StepsAccepted > 0) {
        Repro = Shrunk.Text;
        DidShrink = true;
        if (!C.Json)
          std::printf("  shrunk %zu -> %zu bytes in %u steps\n", Text.size(),
                      Repro.size(), Shrunk.StepsAccepted);
      }
    }
    std::string Path = reproPath(Opts, Seed, R.Kind);
    if (writeRepro(Path, Seed, R, Opts, Text.size(), Repro,
                   DidShrink ? &Shrunk : nullptr)) {
      if (!C.Json)
        std::printf("  repro written to %s\n", Path.c_str());
    } else {
      Path.clear();
    }
    Records.push_back(
        {Seed, getFailureKindName(R.Kind), R.Detail, Path});
  }

  if (C.Json)
    emitJson(Opts, Clean, Failures, ClassifiedLivelocks, Records);
  else if (progressAxisActive(Opts))
    std::printf("torture: %llu seeds over {%s}, %llu clean, %llu failures, "
                "%llu classified progress-livelock runs\n",
                static_cast<unsigned long long>(Opts.Seeds),
                progressAxisString(Opts).c_str(),
                static_cast<unsigned long long>(Clean),
                static_cast<unsigned long long>(Failures),
                static_cast<unsigned long long>(ClassifiedLivelocks));
  else
    std::printf("torture: %llu seeds, %llu clean, %llu failures\n",
                static_cast<unsigned long long>(Opts.Seeds),
                static_cast<unsigned long long>(Clean),
                static_cast<unsigned long long>(Failures));
  if (Opts.ExpectCaught) {
    if (Failures > 0) {
      if (!C.Json)
        std::printf("torture: injected fault caught as expected\n");
      return 0;
    }
    if (!C.Json)
      std::printf("torture: expected the injected fault to be caught, but "
                  "every seed came back clean\n");
    return 2;
  }
  return Failures == 0 ? 0 : 2;
}
