//===- simtsr-torture.cpp - Differential torture harness driver ---------------===//
///
/// \file
/// Command-line driver for the fuzz subsystem: generates seeded random
/// divergent kernels, runs each through the differential oracle (every
/// pipeline configuration under every scheduler policy), shrinks any
/// failure to a minimal repro, and writes the repro as a replayable `.sir`
/// file with the failure context in its header comments.
///
/// Exit codes: 0 on a clean sweep (or, with --expect-caught, when at least
/// one failure was caught); 1 on usage errors; 2 when unexpected failures
/// were found (or --expect-caught found none).
///
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace simtsr;

namespace {

struct ToolOptions {
  uint64_t Seeds = 100;
  uint64_t StartSeed = 0;
  std::string OutDir = ".";
  std::string ReplayFile;
  bool ExpectCaught = false;
  bool NoShrink = false;
  bool Verbose = false;
  OracleOptions Oracle;
  ShrinkOptions Shrink;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: simtsr-torture [options]\n"
      "  --seeds N          number of seeds to torture (default 100)\n"
      "  --start-seed N     first seed (default 0)\n"
      "  --warp-size N      warp size for every run (default 32)\n"
      "  --max-issue N      per-run issue-slot limit\n"
      "  --watchdog-ms N    per-run wall-clock watchdog (0 disables)\n"
      "  --inject MODE      miscompile the 'sr' config: swap-br | "
      "drop-cancels\n"
      "  --lint-oracle      cross-check the static convergence lint "
      "against every run\n"
      "  --expect-caught    succeed iff at least one failure is caught\n"
      "  --no-shrink        skip repro minimization\n"
      "  --out DIR          directory for repro .sir files (default .)\n"
      "  --replay FILE      run the oracle on one .sir file and exit\n"
      "  --verbose          log every seed, not just failures\n");
}

bool parseUInt(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// \returns false on a malformed command line.
bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto NeedValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    uint64_t V = 0;
    if (Arg == "--seeds") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, Opts.Seeds))
        return false;
    } else if (Arg == "--start-seed") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, Opts.StartSeed))
        return false;
    } else if (Arg == "--warp-size") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, V) || V < 1 || V > 32)
        return false;
      Opts.Oracle.WarpSize = static_cast<unsigned>(V);
    } else if (Arg == "--max-issue") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, Opts.Oracle.MaxIssueSlots))
        return false;
    } else if (Arg == "--watchdog-ms") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, Opts.Oracle.MaxWallMillis))
        return false;
    } else if (Arg == "--inject") {
      const char *S = NeedValue();
      if (!S)
        return false;
      if (std::strcmp(S, "swap-br") == 0)
        Opts.Oracle.Inject = FaultInjection::SwapBranchTargets;
      else if (std::strcmp(S, "drop-cancels") == 0)
        Opts.Oracle.Inject = FaultInjection::DropCancels;
      else
        return false;
    } else if (Arg == "--lint-oracle") {
      Opts.Oracle.LintCheck = true;
    } else if (Arg == "--expect-caught") {
      Opts.ExpectCaught = true;
    } else if (Arg == "--no-shrink") {
      Opts.NoShrink = true;
    } else if (Arg == "--out") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.OutDir = S;
    } else if (Arg == "--replay") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.ReplayFile = S;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else {
      std::fprintf(stderr, "simtsr-torture: unknown option '%s'\n",
                   Arg.c_str());
      return false;
    }
  }
  Opts.Shrink.Oracle = Opts.Oracle;
  return true;
}

int replay(const ToolOptions &Opts) {
  std::ifstream In(Opts.ReplayFile);
  if (!In) {
    std::fprintf(stderr, "simtsr-torture: cannot open '%s'\n",
                 Opts.ReplayFile.c_str());
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  OracleResult R = runDifferentialOracle(Buffer.str(), Opts.Oracle);
  if (R.ok()) {
    std::printf("replay %s: clean over %zu runs\n", Opts.ReplayFile.c_str(),
                R.Runs.size());
    return 0;
  }
  std::printf("replay %s: %s\n  %s\n", Opts.ReplayFile.c_str(),
              getFailureKindName(R.Kind), R.Detail.c_str());
  return 2;
}

std::string reproPath(const ToolOptions &Opts, uint64_t Seed,
                      FailureKind Kind) {
  return Opts.OutDir + "/repro-seed" + std::to_string(Seed) + "-" +
         getFailureKindName(Kind) + ".sir";
}

bool writeRepro(const std::string &Path, uint64_t Seed,
                const OracleResult &Failure, const ToolOptions &Opts,
                size_t OriginalSize, const std::string &Text,
                const ShrinkResult *Shrunk) {
  std::error_code Ec;
  std::filesystem::create_directories(Opts.OutDir, Ec);
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "simtsr-torture: cannot write '%s'\n",
                 Path.c_str());
    return false;
  }
  Out << "; simtsr-torture repro\n";
  Out << ";   seed:      " << Seed << "\n";
  Out << ";   failure:   " << getFailureKindName(Failure.Kind) << "\n";
  Out << ";   detail:    " << Failure.Detail << "\n";
  Out << ";   warp-size: " << Opts.Oracle.WarpSize << "\n";
  Out << ";   sim-seed:  " << Opts.Oracle.SimSeed << "\n";
  // Per-config schedule digests make the repro self-describing: a fix can
  // be validated against exactly the schedules that disagreed, without
  // rerunning the whole cross product by hand (docs/OBSERVABILITY.md).
  for (const OracleRun &Run : Failure.Runs) {
    char Line[160];
    std::snprintf(Line, sizeof(Line),
                  ";   run:       %s/%s status=%s checksum=0x%016llx "
                  "digest=0x%016llx\n",
                  Run.Config.c_str(), getPolicyName(Run.Policy),
                  getRunStatusName(Run.St),
                  static_cast<unsigned long long>(Run.Checksum),
                  static_cast<unsigned long long>(Run.TraceDigest));
    Out << Line;
  }
  // The static analyzer's verdict per config (--lint-oracle): which side
  // of a lint-mismatch to believe starts from these lines.
  for (const std::string &Line : Failure.LintLines)
    Out << ";   lint:      " << Line << "\n";
  if (Shrunk)
    Out << ";   shrunk:    " << OriginalSize << " -> " << Text.size()
        << " bytes (" << Shrunk->StepsAccepted << " steps, "
        << Shrunk->AttemptsUsed << " attempts)\n";
  Out << ";   replay:    simtsr-torture --replay " << Path << "\n";
  Out << Text;
  return Out.good();
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage();
    return 1;
  }
  if (!Opts.ReplayFile.empty())
    return replay(Opts);

  uint64_t Failures = 0;
  uint64_t Clean = 0;
  for (uint64_t Seed = Opts.StartSeed; Seed < Opts.StartSeed + Opts.Seeds;
       ++Seed) {
    GenOptions Gen;
    Gen.Seed = Seed;
    Gen.MaxWarpSize = Opts.Oracle.WarpSize;
    std::string Text = generateKernelText(Gen);
    OracleResult R = runDifferentialOracle(Text, Opts.Oracle);
    if (R.ok()) {
      ++Clean;
      if (Opts.Verbose)
        std::printf("seed %llu: clean (%zu runs)\n",
                    static_cast<unsigned long long>(Seed), R.Runs.size());
      continue;
    }
    ++Failures;
    std::printf("seed %llu: %s\n  %s\n",
                static_cast<unsigned long long>(Seed),
                getFailureKindName(R.Kind), R.Detail.c_str());

    std::string Repro = Text;
    ShrinkResult Shrunk;
    bool DidShrink = false;
    if (!Opts.NoShrink) {
      Shrunk = shrinkFailingModule(Text, R.Kind, Opts.Shrink);
      if (Shrunk.StepsAccepted > 0) {
        Repro = Shrunk.Text;
        DidShrink = true;
        std::printf("  shrunk %zu -> %zu bytes in %u steps\n", Text.size(),
                    Repro.size(), Shrunk.StepsAccepted);
      }
    }
    std::string Path = reproPath(Opts, Seed, R.Kind);
    if (writeRepro(Path, Seed, R, Opts, Text.size(), Repro,
                   DidShrink ? &Shrunk : nullptr))
      std::printf("  repro written to %s\n", Path.c_str());
  }

  std::printf("torture: %llu seeds, %llu clean, %llu failures\n",
              static_cast<unsigned long long>(Opts.Seeds),
              static_cast<unsigned long long>(Clean),
              static_cast<unsigned long long>(Failures));
  if (Opts.ExpectCaught) {
    if (Failures > 0) {
      std::printf("torture: injected fault caught as expected\n");
      return 0;
    }
    std::printf("torture: expected the injected fault to be caught, but "
                "every seed came back clean\n");
    return 2;
  }
  return Failures == 0 ? 0 : 2;
}
