//===- simtsr-bench.cpp - Simulator throughput benchmark driver ---------------===//
///
/// \file
/// Machine-readable performance baseline for the simulation engine: runs
/// every Table 2 workload as a multi-warp grid under the PDOM baseline
/// pipeline and reports wall-clock throughput (warps/sec and issue
/// slots/sec) per workload, as a plain-text table or as JSON (schema
/// "simtsr-bench-v1", see docs/PERFORMANCE.md). scripts/bench_baseline.sh
/// wraps this tool to produce the checked-in BENCH_baseline.json.
///
/// The default report also carries a deterministic divergence section:
/// every workload is re-run under the pdom / sr / meld / meld+sr configs
/// and the divergent-cycle counts (cycles x (1 - simt_efficiency)) are
/// compared head-to-head and stacked, with a checksum cross-check that
/// all four configs computed identical results.
///
/// --serve benchmarks the daemon's content-addressed cache tiers instead:
/// every workload is compiled and simulated through serve::Server
/// instances at four temperatures — cold (cache miss, full pass stack +
/// simulation), warm (memory cache hit), disk (fresh daemon rehydrating a
/// shared disk tier), and remote (a consistent-hash router forwarding to
/// a 3-shard in-process fleet over Unix sockets) — and the report (schema
/// "simtsr-bench-serve-v2", scripts/bench_serve.sh -> BENCH_serve.json)
/// records the speedups and proves every tier's answers bit-identical by
/// digest: remote hits must beat cold recompute, and post_digest /
/// trace_digest / checksum must match across all tiers.
///
/// The measured numbers (wall_ms, *_per_sec, speedups) are
/// machine-dependent; the simulation results (cycles, issue_slots,
/// simt_efficiency, checksum, digests) are deterministic and must not
/// change across hosts, thread counts, or parallel/sequential mode — a
/// reviewer can diff those fields against the checked-in baseline on any
/// machine.
///
/// Exit codes: 0 when every workload finishes (--serve: and every warm
/// answer matches its cold answer), 1 on usage errors, 2 on failure.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "ir/Printer.h"
#include "kernels/Runner.h"
#include "serve/Router.h"
#include "serve/Server.h"
#include "support/FdBuf.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

using namespace simtsr;

namespace {

struct WorkloadRow {
  std::string Name;
  double WallMs = 0.0;
  double WarpsPerSec = 0.0;
  double IssueSlotsPerSec = 0.0;
  uint64_t TotalCycles = 0;
  uint64_t TotalIssueSlots = 0;
  double SimtEfficiency = 0.0;
  uint64_t Checksum = 0;
  bool Ok = false;
  std::string FailMessage;
};

WorkloadRow measure(const Workload &W, const driver::ToolConfig &C,
                    GridMode Mode) {
  WorkloadRow Row;
  Row.Name = W.Name;

  // The pipeline and clone run outside the timed region: the baseline
  // tracks simulation-engine throughput, not compiler time.
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, PipelineOptions::baseline());
  const LaunchVerification Verification = verifyLaunchModule(*Fresh.M);
  Function *Kernel = Fresh.M->functionByName(Fresh.KernelName);
  if (!Verification.Errors.empty() || !Kernel) {
    Row.FailMessage = "workload did not survive the baseline pipeline";
    return Row;
  }
  LaunchConfig Config;
  Config.Seed = C.Seed;
  Config.Latency = Fresh.Latency;
  Config.KernelArgs = Fresh.Args;
  Config.Verified = &Verification;

  const auto Start = std::chrono::steady_clock::now();
  GridResult R = runGrid(*Fresh.M, Kernel, Config,
                         static_cast<unsigned>(C.Warps), Fresh.InitMemory,
                         Mode);
  const auto End = std::chrono::steady_clock::now();
  const double WallSec =
      std::chrono::duration<double>(End - Start).count();

  Row.WallMs = WallSec * 1000.0;
  Row.Ok = R.Ok;
  Row.FailMessage = R.FailMessage;
  Row.TotalCycles = R.TotalCycles;
  Row.TotalIssueSlots = R.TotalIssueSlots;
  Row.SimtEfficiency = R.SimtEfficiency;
  Row.Checksum = R.CombinedChecksum;
  if (WallSec > 0.0) {
    Row.WarpsPerSec = static_cast<double>(R.WarpsRun) / WallSec;
    Row.IssueSlotsPerSec =
        static_cast<double>(R.TotalIssueSlots) / WallSec;
  }
  return Row;
}

//===----------------------------------------------------------------------===//
// Divergence reduction: meld vs sr, head-to-head and stacked
//===----------------------------------------------------------------------===//

/// The configs the divergence section compares. pdom is the divergence
/// ceiling, sr is the paper's pass, meld is DARM-style control-flow
/// melding alone, meld+sr stacks both.
constexpr const char *DivergenceConfigs[] = {"pdom", "sr", "meld", "meld+sr"};
constexpr size_t NumDivergenceConfigs =
    sizeof(DivergenceConfigs) / sizeof(DivergenceConfigs[0]);

struct DivergenceRow {
  std::string Name;
  bool Ok = false;
  bool ChecksumsMatch = false; ///< All four configs bit-identical.
  uint64_t Cycles[NumDivergenceConfigs] = {};
  double SimtEfficiency[NumDivergenceConfigs] = {};
  double DivergentCycles[NumDivergenceConfigs] = {};
};

/// Cycles spent below full SIMD occupancy: TotalCycles scaled by the
/// inefficiency fraction. Deterministic — same caveat-free diffability as
/// cycles/checksum above.
double divergentCycles(const GridResult &R) {
  return static_cast<double>(R.TotalCycles) * (1.0 - R.SimtEfficiency);
}

/// Percentage reduction going from \p From to \p To (positive = better).
double reductionPct(double From, double To) {
  return From > 0.0 ? 100.0 * (From - To) / From : 0.0;
}

DivergenceRow measureDivergence(const Workload &W,
                                const driver::ToolConfig &C) {
  DivergenceRow Row;
  Row.Name = W.Name;
  Row.Ok = true;
  Row.ChecksumsMatch = true;
  uint64_t FirstChecksum = 0;
  for (size_t I = 0; I < NumDivergenceConfigs; ++I) {
    const std::optional<PipelineSpec> Spec =
        standardPipelineSpec(DivergenceConfigs[I]);
    if (!Spec) {
      Row.Ok = false;
      return Row;
    }
    const GridResult R = runWorkloadGrid(W, *Spec,
                                         static_cast<unsigned>(C.Warps),
                                         C.Seed);
    if (!R.Ok) {
      Row.Ok = false;
      return Row;
    }
    Row.Cycles[I] = R.TotalCycles;
    Row.SimtEfficiency[I] = R.SimtEfficiency;
    Row.DivergentCycles[I] = divergentCycles(R);
    if (I == 0)
      FirstChecksum = R.CombinedChecksum;
    else if (R.CombinedChecksum != FirstChecksum)
      Row.ChecksumsMatch = false;
  }
  return Row;
}

std::string formatDouble(double V, const char *Fmt) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Fmt, V);
  return Buf;
}

std::string formatHex(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void emitJson(std::FILE *Out, const driver::ToolConfig &C, GridMode Mode,
              const std::vector<WorkloadRow> &Rows,
              const std::vector<DivergenceRow> &Div) {
  double TotalMs = 0.0;
  uint64_t TotalSlots = 0;
  uint64_t TotalWarps = 0;
  for (const WorkloadRow &R : Rows) {
    TotalMs += R.WallMs;
    TotalSlots += R.TotalIssueSlots;
    TotalWarps += R.Ok ? C.Warps : 0;
  }
  const double TotalSec = TotalMs / 1000.0;

  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"simtsr-bench-v1\",\n");
  std::fprintf(Out, "  \"pipeline\": \"pdom-baseline\",\n");
  std::fprintf(Out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(C.Seed));
  std::fprintf(Out, "  \"warps\": %u,\n", static_cast<unsigned>(C.Warps));
  std::fprintf(Out, "  \"scale\": %s,\n",
               formatDouble(C.Scale, "%g").c_str());
  std::fprintf(Out, "  \"mode\": \"%s\",\n",
               Mode == GridMode::Parallel ? "parallel" : "sequential");
  std::fprintf(Out, "  \"threads\": %u,\n", ThreadPool::global().concurrency());
  std::fprintf(Out, "  \"workloads\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const WorkloadRow &R = Rows[I];
    std::fprintf(Out, "    {\n");
    std::fprintf(Out, "      \"name\": \"%s\",\n",
                 jsonEscape(R.Name).c_str());
    std::fprintf(Out, "      \"status\": \"%s\",\n", R.Ok ? "ok" : "failed");
    if (!R.Ok)
      std::fprintf(Out, "      \"fail_message\": \"%s\",\n",
                   jsonEscape(R.FailMessage).c_str());
    std::fprintf(Out, "      \"wall_ms\": %s,\n",
                 formatDouble(R.WallMs, "%.3f").c_str());
    std::fprintf(Out, "      \"warps_per_sec\": %s,\n",
                 formatDouble(R.WarpsPerSec, "%.1f").c_str());
    std::fprintf(Out, "      \"issue_slots_per_sec\": %s,\n",
                 formatDouble(R.IssueSlotsPerSec, "%.1f").c_str());
    std::fprintf(Out, "      \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(R.TotalCycles));
    std::fprintf(Out, "      \"issue_slots\": %llu,\n",
                 static_cast<unsigned long long>(R.TotalIssueSlots));
    std::fprintf(Out, "      \"simt_efficiency\": %s,\n",
                 formatDouble(R.SimtEfficiency, "%.6f").c_str());
    std::fprintf(Out, "      \"checksum\": \"%s\"\n",
                 formatHex(R.Checksum).c_str());
    std::fprintf(Out, "    }%s\n", I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  // Deterministic divergence comparison across the melding/reconvergence
  // configs; every field here must diff clean against the checked-in
  // baseline on any machine.
  std::fprintf(Out, "  \"divergence\": [\n");
  for (size_t I = 0; I < Div.size(); ++I) {
    const DivergenceRow &R = Div[I];
    std::fprintf(Out, "    {\n");
    std::fprintf(Out, "      \"name\": \"%s\",\n",
                 jsonEscape(R.Name).c_str());
    std::fprintf(Out, "      \"status\": \"%s\",\n", R.Ok ? "ok" : "failed");
    std::fprintf(Out, "      \"checksums_match\": %s,\n",
                 R.ChecksumsMatch ? "true" : "false");
    for (size_t J = 0; J < NumDivergenceConfigs; ++J) {
      std::string Key = DivergenceConfigs[J];
      for (char &Ch : Key)
        if (Ch == '+')
          Ch = '_';
      std::fprintf(Out, "      \"%s_cycles\": %llu,\n", Key.c_str(),
                   static_cast<unsigned long long>(R.Cycles[J]));
      std::fprintf(Out, "      \"%s_divergent_cycles\": %s,\n", Key.c_str(),
                   formatDouble(R.DivergentCycles[J], "%.1f").c_str());
    }
    // Head-to-head (meld alone vs the pdom ceiling and vs sr) and stacked
    // (meld+sr vs sr): positive percentages mean melding removed
    // divergence the comparison config left behind.
    std::fprintf(Out, "      \"meld_vs_pdom_reduction_pct\": %s,\n",
                 formatDouble(reductionPct(R.DivergentCycles[0],
                                           R.DivergentCycles[2]),
                              "%.2f")
                     .c_str());
    std::fprintf(Out, "      \"meld_vs_sr_reduction_pct\": %s,\n",
                 formatDouble(reductionPct(R.DivergentCycles[1],
                                           R.DivergentCycles[2]),
                              "%.2f")
                     .c_str());
    std::fprintf(Out, "      \"meld_sr_vs_sr_reduction_pct\": %s\n",
                 formatDouble(reductionPct(R.DivergentCycles[1],
                                           R.DivergentCycles[3]),
                              "%.2f")
                     .c_str());
    std::fprintf(Out, "    }%s\n", I + 1 < Div.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"totals\": {\n");
  std::fprintf(Out, "    \"wall_ms\": %s,\n",
               formatDouble(TotalMs, "%.3f").c_str());
  std::fprintf(Out, "    \"warps_per_sec\": %s,\n",
               formatDouble(TotalSec > 0.0 ? TotalWarps / TotalSec : 0.0,
                            "%.1f")
                   .c_str());
  std::fprintf(Out, "    \"issue_slots_per_sec\": %s\n",
               formatDouble(TotalSec > 0.0
                                ? static_cast<double>(TotalSlots) / TotalSec
                                : 0.0,
                            "%.1f")
                   .c_str());
  std::fprintf(Out, "  }\n");
  std::fprintf(Out, "}\n");
}

void emitTable(std::FILE *Out, const driver::ToolConfig &C, GridMode Mode,
               const std::vector<WorkloadRow> &Rows,
               const std::vector<DivergenceRow> &Div) {
  std::fprintf(Out,
               "==== simtsr-bench: %u warps, scale %g, %s, %u threads ====\n",
               static_cast<unsigned>(C.Warps), C.Scale,
               Mode == GridMode::Parallel ? "parallel" : "sequential",
               ThreadPool::global().concurrency());
  std::fprintf(Out, "%-17s %9s %12s %16s %9s  %s\n", "benchmark", "wall-ms",
               "warps/sec", "islots/sec", "simt-eff", "status");
  for (const WorkloadRow &R : Rows)
    std::fprintf(Out, "%-17s %9.3f %12.1f %16.1f %8.1f%%  %s%s%s\n",
                 R.Name.c_str(), R.WallMs, R.WarpsPerSec, R.IssueSlotsPerSec,
                 100.0 * R.SimtEfficiency, R.Ok ? "ok" : "FAILED",
                 R.FailMessage.empty() ? "" : ": ",
                 R.FailMessage.c_str());
  std::fprintf(Out,
               "\n---- divergent cycles (lower is better): pdom vs sr vs "
               "meld vs meld+sr ----\n");
  std::fprintf(Out, "%-17s %10s %10s %10s %10s %9s %9s  %s\n", "benchmark",
               "pdom", "sr", "meld", "meld+sr", "m-vs-sr", "m+sr-vs-sr",
               "checksums");
  for (const DivergenceRow &R : Div) {
    if (!R.Ok) {
      std::fprintf(Out, "%-17s FAILED\n", R.Name.c_str());
      continue;
    }
    std::fprintf(Out, "%-17s %10.1f %10.1f %10.1f %10.1f %8.2f%% %8.2f%%  %s\n",
                 R.Name.c_str(), R.DivergentCycles[0], R.DivergentCycles[1],
                 R.DivergentCycles[2], R.DivergentCycles[3],
                 reductionPct(R.DivergentCycles[1], R.DivergentCycles[2]),
                 reductionPct(R.DivergentCycles[1], R.DivergentCycles[3]),
                 R.ChecksumsMatch ? "match" : "MISMATCH");
  }
}

//===----------------------------------------------------------------------===//
// --serve: cold-vs-warm cache throughput through an in-process daemon
//===----------------------------------------------------------------------===//

struct ServeRow {
  std::string Name;
  double CompileColdMs = 0.0;
  double CompileWarmMs = 0.0; ///< Averaged over ServeWarmIters iterations.
  double SimColdMs = 0.0;
  double SimWarmMs = 0.0;
  double CompileDiskMs = 0.0;   ///< Fresh daemon, shared disk tier.
  double SimDiskMs = 0.0;
  double CompileRemoteMs = 0.0; ///< Routed hit on a warmed shard fleet.
  double SimRemoteMs = 0.0;
  std::string PostDigest;   ///< From the cold compile response.
  std::string TraceDigest;  ///< From the cold simulate response.
  std::string Checksum;     ///< From the cold simulate response.
  std::string SimStatus;
  bool Ok = false;          ///< Responses well-formed, every tier == cold.
  std::string FailMessage;
};

/// Warm requests are microsecond-scale hash lookups; averaging over a few
/// iterations keeps the speedup ratio out of clock-resolution noise.
constexpr int ServeWarmIters = 10;

/// The daemon is exercised under the heaviest standard config so the cold
/// side includes the full speculative-reconvergence pass stack.
constexpr const char *ServePipeline = "sr+ip+realloc";

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Extracts string field \p Key from response \p Line ("" when absent).
std::string responseField(const std::string &Line, const std::string &Key) {
  const JsonParseResult J = parseJson(Line);
  if (!J.ok() || !J.Value.isObject())
    return "";
  const JsonValue *V = J.Value.field(Key);
  return V && V->isString() ? V->asString() : "";
}

bool responseOk(const std::string &Line) {
  const JsonParseResult J = parseJson(Line);
  if (!J.ok() || !J.Value.isObject())
    return false;
  const JsonValue *Err = J.Value.field("error");
  return !Err; // Simulation failures still answer deterministically.
}

std::string compileRequest(int64_t Id, const std::string &Source) {
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(Id);
  W.key("op");
  W.string("compile");
  W.key("pipeline");
  W.string(ServePipeline);
  W.key("source");
  W.string(Source);
  W.endObject();
  return W.take();
}

std::string simulateRequest(int64_t Id, const std::string &Source,
                            const Workload &W,
                            const driver::ToolConfig &C) {
  JsonWriter Wr;
  Wr.beginObject();
  Wr.key("id");
  Wr.number(Id);
  Wr.key("op");
  Wr.string("simulate");
  Wr.key("pipeline");
  Wr.string(ServePipeline);
  Wr.key("source");
  Wr.string(Source);
  Wr.key("kernel");
  Wr.string(W.KernelName);
  Wr.key("warps");
  Wr.numberUnsigned(C.Warps);
  Wr.key("seed");
  Wr.numberUnsigned(C.Seed);
  Wr.key("args");
  Wr.beginArray();
  for (const int64_t A : W.Args)
    Wr.number(A);
  Wr.endArray();
  Wr.endObject();
  return Wr.take();
}

ServeRow measureServe(serve::Server &Server, const Workload &W,
                      const driver::ToolConfig &C, int64_t &NextId) {
  ServeRow Row;
  Row.Name = W.Name;
  const std::string Source = printModule(*W.M);
  const std::string Compile = compileRequest(NextId++, Source);
  const std::string Simulate = simulateRequest(NextId++, Source, W, C);

  auto Start = std::chrono::steady_clock::now();
  const std::string ColdCompile = Server.handle(Compile);
  Row.CompileColdMs = msSince(Start);

  Start = std::chrono::steady_clock::now();
  const std::string ColdSim = Server.handle(Simulate);
  Row.SimColdMs = msSince(Start);

  if (!responseOk(ColdCompile) || !responseOk(ColdSim)) {
    Row.FailMessage = "cold request failed: " +
                      (responseOk(ColdCompile) ? ColdSim : ColdCompile);
    return Row;
  }
  Row.PostDigest = responseField(ColdCompile, "post_digest");
  Row.TraceDigest = responseField(ColdSim, "trace_digest");
  Row.Checksum = responseField(ColdSim, "checksum");
  Row.SimStatus = responseField(ColdSim, "status");

  std::string WarmCompile, WarmSim;
  Start = std::chrono::steady_clock::now();
  for (int I = 0; I < ServeWarmIters; ++I)
    WarmCompile = Server.handle(Compile);
  Row.CompileWarmMs = msSince(Start) / ServeWarmIters;

  Start = std::chrono::steady_clock::now();
  for (int I = 0; I < ServeWarmIters; ++I)
    WarmSim = Server.handle(Simulate);
  Row.SimWarmMs = msSince(Start) / ServeWarmIters;

  // The cache-correctness claim, checked answer against answer: a warm
  // response must be byte-identical to its cold twin except for the
  // "cached" markers.
  if (responseField(WarmCompile, "post_digest") != Row.PostDigest ||
      responseField(WarmSim, "trace_digest") != Row.TraceDigest ||
      responseField(WarmSim, "checksum") != responseField(ColdSim,
                                                          "checksum")) {
    Row.FailMessage = "warm response diverged from cold response";
    return Row;
  }
  Row.Ok = true;
  return Row;
}

/// Replays one workload's compile+simulate pair against \p Server, timing
/// both, and cross-checks the response digests against the cold-run row.
/// On divergence the row is failed with \p Tier in the message.
bool replayTier(serve::Server &Server, const Workload &W,
                const driver::ToolConfig &C, int64_t &NextId, ServeRow &Row,
                double &CompileMs, double &SimMs, const char *Tier) {
  const std::string Source = printModule(*W.M);
  const std::string Compile = compileRequest(NextId++, Source);
  const std::string Simulate = simulateRequest(NextId++, Source, W, C);

  auto Start = std::chrono::steady_clock::now();
  const std::string RC = Server.handle(Compile);
  CompileMs = msSince(Start);
  Start = std::chrono::steady_clock::now();
  const std::string RS = Server.handle(Simulate);
  SimMs = msSince(Start);

  if (!responseOk(RC) || !responseOk(RS) ||
      responseField(RC, "post_digest") != Row.PostDigest ||
      responseField(RS, "trace_digest") != Row.TraceDigest ||
      responseField(RS, "checksum") != Row.Checksum) {
    Row.Ok = false;
    Row.FailMessage = std::string(Tier) + " tier diverged from cold run";
    return false;
  }
  return true;
}

/// One blocking request/response round trip against a shard socket (used
/// to shut the in-process fleet down). Returns "" on any failure.
std::string shardRequest(const std::string &Addr, const std::string &Line) {
  const int Fd = serve::connectToAddress(Addr, 2000);
  if (Fd < 0)
    return "";
  FdBuf B(Fd);
  B.queueLine(Line);
  while (B.hasPendingOut()) {
    const IoResult R = B.flushSome();
    if (R == IoResult::Closed || R == IoResult::Eof) {
      ::close(Fd);
      return "";
    }
    if (R == IoResult::WouldBlock) {
      pollfd P{Fd, POLLOUT, 0};
      ::poll(&P, 1, 2000);
    }
  }
  std::string Got;
  while (!B.nextLine(Got)) {
    pollfd P{Fd, POLLIN, 0};
    if (::poll(&P, 1, 10'000) <= 0)
      break;
    const IoResult R = B.fill();
    if (R == IoResult::Closed)
      break;
    if (R == IoResult::Eof) {
      B.nextLine(Got);
      break;
    }
  }
  ::close(Fd);
  return Got;
}

/// Polls until a shard's listener accepts connections (it starts on a
/// separate thread). ~5 s budget; false on timeout.
bool waitForShard(const std::string &Addr) {
  for (int I = 0; I < 500; ++I) {
    const int Fd = serve::connectToAddress(Addr, 100);
    if (Fd >= 0) {
      ::close(Fd);
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

constexpr unsigned ServeShardCount = 3;

void emitServeJson(std::FILE *Out, const driver::ToolConfig &C,
                   const std::vector<ServeRow> &Rows,
                   const serve::StatsSnapshot &S) {
  double ColdC = 0, WarmC = 0, ColdS = 0, WarmS = 0;
  double DiskC = 0, DiskS = 0, RemC = 0, RemS = 0;
  for (const ServeRow &R : Rows) {
    ColdC += R.CompileColdMs;
    WarmC += R.CompileWarmMs;
    ColdS += R.SimColdMs;
    WarmS += R.SimWarmMs;
    DiskC += R.CompileDiskMs;
    DiskS += R.SimDiskMs;
    RemC += R.CompileRemoteMs;
    RemS += R.SimRemoteMs;
  }
  const auto Speedup = [](double Cold, double Warm) {
    return Warm > 0.0 ? Cold / Warm : 0.0;
  };

  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"simtsr-bench-serve-v2\",\n");
  std::fprintf(Out, "  \"pipeline\": \"%s\",\n", ServePipeline);
  std::fprintf(Out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(C.Seed));
  std::fprintf(Out, "  \"warps\": %u,\n", static_cast<unsigned>(C.Warps));
  std::fprintf(Out, "  \"scale\": %s,\n",
               formatDouble(C.Scale, "%g").c_str());
  std::fprintf(Out, "  \"threads\": %u,\n",
               ThreadPool::global().concurrency());
  std::fprintf(Out, "  \"warm_iters\": %d,\n", ServeWarmIters);
  std::fprintf(Out, "  \"disk_tier\": true,\n");
  std::fprintf(Out, "  \"shards\": %u,\n", ServeShardCount);
  std::fprintf(Out, "  \"workloads\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ServeRow &R = Rows[I];
    std::fprintf(Out, "    {\n");
    std::fprintf(Out, "      \"name\": \"%s\",\n",
                 jsonEscape(R.Name).c_str());
    std::fprintf(Out, "      \"status\": \"%s\",\n", R.Ok ? "ok" : "failed");
    if (!R.Ok)
      std::fprintf(Out, "      \"fail_message\": \"%s\",\n",
                   jsonEscape(R.FailMessage).c_str());
    std::fprintf(Out, "      \"compile_cold_ms\": %s,\n",
                 formatDouble(R.CompileColdMs, "%.3f").c_str());
    std::fprintf(Out, "      \"compile_warm_ms\": %s,\n",
                 formatDouble(R.CompileWarmMs, "%.3f").c_str());
    std::fprintf(Out, "      \"compile_speedup\": %s,\n",
                 formatDouble(Speedup(R.CompileColdMs, R.CompileWarmMs),
                              "%.1f")
                     .c_str());
    std::fprintf(Out, "      \"simulate_cold_ms\": %s,\n",
                 formatDouble(R.SimColdMs, "%.3f").c_str());
    std::fprintf(Out, "      \"simulate_warm_ms\": %s,\n",
                 formatDouble(R.SimWarmMs, "%.3f").c_str());
    std::fprintf(Out, "      \"simulate_speedup\": %s,\n",
                 formatDouble(Speedup(R.SimColdMs, R.SimWarmMs), "%.1f")
                     .c_str());
    std::fprintf(Out, "      \"compile_disk_ms\": %s,\n",
                 formatDouble(R.CompileDiskMs, "%.3f").c_str());
    std::fprintf(Out, "      \"simulate_disk_ms\": %s,\n",
                 formatDouble(R.SimDiskMs, "%.3f").c_str());
    std::fprintf(Out, "      \"compile_remote_ms\": %s,\n",
                 formatDouble(R.CompileRemoteMs, "%.3f").c_str());
    std::fprintf(Out, "      \"simulate_remote_ms\": %s,\n",
                 formatDouble(R.SimRemoteMs, "%.3f").c_str());
    // The headline tier comparison: one full workload (compile +
    // simulate) recomputed cold vs answered by a warmed remote shard.
    std::fprintf(Out, "      \"cold_ms\": %s,\n",
                 formatDouble(R.CompileColdMs + R.SimColdMs, "%.3f")
                     .c_str());
    std::fprintf(Out, "      \"disk_hit_ms\": %s,\n",
                 formatDouble(R.CompileDiskMs + R.SimDiskMs, "%.3f")
                     .c_str());
    std::fprintf(Out, "      \"remote_hit_ms\": %s,\n",
                 formatDouble(R.CompileRemoteMs + R.SimRemoteMs, "%.3f")
                     .c_str());
    std::fprintf(Out, "      \"sim_status\": \"%s\",\n",
                 jsonEscape(R.SimStatus).c_str());
    std::fprintf(Out, "      \"post_digest\": \"%s\",\n",
                 R.PostDigest.c_str());
    std::fprintf(Out, "      \"trace_digest\": \"%s\",\n",
                 R.TraceDigest.c_str());
    std::fprintf(Out, "      \"checksum\": \"%s\"\n", R.Checksum.c_str());
    std::fprintf(Out, "    }%s\n", I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"totals\": {\n");
  std::fprintf(Out, "    \"compile_cold_ms\": %s,\n",
               formatDouble(ColdC, "%.3f").c_str());
  std::fprintf(Out, "    \"compile_warm_ms\": %s,\n",
               formatDouble(WarmC, "%.3f").c_str());
  std::fprintf(Out, "    \"compile_speedup\": %s,\n",
               formatDouble(Speedup(ColdC, WarmC), "%.1f").c_str());
  std::fprintf(Out, "    \"simulate_cold_ms\": %s,\n",
               formatDouble(ColdS, "%.3f").c_str());
  std::fprintf(Out, "    \"simulate_warm_ms\": %s,\n",
               formatDouble(WarmS, "%.3f").c_str());
  std::fprintf(Out, "    \"simulate_speedup\": %s,\n",
               formatDouble(Speedup(ColdS, WarmS), "%.1f").c_str());
  std::fprintf(Out, "    \"disk_hit_ms\": %s,\n",
               formatDouble(DiskC + DiskS, "%.3f").c_str());
  std::fprintf(Out, "    \"remote_hit_ms\": %s,\n",
               formatDouble(RemC + RemS, "%.3f").c_str());
  std::fprintf(Out, "    \"cold_ms\": %s,\n",
               formatDouble(ColdC + ColdS, "%.3f").c_str());
  std::fprintf(Out, "    \"remote_vs_cold_speedup\": %s\n",
               formatDouble(Speedup(ColdC + ColdS, RemC + RemS), "%.1f")
                   .c_str());
  std::fprintf(Out, "  },\n");
  std::fprintf(Out, "  \"cache\": {\n");
  std::fprintf(Out, "    \"compile_hits\": %llu,\n",
               static_cast<unsigned long long>(S.Compile.Hits));
  std::fprintf(Out, "    \"compile_misses\": %llu,\n",
               static_cast<unsigned long long>(S.Compile.Misses));
  std::fprintf(Out, "    \"sim_hits\": %llu,\n",
               static_cast<unsigned long long>(S.Sim.Hits));
  std::fprintf(Out, "    \"sim_misses\": %llu\n",
               static_cast<unsigned long long>(S.Sim.Misses));
  std::fprintf(Out, "  }\n");
  std::fprintf(Out, "}\n");
}

void emitServeTable(std::FILE *Out, const driver::ToolConfig &C,
                    const std::vector<ServeRow> &Rows) {
  std::fprintf(Out,
               "==== simtsr-bench --serve: pipeline %s, %u warps, scale %g "
               "====\n",
               ServePipeline, static_cast<unsigned>(C.Warps), C.Scale);
  std::fprintf(Out, "%-17s %10s %10s %10s %10s %9s  %s\n", "benchmark",
               "cold-ms", "warm-ms", "disk-ms", "remote-ms", "r-spdup",
               "status");
  for (const ServeRow &R : Rows) {
    const double Cold = R.CompileColdMs + R.SimColdMs;
    const double Warm = R.CompileWarmMs + R.SimWarmMs;
    const double Disk = R.CompileDiskMs + R.SimDiskMs;
    const double Rem = R.CompileRemoteMs + R.SimRemoteMs;
    std::fprintf(Out, "%-17s %10.3f %10.3f %10.3f %10.3f %8.1fx  %s%s%s\n",
                 R.Name.c_str(), Cold, Warm, Disk, Rem,
                 Rem > 0.0 ? Cold / Rem : 0.0, R.Ok ? "ok" : "FAILED",
                 R.FailMessage.empty() ? "" : ": ",
                 R.FailMessage.c_str());
  }
}

int runServeBench(const driver::ToolConfig &C, std::FILE *Out) {
  const std::vector<Workload> Suite = makeAllWorkloads(C.Scale);
  std::vector<ServeRow> Rows;
  Rows.reserve(Suite.size());
  int64_t NextId = 1;

  char TmpTemplate[] = "/tmp/simtsr-bench-serve-XXXXXX";
  const char *Tmp = ::mkdtemp(TmpTemplate);
  if (!Tmp) {
    std::fprintf(stderr, "simtsr-bench: cannot create a temp directory\n");
    return 2;
  }
  const std::string TmpDir = Tmp;

  // Tiers 1+2, cold and warm: one daemon with a disk tier under it.
  serve::StatsSnapshot LocalStats;
  {
    serve::ServerOptions SO;
    SO.DiskCacheDir = TmpDir + "/local";
    serve::Server Server(SO);
    for (const Workload &W : Suite)
      Rows.push_back(measureServe(Server, W, C, NextId));
    LocalStats = Server.statsSnapshot();
  }

  // Tier 3, disk: a fresh daemon over the same directory answers from the
  // persisted entries alone (memory caches start empty).
  {
    serve::ServerOptions SO;
    SO.DiskCacheDir = TmpDir + "/local";
    serve::Server Server(SO);
    for (size_t I = 0; I < Suite.size(); ++I)
      if (Rows[I].Ok)
        replayTier(Server, Suite[I], C, NextId, Rows[I],
                   Rows[I].CompileDiskMs, Rows[I].SimDiskMs, "disk");
  }

  // Tier 4, remote: a 3-shard fleet on Unix sockets behind a
  // consistent-hash router. The first routed pass warms each owning
  // shard; the timed pass measures a remote cache hit end to end
  // (ring lookup + forward + shard hit + response transport).
  {
    std::vector<std::string> ShardSocks;
    std::vector<std::unique_ptr<serve::Server>> ShardServers;
    std::vector<std::thread> ShardThreads;
    bool FleetUp = true;
    for (unsigned I = 0; I < ServeShardCount; ++I) {
      serve::ServerOptions SO;
      SO.DiskCacheDir = TmpDir + "/shard" + std::to_string(I);
      ShardServers.push_back(std::make_unique<serve::Server>(SO));
      ShardSocks.push_back(TmpDir + "/shard" + std::to_string(I) + ".sock");
      ShardThreads.emplace_back(
          [S = ShardServers.back().get(), Sock = ShardSocks.back()] {
            S->serveUnixSocket(Sock);
          });
    }
    for (const std::string &Sock : ShardSocks)
      FleetUp = FleetUp && waitForShard(Sock);

    if (FleetUp) {
      serve::ServerOptions RO;
      RO.RouteShards = ShardSocks;
      serve::Server Router(RO);
      double Scratch1 = 0, Scratch2 = 0;
      for (size_t I = 0; I < Suite.size(); ++I)
        if (Rows[I].Ok)
          replayTier(Router, Suite[I], C, NextId, Rows[I], Scratch1,
                     Scratch2, "remote-warmup");
      for (size_t I = 0; I < Suite.size(); ++I)
        if (Rows[I].Ok)
          replayTier(Router, Suite[I], C, NextId, Rows[I],
                     Rows[I].CompileRemoteMs, Rows[I].SimRemoteMs,
                     "remote");
    } else {
      for (ServeRow &R : Rows) {
        R.Ok = false;
        R.FailMessage = "shard fleet did not come up";
      }
    }

    for (const std::string &Sock : ShardSocks)
      shardRequest(Sock, "{\"id\":999999,\"op\":\"shutdown\"}");
    for (std::thread &T : ShardThreads)
      T.join();
  }

  std::error_code EC;
  std::filesystem::remove_all(TmpDir, EC);

  if (C.Json)
    emitServeJson(Out, C, Rows, LocalStats);
  else
    emitServeTable(Out, C, Rows);
  for (const ServeRow &R : Rows)
    if (!R.Ok)
      return 2;
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  driver::ToolConfig C;
  C.Warps = 8; // The perf baseline is a wider grid than the tool default.
  bool Sequential = false;
  bool Serve = false;
  std::string OutFile;

  driver::ArgParser P("simtsr-bench");
  driver::addJsonFlag(P, C);
  driver::addLaunchFlags(P, C);
  P.dbl("--scale", "S", "workload scale factor in (0, 1]", &C.Scale, 0.0,
        1.0);
  P.flag("--sequential",
         "run grids one warp at a time (perf comparison baseline)",
         &Sequential);
  P.flag("--serve",
         "benchmark the serve daemon's cache: cold vs warm compile and "
         "simulate",
         &Serve);
  P.str("--out", "FILE", "write the report to FILE instead of stdout",
        &OutFile);
  P.exitAction("--list-pipelines",
               "print the pipeline catalog and stage vocabulary",
               [] { driver::printPipelineCatalog(stdout); });

  switch (P.parse(Argc, Argv)) {
  case driver::ArgParser::Result::Ok:
    break;
  case driver::ArgParser::Result::Exit:
    return 0;
  case driver::ArgParser::Result::Error:
    return 1;
  }

  std::FILE *Out = stdout;
  if (!OutFile.empty()) {
    Out = std::fopen(OutFile.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "simtsr-bench: cannot open '%s' for writing\n",
                   OutFile.c_str());
      return 1;
    }
  }

  int Exit = 0;
  if (Serve) {
    Exit = runServeBench(C, Out);
  } else {
    const GridMode Mode =
        Sequential ? GridMode::Sequential : GridMode::Parallel;
    const std::vector<Workload> Suite = makeAllWorkloads(C.Scale);
    std::vector<WorkloadRow> Rows;
    Rows.reserve(Suite.size());
    // Workloads are measured one at a time — parallelism lives inside each
    // grid — so per-workload wall clocks do not contend with each other.
    for (const Workload &W : Suite)
      Rows.push_back(measure(W, C, Mode));
    // The divergence comparison is deterministic, so it runs untimed after
    // the throughput measurements.
    std::vector<DivergenceRow> Div;
    Div.reserve(Suite.size());
    for (const Workload &W : Suite)
      Div.push_back(measureDivergence(W, C));
    if (C.Json)
      emitJson(Out, C, Mode, Rows, Div);
    else
      emitTable(Out, C, Mode, Rows, Div);
    for (const WorkloadRow &R : Rows)
      if (!R.Ok)
        Exit = 2;
    for (const DivergenceRow &R : Div)
      if (!R.Ok || !R.ChecksumsMatch)
        Exit = 2;
  }
  if (Out != stdout)
    std::fclose(Out);
  return Exit;
}
