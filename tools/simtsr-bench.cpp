//===- simtsr-bench.cpp - Simulator throughput benchmark driver ---------------===//
///
/// \file
/// Machine-readable performance baseline for the simulation engine: runs
/// every Table 2 workload as a multi-warp grid under the PDOM baseline
/// pipeline and reports wall-clock throughput (warps/sec and issue
/// slots/sec) per workload, as a plain-text table or as JSON (schema
/// "simtsr-bench-v1", see docs/PERFORMANCE.md). scripts/bench_baseline.sh
/// wraps this tool to produce the checked-in BENCH_baseline.json.
///
/// The measured numbers (wall_ms, *_per_sec) are machine-dependent; the
/// simulation results (cycles, issue_slots, simt_efficiency, checksum) are
/// deterministic and must not change across hosts, thread counts, or
/// parallel/sequential mode — a reviewer can diff those fields against the
/// checked-in baseline on any machine.
///
/// Exit codes: 0 when every workload finishes, 1 on usage errors, 2 when
/// any workload fails.
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

constexpr uint64_t BenchSeed = 2020; // Matches the figure harnesses.

struct ToolOptions {
  unsigned Warps = 8;
  double Scale = 1.0;
  bool Json = false;
  GridMode Mode = GridMode::Parallel;
  std::string OutFile; // empty = stdout
};

struct WorkloadRow {
  std::string Name;
  double WallMs = 0.0;
  double WarpsPerSec = 0.0;
  double IssueSlotsPerSec = 0.0;
  uint64_t TotalCycles = 0;
  uint64_t TotalIssueSlots = 0;
  double SimtEfficiency = 0.0;
  uint64_t Checksum = 0;
  bool Ok = false;
  std::string FailMessage;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: simtsr-bench [options]\n"
      "  --json             emit JSON (schema simtsr-bench-v1) instead of a "
      "table\n"
      "  --warps N          warps per grid (default 8)\n"
      "  --scale S          workload scale factor in (0, 1] (default 1.0)\n"
      "  --sequential       run grids one warp at a time (perf comparison "
      "baseline)\n"
      "  --out FILE         write the report to FILE instead of stdout\n");
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto NeedValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--warps") {
      const char *S = NeedValue();
      char *End = nullptr;
      unsigned long V = S ? std::strtoul(S, &End, 10) : 0;
      if (!S || End == S || *End != '\0' || V < 1 || V > 4096)
        return false;
      Opts.Warps = static_cast<unsigned>(V);
    } else if (Arg == "--scale") {
      const char *S = NeedValue();
      char *End = nullptr;
      double V = S ? std::strtod(S, &End) : 0.0;
      if (!S || End == S || *End != '\0' || V <= 0.0 || V > 1.0)
        return false;
      Opts.Scale = V;
    } else if (Arg == "--sequential") {
      Opts.Mode = GridMode::Sequential;
    } else if (Arg == "--out") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.OutFile = S;
    } else {
      std::fprintf(stderr, "simtsr-bench: unknown argument '%s'\n",
                   Arg.c_str());
      return false;
    }
  }
  return true;
}

WorkloadRow measure(const Workload &W, const ToolOptions &Opts) {
  WorkloadRow Row;
  Row.Name = W.Name;

  // The pipeline and clone run outside the timed region: the baseline
  // tracks simulation-engine throughput, not compiler time.
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, PipelineOptions::baseline());
  const LaunchVerification Verification = verifyLaunchModule(*Fresh.M);
  Function *Kernel = Fresh.M->functionByName(Fresh.KernelName);
  if (!Verification.Errors.empty() || !Kernel) {
    Row.FailMessage = "workload did not survive the baseline pipeline";
    return Row;
  }
  LaunchConfig Config;
  Config.Seed = BenchSeed;
  Config.Latency = Fresh.Latency;
  Config.KernelArgs = Fresh.Args;
  Config.Verified = &Verification;

  const auto Start = std::chrono::steady_clock::now();
  GridResult R = runGrid(*Fresh.M, Kernel, Config, Opts.Warps,
                         Fresh.InitMemory, Opts.Mode);
  const auto End = std::chrono::steady_clock::now();
  const double WallSec =
      std::chrono::duration<double>(End - Start).count();

  Row.WallMs = WallSec * 1000.0;
  Row.Ok = R.Ok;
  Row.FailMessage = R.FailMessage;
  Row.TotalCycles = R.TotalCycles;
  Row.TotalIssueSlots = R.TotalIssueSlots;
  Row.SimtEfficiency = R.SimtEfficiency;
  Row.Checksum = R.CombinedChecksum;
  if (WallSec > 0.0) {
    Row.WarpsPerSec = static_cast<double>(R.WarpsRun) / WallSec;
    Row.IssueSlotsPerSec =
        static_cast<double>(R.TotalIssueSlots) / WallSec;
  }
  return Row;
}

std::string formatDouble(double V, const char *Fmt) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Fmt, V);
  return Buf;
}

std::string formatHex(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void emitJson(std::FILE *Out, const ToolOptions &Opts,
              const std::vector<WorkloadRow> &Rows) {
  double TotalMs = 0.0;
  uint64_t TotalSlots = 0;
  unsigned TotalWarps = 0;
  for (const WorkloadRow &R : Rows) {
    TotalMs += R.WallMs;
    TotalSlots += R.TotalIssueSlots;
    TotalWarps += R.Ok ? Opts.Warps : 0;
  }
  const double TotalSec = TotalMs / 1000.0;

  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"simtsr-bench-v1\",\n");
  std::fprintf(Out, "  \"pipeline\": \"pdom-baseline\",\n");
  std::fprintf(Out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(BenchSeed));
  std::fprintf(Out, "  \"warps\": %u,\n", Opts.Warps);
  std::fprintf(Out, "  \"scale\": %s,\n",
               formatDouble(Opts.Scale, "%g").c_str());
  std::fprintf(Out, "  \"mode\": \"%s\",\n",
               Opts.Mode == GridMode::Parallel ? "parallel" : "sequential");
  std::fprintf(Out, "  \"threads\": %u,\n", ThreadPool::global().concurrency());
  std::fprintf(Out, "  \"workloads\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const WorkloadRow &R = Rows[I];
    std::fprintf(Out, "    {\n");
    std::fprintf(Out, "      \"name\": \"%s\",\n",
                 jsonEscape(R.Name).c_str());
    std::fprintf(Out, "      \"status\": \"%s\",\n", R.Ok ? "ok" : "failed");
    if (!R.Ok)
      std::fprintf(Out, "      \"fail_message\": \"%s\",\n",
                   jsonEscape(R.FailMessage).c_str());
    std::fprintf(Out, "      \"wall_ms\": %s,\n",
                 formatDouble(R.WallMs, "%.3f").c_str());
    std::fprintf(Out, "      \"warps_per_sec\": %s,\n",
                 formatDouble(R.WarpsPerSec, "%.1f").c_str());
    std::fprintf(Out, "      \"issue_slots_per_sec\": %s,\n",
                 formatDouble(R.IssueSlotsPerSec, "%.1f").c_str());
    std::fprintf(Out, "      \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(R.TotalCycles));
    std::fprintf(Out, "      \"issue_slots\": %llu,\n",
                 static_cast<unsigned long long>(R.TotalIssueSlots));
    std::fprintf(Out, "      \"simt_efficiency\": %s,\n",
                 formatDouble(R.SimtEfficiency, "%.6f").c_str());
    std::fprintf(Out, "      \"checksum\": \"%s\"\n",
                 formatHex(R.Checksum).c_str());
    std::fprintf(Out, "    }%s\n", I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"totals\": {\n");
  std::fprintf(Out, "    \"wall_ms\": %s,\n",
               formatDouble(TotalMs, "%.3f").c_str());
  std::fprintf(Out, "    \"warps_per_sec\": %s,\n",
               formatDouble(TotalSec > 0.0 ? TotalWarps / TotalSec : 0.0,
                            "%.1f")
                   .c_str());
  std::fprintf(Out, "    \"issue_slots_per_sec\": %s\n",
               formatDouble(TotalSec > 0.0
                                ? static_cast<double>(TotalSlots) / TotalSec
                                : 0.0,
                            "%.1f")
                   .c_str());
  std::fprintf(Out, "  }\n");
  std::fprintf(Out, "}\n");
}

void emitTable(std::FILE *Out, const ToolOptions &Opts,
               const std::vector<WorkloadRow> &Rows) {
  std::fprintf(Out,
               "==== simtsr-bench: %u warps, scale %g, %s, %u threads ====\n",
               Opts.Warps, Opts.Scale,
               Opts.Mode == GridMode::Parallel ? "parallel" : "sequential",
               ThreadPool::global().concurrency());
  std::fprintf(Out, "%-17s %9s %12s %16s %9s  %s\n", "benchmark", "wall-ms",
               "warps/sec", "islots/sec", "simt-eff", "status");
  for (const WorkloadRow &R : Rows)
    std::fprintf(Out, "%-17s %9.3f %12.1f %16.1f %8.1f%%  %s%s%s\n",
                 R.Name.c_str(), R.WallMs, R.WarpsPerSec, R.IssueSlotsPerSec,
                 100.0 * R.SimtEfficiency, R.Ok ? "ok" : "FAILED",
                 R.FailMessage.empty() ? "" : ": ",
                 R.FailMessage.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage();
    return 1;
  }

  const std::vector<Workload> Suite = makeAllWorkloads(Opts.Scale);
  std::vector<WorkloadRow> Rows;
  Rows.reserve(Suite.size());
  // Workloads are measured one at a time — parallelism lives inside each
  // grid — so per-workload wall clocks do not contend with each other.
  for (const Workload &W : Suite)
    Rows.push_back(measure(W, Opts));

  std::FILE *Out = stdout;
  if (!Opts.OutFile.empty()) {
    Out = std::fopen(Opts.OutFile.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "simtsr-bench: cannot open '%s' for writing\n",
                   Opts.OutFile.c_str());
      return 1;
    }
  }
  if (Opts.Json)
    emitJson(Out, Opts, Rows);
  else
    emitTable(Out, Opts, Rows);
  if (Out != stdout)
    std::fclose(Out);

  for (const WorkloadRow &R : Rows)
    if (!R.Ok)
      return 2;
  return 0;
}
