//===- simtsr-lint.cpp - Convergence-safety lint driver -----------------------===//
///
/// \file
/// Command-line front end for the static convergence-safety analyzer
/// (docs/LINT.md). Lints `.sir` files, the Table 2 workload suite or a
/// generated fuzz corpus, either raw or after running a standard pass
/// pipeline — in which case the analyzer is origin-aware through the
/// pipeline's barrier registry (origin-blind after reallocation, whose
/// recolouring invalidates the registry).
///
/// Input selection, pipeline resolution and flag spellings come from the
/// shared driver facade (driver/Driver.h); this file only owns the lint
/// loop and the report formats. Text output is deterministic: one
/// `== unit [config]` header per linted module followed by one line per
/// finding, then a final summary line — the format the CI golden file
/// checks in. --json renders the same findings machine-readably (schema
/// "simtsr-lint-v1").
///
/// Exit codes: 0 on a clean sweep, 1 on usage/IO/parse errors, 2 when any
/// warning or error was reported.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "kernels/Runner.h"
#include "lint/ConvergenceLint.h"
#include "support/Json.h"
#include "transform/BarrierVerifier.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

struct Tally {
  unsigned Units = 0, Errors = 0, Warnings = 0, Notes = 0;
};

struct UnitReport {
  std::string Unit;
  std::string Config;
  unsigned Errors = 0, Warnings = 0, Notes = 0;
  std::vector<std::string> Findings;
};

/// Lints \p M after optionally running config \p Config.
UnitReport lintOne(Module &M, const std::string &Unit,
                   const std::string &Config, unsigned WarpSize,
                   int SoftThreshold, bool Notes, Tally &T) {
  lint::LintOptions LO;
  LO.WarpSize = WarpSize;
  if (Config != "none") {
    const auto PO = standardPipelineByName(Config, SoftThreshold);
    const PipelineReport Report = runSyncPipeline(M, *PO);
    // The registry maps ids to origins only until reallocation recolours
    // the registers; afterwards the analyzer runs origin-blind.
    if (!PO->ReallocBarriers) {
      const lint::LintOptions FromReg =
          lintOptionsFromRegistry(Report.Registry);
      LO.OriginAware = FromReg.OriginAware;
      LO.Origins = FromReg.Origins;
    }
  }
  const lint::LintResult R = lint::runConvergenceLint(M, LO);

  UnitReport U;
  U.Unit = Unit;
  U.Config = Config;
  U.Errors = R.count(lint::LintSeverity::Error);
  U.Warnings = R.count(lint::LintSeverity::Warning);
  U.Notes = R.count(lint::LintSeverity::Note);
  for (const lint::LintDiagnostic &D : R.Diagnostics) {
    if (D.Severity == lint::LintSeverity::Note && !Notes)
      continue;
    U.Findings.push_back(D.format());
  }
  ++T.Units;
  T.Errors += U.Errors;
  T.Warnings += U.Warnings;
  T.Notes += U.Notes;
  return U;
}

void emitJson(const std::vector<UnitReport> &Reports, const Tally &T) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.string("simtsr-lint-v1");
  W.key("units");
  W.beginArray();
  for (const UnitReport &U : Reports) {
    W.beginObject();
    W.key("unit");
    W.string(U.Unit);
    W.key("pipeline");
    W.string(U.Config);
    W.key("errors");
    W.numberUnsigned(U.Errors);
    W.key("warnings");
    W.numberUnsigned(U.Warnings);
    W.key("notes");
    W.numberUnsigned(U.Notes);
    W.key("findings");
    W.beginArray();
    for (const std::string &F : U.Findings)
      W.string(F);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("totals");
  W.beginObject();
  W.key("units");
  W.numberUnsigned(T.Units);
  W.key("errors");
  W.numberUnsigned(T.Errors);
  W.key("warnings");
  W.numberUnsigned(T.Warnings);
  W.key("notes");
  W.numberUnsigned(T.Notes);
  W.endObject();
  W.endObject();
  std::printf("%s\n", W.take().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  driver::ToolConfig C;
  uint64_t WarpSize = 32;
  bool Notes = false;
  bool List = false;

  driver::ArgParser P("simtsr-lint", "[file.sir ...]");
  driver::addPipelineFlags(P, C);
  driver::addWorkloadFlags(P, C);
  driver::addCorpusFlags(P, C);
  driver::addJsonFlag(P, C);
  driver::addFileArgs(P, C);
  P.uns("--warp-size", "N", "warp width for threshold checks (default 32)",
        &WarpSize, 1, 64);
  P.flag("--notes", "print informational notes too", &Notes);
  P.flag("--list", "list pipeline configs and workloads", &List);

  switch (P.parse(Argc, Argv)) {
  case driver::ArgParser::Result::Ok:
    break;
  case driver::ArgParser::Result::Exit:
    return 0;
  case driver::ArgParser::Result::Error:
    return 1;
  }

  if (List) {
    std::printf("pipeline configs: none all");
    for (const std::string &N : standardPipelineNames())
      std::printf(" %s", N.c_str());
    std::printf("\nworkloads:");
    for (const Workload &W : makeAllWorkloads())
      std::printf(" %s", W.Name.c_str());
    std::printf("\n");
    return 0;
  }
  if (C.Files.empty() && !C.Workloads && C.Corpus == 0) {
    P.printUsage(stderr);
    return 1;
  }

  const auto Configs = driver::expandPipelineSpec(C.Pipeline);
  const driver::InputSet Inputs = driver::loadInputs(C);
  for (const std::string &E : Inputs.Errors)
    std::fprintf(stderr, "simtsr-lint: %s\n", E.c_str());
  if (!Inputs.ok())
    return 1;

  Tally T;
  std::vector<UnitReport> Reports;
  for (const driver::InputUnit &U : Inputs.Units) {
    for (const std::string &Config : *Configs) {
      // Pipelines mutate modules in place; every config gets a fresh one.
      std::vector<std::string> Errors;
      const std::unique_ptr<Module> M = U.rebuild(&Errors);
      if (!M) {
        for (const std::string &E : Errors)
          std::fprintf(stderr, "simtsr-lint: %s\n", E.c_str());
        return 1;
      }
      const UnitReport R =
          lintOne(*M, U.Name, Config, static_cast<unsigned>(WarpSize),
                  static_cast<int>(C.SoftThreshold), Notes, T);
      if (C.Json) {
        Reports.push_back(R);
        continue;
      }
      std::printf("== %s [%s]\n", R.Unit.c_str(), R.Config.c_str());
      for (const std::string &F : R.Findings)
        std::printf("  %s\n", F.c_str());
    }
  }

  if (C.Json)
    emitJson(Reports, T);
  else
    std::printf("%u units: %u errors, %u warnings, %u notes\n", T.Units,
                T.Errors, T.Warnings, T.Notes);
  return (T.Errors || T.Warnings) ? 2 : 0;
}
