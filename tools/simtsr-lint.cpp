//===- simtsr-lint.cpp - Convergence-safety lint driver -----------------------===//
///
/// \file
/// Command-line front end for the static convergence-safety analyzer
/// (docs/LINT.md). Lints `.sir` files, the Table 2 workload suite or a
/// generated fuzz corpus, either raw or after running a standard pass
/// pipeline — in which case the analyzer is origin-aware through the
/// pipeline's barrier registry (origin-blind after reallocation, whose
/// recolouring invalidates the registry).
///
/// Output is deterministic: one `== unit [config]` header per linted
/// module followed by one line per finding, then a final summary line —
/// the format the CI golden file checks in.
///
/// Exit codes: 0 on a clean sweep, 1 on usage/IO/parse errors, 2 when any
/// warning or error was reported.
///
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "kernels/Runner.h"
#include "lint/ConvergenceLint.h"
#include "transform/BarrierVerifier.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

struct ToolOptions {
  std::vector<std::string> Files;
  std::string Pipeline = "none"; ///< none | a standard config name | all
  bool Workloads = false;
  uint64_t Corpus = 0; ///< Number of generated kernels to lint.
  uint64_t StartSeed = 0;
  unsigned WarpSize = 32;
  int SoftThreshold = 8;
  bool Notes = false;
  bool List = false;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: simtsr-lint [options] [file.sir ...]\n"
      "  --pipeline NAME    run a standard pipeline before linting:\n"
      "                     none (default), all, or one of noop, pdom, sr,\n"
      "                     sr+ip, soft, sr+ip+realloc\n"
      "  --workloads        lint the Table 2 workload suite\n"
      "  --corpus N         lint N generated fuzz kernels\n"
      "  --start-seed N     first corpus seed (default 0)\n"
      "  --warp-size N      warp width for threshold checks (default 32)\n"
      "  --soft-threshold N threshold for the 'soft' config (default 8)\n"
      "  --notes            print informational notes too\n"
      "  --list             list pipeline configs and workloads\n");
}

bool parseUInt(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto NeedValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    uint64_t V = 0;
    if (Arg == "--pipeline") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.Pipeline = S;
    } else if (Arg == "--workloads") {
      Opts.Workloads = true;
    } else if (Arg == "--corpus") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, Opts.Corpus))
        return false;
    } else if (Arg == "--start-seed") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, Opts.StartSeed))
        return false;
    } else if (Arg == "--warp-size") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, V) || V < 1 || V > 64)
        return false;
      Opts.WarpSize = static_cast<unsigned>(V);
    } else if (Arg == "--soft-threshold") {
      const char *S = NeedValue();
      if (!S || !parseUInt(S, V) || V < 1)
        return false;
      Opts.SoftThreshold = static_cast<int>(V);
    } else if (Arg == "--notes") {
      Opts.Notes = true;
    } else if (Arg == "--list") {
      Opts.List = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "simtsr-lint: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Opts.Files.push_back(Arg);
    }
  }
  return true;
}

struct Tally {
  unsigned Units = 0, Errors = 0, Warnings = 0, Notes = 0;
};

/// Lints \p M after optionally running config \p Config, printing the
/// findings under the `== Unit [Config]` header.
void lintOne(Module &M, const std::string &Unit, const std::string &Config,
             const ToolOptions &Opts, Tally &T) {
  lint::LintOptions LO;
  LO.WarpSize = Opts.WarpSize;
  if (Config != "none") {
    const auto PO = standardPipelineByName(Config, Opts.SoftThreshold);
    const PipelineReport Report = runSyncPipeline(M, *PO);
    // The registry maps ids to origins only until reallocation recolours
    // the registers; afterwards the analyzer runs origin-blind.
    if (!PO->ReallocBarriers) {
      const lint::LintOptions FromReg =
          lintOptionsFromRegistry(Report.Registry);
      LO.OriginAware = FromReg.OriginAware;
      LO.Origins = FromReg.Origins;
    }
  }
  const lint::LintResult R = lint::runConvergenceLint(M, LO);

  std::printf("== %s [%s]\n", Unit.c_str(), Config.c_str());
  for (const lint::LintDiagnostic &D : R.Diagnostics) {
    if (D.Severity == lint::LintSeverity::Note && !Opts.Notes)
      continue;
    std::printf("  %s\n", D.format().c_str());
  }
  ++T.Units;
  T.Errors += R.count(lint::LintSeverity::Error);
  T.Warnings += R.count(lint::LintSeverity::Warning);
  T.Notes += R.count(lint::LintSeverity::Note);
}

/// Runs \p Rebuild to get a fresh module per requested config (pipelines
/// mutate modules in place) and lints each.
bool forEachConfig(const std::string &Unit, const ToolOptions &Opts,
                   const std::function<std::unique_ptr<Module>()> &Rebuild,
                   Tally &T) {
  std::vector<std::string> Configs;
  if (Opts.Pipeline == "all")
    Configs = standardPipelineNames();
  else
    Configs.push_back(Opts.Pipeline);
  for (const std::string &C : Configs) {
    if (C != "none" && !standardPipelineByName(C, Opts.SoftThreshold)) {
      std::fprintf(stderr, "simtsr-lint: unknown pipeline '%s'\n", C.c_str());
      return false;
    }
    std::unique_ptr<Module> M = Rebuild();
    if (!M)
      return false;
    lintOne(*M, Unit, C, Opts, T);
  }
  return true;
}

std::string baseName(const std::string &Path) {
  const size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage();
    return 1;
  }
  if (Opts.List) {
    std::printf("pipeline configs: none all");
    for (const std::string &N : standardPipelineNames())
      std::printf(" %s", N.c_str());
    std::printf("\nworkloads:");
    for (const Workload &W : makeAllWorkloads())
      std::printf(" %s", W.Name.c_str());
    std::printf("\n");
    return 0;
  }
  if (Opts.Files.empty() && !Opts.Workloads && Opts.Corpus == 0) {
    printUsage();
    return 1;
  }

  Tally T;
  for (const std::string &Path : Opts.Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "simtsr-lint: cannot read '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    const std::string Text = Buffer.str();
    const std::string Unit = baseName(Path);
    if (!forEachConfig(
            Unit, Opts,
            [&]() -> std::unique_ptr<Module> {
              ParseResult P = parseModule(Text);
              if (!P.ok()) {
                for (const std::string &E : P.Errors)
                  std::fprintf(stderr, "simtsr-lint: %s: %s\n", Unit.c_str(),
                               E.c_str());
                return nullptr;
              }
              return std::move(P.M);
            },
            T))
      return 1;
  }

  if (Opts.Workloads) {
    for (const Workload &W : makeAllWorkloads()) {
      if (!forEachConfig(
              W.Name, Opts, [&]() { return W.M->clone(); }, T))
        return 1;
    }
  }

  for (uint64_t S = 0; S < Opts.Corpus; ++S) {
    GenOptions G;
    G.Seed = Opts.StartSeed + S;
    const std::string Unit = "seed" + std::to_string(G.Seed);
    if (!forEachConfig(
            Unit, Opts, [&]() { return generateKernelModule(G); }, T))
      return 1;
  }

  std::printf("%u units: %u errors, %u warnings, %u notes\n", T.Units,
              T.Errors, T.Warnings, T.Notes);
  return (T.Errors || T.Warnings) ? 2 : 0;
}
