//===- simtsr-lint.cpp - Convergence-safety lint driver -----------------------===//
///
/// \file
/// Command-line front end for the static convergence-safety analyzer
/// (docs/LINT.md). Lints `.sir` files, the Table 2 workload suite or a
/// generated fuzz corpus, either raw or after running a standard pass
/// pipeline — in which case the analyzer is origin-aware through the
/// pipeline's barrier registry (origin-blind after reallocation, whose
/// recolouring invalidates the registry).
///
/// Input selection, pipeline resolution and flag spellings come from the
/// shared driver facade (driver/Driver.h); this file only owns the lint
/// loop and the report formats. Text output is deterministic: one
/// `== unit [config]` header per linted module followed by one line per
/// finding, then a final summary line — the format the CI golden file
/// checks in. --json renders the same findings machine-readably (schema
/// "simtsr-lint-v1").
///
/// --fix switches the tool from reporting to repairing (docs/LINT.md,
/// "Repair"): each unit's gating findings are driven to a fixpoint by the
/// repair synthesizer, the winning edit list is printed, and the repaired
/// module is certified by differential oracle replay before being trusted
/// (--fix-dry-run skips certification; --fix-out DIR writes the repaired
/// `.sir` files). Repair addresses the source module, so --fix requires
/// the default --pipeline none.
///
/// Exit codes: 0 on a clean sweep (with --fix: everything clean or
/// repaired-and-certified), 1 on usage/IO/parse errors, 2 when any warning
/// or error was reported, 3 with --fix when a unit is proven unrepairable
/// or its repair fails certification (the blocking witness is printed).
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "fuzz/Oracle.h"
#include "kernels/Runner.h"
#include "lint/ConvergenceLint.h"
#include "lint/Repair.h"
#include "support/Json.h"
#include "transform/BarrierVerifier.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

struct Tally {
  unsigned Units = 0, Errors = 0, Warnings = 0, Notes = 0;
};

struct UnitReport {
  std::string Unit;
  std::string Config;
  unsigned Errors = 0, Warnings = 0, Notes = 0;
  std::vector<std::string> Findings;
};

/// Lints \p M after optionally running config \p Config.
UnitReport lintOne(Module &M, const std::string &Unit,
                   const std::string &Config, unsigned WarpSize,
                   int SoftThreshold, bool Notes, Tally &T) {
  lint::LintOptions LO;
  LO.WarpSize = WarpSize;
  if (Config != "none") {
    const auto PO = standardPipelineSpec(Config, SoftThreshold);
    const PipelineReport Report = runSyncPipeline(M, *PO);
    // The registry maps ids to origins only until reallocation recolours
    // the registers; afterwards the analyzer runs origin-blind.
    const bool Reallocs =
        std::find(PO->Stages.begin(), PO->Stages.end(), "realloc") !=
        PO->Stages.end();
    if (!Reallocs) {
      const lint::LintOptions FromReg =
          lintOptionsFromRegistry(Report.Registry);
      LO.OriginAware = FromReg.OriginAware;
      LO.Origins = FromReg.Origins;
    }
  }
  const lint::LintResult R = lint::runConvergenceLint(M, LO);

  UnitReport U;
  U.Unit = Unit;
  U.Config = Config;
  U.Errors = R.count(lint::LintSeverity::Error);
  U.Warnings = R.count(lint::LintSeverity::Warning);
  U.Notes = R.count(lint::LintSeverity::Note);
  for (const lint::LintDiagnostic &D : R.Diagnostics) {
    if (D.Severity == lint::LintSeverity::Note && !Notes)
      continue;
    U.Findings.push_back(D.format());
  }
  ++T.Units;
  T.Errors += U.Errors;
  T.Warnings += U.Warnings;
  T.Notes += U.Notes;
  return U;
}

void emitJson(const std::vector<UnitReport> &Reports, const Tally &T) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.string("simtsr-lint-v1");
  W.key("units");
  W.beginArray();
  for (const UnitReport &U : Reports) {
    W.beginObject();
    W.key("unit");
    W.string(U.Unit);
    W.key("pipeline");
    W.string(U.Config);
    W.key("errors");
    W.numberUnsigned(U.Errors);
    W.key("warnings");
    W.numberUnsigned(U.Warnings);
    W.key("notes");
    W.numberUnsigned(U.Notes);
    W.key("findings");
    W.beginArray();
    for (const std::string &F : U.Findings)
      W.string(F);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("totals");
  W.beginObject();
  W.key("units");
  W.numberUnsigned(T.Units);
  W.key("errors");
  W.numberUnsigned(T.Errors);
  W.key("warnings");
  W.numberUnsigned(T.Warnings);
  W.key("notes");
  W.numberUnsigned(T.Notes);
  W.endObject();
  W.endObject();
  std::printf("%s\n", W.take().c_str());
}

/// One unit's repair outcome plus its certification verdict, for both the
/// text and the JSON report.
struct FixReport {
  std::string Unit;
  lint::RepairOutcome Outcome;
  /// "certified", "failed" or "skipped".
  std::string Certification = "skipped";
  std::string CertDetail; ///< Why skipped / how it failed; stats when OK.
  size_t CertRuns = 0;
  size_t CertLivelocks = 0;
};

struct FixTally {
  unsigned Units = 0, Clean = 0, Repaired = 0, Unrepairable = 0,
           Uncertified = 0;
};

void emitFixJson(const std::vector<FixReport> &Reports, const FixTally &T) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.string("simtsr-lint-fix-v1");
  W.key("units");
  W.beginArray();
  for (const FixReport &R : Reports) {
    W.beginObject();
    W.key("unit");
    W.string(R.Unit);
    W.key("status");
    W.string(lint::getRepairStatusName(R.Outcome.Status));
    W.key("iterations");
    W.numberUnsigned(R.Outcome.Iterations);
    W.key("candidates");
    W.numberUnsigned(R.Outcome.CandidatesTried);
    W.key("edits");
    W.beginArray();
    for (const lint::RepairEdit &E : R.Outcome.Edits)
      W.string(E.format());
    W.endArray();
    W.key("certification");
    W.string(R.Certification);
    if (!R.CertDetail.empty()) {
      W.key("certification_detail");
      W.string(R.CertDetail);
    }
    if (!R.Outcome.BlockingWitness.empty()) {
      W.key("blocking_witness");
      W.string(R.Outcome.BlockingWitness);
    }
    W.endObject();
  }
  W.endArray();
  W.key("totals");
  W.beginObject();
  W.key("units");
  W.numberUnsigned(T.Units);
  W.key("clean");
  W.numberUnsigned(T.Clean);
  W.key("repaired");
  W.numberUnsigned(T.Repaired);
  W.key("unrepairable");
  W.numberUnsigned(T.Unrepairable);
  W.key("uncertified");
  W.numberUnsigned(T.Uncertified);
  W.endObject();
  W.endObject();
  std::printf("%s\n", W.take().c_str());
}

/// The repair loop behind --fix. \returns the process exit code.
int runFix(const driver::ToolConfig &C, const driver::InputSet &Inputs,
           unsigned WarpSize, bool DryRun, const std::string &FixOut) {
  if (!FixOut.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(FixOut, Ec);
    if (Ec) {
      std::fprintf(stderr, "simtsr-lint: cannot create '%s': %s\n",
                   FixOut.c_str(), Ec.message().c_str());
      return 1;
    }
  }

  FixTally T;
  std::vector<FixReport> Reports;
  for (const driver::InputUnit &U : Inputs.Units) {
    std::vector<std::string> Errors;
    const std::unique_ptr<Module> M = U.rebuild(&Errors);
    if (!M) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "simtsr-lint: %s\n", E.c_str());
      return 1;
    }

    FixReport R;
    R.Unit = U.Name;
    lint::RepairOptions RO;
    RO.Lint.WarpSize = WarpSize;
    R.Outcome = lint::synthesizeRepair(*M, RO);

    ++T.Units;
    switch (R.Outcome.Status) {
    case lint::RepairStatus::Clean:
      ++T.Clean;
      break;
    case lint::RepairStatus::Unrepairable:
      ++T.Unrepairable;
      break;
    case lint::RepairStatus::Repaired: {
      ++T.Repaired;
      if (DryRun) {
        R.CertDetail = "--fix-dry-run";
      } else if (!M->functionByName("kernel")) {
        // The oracle launches @kernel; without one the repair is proven
        // static-only (re-lints clean) but cannot be replayed.
        R.CertDetail = "static-only: no @kernel";
      } else {
        OracleOptions Base;
        Base.WarpSize = WarpSize;
        Base.SoftThreshold = static_cast<int>(C.SoftThreshold);
        const RepairCertification Cert =
            certifyRepair(R.Outcome.RepairedText, Base);
        R.CertRuns = Cert.Runs;
        R.CertLivelocks = Cert.ProgressLivelocks.size();
        if (Cert.Certified) {
          R.Certification = "certified";
        } else {
          R.Certification = "failed";
          R.CertDetail = Cert.Detail;
          ++T.Uncertified;
        }
      }
      break;
    }
    }

    // Write repaired (and, for convenient round-tripping, clean) modules;
    // unrepairable partial repairs are never emitted.
    if (!FixOut.empty() && R.Outcome.Status != lint::RepairStatus::Unrepairable) {
      std::string Name = U.Name;
      if (Name.size() < 4 || Name.compare(Name.size() - 4, 4, ".sir") != 0)
        Name += ".sir";
      std::string Error;
      if (!driver::writeStringToFile(FixOut + "/" + Name,
                                     R.Outcome.RepairedText, Error)) {
        std::fprintf(stderr, "simtsr-lint: %s\n", Error.c_str());
        return 1;
      }
    }

    if (C.Json) {
      Reports.push_back(std::move(R));
      continue;
    }
    std::printf("== %s [fix]\n", R.Unit.c_str());
    if (R.Outcome.Status == lint::RepairStatus::Clean) {
      std::printf("  status: clean\n");
      continue;
    }
    std::printf("  status: %s (%zu edits, %u iterations, %u candidates)\n",
                lint::getRepairStatusName(R.Outcome.Status),
                R.Outcome.Edits.size(), R.Outcome.Iterations,
                R.Outcome.CandidatesTried);
    for (const lint::RepairEdit &E : R.Outcome.Edits)
      std::printf("  edit: %s\n", E.format().c_str());
    if (R.Outcome.Status == lint::RepairStatus::Unrepairable) {
      std::printf("  blocking witness: %s\n",
                  R.Outcome.BlockingWitness.c_str());
      continue;
    }
    if (R.Certification == "certified") {
      std::printf("  certification: certified (%zu runs", R.CertRuns);
      if (R.CertLivelocks)
        std::printf(", %zu classified progress-livelocks", R.CertLivelocks);
      std::printf(")\n");
    } else if (R.Certification == "failed") {
      std::printf("  certification: FAILED: %s\n", R.CertDetail.c_str());
    } else {
      std::printf("  certification: skipped (%s)\n", R.CertDetail.c_str());
    }
  }

  if (C.Json)
    emitFixJson(Reports, T);
  else
    std::printf("%u units: %u clean, %u repaired, %u unrepairable, "
                "%u uncertified\n",
                T.Units, T.Clean, T.Repaired, T.Unrepairable, T.Uncertified);
  return (T.Unrepairable || T.Uncertified) ? 3 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  driver::ToolConfig C;
  uint64_t WarpSize = 32;
  bool Notes = false;
  bool List = false;
  bool Fix = false;
  bool FixDryRun = false;
  std::string FixOut;

  driver::ArgParser P("simtsr-lint", "[file.sir ...]");
  driver::addPipelineFlags(P, C);
  driver::addWorkloadFlags(P, C);
  driver::addCorpusFlags(P, C);
  driver::addJsonFlag(P, C);
  driver::addFileArgs(P, C);
  P.uns("--warp-size", "N", "warp width for threshold checks (default 32)",
        &WarpSize, 1, 64);
  P.flag("--notes", "print informational notes too", &Notes);
  P.flag("--list", "list pipeline configs and workloads", &List);
  P.flag("--fix",
         "repair gating findings to a fixpoint and certify the result by "
         "differential oracle replay (exit 3 when proven unrepairable)",
         &Fix);
  P.str("--fix-out", "DIR",
        "write each repaired module to DIR/<unit>.sir (implies --fix)",
        &FixOut);
  P.flag("--fix-dry-run",
         "propose repairs without oracle certification (implies --fix)",
         &FixDryRun);

  switch (P.parse(Argc, Argv)) {
  case driver::ArgParser::Result::Ok:
    break;
  case driver::ArgParser::Result::Exit:
    return 0;
  case driver::ArgParser::Result::Error:
    return 1;
  }

  if (List) {
    std::printf("pipeline configs: none all");
    for (const std::string &N : standardPipelineNames())
      std::printf(" %s", N.c_str());
    std::printf("\nworkloads:");
    for (const Workload &W : makeAllWorkloads())
      std::printf(" %s", W.Name.c_str());
    std::printf("\n");
    return 0;
  }
  if (C.Files.empty() && !C.Workloads && C.Corpus == 0) {
    P.printUsage(stderr);
    return 1;
  }

  Fix = Fix || FixDryRun || !FixOut.empty();
  if (Fix && C.Pipeline != "none") {
    std::fprintf(stderr, "simtsr-lint: --fix repairs the source module and "
                         "requires --pipeline none\n");
    return 1;
  }

  const auto Configs = driver::expandPipelineSpec(C.Pipeline);
  const driver::InputSet Inputs = driver::loadInputs(C);
  for (const std::string &E : Inputs.Errors)
    std::fprintf(stderr, "simtsr-lint: %s\n", E.c_str());
  if (!Inputs.ok())
    return 1;

  if (Fix)
    return runFix(C, Inputs, static_cast<unsigned>(WarpSize), FixDryRun,
                  FixOut);

  Tally T;
  std::vector<UnitReport> Reports;
  for (const driver::InputUnit &U : Inputs.Units) {
    for (const std::string &Config : *Configs) {
      // Pipelines mutate modules in place; every config gets a fresh one.
      std::vector<std::string> Errors;
      const std::unique_ptr<Module> M = U.rebuild(&Errors);
      if (!M) {
        for (const std::string &E : Errors)
          std::fprintf(stderr, "simtsr-lint: %s\n", E.c_str());
        return 1;
      }
      const UnitReport R =
          lintOne(*M, U.Name, Config, static_cast<unsigned>(WarpSize),
                  static_cast<int>(C.SoftThreshold), Notes, T);
      if (C.Json) {
        Reports.push_back(R);
        continue;
      }
      std::printf("== %s [%s]\n", R.Unit.c_str(), R.Config.c_str());
      for (const std::string &F : R.Findings)
        std::printf("  %s\n", F.c_str());
    }
  }

  if (C.Json)
    emitJson(Reports, T);
  else
    std::printf("%u units: %u errors, %u warnings, %u notes\n", T.Units,
                T.Errors, T.Warnings, T.Notes);
  return (T.Errors || T.Warnings) ? 2 : 0;
}
