//===- simtsr-trace.cpp - Observability driver --------------------------------===//
///
/// \file
/// Runs any Table 2 workload under any standard pipeline configuration
/// with the observability layer enabled and reports what the toolchain
/// and the simulator actually did:
///
///  - pass remarks (JSONL, --remarks-out) — every placement, downgrade
///    and deconfliction decision the pass stack made;
///  - the simulator event timeline as Chrome trace-event JSON
///    (--trace-out, loadable in chrome://tracing or Perfetto);
///  - the launch trace digest — a stable 64-bit fingerprint of the
///    schedule (see docs/OBSERVABILITY.md).
///
/// --diff A,B runs the workload under two configurations and prints the
/// first divergent scheduling event, answering "where exactly did the SR
/// pipeline start scheduling differently from PDOM?". --golden prints
/// digest lines for the whole suite in the golden-test file format.
/// --json renders the per-run summaries machine-readably (schema
/// "simtsr-trace-v1").
///
/// Flags are the canonical driver spellings; --config remains an accepted
/// alias of --pipeline (registered centrally by driver::addPipelineFlags).
///
/// Exit codes: 0 on success (including an expected --diff divergence),
/// 1 on usage errors, 2 when a simulation fails.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "kernels/Runner.h"
#include "observe/Remark.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

struct TraceOptions {
  std::string Workload;
  std::string DiffA, DiffB; // set when --diff was given
  std::string TraceOut;
  std::string RemarksOut;
  bool List = false;
  bool Golden = false;
};

const Workload *findWorkload(const std::vector<Workload> &Suite,
                             const std::string &Name) {
  for (const Workload &W : Suite)
    if (W.Name == Name)
      return &W;
  return nullptr;
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::string Error;
  if (driver::writeStringToFile(Path, Content, Error))
    return true;
  std::fprintf(stderr, "simtsr-trace: %s\n", Error.c_str());
  return false;
}

/// Runs one traced config, appending its remarks to \p Remarks.
TracedWorkloadResult runConfig(const Workload &W, const driver::ToolConfig &C,
                               const std::string &ConfigName,
                               observe::RemarkStream *Remarks) {
  auto Pipeline = standardPipelineSpec(ConfigName,
                                         static_cast<int>(C.SoftThreshold));
  if (!Pipeline) {
    std::fprintf(stderr, "simtsr-trace: unknown config '%s'\n",
                 ConfigName.c_str());
    std::exit(1);
  }
  return runWorkloadTraced(W, *Pipeline, C.Policy,
                           static_cast<unsigned>(C.Warps), C.Seed, Remarks,
                           1u << 20, C.Progress);
}

void printRunSummary(const driver::ToolConfig &C, const TraceOptions &Opts,
                     const std::string &ConfigName,
                     const TracedWorkloadResult &R) {
  size_t Events = 0;
  bool Truncated = false;
  for (const WarpTrace &T : R.Warps) {
    Events += T.Events.size();
    Truncated |= T.Truncated;
  }
  std::printf("%-14s config=%-13s policy=%-15s warps=%u seed=%llu",
              Opts.Workload.c_str(), ConfigName.c_str(),
              driver::policyName(C.Policy), static_cast<unsigned>(C.Warps),
              static_cast<unsigned long long>(C.Seed));
  // Fair output stays byte-identical to the pre-progress format.
  if (!C.Progress.isFair())
    std::printf(" progress=%s", formatProgressSpec(C.Progress).c_str());
  std::printf("\n");
  std::printf("  status: %s\n", R.Ok ? "ok" : "FAILED");
  if (!R.Ok && !R.Warps.empty())
    std::printf("  failure: warp %u: %s\n", R.Warps.back().WarpIndex,
                R.Warps.back().TrapMessage.c_str());
  std::printf("  digest: %s\n", jsonHex64(R.TraceDigest).c_str());
  std::printf("  cycles: %llu  issue-slots: %llu  events: %zu%s\n",
              static_cast<unsigned long long>(R.Cycles),
              static_cast<unsigned long long>(R.IssueSlots), Events,
              Truncated ? " (truncated)" : "");
}

/// One run as a JSON object (inside the --json report).
void jsonRun(JsonWriter &W, const driver::ToolConfig &C,
             const std::string &ConfigName, const TracedWorkloadResult &R) {
  W.beginObject();
  W.key("pipeline");
  W.string(ConfigName);
  W.key("policy");
  W.string(driver::policyName(C.Policy));
  if (!C.Progress.isFair()) {
    W.key("progress");
    W.string(formatProgressSpec(C.Progress));
  }
  W.key("status");
  W.string(R.Ok ? "ok" : "failed");
  W.key("digest");
  W.string(jsonHex64(R.TraceDigest));
  W.key("cycles");
  W.numberUnsigned(R.Cycles);
  W.key("issue_slots");
  W.numberUnsigned(R.IssueSlots);
  W.endObject();
}

void emitJsonReport(const driver::ToolConfig &C, const TraceOptions &Opts,
                    const std::vector<std::pair<std::string,
                                                const TracedWorkloadResult *>>
                        &Runs) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.string("simtsr-trace-v1");
  W.key("workload");
  W.string(Opts.Workload);
  W.key("warps");
  W.numberUnsigned(C.Warps);
  W.key("seed");
  W.numberUnsigned(C.Seed);
  W.key("runs");
  W.beginArray();
  for (const auto &[Name, R] : Runs)
    jsonRun(W, C, Name, *R);
  W.endArray();
  W.endObject();
  std::printf("%s\n", W.take().c_str());
}

/// Chrome trace JSON for one traced result.
std::string chromeTraceOf(const TracedWorkloadResult &R) {
  std::vector<std::pair<unsigned, const std::vector<observe::TraceEvent> *>>
      Warps;
  for (const WarpTrace &T : R.Warps)
    Warps.push_back({T.WarpIndex, &T.Events});
  return observe::renderChromeTrace(Warps);
}

int runDiff(const Workload &W, const driver::ToolConfig &C,
            const TraceOptions &Opts) {
  observe::RemarkStream Remarks;
  const TracedWorkloadResult A = runConfig(W, C, Opts.DiffA, &Remarks);
  const TracedWorkloadResult B = runConfig(W, C, Opts.DiffB, &Remarks);
  if (C.Json)
    emitJsonReport(C, Opts, {{Opts.DiffA, &A}, {Opts.DiffB, &B}});
  else {
    printRunSummary(C, Opts, Opts.DiffA, A);
    printRunSummary(C, Opts, Opts.DiffB, B);
  }
  if (!Opts.TraceOut.empty() && !writeFile(Opts.TraceOut, chromeTraceOf(A)))
    return 1;
  if (!Opts.RemarksOut.empty() &&
      !writeFile(Opts.RemarksOut, Remarks.toJsonl()))
    return 1;
  if (!A.Ok || !B.Ok)
    return 2;

  if (A.TraceDigest == B.TraceDigest) {
    std::printf("digests match: the two configurations produce identical "
                "schedules\n");
    return 0;
  }
  std::printf("digests differ: %s vs %s\n", jsonHex64(A.TraceDigest).c_str(),
              jsonHex64(B.TraceDigest).c_str());
  const size_t NumWarps = std::max(A.Warps.size(), B.Warps.size());
  for (size_t Wi = 0; Wi < NumWarps; ++Wi) {
    if (Wi >= A.Warps.size() || Wi >= B.Warps.size()) {
      std::printf("warp %zu ran under only one configuration\n", Wi);
      return 0;
    }
    if (A.Warps[Wi].Digest == B.Warps[Wi].Digest)
      continue;
    const observe::TraceDivergence D =
        observe::diffTraces(A.Warps[Wi].Events, B.Warps[Wi].Events);
    if (!D.Diverged) {
      // Digest differs past the recorder cap.
      std::printf("warp %zu: traces identical within the first %zu events; "
                  "divergence lies beyond the recorder cap\n",
                  Wi, A.Warps[Wi].Events.size());
      return 0;
    }
    std::printf("warp %zu: first divergent event at #%zu:\n", Wi, D.Index);
    std::printf("  %s: %s\n", Opts.DiffA.c_str(), D.A.c_str());
    std::printf("  %s: %s\n", Opts.DiffB.c_str(), D.B.c_str());
    return 0;
  }
  std::printf("per-warp digests match; launch digests differ only in warp "
              "count\n");
  return 0;
}

int runGolden(const driver::ToolConfig &C) {
  const std::vector<Workload> Suite = makeAllWorkloads(C.Scale);
  const SchedulerPolicy Policies[] = {SchedulerPolicy::MaxConvergence,
                                      SchedulerPolicy::MinPC,
                                      SchedulerPolicy::RoundRobin};
  std::printf("# simtsr-trace --golden: warps=%u scale=%g seed=%llu\n",
              static_cast<unsigned>(C.Warps), C.Scale,
              static_cast<unsigned long long>(C.Seed));
  for (const Workload &W : Suite)
    for (const std::string &Config : standardPipelineNames())
      for (SchedulerPolicy Policy : Policies) {
        auto Pipeline =
            standardPipelineSpec(Config, static_cast<int>(C.SoftThreshold));
        const uint64_t Digest = workloadTraceDigest(
            W, *Pipeline, Policy, static_cast<unsigned>(C.Warps), C.Seed);
        std::printf("%s %s %s %s\n", W.Name.c_str(), Config.c_str(),
                    driver::policyName(Policy), jsonHex64(Digest).c_str());
      }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  driver::ToolConfig C;
  C.Pipeline = "pdom"; // This tool always runs a real pipeline.
  C.Scale = 0.25;      // Traced runs default to the small suite.
  TraceOptions Opts;

  driver::ArgParser P("simtsr-trace");
  P.flag("--list", "list workloads, configs and policies", &Opts.List);
  P.str("--workload", "NAME", "Table 2 workload to run (required)",
        &Opts.Workload);
  driver::addPipelineFlags(P, C); // Registers the --config alias too.
  P.custom("--diff", "A,B",
           "run configs A and B; report the first divergent scheduling event",
           [&Opts](const std::string &V) {
             const size_t Comma = V.find(',');
             if (Comma == std::string::npos || Comma == 0 ||
                 Comma + 1 == V.size())
               return false;
             Opts.DiffA = V.substr(0, Comma);
             Opts.DiffB = V.substr(Comma + 1);
             return true;
           });
  driver::addPolicyFlag(P, C);
  driver::addProgressFlag(P, C);
  driver::addLaunchFlags(P, C);
  driver::addWorkloadFlags(P, C);
  driver::addJsonFlag(P, C);
  P.str("--trace-out", "FILE", "write Chrome trace-event JSON",
        &Opts.TraceOut);
  P.str("--remarks-out", "FILE", "write pass remarks as JSONL",
        &Opts.RemarksOut);
  P.flag("--golden",
         "print golden digest lines for the whole suite (all configs x "
         "policies)",
         &Opts.Golden);

  switch (P.parse(Argc, Argv)) {
  case driver::ArgParser::Result::Ok:
    break;
  case driver::ArgParser::Result::Exit:
    return 0;
  case driver::ArgParser::Result::Error:
    return 1;
  }

  if (Opts.List) {
    const std::vector<Workload> Suite = makeAllWorkloads(0.25);
    std::printf("workloads:");
    for (const Workload &W : Suite)
      std::printf(" %s", W.Name.c_str());
    std::printf("\nconfigs:");
    for (const std::string &Config : standardPipelineNames())
      std::printf(" %s", Config.c_str());
    std::printf("\npolicies: max-convergence min-pc round-robin\n");
    return 0;
  }
  if (Opts.Golden)
    return runGolden(C);
  if (Opts.Workload.empty()) {
    std::fprintf(stderr, "simtsr-trace: --workload is required\n");
    P.printUsage(stderr);
    return 1;
  }

  const std::vector<Workload> Suite = makeAllWorkloads(C.Scale);
  const Workload *W = findWorkload(Suite, Opts.Workload);
  if (!W) {
    std::fprintf(stderr,
                 "simtsr-trace: unknown workload '%s' (try --list)\n",
                 Opts.Workload.c_str());
    return 1;
  }

  if (!Opts.DiffA.empty())
    return runDiff(*W, C, Opts);

  observe::RemarkStream Remarks;
  const TracedWorkloadResult R = runConfig(*W, C, C.Pipeline, &Remarks);
  if (C.Json)
    emitJsonReport(C, Opts, {{C.Pipeline, &R}});
  else
    printRunSummary(C, Opts, C.Pipeline, R);
  if (!Opts.TraceOut.empty() && !writeFile(Opts.TraceOut, chromeTraceOf(R)))
    return 1;
  if (!Opts.RemarksOut.empty() &&
      !writeFile(Opts.RemarksOut, Remarks.toJsonl()))
    return 1;
  return R.Ok ? 0 : 2;
}
