//===- simtsr-trace.cpp - Observability driver --------------------------------===//
///
/// \file
/// Runs any Table 2 workload under any standard pipeline configuration
/// with the observability layer enabled and reports what the toolchain
/// and the simulator actually did:
///
///  - pass remarks (JSONL, --remarks-out) — every placement, downgrade
///    and deconfliction decision the pass stack made;
///  - the simulator event timeline as Chrome trace-event JSON
///    (--trace-out, loadable in chrome://tracing or Perfetto);
///  - the launch trace digest — a stable 64-bit fingerprint of the
///    schedule (see docs/OBSERVABILITY.md).
///
/// --diff A,B runs the workload under two configurations and prints the
/// first divergent scheduling event, answering "where exactly did the SR
/// pipeline start scheduling differently from PDOM?". --golden prints
/// digest lines for the whole suite in the golden-test file format.
///
/// Exit codes: 0 on success (including an expected --diff divergence),
/// 1 on usage errors, 2 when a simulation fails.
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"
#include "observe/Remark.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

struct ToolOptions {
  std::string Workload;
  std::string Config = "pdom";
  std::string DiffA, DiffB; // set when --diff was given
  SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence;
  unsigned Warps = 2;
  double Scale = 0.25;
  uint64_t Seed = 2020;
  int SoftThreshold = 8;
  std::string TraceOut;
  std::string RemarksOut;
  bool List = false;
  bool Golden = false;
};

const char *policyName(SchedulerPolicy P) {
  switch (P) {
  case SchedulerPolicy::MaxConvergence:
    return "max-convergence";
  case SchedulerPolicy::MinPC:
    return "min-pc";
  case SchedulerPolicy::RoundRobin:
    return "round-robin";
  }
  return "?";
}

bool parsePolicy(const std::string &S, SchedulerPolicy &Out) {
  if (S == "max-convergence" || S == "maxconv") {
    Out = SchedulerPolicy::MaxConvergence;
    return true;
  }
  if (S == "min-pc" || S == "minpc") {
    Out = SchedulerPolicy::MinPC;
    return true;
  }
  if (S == "round-robin" || S == "rr") {
    Out = SchedulerPolicy::RoundRobin;
    return true;
  }
  return false;
}

void printUsage() {
  std::fprintf(
      stderr,
      "usage: simtsr-trace [options]\n"
      "  --list                 list workloads, configs and policies\n"
      "  --workload NAME        Table 2 workload to run (required)\n"
      "  --config NAME          pipeline config (default pdom)\n"
      "  --diff A,B             run configs A and B; report the first\n"
      "                         divergent scheduling event\n"
      "  --policy P             max-convergence | min-pc | round-robin\n"
      "  --warps N              warps per grid (default 2)\n"
      "  --scale S              workload scale in (0, 1] (default 0.25)\n"
      "  --seed N               launch seed (default 2020)\n"
      "  --soft-threshold N     threshold for the 'soft' config (default 8)\n"
      "  --trace-out FILE       write Chrome trace-event JSON\n"
      "  --remarks-out FILE     write pass remarks as JSONL\n"
      "  --golden               print golden digest lines for the whole\n"
      "                         suite (all configs x policies)\n");
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto NeedValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--list") {
      Opts.List = true;
    } else if (Arg == "--golden") {
      Opts.Golden = true;
    } else if (Arg == "--workload") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.Workload = S;
    } else if (Arg == "--config") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.Config = S;
    } else if (Arg == "--diff") {
      const char *S = NeedValue();
      if (!S)
        return false;
      const std::string Pair = S;
      const size_t Comma = Pair.find(',');
      if (Comma == std::string::npos || Comma == 0 ||
          Comma + 1 == Pair.size())
        return false;
      Opts.DiffA = Pair.substr(0, Comma);
      Opts.DiffB = Pair.substr(Comma + 1);
    } else if (Arg == "--policy") {
      const char *S = NeedValue();
      if (!S || !parsePolicy(S, Opts.Policy))
        return false;
    } else if (Arg == "--warps") {
      const char *S = NeedValue();
      char *End = nullptr;
      unsigned long V = S ? std::strtoul(S, &End, 10) : 0;
      if (!S || End == S || *End != '\0' || V < 1 || V > 4096)
        return false;
      Opts.Warps = static_cast<unsigned>(V);
    } else if (Arg == "--scale") {
      const char *S = NeedValue();
      char *End = nullptr;
      double V = S ? std::strtod(S, &End) : 0.0;
      if (!S || End == S || *End != '\0' || V <= 0.0 || V > 1.0)
        return false;
      Opts.Scale = V;
    } else if (Arg == "--seed") {
      const char *S = NeedValue();
      char *End = nullptr;
      unsigned long long V = S ? std::strtoull(S, &End, 10) : 0;
      if (!S || End == S || *End != '\0')
        return false;
      Opts.Seed = V;
    } else if (Arg == "--soft-threshold") {
      const char *S = NeedValue();
      char *End = nullptr;
      long V = S ? std::strtol(S, &End, 10) : 0;
      if (!S || End == S || *End != '\0' || V < 0 || V > 64)
        return false;
      Opts.SoftThreshold = static_cast<int>(V);
    } else if (Arg == "--trace-out") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.TraceOut = S;
    } else if (Arg == "--remarks-out") {
      const char *S = NeedValue();
      if (!S)
        return false;
      Opts.RemarksOut = S;
    } else {
      std::fprintf(stderr, "simtsr-trace: unknown argument '%s'\n",
                   Arg.c_str());
      return false;
    }
  }
  return true;
}

const Workload *findWorkload(const std::vector<Workload> &Suite,
                             const std::string &Name) {
  for (const Workload &W : Suite)
    if (W.Name == Name)
      return &W;
  return nullptr;
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "simtsr-trace: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(Content.data(), 1, Content.size(), Out);
  std::fclose(Out);
  return true;
}

/// Runs one traced config, appending its remarks to \p Remarks.
TracedWorkloadResult runConfig(const Workload &W, const ToolOptions &Opts,
                               const std::string &ConfigName,
                               observe::RemarkStream *Remarks) {
  auto Pipeline =
      standardPipelineByName(ConfigName, Opts.SoftThreshold);
  if (!Pipeline) {
    std::fprintf(stderr, "simtsr-trace: unknown config '%s'\n",
                 ConfigName.c_str());
    std::exit(1);
  }
  return runWorkloadTraced(W, *Pipeline, Opts.Policy, Opts.Warps, Opts.Seed,
                           Remarks);
}

void printRunSummary(const ToolOptions &Opts, const std::string &ConfigName,
                     const TracedWorkloadResult &R) {
  size_t Events = 0;
  bool Truncated = false;
  for (const WarpTrace &T : R.Warps) {
    Events += T.Events.size();
    Truncated |= T.Truncated;
  }
  std::printf("%-14s config=%-13s policy=%-15s warps=%u seed=%llu\n",
              Opts.Workload.c_str(), ConfigName.c_str(),
              policyName(Opts.Policy), Opts.Warps,
              static_cast<unsigned long long>(Opts.Seed));
  std::printf("  status: %s\n", R.Ok ? "ok" : "FAILED");
  if (!R.Ok && !R.Warps.empty())
    std::printf("  failure: warp %u: %s\n", R.Warps.back().WarpIndex,
                R.Warps.back().TrapMessage.c_str());
  std::printf("  digest: %s\n", jsonHex64(R.TraceDigest).c_str());
  std::printf("  cycles: %llu  issue-slots: %llu  events: %zu%s\n",
              static_cast<unsigned long long>(R.Cycles),
              static_cast<unsigned long long>(R.IssueSlots), Events,
              Truncated ? " (truncated)" : "");
}

/// Chrome trace JSON for one traced result.
std::string chromeTraceOf(const TracedWorkloadResult &R) {
  std::vector<std::pair<unsigned, const std::vector<observe::TraceEvent> *>>
      Warps;
  for (const WarpTrace &T : R.Warps)
    Warps.push_back({T.WarpIndex, &T.Events});
  return observe::renderChromeTrace(Warps);
}

int runDiff(const Workload &W, const ToolOptions &Opts) {
  observe::RemarkStream Remarks;
  const TracedWorkloadResult A = runConfig(W, Opts, Opts.DiffA, &Remarks);
  const TracedWorkloadResult B = runConfig(W, Opts, Opts.DiffB, &Remarks);
  printRunSummary(Opts, Opts.DiffA, A);
  printRunSummary(Opts, Opts.DiffB, B);
  if (!Opts.TraceOut.empty() && !writeFile(Opts.TraceOut, chromeTraceOf(A)))
    return 1;
  if (!Opts.RemarksOut.empty() &&
      !writeFile(Opts.RemarksOut, Remarks.toJsonl()))
    return 1;
  if (!A.Ok || !B.Ok)
    return 2;

  if (A.TraceDigest == B.TraceDigest) {
    std::printf("digests match: the two configurations produce identical "
                "schedules\n");
    return 0;
  }
  std::printf("digests differ: %s vs %s\n", jsonHex64(A.TraceDigest).c_str(),
              jsonHex64(B.TraceDigest).c_str());
  const size_t NumWarps = std::max(A.Warps.size(), B.Warps.size());
  for (size_t Wi = 0; Wi < NumWarps; ++Wi) {
    if (Wi >= A.Warps.size() || Wi >= B.Warps.size()) {
      std::printf("warp %zu ran under only one configuration\n", Wi);
      return 0;
    }
    if (A.Warps[Wi].Digest == B.Warps[Wi].Digest)
      continue;
    const observe::TraceDivergence D =
        observe::diffTraces(A.Warps[Wi].Events, B.Warps[Wi].Events);
    if (!D.Diverged) {
      // Digest differs past the recorder cap.
      std::printf("warp %zu: traces identical within the first %zu events; "
                  "divergence lies beyond the recorder cap\n",
                  Wi, A.Warps[Wi].Events.size());
      return 0;
    }
    std::printf("warp %zu: first divergent event at #%zu:\n", Wi, D.Index);
    std::printf("  %s: %s\n", Opts.DiffA.c_str(), D.A.c_str());
    std::printf("  %s: %s\n", Opts.DiffB.c_str(), D.B.c_str());
    return 0;
  }
  std::printf("per-warp digests match; launch digests differ only in warp "
              "count\n");
  return 0;
}

int runGolden(const ToolOptions &Opts) {
  const std::vector<Workload> Suite = makeAllWorkloads(Opts.Scale);
  const SchedulerPolicy Policies[] = {SchedulerPolicy::MaxConvergence,
                                      SchedulerPolicy::MinPC,
                                      SchedulerPolicy::RoundRobin};
  std::printf("# simtsr-trace --golden: warps=%u scale=%g seed=%llu\n",
              Opts.Warps, Opts.Scale,
              static_cast<unsigned long long>(Opts.Seed));
  for (const Workload &W : Suite)
    for (const std::string &Config : standardPipelineNames())
      for (SchedulerPolicy Policy : Policies) {
        auto Pipeline = standardPipelineByName(Config, Opts.SoftThreshold);
        const uint64_t Digest = workloadTraceDigest(
            W, *Pipeline, Policy, Opts.Warps, Opts.Seed);
        std::printf("%s %s %s %s\n", W.Name.c_str(), Config.c_str(),
                    policyName(Policy), jsonHex64(Digest).c_str());
      }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage();
    return 1;
  }
  if (Opts.List) {
    const std::vector<Workload> Suite = makeAllWorkloads(0.25);
    std::printf("workloads:");
    for (const Workload &W : Suite)
      std::printf(" %s", W.Name.c_str());
    std::printf("\nconfigs:");
    for (const std::string &C : standardPipelineNames())
      std::printf(" %s", C.c_str());
    std::printf("\npolicies: max-convergence min-pc round-robin\n");
    return 0;
  }
  if (Opts.Golden)
    return runGolden(Opts);
  if (Opts.Workload.empty()) {
    std::fprintf(stderr, "simtsr-trace: --workload is required\n");
    printUsage();
    return 1;
  }

  const std::vector<Workload> Suite = makeAllWorkloads(Opts.Scale);
  const Workload *W = findWorkload(Suite, Opts.Workload);
  if (!W) {
    std::fprintf(stderr,
                 "simtsr-trace: unknown workload '%s' (try --list)\n",
                 Opts.Workload.c_str());
    return 1;
  }

  if (!Opts.DiffA.empty())
    return runDiff(*W, Opts);

  observe::RemarkStream Remarks;
  const TracedWorkloadResult R = runConfig(*W, Opts, Opts.Config, &Remarks);
  printRunSummary(Opts, Opts.Config, R);
  if (!Opts.TraceOut.empty() && !writeFile(Opts.TraceOut, chromeTraceOf(R)))
    return 1;
  if (!Opts.RemarksOut.empty() &&
      !writeFile(Opts.RemarksOut, Remarks.toJsonl()))
    return 1;
  return R.Ok ? 0 : 2;
}
