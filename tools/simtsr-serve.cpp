//===- simtsr-serve.cpp - Batched compile-and-simulate daemon CLI -------------===//
///
/// \file
/// Long-lived front end for the serve subsystem (docs/SERVE.md): reads
/// JSON-lines requests — compile, simulate, lint, stats, cluster,
/// shutdown — from stdin (default) or a stream socket (--socket, Unix
/// path or host:port), answers each with one JSON response line, and
/// keeps content-addressed compile/simulate caches across requests so
/// repeated work is answered without re-running the pass stack or the
/// simulator.
///
/// With --route A,B,... the daemon becomes a shard router: each request
/// is hashed by content key onto a consistent-hash ring over the shard
/// addresses and forwarded verbatim; a dead or shedding shard falls back
/// to local execution, so the router alone is a fully working server.
///
/// A quick session:
///
///   $ { echo '{"id":1,"op":"compile","source":"...","pipeline":"sr"}';
///       echo '{"id":2,"op":"stats"}'; } | simtsr-serve
///
/// Exit codes: 0 on EOF or a shutdown request, 1 on usage errors, 2 on a
/// socket failure.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "serve/Server.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace simtsr;

int main(int Argc, char **Argv) {
  serve::ServerOptions Opts;
  std::string Socket;
  std::string RouteList;
  uint64_t RouteVnodes = 64;

  driver::ArgParser P("simtsr-serve");
  P.exitAction("--list-pipelines",
               "print the pipeline catalog requests may name",
               [] { driver::printPipelineCatalog(stdout); });
  P.str("--socket", "ADDR",
        "listen on a Unix socket path or host:port instead of stdin/stdout",
        &Socket);
  P.str("--route", "A,B,...",
        "router mode: forward requests to these shard addresses by "
        "content key (Unix paths or host:port)",
        &RouteList);
  P.uns("--route-vnodes", "N",
        "virtual nodes per shard on the routing ring (default 64)",
        &RouteVnodes, 1, 1u << 12);
  P.uns("--route-timeout-ms", "N",
        "per-forward deadline before local fallback (default 5000)",
        &Opts.RouteTimeoutMillis, 1, 600'000);
  P.flag("--route-verify",
         "re-execute forwarded requests locally and cross-check digests",
         &Opts.RouteVerify);
  P.uns("--queue-depth", "N",
        "max in-flight requests before load shedding (default 64)",
        &Opts.QueueDepth, 0, 1u << 16);
  P.uns("--compile-cache", "N", "compile cache capacity (default 256)",
        &Opts.CompileCacheCapacity, 1, 1u << 20);
  P.uns("--sim-cache", "N", "simulate cache capacity (default 1024)",
        &Opts.SimCacheCapacity, 1, 1u << 20);
  P.uns("--max-issue", "N",
        "per-request issue-slot budget (default: simulator default)",
        &Opts.MaxIssueSlots);
  P.uns("--watchdog-ms", "N",
        "per-request wall-clock watchdog in ms (0 disables)",
        &Opts.MaxWallMillis);
  P.str("--disk-cache", "DIR",
        "crash-safe disk tier under both caches (default: memory only)",
        &Opts.DiskCacheDir);
  P.uns("--deadline-ms", "N",
        "socket sessions: answer \"timeout\" after N ms (0 disables)",
        &Opts.DeadlineMillis);

  switch (P.parse(Argc, Argv)) {
  case driver::ArgParser::Result::Ok:
    break;
  case driver::ArgParser::Result::Exit:
    return 0;
  case driver::ArgParser::Result::Error:
    return 1;
  }

  Opts.RouteVnodes = static_cast<unsigned>(RouteVnodes);
  for (size_t Pos = 0; Pos < RouteList.size();) {
    const size_t Comma = RouteList.find(',', Pos);
    const size_t End = Comma == std::string::npos ? RouteList.size() : Comma;
    if (End > Pos)
      Opts.RouteShards.push_back(RouteList.substr(Pos, End - Pos));
    Pos = End + 1;
  }

  serve::Server Server(Opts);
  if (!Socket.empty()) {
    if (Server.serveUnixSocket(Socket) != 0) {
      std::fprintf(stderr, "simtsr-serve: socket '%s' failed\n",
                   Socket.c_str());
      return 2;
    }
    return 0;
  }
  Server.serve(std::cin, std::cout);
  return 0;
}
