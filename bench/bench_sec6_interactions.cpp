//===- bench_sec6_interactions.cpp - Section 6 transform interactions ------------===//
///
/// Section 6 discusses how classic loop and call optimizations interact
/// with speculative reconvergence. Two quantified cases:
///
///  * Partial unrolling of the merged inner loop: the reconvergence label
///    stays in the first body copy, so the gather fires once per Factor
///    iterations — less synchronization overhead, at some convergence
///    loss inside the unrolled chain.
///  * Inlining a common callee removes the common PC; the
///    interprocedural gather of Figure 2(c) evaporates.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/LoopInfo.h"
#include "transform/Inline.h"
#include "transform/LoopUnroll.h"

using namespace simtsr;
using namespace simtsr::bench;

namespace {

struct Measured {
  double Efficiency;
  uint64_t Cycles;
  uint64_t Waits;
};

} // namespace

int main() {
  printHeader("Section 6: partial unrolling x Loop Merge (rsbench)");
  std::printf("%8s %10s %9s %14s\n", "factor", "simt-eff", "cycles",
              "barrier-waits");
  printRule();
  uint64_t BaseCycles = 0;
  for (unsigned Factor : {1u, 2u, 4u, 8u}) {
    Workload W = makeRSBench();
    if (Factor > 1) {
      Function *F = W.M->functionByName(W.KernelName);
      DominatorTree DT(*F);
      LoopInfo LI(*F, DT);
      Loop *Inner = LI.loopWithHeader(F->blockByName("inner_header"));
      if (!Inner || !unrollLoop(*F, *Inner, Factor)) {
        std::printf("%8u  unroll failed\n", Factor);
        continue;
      }
    }
    runSyncPipeline(*W.M, PipelineOptions::speculative());
    Function *F = W.M->functionByName(W.KernelName);
    LaunchConfig Config;
    Config.Seed = FigureSeed;
    Config.Latency = W.Latency;
    WarpSimulator Sim(*W.M, F, Config);
    if (W.InitMemory)
      W.InitMemory(Sim);
    RunResult R = Sim.run();
    Measured M = {R.Stats.simtEfficiency(), R.Stats.Cycles,
                  R.Stats.BarrierWaits};
    if (Factor == 1)
      BaseCycles = M.Cycles;
    std::printf("%8u %9.1f%% %9llu %14llu   (%.2fx vs factor 1)\n", Factor,
                100.0 * M.Efficiency,
                static_cast<unsigned long long>(M.Cycles),
                static_cast<unsigned long long>(M.Waits),
                M.Cycles ? static_cast<double>(BaseCycles) / M.Cycles : 0.0);
  }
  printRule();

  printHeader("Section 6: inlining x common function call (Figure 2(c))");
  {
    Workload Kept = makeMicroCommonCall();
    WorkloadOutcome Base =
        runWorkload(Kept, PipelineOptions::baseline(), FigureSeed);
    WorkloadOutcome Gathered =
        runWorkload(Kept, PipelineOptions::speculative(), FigureSeed);
    std::printf("outlined + interprocedural gather: eff %.1f%% -> %.1f%% "
                "(%.2fx)\n",
                100.0 * Base.SimtEfficiency, 100.0 * Gathered.SimtEfficiency,
                speedup(Base, Gathered));

    Workload Inlined = makeMicroCommonCall();
    Function *Heavy = Inlined.M->functionByName("heavy");
    inlineAllCalls(*Inlined.M, Heavy);
    WorkloadOutcome IBase =
        runWorkload(Inlined, PipelineOptions::baseline(), FigureSeed);
    WorkloadOutcome IOpt =
        runWorkload(Inlined, PipelineOptions::speculative(), FigureSeed);
    std::printf("inlined: eff %.1f%% -> %.1f%% (%.2fx) — the common PC is "
                "gone, the gather cannot apply\n",
                100.0 * IBase.SimtEfficiency, 100.0 * IOpt.SimtEfficiency,
                speedup(IBase, IOpt));
  }
  printRule();
  return 0;
}
