//===- bench_fig9_soft_barrier.cpp - Figure 9 ------------------------------------===//
///
/// Figure 9: SIMT efficiency and speedup across soft-barrier thresholds
/// for PathTracer and XSBench. The paper's contrast: PathTracer refills
/// idle threads cheaply and runs fastest at (near-)full reconvergence,
/// while XSBench pays a full lookup per refill and peaks when the inner
/// loop keeps running until only ~4 threads participate.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

static void sweep(const Workload &W) {
  WorkloadOutcome Base =
      runWorkload(W, PipelineOptions::baseline(), FigureSeed);
  std::printf("\n%s (baseline: eff %.1f%%, %llu cycles)\n", W.Name.c_str(),
              100.0 * Base.SimtEfficiency,
              static_cast<unsigned long long>(Base.Cycles));
  std::printf("%9s %10s %9s\n", "threshold", "simt-eff", "speedup");
  printRule();
  int BestThreshold = -1;
  double BestSpeedup = 0.0;
  const std::vector<int> Thresholds = {0, 4, 8, 12, 16, 20, 24, 28, 32};
  mapParallel(
      Thresholds.size(),
      [&](size_t I) {
        return runWorkload(W, PipelineOptions::softBarrier(Thresholds[I]),
                           FigureSeed);
      },
      [&](size_t I, const WorkloadOutcome &O) {
        const int T = Thresholds[I];
        double S = speedup(Base, O);
        if (S > BestSpeedup) {
          BestSpeedup = S;
          BestThreshold = T;
        }
        std::printf("%9d %9.1f%% %8.2fx %s\n", T, 100.0 * O.SimtEfficiency,
                    S, O.ok() ? "" : statusName(O.Status));
      });
  printRule();
  std::printf("peak speedup %.2fx at threshold %d\n", BestSpeedup,
              BestThreshold);
}

int main() {
  printHeader("Figure 9: soft-barrier threshold sweep "
              "(PathTracer vs XSBench)");
  sweep(makePathTracer());
  sweep(makeXSBench());
  return 0;
}
