//===- bench_fig7_simt_efficiency.cpp - Figure 7 --------------------------------===//
///
/// Figure 7: SIMT efficiency before and after user-guided speculative
/// reconvergence for the programmer-annotated applications. Each
/// annotation is the one the workload's "programmer" tuned (the classic
/// full barrier, or a soft threshold where Section 5.3 found one better —
/// XSBench). The common-call pattern had no real application and is
/// validated with the microbenchmark, exactly as in Section 5.1.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

namespace {
struct Row {
  WorkloadOutcome Base, Opt;
};
} // namespace

static Row measureRow(const Workload &W) {
  Row R;
  R.Base = runWorkload(W, PipelineOptions::baseline(), FigureSeed);
  R.Opt = runWorkload(W, annotatedOptionsFor(W), FigureSeed);
  return R;
}

static void printRow(const Workload &W, const Row &R) {
  std::string Config =
      W.RecommendedSoftThreshold >= 0
          ? "soft-" + std::to_string(W.RecommendedSoftThreshold)
          : "full barrier";
  std::printf("%-17s %10.1f%% %10.1f%% %9.2fx   %s\n", W.Name.c_str(),
              100.0 * R.Base.SimtEfficiency, 100.0 * R.Opt.SimtEfficiency,
              R.Opt.SimtEfficiency / R.Base.SimtEfficiency, Config.c_str());
}

static void printSection(const std::vector<Workload> &Suite) {
  mapParallel(
      Suite.size(), [&](size_t I) { return measureRow(Suite[I]); },
      [&](size_t I, const Row &R) { printRow(Suite[I], R); });
}

int main() {
  printHeader("Figure 7: SIMT efficiency, default vs speculative "
              "reconvergence");
  std::printf("%-17s %11s %11s %10s   %s\n", "benchmark", "default",
              "spec-reconv", "eff-gain", "annotation");
  printRule();
  printSection(makeAnnotatedWorkloads());
  printRule();
  std::printf("Validation microbenchmarks (common function call + "
              "auto-detected apps):\n");
  std::vector<Workload> Validation;
  for (Workload (*Factory)(double) :
       {makeMicroCommonCall, makeOptixTrace, makeMeiyaMD5})
    Validation.push_back(Factory(1.0));
  printSection(Validation);
  return 0;
}
