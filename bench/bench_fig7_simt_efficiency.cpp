//===- bench_fig7_simt_efficiency.cpp - Figure 7 --------------------------------===//
///
/// Figure 7: SIMT efficiency before and after user-guided speculative
/// reconvergence for the programmer-annotated applications. Each
/// annotation is the one the workload's "programmer" tuned (the classic
/// full barrier, or a soft threshold where Section 5.3 found one better —
/// XSBench). The common-call pattern had no real application and is
/// validated with the microbenchmark, exactly as in Section 5.1.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

static void printRow(const Workload &W) {
  WorkloadOutcome Base =
      runWorkload(W, PipelineOptions::baseline(), FigureSeed);
  WorkloadOutcome Opt = runWorkload(W, annotatedOptionsFor(W), FigureSeed);
  std::string Config =
      W.RecommendedSoftThreshold >= 0
          ? "soft-" + std::to_string(W.RecommendedSoftThreshold)
          : "full barrier";
  std::printf("%-17s %10.1f%% %10.1f%% %9.2fx   %s\n", W.Name.c_str(),
              100.0 * Base.SimtEfficiency, 100.0 * Opt.SimtEfficiency,
              Opt.SimtEfficiency / Base.SimtEfficiency, Config.c_str());
}

int main() {
  printHeader("Figure 7: SIMT efficiency, default vs speculative "
              "reconvergence");
  std::printf("%-17s %11s %11s %10s   %s\n", "benchmark", "default",
              "spec-reconv", "eff-gain", "annotation");
  printRule();
  for (const Workload &W : makeAnnotatedWorkloads())
    printRow(W);
  printRule();
  std::printf("Validation microbenchmarks (common function call + "
              "auto-detected apps):\n");
  for (Workload (*Factory)(double) :
       {makeMicroCommonCall, makeOptixTrace, makeMeiyaMD5})
    printRow(Factory(1.0));
  return 0;
}
