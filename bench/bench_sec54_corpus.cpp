//===- bench_sec54_corpus.cpp - Section 5.4 corpus study -------------------------===//
///
/// Section 5.4's funnel over a 520-application database: how many
/// applications run below ~80% SIMT efficiency, in how many the automatic
/// heuristics detect a non-trivial opportunity, and how many actually
/// improve when it is applied. The paper reports 520 -> 75 -> 16 -> 5; we
/// regenerate the funnel over a synthetic corpus with the same skew
/// (divergent workloads are a small fraction of GPU applications).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "kernels/Corpus.h"
#include "transform/AutoDetect.h"

using namespace simtsr;
using namespace simtsr::bench;

namespace {

struct AppResult {
  double BaselineEff = 0.0;
  uint64_t BaselineCycles = 0;
  bool Detected = false;
  double AutoSpeedup = 1.0;
};

AppResult studyOne(uint64_t Id) {
  AppResult Result;
  // Baseline measurement (with a per-block profile for the heuristics).
  CorpusKernel Baseline = makeCorpusKernel(Id);
  runSyncPipeline(*Baseline.M, PipelineOptions::baseline());
  Function *F = Baseline.M->functionByName(Baseline.KernelName);
  LaunchConfig Config;
  Config.Seed = FigureSeed;
  Config.Latency = LatencyModel::computeBound();
  Config.ProfileBlocks = true;
  WarpSimulator Sim(*Baseline.M, F, Config);
  RunResult Run = Sim.run();
  if (!Run.ok())
    return Result;
  Result.BaselineEff = Run.Stats.simtEfficiency();
  Result.BaselineCycles = Run.Stats.Cycles;

  // Automatic detection on a fresh copy. Like the paper's backend
  // implementation this uses *static* heuristics (Section 4.5 notes their
  // limited accuracy — which the detected-but-not-improved rows show).
  CorpusKernel Fresh = makeCorpusKernel(Id);
  AutoDetectOptions Opts;
  AutoDetectReport Report = detectReconvergence(*Fresh.M, Opts);
  if (Report.Inserted == 0)
    return Result;
  Result.Detected = true;

  runSyncPipeline(*Fresh.M, PipelineOptions::speculative());
  WarpSimulator AutoSim(*Fresh.M,
                        Fresh.M->functionByName(Fresh.KernelName), Config);
  RunResult AutoRun = AutoSim.run();
  if (AutoRun.ok() && AutoRun.Stats.Cycles > 0)
    Result.AutoSpeedup = static_cast<double>(Result.BaselineCycles) /
                         static_cast<double>(AutoRun.Stats.Cycles);
  else
    Result.AutoSpeedup = 0.0; // A failed run counts as a regression.
  return Result;
}

} // namespace

int main() {
  printHeader("Section 5.4: automatic detection over a 520-app corpus");
  unsigned LowEfficiency = 0, Detected = 0, Improved = 0, Regressed = 0;
  for (uint64_t Id = 0; Id < CorpusSize; ++Id) {
    AppResult R = studyOne(Id);
    if (R.BaselineEff < 0.80)
      ++LowEfficiency;
    if (!R.Detected)
      continue;
    ++Detected;
    if (R.AutoSpeedup > 1.05)
      ++Improved;
    if (R.AutoSpeedup < 0.95)
      ++Regressed;
  }
  std::printf("%-46s %8s %8s\n", "", "ours", "paper");
  printRule();
  std::printf("%-46s %8u %8u\n", "applications studied", CorpusSize, 520u);
  std::printf("%-46s %8u %8u\n", "SIMT efficiency below ~80%", LowEfficiency,
              75u);
  std::printf("%-46s %8u %8u\n", "non-trivial opportunity detected",
              Detected, 16u);
  std::printf("%-46s %8u %8u\n", "significant improvement (>5% speedup)",
              Improved, 5u);
  std::printf("%-46s %8u %8s\n", "regressions among detected", Regressed,
              "several");
  printRule();
  std::printf("The funnel shape matches Section 5.4: divergent workloads\n"
              "are a small fraction, detection is rarer still, and only a\n"
              "handful profit — motivating user-guided reconvergence.\n");
  return 0;
}
