//===- bench_sim.cpp - Simulator throughput (google-benchmark) -------------------===//
///
/// Raw warp-simulator throughput: issue slots per second across workload
/// shapes and scheduler policies. Bounds how large an experiment the
/// harnesses can afford.
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"

#include <benchmark/benchmark.h>

using namespace simtsr;

namespace {

void runOnce(benchmark::State &State, const Workload &W,
             SchedulerPolicy Policy) {
  Workload Synced = cloneWorkload(W);
  runSyncPipeline(*Synced.M, PipelineOptions::baseline());
  uint64_t TotalIssues = 0;
  for (auto _ : State) {
    Function *F = Synced.M->functionByName(Synced.KernelName);
    LaunchConfig Config;
    Config.Seed = 7;
    Config.Policy = Policy;
    Config.Latency = Synced.Latency;
    WarpSimulator Sim(*Synced.M, F, Config);
    if (Synced.InitMemory)
      Synced.InitMemory(Sim);
    RunResult R = Sim.run();
    TotalIssues += R.Stats.IssueSlots;
    benchmark::DoNotOptimize(R.Stats.Cycles);
  }
  State.counters["issues/s"] = benchmark::Counter(
      static_cast<double>(TotalIssues), benchmark::Counter::kIsRate);
}

} // namespace

static void BM_SimRSBench(benchmark::State &State) {
  runOnce(State, makeRSBench(0.5), SchedulerPolicy::MaxConvergence);
}
BENCHMARK(BM_SimRSBench);

static void BM_SimPathTracer(benchmark::State &State) {
  runOnce(State, makePathTracer(0.5), SchedulerPolicy::MaxConvergence);
}
BENCHMARK(BM_SimPathTracer);

static void BM_SimXSBench(benchmark::State &State) {
  runOnce(State, makeXSBench(0.5), SchedulerPolicy::MaxConvergence);
}
BENCHMARK(BM_SimXSBench);

static void BM_SimRoundRobin(benchmark::State &State) {
  runOnce(State, makeRSBench(0.5), SchedulerPolicy::RoundRobin);
}
BENCHMARK(BM_SimRoundRobin);

static void BM_SimMinPC(benchmark::State &State) {
  runOnce(State, makeRSBench(0.5), SchedulerPolicy::MinPC);
}
BENCHMARK(BM_SimMinPC);

BENCHMARK_MAIN();
