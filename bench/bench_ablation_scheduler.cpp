//===- bench_ablation_scheduler.cpp - Scheduler-policy ablation ------------------===//
///
/// Ablation: how much of the speculative-reconvergence win depends on the
/// hardware's convergence optimizer (our MaxConvergence policy models
/// Volta's)? We rerun baseline and annotated configurations under three
/// scheduling policies. The paper evaluates on Volta only; this table
/// shows the technique's sensitivity to that substrate choice.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

int main() {
  printHeader("Ablation: scheduler policy vs speculative reconvergence");
  std::printf("%-12s %-15s %10s %10s %9s\n", "benchmark", "scheduler",
              "eff-base", "eff-SR", "speedup");
  printRule();
  struct Policy {
    SchedulerPolicy P;
    const char *Name;
  };
  const Policy Policies[] = {
      {SchedulerPolicy::MaxConvergence, "max-convergence"},
      {SchedulerPolicy::MinPC, "min-pc"},
      {SchedulerPolicy::RoundRobin, "round-robin"},
  };
  for (Workload (*Factory)(double) : {makeRSBench, makePathTracer}) {
    Workload W = Factory(1.0);
    for (const Policy &Pol : Policies) {
      WorkloadOutcome Base = runWorkload(W, PipelineOptions::baseline(),
                                         FigureSeed, Pol.P);
      WorkloadOutcome Opt =
          runWorkload(W, annotatedOptionsFor(W), FigureSeed, Pol.P);
      std::printf("%-12s %-15s %9.1f%% %9.1f%% %8.2fx %s%s\n",
                  W.Name.c_str(), Pol.Name, 100.0 * Base.SimtEfficiency,
                  100.0 * Opt.SimtEfficiency, speedup(Base, Opt),
                  Base.ok() ? "" : statusName(Base.Status),
                  Opt.ok() ? "" : statusName(Opt.Status));
    }
  }
  printRule();
  return 0;
}
