//===- bench_ablation_scheduler.cpp - Scheduler-policy ablation ------------------===//
///
/// Ablation: how much of the speculative-reconvergence win depends on the
/// hardware's convergence optimizer (our MaxConvergence policy models
/// Volta's)? We rerun baseline and annotated configurations under three
/// scheduling policies. The paper evaluates on Volta only; this table
/// shows the technique's sensitivity to that substrate choice.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

int main() {
  printHeader("Ablation: scheduler policy vs speculative reconvergence");
  std::printf("%-12s %-15s %10s %10s %9s\n", "benchmark", "scheduler",
              "eff-base", "eff-SR", "speedup");
  printRule();
  struct Policy {
    SchedulerPolicy P;
    const char *Name;
  };
  const Policy Policies[] = {
      {SchedulerPolicy::MaxConvergence, "max-convergence"},
      {SchedulerPolicy::MinPC, "min-pc"},
      {SchedulerPolicy::RoundRobin, "round-robin"},
  };
  std::vector<Workload> Suite;
  for (Workload (*Factory)(double) : {makeRSBench, makePathTracer})
    Suite.push_back(Factory(1.0));
  constexpr size_t NumPolicies = sizeof(Policies) / sizeof(Policies[0]);
  struct Row {
    WorkloadOutcome Base, Opt;
  };
  // One cell of the (workload x policy) table per index, row-major so the
  // printed order matches the sequential nested loops.
  mapParallel(
      Suite.size() * NumPolicies,
      [&](size_t I) {
        const Workload &W = Suite[I / NumPolicies];
        const Policy &Pol = Policies[I % NumPolicies];
        Row R;
        R.Base =
            runWorkload(W, PipelineOptions::baseline(), FigureSeed, Pol.P);
        R.Opt = runWorkload(W, annotatedOptionsFor(W), FigureSeed, Pol.P);
        return R;
      },
      [&](size_t I, const Row &R) {
        const Workload &W = Suite[I / NumPolicies];
        const Policy &Pol = Policies[I % NumPolicies];
        std::printf("%-12s %-15s %9.1f%% %9.1f%% %8.2fx %s%s\n",
                    W.Name.c_str(), Pol.Name, 100.0 * R.Base.SimtEfficiency,
                    100.0 * R.Opt.SimtEfficiency, speedup(R.Base, R.Opt),
                    R.Base.ok() ? "" : statusName(R.Base.Status),
                    R.Opt.ok() ? "" : statusName(R.Opt.Status));
      });
  printRule();
  return 0;
}
