//===- bench_memory_divergence.cpp - Memory-access cost of re-timing --------------===//
///
/// Section 4.5 lists "memory access patterns" among the profitability
/// metrics: previously convergent accesses may become divergent when
/// convergence points move. This harness measures the global-memory
/// transaction counts of the memory-touching workloads before and after
/// speculative reconvergence, alongside the cycle outcome — quantifying
/// the cost the heuristics' divergent-load penalty stands for.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

namespace {

struct MemStats {
  uint64_t Transactions = 0;
  uint64_t MemIssues = 0;
  uint64_t Cycles = 0;
  double Coalescing = 1.0;
  bool Ok = false;
};

MemStats measure(const Workload &W, const PipelineOptions &Opts) {
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, Opts);
  Function *F = Fresh.M->functionByName(Fresh.KernelName);
  LaunchConfig Config;
  Config.Seed = FigureSeed;
  Config.Latency = Fresh.Latency;
  WarpSimulator Sim(*Fresh.M, F, Config);
  if (Fresh.InitMemory)
    Fresh.InitMemory(Sim);
  RunResult R = Sim.run();
  MemStats S;
  S.Ok = R.ok();
  S.Transactions = R.Stats.MemTransactions;
  S.MemIssues = R.Stats.MemIssues;
  S.Cycles = R.Stats.Cycles;
  S.Coalescing = R.Stats.coalescingEfficiency();
  return S;
}

} // namespace

int main() {
  printHeader("Memory divergence: transactions before/after speculative "
              "reconvergence");
  std::printf("%-12s %12s %12s %10s %10s %9s\n", "benchmark", "txn-base",
              "txn-SR", "coal-base", "coal-SR", "speedup");
  printRule();
  for (Workload (*Factory)(double) :
       {makeXSBench, makeMummer, makeRSBench, makeOptixTrace}) {
    Workload W = Factory(1.0);
    MemStats Base = measure(W, PipelineOptions::baseline());
    MemStats Opt = measure(W, annotatedOptionsFor(W));
    if (!Base.Ok || !Opt.Ok) {
      std::printf("%-12s FAILED\n", W.Name.c_str());
      continue;
    }
    std::printf("%-12s %12llu %12llu %9.1f%% %9.1f%% %8.2fx\n",
                W.Name.c_str(),
                static_cast<unsigned long long>(Base.Transactions),
                static_cast<unsigned long long>(Opt.Transactions),
                100.0 * Base.Coalescing, 100.0 * Opt.Coalescing,
                static_cast<double>(Base.Cycles) /
                    static_cast<double>(Opt.Cycles));
  }
  printRule();
  std::printf("Re-timing leaves per-thread address streams unchanged; what\n"
              "moves is which lanes issue together, i.e. the transaction\n"
              "count — the cost Section 4.5's load penalty models.\n");
  return 0;
}
