//===- bench_table2_workloads.cpp - Table 2: benchmark inventory ---------------===//
///
/// Prints the workload suite with each application's divergence profile
/// under the PDOM baseline: the paper's Table 2 plus the "default state"
/// SIMT efficiencies that motivate Figure 7 ("many of these applications
/// exhibit relatively low SIMT efficiency in their default state").
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

int main() {
  printHeader("Table 2: benchmarks and baseline divergence profile");
  std::printf("%-17s %-16s %9s %9s  %s\n", "benchmark", "pattern",
              "simt-eff", "cycles", "description");
  printRule();
  const std::vector<Workload> Suite = makeAllWorkloads();
  mapParallel(
      Suite.size(),
      [&](size_t I) {
        return runWorkload(Suite[I], PipelineOptions::baseline(), FigureSeed);
      },
      [&](size_t I, const WorkloadOutcome &Base) {
        const Workload &W = Suite[I];
        std::printf("%-17s %-16s %8.1f%% %9llu  %s\n", W.Name.c_str(),
                    getDivergencePatternName(W.Pattern),
                    100.0 * Base.SimtEfficiency,
                    static_cast<unsigned long long>(Base.Cycles),
                    W.Description.c_str());
        if (!Base.ok())
          std::printf("    !! %s %s\n", statusName(Base.Status),
                      Base.TrapMessage.c_str());
      });
  printRule();
  std::printf("All workloads run under the PDOM-baseline pipeline; low\n"
              "efficiencies mark the reconvergence opportunity the paper\n"
              "exploits.\n");
  return 0;
}
