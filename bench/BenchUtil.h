//===- BenchUtil.h - Shared benchmark-harness helpers ----------*- C++ -*-===//
///
/// \file
/// Formatting and run helpers shared by the paper-figure harnesses. Each
/// bench binary prints one table/figure of the evaluation section in a
/// stable plain-text format; EXPERIMENTS.md captures the outputs next to
/// the paper's reported numbers.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_BENCH_BENCHUTIL_H
#define SIMTSR_BENCH_BENCHUTIL_H

#include "kernels/Runner.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <string>
#include <vector>

namespace simtsr {
namespace bench {

/// The seed every figure harness uses, so outputs are reproducible.
constexpr uint64_t FigureSeed = 2020; // CGO'20.

/// Runs \p Body(i) for every i in [0, N) on the global thread pool, then
/// calls \p Emit(i, result) in index order. Harnesses keep their exact
/// sequential table output (rows print in order) while the measurements
/// behind the rows overlap. \p Body must be thread-safe and its result
/// default-constructible.
template <typename BodyFn, typename EmitFn>
void mapParallel(size_t N, BodyFn &&Body, EmitFn &&Emit) {
  using ResultT = decltype(Body(static_cast<size_t>(0)));
  std::vector<ResultT> Results(N);
  parallelFor(N, [&](size_t I) { Results[I] = Body(I); });
  for (size_t I = 0; I < N; ++I)
    Emit(I, Results[I]);
}

inline void printHeader(const std::string &Title) {
  std::printf("==== %s ====\n", Title.c_str());
}

inline void printRule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

inline double speedup(const WorkloadOutcome &Base,
                      const WorkloadOutcome &Opt) {
  return Opt.Cycles == 0 ? 0.0
                         : static_cast<double>(Base.Cycles) /
                               static_cast<double>(Opt.Cycles);
}

inline const char *statusName(RunResult::Status S) {
  switch (S) {
  case RunResult::Status::Finished:
    return "ok";
  case RunResult::Status::Deadlock:
    return "DEADLOCK";
  case RunResult::Status::Trap:
    return "TRAP";
  case RunResult::Status::IssueLimit:
    return "LIMIT";
  case RunResult::Status::Timeout:
    return "TIMEOUT";
  case RunResult::Status::Malformed:
    return "MALFORMED";
  case RunResult::Status::ProgressLivelock:
    return "LIVELOCK";
  }
  return "?";
}

} // namespace bench
} // namespace simtsr

#endif // SIMTSR_BENCH_BENCHUTIL_H
