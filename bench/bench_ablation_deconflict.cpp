//===- bench_ablation_deconflict.cpp - Deconfliction-strategy ablation -----------===//
///
/// Section 4.3's trade-off: static deconfliction deletes the PDOM barrier
/// (fewer instructions), dynamic keeps it and cancels at run time. "If a
/// conditional branch is rarely executed, and the prolog/epilog sections
/// are expensive, dynamic deconfliction performs better because it
/// retains the original synchronization points." We sweep the hot-branch
/// probability of the Iteration Delay kernel, plus the deliberately
/// unprofitable predict placement on the OptiX traversal loop ("incorrect
/// Speculative Reconvergence may result in large performance
/// degradations").
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "kernels/KernelBuild.h"

using namespace simtsr;
using namespace simtsr::bench;

namespace {

/// Iteration-delay workload with a configurable hot-branch probability.
Workload itDelayVariant(int64_t HotPct) {
  Workload W = makeMCB();
  W.Name = "mcb-p" + std::to_string(HotPct);
  // Rebuild with the requested collision probability by patching the
  // immediate in the comparison (the kernel builder fixes it at 12).
  Function *F = W.M->functionByName("mcb");
  for (BasicBlock *BB : *F)
    for (Instruction &I : BB->instructions())
      if (I.opcode() == Opcode::CmpLT && I.numOperands() == 2 &&
          I.operand(1).isImm() && I.operand(1).getImm() == 12)
        I.operand(1) = Operand::imm(HotPct);
  return W;
}

} // namespace

int main() {
  printHeader("Ablation: static vs dynamic deconfliction");
  std::printf("%-12s %10s %12s %12s\n", "benchmark", "baseline",
              "SR-static", "SR-dynamic");
  printRule();
  for (int64_t HotPct : {2, 12, 40}) {
    Workload W = itDelayVariant(HotPct);
    WorkloadOutcome Base =
        runWorkload(W, PipelineOptions::baseline(), FigureSeed);
    WorkloadOutcome Static = runWorkload(
        W, PipelineOptions::speculative(DeconflictStrategy::Static),
        FigureSeed);
    WorkloadOutcome Dynamic = runWorkload(
        W, PipelineOptions::speculative(DeconflictStrategy::Dynamic),
        FigureSeed);
    std::printf("%-12s %9llu %11.2fx %11.2fx\n", W.Name.c_str(),
                static_cast<unsigned long long>(Base.Cycles),
                speedup(Base, Static), speedup(Base, Dynamic));
  }
  printRule();

  printHeader("Ablation: an unprofitable reconvergence point (OptiX "
              "traversal loop)");
  Workload Optix = makeOptixTrace();
  // Deliberately re-add the predict the shipped kernel omits: gather at
  // the (cheap) BVH-node body.
  {
    Function *F = Optix.M->functionByName("optixtrace");
    BasicBlock *Entry = F->entry();
    BasicBlock *Node = F->blockByName("traverse_node");
    Entry->insertBeforeTerminator(
        Instruction(Opcode::Predict, NoRegister, {Operand::block(Node)}));
  }
  WorkloadOutcome Base =
      runWorkload(Optix, PipelineOptions::baseline(), FigureSeed);
  WorkloadOutcome Bad =
      runWorkload(Optix, PipelineOptions::speculative(), FigureSeed);
  std::printf("baseline %llu cycles; bad predict placement: %.2fx "
              "(a regression — why the paper keeps the user in charge)\n",
              static_cast<unsigned long long>(Base.Cycles),
              speedup(Base, Bad));
  return 0;
}
