//===- bench_fig10_auto.cpp - Figure 10 ------------------------------------------===//
///
/// Figure 10: upside from *automatic* speculative reconvergence. All user
/// annotations are stripped, the Section 4.5 heuristics (profile guided)
/// propose reconvergence points, and the detected applications are
/// re-measured. Also prints rejected candidates — the paper stresses that
/// "many examples with compiler-detected opportunity see no change or
/// even regression", motivating the user-guided approach.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "transform/AutoDetect.h"

using namespace simtsr;
using namespace simtsr::bench;

namespace {

/// Profile a baseline run of workload \p W (clone; W untouched).
SimStats profileBaseline(const Workload &W) {
  Workload Clone = cloneWorkload(W);
  stripPredictDirectives(*Clone.M);
  stripReconvergeEntryFlags(*Clone.M);
  runSyncPipeline(*Clone.M, PipelineOptions::baseline());
  Function *F = Clone.M->functionByName(Clone.KernelName);
  LaunchConfig Config;
  Config.Seed = FigureSeed;
  Config.Latency = Clone.Latency;
  Config.ProfileBlocks = true;
  WarpSimulator Sim(*Clone.M, F, Config);
  if (Clone.InitMemory)
    Clone.InitMemory(Sim);
  return Sim.run().Stats;
}

} // namespace

int main() {
  printHeader("Figure 10: automatic speculative reconvergence "
              "(profile-guided heuristics)");
  std::printf("%-17s %-10s %9s %9s %9s  %s\n", "benchmark", "detected",
              "eff-base", "eff-auto", "speedup", "note");
  printRule();
  unsigned Detected = 0, Improved = 0;
  for (const Workload &W : makeAllWorkloads()) {
    // Unannotated variant: strip everything the programmer added.
    Workload Plain = cloneWorkload(W);
    stripPredictDirectives(*Plain.M);
    stripReconvergeEntryFlags(*Plain.M);

    WorkloadOutcome Base =
        runWorkload(Plain, PipelineOptions::baseline(), FigureSeed);

    SimStats Profile = profileBaseline(W);
    AutoDetectOptions Opts;
    Opts.Profile = &Profile;
    AutoDetectReport Report = detectReconvergence(*Plain.M, Opts);

    if (Report.Inserted == 0) {
      std::printf("%-17s %-10s %8.1f%% %9s %9s  %s\n", W.Name.c_str(), "no",
                  100.0 * Base.SimtEfficiency, "-", "-",
                  Report.Candidates.empty()
                      ? "no candidate pattern"
                      : Report.Candidates.front().Reason.c_str());
      continue;
    }
    ++Detected;
    PipelineOptions SR = PipelineOptions::speculative();
    SR.Interprocedural = false; // auto detection proposes predicts only
    WorkloadOutcome Auto = runWorkload(Plain, SR, FigureSeed);
    if (!Auto.ok()) {
      std::printf("%-17s %-10s %8.1f%% %9s %9s  auto-SR failed: %s\n",
                  W.Name.c_str(), "yes", 100.0 * Base.SimtEfficiency, "-",
                  "-", statusName(Auto.Status));
      continue;
    }
    double Speed = speedup(Base, Auto);
    if (Speed > 1.05)
      ++Improved;
    std::printf("%-17s %-10s %8.1f%% %8.1f%% %8.2fx  %s\n", W.Name.c_str(),
                "yes", 100.0 * Base.SimtEfficiency,
                100.0 * Auto.SimtEfficiency, Speed,
                Speed < 1.0 ? "regression (needs user input)" : "");
  }
  printRule();
  std::printf("detected opportunity in %u workloads, %u improved >5%%\n",
              Detected, Improved);
  return 0;
}
