//===- bench_grid_stability.cpp - Multi-warp robustness of the results ------------===//
///
/// The figure harnesses measure one warp; the paper's nvprof numbers are
/// whole-kernel. This harness re-measures Figure 8 over an 8-warp grid
/// (distinct random streams per warp, fresh memory images) and reports
/// the per-warp spread, showing the single-warp conclusions are not
/// seed artifacts.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

int main() {
  constexpr unsigned Warps = 8;
  printHeader("Grid stability: Figure 8 over 8 warps (mean +/- stddev)");
  std::printf("%-17s %16s %16s %9s %7s\n", "benchmark", "eff-base",
              "eff-annotated", "speedup", "sem");
  printRule();
  const std::vector<Workload> Suite = makeAllWorkloads();
  struct Row {
    GridResult Base, Opt;
  };
  // The warps inside each runWorkloadGrid call already fan out on the
  // pool; running the two configurations per row in parallel too keeps
  // the pool busy across workload boundaries.
  mapParallel(
      Suite.size(),
      [&](size_t I) {
        const Workload &W = Suite[I];
        Row R;
        R.Base =
            runWorkloadGrid(W, PipelineOptions::baseline(), Warps, FigureSeed);
        R.Opt = runWorkloadGrid(W, annotatedOptionsFor(W), Warps, FigureSeed);
        return R;
      },
      [&](size_t I, const Row &R) {
        const Workload &W = Suite[I];
        const GridResult &Base = R.Base, &Opt = R.Opt;
        if (!Base.Ok || !Opt.Ok) {
          std::printf("%-17s FAILED (%s)\n", W.Name.c_str(),
                      (!Base.Ok ? Base.FailMessage : Opt.FailMessage).c_str());
          return;
        }
        std::printf("%-17s %7.1f%% +/-%4.1f %7.1f%% +/-%4.1f %8.2fx %7s\n",
                    W.Name.c_str(), 100.0 * Base.SimtEfficiency,
                    100.0 * Base.PerWarpEfficiency.stddev(),
                    100.0 * Opt.SimtEfficiency,
                    100.0 * Opt.PerWarpEfficiency.stddev(),
                    static_cast<double>(Base.TotalCycles) /
                        static_cast<double>(Opt.TotalCycles),
                    Base.CombinedChecksum == Opt.CombinedChecksum ? "ok"
                                                                  : "DIFF");
      });
  printRule();
  std::printf("'sem' compares combined memory checksums across all warps: "
              "the\nsynchronization changes scheduling only.\n");
  return 0;
}
