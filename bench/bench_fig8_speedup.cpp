//===- bench_fig8_speedup.cpp - Figure 8 ----------------------------------------===//
///
/// Figure 8: relative SIMT-efficiency improvement versus application
/// speedup. The paper's reading: efficiency gains roughly upper-bound
/// speedup, because the re-timed prolog/epilog regions now execute more
/// divergently and more often.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

int main() {
  printHeader("Figure 8: SIMT-efficiency improvement vs speedup");
  std::printf("%-17s %10s %10s %12s %10s\n", "benchmark", "eff-base",
              "eff-opt", "eff-improve", "speedup");
  printRule();
  double WorstSpeedup = 10.0, BestSpeedup = 0.0;
  const std::vector<Workload> Suite = makeAllWorkloads();
  struct Row {
    WorkloadOutcome Base, Opt;
  };
  mapParallel(
      Suite.size(),
      [&](size_t I) {
        const Workload &W = Suite[I];
        Row R;
        R.Base = runWorkload(W, PipelineOptions::baseline(), FigureSeed);
        R.Opt = runWorkload(W, annotatedOptionsFor(W), FigureSeed);
        return R;
      },
      [&](size_t I, const Row &R) {
        double EffGain = R.Opt.SimtEfficiency / R.Base.SimtEfficiency;
        double Speed = speedup(R.Base, R.Opt);
        WorstSpeedup = std::min(WorstSpeedup, Speed);
        BestSpeedup = std::max(BestSpeedup, Speed);
        std::printf("%-17s %9.1f%% %9.1f%% %11.2fx %9.2fx\n",
                    Suite[I].Name.c_str(), 100.0 * R.Base.SimtEfficiency,
                    100.0 * R.Opt.SimtEfficiency, EffGain, Speed);
      });
  printRule();
  std::printf("Speedups range %.2fx .. %.2fx (paper: ~10%% to 3x across "
              "its suite).\n",
              WorstSpeedup, BestSpeedup);
  return 0;
}
