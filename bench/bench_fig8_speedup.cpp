//===- bench_fig8_speedup.cpp - Figure 8 ----------------------------------------===//
///
/// Figure 8: relative SIMT-efficiency improvement versus application
/// speedup. The paper's reading: efficiency gains roughly upper-bound
/// speedup, because the re-timed prolog/epilog regions now execute more
/// divergently and more often.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace simtsr;
using namespace simtsr::bench;

int main() {
  printHeader("Figure 8: SIMT-efficiency improvement vs speedup");
  std::printf("%-17s %10s %10s %12s %10s\n", "benchmark", "eff-base",
              "eff-opt", "eff-improve", "speedup");
  printRule();
  double WorstSpeedup = 10.0, BestSpeedup = 0.0;
  for (const Workload &W : makeAllWorkloads()) {
    WorkloadOutcome Base =
        runWorkload(W, PipelineOptions::baseline(), FigureSeed);
    WorkloadOutcome Opt =
        runWorkload(W, annotatedOptionsFor(W), FigureSeed);
    double EffGain = Opt.SimtEfficiency / Base.SimtEfficiency;
    double Speed = speedup(Base, Opt);
    WorstSpeedup = std::min(WorstSpeedup, Speed);
    BestSpeedup = std::max(BestSpeedup, Speed);
    std::printf("%-17s %9.1f%% %9.1f%% %11.2fx %9.2fx\n", W.Name.c_str(),
                100.0 * Base.SimtEfficiency, 100.0 * Opt.SimtEfficiency,
                EffGain, Speed);
  }
  printRule();
  std::printf("Speedups range %.2fx .. %.2fx (paper: ~10%% to 3x across "
              "its suite).\n",
              WorstSpeedup, BestSpeedup);
  return 0;
}
