//===- bench_ablation_predication.cpp - Predication vs reconvergence --------------===//
///
/// Section 2 positions SIMT reconvergence against SIMD predication. For a
/// *pure* conditional arm both are legal: if-conversion executes the arm
/// for every lane (perfect convergence, wasted lanes), speculative
/// reconvergence gathers the lanes that need it (no waste, sync+refill
/// overhead). This harness sweeps the arm weight on an Iteration Delay
/// kernel with a 20% hot probability and reports the crossover.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/IRBuilder.h"
#include "kernels/KernelBuild.h"
#include "transform/IfConvert.h"
#include "transform/SimplifyCfg.h"

using namespace simtsr;
using namespace simtsr::bench;
using namespace simtsr::kernelbuild;

namespace {

/// Iteration Delay with a PURE hot arm (speculatable: no rand/atomic in
/// the arm; the divergent roll happens in the header).
std::unique_ptr<Module> pureArmKernel(int ArmMuls) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);
  Function *F = M->createFunction("pure", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Latch = F->createBlock("latch");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  B.predict(Hot);
  B.jmp(Header);

  B.setInsertBlock(Header);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned Hit = B.cmpLT(Operand::reg(Roll), Operand::imm(20));
  B.br(Operand::reg(Hit), Hot, Latch);

  B.setInsertBlock(Hot);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(Roll));
  for (int K = 0; K < ArmMuls; ++K)
    X = B.mul(Operand::reg(X), Operand::imm(48271 + K));
  Hot->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  B.jmp(Latch);

  B.setInsertBlock(Latch);
  unsigned IN = B.add(Operand::reg(I), Operand::imm(1));
  Latch->append(Instruction(Opcode::Mov, I, {Operand::reg(IN)}));
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(32));
  B.br(Operand::reg(Done), Exit, Header);

  B.setInsertBlock(Exit);
  B.store(Operand::reg(T), Operand::reg(Acc));
  B.ret();
  F->recomputePreds();
  return M;
}

uint64_t runCycles(Module &M) {
  LaunchConfig Config;
  Config.Seed = FigureSeed;
  Config.Latency = LatencyModel::computeBound();
  WarpSimulator Sim(M, M.functionByName("pure"), Config);
  RunResult R = Sim.run();
  return R.ok() ? R.Stats.Cycles : 0;
}

} // namespace

int main() {
  printHeader("Ablation: SIMD predication (if-conversion) vs speculative "
              "reconvergence");
  std::printf("arm weight sweep, hot probability 20%%, 32 iterations\n");
  std::printf("%9s %10s %12s %12s   %s\n", "arm-muls", "baseline",
              "predicated", "spec-reconv", "winner");
  printRule();
  for (int ArmMuls : {1, 4, 8, 16, 32, 64, 128}) {
    auto Baseline = pureArmKernel(ArmMuls);
    runSyncPipeline(*Baseline, PipelineOptions::baseline());
    uint64_t Base = runCycles(*Baseline);

    auto Predicated = pureArmKernel(ArmMuls);
    stripPredictDirectives(*Predicated);
    ifConvert(*Predicated);
    simplifyCfg(*Predicated);
    runSyncPipeline(*Predicated, PipelineOptions::baseline());
    uint64_t Pred = runCycles(*Predicated);

    auto Reconverged = pureArmKernel(ArmMuls);
    runSyncPipeline(*Reconverged, PipelineOptions::speculative());
    uint64_t SR = runCycles(*Reconverged);

    std::printf("%9d %10llu %12llu %12llu   %s\n", ArmMuls,
                static_cast<unsigned long long>(Base),
                static_cast<unsigned long long>(Pred),
                static_cast<unsigned long long>(SR),
                Pred < SR ? "predication" : "reconvergence");
  }
  printRule();
  std::printf("Small arms: executing everywhere beats synchronizing.\n"
              "Heavy arms: gathering wins — and predication is not even\n"
              "legal once the arm holds memory, RNG or calls (most of\n"
              "Table 2), which is the paper's operating regime.\n");
  return 0;
}
