//===- bench_passes.cpp - Compiler-pass throughput (google-benchmark) -----------===//
///
/// Compile-time cost of the pass stack: analyses and synchronization
/// insertion per workload module. These are the costs an NVCC-style
/// backend would pay per kernel.
///
//===----------------------------------------------------------------------===//

#include "analysis/BarrierAnalysis.h"
#include "analysis/Divergence.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "kernels/Runner.h"
#include "transform/AutoDetect.h"

#include <benchmark/benchmark.h>

using namespace simtsr;

static void BM_DominatorTree(benchmark::State &State) {
  Workload W = makeRSBench();
  Function &F = *W.M->functionByName(W.KernelName);
  for (auto _ : State) {
    DominatorTree DT(F);
    benchmark::DoNotOptimize(DT.idom(F.entry()));
  }
}
BENCHMARK(BM_DominatorTree);

static void BM_LoopInfo(benchmark::State &State) {
  Workload W = makeRSBench();
  Function &F = *W.M->functionByName(W.KernelName);
  for (auto _ : State) {
    DominatorTree DT(F);
    LoopInfo LI(F, DT);
    benchmark::DoNotOptimize(LI.loops().size());
  }
}
BENCHMARK(BM_LoopInfo);

static void BM_DivergenceAnalysis(benchmark::State &State) {
  Workload W = makeRSBench();
  Function &F = *W.M->functionByName(W.KernelName);
  for (auto _ : State) {
    PostDominatorTree PDT(F);
    DivergenceAnalysis DA(F, PDT);
    benchmark::DoNotOptimize(DA.hasDivergenceSources());
  }
}
BENCHMARK(BM_DivergenceAnalysis);

static void BM_BarrierDataflow(benchmark::State &State) {
  Workload W = makeRSBench();
  PipelineOptions Opts = PipelineOptions::speculative();
  Workload Synced = cloneWorkload(W);
  runSyncPipeline(*Synced.M, Opts);
  Function &F = *Synced.M->functionByName(W.KernelName);
  for (auto _ : State) {
    JoinedBarrierAnalysis Joined(F);
    BarrierLivenessAnalysis Live(F);
    benchmark::DoNotOptimize(Joined.out(F.entry()) + Live.liveIn(F.entry()));
  }
}
BENCHMARK(BM_BarrierDataflow);

static void BM_FullPipelineBaseline(benchmark::State &State) {
  Workload W = makeRSBench();
  for (auto _ : State) {
    Workload Fresh = cloneWorkload(W);
    auto R = runSyncPipeline(*Fresh.M, PipelineOptions::baseline());
    benchmark::DoNotOptimize(R.Pdom.BarriersInserted);
  }
}
BENCHMARK(BM_FullPipelineBaseline);

static void BM_FullPipelineSpeculative(benchmark::State &State) {
  Workload W = makeRSBench();
  for (auto _ : State) {
    Workload Fresh = cloneWorkload(W);
    auto R = runSyncPipeline(*Fresh.M, PipelineOptions::speculative());
    benchmark::DoNotOptimize(R.SR.Applied.size());
  }
}
BENCHMARK(BM_FullPipelineSpeculative);

static void BM_AutoDetect(benchmark::State &State) {
  Workload W = makeRSBench();
  for (auto _ : State) {
    Workload Fresh = cloneWorkload(W);
    stripPredictDirectives(*Fresh.M);
    AutoDetectOptions Opts;
    Opts.Apply = false;
    auto R = detectReconvergence(*Fresh.M, Opts);
    benchmark::DoNotOptimize(R.Candidates.size());
  }
}
BENCHMARK(BM_AutoDetect);

BENCHMARK_MAIN();
