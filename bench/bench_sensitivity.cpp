//===- bench_sensitivity.cpp - What makes speculative reconvergence win ----------===//
///
/// Section 5.2's analysis, quantified: "SIMT efficiency is improved most
/// when threads have a relatively high degree of compute inside their
/// loops compared with the cost of newly-serialized code" and gains grow
/// with trip-count variability. This harness sweeps a Loop Merge kernel
/// over (a) the inner-trip range at fixed body weight and (b) the body
/// weight at fixed trips, reporting the speedup surface — including the
/// unprofitable corner the paper warns about.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/IRBuilder.h"
#include "kernels/KernelBuild.h"

using namespace simtsr;
using namespace simtsr::bench;
using namespace simtsr::kernelbuild;

namespace {

/// Parameterized Loop Merge kernel: outer task loop, inner loop with
/// trips uniform in [1, MaxTrip), BodyMuls multiplies per iteration.
std::unique_ptr<Module> sweepKernel(int64_t MaxTrip, int BodyMuls) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);
  Function *F = M->createFunction("sweep", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Outer = F->createBlock("outer");
  BasicBlock *InnerHeader = F->createBlock("inner_header");
  BasicBlock *InnerBody = F->createBlock("inner_body");
  BasicBlock *Epilog = F->createBlock("epilog");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  B.predict(InnerBody);
  B.jmp(Outer);

  B.setInsertBlock(Outer);
  unsigned N = B.randRange(Operand::imm(1), Operand::imm(MaxTrip));
  unsigned J = B.mov(Operand::imm(0));
  B.jmp(InnerHeader);

  B.setInsertBlock(InnerHeader);
  unsigned More = B.cmpLT(Operand::reg(J), Operand::reg(N));
  B.br(Operand::reg(More), InnerBody, Epilog);

  B.setInsertBlock(InnerBody);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(J));
  for (int K = 0; K < BodyMuls; ++K)
    X = B.mul(Operand::reg(X), Operand::imm(2654435761 + K));
  InnerBody->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  unsigned JN = B.add(Operand::reg(J), Operand::imm(1));
  InnerBody->append(Instruction(Opcode::Mov, J, {Operand::reg(JN)}));
  B.jmp(InnerHeader);

  B.setInsertBlock(Epilog);
  unsigned Y = B.xorOp(Operand::reg(Acc), Operand::reg(N));
  Epilog->append(Instruction(Opcode::Mov, Acc, {Operand::reg(Y)}));
  unsigned IN = B.add(Operand::reg(I), Operand::imm(1));
  Epilog->append(Instruction(Opcode::Mov, I, {Operand::reg(IN)}));
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(12));
  B.br(Operand::reg(Done), Exit, Outer);

  B.setInsertBlock(Exit);
  B.store(Operand::reg(T), Operand::reg(Acc));
  B.ret();
  F->recomputePreds();
  return M;
}

double speedupFor(int64_t MaxTrip, int BodyMuls) {
  auto Run = [&](const PipelineOptions &Opts) -> uint64_t {
    auto M = sweepKernel(MaxTrip, BodyMuls);
    runSyncPipeline(*M, Opts);
    LaunchConfig Config;
    Config.Seed = FigureSeed;
    Config.Latency = LatencyModel::computeBound();
    WarpSimulator Sim(*M, M->functionByName("sweep"), Config);
    RunResult R = Sim.run();
    return R.ok() ? R.Stats.Cycles : 0;
  };
  uint64_t Base = Run(PipelineOptions::baseline());
  uint64_t Opt = Run(PipelineOptions::speculative());
  return Opt == 0 ? 0.0
                  : static_cast<double>(Base) / static_cast<double>(Opt);
}

} // namespace

int main() {
  printHeader("Sensitivity: speedup vs trip variability and body weight "
              "(Section 5.2)");
  std::printf("rows: inner-trip range [1, N); columns: body multiplies\n\n");
  const int Weights[] = {2, 8, 24, 48};
  std::printf("%10s", "max-trip");
  for (int W : Weights)
    std::printf(" %8dmul", W);
  std::printf("\n");
  printRule();
  for (int64_t MaxTrip : {4, 8, 16, 32, 64}) {
    std::printf("%10lld", static_cast<long long>(MaxTrip));
    for (int W : Weights)
      std::printf(" %10.2fx", speedupFor(MaxTrip, W));
    std::printf("\n");
  }
  printRule();
  std::printf("Speedup grows along both axes: more trip variance means\n"
              "more serialization for the baseline to waste, and heavier\n"
              "bodies amortize the gather/refill overhead — the top-left\n"
              "corner (uniform-ish trips, tiny bodies) is where the paper\n"
              "warns speculative reconvergence does not pay.\n");
  return 0;
}
