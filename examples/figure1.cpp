//===- figure1.cpp - Rendering Figure 1's execution diagrams ---------------------===//
///
/// Recreates the paper's Figure 1 as live ASCII timelines: the same
/// divergent-condition loop under (a) PDOM synchronization — the
/// Expensive() calls serialize across iterations — and (b) speculative
/// reconvergence — threads gather at Expensive() and run it together.
///
/// Run: build/examples/figure1
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "sim/Timeline.h"
#include "transform/Pipeline.h"

#include <cstdio>

using namespace simtsr;

namespace {

/// A small 4-thread warp over 4 iterations, like the T0..T3 cartoon.
std::unique_ptr<Module> buildCartoonKernel() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(64);
  Function *F = M->createFunction("cartoon", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("cond");
  BasicBlock *Expensive = F->createBlock("expensive");
  BasicBlock *Continue = F->createBlock("cont");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  B.predict(Expensive);
  B.jmp(Header);

  // Each thread takes the expensive arm in exactly one iteration:
  // thread t fires at iteration t — the Figure 1 pattern.
  B.setInsertBlock(Header);
  unsigned Hit = B.cmpEQ(Operand::reg(I), Operand::reg(Tid));
  B.br(Operand::reg(Hit), Expensive, Continue);

  B.setInsertBlock(Expensive);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(I));
  for (int K = 0; K < 8; ++K)
    X = B.mul(Operand::reg(X), Operand::imm(2654435761 + K));
  Expensive->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  B.jmp(Continue);

  B.setInsertBlock(Continue);
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  Continue->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(4));
  B.br(Operand::reg(Done), Exit, Header);

  B.setInsertBlock(Exit);
  B.store(Operand::reg(Tid), Operand::reg(Acc));
  B.ret();
  F->recomputePreds();
  return M;
}

void show(const char *Title, const PipelineOptions &Opts) {
  auto M = buildCartoonKernel();
  runSyncPipeline(*M, Opts);
  LaunchConfig Config;
  Config.WarpSize = 4;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("cartoon"), Config);
  Timeline T(4);
  T.attach(Sim);
  RunResult R = Sim.run();
  std::printf("--- %s (SIMT efficiency %.0f%%, %llu issue slots) ---\n",
              Title, 100.0 * R.Stats.simtEfficiency(),
              static_cast<unsigned long long>(R.Stats.IssueSlots));
  std::printf("%s%s\n", T.render().c_str(), T.legend().c_str());
}

} // namespace

int main() {
  std::printf("Figure 1: four threads, each taking the expensive arm in a "
              "different iteration.\n\n");
  show("(a) PDOM synchronization — Expensive() serializes",
       PipelineOptions::baseline());
  show("(b) speculative reconvergence — threads gather at Expensive()",
       PipelineOptions::speculative());
  return 0;
}
