//===- autotune_threshold.cpp - Soft-barrier threshold auto-tuning ----------------===//
///
/// The paper leaves "automatically discovering the ideal threshold
/// parameter" to future work (Section 5.3); this example implements the
/// obvious offline tuner: sweep the threshold on a scaled-down run, pick
/// the fastest, then validate at full scale. Demonstrates the per-
/// workload contrast of Figure 9.
///
/// Run: build/examples/autotune_threshold
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"

#include <cstdio>

using namespace simtsr;

namespace {

int tuneThreshold(Workload (*Factory)(double)) {
  // Tune on a half-scale pilot run.
  Workload Pilot = Factory(0.5);
  return autotuneSoftThreshold(Pilot);
}

void report(const char *Name, Workload (*Factory)(double)) {
  int Best = tuneThreshold(Factory);
  Workload Full = Factory(1.0);
  WorkloadOutcome Base = runWorkload(Full, PipelineOptions::baseline(), 7);
  WorkloadOutcome Tuned =
      runWorkload(Full, PipelineOptions::softBarrier(Best), 7);
  WorkloadOutcome Classic =
      runWorkload(Full, PipelineOptions::speculative(), 7);
  std::printf("%-12s tuned threshold %-2d: %.2fx  "
              "(full barrier: %.2fx)\n",
              Name, Best,
              static_cast<double>(Base.Cycles) / Tuned.Cycles,
              static_cast<double>(Base.Cycles) / Classic.Cycles);
}

} // namespace

int main() {
  std::printf("Offline soft-barrier threshold tuning (pilot at half "
              "scale, validation at full scale):\n\n");
  report("pathtracer", makePathTracer);
  report("xsbench", makeXSBench);
  report("rsbench", makeRSBench);
  report("gpu-mcml", makeGpuMCML);
  std::printf("\nXSBench tunes to a small threshold, PathTracer to a "
              "large one — Figure 9's contrast, found automatically.\n");
  return 0;
}
