//===- raytracer.cpp - Path tracing with Russian roulette ------------------------===//
///
/// The graphics-side motivation: a Cornell-box path tracer whose bounce
/// loop terminates by Russian roulette. Shows baseline vs speculative
/// reconvergence vs the soft barrier at several thresholds, plus the
/// common-call variant where both the hit and miss paths invoke a shared
/// shade function gathered interprocedurally.
///
/// Run: build/examples/raytracer
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"

#include <cstdio>

using namespace simtsr;

int main() {
  Workload Tracer = makePathTracer();
  std::printf("PathTracer: %s\n\n", Tracer.Description.c_str());

  WorkloadOutcome Base =
      runWorkload(Tracer, PipelineOptions::baseline(), 7);
  std::printf("%-28s eff %5.1f%%  %8llu cycles\n", "baseline (PDOM)",
              100.0 * Base.SimtEfficiency,
              static_cast<unsigned long long>(Base.Cycles));

  WorkloadOutcome Full =
      runWorkload(Tracer, PipelineOptions::speculative(), 7);
  std::printf("%-28s eff %5.1f%%  %8llu cycles  %.2fx\n",
              "full reconvergence", 100.0 * Full.SimtEfficiency,
              static_cast<unsigned long long>(Full.Cycles),
              static_cast<double>(Base.Cycles) / Full.Cycles);

  for (int Threshold : {4, 16, 28}) {
    WorkloadOutcome Soft =
        runWorkload(Tracer, PipelineOptions::softBarrier(Threshold), 7);
    std::printf("soft barrier, threshold %-2d   eff %5.1f%%  %8llu cycles  "
                "%.2fx\n",
                Threshold, 100.0 * Soft.SimtEfficiency,
                static_cast<unsigned long long>(Soft.Cycles),
                static_cast<double>(Base.Cycles) / Soft.Cycles);
  }

  std::printf("\nOptiX-style trace (common shade call, gathered "
              "interprocedurally):\n");
  Workload Optix = makeOptixTrace();
  WorkloadOutcome OBase =
      runWorkload(Optix, PipelineOptions::baseline(), 7);
  WorkloadOutcome OOpt =
      runWorkload(Optix, PipelineOptions::speculative(), 7);
  std::printf("baseline eff %5.1f%%, with shade gather %5.1f%% (%.2fx)\n",
              100.0 * OBase.SimtEfficiency, 100.0 * OOpt.SimtEfficiency,
              static_cast<double>(OBase.Cycles) / OOpt.Cycles);
  return 0;
}
