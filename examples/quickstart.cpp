//===- quickstart.cpp - Five-minute tour of the simtsr API ----------------------===//
///
/// Builds the paper's Listing 1 (a loop whose divergent condition guards
/// an expensive arm) with the IRBuilder, adds the one-line `predict`
/// annotation, runs the baseline and speculative pipelines, and prints
/// the SIMT-efficiency difference — the whole idea of the paper in about
/// a hundred lines.
///
/// Run: build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <cstdio>

using namespace simtsr;

namespace {

/// Listing 1: for (i = 0; i < 32; i++) { if (divergent()) Expensive(); }
std::unique_ptr<Module> buildListing1() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);
  Function *F = M->createFunction("listing1", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Expensive = F->createBlock("expensive");
  BasicBlock *Epilog = F->createBlock("epilog");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  // The user annotation: "threads that reach `expensive` should gather
  // there" — everything else is derived by the compiler.
  B.predict(Expensive);
  B.jmp(Header);

  B.setInsertBlock(Header);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned Hit = B.cmpLT(Operand::reg(Roll), Operand::imm(15));
  B.br(Operand::reg(Hit), Expensive, Epilog);

  B.setInsertBlock(Expensive);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(Roll));
  for (int K = 0; K < 80; ++K)
    X = B.mul(Operand::reg(X), Operand::imm(1103515245 + K));
  Expensive->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  B.jmp(Epilog);

  B.setInsertBlock(Epilog);
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  Epilog->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(32));
  B.br(Operand::reg(Done), Exit, Header);

  B.setInsertBlock(Exit);
  B.store(Operand::reg(Tid), Operand::reg(Acc));
  B.ret();
  F->recomputePreds();
  return M;
}

struct Metrics {
  double Efficiency;
  uint64_t Cycles;
  uint64_t Checksum;
};

Metrics compileAndRun(const PipelineOptions &Opts, bool PrintIR) {
  auto M = buildListing1();
  runSyncPipeline(*M, Opts);
  if (PrintIR)
    std::printf("%s\n", printModule(*M).c_str());
  LaunchConfig Config;
  Config.Seed = 42;
  WarpSimulator Sim(*M, M->functionByName("listing1"), Config);
  RunResult R = Sim.run();
  if (!R.ok()) {
    std::printf("run failed: %s\n", R.TrapMessage.c_str());
    return {0, 0, 0};
  }
  return {R.Stats.simtEfficiency(), R.Stats.Cycles, Sim.memoryChecksum()};
}

} // namespace

int main() {
  std::printf("-- IR after the speculative-reconvergence pipeline --\n");
  Metrics Optimized =
      compileAndRun(PipelineOptions::speculative(), /*PrintIR=*/true);
  Metrics Baseline =
      compileAndRun(PipelineOptions::baseline(), /*PrintIR=*/false);

  std::printf("baseline (PDOM):          SIMT efficiency %5.1f%%, "
              "%llu cycles\n",
              100.0 * Baseline.Efficiency,
              static_cast<unsigned long long>(Baseline.Cycles));
  std::printf("speculative reconvergence: SIMT efficiency %5.1f%%, "
              "%llu cycles  (%.2fx speedup)\n",
              100.0 * Optimized.Efficiency,
              static_cast<unsigned long long>(Optimized.Cycles),
              static_cast<double>(Baseline.Cycles) /
                  static_cast<double>(Optimized.Cycles));
  std::printf("results identical: %s\n",
              Baseline.Checksum == Optimized.Checksum ? "yes" : "NO!");
  return 0;
}
