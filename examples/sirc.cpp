//===- sirc.cpp - Command-line compiler driver for .sir files --------------------===//
///
/// A small `opt`-style driver over the textual IR: parse a .sir file, run
/// the selected synchronization pipeline, print the transformed IR and/or
/// simulate the kernel and report metrics. `examples/listing1.sir` is a
/// ready-made input.
///
/// Usage:
///   sirc <file.sir> [--kernel NAME] [--pipeline baseline|sr|soft:N|none]
///        [--deconflict static|dynamic] [--print-ir] [--seed N]
///        [--policy maxconv|minpc|rr] [--memory-bound] [--auto]
///        [--profile-guided] [--realloc] [--simplify] [--timeline]
///        [--warp-size N] [--inline FUNC] [--unroll HEADER:N]
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "ir/VoltaListing.h"
#include "sim/Timeline.h"
#include "sim/Warp.h"
#include "analysis/LoopInfo.h"
#include "transform/AutoDetect.h"
#include "transform/Inline.h"
#include "transform/LoopUnroll.h"
#include "transform/Pipeline.h"
#include "transform/SimplifyCfg.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace simtsr;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.sir> [--kernel NAME] "
               "[--pipeline baseline|sr|soft:N|none]\n"
               "            [--deconflict static|dynamic] [--print-ir] "
               "[--seed N] [--policy maxconv|minpc|rr] [--memory-bound]\n"
               "            [--auto] [--profile-guided] [--realloc] "
               "[--simplify] [--timeline] [--warp-size N]\n"
               "            [--inline FUNC] [--unroll HEADER:N] "
               "[--progress fair|hsa|obe[:N]|bounded[:K]]\n",
               Argv0);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    usage(Argv[0]);
    return 1;
  }
  std::string Path;
  std::string KernelName;
  std::string PipelineName = "sr";
  std::string Deconflict = "dynamic";
  bool PrintIR = false;
  bool PrintVolta = false;
  bool MemoryBound = false;
  bool AutoDetect = false;
  bool ProfileGuided = false;
  std::string InlineTarget;
  std::string UnrollSpec;
  bool Realloc = false;
  bool Simplify = false;
  bool ShowTimeline = false;
  unsigned WarpSize = 32;
  uint64_t Seed = 1;
  SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence;
  ProgressSpec Progress;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(1);
      }
      return Argv[++I];
    };
    if (Arg == "--kernel") {
      KernelName = needValue("--kernel");
    } else if (Arg == "--pipeline") {
      PipelineName = needValue("--pipeline");
    } else if (Arg == "--deconflict") {
      Deconflict = needValue("--deconflict");
    } else if (Arg == "--print-ir") {
      PrintIR = true;
    } else if (Arg == "--print-volta") {
      PrintVolta = true;
    } else if (Arg == "--memory-bound") {
      MemoryBound = true;
    } else if (Arg == "--auto") {
      AutoDetect = true;
    } else if (Arg == "--profile-guided") {
      ProfileGuided = true;
    } else if (Arg == "--inline") {
      InlineTarget = needValue("--inline");
    } else if (Arg == "--unroll") {
      UnrollSpec = needValue("--unroll");
    } else if (Arg == "--realloc") {
      Realloc = true;
    } else if (Arg == "--simplify") {
      Simplify = true;
    } else if (Arg == "--timeline") {
      ShowTimeline = true;
    } else if (Arg == "--warp-size") {
      WarpSize = static_cast<unsigned>(
          std::strtoul(needValue("--warp-size"), nullptr, 10));
    } else if (Arg == "--seed") {
      Seed = std::strtoull(needValue("--seed"), nullptr, 10);
    } else if (Arg == "--policy") {
      std::string P = needValue("--policy");
      if (P == "maxconv")
        Policy = SchedulerPolicy::MaxConvergence;
      else if (P == "minpc")
        Policy = SchedulerPolicy::MinPC;
      else if (P == "rr")
        Policy = SchedulerPolicy::RoundRobin;
      else {
        std::fprintf(stderr, "error: unknown policy '%s'\n", P.c_str());
        return 1;
      }
    } else if (Arg == "--progress") {
      const char *V = needValue("--progress");
      if (!parseProgressSpec(V, Progress)) {
        std::fprintf(stderr, "error: bad progress spec '%s'\n", V);
        return 1;
      }
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage(Argv[0]);
    return 1;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  ParseResult Parsed = parseModule(Buffer.str());
  if (!Parsed.ok()) {
    for (const auto &E : Parsed.Errors)
      std::fprintf(stderr, "%s: %s\n", Path.c_str(), E.c_str());
    return 1;
  }
  Module &M = *Parsed.M;
  auto Diags = verifyModule(M);
  if (!Diags.empty()) {
    for (const auto &D : Diags)
      std::fprintf(stderr, "verifier: %s\n", D.c_str());
    return 1;
  }

  if (!InlineTarget.empty()) {
    Function *Callee = M.functionByName(InlineTarget);
    if (!Callee) {
      std::fprintf(stderr, "error: no function '@%s' to inline\n",
                   InlineTarget.c_str());
      return 1;
    }
    unsigned N = inlineAllCalls(M, Callee);
    std::fprintf(stderr, "inline: %u call site(s) of @%s inlined\n", N,
                 InlineTarget.c_str());
  }

  if (!UnrollSpec.empty()) {
    size_t Colon = UnrollSpec.find(':');
    if (Colon == std::string::npos) {
      std::fprintf(stderr, "error: --unroll expects HEADER:N\n");
      return 1;
    }
    std::string HeaderName = UnrollSpec.substr(0, Colon);
    unsigned Factor = static_cast<unsigned>(
        std::strtoul(UnrollSpec.c_str() + Colon + 1, nullptr, 10));
    bool Done = false;
    for (size_t FI = 0; FI < M.size() && !Done; ++FI) {
      Function &F = *M.function(FI);
      BasicBlock *Header = F.blockByName(HeaderName);
      if (!Header)
        continue;
      DominatorTree DT(F);
      LoopInfo LI(F, DT);
      Loop *L = LI.loopWithHeader(Header);
      if (!L) {
        std::fprintf(stderr, "error: '%s' is not a loop header\n",
                     HeaderName.c_str());
        return 1;
      }
      if (!unrollLoop(F, *L, Factor)) {
        std::fprintf(stderr, "error: loop at '%s' is not unrollable\n",
                     HeaderName.c_str());
        return 1;
      }
      std::fprintf(stderr, "unroll: '%s' unrolled by %u\n",
                   HeaderName.c_str(), Factor);
      Done = true;
    }
    if (!Done) {
      std::fprintf(stderr, "error: no block named '%s'\n",
                   HeaderName.c_str());
      return 1;
    }
  }

  if (Simplify) {
    SimplifyReport SR = simplifyCfg(M);
    std::fprintf(stderr, "simplify: removed %u unreachable, forwarded %u, "
                         "merged %u\n",
                 SR.UnreachableRemoved, SR.TrampolinesForwarded,
                 SR.ChainsMerged);
  }

  if (AutoDetect) {
    AutoDetectOptions AOpts;
    SimStats Profile;
    if (ProfileGuided) {
      // Pilot run: baseline pipeline on a clone, block profiling on.
      ParseResult Clone = parseModule(printModule(M));
      if (Clone.ok()) {
        runSyncPipeline(*Clone.M, PipelineOptions::baseline());
        Function *PilotKernel =
            KernelName.empty()
                ? (Clone.M->size()
                       ? Clone.M->function(Clone.M->size() - 1)
                       : nullptr)
                : Clone.M->functionByName(KernelName);
        if (PilotKernel && PilotKernel->numParams() == 0) {
          LaunchConfig PilotConfig;
          PilotConfig.Seed = Seed;
          PilotConfig.ProfileBlocks = true;
          PilotConfig.Latency = MemoryBound ? LatencyModel::memoryBound()
                                            : LatencyModel::computeBound();
          WarpSimulator Pilot(*Clone.M, PilotKernel, PilotConfig);
          Profile = Pilot.run().Stats;
          AOpts.Profile = &Profile;
          std::fprintf(stderr, "auto: profile-guided (pilot run: %llu "
                               "cycles)\n",
                       static_cast<unsigned long long>(Profile.Cycles));
        }
      }
    }
    AutoDetectReport AR = detectReconvergence(M, AOpts);
    for (const AutoCandidate &C : AR.Candidates)
      std::fprintf(stderr, "auto: %s label '%s' score %.1f — %s\n",
                   C.PatternKind == AutoCandidate::Kind::LoopMerge
                       ? "loop-merge"
                       : "iteration-delay",
                   C.Label->name().c_str(), C.Score, C.Reason.c_str());
    std::fprintf(stderr, "auto: %u predict directive(s) inserted\n",
                 AR.Inserted);
  }

  PipelineOptions Opts;
  if (PipelineName == "baseline") {
    Opts = PipelineOptions::baseline();
  } else if (PipelineName == "sr") {
    Opts = PipelineOptions::speculative();
  } else if (PipelineName.rfind("soft:", 0) == 0) {
    Opts = PipelineOptions::softBarrier(
        std::atoi(PipelineName.c_str() + 5));
  } else if (PipelineName == "none") {
    Opts.PdomSync = false;
    Opts.StripPredicts = true;
  } else {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n",
                 PipelineName.c_str());
    return 1;
  }
  Opts.Deconflict = Deconflict == "static" ? DeconflictStrategy::Static
                                           : DeconflictStrategy::Dynamic;
  Opts.ReallocBarriers = Realloc;

  PipelineReport Report = runSyncPipeline(M, Opts);
  for (const auto &D : Report.VerifierDiagnostics)
    std::fprintf(stderr, "warning: %s\n", D.c_str());

  if (PrintIR)
    std::printf("%s", printModule(M).c_str());
  if (PrintVolta)
    for (size_t FI = 0; FI < M.size(); ++FI)
      std::printf("%s", printVoltaListing(*M.function(FI)).c_str());

  Function *Kernel = KernelName.empty()
                         ? (M.size() ? M.function(M.size() - 1) : nullptr)
                         : M.functionByName(KernelName);
  if (!Kernel) {
    std::fprintf(stderr, "error: kernel not found\n");
    return 1;
  }
  if (Kernel->numParams() != 0) {
    std::fprintf(stderr,
                 "error: kernel '@%s' takes parameters; only parameterless "
                 "kernels can be launched by sirc\n",
                 Kernel->name().c_str());
    return 1;
  }

  LaunchConfig Config;
  Config.Seed = Seed;
  Config.Policy = Policy;
  Config.Progress = Progress;
  Config.WarpSize = WarpSize;
  Config.Latency =
      MemoryBound ? LatencyModel::memoryBound() : LatencyModel::computeBound();
  WarpSimulator Sim(M, Kernel, Config);
  Timeline Trace(WarpSize);
  if (ShowTimeline)
    Trace.attach(Sim);
  RunResult R = Sim.run();
  if (ShowTimeline)
    std::printf("%s%s", Trace.render().c_str(), Trace.legend().c_str());
  const char *Status = getRunStatusName(R.St);
  std::printf("@%s: %s — SIMT efficiency %.1f%%, %llu cycles, "
              "%llu issue slots, checksum %016llx\n",
              Kernel->name().c_str(), Status,
              100.0 * R.Stats.simtEfficiency(),
              static_cast<unsigned long long>(R.Stats.Cycles),
              static_cast<unsigned long long>(R.Stats.IssueSlots),
              static_cast<unsigned long long>(Sim.memoryChecksum()));
  if (!R.ok() && !R.TrapMessage.empty())
    std::printf("%s: %s\n", Status, R.TrapMessage.c_str());
  return R.ok() ? 0 : 2;
}
