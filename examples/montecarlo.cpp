//===- montecarlo.cpp - RSBench walkthrough with thread coarsening --------------===//
///
/// The paper's flagship scenario (Section 3, Figure 3): the RSBench
/// neutron-transport lookup kernel after thread coarsening. Walks through
/// the full flow — inspect the divergence profile, apply Loop Merge via
/// the predict annotation, and compare the per-block execution profiles
/// that explain *why* it wins (convergent inner loop, divergent but cheap
/// prolog/epilog).
///
/// Run: build/examples/montecarlo
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"

#include <cstdio>

using namespace simtsr;

namespace {

void printProfile(const char *Tag, const Workload &W,
                  const PipelineOptions &Opts) {
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, Opts);
  LaunchConfig Config;
  Config.Seed = 1;
  Config.Latency = Fresh.Latency;
  Config.ProfileBlocks = true;
  WarpSimulator Sim(*Fresh.M, Fresh.M->functionByName(Fresh.KernelName),
                    Config);
  if (Fresh.InitMemory)
    Fresh.InitMemory(Sim);
  RunResult R = Sim.run();
  std::printf("\n%s: SIMT efficiency %.1f%%, %llu cycles\n", Tag,
              100.0 * R.Stats.simtEfficiency(),
              static_cast<unsigned long long>(R.Stats.Cycles));
  std::printf("  %-14s %10s %12s %10s\n", "block", "issues",
              "avg active", "cycles");
  for (const auto &[Key, P] : R.Stats.Blocks) {
    if (Key.first != Fresh.KernelName)
      continue;
    std::printf("  %-14s %10llu %12.1f %10llu\n", Key.second.c_str(),
                static_cast<unsigned long long>(P.Issues),
                P.Issues ? static_cast<double>(P.ActiveThreads) /
                               static_cast<double>(P.Issues)
                         : 0.0,
                static_cast<unsigned long long>(P.Cycles));
  }
}

} // namespace

int main() {
  Workload W = makeRSBench();
  std::printf("RSBench: %s\n", W.Description.c_str());
  std::printf("Nuclides per material range from 4 to 321, so each outer\n"
              "task runs the inner loop a divergent number of times.\n");

  printProfile("PDOM baseline", W, PipelineOptions::baseline());
  printProfile("Loop Merge (speculative reconvergence)", W,
               PipelineOptions::speculative());

  std::printf("\nNote how the inner_body average active-thread count rises\n"
              "toward the full warp while prolog/epilog become divergent —\n"
              "Figure 3(b)'s repacking, with its serialization overheads.\n");
  return 0;
}
