//===- profiler.cpp - nvprof-style divergence profiling ---------------------------===//
///
/// The measurement side of the paper's workflow: before annotating, a
/// developer profiles to find where divergence lives. This tool runs any
/// Table 2 workload under the PDOM baseline and prints what nvprof showed
/// the authors: overall SIMT efficiency, an occupancy histogram over
/// issue groups, per-block profiles, per-branch divergence rates and
/// memory-coalescing figures. Pass a workload name; default rsbench.
///
/// Run: build/examples/profiler [workload] [--annotated]
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"
#include "sim/Timeline.h"
#include "support/Stats.h"

#include <bit>
#include <cstdio>
#include <cstring>

using namespace simtsr;

namespace {

const Workload *findWorkload(const std::vector<Workload> &All,
                             const std::string &Name) {
  for (const Workload &W : All)
    if (W.Name == Name)
      return &W;
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Name = "rsbench";
  bool Annotated = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--annotated") == 0)
      Annotated = true;
    else
      Name = Argv[I];
  }

  std::vector<Workload> All = makeAllWorkloads();
  const Workload *W = findWorkload(All, Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name.c_str());
    for (const Workload &Each : All)
      std::fprintf(stderr, " %s", Each.Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  Workload Fresh = cloneWorkload(*W);
  runSyncPipeline(*Fresh.M, Annotated ? annotatedOptionsFor(*W)
                                      : PipelineOptions::baseline());
  Function *Kernel = Fresh.M->functionByName(Fresh.KernelName);
  LaunchConfig Config;
  Config.Seed = 2020;
  Config.Latency = Fresh.Latency;
  Config.ProfileBlocks = true;
  WarpSimulator Sim(*Fresh.M, Kernel, Config);
  if (Fresh.InitMemory)
    Fresh.InitMemory(Sim);

  // Histogram of active lanes per issue, collected via the trace hook.
  Histogram Occupancy(0.0, 33.0, 33);
  Sim.setTracer([&](const Function &, const BasicBlock &, size_t,
                    LaneMask Lanes) {
    Occupancy.add(static_cast<double>(std::popcount(Lanes)));
  });

  RunResult R = Sim.run();
  std::printf("%s (%s, %s pipeline)\n", Fresh.Name.c_str(),
              Fresh.Description.c_str(),
              Annotated ? "annotated" : "baseline");
  if (!R.ok()) {
    std::printf("run failed: %s\n", R.TrapMessage.c_str());
    return 2;
  }
  std::printf("SIMT efficiency %.1f%%   cycles %llu   issue slots %llu\n",
              100.0 * R.Stats.simtEfficiency(),
              static_cast<unsigned long long>(R.Stats.Cycles),
              static_cast<unsigned long long>(R.Stats.IssueSlots));
  std::printf("memory: %llu issues, %llu transactions, coalescing "
              "%.1f%%\n",
              static_cast<unsigned long long>(R.Stats.MemIssues),
              static_cast<unsigned long long>(R.Stats.MemTransactions),
              100.0 * R.Stats.coalescingEfficiency());
  std::printf("active lanes per issue (1..32): |%s|\n\n",
              Occupancy.render().c_str());

  std::printf("%-16s %9s %12s %10s\n", "block", "issues", "avg active",
              "cycles");
  for (const auto &[Key, P] : R.Stats.Blocks)
    std::printf("%-16s %9llu %12.1f %10llu\n",
                (Key.first + "." + Key.second).c_str(),
                static_cast<unsigned long long>(P.Issues),
                P.Issues ? static_cast<double>(P.ActiveThreads) /
                               static_cast<double>(P.Issues)
                         : 0.0,
                static_cast<unsigned long long>(P.Cycles));

  if (!R.Stats.Branches.empty()) {
    std::printf("\n%-16s %11s %11s %11s\n", "branch", "executions",
                "divergent", "rate");
    for (const auto &[Key, B] : R.Stats.Branches)
      std::printf("%-16s %11llu %11llu %10.1f%%\n",
                  (Key.first + "." + Key.second).c_str(),
                  static_cast<unsigned long long>(B.Executions),
                  static_cast<unsigned long long>(B.Divergent),
                  100.0 * B.divergenceRate());
  }
  return 0;
}
