//===- coarsening.cpp - Thread coarsening, inlining and Loop Merge ----------------===//
///
/// Section 3's preparation recipe for RSBench, end to end. CUDA code
/// launches one variable-length task per thread; the paper thread-
/// coarsens ("we assign a large number of tasks per thread to enable load
/// balancing over time") and then applies Loop Merge to the resulting
/// nested loop (Figure 3). Task lengths here are heavy-tailed like
/// RSBench's nuclide counts: mostly 4..20, occasionally ~200-320.
///
/// The chain also demonstrates a Section 6 interaction: the reconvergence
/// label must live in the *same function* as the outer loop, so the task
/// body is inlined into the coarsened wrapper before Loop Merge fires.
///
/// Run: build/examples/coarsening
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "kernels/KernelBuild.h"
#include "sim/Warp.h"
#include "transform/Coarsen.h"
#include "transform/Inline.h"
#include "transform/Pipeline.h"
#include "transform/SimplifyCfg.h"

#include <cstdio>

using namespace simtsr;
using namespace simtsr::kernelbuild;

namespace {

/// A lookup task with an RSBench-style heavy-tailed length: hash the task
/// id; one task in eight is long (200..319), the rest short (4..19).
std::unique_ptr<Module> buildTaskKernel(bool AnnotateBody) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(1 << 12);
  Function *F = M->createFunction("lookup", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Done = F->createBlock("done");

  B.setInsertBlock(Entry);
  unsigned H = B.mul(Operand::reg(0), Operand::imm(2654435761));
  unsigned H2 = B.shr(Operand::reg(H), Operand::imm(16));
  unsigned Bucket = B.rem(Operand::reg(H2), Operand::imm(8));
  unsigned IsLong = B.cmpEQ(Operand::reg(Bucket), Operand::imm(0));
  unsigned Short0 = B.rem(Operand::reg(H2), Operand::imm(16));
  unsigned Short = B.add(Operand::reg(Short0), Operand::imm(4));
  unsigned Long0 = B.rem(Operand::reg(H2), Operand::imm(120));
  unsigned Long = B.add(Operand::reg(Long0), Operand::imm(200));
  unsigned Len = B.select(Operand::reg(IsLong), Operand::reg(Long),
                          Operand::reg(Short));
  unsigned J = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  if (AnnotateBody)
    B.predict(Body); // Figure 3's L1: gather at the accumulate loop.
  B.jmp(Header);

  B.setInsertBlock(Header);
  unsigned C = B.cmpLT(Operand::reg(J), Operand::reg(Len));
  B.br(Operand::reg(C), Body, Done);

  B.setInsertBlock(Body);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(J));
  X = emitAluChain(B, X, 12, 1103515245);
  Body->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  unsigned JN = B.add(Operand::reg(J), Operand::imm(1));
  Body->append(Instruction(Opcode::Mov, J, {Operand::reg(JN)}));
  B.jmp(Header);

  B.setInsertBlock(Done);
  B.store(Operand::reg(0), Operand::reg(Acc));
  B.ret(Operand::imm(0));
  F->recomputePreds();
  return M;
}

void show(const char *Tag, Module &M, Function *Kernel, uint64_t *Base) {
  LaunchConfig Config;
  Config.Seed = 3;
  Config.Latency = LatencyModel::computeBound();
  WarpSimulator Sim(M, Kernel, Config);
  RunResult R = Sim.run();
  double Speedup =
      *Base == 0 ? 1.0
                 : static_cast<double>(*Base) /
                       static_cast<double>(R.Stats.Cycles);
  if (*Base == 0)
    *Base = R.Stats.Cycles;
  std::printf("%-44s eff %5.1f%%  %8llu cycles  %.2fx\n", Tag,
              100.0 * R.Stats.simtEfficiency(),
              static_cast<unsigned long long>(R.Stats.Cycles), Speedup);
}

} // namespace

int main() {
  const int64_t Tasks = 256;
  std::printf("%lld heavy-tailed lookup tasks on a 32-thread warp "
              "(RSBench-style lengths 4..320):\n\n",
              static_cast<long long>(Tasks));
  uint64_t Base = 0;

  // 1. Coarsened baseline: 8 tasks per thread, PDOM synchronization.
  {
    auto M = buildTaskKernel(false);
    Function *Wrap = coarsenKernel(*M, M->functionByName("lookup"), Tasks);
    runSyncPipeline(*M, PipelineOptions::baseline());
    show("1. coarsened, PDOM baseline", *M, Wrap, &Base);
  }

  // 2. Annotated but NOT inlined: the predict sits in @lookup while the
  //    task loop lives in the wrapper — per-invocation gathers achieve
  //    little (the Section 6 "common PC" subtlety in reverse).
  {
    auto M = buildTaskKernel(true);
    Function *Wrap = coarsenKernel(*M, M->functionByName("lookup"), Tasks);
    runSyncPipeline(*M, PipelineOptions::speculative());
    show("2. Loop Merge without inlining (weak)", *M, Wrap, &Base);
  }

  // 3. Inline the task into the wrapper first: the annotation now sits
  //    inside the nested loop and Loop Merge fires — Figure 3's repacking.
  {
    auto M = buildTaskKernel(true);
    Function *Wrap = coarsenKernel(*M, M->functionByName("lookup"), Tasks);
    inlineAllCalls(*M, M->functionByName("lookup"));
    simplifyCfg(*M);
    runSyncPipeline(*M, PipelineOptions::speculative());
    show("3. inlined + Loop Merge", *M, Wrap, &Base);
  }

  std::printf("\nCoarsening creates the nested loop; inlining puts the\n"
              "reconvergence label next to it; Loop Merge packs the\n"
              "heavy-tailed inner loop back into full-warp issues.\n");
  return 0;
}
