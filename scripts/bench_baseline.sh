#!/usr/bin/env bash
# Records the machine-readable simulator performance baseline
# (BENCH_baseline.json, schema simtsr-bench-v1) at the repository root.
#
# The deterministic fields (cycles, issue_slots, simt_efficiency, checksum)
# must be identical on every machine and in every mode; the wall-clock
# fields (wall_ms, warps_per_sec, issue_slots_per_sec) describe the host
# that ran this script. See docs/PERFORMANCE.md.
#
# Environment overrides:
#   WARPS  warps per grid          (default 8)
#   SCALE  workload scale factor   (default 1.0)
#   OUT    output file             (default BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

WARPS="${WARPS:-8}"
SCALE="${SCALE:-1.0}"
OUT="${OUT:-BENCH_baseline.json}"

if [ ! -x build/tools/simtsr-bench ]; then
  cmake -B build -S .
  cmake --build build --target simtsr-bench -j
fi

./build/tools/simtsr-bench --json --warps "$WARPS" --scale "$SCALE" --out "$OUT"
echo "Wrote $OUT (warps=$WARPS scale=$SCALE)"
