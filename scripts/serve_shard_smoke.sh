#!/usr/bin/env bash
# Sharded-fleet smoke for the consistent-hash router (docs/SERVE.md):
# start three shard daemons plus a router daemon fronting them, route a
# session both through the router and through the Python client's own
# ring (--shards), SIGKILL one shard while a stream of requests is in
# flight, and assert that (a) no request is ever lost — the router falls
# back to local execution, the client fails over to the ring successor —
# and (b) every digest-bearing field stays byte-identical to a plain
# unsharded daemon's answers through all of it.
#
# Environment overrides:
#   SERVE    daemon binary   (default build/tools/simtsr-serve)
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE="${SERVE:-build/tools/simtsr-serve}"
WORK=$(mktemp -d /tmp/simtsr-shard-XXXXXX)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() { echo "serve shard smoke FAILED: $1" >&2; exit 1; }

[ -x "$SERVE" ] ||
  fail "$SERVE not built (cmake --build build --target simtsr-serve)"

SRC1=$(python3 -c 'import json,sys; print(json.dumps(open(sys.argv[1]).read()))' \
       examples/listing1.sir)
SRC2=$(python3 -c 'import json,sys; print(json.dumps(open(sys.argv[1]).read()))' \
       examples/loopmerge.sir)

# Four distinct content keys so the session spreads across the ring.
session() {
  echo "{\"id\":1,\"op\":\"compile\",\"source\":$SRC1,\"pipeline\":\"sr\"}"
  echo "{\"id\":2,\"op\":\"simulate\",\"source\":$SRC1,\"pipeline\":\"sr\",\"warps\":2}"
  echo "{\"id\":3,\"op\":\"simulate\",\"source\":$SRC1,\"pipeline\":\"pdom\",\"warps\":2}"
  echo "{\"id\":4,\"op\":\"simulate\",\"source\":$SRC2,\"pipeline\":\"sr\",\"warps\":2}"
}

# A longer stream for the mid-flight kill: same keys, many ids.
stream() {
  for i in $(seq 1 20); do
    p=$([ $((i % 2)) -eq 0 ] && echo sr || echo pdom)
    s=$([ $((i % 3)) -eq 0 ] && echo "$SRC2" || echo "$SRC1")
    echo "{\"id\":$i,\"op\":\"simulate\",\"source\":$s,\"pipeline\":\"$p\",\"warps\":2}"
  done
}

digests() {
  python3 - "$1" <<'EOF'
import json, sys
for line in sys.argv[1].splitlines():
    r = json.loads(line)
    row = {k: r[k] for k in
           ("id", "module", "post_digest", "checksum", "trace_digest",
            "cycles", "issue_slots") if k in r}
    print(json.dumps(row, sort_keys=True))
EOF
}

SHARDS=()
for i in 0 1 2; do
  "$SERVE" --socket "$WORK/shard$i.sock" --disk-cache "$WORK/disk$i" &
  PIDS+=($!)
  SHARDS+=("$WORK/shard$i.sock")
done
SHARD_LIST="${SHARDS[0]},${SHARDS[1]},${SHARDS[2]}"
"$SERVE" --socket "$WORK/router.sock" --route "$SHARD_LIST" &
PIDS+=($!)
"$SERVE" --socket "$WORK/plain.sock" &
PIDS+=($!)

# Ground truth from the unsharded daemon.
TRUTH=$(session | python3 scripts/serve_client.py --socket "$WORK/plain.sock")

# Phase 1: the router forwards each request to its ring owner; answers
# must match the unsharded daemon bit for bit.
ROUTED=$(session | python3 scripts/serve_client.py --socket "$WORK/router.sock")
diff <(digests "$TRUTH") <(digests "$ROUTED") ||
  fail "router-forwarded digests differ from the unsharded daemon"

# The work really landed on the shards: the cluster verb must report
# every shard reachable and a nonzero forward count.
CLUSTER=$(echo '{"id":90,"op":"cluster"}' |
          python3 scripts/serve_client.py --socket "$WORK/router.sock")
python3 - "$CLUSTER" <<'EOF' || fail "cluster verb disagrees with the fleet"
import json, sys
c = json.loads(sys.argv[1])
assert c["schema"] == "simtsr-serve-v2", c["schema"]
assert c["routing"] is True
assert c["fleet"]["shards"] == 3
assert c["fleet"]["reachable"] == 3, c["fleet"]
assert c["fleet"]["forwarded"] >= 4, c["fleet"]
EOF

# Phase 2: the Python client's own ring (no router in the path) computes
# the same placement, so every answer is already cached on its shard.
CLIENT=$(session | python3 scripts/serve_client.py --shards "$SHARD_LIST")
diff <(digests "$TRUTH") <(digests "$CLIENT") ||
  fail "client-ring digests differ from the unsharded daemon"
grep -q '"cached":true' <<<"$CLIENT" ||
  fail "client ring disagreed with router placement: no cache hits"

# Phase 3: SIGKILL shard 1 while a 20-request stream is in flight through
# the router. Every request must still be answered (the router falls back
# to local execution for keys the dead shard owned), digest-identical to
# the unsharded daemon.
STREAM_TRUTH=$(stream | python3 scripts/serve_client.py --socket "$WORK/plain.sock")
stream | python3 scripts/serve_client.py --socket "$WORK/router.sock" \
  > "$WORK/stream.out" &
CLIENT_PID=$!
sleep 0.2
kill -9 "${PIDS[1]}"
wait "$CLIENT_PID" || fail "router session lost requests after shard death"
[ "$(wc -l < "$WORK/stream.out")" -eq 20 ] ||
  fail "expected 20 streamed responses, got $(wc -l < "$WORK/stream.out")"
diff <(digests "$STREAM_TRUTH") <(digests "$(cat "$WORK/stream.out")") ||
  fail "digests diverged after mid-stream shard death"

CLUSTER=$(echo '{"id":91,"op":"cluster"}' |
          python3 scripts/serve_client.py --socket "$WORK/router.sock")
python3 - "$CLUSTER" <<'EOF' || fail "cluster verb missed the dead shard"
import json, sys
c = json.loads(sys.argv[1])
assert c["fleet"]["shards"] == 3
assert c["fleet"]["reachable"] == 2, c["fleet"]
EOF

# Phase 4: the client ring sees the same death and fails over to the ring
# successor on its own — still no lost requests, still identical digests.
CLIENT2=$(session | python3 scripts/serve_client.py --shards "$SHARD_LIST" \
          --connect-attempts 3) ||
  fail "client ring lost requests after shard death"
diff <(digests "$TRUTH") <(digests "$CLIENT2") ||
  fail "client-ring failover digests differ from the unsharded daemon"

for sock in "$WORK/shard0.sock" "$WORK/shard2.sock" "$WORK/router.sock" \
            "$WORK/plain.sock"; do
  echo '{"id":99,"op":"shutdown"}' |
    python3 scripts/serve_client.py --socket "$sock" > /dev/null
done

echo "serve shard smoke passed"
