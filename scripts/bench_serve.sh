#!/usr/bin/env bash
# Records the serve-cache benchmark (BENCH_serve.json, schema
# simtsr-bench-serve-v1) at the repository root: cold vs. warm
# compile/simulate latency through the daemon's content-addressed caches,
# over the full workload suite on the heaviest pipeline config.
#
# The digest fields (post_digest, trace_digest) must be identical on every
# machine — they prove cached answers are bit-identical to cold ones. The
# *_ms and *_speedup fields describe the host that ran this script. See
# docs/SERVE.md.
#
# Environment overrides:
#   WARPS  warps per grid          (default 8)
#   SCALE  workload scale factor   (default 1.0)
#   OUT    output file             (default BENCH_serve.json)
set -euo pipefail
cd "$(dirname "$0")/.."

WARPS="${WARPS:-8}"
SCALE="${SCALE:-1.0}"
OUT="${OUT:-BENCH_serve.json}"

if [ ! -x build/tools/simtsr-bench ]; then
  cmake -B build -S .
  cmake --build build --target simtsr-bench -j
fi

./build/tools/simtsr-bench --serve --json --warps "$WARPS" --scale "$SCALE" \
  --out "$OUT"
echo "Wrote $OUT (warps=$WARPS scale=$SCALE)"
