#!/usr/bin/env bash
# Records the serve-cache benchmark (BENCH_serve.json, schema
# simtsr-bench-serve-v2) at the repository root: cold vs. warm vs. disk
# vs. remote compile/simulate latency, over the full workload suite on
# the heaviest pipeline config. The remote tier runs a 3-shard fleet of
# in-process daemons behind the consistent-hash router and answers every
# workload from a warmed shard's cache over the socket transport.
#
# The digest fields (post_digest, trace_digest, checksum) must be
# identical on every machine — they prove cached, disk and remote answers
# are bit-identical to cold ones. The *_ms and *_speedup fields describe
# the host that ran this script. See docs/SERVE.md.
#
# Environment overrides:
#   WARPS  warps per grid          (default 8)
#   SCALE  workload scale factor   (default 1.0)
#   OUT    output file             (default BENCH_serve.json)
set -euo pipefail
cd "$(dirname "$0")/.."

WARPS="${WARPS:-8}"
SCALE="${SCALE:-1.0}"
OUT="${OUT:-BENCH_serve.json}"

if [ ! -x build/tools/simtsr-bench ]; then
  cmake -B build -S .
  cmake --build build --target simtsr-bench -j
fi

./build/tools/simtsr-bench --serve --json --warps "$WARPS" --scale "$SCALE" \
  --out "$OUT"
echo "Wrote $OUT (warps=$WARPS scale=$SCALE)"
