#!/usr/bin/env bash
# Boots the simtsr-serve daemon on a scripted stdin session — compile,
# cached compile, simulate, stats, shutdown — and asserts the stats line
# reports a nonzero compile-cache hit count. This is the CI serve smoke
# (mirrors the serve_session_smoke ctest, but exercises the installed
# binary end to end the way a client would).
#
# Environment overrides:
#   SERVE    daemon binary   (default build/tools/simtsr-serve)
#   EXAMPLE  kernel source   (default examples/listing1.sir)
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE="${SERVE:-build/tools/simtsr-serve}"
EXAMPLE="${EXAMPLE:-examples/listing1.sir}"

if [ ! -x "$SERVE" ]; then
  echo "error: $SERVE not built (cmake --build build --target simtsr-serve)" >&2
  exit 1
fi

# JSON-escape the kernel source into one string literal.
SOURCE=$(python3 - "$EXAMPLE" <<'EOF'
import json, sys
print(json.dumps(open(sys.argv[1]).read()))
EOF
)

OUT=$({
  echo "{\"id\":1,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
  echo "{\"id\":2,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
  echo "{\"id\":3,\"op\":\"simulate\",\"source\":$SOURCE,\"pipeline\":\"sr\",\"warps\":2}"
  echo '{"id":4,"op":"stats"}'
  echo '{"id":5,"op":"shutdown"}'
} | "$SERVE")

echo "$OUT"

fail() { echo "serve smoke FAILED: $1" >&2; exit 1; }

grep -q '"id":2,"ok":true,"op":"compile","cached":true' <<<"$OUT" ||
  fail "warm compile was not served from cache"
grep -q '"compile_cached":true' <<<"$OUT" ||
  fail "simulate did not reuse the cached compile"
grep -q '"status":"finished"' <<<"$OUT" ||
  fail "simulate did not finish"
grep -Eq '"compile_cache":\{"hits":[1-9]' <<<"$OUT" ||
  fail "stats reported zero compile-cache hits"
grep -q '"op":"shutdown","served":5' <<<"$OUT" ||
  fail "shutdown did not report 5 served requests"

echo "serve smoke passed"
