#!/usr/bin/env bash
# End-to-end smoke for the simtsr-serve daemon, in three phases:
#
#   1. stdin session  — compile, cached compile, simulate, stats,
#      shutdown over a pipe; asserts the caches hit.
#   2. disk tier      — socket daemon with --disk-cache; asserts disk
#      writes on the cold run, then restarts the daemon and asserts the
#      same work is answered from disk with identical digests.
#   3. shed + retry   — socket daemon with --queue-depth 1 under an
#      injected stall; a pipelined client must see "queue_full" with a
#      retry_after_ms hint at least once and recover via backoff.
#
# Every daemon and socket this script creates is torn down by a trap, so
# an assertion failure cannot leak a running daemon or a stale socket
# into the next CI step (that leak is exactly what the crash smoke
# exercises on purpose — here it would be a bug).
#
# Environment overrides:
#   SERVE    daemon binary   (default build/tools/simtsr-serve)
#   EXAMPLE  kernel source   (default examples/listing1.sir)
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE="${SERVE:-build/tools/simtsr-serve}"
EXAMPLE="${EXAMPLE:-examples/listing1.sir}"
WORK=$(mktemp -d /tmp/simtsr-smoke-XXXXXX)
SOCK="$WORK/serve.sock"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() { echo "serve smoke FAILED: $1" >&2; exit 1; }

[ -x "$SERVE" ] ||
  fail "$SERVE not built (cmake --build build --target simtsr-serve)"

# JSON-escape the kernel source into one string literal.
SOURCE=$(python3 - "$EXAMPLE" <<'EOF'
import json, sys
print(json.dumps(open(sys.argv[1]).read()))
EOF
)

#--- Phase 1: scripted stdin session --------------------------------------
OUT=$({
  echo "{\"id\":1,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
  echo "{\"id\":2,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
  echo "{\"id\":3,\"op\":\"simulate\",\"source\":$SOURCE,\"pipeline\":\"sr\",\"warps\":2}"
  echo '{"id":4,"op":"stats"}'
  echo '{"id":5,"op":"shutdown"}'
} | "$SERVE")

grep -q '"id":2,"ok":true,"op":"compile","cached":true' <<<"$OUT" ||
  fail "warm compile was not served from cache"
grep -q '"compile_cached":true' <<<"$OUT" ||
  fail "simulate did not reuse the cached compile"
grep -q '"status":"finished"' <<<"$OUT" ||
  fail "simulate did not finish"
grep -Eq '"compile_cache":\{"hits":[1-9]' <<<"$OUT" ||
  fail "stats reported zero compile-cache hits"
grep -q '"op":"shutdown","served":5' <<<"$OUT" ||
  fail "shutdown did not report 5 served requests"
echo "serve smoke: stdin session ok"

#--- Phase 2: disk tier across a daemon restart ---------------------------
# Stats runs as its own client call after the work completed: pipelined
# with the compiles it would be answered inline before they finish and
# show zero disk writes.
DISK="$WORK/disk"
work() {
  echo "{\"id\":1,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
  echo "{\"id\":2,\"op\":\"simulate\",\"source\":$SOURCE,\"pipeline\":\"sr\",\"warps\":2}"
}
session() {
  local ANSWERS STATS
  ANSWERS=$(work | python3 scripts/serve_client.py --socket "$SOCK")
  STATS=$(echo '{"id":3,"op":"stats"}' |
          python3 scripts/serve_client.py --socket "$SOCK")
  echo '{"id":4,"op":"shutdown"}' |
    python3 scripts/serve_client.py --socket "$SOCK" > /dev/null
  printf '%s\n%s\n' "$ANSWERS" "$STATS"
}

"$SERVE" --socket "$SOCK" --disk-cache "$DISK" &
DAEMON_PID=$!
COLD=$(session)
wait "$DAEMON_PID" || fail "cold disk-tier daemon exited nonzero"
DAEMON_PID=""

grep -Eq '"disk_cache":\{"hits":0,"misses":[0-9]+,"writes":[1-9]' <<<"$COLD" ||
  fail "cold run wrote nothing to the disk tier"
grep -q '"degraded":false' <<<"$COLD" ||
  fail "cold run ran degraded on a healthy disk"

"$SERVE" --socket "$SOCK" --disk-cache "$DISK" &
DAEMON_PID=$!
WARMD=$(session)
wait "$DAEMON_PID" || fail "warm disk-tier daemon exited nonzero"
DAEMON_PID=""

grep -q '"op":"compile","cached":true' <<<"$WARMD" ||
  fail "restarted daemon recompiled instead of reading the disk tier"
grep -Eq '"disk_cache":\{"hits":[1-9]' <<<"$WARMD" ||
  fail "restarted daemon reported zero disk-tier hits"
COLD_DIGESTS=$(grep -o '"\(post_digest\|checksum\|trace_digest\)":"[^"]*"' <<<"$COLD" | sort)
WARM_DIGESTS=$(grep -o '"\(post_digest\|checksum\|trace_digest\)":"[^"]*"' <<<"$WARMD" | sort)
[ "$COLD_DIGESTS" = "$WARM_DIGESTS" ] ||
  fail "digests changed across the daemon restart"
echo "serve smoke: disk tier ok"

#--- Phase 3: load shedding is survivable with backoff --------------------
# One in-flight slot plus a 200ms stall per request guarantees the
# pipelined burst below is shed at least once; the client's backoff must
# still land every request.
SIMTSR_FAULTS="stall:200" "$SERVE" --socket "$SOCK" --queue-depth 1 &
DAEMON_PID=$!
FLOOD_ERR="$WORK/flood.err"
FLOOD=$(for I in 1 2 3 4; do
          echo "{\"id\":$I,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
        done | python3 scripts/serve_client.py --socket "$SOCK" \
                 2>"$FLOOD_ERR") ||
  { cat "$FLOOD_ERR" >&2; fail "flood client gave up"; }
echo '{"id":9,"op":"shutdown"}' |
  python3 scripts/serve_client.py --socket "$SOCK" > /dev/null
wait "$DAEMON_PID" || fail "flood daemon exited nonzero"
DAEMON_PID=""

[ "$(grep -c '"ok":true' <<<"$FLOOD")" -eq 4 ] ||
  fail "not every flooded request was eventually answered"
grep -Eq 'retried=[1-9]' "$FLOOD_ERR" ||
  fail "queue-depth 1 under stall never shed (retry path untested)"
echo "serve smoke: shed/retry ok"

echo "serve smoke passed"
