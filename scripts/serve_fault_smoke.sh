#!/usr/bin/env bash
# Runs a whole simtsr-serve socket session under one injected fault class
# and asserts the contract every class shares: the daemon never crashes,
# never hangs, and never serves a corrupt response — each request ends in
# a clean answer or a degraded-mode fallback. Class-specific assertions
# (degraded flag, quarantine counters, digest identity) are keyed off the
# spec.
#
# Usage: serve_fault_smoke.sh "SIMTSR_FAULTS spec"
#   e.g. serve_fault_smoke.sh "seed=7,eintr:1,short_read:0.5"
#
# Environment overrides:
#   SERVE    daemon binary   (default build/tools/simtsr-serve)
#   EXAMPLE  kernel source   (default examples/listing1.sir)
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC="${1:?usage: serve_fault_smoke.sh SIMTSR_FAULTS-spec}"
SERVE="${SERVE:-build/tools/simtsr-serve}"
EXAMPLE="${EXAMPLE:-examples/listing1.sir}"
WORK=$(mktemp -d /tmp/simtsr-fault-XXXXXX)
SOCK="$WORK/serve.sock"
DISK="$WORK/disk"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() { echo "serve fault smoke [$SPEC] FAILED: $1" >&2; exit 1; }

[ -x "$SERVE" ] ||
  fail "$SERVE not built (cmake --build build --target simtsr-serve)"

SOURCE=$(python3 - "$EXAMPLE" <<'EOF'
import json, sys
print(json.dumps(open(sys.argv[1]).read()))
EOF
)

work() {
  echo "{\"id\":1,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
  echo "{\"id\":2,\"op\":\"simulate\",\"source\":$SOURCE,\"pipeline\":\"sr\",\"warps\":2}"
}

start_daemon() { # start_daemon <faults-spec>
  SIMTSR_FAULTS="$1" "$SERVE" --socket "$SOCK" --disk-cache "$DISK" &
  DAEMON_PID=$!
}

run_client() { # run_client <input-producer> ; tolerates client failure
  set +e
  "$@" | timeout 60 python3 scripts/serve_client.py --socket "$SOCK" \
    2>/dev/null
  local RC=$?
  set -e
  return $RC
}

# Reference digests from a fault-free run (separate disk dir so the
# faulted daemon still starts cold).
REF_DISK="$WORK/ref-disk"
SIMTSR_FAULTS="" "$SERVE" --socket "$SOCK" --disk-cache "$REF_DISK" &
DAEMON_PID=$!
REF=$(run_client work) || fail "fault-free reference session failed"
echo '{"id":9,"op":"shutdown"}' |
  python3 scripts/serve_client.py --socket "$SOCK" > /dev/null
wait "$DAEMON_PID" || fail "fault-free daemon exited nonzero"
DAEMON_PID=""
REF_DIGESTS=$(grep -o '"\(post_digest\|checksum\|trace_digest\)":"[^"]*"' \
              <<<"$REF" | sort)

# The faulted session. Under `drop` the client's connection may be reset
# mid-request — that is the injected failure, not a smoke failure — so
# each session gets a few attempts; what is never tolerated is a daemon
# crash.
start_daemon "$SPEC"
ANSWERS=""
for ATTEMPT in 1 2 3 4 5; do
  if ANSWERS=$(run_client work); then
    break
  fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died under faults"
  ANSWERS=""
done
kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died under faults"

case "$SPEC" in
*drop*)
  # Connection drops need not leave a complete session; the surviving
  # daemon and its graceful exit below are the assertion.
  ;;
*enospc* | *fsync_fail*)
  [ -n "$ANSWERS" ] || fail "no complete session under $SPEC"
  grep -c '"ok":true' <<<"$ANSWERS" | grep -q '^2$' ||
    fail "disk faults leaked into request results"
  STATS=$(echo '{"id":8,"op":"stats"}' | run_client cat) ||
    fail "stats under disk faults failed"
  grep -q '"degraded":true' <<<"$STATS" ||
    fail "disk write failures did not degrade to memory-only mode"
  ;;
*)
  [ -n "$ANSWERS" ] || fail "no complete session under $SPEC"
  grep -c '"ok":true' <<<"$ANSWERS" | grep -q '^2$' ||
    fail "benign fault class produced request failures"
  GOT=$(grep -o '"\(post_digest\|checksum\|trace_digest\)":"[^"]*"' \
        <<<"$ANSWERS" | sort)
  [ "$GOT" = "$REF_DIGESTS" ] ||
    fail "digests under $SPEC differ from the fault-free run"
  ;;
esac

# Graceful exit under the same faults: SIGTERM must drain and exit 0.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "SIGTERM under faults did not exit cleanly"
DAEMON_PID=""

case "$SPEC" in
*corrupt*)
  # Whatever the corrupt class managed to poison on disk must be detected
  # on reload: a clean daemon over the same directory must quarantine the
  # bad entries and still answer correctly.
  start_daemon ""
  CLEAN=$(run_client work) || fail "post-corruption session failed"
  STATS=$(echo '{"id":8,"op":"stats"}' | run_client cat) ||
    fail "post-corruption stats failed"
  echo '{"id":9,"op":"shutdown"}' |
    python3 scripts/serve_client.py --socket "$SOCK" > /dev/null
  wait "$DAEMON_PID" || fail "post-corruption daemon exited nonzero"
  DAEMON_PID=""
  grep -Eq '"quarantined":[1-9]' <<<"$STATS" ||
    fail "corrupted disk entries were not quarantined"
  GOT=$(grep -o '"\(post_digest\|checksum\|trace_digest\)":"[^"]*"' \
        <<<"$CLEAN" | sort)
  [ "$GOT" = "$REF_DIGESTS" ] ||
    fail "corrupted cache leaked into served results"
  ;;
esac

echo "serve fault smoke [$SPEC] passed"
