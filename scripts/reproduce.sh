#!/usr/bin/env bash
# Reproduces every result in EXPERIMENTS.md from a clean tree:
# build, run the full test suite, then every paper-figure harness.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $b ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "Done: test_output.txt and bench_output.txt written."
