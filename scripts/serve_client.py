#!/usr/bin/env python3
"""Pipelined JSON-lines client for the simtsr-serve socket front end.

Reads one request per line on stdin, pipelines them all onto the daemon's
Unix socket, and prints the final response for each request to stdout in
request-id order. Responses may arrive out of order; correlation is by id.

A "queue_full" shed response is not final: the request is resent after a
backoff that honours the server's retry_after_ms hint, doubling per
attempt with deterministic seeded jitter, capped at --backoff-cap-ms.
The retry count is reported on stderr so smokes can assert that load
shedding actually happened and was recovered from.

Exit codes: 0 all requests answered, 1 usage/connect errors, 2 a request
exhausted its retries or the connection died.
"""

import argparse
import json
import random
import socket
import sys
import time


def connect(path, attempts=100):
    for _ in range(attempts):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            s.connect(path)
            return s
        except OSError:
            s.close()
            time.sleep(0.05)
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--socket", required=True, help="daemon Unix socket path")
    ap.add_argument("--retries", type=int, default=8,
                    help="max resends per shed request (default 8)")
    ap.add_argument("--backoff-cap-ms", type=int, default=2000,
                    help="upper bound on one backoff sleep (default 2000)")
    ap.add_argument("--seed", type=int, default=0,
                    help="jitter seed (default 0: deterministic runs)")
    ap.add_argument("--timeout", type=float, default=30.0,
                    help="socket receive timeout in seconds (default 30)")
    args = ap.parse_args()

    requests = {}
    order = []
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        req = json.loads(line)
        rid = req["id"]
        requests[rid] = line
        order.append(rid)
    if not order:
        return 0

    sock = connect(args.socket)
    if sock is None:
        print(f"serve_client: cannot connect to {args.socket}", file=sys.stderr)
        return 1
    sock.settimeout(args.timeout)
    rng = random.Random(args.seed)
    rfile = sock.makefile("r", encoding="utf-8")

    def send_line(line):
        sock.sendall((line + "\n").encode("utf-8"))

    for rid in order:
        send_line(requests[rid])

    final = {}
    attempts = {rid: 0 for rid in order}
    retried = 0
    outstanding = set(order)
    while outstanding:
        try:
            line = rfile.readline()
        except socket.timeout:
            print("serve_client: receive timeout", file=sys.stderr)
            return 2
        if not line:
            print("serve_client: connection closed with "
                  f"{len(outstanding)} request(s) unanswered", file=sys.stderr)
            return 2
        resp = json.loads(line)
        rid = resp.get("id")
        if rid not in outstanding:
            continue
        if resp.get("error") == "queue_full":
            attempts[rid] += 1
            if attempts[rid] > args.retries:
                print(f"serve_client: id {rid} shed {attempts[rid]} times, "
                      "giving up", file=sys.stderr)
                return 2
            hint = int(resp.get("retry_after_ms", 10))
            delay = min(args.backoff_cap_ms, hint * (1 << (attempts[rid] - 1)))
            delay += rng.randint(0, max(1, delay // 4))
            retried += 1
            time.sleep(delay / 1000.0)
            send_line(requests[rid])
            continue
        final[rid] = line.rstrip("\n")
        outstanding.discard(rid)

    for rid in order:
        print(final[rid])
    print(f"serve_client: sent={len(order)} retried={retried}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
