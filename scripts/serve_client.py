#!/usr/bin/env python3
"""Pipelined JSON-lines client for the simtsr-serve socket front end.

Reads one request per line on stdin, pipelines them onto the daemon's
socket, and prints the final response for each request to stdout in
request-id order. Responses may arrive out of order; correlation is by id.

Sharded mode: with --shards A,B,... the client mirrors the C++ router's
consistent-hash ring (support/HashRing.cpp) and sends each request
directly to the shard that owns its content key — the same placement
simtsr-serve --route computes, so a client-routed fleet and a
router-fronted fleet populate identical caches. The mirror is pinned by
HashRingTest.VnodePointGoldenValues: ring points are
mix64(fnv1a("addr#index")) with 64 virtual nodes per shard, and lookup
walks clockwise from mix64(key). A shard that cannot be reached (at
connect time or mid-stream) fails its requests over to the ring
successor, like the router's failover path. Requests with no content key
(stats, cluster, shutdown) go to every shard in --shards order and the
first shard's response is printed.

A "queue_full" shed response is not final: the request is resent after a
backoff that honours the server's retry_after_ms hint, doubling per
attempt with deterministic seeded jitter, capped at --backoff-cap-ms.
The retry count is reported on stderr so smokes can assert that load
shedding actually happened and was recovered from.

Exit codes: 0 all requests answered, 1 usage/connect errors, 2 a request
exhausted its retries, its connection died, or every owning shard for
some key was unreachable.
"""

import argparse
import bisect
import json
import random
import socket
import sys
import time

FNV_BASIS = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a(data, seed=FNV_BASIS):
    """FNV-1a-64 over bytes; mirrors fnv1a in src/support/Hash.h."""
    h = seed
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def mix64(z):
    """SplitMix64 finalizer; mirrors mix64 in src/support/Hash.h."""
    z ^= z >> 30
    z = (z * 0xBF58476D1CE4E5B9) & MASK64
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & MASK64
    z ^= z >> 31
    return z


# Ordered stage lists per catalog config; mirrors makePipelineCatalog()
# in src/transform/PassStage.cpp (which PassStageTest pins against
# standardPipelineNames()). The bool marks UsesSoftThreshold.
PIPELINE_CATALOG = {
    "noop": (["strip-predicts", "deconflict", "verify"], False),
    "pdom": (["strip-predicts", "pdom-sync", "deconflict", "verify"], False),
    "sr": (["pdom-sync", "sr", "deconflict", "verify"], False),
    "sr+ip": (["pdom-sync", "sr", "interproc", "deconflict", "verify"],
              False),
    "soft": (["pdom-sync", "sr", "interproc", "deconflict", "verify"], True),
    "sr+ip+realloc": (["pdom-sync", "sr", "interproc", "deconflict",
                       "verify", "realloc"], False),
    "meld": (["strip-predicts", "meld", "pdom-sync", "deconflict", "verify"],
             False),
    "meld+sr": (["meld", "pdom-sync", "sr", "deconflict", "verify"], False),
    "meld+sr+ip": (["meld", "pdom-sync", "sr", "interproc", "deconflict",
                    "verify"], False),
}


def pipeline_axes(name, soft_threshold):
    """Mirror of pipelineCacheAxes over standardPipelineSpec.

    Source of truth: src/serve/Cache.cpp and src/transform/PassStage.cpp.
    The axes string is the ordered stage list plus every parameter a
    stage reads, at their PipelineParams defaults: SR.SoftThreshold=-1
    (the soft config substitutes the request's threshold),
    RegionExitBarrier=1, Deconflict=dynamic, Meld.MinPairs=1,
    Meld.MaxIterations=64.
    """
    if name == "none":
        return "none"
    if name not in PIPELINE_CATALOG:
        return "unknown:" + name
    stages, uses_soft = PIPELINE_CATALOG[name]
    soft = soft_threshold if uses_soft else -1
    return ("stages=" + ",".join(stages) +
            f";soft={soft};exitbar=1;deconflict=dynamic;meld=1/64")


def route_key(req):
    """Mirror of serve::routeKey: the content key the request hits in the
    owning shard's cache. Returns None for key-less (control) requests."""
    if "module" in req:
        return int(req["module"], 16)
    if "source" not in req:
        return None
    axes = pipeline_axes(req.get("pipeline", "pdom"),
                         req.get("soft_threshold", 8))
    h = fnv1a(req["source"].encode("utf-8"))
    h = fnv1a(b"\x1f", h)
    return fnv1a(axes.encode("utf-8"), h)


class Ring:
    """Consistent-hash ring, bit-identical to support/HashRing.cpp."""

    VNODES = 64

    def __init__(self, nodes):
        points = []
        for name in nodes:
            for i in range(self.VNODES):
                point = mix64(fnv1a(f"{name}#{i}".encode("utf-8")))
                # Tie-break matches the C++ sort: (hash, name, index).
                points.append((point, name, i))
        points.sort()
        self.hashes = [p[0] for p in points]
        self.owners = [p[1] for p in points]

    def owner_chain(self, key):
        """Yields distinct owners clockwise from the key's ring position:
        primary first, then each failover in the order the C++ router's
        lookupSuccessor would find them."""
        start = bisect.bisect_left(self.hashes, mix64(key))
        seen = set()
        for step in range(len(self.owners)):
            owner = self.owners[(start + step) % len(self.owners)]
            if owner not in seen:
                seen.add(owner)
                yield owner


def connect(addr, attempts=100, delay=0.05):
    """Connects to a Unix path (contains '/') or host:port address."""
    for _ in range(attempts):
        if "/" in addr:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target = addr
        else:
            host, _, port = addr.rpartition(":")
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = (host or "127.0.0.1", int(port))
        try:
            s.connect(target)
            return s
        except OSError:
            s.close()
            time.sleep(delay)
    return None


class SessionDied(Exception):
    """The connection failed with these request ids still unanswered."""

    def __init__(self, unanswered):
        super().__init__(f"{len(unanswered)} request(s) unanswered")
        self.unanswered = unanswered


def pump(addr, requests, order, args, rng, stats, attempts=100):
    """Pipelines `order` (ids into `requests`) onto one shard; returns
    {id: response line}. Shed responses are retried with backoff. Raises
    SessionDied on connect failure / timeout / EOF so the caller can fail
    the survivors over to the next shard on the ring."""
    sock = connect(addr, attempts)
    if sock is None:
        raise SessionDied(list(order))
    sock.settimeout(args.timeout)
    rfile = sock.makefile("r", encoding="utf-8")
    final = {}
    tries = {rid: 0 for rid in order}
    outstanding = set(order)
    try:
        for rid in order:
            sock.sendall((requests[rid] + "\n").encode("utf-8"))
        while outstanding:
            try:
                line = rfile.readline()
            except socket.timeout:
                raise SessionDied(sorted(outstanding))
            if not line:
                raise SessionDied(sorted(outstanding))
            resp = json.loads(line)
            rid = resp.get("id")
            if rid not in outstanding:
                continue
            if resp.get("error") == "queue_full":
                tries[rid] += 1
                if tries[rid] > args.retries:
                    print(f"serve_client: id {rid} shed {tries[rid]} times, "
                          "giving up", file=sys.stderr)
                    raise SessionDied(sorted(outstanding))
                hint = int(resp.get("retry_after_ms", 10))
                delay = min(args.backoff_cap_ms, hint * (1 << (tries[rid] - 1)))
                delay += rng.randint(0, max(1, delay // 4))
                stats["retried"] += 1
                time.sleep(delay / 1000.0)
                sock.sendall((requests[rid] + "\n").encode("utf-8"))
                continue
            final[rid] = line.rstrip("\n")
            outstanding.discard(rid)
    except OSError:
        raise SessionDied(sorted(outstanding))
    finally:
        rfile.close()
        sock.close()
    return final


def run_sharded(shards, requests, order, args, rng, stats):
    """Routes each request to its ring owner; fails over clockwise."""
    ring = Ring(shards)
    final = {}
    dead = set()
    keyless = [rid for rid in order
               if route_key(json.loads(requests[rid])) is None]
    work = [rid for rid in order if rid not in set(keyless)]
    # Worklist: route every pending id to its first live owner, pump each
    # shard's batch, and re-queue whatever a dying shard left unanswered.
    # Terminates because each failed pump adds one shard to `dead`.
    while work:
        plan = {}
        for rid in work:
            key = route_key(json.loads(requests[rid]))
            owner = next((o for o in ring.owner_chain(key) if o not in dead),
                         None)
            if owner is None:
                print(f"serve_client: id {rid}: every shard unreachable",
                      file=sys.stderr)
                return None
            plan.setdefault(owner, []).append(rid)
        work = []
        for addr, pending in plan.items():
            try:
                final.update(pump(addr, requests, pending, args, rng, stats,
                                  attempts=args.connect_attempts))
            except SessionDied as err:
                dead.add(addr)
                stats["failovers"] += len(err.unanswered)
                work.extend(err.unanswered)

    # Control-plane requests fan out to every live shard; the first
    # shard's answer is the one printed.
    for rid in keyless:
        answered = False
        for addr in shards:
            if addr in dead:
                continue
            try:
                got = pump(addr, requests, [rid], args, rng, stats,
                           attempts=args.connect_attempts)
            except SessionDied:
                dead.add(addr)
                continue
            if not answered:
                final.update(got)
                answered = True
        if not answered:
            print(f"serve_client: id {rid}: no shard answered",
                  file=sys.stderr)
            return None
    return final


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--socket", help="daemon Unix socket path or host:port")
    ap.add_argument("--shards", help="comma-separated shard addresses; "
                    "route each request by content key on the ring")
    ap.add_argument("--retries", type=int, default=8,
                    help="max resends per shed request (default 8)")
    ap.add_argument("--backoff-cap-ms", type=int, default=2000,
                    help="upper bound on one backoff sleep (default 2000)")
    ap.add_argument("--seed", type=int, default=0,
                    help="jitter seed (default 0: deterministic runs)")
    ap.add_argument("--timeout", type=float, default=30.0,
                    help="socket receive timeout in seconds (default 30)")
    ap.add_argument("--connect-attempts", type=int, default=100,
                    help="connect retries per shard before it is "
                    "declared dead (default 100)")
    args = ap.parse_args()
    if bool(args.socket) == bool(args.shards):
        print("serve_client: exactly one of --socket and --shards required",
              file=sys.stderr)
        return 1

    requests = {}
    order = []
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        req = json.loads(line)
        rid = req["id"]
        requests[rid] = line
        order.append(rid)
    if not order:
        return 0

    rng = random.Random(args.seed)
    stats = {"retried": 0, "failovers": 0}
    if args.shards:
        shards = [a for a in args.shards.split(",") if a]
        final = run_sharded(shards, requests, order, args, rng, stats)
        if final is None:
            return 2
    else:
        try:
            final = pump(args.socket, requests, order, args, rng, stats)
        except SessionDied as err:
            print("serve_client: connection to "
                  f"{args.socket} died with {len(err.unanswered)} "
                  "request(s) unanswered", file=sys.stderr)
            return 2

    for rid in order:
        print(final[rid])
    summary = f"serve_client: sent={len(order)} retried={stats['retried']}"
    if args.shards:
        summary += f" failovers={stats['failovers']}"
    print(summary, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
