#!/usr/bin/env bash
# Crash-restart oracle for the serve disk tier: warm a socket daemon with
# compile + simulate work, kill it with SIGKILL (no cleanup of any kind),
# start a fresh daemon over the same --disk-cache directory, and assert
# that (a) the replayed session is answered from the disk tier and (b)
# every digest-bearing field is byte-identical to the pre-crash answers.
#
# Environment overrides:
#   SERVE    daemon binary   (default build/tools/simtsr-serve)
#   EXAMPLE  kernel source   (default examples/listing1.sir)
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE="${SERVE:-build/tools/simtsr-serve}"
EXAMPLE="${EXAMPLE:-examples/listing1.sir}"
WORK=$(mktemp -d /tmp/simtsr-crash-XXXXXX)
SOCK="$WORK/serve.sock"
DISK="$WORK/disk"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() { echo "serve crash smoke FAILED: $1" >&2; exit 1; }

[ -x "$SERVE" ] ||
  fail "$SERVE not built (cmake --build build --target simtsr-serve)"

SOURCE=$(python3 - "$EXAMPLE" <<'EOF'
import json, sys
print(json.dumps(open(sys.argv[1]).read()))
EOF
)

session() {
  echo "{\"id\":1,\"op\":\"compile\",\"source\":$SOURCE,\"pipeline\":\"sr\"}"
  echo "{\"id\":2,\"op\":\"simulate\",\"source\":$SOURCE,\"pipeline\":\"sr\",\"warps\":2}"
}

start_daemon() {
  "$SERVE" --socket "$SOCK" --disk-cache "$DISK" &
  DAEMON_PID=$!
}

# Phase 1: cold daemon, populate memory + disk tiers.
start_daemon
COLD=$(session | python3 scripts/serve_client.py --socket "$SOCK")
grep -q '"status":"finished"' <<<"$COLD" || fail "cold simulate did not finish"

# Crash: SIGKILL leaves no chance for orderly shutdown; only entries the
# disk tier made durable (temp + fsync + rename) may survive.
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
[ -S "$SOCK" ] && rm -f "$SOCK" # SIGKILL cannot unlink the socket file.

# Phase 2: fresh daemon, same disk directory. The replay must be served
# from disk (cached:true on a cold process) and match byte for byte.
start_daemon
WARM=$(session | python3 scripts/serve_client.py --socket "$SOCK")
STATS=$(echo '{"id":9,"op":"stats"}' |
        python3 scripts/serve_client.py --socket "$SOCK")
echo '{"id":10,"op":"shutdown"}' |
  python3 scripts/serve_client.py --socket "$SOCK" > /dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

grep -q '"op":"compile","cached":true' <<<"$WARM" ||
  fail "post-crash compile was not served from the disk tier"
grep -Eq '"disk_cache":\{"hits":[1-9]' <<<"$STATS" ||
  fail "stats reported zero disk-tier hits after restart"
grep -q '"degraded":false' <<<"$STATS" ||
  fail "daemon restarted degraded from an intact disk tier"

# Digest oracle: every answer field that carries simulation or compile
# output must be identical across the crash.
digests() {
  python3 - <<'EOF' "$1"
import json, sys
for line in sys.argv[1].splitlines():
    r = json.loads(line)
    row = {k: r[k] for k in
           ("id", "module", "post_digest", "checksum", "trace_digest",
            "cycles", "issue_slots", "simt_efficiency") if k in r}
    print(json.dumps(row, sort_keys=True))
EOF
}
diff <(digests "$COLD") <(digests "$WARM") ||
  fail "digests differ across the crash-restart boundary"

echo "serve crash smoke passed"
