#!/usr/bin/env bash
# CI gate for the barrier-repair engine (simtsr-lint --fix), in four
# phases:
#
#   1. corpus repair — --fix over tests/lint/corpus with --fix-out;
#      every `; repair: repairable` file must come back repaired AND
#      oracle-certified (fair + hsa + obe + bounded:4 inside
#      certifyRepair), every `; repair: clean` file untouched, and the
#      one `; repair: unrepairable` file must be the only uncertified
#      unit — so the expected tool exit is exactly 3.
#   2. round-trip    — every emitted module re-parses and re-lints
#      clean, and a second --fix over the emitted directory is
#      byte-stable (fix is a fixpoint, not a treadmill).
#   3. clean suite   — --fix --workloads reports zero repairs: the
#      Table 2 suite is untouched by the repair engine.
#   4. per-model oracle — a fixed-seed torture sweep with the lint
#      oracle pinned to each weak progress model; any static/dynamic
#      disagreement fails the gate.
#
# Environment overrides:
#   LINT     lint binary     (default build/tools/simtsr-lint)
#   TORTURE  torture binary  (default build/tools/simtsr-torture)
#   SEEDS    per-model sweep size (default 50)
set -euo pipefail
cd "$(dirname "$0")/.."

LINT="${LINT:-build/tools/simtsr-lint}"
TORTURE="${TORTURE:-build/tools/simtsr-torture}"
SEEDS="${SEEDS:-50}"
WORK=$(mktemp -d /tmp/simtsr-lint-fix-XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "lint_fix_gate: FAIL: $*" >&2; exit 1; }

# --- Phase 1: corpus repair + certification -----------------------------
corpus=(tests/lint/corpus/*.sir)
set +e
"$LINT" --fix --fix-out "$WORK/fixed" "${corpus[@]}" | tee "$WORK/fix.txt"
status=${PIPESTATUS[0]}
set -e
[ "$status" -eq 3 ] ||
  fail "corpus --fix exited $status, expected 3 (one deliberate uncertified)"

# The labels in the corpus files are the ground truth the tool output
# must agree with, unit by unit.
for f in "${corpus[@]}"; do
  name=$(basename "$f")
  label=$(sed -n 's/^; repair: //p' "$f")
  block=$(awk -v u="== $name [fix]" \
    '$0==u{on=1;next} /^== /{on=0} on' "$WORK/fix.txt")
  case "$label" in
    clean)
      grep -q "status: clean" <<<"$block" || fail "$name: expected clean" ;;
    repairable)
      grep -q "status: repaired" <<<"$block" || fail "$name: not repaired"
      grep -q "certification: certified" <<<"$block" ||
        fail "$name: repair not certified" ;;
    unrepairable)
      grep -q "certification: FAILED" <<<"$block" ||
        fail "$name: expected certification failure" ;;
    *) fail "$name: missing '; repair:' label" ;;
  esac
done
uncertified=$(grep -c "certification: FAILED" "$WORK/fix.txt")
[ "$uncertified" -eq 1 ] ||
  fail "expected exactly 1 uncertified repair, saw $uncertified"

# --- Phase 2: emitted modules re-lint clean and fix is byte-stable ------
for f in "$WORK"/fixed/*.sir; do
  "$LINT" "$f" >/dev/null || fail "$(basename "$f"): repaired module not clean"
done
"$LINT" --fix --fix-out "$WORK/fixed2" "$WORK"/fixed/*.sir >/dev/null ||
  fail "second fix iteration reported repairs on already-fixed modules"
diff -r "$WORK/fixed" "$WORK/fixed2" >/dev/null ||
  fail "fix is not byte-stable across two iterations"

# --- Phase 3: the clean suite is untouched ------------------------------
"$LINT" --fix --workloads | tee "$WORK/workloads.txt"
grep -q " 0 repaired, 0 unrepairable, 0 uncertified" "$WORK/workloads.txt" ||
  fail "clean-suite workloads were touched by --fix"

# --- Phase 4: static-vs-dynamic oracle per progress model ---------------
for model in hsa obe bounded:4; do
  "$TORTURE" --seeds "$SEEDS" --lint-oracle --progress "$model" \
    --repro-dir "$WORK/repros-${model//:/_}" ||
    fail "lint oracle sweep disagreed under progress model $model"
done

echo "lint_fix_gate: OK (corpus certified, fixpoint byte-stable," \
     "clean suite untouched, $SEEDS seeds x 3 weak models)"
