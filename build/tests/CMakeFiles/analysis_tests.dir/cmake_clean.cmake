file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/BarrierAnalysisTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/BarrierAnalysisTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/CallGraphTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/CallGraphTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/DataflowPropertyTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/DataflowPropertyTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/DivergenceRecursionTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/DivergenceRecursionTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/DivergenceTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/DivergenceTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/DominatorsTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/DominatorsTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/EdgeCaseTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/EdgeCaseTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/LoopInfoTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/LoopInfoTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/RegionTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/RegionTest.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
