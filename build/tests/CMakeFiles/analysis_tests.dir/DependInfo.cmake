
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/BarrierAnalysisTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/BarrierAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/BarrierAnalysisTest.cpp.o.d"
  "/root/repo/tests/analysis/CallGraphTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/CallGraphTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/CallGraphTest.cpp.o.d"
  "/root/repo/tests/analysis/DataflowPropertyTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/DataflowPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/DataflowPropertyTest.cpp.o.d"
  "/root/repo/tests/analysis/DivergenceRecursionTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/DivergenceRecursionTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/DivergenceRecursionTest.cpp.o.d"
  "/root/repo/tests/analysis/DivergenceTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/DivergenceTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/DivergenceTest.cpp.o.d"
  "/root/repo/tests/analysis/DominatorsTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/DominatorsTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/DominatorsTest.cpp.o.d"
  "/root/repo/tests/analysis/EdgeCaseTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/EdgeCaseTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/EdgeCaseTest.cpp.o.d"
  "/root/repo/tests/analysis/LoopInfoTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/LoopInfoTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/LoopInfoTest.cpp.o.d"
  "/root/repo/tests/analysis/RegionTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/RegionTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/RegionTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/simtsr_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
