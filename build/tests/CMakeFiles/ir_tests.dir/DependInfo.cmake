
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/CFGUtilsTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/CFGUtilsTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/CFGUtilsTest.cpp.o.d"
  "/root/repo/tests/ir/IRBuilderTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/IRBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/IRBuilderTest.cpp.o.d"
  "/root/repo/tests/ir/ParserErrorTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/ParserErrorTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/ParserErrorTest.cpp.o.d"
  "/root/repo/tests/ir/PrinterParserTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/PrinterParserTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/PrinterParserTest.cpp.o.d"
  "/root/repo/tests/ir/VerifierTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/VerifierTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
