file(REMOVE_RECURSE
  "CMakeFiles/ir_tests.dir/ir/CFGUtilsTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/CFGUtilsTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/ir/IRBuilderTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/IRBuilderTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/ir/ParserErrorTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/ParserErrorTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/ir/PrinterParserTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/PrinterParserTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/ir/VerifierTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/VerifierTest.cpp.o.d"
  "ir_tests"
  "ir_tests.pdb"
  "ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
