
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/BarrierUnitTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/BarrierUnitTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/BarrierUnitTest.cpp.o.d"
  "/root/repo/tests/sim/CallStackTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/CallStackTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/CallStackTest.cpp.o.d"
  "/root/repo/tests/sim/GridTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/GridTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/GridTest.cpp.o.d"
  "/root/repo/tests/sim/OpcodeSemanticsTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/OpcodeSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/OpcodeSemanticsTest.cpp.o.d"
  "/root/repo/tests/sim/TimelineTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/TimelineTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/TimelineTest.cpp.o.d"
  "/root/repo/tests/sim/WarpSizeTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/WarpSizeTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/WarpSizeTest.cpp.o.d"
  "/root/repo/tests/sim/WarpTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/WarpTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/WarpTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/simtsr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/simtsr_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/simtsr_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
