file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/BarrierUnitTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/BarrierUnitTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/CallStackTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/CallStackTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/GridTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/GridTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/OpcodeSemanticsTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/OpcodeSemanticsTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/TimelineTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/TimelineTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/WarpSizeTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/WarpSizeTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/WarpTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/WarpTest.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
