
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform/AutoDetectTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/AutoDetectTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/AutoDetectTest.cpp.o.d"
  "/root/repo/tests/transform/BarrierReallocTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/BarrierReallocTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/BarrierReallocTest.cpp.o.d"
  "/root/repo/tests/transform/BarrierRegistryTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/BarrierRegistryTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/BarrierRegistryTest.cpp.o.d"
  "/root/repo/tests/transform/CoarsenTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/CoarsenTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/CoarsenTest.cpp.o.d"
  "/root/repo/tests/transform/CompositionTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/CompositionTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/CompositionTest.cpp.o.d"
  "/root/repo/tests/transform/DeconflictionTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/DeconflictionTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/DeconflictionTest.cpp.o.d"
  "/root/repo/tests/transform/IfConvertTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/IfConvertTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/IfConvertTest.cpp.o.d"
  "/root/repo/tests/transform/InlineTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/InlineTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/InlineTest.cpp.o.d"
  "/root/repo/tests/transform/InterprocTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/InterprocTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/InterprocTest.cpp.o.d"
  "/root/repo/tests/transform/LoopUnrollTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o.d"
  "/root/repo/tests/transform/PdomSyncTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/PdomSyncTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/PdomSyncTest.cpp.o.d"
  "/root/repo/tests/transform/PipelineTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/PipelineTest.cpp.o.d"
  "/root/repo/tests/transform/SRPassTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/SRPassTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/SRPassTest.cpp.o.d"
  "/root/repo/tests/transform/SimplifyCfgTest.cpp" "tests/CMakeFiles/transform_tests.dir/transform/SimplifyCfgTest.cpp.o" "gcc" "tests/CMakeFiles/transform_tests.dir/transform/SimplifyCfgTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/simtsr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/simtsr_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/simtsr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/simtsr_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
