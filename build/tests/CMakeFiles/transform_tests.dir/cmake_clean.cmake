file(REMOVE_RECURSE
  "CMakeFiles/transform_tests.dir/transform/AutoDetectTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/AutoDetectTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/BarrierReallocTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/BarrierReallocTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/BarrierRegistryTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/BarrierRegistryTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/CoarsenTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/CoarsenTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/CompositionTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/CompositionTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/DeconflictionTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/DeconflictionTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/IfConvertTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/IfConvertTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/InlineTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/InlineTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/InterprocTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/InterprocTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/LoopUnrollTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/PdomSyncTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/PdomSyncTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/PipelineTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/PipelineTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/SRPassTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/SRPassTest.cpp.o.d"
  "CMakeFiles/transform_tests.dir/transform/SimplifyCfgTest.cpp.o"
  "CMakeFiles/transform_tests.dir/transform/SimplifyCfgTest.cpp.o.d"
  "transform_tests"
  "transform_tests.pdb"
  "transform_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
