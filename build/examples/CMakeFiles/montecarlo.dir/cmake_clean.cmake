file(REMOVE_RECURSE
  "CMakeFiles/montecarlo.dir/montecarlo.cpp.o"
  "CMakeFiles/montecarlo.dir/montecarlo.cpp.o.d"
  "montecarlo"
  "montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
