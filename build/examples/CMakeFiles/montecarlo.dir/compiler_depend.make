# Empty compiler generated dependencies file for montecarlo.
# This may be replaced when dependencies are built.
