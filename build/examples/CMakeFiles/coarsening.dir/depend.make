# Empty dependencies file for coarsening.
# This may be replaced when dependencies are built.
