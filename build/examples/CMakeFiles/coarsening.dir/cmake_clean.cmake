file(REMOVE_RECURSE
  "CMakeFiles/coarsening.dir/coarsening.cpp.o"
  "CMakeFiles/coarsening.dir/coarsening.cpp.o.d"
  "coarsening"
  "coarsening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarsening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
