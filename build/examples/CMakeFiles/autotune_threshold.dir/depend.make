# Empty dependencies file for autotune_threshold.
# This may be replaced when dependencies are built.
