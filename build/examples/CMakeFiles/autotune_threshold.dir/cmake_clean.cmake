file(REMOVE_RECURSE
  "CMakeFiles/autotune_threshold.dir/autotune_threshold.cpp.o"
  "CMakeFiles/autotune_threshold.dir/autotune_threshold.cpp.o.d"
  "autotune_threshold"
  "autotune_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
