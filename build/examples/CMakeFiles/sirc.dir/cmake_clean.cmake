file(REMOVE_RECURSE
  "CMakeFiles/sirc.dir/sirc.cpp.o"
  "CMakeFiles/sirc.dir/sirc.cpp.o.d"
  "sirc"
  "sirc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
