# Empty compiler generated dependencies file for sirc.
# This may be replaced when dependencies are built.
