# Empty compiler generated dependencies file for profiler.
# This may be replaced when dependencies are built.
