file(REMOVE_RECURSE
  "CMakeFiles/raytracer.dir/raytracer.cpp.o"
  "CMakeFiles/raytracer.dir/raytracer.cpp.o.d"
  "raytracer"
  "raytracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raytracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
