file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deconflict.dir/bench_ablation_deconflict.cpp.o"
  "CMakeFiles/bench_ablation_deconflict.dir/bench_ablation_deconflict.cpp.o.d"
  "bench_ablation_deconflict"
  "bench_ablation_deconflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deconflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
