# Empty dependencies file for bench_ablation_deconflict.
# This may be replaced when dependencies are built.
