# Empty dependencies file for bench_fig10_auto.
# This may be replaced when dependencies are built.
