file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_auto.dir/bench_fig10_auto.cpp.o"
  "CMakeFiles/bench_fig10_auto.dir/bench_fig10_auto.cpp.o.d"
  "bench_fig10_auto"
  "bench_fig10_auto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_auto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
