
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_soft_barrier.cpp" "bench/CMakeFiles/bench_fig9_soft_barrier.dir/bench_fig9_soft_barrier.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_soft_barrier.dir/bench_fig9_soft_barrier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/simtsr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/simtsr_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/simtsr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/simtsr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
