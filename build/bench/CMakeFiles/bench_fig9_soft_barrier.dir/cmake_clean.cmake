file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_soft_barrier.dir/bench_fig9_soft_barrier.cpp.o"
  "CMakeFiles/bench_fig9_soft_barrier.dir/bench_fig9_soft_barrier.cpp.o.d"
  "bench_fig9_soft_barrier"
  "bench_fig9_soft_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_soft_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
