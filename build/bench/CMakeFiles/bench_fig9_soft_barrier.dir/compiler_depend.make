# Empty compiler generated dependencies file for bench_fig9_soft_barrier.
# This may be replaced when dependencies are built.
