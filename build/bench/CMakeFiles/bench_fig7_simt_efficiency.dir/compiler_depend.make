# Empty compiler generated dependencies file for bench_fig7_simt_efficiency.
# This may be replaced when dependencies are built.
