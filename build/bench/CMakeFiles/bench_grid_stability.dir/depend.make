# Empty dependencies file for bench_grid_stability.
# This may be replaced when dependencies are built.
