file(REMOVE_RECURSE
  "CMakeFiles/bench_grid_stability.dir/bench_grid_stability.cpp.o"
  "CMakeFiles/bench_grid_stability.dir/bench_grid_stability.cpp.o.d"
  "bench_grid_stability"
  "bench_grid_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
