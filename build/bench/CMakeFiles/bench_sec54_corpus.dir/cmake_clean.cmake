file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_corpus.dir/bench_sec54_corpus.cpp.o"
  "CMakeFiles/bench_sec54_corpus.dir/bench_sec54_corpus.cpp.o.d"
  "bench_sec54_corpus"
  "bench_sec54_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
