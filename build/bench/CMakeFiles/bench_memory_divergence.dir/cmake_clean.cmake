file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_divergence.dir/bench_memory_divergence.cpp.o"
  "CMakeFiles/bench_memory_divergence.dir/bench_memory_divergence.cpp.o.d"
  "bench_memory_divergence"
  "bench_memory_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
