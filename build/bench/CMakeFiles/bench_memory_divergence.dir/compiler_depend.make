# Empty compiler generated dependencies file for bench_memory_divergence.
# This may be replaced when dependencies are built.
