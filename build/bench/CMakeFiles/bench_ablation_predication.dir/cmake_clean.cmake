file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_predication.dir/bench_ablation_predication.cpp.o"
  "CMakeFiles/bench_ablation_predication.dir/bench_ablation_predication.cpp.o.d"
  "bench_ablation_predication"
  "bench_ablation_predication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_predication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
