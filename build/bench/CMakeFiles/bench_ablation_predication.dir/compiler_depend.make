# Empty compiler generated dependencies file for bench_ablation_predication.
# This may be replaced when dependencies are built.
