# Empty dependencies file for bench_sec6_interactions.
# This may be replaced when dependencies are built.
