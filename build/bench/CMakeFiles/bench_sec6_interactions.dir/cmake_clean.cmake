file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_interactions.dir/bench_sec6_interactions.cpp.o"
  "CMakeFiles/bench_sec6_interactions.dir/bench_sec6_interactions.cpp.o.d"
  "bench_sec6_interactions"
  "bench_sec6_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
