file(REMOVE_RECURSE
  "CMakeFiles/simtsr_sim.dir/BarrierUnit.cpp.o"
  "CMakeFiles/simtsr_sim.dir/BarrierUnit.cpp.o.d"
  "CMakeFiles/simtsr_sim.dir/Grid.cpp.o"
  "CMakeFiles/simtsr_sim.dir/Grid.cpp.o.d"
  "CMakeFiles/simtsr_sim.dir/LatencyModel.cpp.o"
  "CMakeFiles/simtsr_sim.dir/LatencyModel.cpp.o.d"
  "CMakeFiles/simtsr_sim.dir/Timeline.cpp.o"
  "CMakeFiles/simtsr_sim.dir/Timeline.cpp.o.d"
  "CMakeFiles/simtsr_sim.dir/Warp.cpp.o"
  "CMakeFiles/simtsr_sim.dir/Warp.cpp.o.d"
  "libsimtsr_sim.a"
  "libsimtsr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtsr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
