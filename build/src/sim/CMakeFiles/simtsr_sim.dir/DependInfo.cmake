
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/BarrierUnit.cpp" "src/sim/CMakeFiles/simtsr_sim.dir/BarrierUnit.cpp.o" "gcc" "src/sim/CMakeFiles/simtsr_sim.dir/BarrierUnit.cpp.o.d"
  "/root/repo/src/sim/Grid.cpp" "src/sim/CMakeFiles/simtsr_sim.dir/Grid.cpp.o" "gcc" "src/sim/CMakeFiles/simtsr_sim.dir/Grid.cpp.o.d"
  "/root/repo/src/sim/LatencyModel.cpp" "src/sim/CMakeFiles/simtsr_sim.dir/LatencyModel.cpp.o" "gcc" "src/sim/CMakeFiles/simtsr_sim.dir/LatencyModel.cpp.o.d"
  "/root/repo/src/sim/Timeline.cpp" "src/sim/CMakeFiles/simtsr_sim.dir/Timeline.cpp.o" "gcc" "src/sim/CMakeFiles/simtsr_sim.dir/Timeline.cpp.o.d"
  "/root/repo/src/sim/Warp.cpp" "src/sim/CMakeFiles/simtsr_sim.dir/Warp.cpp.o" "gcc" "src/sim/CMakeFiles/simtsr_sim.dir/Warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
