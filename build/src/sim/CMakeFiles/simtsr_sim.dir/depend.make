# Empty dependencies file for simtsr_sim.
# This may be replaced when dependencies are built.
