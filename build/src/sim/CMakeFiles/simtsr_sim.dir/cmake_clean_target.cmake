file(REMOVE_RECURSE
  "libsimtsr_sim.a"
)
