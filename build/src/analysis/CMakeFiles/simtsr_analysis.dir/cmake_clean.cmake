file(REMOVE_RECURSE
  "CMakeFiles/simtsr_analysis.dir/BarrierAnalysis.cpp.o"
  "CMakeFiles/simtsr_analysis.dir/BarrierAnalysis.cpp.o.d"
  "CMakeFiles/simtsr_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/simtsr_analysis.dir/CallGraph.cpp.o.d"
  "CMakeFiles/simtsr_analysis.dir/Dataflow.cpp.o"
  "CMakeFiles/simtsr_analysis.dir/Dataflow.cpp.o.d"
  "CMakeFiles/simtsr_analysis.dir/Divergence.cpp.o"
  "CMakeFiles/simtsr_analysis.dir/Divergence.cpp.o.d"
  "CMakeFiles/simtsr_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/simtsr_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/simtsr_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/simtsr_analysis.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/simtsr_analysis.dir/Region.cpp.o"
  "CMakeFiles/simtsr_analysis.dir/Region.cpp.o.d"
  "libsimtsr_analysis.a"
  "libsimtsr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtsr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
