file(REMOVE_RECURSE
  "libsimtsr_analysis.a"
)
