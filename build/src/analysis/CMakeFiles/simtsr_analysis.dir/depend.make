# Empty dependencies file for simtsr_analysis.
# This may be replaced when dependencies are built.
