
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/BarrierAnalysis.cpp" "src/analysis/CMakeFiles/simtsr_analysis.dir/BarrierAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/simtsr_analysis.dir/BarrierAnalysis.cpp.o.d"
  "/root/repo/src/analysis/CallGraph.cpp" "src/analysis/CMakeFiles/simtsr_analysis.dir/CallGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/simtsr_analysis.dir/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/Dataflow.cpp" "src/analysis/CMakeFiles/simtsr_analysis.dir/Dataflow.cpp.o" "gcc" "src/analysis/CMakeFiles/simtsr_analysis.dir/Dataflow.cpp.o.d"
  "/root/repo/src/analysis/Divergence.cpp" "src/analysis/CMakeFiles/simtsr_analysis.dir/Divergence.cpp.o" "gcc" "src/analysis/CMakeFiles/simtsr_analysis.dir/Divergence.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/simtsr_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/simtsr_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/simtsr_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/simtsr_analysis.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/Region.cpp" "src/analysis/CMakeFiles/simtsr_analysis.dir/Region.cpp.o" "gcc" "src/analysis/CMakeFiles/simtsr_analysis.dir/Region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
