file(REMOVE_RECURSE
  "libsimtsr_ir.a"
)
