file(REMOVE_RECURSE
  "CMakeFiles/simtsr_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/simtsr_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/CFGUtils.cpp.o"
  "CMakeFiles/simtsr_ir.dir/CFGUtils.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/Function.cpp.o"
  "CMakeFiles/simtsr_ir.dir/Function.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/simtsr_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/Module.cpp.o"
  "CMakeFiles/simtsr_ir.dir/Module.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/Opcode.cpp.o"
  "CMakeFiles/simtsr_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/Parser.cpp.o"
  "CMakeFiles/simtsr_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/Printer.cpp.o"
  "CMakeFiles/simtsr_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/Verifier.cpp.o"
  "CMakeFiles/simtsr_ir.dir/Verifier.cpp.o.d"
  "CMakeFiles/simtsr_ir.dir/VoltaListing.cpp.o"
  "CMakeFiles/simtsr_ir.dir/VoltaListing.cpp.o.d"
  "libsimtsr_ir.a"
  "libsimtsr_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtsr_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
