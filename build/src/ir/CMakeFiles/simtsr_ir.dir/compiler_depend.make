# Empty compiler generated dependencies file for simtsr_ir.
# This may be replaced when dependencies are built.
