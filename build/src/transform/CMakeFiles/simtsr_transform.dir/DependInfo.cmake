
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/AutoDetect.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/AutoDetect.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/AutoDetect.cpp.o.d"
  "/root/repo/src/transform/BarrierRealloc.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/BarrierRealloc.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/BarrierRealloc.cpp.o.d"
  "/root/repo/src/transform/BarrierRegistry.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/BarrierRegistry.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/BarrierRegistry.cpp.o.d"
  "/root/repo/src/transform/BarrierVerifier.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/BarrierVerifier.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/BarrierVerifier.cpp.o.d"
  "/root/repo/src/transform/Coarsen.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/Coarsen.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/Coarsen.cpp.o.d"
  "/root/repo/src/transform/Deconfliction.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/Deconfliction.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/Deconfliction.cpp.o.d"
  "/root/repo/src/transform/IfConvert.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/IfConvert.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/IfConvert.cpp.o.d"
  "/root/repo/src/transform/Inline.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/Inline.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/Inline.cpp.o.d"
  "/root/repo/src/transform/Interprocedural.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/Interprocedural.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/Interprocedural.cpp.o.d"
  "/root/repo/src/transform/LoopUnroll.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/LoopUnroll.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/LoopUnroll.cpp.o.d"
  "/root/repo/src/transform/PdomSync.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/PdomSync.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/PdomSync.cpp.o.d"
  "/root/repo/src/transform/Pipeline.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/Pipeline.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/Pipeline.cpp.o.d"
  "/root/repo/src/transform/SimplifyCfg.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/SimplifyCfg.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/SimplifyCfg.cpp.o.d"
  "/root/repo/src/transform/SpeculativeReconvergence.cpp" "src/transform/CMakeFiles/simtsr_transform.dir/SpeculativeReconvergence.cpp.o" "gcc" "src/transform/CMakeFiles/simtsr_transform.dir/SpeculativeReconvergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/simtsr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
