file(REMOVE_RECURSE
  "libsimtsr_transform.a"
)
