file(REMOVE_RECURSE
  "CMakeFiles/simtsr_transform.dir/AutoDetect.cpp.o"
  "CMakeFiles/simtsr_transform.dir/AutoDetect.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/BarrierRealloc.cpp.o"
  "CMakeFiles/simtsr_transform.dir/BarrierRealloc.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/BarrierRegistry.cpp.o"
  "CMakeFiles/simtsr_transform.dir/BarrierRegistry.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/BarrierVerifier.cpp.o"
  "CMakeFiles/simtsr_transform.dir/BarrierVerifier.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/Coarsen.cpp.o"
  "CMakeFiles/simtsr_transform.dir/Coarsen.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/Deconfliction.cpp.o"
  "CMakeFiles/simtsr_transform.dir/Deconfliction.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/IfConvert.cpp.o"
  "CMakeFiles/simtsr_transform.dir/IfConvert.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/Inline.cpp.o"
  "CMakeFiles/simtsr_transform.dir/Inline.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/Interprocedural.cpp.o"
  "CMakeFiles/simtsr_transform.dir/Interprocedural.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/LoopUnroll.cpp.o"
  "CMakeFiles/simtsr_transform.dir/LoopUnroll.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/PdomSync.cpp.o"
  "CMakeFiles/simtsr_transform.dir/PdomSync.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/Pipeline.cpp.o"
  "CMakeFiles/simtsr_transform.dir/Pipeline.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/SimplifyCfg.cpp.o"
  "CMakeFiles/simtsr_transform.dir/SimplifyCfg.cpp.o.d"
  "CMakeFiles/simtsr_transform.dir/SpeculativeReconvergence.cpp.o"
  "CMakeFiles/simtsr_transform.dir/SpeculativeReconvergence.cpp.o.d"
  "libsimtsr_transform.a"
  "libsimtsr_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtsr_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
