# Empty compiler generated dependencies file for simtsr_transform.
# This may be replaced when dependencies are built.
