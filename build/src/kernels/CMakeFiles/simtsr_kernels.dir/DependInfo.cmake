
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/Corpus.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/Corpus.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/Corpus.cpp.o.d"
  "/root/repo/src/kernels/GpuMCML.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/GpuMCML.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/GpuMCML.cpp.o.d"
  "/root/repo/src/kernels/MCB.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/MCB.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/MCB.cpp.o.d"
  "/root/repo/src/kernels/MCGPU.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/MCGPU.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/MCGPU.cpp.o.d"
  "/root/repo/src/kernels/MeiyaMD5.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/MeiyaMD5.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/MeiyaMD5.cpp.o.d"
  "/root/repo/src/kernels/Micro.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/Micro.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/Micro.cpp.o.d"
  "/root/repo/src/kernels/Mummer.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/Mummer.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/Mummer.cpp.o.d"
  "/root/repo/src/kernels/OptixTrace.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/OptixTrace.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/OptixTrace.cpp.o.d"
  "/root/repo/src/kernels/PathTracer.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/PathTracer.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/PathTracer.cpp.o.d"
  "/root/repo/src/kernels/RSBench.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/RSBench.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/RSBench.cpp.o.d"
  "/root/repo/src/kernels/Runner.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/Runner.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/Runner.cpp.o.d"
  "/root/repo/src/kernels/Workloads.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/Workloads.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/Workloads.cpp.o.d"
  "/root/repo/src/kernels/XSBench.cpp" "src/kernels/CMakeFiles/simtsr_kernels.dir/XSBench.cpp.o" "gcc" "src/kernels/CMakeFiles/simtsr_kernels.dir/XSBench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/simtsr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/simtsr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/simtsr_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/simtsr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simtsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
