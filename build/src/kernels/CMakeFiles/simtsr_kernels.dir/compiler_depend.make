# Empty compiler generated dependencies file for simtsr_kernels.
# This may be replaced when dependencies are built.
