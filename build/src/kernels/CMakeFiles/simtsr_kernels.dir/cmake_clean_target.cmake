file(REMOVE_RECURSE
  "libsimtsr_kernels.a"
)
