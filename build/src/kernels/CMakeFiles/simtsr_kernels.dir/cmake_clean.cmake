file(REMOVE_RECURSE
  "CMakeFiles/simtsr_kernels.dir/Corpus.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/Corpus.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/GpuMCML.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/GpuMCML.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/MCB.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/MCB.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/MCGPU.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/MCGPU.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/MeiyaMD5.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/MeiyaMD5.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/Micro.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/Micro.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/Mummer.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/Mummer.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/OptixTrace.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/OptixTrace.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/PathTracer.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/PathTracer.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/RSBench.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/RSBench.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/Runner.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/Runner.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/Workloads.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/Workloads.cpp.o.d"
  "CMakeFiles/simtsr_kernels.dir/XSBench.cpp.o"
  "CMakeFiles/simtsr_kernels.dir/XSBench.cpp.o.d"
  "libsimtsr_kernels.a"
  "libsimtsr_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtsr_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
