file(REMOVE_RECURSE
  "CMakeFiles/simtsr_support.dir/Rng.cpp.o"
  "CMakeFiles/simtsr_support.dir/Rng.cpp.o.d"
  "CMakeFiles/simtsr_support.dir/Stats.cpp.o"
  "CMakeFiles/simtsr_support.dir/Stats.cpp.o.d"
  "libsimtsr_support.a"
  "libsimtsr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtsr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
