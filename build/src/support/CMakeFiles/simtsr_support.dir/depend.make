# Empty dependencies file for simtsr_support.
# This may be replaced when dependencies are built.
