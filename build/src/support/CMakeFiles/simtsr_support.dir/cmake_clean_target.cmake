file(REMOVE_RECURSE
  "libsimtsr_support.a"
)
