//===- TestKernels.h - Executable kernels for transform tests --*- C++ -*-===//
///
/// \file
/// Runnable variants of the paper's motivating shapes, used to check that
/// every pass pipeline preserves semantics and changes convergence the way
/// the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TESTS_TESTKERNELS_H
#define SIMTSR_TESTS_TESTKERNELS_H

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <memory>

namespace simtsr {
namespace testkernels {

/// Executable Listing 1: a bounded outer loop with a divergent condition
/// guarding an expensive arm (Iteration Delay shape). Each thread
/// accumulates a checksum into mem[tid]; the hot arm also counts
/// executions in mem[64] (atomic).
///
///   for (i = 0; i < Trips; i++) {
///     prolog: v = randrange(0, 100)
///     if (v < HotPct) { hot: heavy ALU chain; atomicadd }
///     epilog: checksum update
///   }
inline std::unique_ptr<Module> iterationDelayKernel(int64_t Trips = 32,
                                                    int64_t HotPct = 15,
                                                    bool Annotate = true,
                                                    int HotMuls = 80) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);
  Function *F = M->createFunction("itdelay", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Epilog = F->createBlock("epilog");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  if (Annotate)
    B.predict(Hot);
  B.jmp(Header);

  B.setInsertBlock(Header);
  unsigned V = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned C = B.cmpLT(Operand::reg(V), Operand::imm(HotPct));
  B.br(Operand::reg(C), Hot, Epilog);

  B.setInsertBlock(Hot);
  // Expensive: a chain of multiplies (RSBench-like bodies run hundreds of
  // ALU ops per visit; HotMuls scales that weight).
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(V));
  for (int K = 0; K < HotMuls; ++K)
    X = B.mul(Operand::reg(X), Operand::imm(1103515245 + K));
  Hot->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  B.atomicAdd(Operand::imm(64), Operand::imm(1));
  B.jmp(Epilog);

  B.setInsertBlock(Epilog);
  unsigned Y = B.xorOp(Operand::reg(Acc), Operand::reg(V));
  Epilog->append(Instruction(Opcode::Mov, Acc, {Operand::reg(Y)}));
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  Epilog->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(Trips));
  B.br(Operand::reg(Done), Exit, Header);

  B.setInsertBlock(Exit);
  B.store(Operand::reg(T), Operand::reg(Acc));
  B.ret();

  F->recomputePreds();
  return M;
}

/// Executable Figure 2(b): outer task loop; inner loop with a divergent
/// trip count (randrange [MinTrip, MaxTrip)); expensive inner body; cheap
/// prolog/epilog (Loop Merge shape, RSBench-like).
inline std::unique_ptr<Module> loopMergeKernel(int64_t OuterTrips = 16,
                                               int64_t MinTrip = 1,
                                               int64_t MaxTrip = 32,
                                               bool Annotate = true,
                                               int BodyMuls = 20) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);
  Function *F = M->createFunction("loopmerge", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *OuterHeader = F->createBlock("outer_header");
  BasicBlock *InnerHeader = F->createBlock("inner_header");
  BasicBlock *InnerBody = F->createBlock("inner_body");
  BasicBlock *Epilog = F->createBlock("epilog");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  if (Annotate)
    B.predict(InnerBody);
  B.jmp(OuterHeader);

  B.setInsertBlock(OuterHeader);
  // Prolog: pick this task's inner trip count.
  unsigned N = B.randRange(Operand::imm(MinTrip), Operand::imm(MaxTrip));
  unsigned J = B.mov(Operand::imm(0));
  B.jmp(InnerHeader);

  B.setInsertBlock(InnerHeader);
  unsigned More = B.cmpLT(Operand::reg(J), Operand::reg(N));
  B.br(Operand::reg(More), InnerBody, Epilog);

  B.setInsertBlock(InnerBody);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(J));
  for (int K = 0; K < BodyMuls; ++K)
    X = B.mul(Operand::reg(X), Operand::imm(2654435761 + K));
  InnerBody->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  unsigned JNext = B.add(Operand::reg(J), Operand::imm(1));
  InnerBody->append(Instruction(Opcode::Mov, J, {Operand::reg(JNext)}));
  B.jmp(InnerHeader);

  B.setInsertBlock(Epilog);
  unsigned Y = B.xorOp(Operand::reg(Acc), Operand::reg(N));
  Epilog->append(Instruction(Opcode::Mov, Acc, {Operand::reg(Y)}));
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  Epilog->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(OuterTrips));
  B.br(Operand::reg(Done), Exit, OuterHeader);

  B.setInsertBlock(Exit);
  B.store(Operand::reg(T), Operand::reg(Acc));
  B.ret();

  F->recomputePreds();
  return M;
}

/// Executable Figure 2(c): a divergent branch whose two arms both call an
/// expensive helper. With `reconverge_entry` on the helper, the
/// interprocedural pass gathers all threads at its entry.
inline std::unique_ptr<Module> commonCallKernel(bool Annotate = true) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);

  Function *Foo = M->createFunction("foo", 1);
  Foo->setReconvergeAtEntry(Annotate);
  {
    IRBuilder B(Foo);
    B.startBlock("entry");
    unsigned X = B.add(Operand::reg(0), Operand::imm(17));
    for (int K = 0; K < 8; ++K)
      X = B.mul(Operand::reg(X), Operand::imm(31 + K));
    B.ret(Operand::reg(X));
  }

  Function *F = M->createFunction("commoncall", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned V = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned C = B.cmpLT(Operand::reg(V), Operand::imm(50));
  B.br(Operand::reg(C), Then, Else);

  B.setInsertBlock(Then);
  unsigned A1 = B.mul(Operand::reg(T), Operand::imm(3));
  unsigned R1 = B.call(Foo, {Operand::reg(A1)});
  B.store(Operand::reg(T), Operand::reg(R1));
  B.jmp(Join);

  B.setInsertBlock(Else);
  unsigned A2 = B.add(Operand::reg(T), Operand::imm(100));
  unsigned B2 = B.sub(Operand::reg(A2), Operand::imm(1));
  unsigned R2 = B.call(Foo, {Operand::reg(B2)});
  B.store(Operand::reg(T), Operand::reg(R2));
  B.jmp(Join);

  B.setInsertBlock(Join);
  B.ret();

  F->recomputePreds();
  return M;
}

} // namespace testkernels
} // namespace simtsr

#endif // SIMTSR_TESTS_TESTKERNELS_H
