//===- RobustnessTest.cpp - Hardened failure reporting --------------------===//
///
/// \file
/// Untrusted or fuzz-generated launches must surface every failure as a
/// structured RunResult — Malformed for pre-run validation, Trap for
/// runtime faults — never as an assert or undefined behaviour. These tests
/// pin the contract the torture harness depends on.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "sim/BarrierUnit.h"
#include "sim/Warp.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

std::unique_ptr<Module> parse(const char *Text) {
  ParseResult P = parseModule(Text);
  EXPECT_TRUE(P.Errors.empty()) << P.Errors.front();
  return std::move(P.M);
}

LaunchConfig unitConfig(std::vector<int64_t> Args = {}) {
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  C.KernelArgs = std::move(Args);
  return C;
}

RunResult runKernel(const char *Text, LaunchConfig C) {
  auto M = parse(Text);
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  return Sim.run();
}

} // namespace

TEST(RobustnessTest, WrongKernelArgArityIsMalformed) {
  const char *Sir = R"(
memory 64

func @kernel(2) {
entry:
  ret
}
)";
  // Kernel takes two parameters; the launch provides one.
  RunResult R = runKernel(Sir, unitConfig({7}));
  EXPECT_EQ(R.St, RunResult::Status::Malformed);
  EXPECT_FALSE(R.TrapMessage.empty());
}

TEST(RobustnessTest, SetMemoryOutOfBoundsIsMalformed) {
  const char *Sir = R"(
memory 64

func @kernel(0) {
entry:
  ret
}
)";
  auto M = parse(Sir);
  WarpSimulator Sim(*M, M->functionByName("kernel"), unitConfig());
  EXPECT_TRUE(Sim.setMemory(63, 1));
  EXPECT_FALSE(Sim.setMemory(64, 1));
  RunResult R = Sim.run();
  EXPECT_EQ(R.St, RunResult::Status::Malformed);
  EXPECT_NE(R.TrapMessage.find("out of bounds"), std::string::npos)
      << R.TrapMessage;
}

TEST(RobustnessTest, MixedSoftAndClassicWaitersTrap) {
  // Lane 0 blocks at a classic wait; the first soft arrival on the same
  // barrier is barrier-unit misuse and must trap, not assert.
  const char *Sir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = laneid
  joinbar b0
  %1 = cmplt %0, 1
  br %1, classic, soft
classic:
  waitbar b0
  jmp exit
soft:
  softwait b0, 32
  jmp exit
exit:
  ret
}
)";
  RunResult R = runKernel(Sir, unitConfig());
  EXPECT_EQ(R.St, RunResult::Status::Trap);
  EXPECT_NE(R.TrapMessage.find("b0"), std::string::npos) << R.TrapMessage;
}

TEST(RobustnessTest, UnboundedRecursionTrapsAtDepthLimit) {
  const char *Sir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = call @kernel
  ret
}
)";
  RunResult R = runKernel(Sir, unitConfig());
  EXPECT_EQ(R.St, RunResult::Status::Trap);
  EXPECT_NE(R.TrapMessage.find("call depth limit"), std::string::npos)
      << R.TrapMessage;
}

TEST(RobustnessTest, DivisionByZeroTraps) {
  const char *Sir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = mov 1
  %1 = mov 0
  %2 = div %0, %1
  ret
}
)";
  RunResult R = runKernel(Sir, unitConfig());
  EXPECT_EQ(R.St, RunResult::Status::Trap);
  EXPECT_NE(R.TrapMessage.find("division by zero"), std::string::npos)
      << R.TrapMessage;
}

TEST(RobustnessTest, RemainderByZeroTraps) {
  const char *Sir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = mov 7
  %1 = mov 0
  %2 = rem %0, %1
  ret
}
)";
  RunResult R = runKernel(Sir, unitConfig());
  EXPECT_EQ(R.St, RunResult::Status::Trap);
}

TEST(RobustnessTest, SignedOverflowDivisionWrapsInsteadOfFaulting) {
  // INT64_MIN / -1 overflows; the simulator defines it to wrap rather
  // than raise SIGFPE or trip UBSan.
  const char *Sir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = mov 1
  %1 = shl %0, 63
  %2 = mov 0
  %3 = sub %2, 1
  %4 = div %1, %3
  %5 = rem %1, %3
  store 0, %4
  ret
}
)";
  RunResult R = runKernel(Sir, unitConfig());
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
}

TEST(RobustnessTest, BarrierUnitReportsOutOfRangeIdOnce) {
  BarrierUnit BU;
  EXPECT_FALSE(BU.hasError());
  EXPECT_EQ(BU.join(99, 0x1), 0u);
  ASSERT_TRUE(BU.hasError());
  std::string First = BU.takeError();
  EXPECT_NE(First.find("out of range"), std::string::npos) << First;
  // takeError clears the diagnostic; a second call sees a clean unit.
  EXPECT_FALSE(BU.hasError());
  EXPECT_TRUE(BU.takeError().empty());
  // A rejected operation leaves every mask untouched.
  EXPECT_EQ(BU.participants(99), 0u);
  EXPECT_FALSE(BU.anyWaiters());
}

TEST(RobustnessTest, BarrierUnitRejectsWaitModeMixing) {
  BarrierUnit BU;
  BU.join(0, 0xF);
  EXPECT_EQ(BU.arriveWait(0, 0x1), 0u); // Blocks: participants not all in.
  EXPECT_FALSE(BU.hasError());
  EXPECT_EQ(BU.arriveSoftWait(0, 0x2, 2), 0u);
  ASSERT_TRUE(BU.hasError());
  std::string Msg = BU.takeError();
  EXPECT_NE(Msg.find("soft wait"), std::string::npos) << Msg;
  // The rejected soft arrival must not have been recorded as a waiter.
  EXPECT_EQ(BU.waiters(0), 0x1u);
}
