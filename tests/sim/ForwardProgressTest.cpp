//===- ForwardProgressTest.cpp - Forward-progress and watchdog paths ----------===//
///
/// \file
/// The simulator must never hang: a blocked warp either reports Deadlock
/// with an actionable description, is released by the forward-progress
/// yield (YieldOnDeadlock), or is cut off by the issue-slot and wall-clock
/// watchdogs. These are the paths the torture harness leans on, so they
/// get direct coverage here.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "sim/Warp.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// Lane 0 waits on b0 while lanes 1..31 wait on b1; each barrier's
/// participants include the other group, so neither can release — a
/// deterministic Figure 5(a) cross-deadlock under every policy.
const char *CrossDeadlockSir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = laneid
  joinbar b0
  joinbar b1
  %1 = cmplt %0, 1
  br %1, then, else
then:
  waitbar b0
  jmp exit
else:
  waitbar b1
  jmp exit
exit:
  ret
}
)";

const char *InfiniteLoopSir = R"(
memory 64

func @kernel(0) {
entry:
  jmp loop
loop:
  jmp loop
}
)";

std::unique_ptr<Module> parse(const char *Text) {
  ParseResult P = parseModule(Text);
  EXPECT_TRUE(P.Errors.empty()) << P.Errors.front();
  return std::move(P.M);
}

LaunchConfig unitConfig() {
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  return C;
}

} // namespace

TEST(ForwardProgressTest, CrossDeadlockIsReportedWithBarrierState) {
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::MaxConvergence, SchedulerPolicy::MinPC,
        SchedulerPolicy::RoundRobin}) {
    auto M = parse(CrossDeadlockSir);
    LaunchConfig C = unitConfig();
    C.Policy = Policy;
    WarpSimulator Sim(*M, M->functionByName("kernel"), C);
    RunResult R = Sim.run();
    EXPECT_EQ(R.St, RunResult::Status::Deadlock);
    // The description must name the blocked threads and the barrier state
    // so a repro is debuggable from the message alone.
    EXPECT_NE(R.TrapMessage.find("blocked"), std::string::npos)
        << R.TrapMessage;
    EXPECT_NE(R.TrapMessage.find("participants"), std::string::npos)
        << R.TrapMessage;
  }
}

TEST(ForwardProgressTest, YieldOnDeadlockReleasesTheWarp) {
  auto M = parse(CrossDeadlockSir);
  LaunchConfig C = unitConfig();
  C.YieldOnDeadlock = true;
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_GE(R.Stats.BarrierYields, 1u);
}

TEST(ForwardProgressTest, IssueLimitCutsOffLivelock) {
  auto M = parse(InfiniteLoopSir);
  LaunchConfig C = unitConfig();
  C.MaxIssueSlots = 1000;
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  RunResult R = Sim.run();
  EXPECT_EQ(R.St, RunResult::Status::IssueLimit);
  EXPECT_FALSE(R.TrapMessage.empty());
}

TEST(ForwardProgressTest, WallClockWatchdogCutsOffSlowRun) {
  auto M = parse(InfiniteLoopSir);
  LaunchConfig C = unitConfig();
  C.MaxWallMillis = 1; // An infinite loop exceeds any wall budget.
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  RunResult R = Sim.run();
  EXPECT_EQ(R.St, RunResult::Status::Timeout);
  EXPECT_FALSE(R.TrapMessage.empty());
}

TEST(ForwardProgressTest, StatusNamesAreStable) {
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Finished), "finished");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Deadlock), "deadlock");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Trap), "trap");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::IssueLimit),
               "issue-limit");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Timeout), "timeout");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Malformed), "malformed");
}
