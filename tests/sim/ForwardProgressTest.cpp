//===- ForwardProgressTest.cpp - Forward-progress and watchdog paths ----------===//
///
/// \file
/// The simulator must never hang: a blocked warp either reports Deadlock
/// with an actionable description, is released by the forward-progress
/// yield (YieldOnDeadlock), or is cut off by the issue-slot and wall-clock
/// watchdogs. These are the paths the torture harness leans on, so they
/// get direct coverage here.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "sim/Warp.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// Lane 0 waits on b0 while lanes 1..31 wait on b1; each barrier's
/// participants include the other group, so neither can release — a
/// deterministic Figure 5(a) cross-deadlock under every policy.
const char *CrossDeadlockSir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = laneid
  joinbar b0
  joinbar b1
  %1 = cmplt %0, 1
  br %1, then, else
then:
  waitbar b0
  jmp exit
else:
  waitbar b1
  jmp exit
exit:
  ret
}
)";

const char *InfiniteLoopSir = R"(
memory 64

func @kernel(0) {
entry:
  jmp loop
loop:
  jmp loop
}
)";

/// All lanes join b0; lane 0 takes the short path and waits first, the
/// rest detour through one extra instruction. Fair scheduling finishes
/// (the late lanes arrive and release the barrier); the weakest HSA-
/// conforming scheduler serves only the oldest lane's group, which is
/// blocked — a deterministic progress livelock.
const char *HsaLivelockSir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = laneid
  joinbar b0
  %1 = cmplt %0, 1
  br %1, fast, slow
fast:
  waitbar b0
  jmp exit
slow:
  %2 = add %0, 1
  waitbar b0
  jmp exit
exit:
  ret
}
)";

/// Lane 0 exits immediately; the other lanes spin a short counted loop.
/// MaxConvergence keeps picking the big loop group, so lane 0 starves
/// until the bounded model's fairness bound forces its group.
const char *StarvedLaneSir = R"(
memory 64

func @kernel(0) {
entry:
  %0 = laneid
  %1 = cmplt %0, 1
  br %1, lone, loop
lone:
  ret
loop:
  %2 = add %2, 1
  %3 = cmplt %2, 16
  br %3, loop, done
done:
  ret
}
)";

std::unique_ptr<Module> parse(const char *Text) {
  ParseResult P = parseModule(Text);
  EXPECT_TRUE(P.Errors.empty()) << P.Errors.front();
  return std::move(P.M);
}

LaunchConfig unitConfig() {
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  return C;
}

} // namespace

namespace simtsr {

/// Befriended by WarpSimulator: forces thread states the instruction set
/// cannot reach, to cover the defensive "yield released nothing" trap.
/// Real kernels cannot get there — any Waiting thread is either a
/// barrier-unit waiter (yield releases it) or a warpsync waiter (released
/// when the last live lane arrives, which the arrival itself triggers).
struct WarpSimulatorTestPeer {
  static void blockAllThreadsOutsideBarrierUnit(WarpSimulator &Sim) {
    for (unsigned Lane = 0; Lane < Sim.Config.WarpSize; ++Lane) {
      WarpSimulator::Thread &T = Sim.Threads[Lane];
      T.Status = WarpSimulator::ThreadStatus::Waiting;
      T.WaitingOn = WarpSimulator::WaitingOnWarpSync;
      Sim.DirtyLanes |= 1ull << Lane;
    }
  }
};

} // namespace simtsr

TEST(ForwardProgressTest, CrossDeadlockIsReportedWithBarrierState) {
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::MaxConvergence, SchedulerPolicy::MinPC,
        SchedulerPolicy::RoundRobin}) {
    auto M = parse(CrossDeadlockSir);
    LaunchConfig C = unitConfig();
    C.Policy = Policy;
    WarpSimulator Sim(*M, M->functionByName("kernel"), C);
    RunResult R = Sim.run();
    EXPECT_EQ(R.St, RunResult::Status::Deadlock);
    // The description must name the blocked threads and the barrier state
    // so a repro is debuggable from the message alone.
    EXPECT_NE(R.TrapMessage.find("blocked"), std::string::npos)
        << R.TrapMessage;
    EXPECT_NE(R.TrapMessage.find("participants"), std::string::npos)
        << R.TrapMessage;
  }
}

TEST(ForwardProgressTest, YieldOnDeadlockReleasesTheWarp) {
  auto M = parse(CrossDeadlockSir);
  LaunchConfig C = unitConfig();
  C.YieldOnDeadlock = true;
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  // Pinned, not >=: exactly one yield releases b1 (31 waiters, the
  // largest waiter set). Those lanes run to exit, which removes them from
  // b0's participant set and releases lane 0 through the normal barrier
  // path — a second yield would mean the exit path stopped shrinking
  // participant sets.
  EXPECT_EQ(R.Stats.BarrierYields, 1u);
}

TEST(ForwardProgressTest, YieldTrapWhenThreadsBlockOutsideBarrierUnit) {
  // No kernel can reach this state (see WarpSimulatorTestPeer); force it
  // to pin the defensive trap path and its message.
  auto M = parse(CrossDeadlockSir);
  LaunchConfig C = unitConfig();
  C.YieldOnDeadlock = true;
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  WarpSimulatorTestPeer::blockAllThreadsOutsideBarrierUnit(Sim);
  RunResult R = Sim.run();
  EXPECT_EQ(R.St, RunResult::Status::Deadlock);
  EXPECT_NE(
      R.TrapMessage.find("forward-progress yield released nothing (threads "
                         "blocked outside the barrier unit)"),
      std::string::npos)
      << R.TrapMessage;
  // The failed yield must not count as a forward-progress intervention.
  EXPECT_EQ(R.Stats.BarrierYields, 0u);
}

TEST(ForwardProgressTest, IssueLimitCutsOffLivelock) {
  auto M = parse(InfiniteLoopSir);
  LaunchConfig C = unitConfig();
  C.MaxIssueSlots = 1000;
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  RunResult R = Sim.run();
  EXPECT_EQ(R.St, RunResult::Status::IssueLimit);
  EXPECT_FALSE(R.TrapMessage.empty());
}

TEST(ForwardProgressTest, WallClockWatchdogCutsOffSlowRun) {
  auto M = parse(InfiniteLoopSir);
  LaunchConfig C = unitConfig();
  C.MaxWallMillis = 1; // An infinite loop exceeds any wall budget.
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  RunResult R = Sim.run();
  EXPECT_EQ(R.St, RunResult::Status::Timeout);
  EXPECT_FALSE(R.TrapMessage.empty());
}

TEST(ForwardProgressTest, StatusNamesAreStable) {
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Finished), "finished");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Deadlock), "deadlock");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Trap), "trap");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::IssueLimit),
               "issue-limit");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Timeout), "timeout");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::Malformed), "malformed");
  EXPECT_STREQ(getRunStatusName(RunResult::Status::ProgressLivelock),
               "progress-livelock");
}

namespace {

RunResult runUnder(const char *Sir, const char *Progress,
                   SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence) {
  auto M = parse(Sir);
  LaunchConfig C = unitConfig();
  C.Policy = Policy;
  EXPECT_TRUE(parseProgressSpec(Progress, C.Progress)) << Progress;
  WarpSimulator Sim(*M, M->functionByName("kernel"), C);
  return Sim.run();
}

} // namespace

TEST(ProgressModelTest, SpecParseAndFormatRoundTrip) {
  for (const char *Canonical :
       {"fair", "hsa", "obe", "obe:3", "bounded:4", "bounded:7"}) {
    ProgressSpec S;
    ASSERT_TRUE(parseProgressSpec(Canonical, S)) << Canonical;
    EXPECT_EQ(formatProgressSpec(S), Canonical);
  }
  // A bare "bounded" resolves to the default bound, spelled explicitly.
  ProgressSpec S;
  ASSERT_TRUE(parseProgressSpec("bounded", S));
  EXPECT_EQ(formatProgressSpec(S), "bounded:4");
  for (const char *BadSpec : {"", "unfair", "fair:2", "hsa:1", "obe:0",
                              "obe:", "bounded:x", "bounded:0"}) {
    ProgressSpec Unchanged;
    EXPECT_FALSE(parseProgressSpec(BadSpec, Unchanged)) << BadSpec;
  }
}

TEST(ProgressModelTest, FairMatchesDefaultConfig) {
  // The explicit fair spec is the default-constructed config: same type,
  // same behaviour, so every existing caller is unaffected by the axis.
  EXPECT_TRUE(ProgressSpec{}.isFair());
  RunResult Fair = runUnder(HsaLivelockSir, "fair");
  EXPECT_TRUE(Fair.ok()) << Fair.TrapMessage;
}

TEST(ProgressModelTest, HsaStarvesTheBlockedOldestLane) {
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::MaxConvergence, SchedulerPolicy::MinPC,
        SchedulerPolicy::RoundRobin}) {
    RunResult R = runUnder(HsaLivelockSir, "hsa", Policy);
    EXPECT_EQ(R.St, RunResult::Status::ProgressLivelock);
    EXPECT_NE(R.TrapMessage.find("progress model hsa"), std::string::npos)
        << R.TrapMessage;
    EXPECT_NE(R.TrapMessage.find("oldest live lane 0"), std::string::npos)
        << R.TrapMessage;
  }
}

TEST(ProgressModelTest, HsaFinishesWhenOldestLaneStaysServable) {
  RunResult R = runUnder(StarvedLaneSir, "hsa");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  // The model excluded other ready groups while serving the oldest lane.
  EXPECT_GE(R.Stats.ProgressRestrictedPicks, 1u);
}

TEST(ProgressModelTest, ObeVerdictDependsOnResidentSlots) {
  // The same cross-barrier kernel produces three different verdicts along
  // the occupancy axis — exactly why the model is part of the cache key.
  // obe:1 serializes lanes, so each joins and releases its barriers alone.
  RunResult Solo = runUnder(CrossDeadlockSir, "obe:1");
  EXPECT_TRUE(Solo.ok()) << Solo.TrapMessage;
  // obe:2 makes lanes 0 and 1 join both barriers and then block on
  // different ones; the non-resident lanes that could help never start.
  RunResult Pair = runUnder(CrossDeadlockSir, "obe:2");
  EXPECT_EQ(Pair.St, RunResult::Status::ProgressLivelock);
  EXPECT_NE(Pair.TrapMessage.find("progress model obe:2"), std::string::npos)
      << Pair.TrapMessage;
  // Fair scheduling sees the genuine cross-barrier deadlock.
  RunResult Fair = runUnder(CrossDeadlockSir, "fair");
  EXPECT_EQ(Fair.St, RunResult::Status::Deadlock);
}

TEST(ProgressModelTest, BoundedForcesTheStarvedLane) {
  RunResult R = runUnder(StarvedLaneSir, "bounded:4");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  // MaxConvergence alone would keep picking the 31-lane loop group; the
  // bound must have forced lane 0's group at least once.
  EXPECT_GE(R.Stats.ProgressForcedPicks, 1u);
  RunResult Fair = runUnder(StarvedLaneSir, "fair");
  EXPECT_TRUE(Fair.ok()) << Fair.TrapMessage;
  EXPECT_EQ(Fair.Stats.ProgressForcedPicks, 0u);
}
