//===- GridTest.cpp - Tests for multi-warp launches -----------------------------===//

#include "sim/Grid.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

std::unique_ptr<Module> randomAccumKernel() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(128);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned R = B.rand();
  unsigned V = B.andOp(Operand::reg(R), Operand::imm(0xffff));
  B.store(Operand::reg(T), Operand::reg(V));
  B.ret();
  return M;
}

} // namespace

TEST(GridTest, AggregatesAcrossWarps) {
  auto M = randomAccumKernel();
  Function *F = M->functionByName("k");
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  GridResult G = runGrid(*M, F, C, 8);
  ASSERT_TRUE(G.Ok);
  EXPECT_EQ(G.WarpsRun, 8u);
  EXPECT_EQ(G.PerWarpEfficiency.count(), 8u);
  // Straight-line kernel: every warp fully converged.
  EXPECT_DOUBLE_EQ(G.SimtEfficiency, 1.0);
  EXPECT_GT(G.TotalCycles, G.MaxCycles);
}

TEST(GridTest, WarpsDrawDistinctRandomStreams) {
  auto M = randomAccumKernel();
  Function *F = M->functionByName("k");
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  GridResult One = runGrid(*M, F, C, 1);
  GridResult Two = runGrid(*M, F, C, 2);
  ASSERT_TRUE(One.Ok && Two.Ok);
  // Adding a warp with a different stream changes the combined checksum.
  EXPECT_NE(One.CombinedChecksum, Two.CombinedChecksum);
}

TEST(GridTest, DeterministicAcrossRuns) {
  auto M = randomAccumKernel();
  Function *F = M->functionByName("k");
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  GridResult A = runGrid(*M, F, C, 4);
  GridResult B = runGrid(*M, F, C, 4);
  EXPECT_EQ(A.CombinedChecksum, B.CombinedChecksum);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
}

TEST(GridTest, PropagatesFailures) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(4);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.store(Operand::imm(99), Operand::imm(1)); // out of bounds
  B.ret();
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  GridResult G = runGrid(*M, F, C, 4);
  EXPECT_FALSE(G.Ok);
  EXPECT_EQ(G.FailStatus, RunResult::Status::Trap);
  EXPECT_EQ(G.WarpsRun, 1u); // Stops at the first failure.
}

TEST(GridTest, InitMemoryAppliedPerWarp) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(64);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned V = B.load(Operand::imm(40));
  unsigned W = B.add(Operand::reg(V), Operand::reg(T));
  B.store(Operand::reg(T), Operand::reg(W));
  B.ret();
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  unsigned Applications = 0;
  GridResult G = runGrid(*M, F, C, 3, [&](WarpSimulator &Sim) {
    Sim.setMemory(40, 7);
    ++Applications;
  });
  ASSERT_TRUE(G.Ok);
  EXPECT_EQ(Applications, 3u);
}
