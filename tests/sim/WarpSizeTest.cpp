//===- WarpSizeTest.cpp - Warp-size and configuration edge cases ----------------===//

#include "TestKernels.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

class WarpSizeSweep : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(WarpSizeSweep, LoopMergeRunsAtAnyWarpSize) {
  unsigned Size = GetParam();
  auto M = loopMergeKernel(6, 1, 12);
  runSyncPipeline(*M, PipelineOptions::speculative());
  LaunchConfig Config;
  Config.WarpSize = Size;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("loopmerge"), Config);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Stats.WarpSize, Size);
  EXPECT_LE(R.Stats.simtEfficiency(), 1.0);
  EXPECT_GT(R.Stats.simtEfficiency(), 0.0);
}

TEST_P(WarpSizeSweep, SoftBarrierThresholdAboveWarpSizeIsSafe) {
  unsigned Size = GetParam();
  auto M = loopMergeKernel(6, 1, 12);
  // Threshold 32 with a smaller warp: min(threshold, participants) caps
  // at the live thread count, so this must not deadlock.
  runSyncPipeline(*M, PipelineOptions::softBarrier(32));
  LaunchConfig Config;
  Config.WarpSize = Size;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("loopmerge"), Config);
  EXPECT_TRUE(Sim.run().ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, WarpSizeSweep,
                         ::testing::Values(1u, 2u, 7u, 16u, 32u, 64u));

TEST(WarpSizeTest, SingleThreadIsAlwaysFullyEfficient) {
  auto M = iterationDelayKernel(8, 50, true, 10);
  runSyncPipeline(*M, PipelineOptions::baseline());
  LaunchConfig Config;
  Config.WarpSize = 1;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("itdelay"), Config);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_DOUBLE_EQ(R.Stats.simtEfficiency(), 1.0);
}

TEST(WarpSizeTest, SixtyFourLaneMasksWork) {
  // Lane 63 must be representable in the lane masks.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  B.joinBarrier(0);
  B.waitBarrier(0);
  B.store(Operand::reg(T), Operand::reg(T));
  B.ret();
  LaunchConfig Config;
  Config.WarpSize = 64;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, Config);
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[63], 63);
}

TEST(WarpSizeTest, EfficiencyComparableAcrossLatencyModels) {
  // The latency model rescales cycles but the issue-level efficiency of a
  // memory-free kernel is identical.
  auto MakeAndRun = [](const LatencyModel &L) {
    auto M = iterationDelayKernel(8, 30, true, 10);
    runSyncPipeline(*M, PipelineOptions::baseline());
    LaunchConfig Config;
    Config.Latency = L;
    WarpSimulator Sim(*M, M->functionByName("itdelay"), Config);
    RunResult R = Sim.run();
    EXPECT_TRUE(R.ok());
    return R.Stats;
  };
  SimStats Unit = MakeAndRun(LatencyModel::unit());
  SimStats Compute = MakeAndRun(LatencyModel::computeBound());
  EXPECT_EQ(Unit.IssueSlots, Compute.IssueSlots);
  EXPECT_DOUBLE_EQ(Unit.issueEfficiency(), Compute.issueEfficiency());
  EXPECT_GT(Compute.Cycles, Unit.Cycles);
}

TEST(WarpSizeTest, ArrivedCountObservesWaiters) {
  // Lanes < 8 wait at b0 first; the others then read arrivedCount.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Waiters = F->createBlock("waiters");
  BasicBlock *Observers = F->createBlock("observers");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  B.joinBarrier(0);
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(8));
  B.br(Operand::reg(C), Waiters, Observers);
  B.setInsertBlock(Waiters);
  B.waitBarrier(0);
  B.ret();
  B.setInsertBlock(Observers);
  unsigned N = B.arrivedCount(0);
  unsigned Slot = B.add(Operand::reg(T), Operand::imm(100));
  B.store(Operand::reg(Slot), Operand::reg(N));
  B.cancelBarrier(0);
  B.ret();
  LaunchConfig Config;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, Config);
  ASSERT_TRUE(Sim.run().ok());
  // MaxConvergence runs the 24-lane observer group after the 8 waiters
  // blocked... scheduling decides the exact interleaving; at minimum the
  // observed count is between 0 and 8.
  for (size_t Lane = 8; Lane < 32; ++Lane) {
    int64_t Seen = Sim.memory()[100 + Lane];
    EXPECT_GE(Seen, 0);
    EXPECT_LE(Seen, 8);
  }
}

TEST(CoalescingTest, ContiguousAccessIsFullyCoalesced) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  B.store(Operand::reg(T), Operand::imm(1)); // addr = tid: one segment
  B.ret();
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Stats.MemIssues, 1u);
  EXPECT_EQ(R.Stats.MemTransactions, 1u);
  EXPECT_DOUBLE_EQ(R.Stats.coalescingEfficiency(), 1.0);
}

TEST(CoalescingTest, StridedAccessFragments) {
  Module M;
  M.setGlobalMemoryWords(1 << 12);
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned Addr = B.mul(Operand::reg(T), Operand::imm(32));
  B.store(Operand::reg(Addr), Operand::imm(1)); // one segment per lane
  B.ret();
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Stats.MemTransactions, 32u);
  EXPECT_NEAR(R.Stats.coalescingEfficiency(), 1.0 / 32.0, 1e-9);
}

TEST(CoalescingTest, NoMemoryTrafficIsPerfect) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.nop();
  B.ret();
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Stats.MemIssues, 0u);
  EXPECT_DOUBLE_EQ(R.Stats.coalescingEfficiency(), 1.0);
}

TEST(CoalescingTest, DivergentGroupsNeedMoreTransactionsPerElement) {
  // The same tid-indexed store issued by two half-warps costs two
  // transactions total but the minimum is also 1 per issue — coalescing
  // efficiency stays 1; what grows is transactions per element, the cost
  // Section 4.5 charges to newly divergent code.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.br(Operand::reg(C), Then, Else);
  B.setInsertBlock(Then);
  B.store(Operand::reg(T), Operand::imm(1));
  B.ret();
  B.setInsertBlock(Else);
  B.store(Operand::reg(T), Operand::imm(2));
  B.ret();
  LaunchConfig Config;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, Config);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Stats.MemIssues, 2u);
  EXPECT_EQ(R.Stats.MemTransactions, 2u);
}
