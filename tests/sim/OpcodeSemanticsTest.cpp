//===- OpcodeSemanticsTest.cpp - Golden tests for every ALU opcode --------------===//
///
/// One-thread golden tests: each value-producing opcode is executed on
/// known inputs and the result checked against the reference semantics.
/// Parameterized over (opcode, lhs, rhs, expected).
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "sim/Warp.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

struct AluCase {
  const char *Name;
  Opcode Op;
  int64_t Lhs;
  int64_t Rhs;
  int64_t Expected;
};

class AluGoldenTest : public ::testing::TestWithParam<AluCase> {};

int64_t evalBinary(Opcode Op, int64_t A, int64_t B) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder Builder(F);
  Builder.startBlock("entry");
  unsigned R = Builder.binary(Op, Operand::imm(A), Operand::imm(B));
  Builder.store(Operand::imm(0), Operand::reg(R));
  Builder.ret();
  LaunchConfig Config;
  Config.WarpSize = 1;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, Config);
  EXPECT_TRUE(Sim.run().ok());
  return Sim.memory()[0];
}

} // namespace

TEST_P(AluGoldenTest, MatchesReference) {
  const AluCase &C = GetParam();
  EXPECT_EQ(evalBinary(C.Op, C.Lhs, C.Rhs), C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Binary, AluGoldenTest,
    ::testing::Values(
        AluCase{"add", Opcode::Add, 40, 2, 42},
        AluCase{"add_negative", Opcode::Add, -40, 2, -38},
        AluCase{"sub", Opcode::Sub, 10, 25, -15},
        AluCase{"mul", Opcode::Mul, -6, 7, -42},
        AluCase{"mul_wrap", Opcode::Mul, int64_t(1) << 62, 4, 0},
        AluCase{"div", Opcode::Div, 42, 5, 8},
        AluCase{"div_negative", Opcode::Div, -42, 5, -8},
        AluCase{"rem", Opcode::Rem, 42, 5, 2},
        AluCase{"rem_negative", Opcode::Rem, -42, 5, -2},
        AluCase{"and", Opcode::And, 0b1100, 0b1010, 0b1000},
        AluCase{"or", Opcode::Or, 0b1100, 0b1010, 0b1110},
        AluCase{"xor", Opcode::Xor, 0b1100, 0b1010, 0b0110},
        AluCase{"shl", Opcode::Shl, 3, 4, 48},
        AluCase{"shl_mask64", Opcode::Shl, 1, 65, 2},
        AluCase{"shr_logical", Opcode::Shr, -1, 60, 15},
        AluCase{"min", Opcode::Min, -3, 9, -3},
        AluCase{"max", Opcode::Max, -3, 9, 9},
        AluCase{"cmpeq_true", Opcode::CmpEQ, 5, 5, 1},
        AluCase{"cmpeq_false", Opcode::CmpEQ, 5, 6, 0},
        AluCase{"cmpne", Opcode::CmpNE, 5, 6, 1},
        AluCase{"cmplt_signed", Opcode::CmpLT, -1, 0, 1},
        AluCase{"cmple", Opcode::CmpLE, 7, 7, 1},
        AluCase{"cmpgt", Opcode::CmpGT, 7, 7, 0},
        AluCase{"cmpge", Opcode::CmpGE, 8, 7, 1}),
    [](const ::testing::TestParamInfo<AluCase> &Info) {
      return std::string(Info.param.Name);
    });

TEST(AluUnaryTest, NotNegMovSelect) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned NotR = B.notOp(Operand::imm(0));
  B.store(Operand::imm(0), Operand::reg(NotR));
  unsigned NegR = B.neg(Operand::imm(42));
  B.store(Operand::imm(1), Operand::reg(NegR));
  unsigned MovR = B.mov(Operand::imm(-7));
  B.store(Operand::imm(2), Operand::reg(MovR));
  unsigned SelT = B.select(Operand::imm(1), Operand::imm(10), Operand::imm(20));
  B.store(Operand::imm(3), Operand::reg(SelT));
  unsigned SelF = B.select(Operand::imm(0), Operand::imm(10), Operand::imm(20));
  B.store(Operand::imm(4), Operand::reg(SelF));
  B.ret();
  LaunchConfig Config;
  Config.WarpSize = 1;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, Config);
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[0], -1);
  EXPECT_EQ(Sim.memory()[1], -42);
  EXPECT_EQ(Sim.memory()[2], -7);
  EXPECT_EQ(Sim.memory()[3], 10);
  EXPECT_EQ(Sim.memory()[4], 20);
}

TEST(AluUnaryTest, TidLaneIdWarpSize) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned L = B.laneId();
  unsigned W = B.warpSize();
  unsigned Sum = B.add(Operand::reg(T), Operand::reg(W));
  unsigned Slot = B.add(Operand::reg(L), Operand::imm(100));
  B.store(Operand::reg(Slot), Operand::reg(Sum));
  B.ret();
  LaunchConfig Config;
  Config.WarpSize = 8;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, Config);
  ASSERT_TRUE(Sim.run().ok());
  for (int64_t Lane = 0; Lane < 8; ++Lane)
    EXPECT_EQ(Sim.memory()[static_cast<size_t>(100 + Lane)], Lane + 8);
}

TEST(AluUnaryTest, RandIsNonNegative) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Bad = F->createBlock("bad");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned I = B.mov(Operand::imm(0));
  B.jmp(Loop);
  B.setInsertBlock(Loop);
  unsigned R = B.rand();
  unsigned Neg = B.cmpLT(Operand::reg(R), Operand::imm(0));
  B.br(Operand::reg(Neg), Bad, Exit /*placeholder*/);
  // Loop 64 draws.
  BasicBlock *Next = F->createBlock("next");
  Loop->terminator().operand(2).setBlock(Next);
  B.setInsertBlock(Next);
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  Next->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(64));
  B.br(Operand::reg(Done), Exit, Loop);
  B.setInsertBlock(Bad);
  B.store(Operand::imm(0), Operand::imm(1)); // flag a negative draw
  B.ret();
  B.setInsertBlock(Exit);
  B.ret();
  WarpSimulator Sim(M, F, LaunchConfig{});
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[0], 0);
}
