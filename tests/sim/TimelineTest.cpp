//===- TimelineTest.cpp - Tests for the ASCII timeline renderer -----------------===//

#include "sim/Timeline.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

std::unique_ptr<Module> tinyDivergentKernel() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(16);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(2));
  B.br(Operand::reg(C), Then, Join);
  B.setInsertBlock(Then);
  B.nop();
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.ret();
  F->recomputePreds();
  return M;
}

} // namespace

TEST(TimelineTest, RendersRowsWithLegend) {
  auto M = tinyDivergentKernel();
  LaunchConfig Config;
  Config.WarpSize = 4;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("k"), Config);
  Timeline T(4);
  T.attach(Sim);
  ASSERT_TRUE(Sim.run().ok());
  std::string Rendered = T.render(/*MergeSameBlockRuns=*/false);
  // The entry block runs all four lanes: a full 'AAAA' row exists.
  EXPECT_NE(Rendered.find("AAAA"), std::string::npos);
  // The then block runs lanes 0-1 only: 'BB..'.
  EXPECT_NE(Rendered.find("BB.."), std::string::npos);
  std::string Legend = T.legend();
  EXPECT_NE(Legend.find("A = k.entry"), std::string::npos);
  EXPECT_NE(Legend.find("B = k.then"), std::string::npos);
}

TEST(TimelineTest, MergingCompressesRuns) {
  auto M = tinyDivergentKernel();
  LaunchConfig Config;
  Config.WarpSize = 4;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("k"), Config);
  Timeline T(4);
  T.attach(Sim);
  ASSERT_TRUE(Sim.run().ok());
  std::string Merged = T.render(/*MergeSameBlockRuns=*/true);
  std::string Raw = T.render(/*MergeSameBlockRuns=*/false);
  EXPECT_LE(Merged.size(), Raw.size());
  // entry has 3 instructions for the full warp: merged row shows x3.
  EXPECT_NE(Merged.find("AAAA x3"), std::string::npos);
}

TEST(TimelineTest, MaxRowsTruncates) {
  auto M = tinyDivergentKernel();
  LaunchConfig Config;
  Config.WarpSize = 4;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("k"), Config);
  Timeline T(4);
  T.attach(Sim);
  ASSERT_TRUE(Sim.run().ok());
  std::string Rendered = T.render(/*MergeSameBlockRuns=*/false, /*MaxRows=*/1);
  EXPECT_NE(Rendered.find("more rows"), std::string::npos);
}
