//===- WarpTest.cpp - Tests for the SIMT warp interpreter ---------------------===//

#include "sim/Warp.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

LaunchConfig unitConfig(std::vector<int64_t> Args = {}) {
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  C.KernelArgs = std::move(Args);
  return C;
}

} // namespace

TEST(WarpTest, StraightLineKernelFullyConverged) {
  // Every thread stores tid*2 to mem[tid].
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned V = B.mul(Operand::reg(T), Operand::imm(2));
  B.store(Operand::reg(T), Operand::reg(V));
  B.ret();
  ASSERT_TRUE(isWellFormed(M));

  WarpSimulator Sim(M, F, unitConfig());
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_DOUBLE_EQ(R.Stats.simtEfficiency(), 1.0);
  for (int64_t Lane = 0; Lane < 32; ++Lane)
    EXPECT_EQ(Sim.memory()[static_cast<size_t>(Lane)], Lane * 2);
}

TEST(WarpTest, KernelArgsBroadcastToAllThreads) {
  Module M;
  Function *F = M.createFunction("k", 2);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned V = B.add(Operand::reg(0), Operand::reg(1));
  B.store(Operand::reg(T), Operand::reg(V));
  B.ret();
  WarpSimulator Sim(M, F, unitConfig({40, 2}));
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[0], 42);
  EXPECT_EQ(Sim.memory()[31], 42);
}

TEST(WarpTest, DivergentBranchSerializesBothArms) {
  // if (tid < 16) store 1 else store 2 — then reconverge at ret.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.br(Operand::reg(C), Then, Else);
  B.setInsertBlock(Then);
  B.store(Operand::reg(T), Operand::imm(1));
  B.jmp(Join);
  B.setInsertBlock(Else);
  B.store(Operand::reg(T), Operand::imm(2));
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.ret();
  WarpSimulator Sim(M, F, unitConfig());
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Sim.memory()[0], 1);
  EXPECT_EQ(Sim.memory()[16], 2);
  // The divergent arms issue at half occupancy, so overall efficiency must
  // drop strictly below 1 but stay above 0.5.
  EXPECT_LT(R.Stats.simtEfficiency(), 1.0);
  EXPECT_GT(R.Stats.simtEfficiency(), 0.5);
}

TEST(WarpTest, PdomBarrierReconvergesDivergedThreads) {
  // Diverge, then wait at the join block; after the wait all threads
  // should issue the tail together (efficiency of the tail = 1).
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(8));
  B.joinBarrier(0);
  B.br(Operand::reg(C), Then, Join);
  B.setInsertBlock(Then);
  unsigned Val = B.mul(Operand::reg(T), Operand::imm(3));
  B.store(Operand::reg(T), Operand::reg(Val));
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.waitBarrier(0);
  unsigned Sum = B.atomicAdd(Operand::imm(100), Operand::imm(1));
  (void)Sum;
  B.ret();

  LaunchConfig Config = unitConfig();
  Config.ProfileBlocks = true;
  WarpSimulator Sim(M, F, Config);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(Sim.memory()[100], 32);
  // After reconvergence the atomic issues once for the full warp.
  const BlockProfile &JoinProfile = R.Stats.Blocks[{"k", "join"}];
  // join block: wait issued twice (two diverged groups) then atomic + ret
  // once each at full width.
  EXPECT_EQ(JoinProfile.ActiveThreads % 32, 0u);
}

TEST(WarpTest, CallAndReturnValues) {
  Module M;
  Function *Callee = M.createFunction("triple", 1);
  {
    IRBuilder B(Callee);
    B.startBlock("entry");
    unsigned V = B.mul(Operand::reg(0), Operand::imm(3));
    B.ret(Operand::reg(V));
  }
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned V = B.call(Callee, {Operand::reg(T)});
  B.store(Operand::reg(T), Operand::reg(V));
  B.ret();
  WarpSimulator Sim(M, F, unitConfig());
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[5], 15);
  EXPECT_EQ(Sim.memory()[31], 93);
}

TEST(WarpTest, ThreadsConvergeInsideCommonFunctionAcrossCallSites) {
  // Figure 2(c): both arms call foo(); threads grouped by PC converge in
  // the body even though their call stacks differ.
  Module M;
  Function *Foo = M.createFunction("foo", 1);
  {
    IRBuilder B(Foo);
    B.startBlock("entry");
    unsigned V = B.mul(Operand::reg(0), Operand::imm(7));
    unsigned W = B.add(Operand::reg(V), Operand::imm(1));
    B.ret(Operand::reg(W));
  }
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  // Make arrival times differ: join a barrier pair around nothing.
  B.br(Operand::reg(C), Then, Else);
  B.setInsertBlock(Then);
  unsigned V1 = B.call(Foo, {Operand::reg(T)});
  B.store(Operand::reg(T), Operand::reg(V1));
  B.jmp(Join);
  B.setInsertBlock(Else);
  unsigned V2 = B.call(Foo, {Operand::reg(T)});
  B.store(Operand::reg(T), Operand::reg(V2));
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.ret();

  LaunchConfig Config = unitConfig();
  Config.ProfileBlocks = true;
  WarpSimulator Sim(M, F, Config);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Sim.memory()[3], 22);
  EXPECT_EQ(Sim.memory()[20], 141);
  // Both call sites reach foo's body; with the MaxConvergence scheduler the
  // two 16-thread groups... stay separate unless synchronized. Verify at
  // least that the body executed for all 32 threads.
  const BlockProfile &Body = R.Stats.Blocks[{"foo", "entry"}];
  EXPECT_EQ(Body.ActiveThreads, 3u * 32u);
}

TEST(WarpTest, LoopWithDivergentTripCount) {
  // Each thread loops tid+1 times accumulating into mem[tid].
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  B.jmp(Header);

  B.setInsertBlock(Header);
  unsigned C = B.cmpLE(Operand::reg(I), Operand::reg(T));
  B.br(Operand::reg(C), Body, Exit);

  B.setInsertBlock(Body);
  unsigned Old = B.load(Operand::reg(T));
  unsigned New = B.add(Operand::reg(Old), Operand::imm(1));
  B.store(Operand::reg(T), Operand::reg(New));
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  B.setInsertBlock(Body);
  Body->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  B.jmp(Header);

  B.setInsertBlock(Exit);
  B.ret();

  WarpSimulator Sim(M, F, unitConfig());
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  for (int64_t Lane = 0; Lane < 32; ++Lane)
    EXPECT_EQ(Sim.memory()[static_cast<size_t>(Lane)], Lane + 1);
  // Imbalanced trips: efficiency strictly below 1.
  EXPECT_LT(R.Stats.simtEfficiency(), 1.0);
}

TEST(WarpTest, DeadlockDetectedInStrictMode) {
  // Cross-blocking: every thread joins both barriers; lane 0 waits on b0
  // (whose other participants wait elsewhere) and lanes 1..31 wait on b1
  // (whose participant lane 0 never arrives). All threads block.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Waiter = F->createBlock("waiter");
  BasicBlock *Others = F->createBlock("others");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  B.joinBarrier(0);
  B.joinBarrier(1);
  unsigned C = B.cmpEQ(Operand::reg(T), Operand::imm(0));
  B.br(Operand::reg(C), Waiter, Others);
  B.setInsertBlock(Waiter);
  B.waitBarrier(0);
  B.ret();
  B.setInsertBlock(Others);
  B.waitBarrier(1);
  B.ret();

  RunResult R = WarpSimulator(M, F, unitConfig()).run();
  EXPECT_EQ(R.St, RunResult::Status::Deadlock);
}

TEST(WarpTest, YieldModeBreaksDeadlock) {
  // Lane 0 waits on barrier 0 forever (lane 1 joined but exits without
  // cancelling is impossible — exit cancels), so use two barriers where
  // each group waits on a barrier the other group never clears... then
  // yield force-releases and the program finishes.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *C2 = F->createBlock("c");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  B.joinBarrier(0);
  B.joinBarrier(1);
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.br(Operand::reg(C), A, C2);
  B.setInsertBlock(A);
  B.waitBarrier(0); // waits for the other 16, who never arrive at b0
  B.cancelBarrier(1);
  B.ret();
  B.setInsertBlock(C2);
  B.waitBarrier(1);
  B.cancelBarrier(0);
  B.ret();

  LaunchConfig Strict = unitConfig();
  EXPECT_EQ(WarpSimulator(M, F, Strict).run().St,
            RunResult::Status::Deadlock);

  LaunchConfig Yielding = unitConfig();
  Yielding.YieldOnDeadlock = true;
  RunResult R = WarpSimulator(M, F, Yielding).run();
  EXPECT_TRUE(R.ok());
  EXPECT_GT(R.Stats.BarrierYields, 0u);
}

TEST(WarpTest, SoftWaitGathersThreshold) {
  // All threads join b0 at entry, then arrive at a softwait with
  // threshold 32 via diverged paths: everyone gathers before the tail.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Slow = F->createBlock("slow");
  BasicBlock *Gather = F->createBlock("gather");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  B.joinBarrier(0);
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(4));
  B.br(Operand::reg(C), Slow, Gather);
  B.setInsertBlock(Slow);
  unsigned X = B.mul(Operand::reg(T), Operand::imm(11));
  B.store(Operand::imm(200), Operand::reg(X));
  B.jmp(Gather);
  B.setInsertBlock(Gather);
  B.softWait(0, Operand::imm(32));
  B.atomicAdd(Operand::imm(300), Operand::imm(1));
  B.cancelBarrier(0);
  B.ret();

  LaunchConfig Config = unitConfig();
  Config.ProfileBlocks = true;
  WarpSimulator Sim(M, F, Config);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(Sim.memory()[300], 32);
}

TEST(WarpTest, WarpSyncWaitsForAllLiveThreads) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Side = F->createBlock("side");
  BasicBlock *Sync = F->createBlock("sync");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(10));
  B.br(Operand::reg(C), Side, Sync);
  B.setInsertBlock(Side);
  B.atomicAdd(Operand::imm(0), Operand::imm(1));
  B.jmp(Sync);
  B.setInsertBlock(Sync);
  B.warpSync();
  // After the sync, the first 10 increments must be visible to everyone.
  unsigned V = B.load(Operand::imm(0));
  unsigned T2 = B.tid();
  unsigned Slot = B.add(Operand::reg(T2), Operand::imm(100));
  B.store(Operand::reg(Slot), Operand::reg(V));
  B.ret();

  WarpSimulator Sim(M, F, unitConfig());
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  for (size_t Lane = 0; Lane < 32; ++Lane)
    EXPECT_EQ(Sim.memory()[100 + Lane], 10);
}

TEST(WarpTest, DivisionByZeroTraps) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned V = B.div(Operand::imm(100), Operand::reg(T)); // lane 0 divides by 0
  (void)V;
  B.ret();
  RunResult R = WarpSimulator(M, F, unitConfig()).run();
  EXPECT_EQ(R.St, RunResult::Status::Trap);
  EXPECT_NE(R.TrapMessage.find("division by zero"), std::string::npos);
}

TEST(WarpTest, OutOfBoundsAccessTraps) {
  Module M;
  M.setGlobalMemoryWords(16);
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.store(Operand::imm(999), Operand::imm(1));
  B.ret();
  RunResult R = WarpSimulator(M, F, unitConfig()).run();
  EXPECT_EQ(R.St, RunResult::Status::Trap);
  EXPECT_NE(R.TrapMessage.find("out of bounds"), std::string::npos);
}

TEST(WarpTest, IssueLimitStopsRunawayKernels) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Loop = B.startBlock("loop");
  B.jmp(Loop);
  LaunchConfig Config = unitConfig();
  Config.MaxIssueSlots = 1000;
  RunResult R = WarpSimulator(M, F, Config).run();
  EXPECT_EQ(R.St, RunResult::Status::IssueLimit);
}

TEST(WarpTest, DeterministicAcrossRuns) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.jmp(Loop);
  B.setInsertBlock(Loop);
  unsigned R1 = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned T = B.tid();
  B.atomicAdd(Operand::reg(T), Operand::reg(R1));
  unsigned C = B.cmpLT(Operand::reg(R1), Operand::imm(90));
  B.br(Operand::reg(C), Loop, Exit);
  B.setInsertBlock(Exit);
  B.ret();

  LaunchConfig Config = unitConfig();
  Config.Seed = 777;
  WarpSimulator SimA(M, F, Config);
  WarpSimulator SimB(M, F, Config);
  RunResult RA = SimA.run();
  RunResult RB = SimB.run();
  ASSERT_TRUE(RA.ok());
  EXPECT_EQ(SimA.memoryChecksum(), SimB.memoryChecksum());
  EXPECT_EQ(RA.Stats.Cycles, RB.Stats.Cycles);
  EXPECT_EQ(RA.Stats.IssueSlots, RB.Stats.IssueSlots);
}

TEST(WarpTest, DifferentSeedsChangeRandomOutcomes) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned R1 = B.rand();
  B.store(Operand::reg(T), Operand::reg(R1));
  B.ret();
  LaunchConfig A = unitConfig();
  A.Seed = 1;
  LaunchConfig C = unitConfig();
  C.Seed = 2;
  WarpSimulator SimA(M, F, A), SimC(M, F, C);
  SimA.run();
  SimC.run();
  EXPECT_NE(SimA.memoryChecksum(), SimC.memoryChecksum());
}

TEST(WarpTest, SchedulerPoliciesPreserveSemantics) {
  // Divergent accumulation kernel: all three policies must produce the
  // same memory result (atomics make it order-insensitive).
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Latch = F->createBlock("latch");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned I = B.mov(Operand::imm(0));
  B.jmp(Loop);
  B.setInsertBlock(Loop);
  unsigned R1 = B.randRange(Operand::imm(0), Operand::imm(10));
  unsigned C = B.cmpLT(Operand::reg(R1), Operand::imm(3));
  B.br(Operand::reg(C), Hot, Latch);
  B.setInsertBlock(Hot);
  B.atomicAdd(Operand::imm(7), Operand::imm(1));
  B.jmp(Latch);
  B.setInsertBlock(Latch);
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  Latch->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  unsigned Done = B.cmpGE(Operand::reg(INext), Operand::imm(20));
  B.br(Operand::reg(Done), Exit, Loop);
  B.setInsertBlock(Exit);
  B.ret();

  uint64_t Checksums[3];
  int Idx = 0;
  for (SchedulerPolicy P :
       {SchedulerPolicy::MaxConvergence, SchedulerPolicy::MinPC,
        SchedulerPolicy::RoundRobin}) {
    LaunchConfig Config = unitConfig();
    Config.Policy = P;
    Config.Seed = 5;
    WarpSimulator Sim(M, F, Config);
    ASSERT_TRUE(Sim.run().ok());
    Checksums[Idx++] = Sim.memoryChecksum();
  }
  EXPECT_EQ(Checksums[0], Checksums[1]);
  EXPECT_EQ(Checksums[1], Checksums[2]);
}

TEST(WarpTest, TracerObservesIssues) {
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.nop();
  B.ret();
  WarpSimulator Sim(M, F, unitConfig());
  unsigned Count = 0;
  Sim.setTracer([&](const Function &Fn, const BasicBlock &BB, size_t,
                    LaneMask Lanes) {
    EXPECT_EQ(Fn.name(), "k");
    EXPECT_EQ(BB.name(), "entry");
    EXPECT_EQ(Lanes, 0xffffffffull);
    ++Count;
  });
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Count, 2u); // nop + ret
}
