//===- GridParallelTest.cpp - Parallel vs sequential grid determinism -------===//
//
// The parallel grid engine promises bit-identical GridResults to the
// sequential loop — same seeds, same ordered reduction, same stop at the
// first failing warp. These tests compare every field of the result across
// modes, policies and seeds, including failure cases where the failing
// warp's index depends on the seed.
//
//===----------------------------------------------------------------------===//

#include "sim/Grid.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// Divergent kernel: each thread loops a rand-dependent number of times,
/// accumulating into its own memory slots (counter at [tid], accumulator
/// at [tid+32]) — warps produce distinct stats and checksums, and threads
/// within a warp genuinely diverge on the loop condition.
std::unique_ptr<Module> divergentKernel() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(128);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned AccAddr = B.add(Operand::reg(T), Operand::imm(32));
  unsigned Trips = B.randRange(Operand::imm(1), Operand::imm(9));
  B.store(Operand::reg(T), Operand::imm(0));
  B.jmp(Loop);

  B.setInsertBlock(Loop);
  unsigned I = B.load(Operand::reg(T));
  unsigned More = B.cmpLT(Operand::reg(I), Operand::reg(Trips));
  B.br(Operand::reg(More), Body, Exit);

  B.setInsertBlock(Body);
  unsigned R = B.randRange(Operand::imm(0), Operand::imm(1000));
  unsigned Acc = B.load(Operand::reg(AccAddr));
  unsigned Next = B.add(Operand::reg(Acc), Operand::reg(R));
  B.store(Operand::reg(AccAddr), Operand::reg(Next));
  unsigned I2 = B.load(Operand::reg(T));
  unsigned Inc = B.add(Operand::reg(I2), Operand::imm(1));
  B.store(Operand::reg(T), Operand::reg(Inc));
  B.jmp(Loop);

  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();
  return M;
}

/// Kernel that traps (out-of-bounds store) iff a per-thread random draw
/// hits zero — which warp fails first, if any, depends on the grid seed.
std::unique_ptr<Module> seedDependentFailureKernel(int64_t FailOneIn) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(64);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Bad = F->createBlock("bad");
  BasicBlock *Good = F->createBlock("good");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned R = B.randRange(Operand::imm(0), Operand::imm(FailOneIn - 1));
  unsigned Zero = B.cmpEQ(Operand::reg(R), Operand::imm(0));
  B.br(Operand::reg(Zero), Bad, Good);

  B.setInsertBlock(Bad);
  B.store(Operand::imm(1000), Operand::imm(1)); // out of bounds
  B.ret();

  B.setInsertBlock(Good);
  B.store(Operand::reg(T), Operand::reg(R));
  B.ret();
  F->recomputePreds();
  return M;
}

/// Asserts every observable field of two GridResults is identical —
/// including the Welford accumulator, whose value depends on the order
/// warps were folded in.
void expectIdentical(const GridResult &A, const GridResult &B) {
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.FailStatus, B.FailStatus);
  EXPECT_EQ(A.FailMessage, B.FailMessage);
  EXPECT_EQ(A.WarpsRun, B.WarpsRun);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.MaxCycles, B.MaxCycles);
  EXPECT_EQ(A.TotalIssueSlots, B.TotalIssueSlots);
  EXPECT_EQ(A.SimtEfficiency, B.SimtEfficiency);
  EXPECT_EQ(A.CombinedChecksum, B.CombinedChecksum);
  EXPECT_EQ(A.TraceDigest, B.TraceDigest);
  EXPECT_EQ(A.PerWarpEfficiency.count(), B.PerWarpEfficiency.count());
  if (A.PerWarpEfficiency.count() > 0) {
    EXPECT_EQ(A.PerWarpEfficiency.mean(), B.PerWarpEfficiency.mean());
    EXPECT_EQ(A.PerWarpEfficiency.stddev(), B.PerWarpEfficiency.stddev());
    EXPECT_EQ(A.PerWarpEfficiency.min(), B.PerWarpEfficiency.min());
    EXPECT_EQ(A.PerWarpEfficiency.max(), B.PerWarpEfficiency.max());
  }
}

} // namespace

TEST(GridParallelTest, BitIdenticalAcrossPoliciesAndSeeds) {
  auto M = divergentKernel();
  Function *F = M->functionByName("k");
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::MaxConvergence, SchedulerPolicy::MinPC,
        SchedulerPolicy::RoundRobin}) {
    for (uint64_t Seed : {1ull, 7ull, 1234567ull}) {
      LaunchConfig C;
      C.Latency = LatencyModel::unit();
      C.Policy = Policy;
      C.Seed = Seed;
      GridResult Par = runGrid(*M, F, C, 16, nullptr, GridMode::Parallel);
      GridResult Seq = runGrid(*M, F, C, 16, nullptr, GridMode::Sequential);
      expectIdentical(Par, Seq);
      EXPECT_TRUE(Par.Ok);
      EXPECT_EQ(Par.WarpsRun, 16u);
    }
  }
}

TEST(GridParallelTest, BitIdenticalWithSeedDependentFailures) {
  // One-in-1000 per thread ~ 3% per 32-thread warp: over these fixed
  // seeds the grids cover clean sweeps, early failures and mid-grid
  // failures (asserted below).
  auto M = seedDependentFailureKernel(1000);
  Function *F = M->functionByName("k");
  bool SawMidGridFailure = false;
  bool SawCleanGrid = false;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    LaunchConfig C;
    C.Latency = LatencyModel::unit();
    C.Seed = Seed;
    GridResult Par = runGrid(*M, F, C, 8, nullptr, GridMode::Parallel);
    GridResult Seq = runGrid(*M, F, C, 8, nullptr, GridMode::Sequential);
    expectIdentical(Par, Seq);
    if (!Seq.Ok && Seq.WarpsRun > 1 && Seq.WarpsRun < 8)
      SawMidGridFailure = true;
    if (Seq.Ok)
      SawCleanGrid = true;
  }
  // The seed range must actually cover both regimes, or the comparison
  // above proved less than it claims.
  EXPECT_TRUE(SawMidGridFailure);
  EXPECT_TRUE(SawCleanGrid);
}

TEST(GridParallelTest, FailingWarpReportsSameMessageInBothModes) {
  auto M = seedDependentFailureKernel(2); // Fails almost immediately.
  Function *F = M->functionByName("k");
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  GridResult Par = runGrid(*M, F, C, 8, nullptr, GridMode::Parallel);
  GridResult Seq = runGrid(*M, F, C, 8, nullptr, GridMode::Sequential);
  ASSERT_FALSE(Seq.Ok);
  EXPECT_EQ(Seq.FailStatus, RunResult::Status::Trap);
  EXPECT_FALSE(Seq.FailMessage.empty());
  expectIdentical(Par, Seq);
}

TEST(GridParallelTest, ParallelModeIsRunToRunDeterministic) {
  auto M = divergentKernel();
  Function *F = M->functionByName("k");
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  C.Seed = 42;
  GridResult First = runGrid(*M, F, C, 32, nullptr, GridMode::Parallel);
  for (int Rep = 0; Rep < 3; ++Rep) {
    GridResult Again = runGrid(*M, F, C, 32, nullptr, GridMode::Parallel);
    expectIdentical(First, Again);
  }
}

TEST(GridParallelTest, TraceDigestIdenticalAcrossModes) {
  // The launch digest folds per-warp schedule digests in warp-index order,
  // so it must not depend on which pool thread ran which warp.
  auto M = divergentKernel();
  Function *F = M->functionByName("k");
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::MaxConvergence, SchedulerPolicy::MinPC,
        SchedulerPolicy::RoundRobin}) {
    LaunchConfig C;
    C.Latency = LatencyModel::unit();
    C.Policy = Policy;
    C.Seed = 99;
    C.CollectTraceDigest = true;
    GridResult Par = runGrid(*M, F, C, 16, nullptr, GridMode::Parallel);
    GridResult Seq = runGrid(*M, F, C, 16, nullptr, GridMode::Sequential);
    ASSERT_TRUE(Par.Ok);
    EXPECT_NE(Par.TraceDigest, 0u);
    expectIdentical(Par, Seq);
  }
}

TEST(GridParallelTest, TraceDigestIsRunToRunDeterministic) {
  auto M = divergentKernel();
  Function *F = M->functionByName("k");
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  C.Seed = 7;
  C.CollectTraceDigest = true;
  GridResult First = runGrid(*M, F, C, 24, nullptr, GridMode::Parallel);
  ASSERT_TRUE(First.Ok);
  ASSERT_NE(First.TraceDigest, 0u);
  for (int Rep = 0; Rep < 3; ++Rep) {
    GridResult Again = runGrid(*M, F, C, 24, nullptr, GridMode::Parallel);
    EXPECT_EQ(First.TraceDigest, Again.TraceDigest);
  }
}

TEST(GridParallelTest, TraceDigestDistinguishesSchedulerPolicies) {
  // Different policies schedule the divergent loop differently; the digest
  // must see it even though checksums agree.
  auto M = divergentKernel();
  Function *F = M->functionByName("k");
  LaunchConfig Base;
  Base.Latency = LatencyModel::unit();
  Base.Seed = 5;
  Base.CollectTraceDigest = true;
  LaunchConfig MaxConv = Base;
  MaxConv.Policy = SchedulerPolicy::MaxConvergence;
  LaunchConfig Rr = Base;
  Rr.Policy = SchedulerPolicy::RoundRobin;
  GridResult A = runGrid(*M, F, MaxConv, 4, nullptr, GridMode::Parallel);
  GridResult B = runGrid(*M, F, Rr, 4, nullptr, GridMode::Parallel);
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_EQ(A.CombinedChecksum, B.CombinedChecksum);
  EXPECT_NE(A.TraceDigest, B.TraceDigest);
}

TEST(GridParallelTest, InitMemoryRunsOncePerWarpInParallelMode) {
  auto M = divergentKernel();
  Function *F = M->functionByName("k");
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  unsigned Applications = 0; // Mutated under the engine's InitMemory lock.
  GridResult G = runGrid(
      *M, F, C, 12,
      [&](WarpSimulator &Sim) {
        Sim.setMemory(100, 5);
        ++Applications;
      },
      GridMode::Parallel);
  ASSERT_TRUE(G.Ok);
  EXPECT_EQ(Applications, 12u);
}
