//===- BarrierUnitTest.cpp - Tests for convergence-barrier state --------------===//

#include "sim/BarrierUnit.h"

#include <gtest/gtest.h>

using namespace simtsr;

TEST(BarrierUnitTest, WaitReleasesWhenAllParticipantsArrive) {
  BarrierUnit U;
  U.join(0, 0b111);
  EXPECT_EQ(U.arriveWait(0, 0b001), 0u); // 2 participants missing
  EXPECT_EQ(U.arriveWait(0, 0b010), 0u);
  EXPECT_EQ(U.arriveWait(0, 0b100), 0b111u); // all present: release
  // Classic release clears membership.
  EXPECT_EQ(U.participants(0), 0u);
  EXPECT_EQ(U.waiters(0), 0u);
}

TEST(BarrierUnitTest, WaitOnEmptyBarrierReleasesImmediately) {
  BarrierUnit U;
  EXPECT_EQ(U.arriveWait(3, 0b1), 0b1u);
}

TEST(BarrierUnitTest, NonParticipantWaiterReleasedWithGroup) {
  BarrierUnit U;
  U.join(0, 0b011);
  EXPECT_EQ(U.arriveWait(0, 0b100), 0u); // not a member, still blocks
  EXPECT_EQ(U.arriveWait(0, 0b011), 0b111u);
}

TEST(BarrierUnitTest, CancelUnblocksRemainingWaiters) {
  BarrierUnit U;
  U.join(0, 0b11);
  EXPECT_EQ(U.arriveWait(0, 0b01), 0u);
  // Lane 1 leaves the region instead of waiting.
  EXPECT_EQ(U.cancel(0, 0b10), 0b01u);
  EXPECT_EQ(U.participants(0), 0u);
}

TEST(BarrierUnitTest, CancelWithoutWaitersReleasesNothing) {
  BarrierUnit U;
  U.join(0, 0b11);
  EXPECT_EQ(U.cancel(0, 0b01), 0u);
  EXPECT_EQ(U.participants(0), 0b10u);
}

TEST(BarrierUnitTest, RejoinAfterReleaseRequiresNewJoin) {
  BarrierUnit U;
  U.join(0, 0b11);
  EXPECT_EQ(U.arriveWait(0, 0b11), 0b11u);
  // After release the barrier is empty; a lone wait passes through.
  EXPECT_EQ(U.arriveWait(0, 0b01), 0b01u);
  // Joining again restores collective behaviour.
  U.join(0, 0b11);
  EXPECT_EQ(U.arriveWait(0, 0b01), 0u);
  EXPECT_EQ(U.arriveWait(0, 0b10), 0b11u);
}

TEST(BarrierUnitTest, SoftWaitReleasesAtThreshold) {
  BarrierUnit U;
  U.join(1, 0b1111); // four region members
  EXPECT_EQ(U.arriveSoftWait(1, 0b0001, 3), 0u);
  EXPECT_EQ(U.arriveSoftWait(1, 0b0010, 3), 0u);
  EXPECT_EQ(U.arriveSoftWait(1, 0b0100, 3), 0b0111u); // third arrival
  // Soft release keeps membership.
  EXPECT_EQ(U.participants(1), 0b1111u);
}

TEST(BarrierUnitTest, SoftWaitDegradesToFullBarrierWhenFewParticipants) {
  BarrierUnit U;
  U.join(1, 0b11); // only two members left in the region
  EXPECT_EQ(U.arriveSoftWait(1, 0b01, 8), 0u);
  // min(threshold=8, members=2) = 2: the second arrival releases.
  EXPECT_EQ(U.arriveSoftWait(1, 0b10, 8), 0b11u);
}

TEST(BarrierUnitTest, SoftWaitThresholdZeroNeverBlocks) {
  BarrierUnit U;
  U.join(1, 0b1111);
  EXPECT_EQ(U.arriveSoftWait(1, 0b0001, 0), 0b0001u);
}

TEST(BarrierUnitTest, SoftWaitUnblocksWhenParticipantsCancel) {
  BarrierUnit U;
  U.join(1, 0b1111);
  EXPECT_EQ(U.arriveSoftWait(1, 0b0001, 4), 0u);
  EXPECT_EQ(U.arriveSoftWait(1, 0b0010, 4), 0u);
  // The other two lanes leave the region: min(4, 2) = 2 waiters suffice.
  EXPECT_EQ(U.cancel(1, 0b1100), 0b0011u);
}

TEST(BarrierUnitTest, ThreadExitClearsMembershipEverywhere) {
  BarrierUnit U;
  U.join(0, 0b11);
  U.join(1, 0b10);
  EXPECT_EQ(U.arriveWait(0, 0b01), 0u);
  // Lane 1 exits: barrier 0's remaining waiter is released.
  EXPECT_EQ(U.threadExit(0b10), 0b01u);
  EXPECT_EQ(U.participants(1), 0u);
}

TEST(BarrierUnitTest, ArrivedCountTracksWaiters) {
  BarrierUnit U;
  U.join(0, 0b111);
  EXPECT_EQ(U.arrivedCount(0), 0u);
  U.arriveWait(0, 0b001);
  EXPECT_EQ(U.arrivedCount(0), 1u);
  U.arriveWait(0, 0b010);
  EXPECT_EQ(U.arrivedCount(0), 2u);
}

TEST(BarrierUnitTest, YieldReleasesLargestWaitingGroup) {
  BarrierUnit U;
  U.join(0, 0b1111);
  U.join(1, 0b110000);
  U.arriveWait(0, 0b0011);    // two waiters, two missing
  U.arriveWait(1, 0b010000);  // one waiter, one missing
  LaneMask Released = U.yield();
  EXPECT_EQ(Released, 0b0011u);
  EXPECT_TRUE(U.anyWaiters()); // barrier 1 still blocked
}

TEST(BarrierUnitTest, YieldWithNoWaitersReturnsZero) {
  BarrierUnit U;
  EXPECT_EQ(U.yield(), 0u);
  EXPECT_FALSE(U.anyWaiters());
}

TEST(BarrierUnitTest, IndependentBarriersDoNotInteract) {
  BarrierUnit U;
  U.join(2, 0b01);
  U.join(7, 0b10);
  EXPECT_EQ(U.arriveWait(2, 0b01), 0b01u);
  EXPECT_EQ(U.participants(7), 0b10u);
  EXPECT_EQ(U.waiters(7), 0u);
}
