//===- CallStackTest.cpp - Call stacks, recursion, trap paths -------------------===//

#include "ir/IRBuilder.h"
#include "sim/Warp.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

LaunchConfig unitConfig() {
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  return C;
}

} // namespace

TEST(CallStackTest, NestedCallsThreeDeep) {
  Module M;
  Function *Inner = M.createFunction("inner", 1);
  {
    IRBuilder B(Inner);
    B.startBlock("entry");
    unsigned V = B.add(Operand::reg(0), Operand::imm(1));
    B.ret(Operand::reg(V));
  }
  Function *Mid = M.createFunction("mid", 1);
  {
    IRBuilder B(Mid);
    B.startBlock("entry");
    unsigned V = B.call(Inner, {Operand::reg(0)});
    unsigned W = B.mul(Operand::reg(V), Operand::imm(2));
    B.ret(Operand::reg(W));
  }
  Function *K = M.createFunction("k", 0);
  IRBuilder B(K);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned R = B.call(Mid, {Operand::reg(T)});
  B.store(Operand::reg(T), Operand::reg(R));
  B.ret();

  WarpSimulator Sim(M, K, unitConfig());
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[0], 2);   // (0+1)*2
  EXPECT_EQ(Sim.memory()[10], 22); // (10+1)*2
}

TEST(CallStackTest, RuntimeRecursionComputesFactorial) {
  // fact(n) = n <= 1 ? 1 : n * fact(n-1); compile-time recursion is legal,
  // the simulator maintains per-thread call stacks.
  Module M;
  Function *Fact = M.createFunction("fact", 1);
  {
    IRBuilder B(Fact);
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Base = Fact->createBlock("base");
    BasicBlock *Rec = Fact->createBlock("rec");
    B.setInsertBlock(Entry);
    unsigned C = B.cmpLE(Operand::reg(0), Operand::imm(1));
    B.br(Operand::reg(C), Base, Rec);
    B.setInsertBlock(Base);
    B.ret(Operand::imm(1));
    B.setInsertBlock(Rec);
    unsigned NMinus1 = B.sub(Operand::reg(0), Operand::imm(1));
    unsigned Sub = B.call(Fact, {Operand::reg(NMinus1)});
    unsigned V = B.mul(Operand::reg(0), Operand::reg(Sub));
    B.ret(Operand::reg(V));
  }
  Function *K = M.createFunction("k", 0);
  IRBuilder B(K);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned Small = B.rem(Operand::reg(T), Operand::imm(8));
  unsigned R = B.call(Fact, {Operand::reg(Small)});
  B.store(Operand::reg(T), Operand::reg(R));
  B.ret();

  WarpSimulator Sim(M, K, unitConfig());
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[0], 1);    // fact(0)
  EXPECT_EQ(Sim.memory()[5], 120);  // fact(5)
  EXPECT_EQ(Sim.memory()[7], 5040); // fact(7)
  EXPECT_EQ(Sim.memory()[13], 120); // fact(13 % 8 = 5)
}

TEST(CallStackTest, RecursionDivergesAndReconverges) {
  // Different recursion depths per lane: deep lanes keep running after
  // shallow lanes return — and results stay exact.
  Module M;
  Function *Sum = M.createFunction("sumto", 1);
  {
    IRBuilder B(Sum);
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Base = Sum->createBlock("base");
    BasicBlock *Rec = Sum->createBlock("rec");
    B.setInsertBlock(Entry);
    unsigned C = B.cmpLE(Operand::reg(0), Operand::imm(0));
    B.br(Operand::reg(C), Base, Rec);
    B.setInsertBlock(Base);
    B.ret(Operand::imm(0));
    B.setInsertBlock(Rec);
    unsigned NMinus1 = B.sub(Operand::reg(0), Operand::imm(1));
    unsigned Sub = B.call(Sum, {Operand::reg(NMinus1)});
    unsigned V = B.add(Operand::reg(0), Operand::reg(Sub));
    B.ret(Operand::reg(V));
  }
  Function *K = M.createFunction("k", 0);
  IRBuilder B(K);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned R = B.call(Sum, {Operand::reg(T)});
  B.store(Operand::reg(T), Operand::reg(R));
  B.ret();

  WarpSimulator Sim(M, K, unitConfig());
  ASSERT_TRUE(Sim.run().ok());
  for (int64_t Lane = 0; Lane < 32; ++Lane)
    EXPECT_EQ(Sim.memory()[static_cast<size_t>(Lane)],
              Lane * (Lane + 1) / 2);
}

TEST(CallStackTest, RandRangeEmptyRangeTraps) {
  Module M;
  Function *K = M.createFunction("k", 0);
  IRBuilder B(K);
  B.startBlock("entry");
  unsigned R = B.randRange(Operand::imm(5), Operand::imm(5));
  (void)R;
  B.ret();
  WarpSimulator Sim(M, K, unitConfig());
  RunResult Result = Sim.run();
  EXPECT_EQ(Result.St, RunResult::Status::Trap);
  EXPECT_NE(Result.TrapMessage.find("empty range"), std::string::npos);
}

TEST(CallStackTest, NegativeSoftWaitThresholdTraps) {
  Module M;
  Function *K = M.createFunction("k", 0);
  IRBuilder B(K);
  B.startBlock("entry");
  B.joinBarrier(0);
  B.softWait(0, Operand::imm(-3));
  B.ret();
  WarpSimulator Sim(M, K, unitConfig());
  RunResult Result = Sim.run();
  EXPECT_EQ(Result.St, RunResult::Status::Trap);
  EXPECT_NE(Result.TrapMessage.find("negative"), std::string::npos);
}

TEST(CallStackTest, NegativeLoadAddressTraps) {
  Module M;
  Function *K = M.createFunction("k", 0);
  IRBuilder B(K);
  B.startBlock("entry");
  unsigned V = B.load(Operand::imm(-1));
  (void)V;
  B.ret();
  WarpSimulator Sim(M, K, unitConfig());
  RunResult Result = Sim.run();
  EXPECT_EQ(Result.St, RunResult::Status::Trap);
}

TEST(CallStackTest, RemainderByZeroTraps) {
  Module M;
  Function *K = M.createFunction("k", 0);
  IRBuilder B(K);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned V = B.rem(Operand::imm(5), Operand::reg(T));
  (void)V;
  B.ret();
  WarpSimulator Sim(M, K, unitConfig());
  RunResult Result = Sim.run();
  EXPECT_EQ(Result.St, RunResult::Status::Trap);
  EXPECT_NE(Result.TrapMessage.find("remainder by zero"), std::string::npos);
}
