//===- WorkloadTest.cpp - Table 2 suite integration tests ----------------------===//
///
/// Every workload must round-trip through the textual IR, verify, run to
/// completion (strict deadlock detection) under every pipeline, and keep
/// its architectural results bit-identical across all of them. The
/// annotated configuration must reproduce the paper's headline: higher
/// SIMT efficiency and lower cycle counts than the PDOM baseline for the
/// workloads Figure 8 shows winning.
///
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"

#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

struct SuiteCase {
  const char *Name;
  Workload (*Factory)(double);
};

const SuiteCase Suite[] = {
    {"rsbench", makeRSBench},     {"xsbench", makeXSBench},
    {"mcb", makeMCB},             {"pathtracer", makePathTracer},
    {"mcgpu", makeMCGPU},         {"mummer", makeMummer},
    {"meiyamd5", makeMeiyaMD5},   {"optix", makeOptixTrace},
    {"gpumcml", makeGpuMCML},     {"microcc", makeMicroCommonCall},
};

class WorkloadSuiteTest : public ::testing::TestWithParam<SuiteCase> {};

} // namespace

TEST_P(WorkloadSuiteTest, ModuleIsWellFormed) {
  Workload W = GetParam().Factory(0.5);
  EXPECT_TRUE(isWellFormed(*W.M));
  EXPECT_NE(W.M->functionByName(W.KernelName), nullptr);
}

TEST_P(WorkloadSuiteTest, CloneRoundTripsThroughText) {
  Workload W = GetParam().Factory(0.5);
  Workload Copy = cloneWorkload(W);
  EXPECT_TRUE(isWellFormed(*Copy.M));
  // Clone and original behave identically.
  auto A = runWorkload(W, PipelineOptions::baseline(), 3);
  auto B = runWorkload(Copy, PipelineOptions::baseline(), 3);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

TEST_P(WorkloadSuiteTest, AllPipelinesPreserveSemantics) {
  Workload W = GetParam().Factory(0.5);
  for (uint64_t Seed : {1ull, 77ull}) {
    PipelineOptions NoSync;
    NoSync.PdomSync = false;
    NoSync.StripPredicts = true;
    auto Reference = runWorkload(W, NoSync, Seed);
    ASSERT_TRUE(Reference.ok()) << Reference.TrapMessage;

    std::vector<std::pair<std::string, PipelineOptions>> Configs = {
        {"baseline", PipelineOptions::baseline()},
        {"sr-dynamic", PipelineOptions::speculative()},
        {"sr-static",
         PipelineOptions::speculative(DeconflictStrategy::Static)},
        {"annotated", annotatedOptionsFor(W)},
        {"soft-4", PipelineOptions::softBarrier(4)},
        {"soft-16", PipelineOptions::softBarrier(16)},
    };
    for (const auto &[Label, Opts] : Configs) {
      auto O = runWorkload(W, Opts, Seed);
      ASSERT_TRUE(O.ok()) << Label << ": status "
                          << static_cast<int>(O.Status) << " "
                          << O.TrapMessage;
      EXPECT_TRUE(O.Pipeline.clean())
          << Label << ": " << O.Pipeline.VerifierDiagnostics[0];
      EXPECT_EQ(O.Checksum, Reference.Checksum)
          << Label << " changed results (seed " << Seed << ")";
    }
  }
}

TEST_P(WorkloadSuiteTest, SchedulerPoliciesPreserveSemantics) {
  Workload W = GetParam().Factory(0.3);
  auto Reference =
      runWorkload(W, PipelineOptions::baseline(), 5,
                  SchedulerPolicy::MaxConvergence);
  for (SchedulerPolicy P :
       {SchedulerPolicy::MinPC, SchedulerPolicy::RoundRobin}) {
    auto O = runWorkload(W, PipelineOptions::baseline(), 5, P);
    ASSERT_TRUE(O.ok());
    EXPECT_EQ(O.Checksum, Reference.Checksum);
  }
}

TEST_P(WorkloadSuiteTest, DeterministicAcrossRepeatedRuns) {
  Workload W = GetParam().Factory(0.3);
  auto A = runWorkload(W, annotatedOptionsFor(W), 11);
  auto B = runWorkload(W, annotatedOptionsFor(W), 11);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.SimtEfficiency, B.SimtEfficiency);
}

INSTANTIATE_TEST_SUITE_P(Table2, WorkloadSuiteTest, ::testing::ValuesIn(Suite),
                         [](const ::testing::TestParamInfo<SuiteCase> &Info) {
                           return std::string(Info.param.Name);
                         });

// The paper's headline (Figures 7/8): annotated speculative reconvergence
// raises SIMT efficiency on every annotated workload and speeds up the
// divergent Monte Carlo applications.
TEST(PaperHeadlineTest, AnnotatedRunsImproveSimtEfficiency) {
  for (const Workload &W : makeAnnotatedWorkloads()) {
    auto Base = runWorkload(W, PipelineOptions::baseline(), 9);
    auto Opt = runWorkload(W, annotatedOptionsFor(W), 9);
    ASSERT_TRUE(Base.ok() && Opt.ok()) << W.Name;
    EXPECT_GT(Opt.SimtEfficiency, Base.SimtEfficiency) << W.Name;
  }
}

TEST(PaperHeadlineTest, AnnotatedRunsSpeedUpKeyWorkloads) {
  // The strong winners in Figure 8.
  for (Workload (*Factory)(double) :
       {makeRSBench, makePathTracer, makeMCGPU, makeMummer, makeGpuMCML,
        makeMicroCommonCall}) {
    Workload W = Factory(1.0);
    auto Base = runWorkload(W, PipelineOptions::baseline(), 9);
    auto Opt = runWorkload(W, annotatedOptionsFor(W), 9);
    EXPECT_LT(Opt.Cycles, Base.Cycles) << W.Name;
  }
}

TEST(PaperHeadlineTest, XSBenchPrefersSmallSoftThreshold) {
  // Figure 9, right panel: the expensive refill makes waiting for the full
  // warp counterproductive; a small threshold wins.
  Workload W = makeXSBench();
  auto Full = runWorkload(W, PipelineOptions::softBarrier(32), 9);
  auto Small = runWorkload(W, PipelineOptions::softBarrier(4), 9);
  EXPECT_LT(Small.Cycles, Full.Cycles);
  auto Base = runWorkload(W, PipelineOptions::baseline(), 9);
  EXPECT_LT(Small.Cycles, Base.Cycles);
}

TEST(PaperHeadlineTest, PathTracerPrefersFullConvergence) {
  // Figure 9, left panel: cheap ray regeneration makes (near-)full
  // reconvergence the best operating point.
  Workload W = makePathTracer();
  auto Full = runWorkload(W, PipelineOptions::softBarrier(32), 9);
  auto Tiny = runWorkload(W, PipelineOptions::softBarrier(1), 9);
  auto Base = runWorkload(W, PipelineOptions::baseline(), 9);
  EXPECT_LT(Full.Cycles, Base.Cycles);
  EXPECT_GE(Full.SimtEfficiency, Tiny.SimtEfficiency - 0.03);
}

TEST(PaperHeadlineTest, GridRunsAgreeWithSingleWarpDirection) {
  // The multi-warp aggregate points the same way as the single-warp
  // measurement on the flagship workload, and semantics hold per warp.
  Workload W = makeRSBench(0.5);
  GridResult Base = runWorkloadGrid(W, PipelineOptions::baseline(), 4, 7);
  GridResult Opt = runWorkloadGrid(W, annotatedOptionsFor(W), 4, 7);
  ASSERT_TRUE(Base.Ok && Opt.Ok);
  EXPECT_EQ(Base.CombinedChecksum, Opt.CombinedChecksum);
  EXPECT_GT(Opt.SimtEfficiency, Base.SimtEfficiency);
  EXPECT_LT(Opt.TotalCycles, Base.TotalCycles);
  EXPECT_EQ(Base.WarpsRun, 4u);
}

TEST(PaperHeadlineTest, AnnotatedOptionsSelectRecommendedThreshold) {
  Workload XS = makeXSBench();
  PipelineOptions Opts = annotatedOptionsFor(XS);
  EXPECT_EQ(Opts.SR.SoftThreshold, 4);
  Workload RS = makeRSBench();
  PipelineOptions RSOpts = annotatedOptionsFor(RS);
  EXPECT_LT(RSOpts.SR.SoftThreshold, 0); // classic full barrier
}

TEST(PaperHeadlineTest, AutotunerFindsTheFigure9Contrast) {
  // The tuner lands near XSBench's small-threshold peak and on a large
  // threshold for PathTracer — Figure 9, discovered automatically.
  int XS = autotuneSoftThreshold(makeXSBench(0.5));
  EXPECT_LE(XS, 12);
  int PT = autotuneSoftThreshold(makePathTracer(0.5));
  EXPECT_GE(PT, 4);
  // And the tuned configuration beats the baseline at full scale.
  Workload Full = makeXSBench();
  auto Base = runWorkload(Full, PipelineOptions::baseline(), 9);
  auto Tuned = runWorkload(Full, PipelineOptions::softBarrier(XS), 9);
  EXPECT_LT(Tuned.Cycles, Base.Cycles);
}

TEST(WorkloadStructureTest, AnnotationsMatchDocumentedPatterns) {
  // Each workload carries exactly the annotation its pattern requires:
  // loop-merge / iteration-delay use a predict directive; common-call
  // uses reconverge_entry; none mixes both.
  for (const Workload &W : makeAllWorkloads()) {
    unsigned Predicts = 0, EntryFlags = 0;
    for (size_t FI = 0; FI < W.M->size(); ++FI) {
      const Function &F = *W.M->function(FI);
      EntryFlags += F.reconvergeAtEntry();
      for (const BasicBlock *BB : F)
        for (const Instruction &I : BB->instructions())
          Predicts += I.opcode() == Opcode::Predict;
    }
    switch (W.Pattern) {
    case DivergencePattern::LoopMerge:
    case DivergencePattern::IterationDelay:
      EXPECT_EQ(Predicts, 1u) << W.Name;
      EXPECT_EQ(EntryFlags, 0u) << W.Name;
      break;
    case DivergencePattern::CommonCall:
      EXPECT_EQ(Predicts, 0u) << W.Name;
      EXPECT_EQ(EntryFlags, 1u) << W.Name;
      break;
    }
  }
}

TEST(WorkloadStructureTest, RSBenchTableCarriesThePaperSpread) {
  // "num nuclides per material ranges from 4 to 321" (Figure 3).
  Workload W = makeRSBench(1.0);
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, PipelineOptions::baseline());
  LaunchConfig C;
  C.Latency = Fresh.Latency;
  WarpSimulator Sim(*Fresh.M, Fresh.M->functionByName(Fresh.KernelName), C);
  ASSERT_TRUE(Fresh.InitMemory != nullptr);
  Fresh.InitMemory(Sim);
  int64_t Lo = 1 << 30, Hi = 0;
  for (int64_t I = 0; I < 12; ++I) {
    int64_t N = Sim.memory()[static_cast<size_t>(128 + I)];
    Lo = std::min(Lo, N);
    Hi = std::max(Hi, N);
  }
  EXPECT_EQ(Lo, 4);
  EXPECT_EQ(Hi, 321);
}

TEST(WorkloadStructureTest, ScaleShrinksWork) {
  Workload Big = makeRSBench(1.0);
  Workload Small = makeRSBench(0.25);
  auto BigRun = runWorkload(Big, PipelineOptions::baseline(), 3);
  auto SmallRun = runWorkload(Small, PipelineOptions::baseline(), 3);
  ASSERT_TRUE(BigRun.ok() && SmallRun.ok());
  EXPECT_LT(SmallRun.Cycles, BigRun.Cycles / 2);
}

TEST(WorkloadStructureTest, LatencyModelsMatchBoundedness) {
  // Memory-bound workloads must actually use the memory-bound model.
  EXPECT_EQ(makeXSBench().Latency.cost(Opcode::Load), 200u);
  EXPECT_EQ(makeMummer().Latency.cost(Opcode::Load), 200u);
  EXPECT_EQ(makeRSBench().Latency.cost(Opcode::Load), 30u);
}
