//===- WorkloadCloneTest.cpp - cloneWorkload equivalence over the suite ----===//
//
// cloneWorkload used to round-trip modules through the textual format;
// it now uses Module::clone(). These tests pin the equivalence on every
// Table 2 workload: the clone prints identically, parses back, and runs
// to the same checksum as the original.
//
//===----------------------------------------------------------------------===//

#include "kernels/Runner.h"
#include "kernels/Workload.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;

TEST(WorkloadCloneTest, CloneMatchesPrintParseRoundTripOnEveryWorkload) {
  for (const Workload &W : makeAllWorkloads(0.25)) {
    const std::string Original = printModule(*W.M);

    Workload Copy = cloneWorkload(W);
    EXPECT_NE(Copy.M.get(), W.M.get());
    EXPECT_EQ(printModule(*Copy.M), Original) << W.Name;
    EXPECT_TRUE(isWellFormed(*Copy.M)) << W.Name;

    // The clone is exactly what the old print->parse path produced.
    ParseResult R = parseModule(Original);
    ASSERT_TRUE(R.ok()) << W.Name;
    EXPECT_EQ(printModule(*R.M), printModule(*Copy.M)) << W.Name;
  }
}

TEST(WorkloadCloneTest, ClonedWorkloadRunsIdentically) {
  for (const Workload &W : makeAllWorkloads(0.25)) {
    Workload Copy = cloneWorkload(W);
    WorkloadOutcome A = runWorkload(W, PipelineOptions::speculative(), 7);
    WorkloadOutcome B = runWorkload(Copy, PipelineOptions::speculative(), 7);
    EXPECT_EQ(A.Status, B.Status) << W.Name;
    EXPECT_EQ(A.Cycles, B.Cycles) << W.Name;
    EXPECT_EQ(A.IssueSlots, B.IssueSlots) << W.Name;
    EXPECT_EQ(A.Checksum, B.Checksum) << W.Name;
  }
}
