//===- CorpusTest.cpp - Tests for the synthetic corpus -------------------------===//

#include "kernels/Corpus.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;

TEST(CorpusTest, AllKernelsWellFormed) {
  for (uint64_t Id = 0; Id < CorpusSize; ++Id) {
    CorpusKernel K = makeCorpusKernel(Id);
    auto Diags = verifyModule(*K.M);
    EXPECT_TRUE(Diags.empty())
        << "app " << Id << ": " << (Diags.empty() ? "" : Diags[0]);
  }
}

TEST(CorpusTest, GenerationIsDeterministic) {
  for (uint64_t Id : {0ull, 17ull, 333ull, 519ull}) {
    CorpusKernel A = makeCorpusKernel(Id);
    CorpusKernel B = makeCorpusKernel(Id);
    EXPECT_EQ(printModule(*A.M), printModule(*B.M)) << "app " << Id;
  }
}

TEST(CorpusTest, KernelsRoundTripThroughText) {
  for (uint64_t Id = 0; Id < CorpusSize; Id += 13) {
    CorpusKernel K = makeCorpusKernel(Id);
    std::string Text = printModule(*K.M);
    ParseResult R = parseModule(Text);
    ASSERT_TRUE(R.ok()) << "app " << Id;
    EXPECT_EQ(printModule(*R.M), Text) << "app " << Id;
  }
}

TEST(CorpusTest, SampledKernelsPreserveSemanticsUnderPipelines) {
  for (uint64_t Id = 3; Id < CorpusSize; Id += 11) {
    auto runConfig = [&](const PipelineOptions &Opts) {
      CorpusKernel K = makeCorpusKernel(Id);
      runSyncPipeline(*K.M, Opts);
      Function *F = K.M->functionByName(K.KernelName);
      LaunchConfig C;
      C.Seed = 11;
      C.Latency = LatencyModel::unit();
      WarpSimulator Sim(*K.M, F, C);
      RunResult R = Sim.run();
      EXPECT_TRUE(R.ok()) << "app " << Id << ": " << R.TrapMessage;
      return Sim.memoryChecksum();
    };
    PipelineOptions NoSync;
    NoSync.PdomSync = false;
    uint64_t Expected = runConfig(NoSync);
    EXPECT_EQ(runConfig(PipelineOptions::baseline()), Expected)
        << "app " << Id;
    EXPECT_EQ(runConfig(PipelineOptions::speculative()), Expected)
        << "app " << Id;
  }
}

TEST(CorpusTest, MixContainsBothUniformAndDivergentApps) {
  unsigned Divergent = 0;
  for (uint64_t Id = 0; Id < CorpusSize; ++Id)
    Divergent += makeCorpusKernel(Id).HasDivergenceSources;
  // The paper's skew: divergent workloads are a small but real fraction.
  EXPECT_GT(Divergent, CorpusSize / 20);
  EXPECT_LT(Divergent, CorpusSize / 3);
}

TEST(CorpusTest, UniformAppsRunNearFullEfficiency) {
  unsigned Checked = 0;
  for (uint64_t Id = 0; Id < 60; ++Id) {
    CorpusKernel K = makeCorpusKernel(Id);
    if (K.HasDivergenceSources)
      continue;
    runSyncPipeline(*K.M, PipelineOptions::baseline());
    Function *F = K.M->functionByName(K.KernelName);
    LaunchConfig C;
    C.Latency = LatencyModel::unit();
    WarpSimulator Sim(*K.M, F, C);
    RunResult R = Sim.run();
    ASSERT_TRUE(R.ok());
    EXPECT_GT(R.Stats.simtEfficiency(), 0.95) << "app " << Id;
    ++Checked;
  }
  EXPECT_GT(Checked, 10u);
}
