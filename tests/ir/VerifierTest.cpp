//===- VerifierTest.cpp - Tests for IR verification --------------------------===//

#include "ir/Verifier.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// Expects exactly one diagnostic containing \p Needle.
void expectDiag(const std::vector<std::string> &Diags,
                const std::string &Needle) {
  ASSERT_FALSE(Diags.empty()) << "expected a diagnostic about: " << Needle;
  bool Found = false;
  for (const auto &D : Diags)
    Found |= D.find(Needle) != std::string::npos;
  EXPECT_TRUE(Found) << "missing '" << Needle << "', got: " << Diags[0];
}

} // namespace

TEST(VerifierTest, WellFormedModulePasses) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned C = B.cmpLT(Operand::reg(0), Operand::imm(10));
  B.br(Operand::reg(C), Exit, Exit);
  B.setInsertBlock(Exit);
  B.ret();
  EXPECT_TRUE(isWellFormed(M));
}

TEST(VerifierTest, EmptyFunctionRejected) {
  Module M;
  M.createFunction("f", 0);
  expectDiag(verifyModule(M), "no blocks");
}

TEST(VerifierTest, EmptyBlockRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  F->createBlock("entry");
  expectDiag(verifyFunction(*F), "empty");
}

TEST(VerifierTest, MissingTerminatorRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  BB->instructions().push_back(Instruction(Opcode::Nop, NoRegister, {}));
  expectDiag(verifyFunction(*F), "terminator");
}

TEST(VerifierTest, TerminatorMidBlockRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  expectDiag(verifyFunction(*F), "terminator not at end");
}

TEST(VerifierTest, RegisterOutOfRangeRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  BB->instructions().push_back(
      Instruction(Opcode::Ret, NoRegister, {Operand::reg(99)}));
  expectDiag(verifyFunction(*F), "register out of range");
}

TEST(VerifierTest, WrongOperandCountRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  unsigned Dst = F->createReg();
  BB->instructions().push_back(
      Instruction(Opcode::Add, Dst, {Operand::imm(1)}));
  BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  expectDiag(verifyFunction(*F), "wrong operand count");
}

TEST(VerifierTest, MissingDstRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  BB->instructions().push_back(
      Instruction(Opcode::Add, NoRegister, {Operand::imm(1), Operand::imm(2)}));
  BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  expectDiag(verifyFunction(*F), "missing destination");
}

TEST(VerifierTest, BarrierOutOfRangeRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  BB->instructions().push_back(Instruction(
      Opcode::JoinBarrier, NoRegister, {Operand::barrier(16)}));
  BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  expectDiag(verifyFunction(*F), "barrier register out of range");
}

TEST(VerifierTest, BranchToForeignBlockRejected) {
  Module M;
  Function *F = M.createFunction("f", 1);
  Function *G = M.createFunction("g", 0);
  BasicBlock *Foreign = G->createBlock("entry");
  Foreign->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  BasicBlock *BB = F->createBlock("entry");
  BB->instructions().push_back(
      Instruction(Opcode::Jmp, NoRegister, {Operand::block(Foreign)}));
  expectDiag(verifyFunction(*F), "not in this function");
}

TEST(VerifierTest, CallArityMismatchRejected) {
  Module M;
  Function *G = M.createFunction("g", 2);
  BasicBlock *GB = G->createBlock("entry");
  GB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  unsigned Dst = F->createReg();
  BB->instructions().push_back(
      Instruction(Opcode::Call, Dst, {Operand::func(G), Operand::imm(1)}));
  BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  expectDiag(verifyFunction(*F), "arity mismatch");
}

TEST(VerifierTest, DuplicateBlockNamesRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  for (int I = 0; I < 2; ++I) {
    BasicBlock *BB = F->createBlock("dup");
    BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  }
  expectDiag(verifyFunction(*F), "duplicate block name");
}

TEST(VerifierTest, DuplicateFunctionNamesRejected) {
  Module M;
  for (int I = 0; I < 2; ++I) {
    Function *F = M.createFunction("f", 0);
    BasicBlock *BB = F->createBlock("entry");
    BB->instructions().push_back(Instruction(Opcode::Ret, NoRegister, {}));
  }
  expectDiag(verifyModule(M), "duplicate function name");
}

TEST(VerifierTest, RetWithTooManyOperandsRejected) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *BB = F->createBlock("entry");
  BB->instructions().push_back(Instruction(
      Opcode::Ret, NoRegister, {Operand::imm(1), Operand::imm(2)}));
  expectDiag(verifyFunction(*F), "at most one operand");
}
