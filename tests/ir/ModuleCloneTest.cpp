//===- ModuleCloneTest.cpp - Module::clone equivalence tests ----------------===//
//
// Module::clone() replaced the print->parse round-trip as the cloning
// mechanism, so these tests pin its contract: the printed IR of a clone is
// byte-identical to the printed IR of the original, the clone references
// only its own functions/blocks, and mutations do not leak either way.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "TestIR.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// A module exercising every operand kind: registers, immediates, block
/// references (branches + predict), function references (calls, including
/// a forward reference to a later function) and barrier ids.
std::unique_ptr<Module> buildRichModule() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(4096);

  Function *F = M->createFunction("kernel", 0);
  Function *Helper = M->createFunction("zhelper", 1);
  Helper->setReconvergeAtEntry(true);
  {
    IRBuilder B(Helper);
    B.startBlock("entry");
    unsigned R = B.mul(Operand::reg(0), Operand::imm(3));
    B.ret(Operand::reg(R));
  }

  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  B.predict(Hot);
  B.joinBarrier(0);
  B.jmp(Loop);

  B.setInsertBlock(Loop);
  unsigned R = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned C = B.cmpLT(Operand::reg(R), Operand::imm(50));
  B.br(Operand::reg(C), Hot, Exit);

  B.setInsertBlock(Hot);
  B.waitBarrier(0);
  B.rejoinBarrier(0);
  unsigned V = B.call(Helper, {Operand::reg(T)});
  B.softWait(2, Operand::imm(8));
  B.atomicAdd(Operand::imm(0), Operand::reg(V));
  B.jmp(Loop);

  B.setInsertBlock(Exit);
  B.cancelBarrier(0);
  B.warpSync();
  B.ret();

  F->recomputePreds();
  return M;
}

} // namespace

TEST(ModuleCloneTest, PrintedIRIsIdentical) {
  std::unique_ptr<Module> M = buildRichModule();
  std::unique_ptr<Module> Clone = M->clone();
  EXPECT_EQ(printModule(*M), printModule(*Clone));
}

TEST(ModuleCloneTest, PreservesModuleAndFunctionMetadata) {
  std::unique_ptr<Module> M = buildRichModule();
  std::unique_ptr<Module> Clone = M->clone();
  EXPECT_EQ(Clone->globalMemoryWords(), M->globalMemoryWords());
  ASSERT_EQ(Clone->size(), M->size());
  for (size_t I = 0; I < M->size(); ++I) {
    const Function *Orig = M->function(I);
    const Function *Copy = Clone->function(I);
    EXPECT_EQ(Copy->name(), Orig->name());
    EXPECT_EQ(Copy->numParams(), Orig->numParams());
    EXPECT_EQ(Copy->numRegs(), Orig->numRegs());
    EXPECT_EQ(Copy->reconvergeAtEntry(), Orig->reconvergeAtEntry());
    EXPECT_EQ(Copy->parent(), Clone.get());
  }
}

TEST(ModuleCloneTest, OperandsPointIntoTheClone) {
  std::unique_ptr<Module> M = buildRichModule();
  std::unique_ptr<Module> Clone = M->clone();
  for (size_t FI = 0; FI < Clone->size(); ++FI) {
    const Function *F = Clone->function(FI);
    for (const BasicBlock *BB : *F) {
      EXPECT_EQ(BB->parent(), F);
      for (const Instruction &I : BB->instructions()) {
        for (const Operand &O : I.operands()) {
          if (O.isBlock()) {
            EXPECT_EQ(O.getBlock()->parent(), F);
          }
          if (O.isFunc()) {
            EXPECT_EQ(O.getFunc()->parent(), Clone.get());
          }
        }
      }
    }
  }
}

TEST(ModuleCloneTest, CloneIsWellFormedAndHasPreds) {
  std::unique_ptr<Module> M = buildRichModule();
  std::unique_ptr<Module> Clone = M->clone();
  EXPECT_TRUE(isWellFormed(*Clone));
  // Predecessor lists were recomputed on the clone's own blocks.
  const Function *F = Clone->functionByName("kernel");
  ASSERT_NE(F, nullptr);
  const BasicBlock *Loop = F->blockByName("loop");
  ASSERT_NE(Loop, nullptr);
  ASSERT_EQ(Loop->predecessors().size(), 2u);
  for (const BasicBlock *Pred : Loop->predecessors())
    EXPECT_EQ(Pred->parent(), F);
}

TEST(ModuleCloneTest, MutationsDoNotLeakBetweenCopies) {
  std::unique_ptr<Module> M = buildRichModule();
  std::unique_ptr<Module> Clone = M->clone();
  const std::string Before = printModule(*M);

  Function *F = Clone->functionByName("kernel");
  ASSERT_NE(F, nullptr);
  IRBuilder B(F);
  BasicBlock *Extra = F->createBlock("extra");
  B.setInsertBlock(Extra);
  B.ret();
  F->recomputePreds();

  EXPECT_EQ(printModule(*M), Before);
  EXPECT_NE(printModule(*Clone), Before);
}

TEST(ModuleCloneTest, RandomCfgsRoundTrip) {
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    std::unique_ptr<Module> M = testir::randomCfg(Seed, 3 + Seed % 13);
    std::unique_ptr<Module> Clone = M->clone();
    EXPECT_EQ(printModule(*M), printModule(*Clone)) << "seed " << Seed;
  }
}

TEST(ModuleCloneTest, EmptyModule) {
  Module M;
  M.setGlobalMemoryWords(17);
  std::unique_ptr<Module> Clone = M.clone();
  EXPECT_EQ(Clone->size(), 0u);
  EXPECT_EQ(Clone->globalMemoryWords(), 17u);
  EXPECT_EQ(printModule(M), printModule(*Clone));
}
