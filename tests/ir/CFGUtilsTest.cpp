//===- CFGUtilsTest.cpp - Tests for CFG helpers ------------------------------===//

#include "ir/CFGUtils.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace simtsr;

namespace {

/// Builds a diamond: entry -> {then, else} -> join(ret).
struct Diamond {
  Module M;
  Function *F;
  BasicBlock *Entry;
  BasicBlock *Then;
  BasicBlock *Else;
  BasicBlock *Join;

  Diamond() {
    F = M.createFunction("f", 1);
    IRBuilder B(F);
    Entry = B.startBlock("entry");
    Then = F->createBlock("then");
    Else = F->createBlock("else");
    Join = F->createBlock("join");
    B.setInsertBlock(Entry);
    B.br(Operand::reg(0), Then, Else);
    B.setInsertBlock(Then);
    B.jmp(Join);
    B.setInsertBlock(Else);
    B.jmp(Join);
    B.setInsertBlock(Join);
    B.ret();
    F->recomputePreds();
  }
};

size_t indexOf(const std::vector<BasicBlock *> &Order, BasicBlock *BB) {
  auto It = std::find(Order.begin(), Order.end(), BB);
  EXPECT_NE(It, Order.end());
  return static_cast<size_t>(It - Order.begin());
}

} // namespace

TEST(CFGUtilsTest, RPOStartsAtEntryAndRespectsDominance) {
  Diamond D;
  auto RPO = reversePostOrder(*D.F);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), D.Entry);
  EXPECT_LT(indexOf(RPO, D.Entry), indexOf(RPO, D.Then));
  EXPECT_LT(indexOf(RPO, D.Entry), indexOf(RPO, D.Else));
  EXPECT_LT(indexOf(RPO, D.Then), indexOf(RPO, D.Join));
  EXPECT_LT(indexOf(RPO, D.Else), indexOf(RPO, D.Join));
}

TEST(CFGUtilsTest, RPOAppendsUnreachableBlocks) {
  Diamond D;
  BasicBlock *Dead = D.F->createBlock("dead");
  IRBuilder B(D.F, Dead);
  B.ret();
  auto RPO = reversePostOrder(*D.F);
  ASSERT_EQ(RPO.size(), 5u);
  EXPECT_EQ(RPO.back(), Dead);
}

TEST(CFGUtilsTest, RPOHandlesLoops) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.jmp(Header);
  B.setInsertBlock(Header);
  B.br(Operand::reg(0), Body, Exit);
  B.setInsertBlock(Body);
  B.jmp(Header);
  B.setInsertBlock(Exit);
  B.ret();
  auto RPO = reversePostOrder(*F);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), Entry);
  EXPECT_LT(indexOf(RPO, Header), indexOf(RPO, Body));
}

TEST(CFGUtilsTest, SplitEdgeInsertsTrampoline) {
  Diamond D;
  BasicBlock *Mid = splitEdge(*D.F, D.Then, D.Join);
  D.F->recomputePreds();
  ASSERT_EQ(Mid->size(), 1u);
  EXPECT_EQ(Mid->inst(0).opcode(), Opcode::Jmp);
  auto ThenSuccs = D.Then->successors();
  ASSERT_EQ(ThenSuccs.size(), 1u);
  EXPECT_EQ(ThenSuccs[0], Mid);
  EXPECT_EQ(Mid->successors()[0], D.Join);
  // Join now has preds {else, mid}.
  EXPECT_EQ(D.Join->predecessors().size(), 2u);
}

TEST(CFGUtilsTest, SplitEdgeRetargetsBothArmsOfSameTargetBranch) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), Next, Next);
  B.setInsertBlock(Next);
  B.ret();
  BasicBlock *Mid = splitEdge(*F, Entry, Next);
  auto Succs = Entry->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], Mid);
  EXPECT_EQ(Succs[1], Mid);
}

TEST(CFGUtilsTest, UniqueBlockNameAvoidsCollisions) {
  Diamond D;
  EXPECT_EQ(uniqueBlockName(*D.F, "fresh"), "fresh");
  EXPECT_EQ(uniqueBlockName(*D.F, "then"), "then.0");
  D.F->createBlock("then.0");
  EXPECT_EQ(uniqueBlockName(*D.F, "then"), "then.1");
}

TEST(CFGUtilsTest, BlocksReachingTarget) {
  Diamond D;
  auto Reaches = blocksReaching(*D.F, D.Then);
  EXPECT_TRUE(Reaches[D.Entry->number()]);
  EXPECT_TRUE(Reaches[D.Then->number()]);
  EXPECT_FALSE(Reaches[D.Else->number()]);
  EXPECT_FALSE(Reaches[D.Join->number()]);
}

TEST(CFGUtilsTest, BlocksReachingInLoopIncludesBody) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.jmp(Header);
  B.setInsertBlock(Header);
  B.br(Operand::reg(0), Body, Exit);
  B.setInsertBlock(Body);
  B.jmp(Header);
  B.setInsertBlock(Exit);
  B.ret();
  // Body reaches itself via the back edge through header.
  auto Reaches = blocksReaching(*F, Body);
  EXPECT_TRUE(Reaches[Entry->number()]);
  EXPECT_TRUE(Reaches[Header->number()]);
  EXPECT_TRUE(Reaches[Body->number()]);
  EXPECT_FALSE(Reaches[Exit->number()]);
}

TEST(CFGUtilsTest, BlocksReachableFromSource) {
  Diamond D;
  auto Reached = blocksReachableFrom(*D.F, D.Then);
  EXPECT_FALSE(Reached[D.Entry->number()]);
  EXPECT_TRUE(Reached[D.Then->number()]);
  EXPECT_FALSE(Reached[D.Else->number()]);
  EXPECT_TRUE(Reached[D.Join->number()]);
}
