//===- PrinterParserTest.cpp - Round-trip tests for the textual format ------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/VoltaListing.h"

#include "TestIR.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// Parses, expecting success.
std::unique_ptr<Module> parseOk(const std::string &Text) {
  ParseResult R = parseModule(Text);
  for (const auto &E : R.Errors)
    ADD_FAILURE() << E;
  EXPECT_TRUE(R.ok());
  return std::move(R.M);
}

/// A representative module exercising every operand kind.
std::unique_ptr<Module> buildRichModule() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(4096);

  Function *Helper = M->createFunction("helper", 1);
  Helper->setReconvergeAtEntry(true);
  {
    IRBuilder B(Helper);
    B.startBlock("entry");
    unsigned R = B.mul(Operand::reg(0), Operand::imm(3));
    B.ret(Operand::reg(R));
  }

  Function *F = M->createFunction("kernel", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  B.predict(Hot);
  B.joinBarrier(0);
  B.jmp(Loop);

  B.setInsertBlock(Loop);
  unsigned R = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned C = B.cmpLT(Operand::reg(R), Operand::imm(50));
  B.br(Operand::reg(C), Hot, Exit);

  B.setInsertBlock(Hot);
  B.waitBarrier(0);
  B.rejoinBarrier(0);
  unsigned V = B.call(Helper, {Operand::reg(T)});
  unsigned A = B.arrivedCount(1);
  B.softWait(2, Operand::imm(8));
  B.atomicAdd(Operand::imm(0), Operand::reg(V));
  B.store(Operand::imm(1), Operand::reg(A));
  B.jmp(Loop);

  B.setInsertBlock(Exit);
  B.cancelBarrier(0);
  B.warpSync();
  B.ret();

  F->recomputePreds();
  return M;
}

} // namespace

TEST(PrinterTest, InstructionFormats) {
  Module M;
  Function *F = M.createFunction("f", 2);
  IRBuilder B(F);
  B.startBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  unsigned R = B.add(Operand::reg(0), Operand::imm(-7));
  EXPECT_EQ(printInstruction(F->entry()->inst(0)),
            "%2 = add %0, -7");
  B.store(Operand::reg(R), Operand::reg(1));
  EXPECT_EQ(printInstruction(F->entry()->inst(1)), "store %2, %1");
  B.joinBarrier(3);
  EXPECT_EQ(printInstruction(F->entry()->inst(2)), "joinbar b3");
  B.predict(Next);
  EXPECT_EQ(printInstruction(F->entry()->inst(3)), "predict next");
  B.jmp(Next);
  EXPECT_EQ(printInstruction(F->entry()->inst(4)), "jmp next");
}

TEST(PrinterTest, FunctionHeaderIncludesAttributes) {
  Module M;
  Function *F = M.createFunction("f", 2);
  F->setReconvergeAtEntry(true);
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret();
  std::string S = printFunction(*F);
  EXPECT_NE(S.find("func @f(2) reconverge_entry {"), std::string::npos);
}

TEST(ParserTest, MinimalModule) {
  auto M = parseOk("memory 128\n"
                   "func @main(0) {\n"
                   "entry:\n"
                   "  ret\n"
                   "}\n");
  ASSERT_TRUE(M);
  EXPECT_EQ(M->globalMemoryWords(), 128u);
  Function *F = M->functionByName("main");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->entry()->terminator().opcode(), Opcode::Ret);
}

TEST(ParserTest, ForwardFunctionReference) {
  auto M = parseOk("func @a(0) {\n"
                   "entry:\n"
                   "  %0 = call @b\n"
                   "  ret %0\n"
                   "}\n"
                   "func @b(0) {\n"
                   "entry:\n"
                   "  ret 1\n"
                   "}\n");
  ASSERT_TRUE(M);
  const Instruction &Call = M->functionByName("a")->entry()->inst(0);
  EXPECT_EQ(Call.operand(0).getFunc(), M->functionByName("b"));
}

TEST(ParserTest, ForwardBlockReference) {
  auto M = parseOk("func @f(1) {\n"
                   "entry:\n"
                   "  br %0, later, later\n"
                   "later:\n"
                   "  ret\n"
                   "}\n");
  ASSERT_TRUE(M);
  Function *F = M->functionByName("f");
  EXPECT_EQ(F->entry()->successors()[0]->name(), "later");
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  auto M = parseOk("; leading comment\n"
                   "memory 64\n"
                   "\n"
                   "func @f(0) { ; trailing comment\n"
                   "entry:\n"
                   "\n"
                   "  nop ; mid comment\n"
                   "  ret\n"
                   "}\n");
  ASSERT_TRUE(M);
  EXPECT_EQ(M->functionByName("f")->entry()->size(), 2u);
}

TEST(ParserTest, ReportsUnknownOpcode) {
  ParseResult R = parseModule("func @f(0) {\nentry:\n  frobnicate\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("unknown opcode"), std::string::npos);
}

TEST(ParserTest, ReportsUnknownBlock) {
  ParseResult R = parseModule("func @f(0) {\nentry:\n  jmp nowhere\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("unknown block"), std::string::npos);
}

TEST(ParserTest, ReportsDuplicateFunction) {
  ParseResult R = parseModule("func @f(0) {\nentry:\n  ret\n}\n"
                              "func @f(0) {\nentry:\n  ret\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("duplicate function"), std::string::npos);
}

TEST(ParserTest, ReportsDuplicateBlock) {
  ParseResult R =
      parseModule("func @f(0) {\nentry:\n  nop\nentry:\n  ret\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("duplicate block"), std::string::npos);
}

TEST(ParserTest, ReportsDestinationMismatch) {
  ParseResult R = parseModule("func @f(0) {\nentry:\n  %0 = nop\n  ret\n}\n");
  ASSERT_FALSE(R.ok());
}

TEST(RoundTripTest, RichModuleSurvivesPrintParsePrint) {
  auto M = buildRichModule();
  ASSERT_TRUE(verifyModule(*M).empty());
  std::string First = printModule(*M);
  ParseResult R = parseModule(First);
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
  ASSERT_TRUE(verifyModule(*R.M).empty());
  EXPECT_EQ(printModule(*R.M), First);
}

TEST(RoundTripTest, ParsedModuleIsStructurallyFaithful) {
  auto M = buildRichModule();
  ParseResult R = parseModule(printModule(*M));
  ASSERT_TRUE(R.ok());
  Function *K = R.M->functionByName("kernel");
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->size(), 4u);
  EXPECT_TRUE(R.M->functionByName("helper")->reconvergeAtEntry());
  // The predict annotation survives and points at the right label.
  const Instruction &Pred = K->entry()->inst(1);
  EXPECT_EQ(Pred.opcode(), Opcode::Predict);
  EXPECT_EQ(Pred.operand(0).getBlock()->name(), "hot");
}

TEST(RoundTripPropertyTest, RandomCfgModulesRoundTrip) {
  // Print -> parse -> print must be the identity on arbitrary CFGs.
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    auto M = simtsr::testir::randomCfg(Seed, 10);
    std::string First = printModule(*M);
    ParseResult R = parseModule(First);
    ASSERT_TRUE(R.ok()) << "seed " << Seed
                        << (R.Errors.empty() ? "" : ": " + R.Errors[0]);
    EXPECT_EQ(printModule(*R.M), First) << "seed " << Seed;
  }
}

TEST(RoundTripPropertyTest, EveryOpcodeRoundTrips) {
  // One representative instruction per opcode, printed and reparsed.
  Module M;
  Function *Callee = M.createFunction("g", 1);
  {
    IRBuilder B(Callee);
    B.startBlock("entry");
    B.ret(Operand::reg(0));
  }
  Function *F = M.createFunction("all", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  BasicBlock *Other = F->createBlock("other");

  B.setInsertBlock(Entry);
  unsigned R = B.tid();
  for (Opcode Op :
       {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div, Opcode::Rem,
        Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Shl, Opcode::Shr,
        Opcode::Min, Opcode::Max, Opcode::CmpEQ, Opcode::CmpNE,
        Opcode::CmpLT, Opcode::CmpLE, Opcode::CmpGT, Opcode::CmpGE})
    R = B.binary(Op, Operand::reg(R), Operand::imm(3));
  R = B.notOp(Operand::reg(R));
  R = B.neg(Operand::reg(R));
  R = B.mov(Operand::reg(R));
  R = B.select(Operand::reg(R), Operand::imm(1), Operand::imm(2));
  B.laneId();
  B.warpSize();
  B.rand();
  B.randRange(Operand::imm(0), Operand::imm(9));
  unsigned L = B.load(Operand::imm(0));
  B.store(Operand::imm(1), Operand::reg(L));
  B.atomicAdd(Operand::imm(2), Operand::imm(1));
  B.call(Callee, {Operand::reg(R)});
  B.joinBarrier(0);
  B.waitBarrier(0);
  B.rejoinBarrier(0);
  B.cancelBarrier(0);
  B.softWait(1, Operand::imm(5));
  B.arrivedCount(1);
  B.warpSync();
  B.predict(Other);
  B.nop();
  B.br(Operand::reg(R), Next, Other);
  B.setInsertBlock(Next);
  B.jmp(Other);
  B.setInsertBlock(Other);
  B.ret(Operand::imm(0));
  F->recomputePreds();

  ASSERT_TRUE(verifyModule(M).empty());
  std::string First = printModule(M);
  ParseResult Parsed = parseModule(First);
  ASSERT_TRUE(Parsed.ok()) << (Parsed.Errors.empty() ? "" : Parsed.Errors[0]);
  EXPECT_EQ(printModule(*Parsed.M), First);
}

TEST(VoltaListingTest, MapsPrimitivesPerTable1) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.joinBarrier(0);
  B.waitBarrier(0);
  B.rejoinBarrier(0);
  B.cancelBarrier(0);
  B.softWait(1, Operand::imm(4));
  B.ret();
  std::string Listing = printVoltaListing(*F);
  EXPECT_NE(Listing.find("BSSY    B0            // JoinBarrier"),
            std::string::npos);
  EXPECT_NE(Listing.find("BSYNC   B0            // WaitBarrier"),
            std::string::npos);
  EXPECT_NE(Listing.find("BSSY    B0            // RejoinBarrier"),
            std::string::npos);
  EXPECT_NE(Listing.find("BREAK   B0            // CancelBarrier"),
            std::string::npos);
  EXPECT_NE(Listing.find("BSYNC.SOFT B1, 4"), std::string::npos);
  // Non-barrier instructions pass through as-is.
  EXPECT_NE(Listing.find("ret"), std::string::npos);
}
