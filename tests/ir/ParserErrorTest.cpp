//===- ParserErrorTest.cpp - Parser and verifier error paths -------------------===//

#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

std::string firstErrorOf(const std::string &Text) {
  ParseResult R = parseModule(Text);
  EXPECT_FALSE(R.ok());
  return R.Errors.empty() ? "" : R.Errors[0];
}

} // namespace

TEST(ParserErrorTest, MissingClosingBrace) {
  EXPECT_NE(firstErrorOf("func @f(0) {\nentry:\n  ret\n").find("missing '}'"),
            std::string::npos);
}

TEST(ParserErrorTest, InstructionBeforeFirstLabel) {
  EXPECT_NE(firstErrorOf("func @f(0) {\n  nop\nentry:\n  ret\n}\n")
                .find("before first block label"),
            std::string::npos);
}

TEST(ParserErrorTest, MalformedFunctionHeader) {
  EXPECT_NE(firstErrorOf("func f(0) {\nentry:\n  ret\n}\n")
                .find("malformed function header"),
            std::string::npos);
}

TEST(ParserErrorTest, BadMemoryDirective) {
  EXPECT_NE(firstErrorOf("memory lots\n").find("memory size"),
            std::string::npos);
}

TEST(ParserErrorTest, RegisterWithoutNumber) {
  EXPECT_NE(firstErrorOf("func @f(0) {\nentry:\n  %x = tid\n  ret\n}\n")
                .find("register number"),
            std::string::npos);
}

TEST(ParserErrorTest, BarrierOperandExpected) {
  EXPECT_NE(firstErrorOf("func @f(0) {\nentry:\n  joinbar %0\n  ret\n}\n")
                .find("barrier register"),
            std::string::npos);
}

TEST(ParserErrorTest, BarrierIdOutOfRangeCaughtByVerifier) {
  // b99 parses (syntax allows any index); the verifier rejects it.
  ParseResult R =
      parseModule("func @f(0) {\nentry:\n  joinbar b99\n  ret\n}\n");
  ASSERT_TRUE(R.ok());
  auto Diags = verifyModule(*R.M);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("barrier register out of range"),
            std::string::npos);
}

TEST(ParserErrorTest, UnknownCallTarget) {
  EXPECT_NE(
      firstErrorOf("func @f(0) {\nentry:\n  %0 = call @ghost\n  ret\n}\n")
          .find("unknown function"),
      std::string::npos);
}

TEST(ParserErrorTest, DanglingOperandComma) {
  ParseResult R =
      parseModule("func @f(0) {\nentry:\n  %0 = add 1,\n  ret\n}\n");
  EXPECT_FALSE(R.ok());
}

TEST(ParserErrorTest, EmptyInputIsAnEmptyModule) {
  ParseResult R = parseModule("");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.M->size(), 0u);
}
