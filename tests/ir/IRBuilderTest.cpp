//===- IRBuilderTest.cpp - Tests for IR construction ------------------------===//

#include "ir/IRBuilder.h"

#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace simtsr;

TEST(IRBuilderTest, ParamsOccupyLowRegisters) {
  Module M;
  Function *F = M.createFunction("f", 3);
  EXPECT_EQ(F->numRegs(), 3u);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned R = B.add(Operand::reg(0), Operand::reg(1));
  EXPECT_EQ(R, 3u);
  EXPECT_EQ(F->numRegs(), 4u);
}

TEST(IRBuilderTest, BinaryEmitsExpectedInstruction) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *BB = B.startBlock("entry");
  unsigned R = B.mul(Operand::imm(6), Operand::imm(7));
  B.ret(Operand::reg(R));
  ASSERT_EQ(BB->size(), 2u);
  const Instruction &I = BB->inst(0);
  EXPECT_EQ(I.opcode(), Opcode::Mul);
  EXPECT_EQ(I.dst(), R);
  EXPECT_EQ(I.operand(0).getImm(), 6);
  EXPECT_EQ(I.operand(1).getImm(), 7);
}

TEST(IRBuilderTest, BranchProducesTwoSuccessors) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), Then, Else);
  auto Succs = Entry->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], Then);
  EXPECT_EQ(Succs[1], Else);
}

TEST(IRBuilderTest, RetHasNoSuccessors) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *BB = B.startBlock("entry");
  B.ret();
  EXPECT_TRUE(BB->successors().empty());
  EXPECT_TRUE(BB->hasTerminator());
}

TEST(IRBuilderTest, RecomputePredsPopulatesPredecessors) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), Then, Join);
  B.setInsertBlock(Then);
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.ret();
  F->recomputePreds();
  EXPECT_EQ(Entry->predecessors().size(), 0u);
  EXPECT_EQ(Then->predecessors().size(), 1u);
  EXPECT_EQ(Join->predecessors().size(), 2u);
}

TEST(IRBuilderTest, CallStoresCalleeAndArgs) {
  Module M;
  Function *Callee = M.createFunction("g", 2);
  {
    IRBuilder B(Callee);
    B.startBlock("entry");
    B.ret(Operand::reg(0));
  }
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *BB = B.startBlock("entry");
  unsigned R = B.call(Callee, {Operand::imm(1), Operand::imm(2)});
  B.ret(Operand::reg(R));
  const Instruction &I = BB->inst(0);
  EXPECT_EQ(I.opcode(), Opcode::Call);
  EXPECT_EQ(I.operand(0).getFunc(), Callee);
  EXPECT_EQ(I.numOperands(), 3u);
}

TEST(IRBuilderTest, FirstRealIndexSkipsAnnotationsAndBarriers) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *BB = B.startBlock("entry");
  BasicBlock *Label = F->createBlock("label");
  B.predict(Label);
  B.joinBarrier(0);
  B.waitBarrier(0);
  unsigned R = B.add(Operand::imm(1), Operand::imm(2));
  B.ret(Operand::reg(R));
  B.setInsertBlock(Label);
  B.ret();
  EXPECT_EQ(BB->firstRealIndex(), 3u);
}

TEST(IRBuilderTest, InsertBeforeTerminatorKeepsTerminatorLast) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *BB = B.startBlock("entry");
  B.ret();
  BB->insertBeforeTerminator(Instruction(Opcode::Nop, NoRegister, {}));
  ASSERT_EQ(BB->size(), 2u);
  EXPECT_EQ(BB->inst(0).opcode(), Opcode::Nop);
  EXPECT_TRUE(BB->hasTerminator());
}

TEST(IRBuilderTest, CreateBlockAfterMaintainsLayoutOrder) {
  Module M;
  Function *F = M.createFunction("f", 0);
  BasicBlock *A = F->createBlock("a");
  BasicBlock *C = F->createBlock("c");
  BasicBlock *NewB = F->createBlockAfter(A, "b");
  EXPECT_EQ(F->block(0), A);
  EXPECT_EQ(F->block(1), NewB);
  EXPECT_EQ(F->block(2), C);
  EXPECT_EQ(NewB->number(), 1u);
  EXPECT_EQ(C->number(), 2u);
}

TEST(IRBuilderTest, ModuleFunctionLookup) {
  Module M;
  Function *F = M.createFunction("kernel", 0);
  EXPECT_EQ(M.functionByName("kernel"), F);
  EXPECT_EQ(M.functionByName("nope"), nullptr);
}
