//===- FuzzTest.cpp - Torture-harness component tests ---------------------===//
///
/// \file
/// Unit coverage for the torture subsystem itself: the kernel generator's
/// determinism and well-formedness invariants, the differential oracle's
/// clean path, fault injection actually being caught, and the shrinker
/// producing a smaller module that still fails the same way.
///
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace simtsr;

namespace {

GenOptions genOptions(uint64_t Seed) {
  GenOptions G;
  G.Seed = Seed;
  return G;
}

unsigned countOpcode(const Module &M, Opcode Op) {
  unsigned N = 0;
  for (size_t FI = 0; FI < M.size(); ++FI)
    for (const BasicBlock *BB : *M.function(FI))
      for (const Instruction &I : BB->instructions())
        if (I.opcode() == Op)
          ++N;
  return N;
}

} // namespace

TEST(FuzzTest, GeneratorIsDeterministicPerSeed) {
  EXPECT_EQ(generateKernelText(genOptions(42)),
            generateKernelText(genOptions(42)));
  EXPECT_NE(generateKernelText(genOptions(0)),
            generateKernelText(genOptions(1)));
}

TEST(FuzzTest, GeneratedModulesParseAndVerify) {
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    std::string Text = generateKernelText(genOptions(Seed));
    ParseResult P = parseModule(Text);
    ASSERT_TRUE(P.Errors.empty())
        << "seed " << Seed << ": " << P.Errors.front();
    auto Diags = verifyModule(*P.M);
    EXPECT_TRUE(Diags.empty()) << "seed " << Seed << ": " << Diags.front();
    EXPECT_NE(P.M->functionByName("kernel"), nullptr);
  }
}

TEST(FuzzTest, OracleIsCleanOnGeneratedKernels) {
  OracleOptions Opts;
  for (uint64_t Seed : {0, 3, 7}) {
    std::string Text = generateKernelText(genOptions(Seed));
    OracleResult R = runDifferentialOracle(Text, Opts);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": "
                        << getFailureKindName(R.Kind) << ": " << R.Detail;
    // The full cross product ran: every catalog config x 3 policies.
    EXPECT_EQ(R.Runs.size(), oracleConfigNames().size() * 3);
  }
}

TEST(FuzzTest, OracleSweepsMeldConfigsAgainstTheReference) {
  // The melding configs ride the oracle's config axis like every other
  // catalog entry: a clean verdict means each one's checksum matched the
  // reference config under all three policies, i.e. melding preserved
  // the per-thread semantics on these torture kernels.
  const std::vector<std::string> &Names = oracleConfigNames();
  for (const char *Meld : {"meld", "meld+sr", "meld+sr+ip"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Meld), Names.end())
        << Meld;

  OracleOptions Opts;
  for (uint64_t Seed : {1, 11, 29}) {
    std::string Text = generateKernelText(genOptions(Seed));
    OracleResult R = runDifferentialOracle(Text, Opts);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": "
                        << getFailureKindName(R.Kind) << ": " << R.Detail;
    // Every meld config actually produced its three policy runs.
    for (const char *Meld : {"meld", "meld+sr", "meld+sr+ip"}) {
      unsigned Runs = 0;
      for (const OracleRun &Run : R.Runs)
        if (Run.Config == Meld)
          ++Runs;
      EXPECT_EQ(Runs, 3u) << "seed " << Seed << " config " << Meld;
    }
  }
}

TEST(FuzzTest, OracleCatchesInjectedMiscompile) {
  std::string Text = generateKernelText(genOptions(0));
  OracleOptions Opts;
  Opts.Inject = FaultInjection::SwapBranchTargets;
  OracleResult R = runDifferentialOracle(Text, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Kind, FailureKind::ChecksumMismatch) << R.Detail;
  EXPECT_NE(R.Detail.find("sr"), std::string::npos) << R.Detail;
}

TEST(FuzzTest, ShrinkerMinimizesAndPreservesTheFailure) {
  std::string Text = generateKernelText(genOptions(0));
  ShrinkOptions Opts;
  Opts.Oracle.Inject = FaultInjection::SwapBranchTargets;

  ShrinkResult S = shrinkFailingModule(Text, FailureKind::ChecksumMismatch,
                                       Opts);
  EXPECT_EQ(S.Kind, FailureKind::ChecksumMismatch);
  EXPECT_GT(S.StepsAccepted, 0u);
  EXPECT_LT(S.Text.size(), Text.size());

  // The shrunk text is a standalone repro: it still fails the same way.
  OracleResult Replay = runDifferentialOracle(S.Text, Opts.Oracle);
  ASSERT_FALSE(Replay.ok());
  EXPECT_EQ(Replay.Kind, FailureKind::ChecksumMismatch) << Replay.Detail;
}

TEST(FuzzTest, ShrinkerReturnsInputWhenFailureDoesNotReproduce) {
  std::string Text = generateKernelText(genOptions(0));
  ShrinkOptions Opts; // No injection: the kernel is clean.
  ShrinkResult S = shrinkFailingModule(Text, FailureKind::Deadlock, Opts);
  EXPECT_EQ(S.StepsAccepted, 0u);
  EXPECT_EQ(S.Text, Text);
}

TEST(FuzzTest, DropCancelsInjectionRemovesEveryCancel) {
  // Cancels are produced by the SR/deconfliction passes, so inject after a
  // pipeline run, exactly as the oracle does for its "sr" config.
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    std::string Text = generateKernelText(genOptions(Seed));
    ParseResult P = parseModule(Text);
    ASSERT_TRUE(P.Errors.empty());
    runSyncPipeline(*P.M, PipelineOptions::speculative());
    unsigned Before = countOpcode(*P.M, Opcode::CancelBarrier);
    unsigned Removed = injectFault(*P.M, FaultInjection::DropCancels);
    EXPECT_EQ(Removed, Before);
    EXPECT_EQ(countOpcode(*P.M, Opcode::CancelBarrier), 0u);
  }
}

TEST(FuzzTest, SwapBranchTargetsInjectionCountsSites) {
  std::string Text = generateKernelText(genOptions(0));
  ParseResult P = parseModule(Text);
  ASSERT_TRUE(P.Errors.empty());
  unsigned Branches = countOpcode(*P.M, Opcode::Br);
  unsigned Swapped = injectFault(*P.M, FaultInjection::SwapBranchTargets);
  EXPECT_EQ(Swapped, Branches);
  EXPECT_GT(Swapped, 0u);
}
