//===- ShrinkerProgressTest.cpp - Progress-livelock shrinking -------------===//
///
/// \file
/// The progress axis adds a failure kind the shrinker must preserve:
/// FailureKind::ProgressLivelock, a run that stops under a weak
/// forward-progress model while its fair counterpart finishes. The
/// invariant a shrunk repro must keep is two-sided — it still livelocks
/// under the weak model AND still passes under fair — because a mutation
/// that turns the kernel into a genuine deadlock would "reproduce" under
/// the weak model for the wrong reason.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// A barrier whose release needs lanes the weakest HSA scheduler never
/// runs: lane 0 blocks at the barrier first, and HSA serves only the
/// oldest live lane's group, so the arrivals that would release it are
/// unreachable. Fair scheduling finishes. The padding arithmetic gives
/// the shrinker something to remove.
const char *HsaOnlyLivelock = R"(memory 64
func @kernel(0) {
entry:
  %0 = laneid
  joinbar b0
  %1 = cmplt %0, 1
  %2 = add %0, 7
  %3 = mul %2, 3
  store %0, %3
  br %1, fast, slow
fast:
  waitbar b0
  jmp exit
slow:
  %4 = add %0, 1
  %5 = mul %4, 5
  store %4, %5
  waitbar b0
  jmp exit
exit:
  ret
}
)";

OracleOptions hsaSweep(OracleOptions::ProgressVerdict Verdict) {
  OracleOptions Opts;
  ProgressSpec Hsa;
  EXPECT_TRUE(parseProgressSpec("hsa", Hsa));
  Opts.ProgressModels = {ProgressSpec{}, Hsa};
  Opts.OnProgressLivelock = Verdict;
  return Opts;
}

} // namespace

TEST(ShrinkerProgressTest, ClassifyModeRecordsWithoutFailing) {
  OracleResult R = runDifferentialOracle(
      HsaOnlyLivelock, hsaSweep(OracleOptions::ProgressVerdict::Classify));
  EXPECT_TRUE(R.ok()) << getFailureKindName(R.Kind) << ": " << R.Detail;
  EXPECT_FALSE(R.ProgressLivelocks.empty());
}

TEST(ShrinkerProgressTest, FailModePromotesToProgressLivelock) {
  OracleResult R = runDifferentialOracle(
      HsaOnlyLivelock, hsaSweep(OracleOptions::ProgressVerdict::Fail));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Kind, FailureKind::ProgressLivelock) << R.Detail;
  EXPECT_NE(R.Detail.find("hsa"), std::string::npos) << R.Detail;
}

TEST(ShrinkerProgressTest, ShrunkReproKeepsBothSidesOfTheVerdict) {
  ShrinkOptions Opts;
  Opts.Oracle = hsaSweep(OracleOptions::ProgressVerdict::Fail);

  ShrinkResult S = shrinkFailingModule(HsaOnlyLivelock,
                                       FailureKind::ProgressLivelock, Opts);
  EXPECT_EQ(S.Kind, FailureKind::ProgressLivelock);
  EXPECT_GT(S.StepsAccepted, 0u);
  EXPECT_LT(S.Text.size(), std::string(HsaOnlyLivelock).size());

  // Still a progress livelock under the weak sweep...
  OracleResult Weak = runDifferentialOracle(S.Text, Opts.Oracle);
  ASSERT_FALSE(Weak.ok());
  EXPECT_EQ(Weak.Kind, FailureKind::ProgressLivelock) << Weak.Detail;

  // ...and still clean under the fair-only legacy sweep: the shrinker did
  // not trade the livelock for a genuine scheduling-independent failure.
  OracleOptions FairOnly;
  OracleResult Fair = runDifferentialOracle(S.Text, FairOnly);
  EXPECT_TRUE(Fair.ok()) << getFailureKindName(Fair.Kind) << ": "
                         << Fair.Detail;
}
