//===- OracleParallelTest.cpp - Parallel vs sequential oracle verdicts ------===//
//
// The differential oracle can run its six pipeline configurations
// concurrently; the verdict must be bit-identical to the sequential cross
// product — same Kind, same Detail string, same Runs prefix — including
// when an injected fault makes a mid-sequence config fail.
//
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"
#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

void expectIdentical(const OracleResult &Par, const OracleResult &Seq,
                     uint64_t Seed) {
  EXPECT_EQ(Par.Kind, Seq.Kind) << "seed " << Seed;
  EXPECT_EQ(Par.Detail, Seq.Detail) << "seed " << Seed;
  ASSERT_EQ(Par.Runs.size(), Seq.Runs.size()) << "seed " << Seed;
  for (size_t I = 0; I < Par.Runs.size(); ++I) {
    EXPECT_EQ(Par.Runs[I].Config, Seq.Runs[I].Config) << "seed " << Seed;
    EXPECT_EQ(Par.Runs[I].Policy, Seq.Runs[I].Policy) << "seed " << Seed;
    EXPECT_EQ(Par.Runs[I].St, Seq.Runs[I].St) << "seed " << Seed;
    EXPECT_EQ(Par.Runs[I].Checksum, Seq.Runs[I].Checksum)
        << "seed " << Seed;
  }
}

OracleOptions smallOptions() {
  OracleOptions Opts;
  Opts.WarpSize = 8;
  Opts.MaxIssueSlots = 2'000'000;
  Opts.MaxWallMillis = 10'000;
  return Opts;
}

} // namespace

TEST(OracleParallelTest, CleanKernelsProduceIdenticalVerdicts) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    GenOptions Gen;
    Gen.Seed = Seed;
    const std::string Text = generateKernelText(Gen);

    OracleOptions Opts = smallOptions();
    Opts.Parallel = true;
    OracleResult Par = runDifferentialOracle(Text, Opts);
    Opts.Parallel = false;
    OracleResult Seq = runDifferentialOracle(Text, Opts);

    expectIdentical(Par, Seq, Seed);
    EXPECT_TRUE(Seq.ok()) << "seed " << Seed << ": " << Seq.Detail;
    // A clean sweep records the full 6-config x 3-policy cross product.
    EXPECT_EQ(Seq.Runs.size(), oracleConfigNames().size() * 3) << Seed;
  }
}

TEST(OracleParallelTest, InjectedFaultsCaughtIdentically) {
  unsigned Caught = 0;
  for (FaultInjection Inject :
       {FaultInjection::SwapBranchTargets, FaultInjection::DropCancels}) {
    for (uint64_t Seed = 0; Seed < 8; ++Seed) {
      GenOptions Gen;
      Gen.Seed = Seed;
      const std::string Text = generateKernelText(Gen);

      OracleOptions Opts = smallOptions();
      Opts.Inject = Inject;
      // Deadlock detection needs a watchdog tight enough for tests.
      Opts.MaxWallMillis = 5'000;
      Opts.Parallel = true;
      OracleResult Par = runDifferentialOracle(Text, Opts);
      Opts.Parallel = false;
      OracleResult Seq = runDifferentialOracle(Text, Opts);

      expectIdentical(Par, Seq, Seed);
      if (!Seq.ok())
        ++Caught;
    }
  }
  // The injections must actually bite on some seeds, or this test proves
  // only that two no-ops agree.
  EXPECT_GT(Caught, 0u);
}

TEST(OracleParallelTest, RejectsBrokenInputIdentically) {
  for (const char *Text :
       {"this is not sir", "memory 64\nfunc @main()\nentry:\n  ret\n"}) {
    OracleOptions Opts = smallOptions();
    Opts.Parallel = true;
    OracleResult Par = runDifferentialOracle(Text, Opts);
    Opts.Parallel = false;
    OracleResult Seq = runDifferentialOracle(Text, Opts);
    EXPECT_EQ(Par.Kind, Seq.Kind);
    EXPECT_EQ(Par.Detail, Seq.Detail);
    EXPECT_FALSE(Seq.ok());
  }
}
