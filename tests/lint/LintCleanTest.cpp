//===- LintCleanTest.cpp - Zero-false-positive acceptance -----------------===//
///
/// \file
/// The analyzer's acceptance bar from the issue: a clean bill (no errors,
/// no warnings — notes allowed) on the paper's figure shapes raw, and on
/// the whole Table 2 workload suite under every standard pipeline
/// configuration. Any failure here is a false positive by construction:
/// these modules all simulate to completion under every scheduler.
///
//===----------------------------------------------------------------------===//

#include "TestIR.h"
#include "kernels/Workload.h"
#include "lint/ConvergenceLint.h"
#include "transform/BarrierVerifier.h"
#include "transform/PassStage.h"
#include "transform/Pipeline.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace simtsr;

namespace {

std::string gateSummary(const lint::LintResult &R) {
  std::string Out;
  for (const std::string &S : R.gateStrings())
    Out += S + "\n";
  return Out;
}

} // namespace

TEST(LintCleanTest, Listing1ShapesAreClean) {
  for (bool WithBarriers : {false, true}) {
    testir::Listing1 L(WithBarriers);
    const lint::LintResult R = lint::runConvergenceLint(*L.M);
    EXPECT_TRUE(R.clean()) << "WithBarriers=" << WithBarriers << "\n"
                           << gateSummary(R);
  }
}

TEST(LintCleanTest, WorkloadSuiteIsCleanUnderEveryPipeline) {
  const std::vector<Workload> Suite = makeAllWorkloads(0.25);
  for (const std::string &Config : standardPipelineNames()) {
    const std::optional<PipelineSpec> PO = standardPipelineSpec(Config);
    ASSERT_TRUE(PO.has_value()) << Config;
    for (const Workload &W : Suite) {
      auto M = W.M->clone();
      PipelineReport Report = runSyncPipeline(*M, *PO);
      // The pipeline gate itself runs the lint; a dirty report here is
      // already a false positive.
      EXPECT_TRUE(Report.clean())
          << W.Name << " [" << Config << "]: "
          << (Report.VerifierDiagnostics.empty()
                  ? ""
                  : Report.VerifierDiagnostics.front());
      // And a direct origin-aware run agrees. After realloc the registry
      // origins are stale, so that config is linted origin-blind — the
      // same choice the CLI and the torture oracle make.
      const bool Reallocs =
          std::find(PO->Stages.begin(), PO->Stages.end(), "realloc") !=
          PO->Stages.end();
      lint::LintOptions LO;
      if (!Reallocs)
        LO = lintOptionsFromRegistry(Report.Registry);
      const lint::LintResult R = lint::runConvergenceLint(*M, LO);
      EXPECT_TRUE(R.clean())
          << W.Name << " [" << Config << "]\n" << gateSummary(R);
    }
  }
}

TEST(LintCleanTest, RawWorkloadsAreClean) {
  for (const Workload &W : makeAllWorkloads(0.25)) {
    const lint::LintResult R = lint::runConvergenceLint(*W.M);
    EXPECT_TRUE(R.clean()) << W.Name << "\n" << gateSummary(R);
  }
}
