//===- LintDetectorTest.cpp - Seeded-defect corpus checks -----------------===//
///
/// \file
/// Every detector in the convergence lint must fire on its seeded-defect
/// corpus file (tests/lint/corpus/) at the expected location and severity,
/// and must NOT fire where the sibling detector owns the defect (e.g. a
/// non-dominating overwrite is realloc-overlap, never double-join).
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "ir/Parser.h"
#include "lint/ConvergenceLint.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace simtsr;
using namespace simtsr::lint;

namespace {

std::unique_ptr<Module> loadCorpus(const std::string &Name) {
  const std::string Path = std::string(SIMTSR_LINT_CORPUS_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Text;
  Text << In.rdbuf();
  ParseResult P = parseModule(Text.str());
  EXPECT_TRUE(P.ok()) << (P.Errors.empty() ? "?" : P.Errors.front());
  return std::move(P.M);
}

/// First diagnostic of \p K, or nullptr.
const LintDiagnostic *firstOf(const LintResult &R, LintKind K) {
  for (const LintDiagnostic &D : R.Diagnostics)
    if (D.Kind == K)
      return &D;
  return nullptr;
}

} // namespace

TEST(LintDetectorTest, JoinLeakMustAndMay) {
  auto M = loadCorpus("join_leak.sir");
  const LintResult R = runConvergenceLint(*M);
  ASSERT_EQ(R.countKind(LintKind::JoinLeak), 2u);
  // @kernel leaks on every path: an error, anchored at the ret block.
  const LintDiagnostic *Must = nullptr;
  for (const LintDiagnostic &D : R.Diagnostics)
    if (D.Kind == LintKind::JoinLeak && D.Function == "kernel")
      Must = &D;
  ASSERT_NE(Must, nullptr);
  EXPECT_EQ(Must->Severity, LintSeverity::Error);
  EXPECT_EQ(Must->Barrier, 1u);
  EXPECT_NE(Must->Witness.find("joined at"), std::string::npos);
  // @may_leak joins on one arm only: a warning.
  bool SawMay = false;
  for (const LintDiagnostic &D : R.Diagnostics)
    if (D.Kind == LintKind::JoinLeak && D.Function == "may_leak") {
      SawMay = true;
      EXPECT_EQ(D.Severity, LintSeverity::Warning);
      EXPECT_EQ(D.Block, "out");
    }
  EXPECT_TRUE(SawMay);
  // Neither join has a reachable discharge: dead-join fires too.
  EXPECT_EQ(R.countKind(LintKind::DeadJoin), 2u);
  EXPECT_FALSE(R.clean());
}

TEST(LintDetectorTest, DoubleJoinRequiresDominatingPendingSite) {
  auto M = loadCorpus("double_join.sir");
  const LintResult R = runConvergenceLint(*M);
  ASSERT_EQ(R.countKind(LintKind::DoubleJoin), 1u);
  const LintDiagnostic *D = firstOf(R, LintKind::DoubleJoin);
  EXPECT_EQ(D->Function, "kernel");
  EXPECT_EQ(D->Block, "entry");
  EXPECT_EQ(D->Severity, LintSeverity::Error); // Pending on every path.
  EXPECT_NE(D->Witness.find("orphans the join"), std::string::npos);
  // The wait then gathers the overwritten membership.
  EXPECT_EQ(R.countKind(LintKind::ReallocOverlap), 1u);
}

TEST(LintDetectorTest, ReallocOverlapWithoutDominance) {
  auto M = loadCorpus("realloc_overlap.sir");
  const LintResult R = runConvergenceLint(*M);
  // The arm join does not dominate the merge join: this is the folded
  // live-range signature, not a double join.
  EXPECT_EQ(R.countKind(LintKind::DoubleJoin), 0u);
  ASSERT_EQ(R.countKind(LintKind::ReallocOverlap), 1u);
  const LintDiagnostic *D = firstOf(R, LintKind::ReallocOverlap);
  EXPECT_EQ(D->Function, "kernel");
  EXPECT_EQ(D->Block, "merge");
  EXPECT_EQ(D->Severity, LintSeverity::Warning);
  EXPECT_EQ(D->Barrier, 4u);
}

TEST(LintDetectorTest, UnjoinedWaitIsANoteAndDoesNotGate) {
  auto M = loadCorpus("unjoined_wait.sir");
  const LintResult R = runConvergenceLint(*M);
  ASSERT_EQ(R.countKind(LintKind::UnjoinedWait), 2u);
  for (const LintDiagnostic &D : R.Diagnostics) {
    if (D.Kind == LintKind::UnjoinedWait) {
      EXPECT_EQ(D.Severity, LintSeverity::Note);
    }
  }
  // Dynamically benign (an empty or partial participant set releases
  // immediately): the module still gets a clean bill.
  EXPECT_TRUE(R.clean());
  EXPECT_TRUE(R.gateStrings().empty());
}

TEST(LintDetectorTest, DeadlockCycleIsProven) {
  auto M = loadCorpus("deadlock_cycle.sir");
  const LintResult R = runConvergenceLint(*M);
  ASSERT_EQ(R.countKind(LintKind::DeadlockCycle), 1u);
  EXPECT_TRUE(R.ProvenDeadlock);
  const LintDiagnostic *D = firstOf(R, LintKind::DeadlockCycle);
  EXPECT_EQ(D->Severity, LintSeverity::Error);
  EXPECT_EQ(D->Function, "kernel");
  EXPECT_NE(D->Message.find("guaranteed cross-barrier deadlock"),
            std::string::npos);
  EXPECT_NE(D->Witness.find("part ways"), std::string::npos);
}

TEST(LintDetectorTest, InterprocObligationNotDischarged) {
  auto M = loadCorpus("interproc_leak.sir");
  const LintResult R = runConvergenceLint(*M);
  ASSERT_EQ(R.countKind(LintKind::InterprocLeak), 1u);
  const LintDiagnostic *D = firstOf(R, LintKind::InterprocLeak);
  EXPECT_EQ(D->Function, "kernel");
  EXPECT_EQ(D->Barrier, 5u);
  EXPECT_NE(D->Message.find("@taker"), std::string::npos);
  // The callee discharges on one path, so the join is NOT dead (the call
  // may gather it) — the leak is charged to the obligation, not the join.
  EXPECT_EQ(R.countKind(LintKind::DeadJoin), 0u);
}

TEST(LintDetectorTest, SoftThresholdRange) {
  auto M = loadCorpus("soft_threshold.sir");
  const LintResult R = runConvergenceLint(*M);
  ASSERT_EQ(R.countKind(LintKind::SoftThreshold), 2u);
  unsigned Warnings = 0, Notes = 0;
  for (const LintDiagnostic &D : R.Diagnostics) {
    if (D.Kind != LintKind::SoftThreshold)
      continue;
    if (D.Severity == LintSeverity::Warning) {
      ++Warnings;
      EXPECT_NE(D.Message.find("exceeding the warp width"),
                std::string::npos);
    } else {
      ++Notes;
      EXPECT_NE(D.Message.find("releases the barrier immediately"),
                std::string::npos);
    }
  }
  EXPECT_EQ(Warnings, 1u); // Threshold 64 > warp width.
  EXPECT_EQ(Notes, 1u);    // Threshold 0: degenerate but legal.
  // A larger configured warp absorbs the 64-thread gather.
  LintOptions Wide;
  Wide.WarpSize = 64;
  auto M2 = loadCorpus("soft_threshold.sir");
  EXPECT_EQ(runConvergenceLint(*M2, Wide).countKind(LintKind::SoftThreshold),
            1u);
}

TEST(LintDetectorTest, RecursiveCallGraphIsANote) {
  auto M = loadCorpus("recursion.sir");
  const LintResult R = runConvergenceLint(*M);
  ASSERT_EQ(R.countKind(LintKind::Recursion), 1u);
  const LintDiagnostic *D = firstOf(R, LintKind::Recursion);
  EXPECT_EQ(D->Severity, LintSeverity::Note);
  EXPECT_TRUE(D->Function.empty()); // Module-level finding.
  EXPECT_TRUE(R.clean());
}

TEST(LintDetectorTest, BlockedWhileJoinedNeedsOrigins) {
  auto M = loadCorpus("blocked_while_joined.sir");
  // Origin-blind: the PDOM range fully encloses the speculative one
  // (inclusive nesting), so the conflict filter keeps it quiet.
  EXPECT_EQ(runConvergenceLint(*M).countKind(LintKind::BlockedWhileJoined),
            0u);
  // With the registry's origins the deconfliction hazard is a warning.
  LintOptions Opts;
  Opts.OriginAware = true;
  Opts.Origins[7] = LintOrigin::Pdom;
  Opts.Origins[8] = LintOrigin::Speculative;
  auto M2 = loadCorpus("blocked_while_joined.sir");
  const LintResult R = runConvergenceLint(*M2, Opts);
  ASSERT_EQ(R.countKind(LintKind::BlockedWhileJoined), 1u);
  const LintDiagnostic *D = firstOf(R, LintKind::BlockedWhileJoined);
  EXPECT_EQ(D->Severity, LintSeverity::Warning);
  EXPECT_NE(D->Message.find("PDOM barrier b7 still joined at speculative "
                            "wait on b8"),
            std::string::npos);
}

TEST(LintDetectorTest, CallHazardBlocksOnEntryBarrier) {
  LintOptions Opts;
  Opts.OriginAware = true;
  Opts.Origins[9] = LintOrigin::Interproc;
  Opts.Origins[7] = LintOrigin::Pdom;
  auto M = loadCorpus("call_hazard.sir");
  const LintResult R = runConvergenceLint(*M, Opts);
  ASSERT_EQ(R.countKind(LintKind::CallHazard), 1u);
  const LintDiagnostic *D = firstOf(R, LintKind::CallHazard);
  EXPECT_EQ(D->Severity, LintSeverity::Warning);
  EXPECT_EQ(D->Function, "kernel");
  EXPECT_EQ(D->Barrier, 7u);
  EXPECT_NE(D->Message.find("@gather"), std::string::npos);
  // Origin-blind the same shape is only a note: an ordinary callee-side
  // wait is indistinguishable from an entry gather without origins.
  auto M2 = loadCorpus("call_hazard.sir");
  const LintResult Blind = runConvergenceLint(*M2);
  for (const LintDiagnostic &D2 : Blind.Diagnostics) {
    if (D2.Kind == LintKind::CallHazard) {
      EXPECT_EQ(D2.Severity, LintSeverity::Note);
    }
  }
}
