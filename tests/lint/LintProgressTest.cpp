//===- LintProgressTest.cpp - Corpus verdicts per progress model ----------===//
///
/// \file
/// Runs every seeded-defect corpus kernel through the simulator under each
/// forward-progress model and pins the full verdict matrix. The corpus was
/// seeded for the *static* analyzer; this matrix records what each defect
/// does *dynamically* under fair scheduling and under the weaker hardware
/// models (docs/PROGRESS.md) — including the kernels whose verdict flips:
///
///  - deadlock_cycle: a genuine cross-barrier deadlock under fair becomes
///    a progress-livelock under hsa (the blocked oldest lane masks the
///    cycle) and vanishes entirely under obe (serialized lanes never hold
///    both barriers at once).
///  - interproc_leak: clean under fair but livelocks under hsa — the
///    model, not the kernel, decides the verdict. This is why the torture
///    oracle classifies weak-model stops instead of failing on them.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "ir/Parser.h"
#include "sim/Warp.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace simtsr;

namespace {

struct CorpusVerdicts {
  const char *File;
  const char *Fair;
  const char *Hsa;
  const char *Obe1;
  const char *Obe2;
  const char *Bounded4;
};

// Full matrix over the corpus, fixed file order (matches LintGoldenTest).
// "finished" rows are pinned too: a defect that starts livelocking under a
// weak model is a behaviour change worth a deliberate update here.
const CorpusVerdicts Matrix[] = {
    // file                   fair        hsa                  obe:1       obe:2       bounded:4
    {"blocked_while_joined.sir", "finished", "finished", "finished",
     "finished", "finished"},
    {"call_hazard.sir", "finished", "finished", "finished", "finished",
     "finished"},
    {"deadlock_cycle.sir", "deadlock", "progress-livelock", "finished",
     "finished", "deadlock"},
    {"double_join.sir", "finished", "finished", "finished", "finished",
     "finished"},
    {"interproc_leak.sir", "finished", "progress-livelock", "finished",
     "finished", "finished"},
    {"join_leak.sir", "finished", "finished", "finished", "finished",
     "finished"},
    {"realloc_overlap.sir", "finished", "finished", "finished", "finished",
     "finished"},
    {"recursion.sir", "finished", "finished", "finished", "finished",
     "finished"},
    {"soft_threshold.sir", "finished", "finished", "finished", "finished",
     "finished"},
    {"unjoined_wait.sir", "finished", "finished", "finished", "finished",
     "finished"},
};

std::unique_ptr<Module> parseCorpusFile(const char *Name) {
  const std::string Path = std::string(SIMTSR_LINT_CORPUS_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Text;
  Text << In.rdbuf();
  ParseResult P = parseModule(Text.str());
  EXPECT_TRUE(P.ok()) << Name;
  return std::move(P.M);
}

std::string verdictUnder(const Module &M, const char *Spec) {
  LaunchConfig C;
  EXPECT_TRUE(parseProgressSpec(Spec, C.Progress)) << Spec;
  WarpSimulator Sim(M, M.functionByName("kernel"), C);
  return getRunStatusName(Sim.run().St);
}

} // namespace

TEST(LintProgressTest, CorpusVerdictMatrixIsPinned) {
  for (const CorpusVerdicts &Row : Matrix) {
    auto M = parseCorpusFile(Row.File);
    ASSERT_TRUE(M) << Row.File;
    EXPECT_EQ(verdictUnder(*M, "fair"), Row.Fair) << Row.File;
    EXPECT_EQ(verdictUnder(*M, "hsa"), Row.Hsa) << Row.File;
    EXPECT_EQ(verdictUnder(*M, "obe:1"), Row.Obe1) << Row.File;
    EXPECT_EQ(verdictUnder(*M, "obe:2"), Row.Obe2) << Row.File;
    EXPECT_EQ(verdictUnder(*M, "bounded:4"), Row.Bounded4) << Row.File;
  }
}

TEST(LintProgressTest, AtLeastOneVerdictFlipsUnderAWeakerModel) {
  // The acceptance bar for the progress axis: a corpus kernel whose
  // verdict depends on the model, not the kernel. Guard it explicitly so
  // a corpus rewrite cannot silently drop the property the progress
  // classification exists for.
  bool Flipped = false;
  for (const CorpusVerdicts &Row : Matrix)
    if (std::string(Row.Fair) != Row.Hsa || std::string(Row.Fair) != Row.Obe1)
      Flipped = true;
  EXPECT_TRUE(Flipped);
}

TEST(LintProgressTest, WeakModelsNeverInventTraps) {
  // A weak progress model may stop a run early (progress-livelock) but
  // must never change what the executed instructions do: no corpus kernel
  // traps under any model, because restricting the schedule cannot create
  // a fault that fair scheduling cannot reach.
  for (const CorpusVerdicts &Row : Matrix) {
    auto M = parseCorpusFile(Row.File);
    ASSERT_TRUE(M) << Row.File;
    for (const char *Spec : {"fair", "hsa", "obe:1", "obe:2", "bounded:4"})
      EXPECT_NE(verdictUnder(*M, Spec), "trap") << Row.File << " " << Spec;
  }
}
