//===- LintGoldenTest.cpp - Golden diagnostic output ----------------------===//
///
/// \file
/// The exact diagnostic stream over the seeded-defect corpus is golden:
/// any change to detector wording, ordering, severity, or witness text
/// shows up as a diff against tests/lint/LintGolden.txt. Regenerate with
/// SIMTSR_UPDATE_GOLDEN=1 (same convention as the trace digest goldens).
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "ir/Parser.h"
#include "lint/ConvergenceLint.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace simtsr;

namespace {

/// Fixed corpus order; file names double as section headers.
const char *CorpusFiles[] = {
    "blocked_while_joined.sir",
    "call_hazard.sir",
    "deadlock_cycle.sir",
    "double_join.sir",
    "interproc_leak.sir",
    "join_leak.sir",
    "realloc_overlap.sir",
    "recursion.sir",
    "soft_threshold.sir",
    "unjoined_wait.sir",
    "unrepairable_race.sir",
};

std::string renderCorpus() {
  std::string Out;
  for (const char *Name : CorpusFiles) {
    const std::string Path =
        std::string(SIMTSR_LINT_CORPUS_DIR) + "/" + Name;
    std::ifstream In(Path);
    EXPECT_TRUE(In.good()) << Path;
    std::ostringstream Text;
    Text << In.rdbuf();
    ParseResult P = parseModule(Text.str());
    EXPECT_TRUE(P.ok()) << Name;
    Out += std::string("== ") + Name + "\n";
    // Origin-blind, deterministic default options: the corpus files that
    // need origins assert their origin-aware findings in the detector
    // test; the golden pins the byte-exact default stream.
    const lint::LintResult R = lint::runConvergenceLint(*P.M);
    for (const lint::LintDiagnostic &D : R.Diagnostics)
      Out += "  " + D.format() + "\n";
  }
  return Out;
}

} // namespace

TEST(LintGoldenTest, CorpusDiagnosticsMatchGolden) {
  const std::string Actual = renderCorpus();
  const char *GoldenPath = SIMTSR_LINT_GOLDEN_FILE;
  if (std::getenv("SIMTSR_UPDATE_GOLDEN")) {
    std::ofstream Out(GoldenPath);
    ASSERT_TRUE(Out.good()) << "cannot write " << GoldenPath;
    Out << "# Golden convergence-lint diagnostics over tests/lint/corpus.\n"
        << "# Regenerate: SIMTSR_UPDATE_GOLDEN=1 ./lint_tests "
        << "--gtest_filter=LintGoldenTest.*\n"
        << Actual;
    GTEST_SKIP() << "golden regenerated";
  }
  std::ifstream In(GoldenPath);
  ASSERT_TRUE(In.good()) << "missing " << GoldenPath
                         << " (generate with SIMTSR_UPDATE_GOLDEN=1)";
  std::string Expected, Line;
  while (std::getline(In, Line))
    if (!Line.empty() && Line[0] == '#')
      continue;
    else
      Expected += Line + "\n";
  EXPECT_EQ(Actual, Expected)
      << "diagnostic stream drifted; regenerate with SIMTSR_UPDATE_GOLDEN=1 "
         "if the change is intended";
}
