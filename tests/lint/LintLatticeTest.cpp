//===- LintLatticeTest.cpp - Barrier-state lattice algebra ----------------===//
///
/// \file
/// The relational domain underneath the convergence lint is pure constexpr
/// bit algebra; these tests pin down its laws — identity, composition,
/// forcing, projection — independent of any CFG.
///
//===----------------------------------------------------------------------===//

#include "lint/BarrierLattice.h"

#include <gtest/gtest.h>

using namespace simtsr::lint;

namespace {

constexpr Relation Id = identityRelation();

// The laws hold at compile time; the EXPECTs below just surface them in
// test output.
static_assert(relationDomain(Id) == AllStates);
static_assert(composeRelation(Id, Id) == Id);
static_assert(projectRelation(Id, stateBit(BState::Joined)) ==
              stateBit(BState::Joined));
static_assert(forceState(Id, BState::Waited) ==
              (relationPair(BState::Unjoined, BState::Waited) |
               relationPair(BState::Joined, BState::Waited) |
               relationPair(BState::Waited, BState::Waited) |
               relationPair(BState::Cancelled, BState::Waited)));

TEST(LintLatticeTest, IdentityIsNeutralForComposition) {
  // Exhaustive: every relation R satisfies Id;R == R;Id == R.
  for (unsigned Bits = 0; Bits <= 0xFFFF; ++Bits) {
    const Relation R = static_cast<Relation>(Bits);
    EXPECT_EQ(composeRelation(Id, R), R);
    // Composing with Id on the right keeps exactly the pairs whose
    // current state exists, i.e. all of them.
    EXPECT_EQ(composeRelation(R, Id), R);
  }
}

TEST(LintLatticeTest, CompositionIsAssociative) {
  // Spot-check associativity on a structured sample (all single-pair
  // relations, plus identity and a join/wait transfer).
  std::vector<Relation> Sample{Id, forceState(Id, BState::Joined),
                               forceState(Id, BState::Waited)};
  for (unsigned F = 0; F < NumBStates; ++F)
    for (unsigned T = 0; T < NumBStates; ++T)
      Sample.push_back(
          relationPair(static_cast<BState>(F), static_cast<BState>(T)));
  for (Relation A : Sample)
    for (Relation B : Sample)
      for (Relation C : Sample)
        EXPECT_EQ(composeRelation(composeRelation(A, B), C),
                  composeRelation(A, composeRelation(B, C)));
}

TEST(LintLatticeTest, ForceStateModelsBarrierOps) {
  // join-then-wait from any entry state ends Waited regardless of entry.
  const Relation JoinThenWait =
      forceState(forceState(Id, BState::Joined), BState::Waited);
  for (unsigned S = 0; S < NumBStates; ++S)
    EXPECT_EQ(projectRelation(JoinThenWait, static_cast<StateMask>(1u << S)),
              stateBit(BState::Waited));
  // Forcing never changes the domain: whoever could enter still can.
  EXPECT_EQ(relationDomain(JoinThenWait), AllStates);
}

TEST(LintLatticeTest, ProjectionDistributesOverUnion) {
  const Relation R = relationPair(BState::Unjoined, BState::Joined) |
                     relationPair(BState::Joined, BState::Waited);
  const StateMask U = stateBit(BState::Unjoined);
  const StateMask J = stateBit(BState::Joined);
  EXPECT_EQ(projectRelation(R, static_cast<StateMask>(U | J)),
            static_cast<StateMask>(projectRelation(R, U) |
                                   projectRelation(R, J)));
  // Projecting through a state with no pairs yields the empty set.
  EXPECT_EQ(projectRelation(R, stateBit(BState::Cancelled)), 0);
}

TEST(LintLatticeTest, RelationHasMatchesPairConstruction) {
  for (unsigned F = 0; F < NumBStates; ++F)
    for (unsigned T = 0; T < NumBStates; ++T) {
      const Relation P =
          relationPair(static_cast<BState>(F), static_cast<BState>(T));
      for (unsigned F2 = 0; F2 < NumBStates; ++F2)
        for (unsigned T2 = 0; T2 < NumBStates; ++T2)
          EXPECT_EQ(relationHas(P, static_cast<BState>(F2),
                                static_cast<BState>(T2)),
                    F == F2 && T == T2);
    }
}

/// The call-summary distinction the BitDataflow mask cannot make:
/// "joined on every path" vs "joined on some path" survive composition
/// differently.
TEST(LintLatticeTest, MustVsMaySurvivesComposition) {
  // Callee A: always waits an inherited join (J -> W), identity otherwise.
  Relation Always = Id;
  Always &= static_cast<Relation>(
      ~(static_cast<Relation>(AllStates)
        << (NumBStates * static_cast<unsigned>(BState::Joined))));
  Always |= relationPair(BState::Joined, BState::Waited);
  // Callee B: waits on one path, leaves it pending on another.
  const Relation Sometimes =
      Always | relationPair(BState::Joined, BState::Joined);

  const StateMask FromJoin = stateBit(BState::Joined);
  EXPECT_EQ(projectRelation(Always, FromJoin), stateBit(BState::Waited));
  EXPECT_EQ(projectRelation(Sometimes, FromJoin),
            static_cast<StateMask>(stateBit(BState::Waited) |
                                   stateBit(BState::Joined)));
  // Chaining through a second leak-free callee keeps the distinction.
  EXPECT_EQ(projectRelation(composeRelation(Sometimes, Always), FromJoin),
            stateBit(BState::Waited));
}

} // namespace
