//===- LintOracleTest.cpp - Static-vs-dynamic cross-check -----------------===//
///
/// \file
/// The torture oracle's lint cross-check (OracleOptions::LintCheck) must
/// flag disagreement in both directions: a dynamic barrier failure on a
/// module the analyzer called clean (rule 1), and an analyzer-proven
/// deadlock that every scheduler policy survives (rule 2). And on clean
/// kernels the two sides must agree silently.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

OracleOptions lintOpts() {
  OracleOptions Opts;
  Opts.LintCheck = true;
  Opts.MaxWallMillis = 30'000;
  return Opts;
}

/// Uniform straight-line kernel: clean under every config and policy, and
/// under the analyzer.
const char *CleanKernel = R"(memory 64
func @kernel(0) {
entry:
  %0 = tid
  joinbar b0
  waitbar b0
  store %0, %0
  ret
}
)";

/// Rule 1: the analyzer has no classic/soft mixing detector, so this
/// module gets a clean bill — but at run time the warp splits and both
/// sides block on the same joined barrier (the soft threshold of 32
/// exceeds either side's arrival count), so whichever side arrives second
/// mixes wait flavours and the barrier unit traps. The cancel keeps the
/// soft arm's exit discipline clean; it is never reached before the trap.
const char *MixedWaitKernel = R"(memory 64
func @kernel(0) {
entry:
  joinbar b0
  %0 = tid
  %1 = cmplt %0, 16
  br %1, classic, soft
classic:
  waitbar b0
  ret
soft:
  softwait b0, 32
  cancelbar b0
  ret
}
)";

/// Rule 2 seed: gate-clean as written (each arm cancels the barrier the
/// other arm waits on), but dropping the cancels leaves the textbook
/// cross-barrier cycle — which never deadlocks dynamically, because the
/// branch is uniform at run time (tid < 64 always holds for a warp).
const char *CancelGuardedKernel = R"(memory 64
func @kernel(0) {
entry:
  joinbar b1
  joinbar b2
  %0 = tid
  %1 = cmplt %0, 64
  br %1, armB, armA
armA:
  cancelbar b2
  waitbar b1
  ret
armB:
  cancelbar b1
  waitbar b2
  ret
}
)";

} // namespace

TEST(LintOracleTest, CleanKernelAgrees) {
  const OracleResult R = runDifferentialOracle(CleanKernel, lintOpts());
  EXPECT_TRUE(R.ok()) << getFailureKindName(R.Kind) << ": " << R.Detail;
  // Every config was linted and reported into the repro lines.
  EXPECT_EQ(R.LintLines.size(), oracleConfigNames().size());
  for (const std::string &Line : R.LintLines)
    EXPECT_NE(Line.find("0 errors, 0 warnings"), std::string::npos) << Line;
}

TEST(LintOracleTest, DynamicBarrierTrapOnCleanBillIsMismatch) {
  // Sanity: without the cross-check this is an ordinary trap verdict.
  OracleOptions Plain = lintOpts();
  Plain.LintCheck = false;
  const OracleResult Base = runDifferentialOracle(MixedWaitKernel, Plain);
  ASSERT_EQ(Base.Kind, FailureKind::Trap) << Base.Detail;
  ASSERT_NE(Base.Detail.find("barrier"), std::string::npos) << Base.Detail;

  const OracleResult R = runDifferentialOracle(MixedWaitKernel, lintOpts());
  EXPECT_EQ(R.Kind, FailureKind::LintMismatch)
      << getFailureKindName(R.Kind) << ": " << R.Detail;
  EXPECT_NE(R.Detail.find("clean bill"), std::string::npos) << R.Detail;
}

TEST(LintOracleTest, ProvenDeadlockThatRunsCleanIsMismatch) {
  // As written, both sides agree the kernel is fine.
  {
    const OracleResult R =
        runDifferentialOracle(CancelGuardedKernel, lintOpts());
    EXPECT_TRUE(R.ok()) << getFailureKindName(R.Kind) << ": " << R.Detail;
  }
  // A broken late pass deletes the cancels after the gate ran. The
  // analyzer now proves a cross-barrier cycle on the 'sr' module, but the
  // dynamically-uniform branch means every policy still finishes.
  OracleOptions Opts = lintOpts();
  Opts.Inject = FaultInjection::DropCancels;
  const OracleResult R = runDifferentialOracle(CancelGuardedKernel, Opts);
  EXPECT_EQ(R.Kind, FailureKind::LintMismatch)
      << getFailureKindName(R.Kind) << ": " << R.Detail;
  EXPECT_NE(R.Detail.find("lint proved"), std::string::npos) << R.Detail;
}
