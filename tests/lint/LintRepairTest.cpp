//===- LintRepairTest.cpp - Repair synthesizer over the corpus ------------===//
///
/// \file
/// Every corpus file carries a `; repair:` label (clean / repairable /
/// unrepairable) and the synthesizer must agree with it: clean files come
/// back byte-identical, repairable files reach a lint-clean fixpoint that
/// the differential oracle certifies, and the unrepairable file survives
/// static repair only to fail certification. The exact status + edit
/// stream is golden (tests/lint/RepairGolden.txt); regenerate with
/// SIMTSR_UPDATE_GOLDEN=1.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "kernels/Workload.h"
#include "lint/ConvergenceLint.h"
#include "lint/Repair.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace simtsr;

namespace {

/// Fixed corpus order, matching LintGoldenTest.
const char *CorpusFiles[] = {
    "blocked_while_joined.sir",
    "call_hazard.sir",
    "deadlock_cycle.sir",
    "double_join.sir",
    "interproc_leak.sir",
    "join_leak.sir",
    "realloc_overlap.sir",
    "recursion.sir",
    "soft_threshold.sir",
    "unjoined_wait.sir",
    "unrepairable_race.sir",
};

std::string readCorpusFile(const char *Name) {
  const std::string Path = std::string(SIMTSR_LINT_CORPUS_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Text;
  Text << In.rdbuf();
  return Text.str();
}

/// Extracts the `; repair: <label>` annotation ("" when missing).
std::string repairLabel(const std::string &Text) {
  const std::string Tag = "; repair: ";
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind(Tag, 0) == 0)
      return Line.substr(Tag.size());
  return "";
}

} // namespace

TEST(LintRepairTest, EveryCorpusFileIsLabeled) {
  for (const char *Name : CorpusFiles) {
    const std::string Label = repairLabel(readCorpusFile(Name));
    EXPECT_TRUE(Label == "clean" || Label == "repairable" ||
                Label == "unrepairable")
        << Name << ": bad or missing '; repair:' label '" << Label << "'";
  }
}

TEST(LintRepairTest, LabelsMatchSynthesis) {
  for (const char *Name : CorpusFiles) {
    const std::string Text = readCorpusFile(Name);
    const std::string Label = repairLabel(Text);
    ParseResult P = parseModule(Text);
    ASSERT_TRUE(P.ok()) << Name;
    const lint::RepairOutcome R = lint::synthesizeRepair(*P.M);
    if (Label == "clean") {
      EXPECT_EQ(R.Status, lint::RepairStatus::Clean) << Name;
      EXPECT_TRUE(R.Edits.empty()) << Name;
      // Untouched means untouched: the printed result is the printed
      // input, so --fix-out is digest-stable on clean modules.
      EXPECT_EQ(R.RepairedText, printModule(*P.M)) << Name;
    } else {
      // Both repairable and unrepairable files must reach a lint-clean
      // fixpoint statically; the unrepairable one is rejected dynamically
      // (RepairableCorpusCertifies).
      EXPECT_EQ(R.Status, lint::RepairStatus::Repaired) << Name;
      EXPECT_FALSE(R.Edits.empty()) << Name;
      EXPECT_TRUE(R.FinalLint.clean()) << Name;
    }
  }
}

/// Round trip: every repaired module re-parses, re-lints clean, and a
/// second fix iteration is a byte-stable no-op.
TEST(LintRepairTest, RepairedModulesRoundTrip) {
  for (const char *Name : CorpusFiles) {
    const std::string Text = readCorpusFile(Name);
    ParseResult P = parseModule(Text);
    ASSERT_TRUE(P.ok()) << Name;
    const lint::RepairOutcome R = lint::synthesizeRepair(*P.M);
    ParseResult Again = parseModule(R.RepairedText);
    ASSERT_TRUE(Again.ok()) << Name << ": repaired text does not re-parse";
    EXPECT_TRUE(lint::runConvergenceLint(*Again.M).clean()) << Name;
    const lint::RepairOutcome Second = lint::synthesizeRepair(*Again.M);
    EXPECT_EQ(Second.Status, lint::RepairStatus::Clean) << Name;
    EXPECT_TRUE(Second.Edits.empty()) << Name;
    EXPECT_EQ(Second.RepairedText, R.RepairedText)
        << Name << ": second fix iteration is not byte-stable";
  }
}

/// Edits replay: applying the serialized edit list to a fresh parse of the
/// original reproduces the repaired text exactly — the edit list IS the
/// patch.
TEST(LintRepairTest, EditListReplays) {
  for (const char *Name : CorpusFiles) {
    const std::string Text = readCorpusFile(Name);
    ParseResult P = parseModule(Text);
    ASSERT_TRUE(P.ok()) << Name;
    const lint::RepairOutcome R = lint::synthesizeRepair(*P.M);
    ParseResult Fresh = parseModule(Text);
    ASSERT_TRUE(Fresh.ok()) << Name;
    for (const lint::RepairEdit &E : R.Edits) {
      std::string Err;
      ASSERT_TRUE(lint::applyRepairEdit(*Fresh.M, E, &Err))
          << Name << ": " << E.format() << ": " << Err;
    }
    EXPECT_EQ(printModule(*Fresh.M), R.RepairedText) << Name;
  }
}

/// The status + edit stream over the corpus is golden, like the
/// diagnostic stream (LintGoldenTest).
TEST(LintRepairTest, CorpusRepairsMatchGolden) {
  std::string Actual;
  for (const char *Name : CorpusFiles) {
    const std::string Text = readCorpusFile(Name);
    ParseResult P = parseModule(Text);
    ASSERT_TRUE(P.ok()) << Name;
    const lint::RepairOutcome R = lint::synthesizeRepair(*P.M);
    Actual += std::string("== ") + Name + "\n";
    Actual += std::string("  status: ") + lint::getRepairStatusName(R.Status) +
              "\n";
    for (const lint::RepairEdit &E : R.Edits)
      Actual += "  edit: " + E.format() + "\n";
    if (!R.BlockingWitness.empty())
      Actual += "  blocking witness: " + R.BlockingWitness + "\n";
  }
  const char *GoldenPath = SIMTSR_LINT_REPAIR_GOLDEN_FILE;
  if (std::getenv("SIMTSR_UPDATE_GOLDEN")) {
    std::ofstream Out(GoldenPath);
    ASSERT_TRUE(Out.good()) << "cannot write " << GoldenPath;
    Out << "# Golden repair synthesis over tests/lint/corpus.\n"
        << "# Regenerate: SIMTSR_UPDATE_GOLDEN=1 ./lint_tests "
        << "--gtest_filter=LintRepairTest.CorpusRepairsMatchGolden\n"
        << Actual;
    GTEST_SKIP() << "golden regenerated";
  }
  std::ifstream In(GoldenPath);
  ASSERT_TRUE(In.good()) << "missing " << GoldenPath
                         << " (generate with SIMTSR_UPDATE_GOLDEN=1)";
  std::string Expected, Line;
  while (std::getline(In, Line))
    if (!Line.empty() && Line[0] == '#')
      continue;
    else
      Expected += Line + "\n";
  EXPECT_EQ(Actual, Expected)
      << "repair stream drifted; regenerate with SIMTSR_UPDATE_GOLDEN=1 "
         "if the change is intended";
}

/// Dynamic certification: every repairable corpus repair passes the
/// differential oracle under the fair model plus every weak progress
/// model, and the unrepairable file's statically-clean repair is rejected
/// with a checksum mismatch — the proof that static cleanliness alone is
/// not the acceptance bar.
TEST(LintRepairTest, RepairableCorpusCertifies) {
  for (const char *Name : CorpusFiles) {
    const std::string Text = readCorpusFile(Name);
    const std::string Label = repairLabel(Text);
    if (Label == "clean")
      continue;
    ParseResult P = parseModule(Text);
    ASSERT_TRUE(P.ok()) << Name;
    const lint::RepairOutcome R = lint::synthesizeRepair(*P.M);
    ASSERT_EQ(R.Status, lint::RepairStatus::Repaired) << Name;
    const RepairCertification C = certifyRepair(R.RepairedText, {});
    if (Label == "repairable") {
      EXPECT_TRUE(C.Certified) << Name << ": " << C.Detail;
      EXPECT_GT(C.Runs, 0u) << Name;
    } else {
      EXPECT_FALSE(C.Certified)
          << Name << ": schedule-observing repair must not certify";
      EXPECT_NE(C.Detail.find("checksum-mismatch"), std::string::npos)
          << Name << ": " << C.Detail;
    }
  }
}

/// The clean suite is untouched by --fix: every Table 2 workload comes
/// back Clean with zero edits and a printed module byte-identical to
/// printing the input (digest-identical by construction).
TEST(LintRepairTest, CleanSuiteUntouched) {
  for (const Workload &W : makeAllWorkloads(0.25)) {
    const lint::RepairOutcome R = lint::synthesizeRepair(*W.M);
    EXPECT_EQ(R.Status, lint::RepairStatus::Clean) << W.Name;
    EXPECT_TRUE(R.Edits.empty()) << W.Name;
    EXPECT_EQ(R.RepairedText, printModule(*W.M)) << W.Name;
  }
}
