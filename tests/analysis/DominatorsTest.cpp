//===- DominatorsTest.cpp - Tests for (post-)dominator trees -----------------===//

#include "analysis/Dominators.h"

#include "TestIR.h"
#include "ir/CFGUtils.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

TEST(DominatorsTest, Listing1ForwardDominance) {
  Listing1 L;
  DominatorTree DT(*L.F);
  EXPECT_EQ(DT.idom(L.BB0), nullptr);
  EXPECT_EQ(DT.idom(L.BB1), L.BB0);
  EXPECT_EQ(DT.idom(L.BB2), L.BB1);
  EXPECT_EQ(DT.idom(L.BB3), L.BB2);
  EXPECT_EQ(DT.idom(L.BB4), L.BB2);
  EXPECT_EQ(DT.idom(L.BB5), L.BB4);
  EXPECT_TRUE(DT.dominates(L.BB0, L.BB5));
  EXPECT_TRUE(DT.dominates(L.BB2, L.BB3));
  EXPECT_FALSE(DT.dominates(L.BB3, L.BB4));
  EXPECT_TRUE(DT.dominates(L.BB3, L.BB3));
}

TEST(DominatorsTest, Listing1PostDominance) {
  Listing1 L;
  PostDominatorTree PDT(*L.F);
  // bb5 is the sole exit: it post-dominates everything.
  for (BasicBlock *BB : {L.BB0, L.BB1, L.BB2, L.BB3, L.BB4})
    EXPECT_TRUE(PDT.dominates(L.BB5, BB)) << BB->name();
  // bb4 post-dominates the divergent branch and both arms.
  EXPECT_TRUE(PDT.dominates(L.BB4, L.BB2));
  EXPECT_TRUE(PDT.dominates(L.BB4, L.BB3));
  EXPECT_FALSE(PDT.dominates(L.BB3, L.BB2));
  // The IPDOM of the branch's successors is bb4 — the original
  // reconvergence point of the paper.
  EXPECT_EQ(PDT.nearestCommonDominator(L.BB3, L.BB4), L.BB4);
}

TEST(DominatorsTest, NearestCommonDominatorDiamond) {
  Listing1 L;
  DominatorTree DT(*L.F);
  EXPECT_EQ(DT.nearestCommonDominator(L.BB3, L.BB4), L.BB2);
  EXPECT_EQ(DT.nearestCommonDominator(L.BB3, L.BB3), L.BB3);
  EXPECT_EQ(DT.nearestCommonDominator(L.BB0, L.BB5), L.BB0);
}

TEST(DominatorsTest, UnreachableBlockHandled) {
  Listing1 L;
  BasicBlock *Dead = L.F->createBlock("dead");
  IRBuilder B(L.F, Dead);
  B.ret();
  L.F->recomputePreds();
  DominatorTree DT(*L.F);
  EXPECT_FALSE(DT.isReachable(Dead));
  EXPECT_EQ(DT.idom(Dead), nullptr);
  EXPECT_FALSE(DT.dominates(L.BB0, Dead));
  EXPECT_FALSE(DT.dominates(Dead, L.BB0));
  EXPECT_TRUE(DT.dominates(Dead, Dead));
}

TEST(DominatorsTest, MultiExitPostDominance) {
  // entry -> {left(ret), right(ret)}: neither exit post-dominates entry;
  // their nearest common post-dominator is the virtual exit (null).
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Left = F->createBlock("left");
  BasicBlock *Right = F->createBlock("right");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), Left, Right);
  B.setInsertBlock(Left);
  B.ret();
  B.setInsertBlock(Right);
  B.ret();
  PostDominatorTree PDT(*F);
  EXPECT_FALSE(PDT.dominates(Left, Entry));
  EXPECT_FALSE(PDT.dominates(Right, Entry));
  EXPECT_EQ(PDT.nearestCommonDominator(Left, Right), nullptr);
  EXPECT_EQ(PDT.idom(Left), nullptr);
}

namespace {

/// Reference dominance check: A dominates B iff B is unreachable from entry
/// once A is removed from the graph (A != B, both reachable).
bool refDominates(Function &F, BasicBlock *A, BasicBlock *B) {
  if (A == B)
    return true;
  std::vector<bool> Visited(F.size(), false);
  std::vector<BasicBlock *> Worklist;
  if (F.entry() != A) {
    Visited[F.entry()->number()] = true;
    Worklist.push_back(F.entry());
  }
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (BB == B)
      return false;
    for (BasicBlock *Succ : BB->successors()) {
      if (Succ == A || Visited[Succ->number()])
        continue;
      Visited[Succ->number()] = true;
      Worklist.push_back(Succ);
    }
  }
  return true;
}

} // namespace

TEST(DominatorsPropertyTest, MatchesRemovalDefinitionOnRandomCfgs) {
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    auto M = randomCfg(Seed, 10);
    Function &F = *M->functionByName("random");
    DominatorTree DT(F);
    auto Reachable = blocksReachableFrom(F, F.entry());
    for (BasicBlock *A : F) {
      if (!Reachable[A->number()])
        continue;
      for (BasicBlock *B : F) {
        if (!Reachable[B->number()])
          continue;
        EXPECT_EQ(DT.dominates(A, B), refDominates(F, A, B))
            << "seed " << Seed << " " << A->name() << " vs " << B->name();
      }
    }
  }
}

TEST(DominatorsPropertyTest, IdomIsStrictDominatorAndTransitive) {
  for (uint64_t Seed = 100; Seed < 130; ++Seed) {
    auto M = randomCfg(Seed, 12);
    Function &F = *M->functionByName("random");
    DominatorTree DT(F);
    for (BasicBlock *BB : F) {
      if (!DT.isReachable(BB))
        continue;
      if (BasicBlock *Idom = DT.idom(BB)) {
        EXPECT_TRUE(DT.strictlyDominates(Idom, BB));
        // Transitivity via the idom chain.
        if (BasicBlock *Grand = DT.idom(Idom)) {
          EXPECT_TRUE(DT.dominates(Grand, BB));
        }
      }
    }
  }
}

TEST(DominatorsPropertyTest, PostDominanceIsDualOnReversedCfg) {
  // For every pair of reachable blocks, post-dominance must agree with the
  // removal definition applied to paths B -> exit.
  for (uint64_t Seed = 200; Seed < 220; ++Seed) {
    auto M = randomCfg(Seed, 8);
    Function &F = *M->functionByName("random");
    PostDominatorTree PDT(F);
    // Reference: A post-dominates B iff removing A cuts every B->ret path.
    auto refPostDom = [&](BasicBlock *A, BasicBlock *B) {
      if (A == B)
        return true;
      std::vector<bool> Visited(F.size(), false);
      std::vector<BasicBlock *> Worklist;
      if (B != A) {
        Visited[B->number()] = true;
        Worklist.push_back(B);
      }
      while (!Worklist.empty()) {
        BasicBlock *BB = Worklist.back();
        Worklist.pop_back();
        if (BB->hasTerminator() &&
            BB->terminator().opcode() == Opcode::Ret)
          return false;
        for (BasicBlock *Succ : BB->successors()) {
          if (Succ == A || Visited[Succ->number()])
            continue;
          Visited[Succ->number()] = true;
          Worklist.push_back(Succ);
        }
      }
      return true;
    };
    for (BasicBlock *A : F) {
      if (!PDT.isReachable(A))
        continue;
      for (BasicBlock *B : F) {
        if (!PDT.isReachable(B))
          continue;
        EXPECT_EQ(PDT.dominates(A, B), refPostDom(A, B))
            << "seed " << Seed << " " << A->name() << " pdom "
            << B->name();
      }
    }
  }
}
