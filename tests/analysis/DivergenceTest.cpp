//===- DivergenceTest.cpp - Tests for divergence analysis ---------------------===//

#include "analysis/Divergence.h"

#include "TestIR.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

namespace {

DivergenceAnalysis::Options uniformParams() {
  DivergenceAnalysis::Options Opts;
  Opts.ParamsDivergent = false;
  return Opts;
}

} // namespace

TEST(DivergenceTest, TidIsDivergent) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned U = B.mov(Operand::imm(7));
  B.ret();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT);
  EXPECT_TRUE(DA.isDivergentReg(T));
  EXPECT_FALSE(DA.isDivergentReg(U));
  EXPECT_TRUE(DA.hasDivergenceSources());
}

TEST(DivergenceTest, DataDependencePropagates) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned A = B.add(Operand::reg(T), Operand::imm(1));
  unsigned C = B.cmpLT(Operand::reg(A), Operand::imm(5));
  unsigned U = B.mul(Operand::imm(2), Operand::imm(3));
  B.ret();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT);
  EXPECT_TRUE(DA.isDivergentReg(A));
  EXPECT_TRUE(DA.isDivergentReg(C));
  EXPECT_FALSE(DA.isDivergentReg(U));
}

TEST(DivergenceTest, BranchOnRandIsDivergent) {
  Listing1 L;
  PostDominatorTree PDT(*L.F);
  DivergenceAnalysis DA(*L.F, PDT);
  EXPECT_TRUE(DA.isDivergentBranch(L.BB2)); // rand-based condition
  EXPECT_TRUE(DA.isDivergentBranch(L.BB4)); // rand-based loop-again
  EXPECT_FALSE(DA.isDivergentBranch(L.BB0));
}

TEST(DivergenceTest, UniformBranchIsNotDivergent) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned C = B.cmpLT(Operand::reg(0), Operand::imm(5));
  B.br(Operand::reg(C), Then, Join);
  B.setInsertBlock(Then);
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.ret();
  F->recomputePreds();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT, uniformParams());
  EXPECT_FALSE(DA.isDivergentBranch(Entry));
}

TEST(DivergenceTest, ControlDependenceTaintsDefinitions) {
  // A register assigned only on the taken arm of a divergent branch is
  // divergent even though its operands are uniform.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.br(Operand::reg(C), Then, Join);
  B.setInsertBlock(Then);
  unsigned Conditional = B.mov(Operand::imm(1));
  B.jmp(Join);
  B.setInsertBlock(Join);
  unsigned AtPdom = B.mov(Operand::imm(2));
  B.ret();
  F->recomputePreds();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT);
  EXPECT_TRUE(DA.isDivergentReg(Conditional));
  // Defined at the reconvergence point: uniform again.
  EXPECT_FALSE(DA.isDivergentReg(AtPdom));
}

TEST(DivergenceTest, LoadFromUniformAddressIsUniform) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned UniformLoad = B.load(Operand::imm(8));
  unsigned DivergentLoad = B.load(Operand::reg(T));
  B.ret();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT);
  EXPECT_FALSE(DA.isDivergentReg(UniformLoad));
  EXPECT_TRUE(DA.isDivergentReg(DivergentLoad));
}

TEST(DivergenceTest, ParamsDivergentByDefault) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned A = B.add(Operand::reg(0), Operand::imm(1));
  B.ret();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DefaultDA(*F, PDT);
  EXPECT_TRUE(DefaultDA.isDivergentReg(A));
  DivergenceAnalysis UniformDA(*F, PDT, uniformParams());
  EXPECT_FALSE(UniformDA.isDivergentReg(A));
}

TEST(ModuleDivergenceTest, CalleeSummariesRefineCallResults) {
  Module M;
  // uniformFn: returns a constant — uniform.
  Function *UniformFn = M.createFunction("uniform_fn", 0);
  {
    IRBuilder B(UniformFn);
    B.startBlock("entry");
    B.ret(Operand::imm(42));
  }
  // divergentFn: returns tid — divergent.
  Function *DivergentFn = M.createFunction("divergent_fn", 0);
  {
    IRBuilder B(DivergentFn);
    B.startBlock("entry");
    unsigned T = B.tid();
    B.ret(Operand::reg(T));
  }
  Function *Caller = M.createFunction("caller", 0);
  unsigned UniformResult, DivergentResult;
  {
    IRBuilder B(Caller);
    B.startBlock("entry");
    UniformResult = B.call(UniformFn);
    DivergentResult = B.call(DivergentFn);
    B.ret();
  }
  ModuleDivergenceInfo Info(M);
  const DivergenceAnalysis &DA = Info.forFunction(Caller);
  EXPECT_FALSE(DA.isDivergentReg(UniformResult));
  EXPECT_TRUE(DA.isDivergentReg(DivergentResult));
  EXPECT_TRUE(Info.forFunction(DivergentFn).returnsDivergent());
  EXPECT_FALSE(Info.forFunction(UniformFn).returnsDivergent());
}

TEST(ModuleDivergenceTest, DivergentArgumentTaintsUniformCallee) {
  Module M;
  Function *Id = M.createFunction("id", 1);
  {
    IRBuilder B(Id);
    B.startBlock("entry");
    B.ret(Operand::reg(0));
  }
  Function *Caller = M.createFunction("caller", 0);
  unsigned FromUniform, FromDivergent;
  {
    IRBuilder B(Caller);
    B.startBlock("entry");
    unsigned T = B.tid();
    FromUniform = B.call(Id, {Operand::imm(1)});
    FromDivergent = B.call(Id, {Operand::reg(T)});
    B.ret();
  }
  ModuleDivergenceInfo Info(M);
  const DivergenceAnalysis &DA = Info.forFunction(Caller);
  // `id` itself reports divergent return (params conservative), so even the
  // uniform-arg call would be divergent — unless the summary is param-
  // aware. Our summary treats params as divergent, so both are divergent;
  // the critical property is that the divergent-arg call is never missed.
  EXPECT_TRUE(DA.isDivergentReg(FromDivergent));
  (void)FromUniform;
}
