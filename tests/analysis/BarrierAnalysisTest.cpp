//===- BarrierAnalysisTest.cpp - Tests for Section 4.2.1 dataflow -------------===//

#include "analysis/BarrierAnalysis.h"

#include "TestIR.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

namespace {
constexpr uint32_t B0 = 1u << 0;
constexpr uint32_t B1 = 1u << 1;
} // namespace

// Figure 4(b): joined sets for the Listing 1 loop with join at bb0 and wait
// at bb3.
TEST(JoinedBarrierTest, MatchesFigure4b) {
  Listing1 L(/*WithBarriers=*/true);
  JoinedBarrierAnalysis JA(*L.F);
  EXPECT_EQ(JA.out(L.BB0), B0);
  EXPECT_EQ(JA.out(L.BB1), B0);
  EXPECT_EQ(JA.out(L.BB2), B0);
  EXPECT_EQ(JA.out(L.BB3), 0u); // Cleared by the wait.
  // bb4 merges cleared (bb3) and joined (bb2) paths: may-joined = {b0}.
  EXPECT_EQ(JA.out(L.BB4), B0);
  EXPECT_EQ(JA.out(L.BB5), B0);
}

// Figure 4(c): liveness with gen at the wait (bb3) and kill at the join
// (bb0).
TEST(BarrierLivenessTest, MatchesFigure4c) {
  Listing1 L(/*WithBarriers=*/true);
  BarrierLivenessAnalysis LA(*L.F);
  EXPECT_EQ(LA.liveOut(L.BB0), B0);
  EXPECT_EQ(LA.liveOut(L.BB1), B0);
  EXPECT_EQ(LA.liveOut(L.BB2), B0);
  // The loop can re-reach the wait, so the barrier stays live out of bb3
  // and bb4 (Figure 4(c) shows LiveOut = {b0} for both).
  EXPECT_EQ(LA.liveOut(L.BB3), B0);
  EXPECT_EQ(LA.liveOut(L.BB4), B0);
  EXPECT_EQ(LA.liveOut(L.BB5), 0u);
  // The join in bb0 kills liveness above it.
  EXPECT_EQ(LA.liveIn(L.BB0), 0u);
}

TEST(JoinedBarrierTest, InstructionLevelReplay) {
  Listing1 L(/*WithBarriers=*/true);
  JoinedBarrierAnalysis JA(*L.F);
  // bb0: predict | join b0 | jmp — joined flips after the join.
  EXPECT_EQ(JA.before(L.BB0, 1), 0u);
  EXPECT_EQ(JA.after(L.BB0, 1), B0);
  // bb3: wait b0 | expensive | jmp — joined clears at the wait.
  EXPECT_EQ(JA.before(L.BB3, 0), B0);
  EXPECT_EQ(JA.after(L.BB3, 0), 0u);
}

TEST(BarrierLivenessTest, InstructionLevelReplay) {
  Listing1 L(/*WithBarriers=*/true);
  BarrierLivenessAnalysis LA(*L.F);
  // Live before the wait in bb3, dead right before the join in bb0 (the
  // join kills liveness above it).
  EXPECT_EQ(LA.liveBefore(L.BB3, 0) & B0, B0);
  EXPECT_EQ(LA.liveBefore(L.BB0, 1) & B0, 0u);
  // After the join the barrier is live (a wait is reachable).
  EXPECT_EQ(LA.liveAfter(L.BB0, 1) & B0, B0);
}

TEST(JoinedBarrierTest, CancelClearsJoinedState) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  B.setInsertBlock(Entry);
  B.joinBarrier(2);
  B.cancelBarrier(2);
  B.jmp(Next);
  B.setInsertBlock(Next);
  B.ret();
  F->recomputePreds();
  JoinedBarrierAnalysis JA(*F);
  EXPECT_EQ(JA.out(Entry), 0u);
  EXPECT_EQ(JA.in(Next), 0u);
}

TEST(JoinedBarrierTest, RejoinRestoresJoinedState) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  B.joinBarrier(0);
  B.waitBarrier(0);
  B.rejoinBarrier(0);
  B.ret();
  F->recomputePreds();
  JoinedBarrierAnalysis JA(*F);
  EXPECT_EQ(JA.after(Entry, 0), B0);
  EXPECT_EQ(JA.after(Entry, 1), 0u);
  EXPECT_EQ(JA.after(Entry, 2), B0);
}

TEST(BarrierLivenessTest, SoftWaitIsAUse) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  B.setInsertBlock(Entry);
  B.joinBarrier(1);
  B.jmp(Next);
  B.setInsertBlock(Next);
  B.softWait(1, Operand::imm(8));
  B.ret();
  F->recomputePreds();
  BarrierLivenessAnalysis LA(*F);
  EXPECT_EQ(LA.liveOut(Entry), B1);
  EXPECT_EQ(LA.liveIn(Next), B1);
}

// Figure 5(a): the user barrier b0 (join bb0, wait bb3, rejoin bb3, cancel
// on exit) conflicts with the PDOM barrier b1 (join bb2, wait bb4): their
// joined ranges overlap non-inclusively.
TEST(ConflictTest, MatchesFigure5a) {
  Listing1 L(/*WithBarriers=*/true);
  // Add the rejoin the SR pass would place, and the PDOM barrier b1.
  // bb3: wait b0 (already) + rejoin b0 after it.
  L.BB3->insert(1, Instruction(Opcode::RejoinBarrier, NoRegister,
                               {Operand::barrier(0)}));
  // bb2: join b1 before the divergent branch.
  L.BB2->insertBeforeTerminator(
      Instruction(Opcode::JoinBarrier, NoRegister, {Operand::barrier(1)}));
  // bb4: wait b1 at the post-dominator.
  L.BB4->insert(0, Instruction(Opcode::WaitBarrier, NoRegister,
                               {Operand::barrier(1)}));
  BarrierConflictAnalysis CA(*L.F);
  EXPECT_TRUE(CA.conflict(0, 1));
  auto Pairs = CA.conflictingPairs();
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_EQ(Pairs[0], std::make_pair(0u, 1u));
}

TEST(ConflictTest, NestedRangesDoNotConflict) {
  // b1's range nested strictly inside b0's range: inclusive overlap.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.joinBarrier(0);
  B.joinBarrier(1);
  B.waitBarrier(1);
  B.waitBarrier(0);
  B.ret();
  F->recomputePreds();
  BarrierConflictAnalysis CA(*F);
  EXPECT_FALSE(CA.conflict(0, 1));
  EXPECT_TRUE(CA.conflictingPairs().empty());
}

TEST(ConflictTest, DisjointRangesDoNotConflict) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.joinBarrier(0);
  B.waitBarrier(0);
  B.joinBarrier(1);
  B.waitBarrier(1);
  B.ret();
  F->recomputePreds();
  BarrierConflictAnalysis CA(*F);
  EXPECT_FALSE(CA.conflict(0, 1));
}

TEST(ConflictTest, StraddledRangesConflict) {
  // join b0; join b1; wait b0; wait b1 — classic non-inclusive overlap.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.joinBarrier(0);
  B.joinBarrier(1);
  B.waitBarrier(0);
  B.waitBarrier(1);
  B.ret();
  F->recomputePreds();
  BarrierConflictAnalysis CA(*F);
  EXPECT_TRUE(CA.conflict(0, 1));
  EXPECT_EQ(CA.conflict(1, 0), CA.conflict(0, 1));
}

TEST(ConflictTest, UnusedBarrierHasEmptyRange) {
  Listing1 L(/*WithBarriers=*/true);
  BarrierConflictAnalysis CA(*L.F);
  EXPECT_GT(CA.rangeSize(0), 0u);
  EXPECT_EQ(CA.rangeSize(5), 0u);
  EXPECT_FALSE(CA.conflict(0, 5));
}
