//===- EdgeCaseTest.cpp - Analysis edge cases -----------------------------------===//
///
/// Corner cases that production CFGs throw at the analyses: infinite
/// loops (no path to any ret), irreducible control flow (loops with two
/// entries, which are not natural loops), self-loops, and divergence
/// propagation through selects and loop-carried state.
///
//===----------------------------------------------------------------------===//

#include "analysis/Divergence.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include "TestIR.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

TEST(EdgeCaseTest, PostDominanceWithInfiniteLoop) {
  // entry -> spin <-> spin (no ret reachable from spin).
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Spin = F->createBlock("spin");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), Spin, Exit);
  B.setInsertBlock(Spin);
  B.jmp(Spin);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();
  PostDominatorTree PDT(*F);
  // Spin cannot reach an exit: unreachable in the reverse graph.
  EXPECT_FALSE(PDT.isReachable(Spin));
  EXPECT_TRUE(PDT.isReachable(Entry));
  EXPECT_TRUE(PDT.dominates(Exit, Entry));
  EXPECT_FALSE(PDT.dominates(Exit, Spin));
  EXPECT_EQ(PDT.nearestCommonDominator(Spin, Exit), nullptr);
}

TEST(EdgeCaseTest, IrreducibleLoopIsNotANaturalLoop) {
  // Two-entry cycle: entry branches into both a and b; a <-> b.
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *C = F->createBlock("b");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), A, C);
  B.setInsertBlock(A);
  unsigned R1 = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(R1), C, Exit);
  B.setInsertBlock(C);
  unsigned R2 = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(R2), A, Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  // Neither a nor b dominates the other, so no back edge exists: the
  // cycle is invisible to natural-loop detection (and the pass pipeline
  // treats the blocks as straight-line code — correct, just unoptimized).
  EXPECT_TRUE(LI.loops().empty());
}

TEST(EdgeCaseTest, SelfLoopIsItsOwnLatch) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Spin = F->createBlock("spin");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.jmp(Spin);
  B.setInsertBlock(Spin);
  unsigned R = B.randRange(Operand::imm(0), Operand::imm(4));
  B.br(Operand::reg(R), Spin, Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  Loop *L = LI.loops()[0];
  EXPECT_EQ(L->header(), Spin);
  ASSERT_EQ(L->latches().size(), 1u);
  EXPECT_EQ(L->latches()[0], Spin);
  EXPECT_EQ(L->blocks().size(), 1u);
  EXPECT_EQ(L->preheader(), Entry);
}

TEST(EdgeCaseTest, DivergencePropagatesThroughSelect) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  unsigned T = B.tid();
  unsigned DivergentSel =
      B.select(Operand::reg(T), Operand::imm(1), Operand::imm(2));
  unsigned UniformSel =
      B.select(Operand::imm(1), Operand::imm(3), Operand::imm(4));
  B.ret();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT);
  EXPECT_TRUE(DA.isDivergentReg(DivergentSel));
  EXPECT_FALSE(DA.isDivergentReg(UniformSel));
}

TEST(EdgeCaseTest, LoopCarriedDivergenceViaDivergentTrip) {
  // A counter incremented uniformly inside a loop whose *trip count* is
  // divergent becomes divergent after the loop.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  B.jmp(Header);
  B.setInsertBlock(Header);
  unsigned C = B.cmpLT(Operand::reg(I), Operand::reg(T)); // divergent trip
  B.br(Operand::reg(C), Body, Exit);
  B.setInsertBlock(Body);
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  Body->append(Instruction(Opcode::Mov, I, {Operand::reg(INext)}));
  B.jmp(Header);
  B.setInsertBlock(Exit);
  unsigned AfterLoop = B.mov(Operand::reg(I));
  B.ret();
  F->recomputePreds();
  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT);
  EXPECT_TRUE(DA.isDivergentBranch(Header));
  EXPECT_TRUE(DA.isDivergentReg(INext));
  EXPECT_TRUE(DA.isDivergentReg(AfterLoop));
}

TEST(EdgeCaseTest, DominatorsOnSingleBlockFunction) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  B.ret();
  F->recomputePreds();
  DominatorTree DT(*F);
  PostDominatorTree PDT(*F);
  EXPECT_EQ(DT.idom(Entry), nullptr);
  EXPECT_EQ(PDT.idom(Entry), nullptr);
  EXPECT_TRUE(DT.dominates(Entry, Entry));
  EXPECT_TRUE(PDT.dominates(Entry, Entry));
  EXPECT_EQ(DT.nearestCommonDominator(Entry, Entry), Entry);
}
