//===- DataflowPropertyTest.cpp - Fixpoint properties on random CFGs ------------===//
///
/// Property tests for the Section 4.2.1 dataflow analyses: on random CFGs
/// sprinkled with random barrier operations, the computed solutions must
/// satisfy their defining equations (they are fixpoints), and the
/// instruction-level replay must be consistent with the block-level
/// solution.
///
//===----------------------------------------------------------------------===//

#include "analysis/BarrierAnalysis.h"

#include "TestIR.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

namespace {

/// Sprinkles random barrier ops (over 3 barrier ids) into the blocks of a
/// random CFG.
std::unique_ptr<Module> randomBarrierCfg(uint64_t Seed) {
  auto M = randomCfg(Seed, 9);
  Rng R(Seed ^ 0xbeef);
  Function &F = *M->functionByName("random");
  for (BasicBlock *BB : F) {
    unsigned Ops = static_cast<unsigned>(R.nextBelow(3));
    for (unsigned K = 0; K < Ops; ++K) {
      unsigned Barrier = static_cast<unsigned>(R.nextBelow(3));
      Opcode Op;
      switch (R.nextBelow(4)) {
      case 0:
        Op = Opcode::JoinBarrier;
        break;
      case 1:
        Op = Opcode::WaitBarrier;
        break;
      case 2:
        Op = Opcode::CancelBarrier;
        break;
      default:
        Op = Opcode::RejoinBarrier;
        break;
      }
      BB->insert(0, Instruction(Op, NoRegister, {Operand::barrier(Barrier)}));
    }
  }
  F.recomputePreds();
  return M;
}

/// Applies the joined-barrier transfer of one block to \p In.
uint32_t joinedTransfer(const BasicBlock *BB, uint32_t In) {
  uint32_t State = In;
  for (const Instruction &I : BB->instructions())
    State = (State & ~barriereffect::killJoined(I)) |
            barriereffect::genJoined(I);
  return State;
}

uint32_t livenessTransfer(const BasicBlock *BB, uint32_t Out) {
  uint32_t State = Out;
  for (size_t I = BB->size(); I-- > 0;) {
    const Instruction &Inst = BB->inst(I);
    State = (State & ~barriereffect::killLive(Inst)) |
            barriereffect::genLive(Inst);
  }
  return State;
}

} // namespace

TEST(DataflowPropertyTest, JoinedSolutionIsAFixpoint) {
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    auto M = randomBarrierCfg(Seed);
    Function &F = *M->functionByName("random");
    JoinedBarrierAnalysis JA(F);
    for (BasicBlock *BB : F) {
      // OUT = transfer(IN).
      EXPECT_EQ(JA.out(BB), joinedTransfer(BB, JA.in(BB)))
          << "seed " << Seed << " block " << BB->name();
      // IN = union of predecessor OUTs.
      uint32_t Union = 0;
      for (BasicBlock *Pred : BB->predecessors())
        Union |= JA.out(Pred);
      EXPECT_EQ(JA.in(BB), Union)
          << "seed " << Seed << " block " << BB->name();
    }
  }
}

TEST(DataflowPropertyTest, LivenessSolutionIsAFixpoint) {
  for (uint64_t Seed = 100; Seed < 130; ++Seed) {
    auto M = randomBarrierCfg(Seed);
    Function &F = *M->functionByName("random");
    BarrierLivenessAnalysis LA(F);
    for (BasicBlock *BB : F) {
      EXPECT_EQ(LA.liveIn(BB), livenessTransfer(BB, LA.liveOut(BB)))
          << "seed " << Seed << " block " << BB->name();
      uint32_t Union = 0;
      for (BasicBlock *Succ : BB->successors())
        Union |= LA.liveIn(Succ);
      EXPECT_EQ(LA.liveOut(BB), Union)
          << "seed " << Seed << " block " << BB->name();
    }
  }
}

TEST(DataflowPropertyTest, ReplayEndpointsMatchBlockSolution) {
  for (uint64_t Seed = 200; Seed < 220; ++Seed) {
    auto M = randomBarrierCfg(Seed);
    Function &F = *M->functionByName("random");
    JoinedBarrierAnalysis JA(F);
    BarrierLivenessAnalysis LA(F);
    for (BasicBlock *BB : F) {
      if (BB->empty())
        continue;
      EXPECT_EQ(JA.before(BB, 0), JA.in(BB));
      EXPECT_EQ(JA.after(BB, BB->size() - 1), JA.out(BB));
      EXPECT_EQ(LA.liveAfter(BB, BB->size() - 1), LA.liveOut(BB));
      EXPECT_EQ(LA.liveBefore(BB, 0), LA.liveIn(BB));
    }
  }
}

TEST(DataflowPropertyTest, ConflictRelationIsSymmetricAndIrreflexive) {
  for (uint64_t Seed = 300; Seed < 315; ++Seed) {
    auto M = randomBarrierCfg(Seed);
    Function &F = *M->functionByName("random");
    BarrierConflictAnalysis CA(F);
    for (unsigned A = 0; A < 4; ++A) {
      EXPECT_FALSE(CA.conflict(A, A));
      for (unsigned B = 0; B < 4; ++B)
        EXPECT_EQ(CA.conflict(A, B), CA.conflict(B, A));
    }
  }
}
