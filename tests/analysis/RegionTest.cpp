//===- RegionTest.cpp - Tests for prediction-region discovery -----------------===//

#include "analysis/Region.h"

#include "TestIR.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

TEST(RegionTest, Listing1Region) {
  Listing1 L;
  auto Regions = findPredictionRegions(*L.F);
  ASSERT_EQ(Regions.size(), 1u);
  const PredictionRegion &R = Regions[0];
  EXPECT_EQ(R.Start, L.BB0);
  EXPECT_EQ(R.Label, L.BB3);
  EXPECT_EQ(R.PredictIndex, 0u);
  // Every block that can still reach bb3 is in the region; bb5 cannot.
  for (BasicBlock *BB : {L.BB0, L.BB1, L.BB2, L.BB3, L.BB4})
    EXPECT_TRUE(R.contains(BB)) << BB->name();
  EXPECT_FALSE(R.contains(L.BB5));
  // The single exit edge is bb4 -> bb5.
  ASSERT_EQ(R.ExitEdges.size(), 1u);
  EXPECT_EQ(R.ExitEdges[0].first, L.BB4);
  EXPECT_EQ(R.ExitEdges[0].second, L.BB5);
}

TEST(RegionTest, NoPredictNoRegions) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret();
  EXPECT_TRUE(findPredictionRegions(*F).empty());
}

TEST(RegionTest, RegionExcludesBlocksBeforeStart) {
  // pre -> start(predict label) -> label -> post. `pre` reaches the label
  // but lies before the region start, so it is excluded.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Pre = B.startBlock("pre");
  BasicBlock *Start = F->createBlock("start");
  BasicBlock *Label = F->createBlock("label");
  BasicBlock *Post = F->createBlock("post");
  B.setInsertBlock(Pre);
  B.jmp(Start);
  B.setInsertBlock(Start);
  B.predict(Label);
  B.jmp(Label);
  B.setInsertBlock(Label);
  B.jmp(Post);
  B.setInsertBlock(Post);
  B.ret();
  F->recomputePreds();

  auto Regions = findPredictionRegions(*F);
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_FALSE(Regions[0].contains(Pre));
  EXPECT_TRUE(Regions[0].contains(Start));
  EXPECT_TRUE(Regions[0].contains(Label));
  EXPECT_FALSE(Regions[0].contains(Post));
}

TEST(RegionTest, MultipleRegionsDiscoveredInLayoutOrder) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *L1 = F->createBlock("l1");
  BasicBlock *Mid = F->createBlock("mid");
  BasicBlock *L2 = F->createBlock("l2");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.predict(L1);
  B.jmp(L1);
  B.setInsertBlock(L1);
  B.jmp(Mid);
  B.setInsertBlock(Mid);
  B.predict(L2);
  B.jmp(L2);
  B.setInsertBlock(L2);
  B.jmp(Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();

  auto Regions = findPredictionRegions(*F);
  ASSERT_EQ(Regions.size(), 2u);
  EXPECT_EQ(Regions[0].Label, L1);
  EXPECT_EQ(Regions[1].Label, L2);
  // Each region stops where its label becomes unreachable.
  EXPECT_FALSE(Regions[0].contains(L2));
  EXPECT_FALSE(Regions[1].contains(Entry));
}

TEST(RegionTest, MultipleExitEdges) {
  // Loop region with a conditional break: two exit edges.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Break = F->createBlock("brk");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.predict(Hot);
  B.jmp(Header);
  B.setInsertBlock(Header);
  unsigned C = B.randRange(Operand::imm(0), Operand::imm(3));
  B.br(Operand::reg(C), Hot, Break);
  B.setInsertBlock(Hot);
  unsigned C2 = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(C2), Header, Exit);
  B.setInsertBlock(Break);
  B.jmp(Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();

  auto Regions = findPredictionRegions(*F);
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_EQ(Regions[0].ExitEdges.size(), 2u);
}
