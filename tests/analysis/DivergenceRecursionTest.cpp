//===- DivergenceRecursionTest.cpp - Summaries on cyclic call graphs ------------===//

#include "analysis/Divergence.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace simtsr;

TEST(DivergenceRecursionTest, RecursiveCalleeFallsBackToConservative) {
  // self() returns a constant but calls itself; the bottom-up summary
  // cannot resolve the cycle, so call results stay (safely) divergent.
  Module M;
  Function *Self = M.createFunction("self", 1);
  {
    IRBuilder B(Self);
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Base = Self->createBlock("base");
    BasicBlock *Rec = Self->createBlock("rec");
    B.setInsertBlock(Entry);
    unsigned C = B.cmpLE(Operand::reg(0), Operand::imm(0));
    B.br(Operand::reg(C), Base, Rec);
    B.setInsertBlock(Base);
    B.ret(Operand::imm(7));
    B.setInsertBlock(Rec);
    unsigned N = B.sub(Operand::reg(0), Operand::imm(1));
    unsigned V = B.call(Self, {Operand::reg(N)});
    B.ret(Operand::reg(V));
  }
  Function *Caller = M.createFunction("caller", 0);
  unsigned FromRecursive;
  {
    IRBuilder B(Caller);
    B.startBlock("entry");
    FromRecursive = B.call(Self, {Operand::imm(3)});
    B.ret();
  }
  ModuleDivergenceInfo Info(M);
  // Conservative: the cyclic summary marks the call divergent. What must
  // never happen is a crash or an unsound "uniform" claim being relied on
  // for synchronization; PdomSync only uses divergence to *add* barriers.
  const DivergenceAnalysis &DA = Info.forFunction(Caller);
  EXPECT_TRUE(DA.isDivergentReg(FromRecursive));
}

TEST(DivergenceRecursionTest, MutualRecursionHandled) {
  Module M;
  Function *A = M.createFunction("a", 1);
  Function *BFn = M.createFunction("b", 1);
  {
    IRBuilder B(A);
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Base = A->createBlock("base");
    BasicBlock *Rec = A->createBlock("rec");
    B.setInsertBlock(Entry);
    unsigned C = B.cmpLE(Operand::reg(0), Operand::imm(0));
    B.br(Operand::reg(C), Base, Rec);
    B.setInsertBlock(Base);
    B.ret(Operand::imm(1));
    B.setInsertBlock(Rec);
    unsigned N = B.sub(Operand::reg(0), Operand::imm(1));
    unsigned V = B.call(BFn, {Operand::reg(N)});
    B.ret(Operand::reg(V));
  }
  {
    IRBuilder B(BFn);
    B.startBlock("entry");
    unsigned V = B.call(A, {Operand::reg(0)});
    B.ret(Operand::reg(V));
  }
  // Must terminate and produce per-function analyses for both; inside the
  // cycle the call results are conservatively divergent (at least one of
  // the two functions is summarized before its callee).
  ModuleDivergenceInfo Info(M);
  EXPECT_TRUE(Info.forFunction(A).returnsDivergent() ||
              Info.forFunction(BFn).returnsDivergent());
}

TEST(DivergenceRecursionTest, UniformChainStaysUniformThroughCalls) {
  // three -> two -> one, all returning constants: the caller's results
  // stay uniform through the whole chain.
  Module M;
  Function *One = M.createFunction("one", 0);
  {
    IRBuilder B(One);
    B.startBlock("entry");
    B.ret(Operand::imm(1));
  }
  Function *Two = M.createFunction("two", 0);
  {
    IRBuilder B(Two);
    B.startBlock("entry");
    unsigned V = B.call(One);
    unsigned W = B.add(Operand::reg(V), Operand::imm(1));
    B.ret(Operand::reg(W));
  }
  Function *Three = M.createFunction("three", 0);
  unsigned Result;
  {
    IRBuilder B(Three);
    B.startBlock("entry");
    Result = B.call(Two);
    B.ret();
  }
  ModuleDivergenceInfo Info(M);
  EXPECT_FALSE(Info.forFunction(Three).isDivergentReg(Result));
  EXPECT_FALSE(Info.forFunction(Two).returnsDivergent());
}
