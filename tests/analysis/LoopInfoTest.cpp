//===- LoopInfoTest.cpp - Tests for natural-loop detection --------------------===//

#include "analysis/LoopInfo.h"

#include "TestIR.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace simtsr;
using namespace simtsr::testir;

TEST(LoopInfoTest, Listing1HasOneLoop) {
  Listing1 L;
  DominatorTree DT(*L.F);
  LoopInfo LI(*L.F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  Loop *Loop1 = LI.loops()[0];
  EXPECT_EQ(Loop1->header(), L.BB1);
  EXPECT_EQ(Loop1->depth(), 1u);
  EXPECT_TRUE(Loop1->contains(L.BB2));
  EXPECT_TRUE(Loop1->contains(L.BB3));
  EXPECT_TRUE(Loop1->contains(L.BB4));
  EXPECT_FALSE(Loop1->contains(L.BB0));
  EXPECT_FALSE(Loop1->contains(L.BB5));
  EXPECT_EQ(Loop1->preheader(), L.BB0);
  ASSERT_EQ(Loop1->latches().size(), 1u);
  EXPECT_EQ(Loop1->latches()[0], L.BB4);
  auto Exits = Loop1->exitEdges();
  ASSERT_EQ(Exits.size(), 1u);
  EXPECT_EQ(Exits[0].first, L.BB4);
  EXPECT_EQ(Exits[0].second, L.BB5);
}

namespace {

/// entry -> outerHeader -> innerHeader <-> innerBody; inner exits to
/// outerLatch which loops back to outerHeader or exits.
struct NestedLoops {
  Module M;
  Function *F;
  BasicBlock *Entry, *OuterHeader, *InnerHeader, *InnerBody, *OuterLatch,
      *Exit;

  NestedLoops() {
    F = M.createFunction("nested", 1);
    IRBuilder B(F);
    Entry = B.startBlock("entry");
    OuterHeader = F->createBlock("outer_header");
    InnerHeader = F->createBlock("inner_header");
    InnerBody = F->createBlock("inner_body");
    OuterLatch = F->createBlock("outer_latch");
    Exit = F->createBlock("exit");

    B.setInsertBlock(Entry);
    B.jmp(OuterHeader);
    B.setInsertBlock(OuterHeader);
    B.jmp(InnerHeader);
    B.setInsertBlock(InnerHeader);
    unsigned C = B.randRange(Operand::imm(0), Operand::imm(2));
    B.br(Operand::reg(C), InnerBody, OuterLatch);
    B.setInsertBlock(InnerBody);
    B.jmp(InnerHeader);
    B.setInsertBlock(OuterLatch);
    unsigned C2 = B.randRange(Operand::imm(0), Operand::imm(2));
    B.br(Operand::reg(C2), OuterHeader, Exit);
    B.setInsertBlock(Exit);
    B.ret();
    F->recomputePreds();
  }
};

} // namespace

TEST(LoopInfoTest, NestedLoopsHaveCorrectNesting) {
  NestedLoops N;
  DominatorTree DT(*N.F);
  LoopInfo LI(*N.F, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  Loop *Outer = LI.loopWithHeader(N.OuterHeader);
  Loop *Inner = LI.loopWithHeader(N.InnerHeader);
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->parent(), Outer);
  EXPECT_EQ(Outer->parent(), nullptr);
  EXPECT_EQ(Inner->depth(), 2u);
  EXPECT_TRUE(Outer->contains(Inner));
  EXPECT_FALSE(Inner->contains(Outer));
  ASSERT_EQ(LI.topLevelLoops().size(), 1u);
  EXPECT_EQ(LI.topLevelLoops()[0], Outer);
  // Innermost loop per block.
  EXPECT_EQ(LI.loopFor(N.InnerBody), Inner);
  EXPECT_EQ(LI.loopFor(N.OuterLatch), Outer);
  EXPECT_EQ(LI.loopFor(N.Entry), nullptr);
}

TEST(LoopInfoTest, MultipleLatchesMergeIntoOneLoop) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *BBlk = F->createBlock("b");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.jmp(Header);
  B.setInsertBlock(Header);
  unsigned C = B.randRange(Operand::imm(0), Operand::imm(3));
  B.br(Operand::reg(C), A, BBlk);
  B.setInsertBlock(A);
  unsigned C2 = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(C2), Header, Exit);
  B.setInsertBlock(BBlk);
  B.jmp(Header);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();

  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  Loop *L = LI.loops()[0];
  EXPECT_EQ(L->latches().size(), 2u);
  EXPECT_TRUE(L->contains(A));
  EXPECT_TRUE(L->contains(BBlk));
}

TEST(LoopInfoTest, NoPreheaderWhenHeaderHasTwoOutsidePreds) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Side = F->createBlock("side");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), Header, Side);
  B.setInsertBlock(Side);
  B.jmp(Header);
  B.setInsertBlock(Header);
  unsigned C = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(C), Header, Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();

  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0]->preheader(), nullptr);
  // Header is its own latch here.
  ASSERT_EQ(LI.loops()[0]->latches().size(), 1u);
  EXPECT_EQ(LI.loops()[0]->latches()[0], Header);
}

TEST(LoopInfoTest, AcyclicFunctionHasNoLoops) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  B.setInsertBlock(Entry);
  B.jmp(Next);
  B.setInsertBlock(Next);
  B.ret();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_TRUE(LI.loops().empty());
  EXPECT_TRUE(LI.topLevelLoops().empty());
}
