//===- CallGraphTest.cpp - Tests for the call graph ---------------------------===//

#include "analysis/CallGraph.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace simtsr;

namespace {

Function *makeLeaf(Module &M, const std::string &Name) {
  Function *F = M.createFunction(Name, 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret(Operand::imm(1));
  return F;
}

Function *makeCaller(Module &M, const std::string &Name,
                     std::vector<Function *> Callees) {
  Function *F = M.createFunction(Name, 0);
  IRBuilder B(F);
  B.startBlock("entry");
  for (Function *Callee : Callees)
    B.call(Callee);
  B.ret();
  return F;
}

} // namespace

TEST(CallGraphTest, EdgesAndCallSites) {
  Module M;
  Function *Leaf = makeLeaf(M, "leaf");
  Function *Mid = makeCaller(M, "mid", {Leaf, Leaf});
  Function *Top = makeCaller(M, "top", {Mid, Leaf});
  CallGraph CG(M);

  EXPECT_EQ(CG.callees(Leaf).size(), 0u);
  ASSERT_EQ(CG.callees(Mid).size(), 1u);
  EXPECT_EQ(CG.callees(Mid)[0], Leaf);
  EXPECT_EQ(CG.callees(Top).size(), 2u);

  ASSERT_EQ(CG.callers(Leaf).size(), 2u);
  EXPECT_EQ(CG.callers(Top).size(), 0u);

  // leaf is called three times in total (twice from mid, once from top).
  EXPECT_EQ(CG.callSitesOf(Leaf).size(), 3u);
  EXPECT_EQ(CG.callSitesOf(Top).size(), 0u);
}

TEST(CallGraphTest, BottomUpOrderPutsCalleesFirst) {
  Module M;
  Function *Leaf = makeLeaf(M, "leaf");
  Function *Mid = makeCaller(M, "mid", {Leaf});
  Function *Top = makeCaller(M, "top", {Mid});
  CallGraph CG(M);
  auto Order = CG.bottomUpOrder();
  ASSERT_EQ(Order.size(), 3u);
  auto Pos = [&](Function *F) {
    return std::find(Order.begin(), Order.end(), F) - Order.begin();
  };
  EXPECT_LT(Pos(Leaf), Pos(Mid));
  EXPECT_LT(Pos(Mid), Pos(Top));
}

TEST(CallGraphTest, DetectsDirectRecursion) {
  Module M;
  Function *F = M.createFunction("self", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.call(F);
  B.ret();
  CallGraph CG(M);
  EXPECT_TRUE(CG.isRecursive());
}

TEST(CallGraphTest, DetectsMutualRecursion) {
  Module M;
  Function *A = M.createFunction("a", 0);
  Function *BFn = M.createFunction("b", 0);
  {
    IRBuilder B(A);
    B.startBlock("entry");
    B.call(BFn);
    B.ret();
  }
  {
    IRBuilder B(BFn);
    B.startBlock("entry");
    B.call(A);
    B.ret();
  }
  CallGraph CG(M);
  EXPECT_TRUE(CG.isRecursive());
}

TEST(CallGraphTest, AcyclicGraphIsNotRecursive) {
  Module M;
  Function *Leaf = makeLeaf(M, "leaf");
  makeCaller(M, "top", {Leaf, Leaf});
  CallGraph CG(M);
  EXPECT_FALSE(CG.isRecursive());
}
