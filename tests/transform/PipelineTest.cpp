//===- PipelineTest.cpp - End-to-end pipeline + simulator tests ----------------===//
///
/// The decisive tests: every synchronization pipeline must preserve kernel
/// semantics exactly (identical memory checksums, strict-mode termination),
/// and speculative reconvergence must raise SIMT efficiency and cut cycles
/// on the paper's motivating shapes.
///
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "TestKernels.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

struct RunOutcome {
  uint64_t Checksum;
  double SimtEfficiency;
  uint64_t Cycles;
};

RunOutcome runKernel(Module &M, const std::string &Name, uint64_t Seed) {
  Function *F = M.functionByName(Name);
  EXPECT_NE(F, nullptr);
  LaunchConfig Config;
  Config.Seed = Seed;
  Config.Latency = LatencyModel::computeBound();
  WarpSimulator Sim(M, F, Config);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << "status " << static_cast<int>(R.St) << " "
                      << R.TrapMessage;
  return {Sim.memoryChecksum(), R.Stats.simtEfficiency(), R.Stats.Cycles};
}

using KernelFactory = std::unique_ptr<Module> (*)();

std::unique_ptr<Module> makeItDelay() { return iterationDelayKernel(); }
std::unique_ptr<Module> makeLoopMerge() { return loopMergeKernel(); }
std::unique_ptr<Module> makeCommonCall() { return commonCallKernel(); }

struct SemanticsCase {
  const char *KernelName;
  KernelFactory Factory;
};

class PipelineSemanticsTest
    : public ::testing::TestWithParam<SemanticsCase> {};

} // namespace

// Every pipeline configuration leaves the architectural results untouched:
// reconvergence only reorders scheduling.
TEST_P(PipelineSemanticsTest, AllPipelinesPreserveSemantics) {
  const SemanticsCase &Case = GetParam();
  for (uint64_t Seed : {1ull, 42ull, 12345ull}) {
    // Reference: no synchronization at all.
    auto Reference = Case.Factory();
    {
      PipelineOptions O;
      O.PdomSync = false;
      O.StripPredicts = true;
      runSyncPipeline(*Reference, O);
    }
    uint64_t Expected = runKernel(*Reference, Case.KernelName, Seed).Checksum;

    std::vector<std::pair<std::string, PipelineOptions>> Configs;
    Configs.push_back({"baseline", PipelineOptions::baseline()});
    Configs.push_back(
        {"sr-dynamic",
         PipelineOptions::speculative(DeconflictStrategy::Dynamic)});
    Configs.push_back(
        {"sr-static",
         PipelineOptions::speculative(DeconflictStrategy::Static)});
    for (int Threshold : {0, 4, 16, 32})
      Configs.push_back({"soft-" + std::to_string(Threshold),
                         PipelineOptions::softBarrier(Threshold)});

    for (auto &[Label, Options] : Configs) {
      auto M = Case.Factory();
      PipelineReport Report = runSyncPipeline(*M, Options);
      EXPECT_TRUE(Report.clean())
          << Label << ": " << Report.VerifierDiagnostics[0];
      ASSERT_TRUE(isWellFormed(*M)) << Label;
      RunOutcome Outcome = runKernel(*M, Case.KernelName, Seed);
      EXPECT_EQ(Outcome.Checksum, Expected)
          << Label << " diverged semantically (seed " << Seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PipelineSemanticsTest,
    ::testing::Values(SemanticsCase{"itdelay", makeItDelay},
                      SemanticsCase{"loopmerge", makeLoopMerge},
                      SemanticsCase{"commoncall", makeCommonCall}),
    [](const ::testing::TestParamInfo<SemanticsCase> &Info) {
      return std::string(Info.param.KernelName);
    });

TEST(PipelineEffectTest, SRRaisesSimtEfficiencyOnLoopMerge) {
  auto Baseline = loopMergeKernel();
  runSyncPipeline(*Baseline, PipelineOptions::baseline());
  RunOutcome Base = runKernel(*Baseline, "loopmerge", 9);

  auto SR = loopMergeKernel();
  PipelineReport Report =
      runSyncPipeline(*SR, PipelineOptions::speculative());
  ASSERT_EQ(Report.SR.Applied.size(), 1u);
  RunOutcome Opt = runKernel(*SR, "loopmerge", 9);

  EXPECT_GT(Opt.SimtEfficiency, Base.SimtEfficiency)
      << "base " << Base.SimtEfficiency << " vs " << Opt.SimtEfficiency;
  EXPECT_LT(Opt.Cycles, Base.Cycles);
}

TEST(PipelineEffectTest, SRRaisesSimtEfficiencyOnIterationDelay) {
  auto Baseline = iterationDelayKernel();
  runSyncPipeline(*Baseline, PipelineOptions::baseline());
  RunOutcome Base = runKernel(*Baseline, "itdelay", 9);

  auto SR = iterationDelayKernel();
  runSyncPipeline(*SR, PipelineOptions::speculative());
  RunOutcome Opt = runKernel(*SR, "itdelay", 9);

  EXPECT_GT(Opt.SimtEfficiency, Base.SimtEfficiency);
}

TEST(PipelineEffectTest, InterprocGathersCommonCall) {
  auto Baseline = commonCallKernel();
  runSyncPipeline(*Baseline, PipelineOptions::baseline());
  RunOutcome Base = runKernel(*Baseline, "commoncall", 9);

  auto Opt = commonCallKernel();
  PipelineReport Report =
      runSyncPipeline(*Opt, PipelineOptions::speculative());
  EXPECT_EQ(Report.Interproc.FunctionsConverged, 1u);
  RunOutcome O = runKernel(*Opt, "commoncall", 9);
  // The helper body now executes convergently; efficiency must rise.
  EXPECT_GT(O.SimtEfficiency, Base.SimtEfficiency);
}

TEST(PipelineEffectTest, SoftThresholdSweepCompletesAndBeatsBaseline) {
  // The full Figure 9 contrast (XSBench peaking at a small threshold,
  // PathTracer at the full barrier) lives in the workload-level
  // integration tests; here we check the mechanics: every threshold runs
  // deadlock-free and the full-barrier end of the sweep beats the PDOM
  // baseline on the Loop Merge shape.
  auto Baseline = loopMergeKernel();
  runSyncPipeline(*Baseline, PipelineOptions::baseline());
  double BaseEff = runKernel(*Baseline, "loopmerge", 9).SimtEfficiency;

  double EffAt[33] = {0};
  for (int Threshold : {0, 8, 16, 24, 32}) {
    auto M = loopMergeKernel();
    PipelineReport Report =
        runSyncPipeline(*M, PipelineOptions::softBarrier(Threshold));
    EXPECT_TRUE(Report.clean());
    EffAt[Threshold] = runKernel(*M, "loopmerge", 9).SimtEfficiency;
  }
  EXPECT_GT(EffAt[32], BaseEff);
  // Larger gathers never collapse far below smaller ones on this shape.
  EXPECT_GE(EffAt[32], EffAt[8] - 0.05);
}

TEST(PipelineEffectTest, BaselineStripsAnnotations) {
  auto M = iterationDelayKernel();
  runSyncPipeline(*M, PipelineOptions::baseline());
  for (BasicBlock *BB : *M->functionByName("itdelay"))
    for (const Instruction &I : BB->instructions())
      EXPECT_NE(I.opcode(), Opcode::Predict);
}

TEST(PipelineEffectTest, ReportsArepopulated) {
  auto M = loopMergeKernel();
  PipelineReport R = runSyncPipeline(*M, PipelineOptions::speculative());
  EXPECT_GT(R.Pdom.BarriersInserted, 0u);
  EXPECT_EQ(R.SR.Applied.size(), 1u);
  EXPECT_GT(R.Deconflict.ConflictsFound, 0u);
  EXPECT_TRUE(R.clean());
}

TEST(PipelineEffectTest, ReallocOptionShrinksRegisterPressure) {
  auto M = loopMergeKernel();
  PipelineOptions Opts = PipelineOptions::speculative();
  Opts.ReallocBarriers = true;
  PipelineReport R = runSyncPipeline(*M, Opts);
  EXPECT_TRUE(R.clean());
  EXPECT_LE(R.Realloc.BarriersAfter, R.Realloc.BarriersBefore);
  EXPECT_GT(R.Realloc.BarriersBefore, 0u);
  // And the program still runs correctly.
  LaunchConfig Config;
  Config.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("loopmerge"), Config);
  EXPECT_TRUE(Sim.run().ok());
}
