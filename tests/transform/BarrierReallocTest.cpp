//===- BarrierReallocTest.cpp - Tests for barrier-register recolouring ----------===//

#include "transform/BarrierRealloc.h"

#include "TestKernels.h"
#include "analysis/BarrierAnalysis.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <set>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

std::set<unsigned> usedIds(const Function &F) {
  std::set<unsigned> Ids;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      if (isBarrierOp(I.opcode()))
        Ids.insert(I.barrierId());
  return Ids;
}

/// Two sequential divergent diamonds: their PDOM barriers have disjoint
/// joined ranges and should share one register after recolouring.
std::unique_ptr<Module> sequentialDiamonds(unsigned Count) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Current = B.startBlock("entry");
  B.setInsertBlock(Current);
  unsigned T = B.tid();
  for (unsigned I = 0; I < Count; ++I) {
    BasicBlock *Then = F->createBlock("then" + std::to_string(I));
    BasicBlock *Join = F->createBlock("join" + std::to_string(I));
    unsigned R = B.randRange(Operand::imm(0), Operand::imm(100));
    unsigned C = B.cmpLT(Operand::reg(R), Operand::imm(50));
    B.br(Operand::reg(C), Then, Join);
    B.setInsertBlock(Then);
    unsigned V = B.mul(Operand::reg(T), Operand::imm(3 + I));
    B.store(Operand::reg(T), Operand::reg(V));
    B.jmp(Join);
    B.setInsertBlock(Join);
    Current = Join;
  }
  B.ret();
  F->recomputePreds();
  return M;
}

} // namespace

TEST(BarrierReallocTest, SequentialDiamondsShareOneRegister) {
  auto M = sequentialDiamonds(6);
  PipelineReport Report = runSyncPipeline(*M, PipelineOptions::baseline());
  EXPECT_EQ(Report.Pdom.BarriersInserted, 6u);
  Function &F = *M->functionByName("k");
  EXPECT_EQ(usedIds(F).size(), 6u);

  ReallocReport RR = reallocateBarriers(*M);
  EXPECT_EQ(RR.BarriersBefore, 6u);
  EXPECT_EQ(RR.BarriersAfter, 1u);
  EXPECT_EQ(usedIds(F), (std::set<unsigned>{0u}));
  EXPECT_TRUE(isWellFormed(*M));
}

TEST(BarrierReallocTest, OverlappingRangesKeepDistinctIds) {
  // Nested joined ranges (join a; join b; wait b; wait a) overlap and must
  // not merge.
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.joinBarrier(4);
  B.joinBarrier(9);
  B.waitBarrier(9);
  B.waitBarrier(4);
  B.ret();
  F->recomputePreds();
  reallocateBarriers(*M);
  EXPECT_EQ(usedIds(*F).size(), 2u);
  // And the recoloured program still has no same-id overlap.
  BarrierConflictAnalysis CA(*F);
  for (unsigned A : usedIds(*F)) {
    for (unsigned C : usedIds(*F)) {
      if (A != C) {
        EXPECT_GT(CA.rangeSize(A) + CA.rangeSize(C), 0u);
      }
    }
  }
}

TEST(BarrierReallocTest, SemanticsPreservedOnWorkload) {
  auto Reference = loopMergeKernel();
  runSyncPipeline(*Reference, PipelineOptions::speculative());
  auto Realloc = loopMergeKernel();
  runSyncPipeline(*Realloc, PipelineOptions::speculative());
  ReallocReport RR = reallocateBarriers(*Realloc);
  EXPECT_LE(RR.BarriersAfter, RR.BarriersBefore);
  EXPECT_TRUE(isWellFormed(*Realloc));

  auto Run = [](Module &M) {
    Function *F = M.functionByName("loopmerge");
    LaunchConfig C;
    C.Seed = 5;
    C.Latency = LatencyModel::unit();
    WarpSimulator Sim(M, F, C);
    RunResult R = Sim.run();
    EXPECT_TRUE(R.ok()) << R.TrapMessage;
    return std::make_pair(Sim.memoryChecksum(), R.Stats.Cycles);
  };
  auto [RefSum, RefCycles] = Run(*Reference);
  auto [NewSum, NewCycles] = Run(*Realloc);
  EXPECT_EQ(RefSum, NewSum);
  EXPECT_EQ(RefCycles, NewCycles); // Pure renaming: identical schedule.
}

TEST(BarrierReallocTest, InterproceduralIdsArePinned) {
  auto M = commonCallKernel(/*Annotate=*/true);
  runSyncPipeline(*M, PipelineOptions::speculative());
  // Find the id shared between caller and callee.
  std::set<unsigned> FooIds = usedIds(*M->functionByName("foo"));
  ASSERT_EQ(FooIds.size(), 1u);
  unsigned Shared = *FooIds.begin();
  reallocateBarriers(*M);
  // The interprocedural id must be unchanged on both sides.
  EXPECT_TRUE(usedIds(*M->functionByName("foo")).count(Shared));
  bool CallerStillUses = usedIds(*M->functionByName("commoncall"))
                             .count(Shared) != 0;
  EXPECT_TRUE(CallerStillUses);
  EXPECT_TRUE(isWellFormed(*M));
}

TEST(BarrierReallocTest, PerFunctionOverloadHonoursFirstColor) {
  auto M = sequentialDiamonds(2);
  runSyncPipeline(*M, PipelineOptions::baseline());
  Function &F = *M->functionByName("k");
  auto Renaming = reallocateBarriers(F, /*FirstColor=*/5);
  ASSERT_FALSE(Renaming.empty());
  for (const auto &[Old, New] : Renaming) {
    (void)Old;
    EXPECT_GE(New, 5u);
  }
  EXPECT_EQ(usedIds(F), (std::set<unsigned>{5u}));
}

TEST(BarrierReallocTest, NoBarriersIsANoop) {
  auto M = sequentialDiamonds(1);
  // No pipeline run: no barriers present.
  ReallocReport RR = reallocateBarriers(*M);
  EXPECT_EQ(RR.BarriersBefore, 0u);
  EXPECT_EQ(RR.BarriersAfter, 0u);
}
