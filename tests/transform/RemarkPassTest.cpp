//===- RemarkPassTest.cpp - Figure shapes asserted through remarks ------------===//
//
// The paper-figure tests, restated against the remark stream instead of
// instruction-by-instruction structure: the passes declare what they did
// (gather placement, deconfliction cancels, entry gathers, candidate
// scores), and these tests pin the declarations. This survives benign
// representation changes — an extra instruction, a renamed temporary —
// that used to break the structural assertions, while still failing when
// a pass stops making the paper's decisions.
//
//===----------------------------------------------------------------------===//

#include "observe/Remark.h"
#include "ir/Parser.h"
#include "transform/AutoDetect.h"
#include "transform/PassStage.h"
#include "transform/Pipeline.h"

#include "TestIR.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::observe;
using namespace simtsr::testir;

namespace {

/// \returns the value of \p Key in \p R's args, or "" when absent.
std::string argOf(const Remark &R, const std::string &Key) {
  for (const auto &[K, V] : R.Args)
    if (K == Key)
      return V;
  return {};
}

// RemarkStream holds a mutex and cannot be returned by value.
void runPipelineWithRemarks(Module &M, PipelineSpec Spec,
                            RemarkStream &Remarks) {
  Spec.Params.Remarks = &Remarks;
  runSyncPipeline(M, Spec);
}

} // namespace

// Figure 4(d): the SR pass turns Listing 1's predict into a gather at the
// region start with the reconvergence wait at the user's label, a rejoin
// (the wait sits in a loop), and a region-exit barrier.
TEST(RemarkPassTest, SrPlacesGatherAtRegionStartOnListing1) {
  Listing1 L;
  RemarkStream Remarks;
  runPipelineWithRemarks(*L.M, PipelineOptions::speculative(), Remarks);

  Remark Gather;
  ASSERT_TRUE(Remarks.first("sr", "placed gather", Gather));
  EXPECT_EQ(Gather.Kind, RemarkKind::Applied);
  EXPECT_EQ(Gather.Function, "listing1");
  EXPECT_EQ(Gather.Block, "bb0");
  EXPECT_EQ(argOf(Gather, "label"), "bb3");
  EXPECT_EQ(argOf(Gather, "mode"), "classic");
  EXPECT_EQ(argOf(Gather, "rejoin"), "yes");
  EXPECT_NE(argOf(Gather, "exit-barrier"), "none");

  Remark ExitBarrier;
  ASSERT_TRUE(Remarks.first("sr", "region-exit barrier", ExitBarrier));
  EXPECT_EQ(ExitBarrier.Kind, RemarkKind::Applied);
  EXPECT_EQ(argOf(ExitBarrier, "post-exit"), "bb5");
}

// The PDOM baseline must also report its placement: a join before Listing
// 1's divergent branch with the wait at the branch's post-dominator.
TEST(RemarkPassTest, PdomSyncReportsJoinAndWaitPlacement) {
  Listing1 L;
  RemarkStream Remarks;
  runPipelineWithRemarks(*L.M, PipelineOptions::baseline(), Remarks);

  Remark Placed;
  ASSERT_TRUE(Remarks.first("pdom-sync", "join before divergent", Placed));
  EXPECT_EQ(Placed.Kind, RemarkKind::Applied);
  EXPECT_EQ(Placed.Function, "listing1");
  EXPECT_EQ(Placed.Block, "bb2");
  EXPECT_EQ(argOf(Placed, "pdom"), "bb4");
}

// Figure 6: the soft-barrier variant gathers with a thresholded wait and
// drops the rejoin (soft membership persists across releases).
TEST(RemarkPassTest, SoftBarrierThresholdSurfacesInRemarks) {
  Listing1 L;
  RemarkStream Remarks;
  runPipelineWithRemarks(*L.M, PipelineOptions::softBarrier(8), Remarks);

  Remark Soft;
  ASSERT_TRUE(Remarks.first("sr", "soft wait with threshold", Soft));
  EXPECT_EQ(Soft.Kind, RemarkKind::Analysis);
  EXPECT_EQ(Soft.Block, "bb3");
  EXPECT_EQ(argOf(Soft, "threshold"), "8");

  Remark Gather;
  ASSERT_TRUE(Remarks.first("sr", "placed gather", Gather));
  EXPECT_EQ(argOf(Gather, "mode"), "soft");
  EXPECT_EQ(argOf(Gather, "rejoin"), "no");
}

// Figure 5(a)/(c): on Listing 1 a thread can reach the speculative wait at
// bb3 still joined to the PDOM barrier from bb2 — the deconfliction pass
// must report the hazard pair and the dynamic cancels that resolve it.
TEST(RemarkPassTest, DeconflictionReportsFigure5HazardAndCancels) {
  Listing1 L;
  RemarkStream Remarks;
  runPipelineWithRemarks(*L.M, PipelineOptions::speculative(), Remarks);

  EXPECT_GE(Remarks.count("deconflict", RemarkKind::Conflict), 1u);
  Remark Hazard;
  ASSERT_TRUE(Remarks.first("deconflict", "Figure 5(a) hazard", Hazard));
  EXPECT_FALSE(argOf(Hazard, "speculative").empty());
  EXPECT_FALSE(argOf(Hazard, "pdom").empty());

  Remark Cancel;
  ASSERT_TRUE(Remarks.first("deconflict", "dynamic strategy", Cancel));
  EXPECT_EQ(Cancel.Kind, RemarkKind::Applied);
  EXPECT_EQ(Cancel.Function, "listing1");
}

// Section 4.4: a reconverge_entry callee gets its entry wait, and every
// caller joins at the call sites' common dominator — both sides remark.
TEST(RemarkPassTest, InterproceduralEntryGatherRemarks) {
  auto M = std::make_unique<Module>();
  Function *Foo = M->createFunction("foo", 0);
  Foo->setReconvergeAtEntry(true);
  {
    IRBuilder B(Foo);
    B.startBlock("entry");
    B.ret(Operand::imm(3));
  }
  Function *K = M->createFunction("k", 0);
  IRBuilder B(K);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = K->createBlock("then");
  BasicBlock *Else = K->createBlock("else");
  BasicBlock *Exit = K->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned R = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(R), Then, Else);
  B.setInsertBlock(Then);
  B.call(Foo);
  B.jmp(Exit);
  B.setInsertBlock(Else);
  B.call(Foo);
  B.jmp(Exit);
  B.setInsertBlock(Exit);
  B.ret();
  K->recomputePreds();

  RemarkStream Remarks;
  runPipelineWithRemarks(*M, PipelineOptions::speculative(), Remarks);

  Remark EntryWait;
  ASSERT_TRUE(Remarks.first("interproc", "entry wait placed", EntryWait));
  EXPECT_EQ(EntryWait.Kind, RemarkKind::Applied);
  EXPECT_EQ(EntryWait.Function, "foo");
  EXPECT_EQ(argOf(EntryWait, "callers"), "1");

  Remark CallerJoin;
  ASSERT_TRUE(
      Remarks.first("interproc", "joined entry barrier", CallerJoin));
  EXPECT_EQ(CallerJoin.Function, "k");
  EXPECT_EQ(CallerJoin.Block, "entry"); // Common dominator of both calls.
  EXPECT_EQ(argOf(CallerJoin, "callee"), "foo");
  EXPECT_EQ(argOf(CallerJoin, "call-sites"), "2");
}

// Barrier re-allocation reports the per-function recolouring summary.
TEST(RemarkPassTest, ReallocReportsRecolouringSummary) {
  Listing1 L;
  auto Opts = standardPipelineSpec("sr+ip+realloc");
  ASSERT_TRUE(Opts.has_value());
  RemarkStream Remarks;
  runPipelineWithRemarks(*L.M, *Opts, Remarks);

  Remark Recolour;
  ASSERT_TRUE(Remarks.first("realloc", "recoloured", Recolour));
  EXPECT_EQ(Recolour.Kind, RemarkKind::Applied);
  EXPECT_EQ(Recolour.Function, "listing1");
  EXPECT_FALSE(argOf(Recolour, "before").empty());
  EXPECT_FALSE(argOf(Recolour, "after").empty());
}

// Section 4.5: automatic detection scores every candidate and explains
// accept/reject; Listing 1's divergent branch inside the bb1..bb4 loop is
// an iteration-delay candidate with label bb3.
TEST(RemarkPassTest, AutoDetectScoresCandidatesViaRemarks) {
  Listing1 L;
  // Strip the user predict so detection starts from unannotated code.
  EXPECT_EQ(stripPredictDirectives(*L.M), 1u);

  RemarkStream Remarks;
  {
    RemarkScope Scope(&Remarks);
    AutoDetectOptions Opts;
    detectReconvergence(*L.M, Opts);
  }

  ASSERT_GE(Remarks.count("auto-detect", RemarkKind::Analysis), 1u);
  Remark Candidate;
  ASSERT_TRUE(Remarks.first("auto-detect", "iteration-delay", Candidate));
  EXPECT_EQ(Candidate.Block, "bb3");
  EXPECT_FALSE(argOf(Candidate, "score").empty());
  const std::string Profitable = argOf(Candidate, "profitable");
  EXPECT_TRUE(Profitable == "yes" || Profitable == "no");
}

// Graceful degradation must be visible too: more divergent diamonds than
// the 16 barrier registers makes pdom-sync report downgrades instead of
// failing silently (pairs with ExhaustionTest's structural checks).
TEST(RemarkPassTest, RegisterExhaustionSurfacesAsDowngradeRemarks) {
  std::string Text = "memory 64\n\nfunc @kernel(0) {\n"
                     "entry:\n  %0 = tid\n  %1 = laneid\n  %2 = mov 0\n"
                     "  jmp d0\n";
  const unsigned Diamonds = 18; // > 16 barrier registers.
  for (unsigned I = 0; I < Diamonds; ++I) {
    std::string D = std::to_string(I);
    Text += "d" + D + ":\n  %3 = and %1, " +
               std::to_string(1u << (I % 5)) +
               "\n  %4 = cmpeq %3, 0\n  br %4, t" + D + ", f" + D + "\n" +
               "t" + D + ":\n  %2 = add %2, 1\n  jmp j" + D + "\n" +
               "f" + D + ":\n  %2 = add %2, 2\n  jmp j" + D + "\n" +
               "j" + D + ":\n  jmp " +
               (I + 1 < Diamonds ? "d" + std::to_string(I + 1)
                                 : std::string("exit")) +
               "\n";
  }
  Text += "exit:\n  store %0, %2\n  ret\n}\n";

  ParseResult P = parseModule(Text);
  ASSERT_TRUE(P.Errors.empty()) << P.Errors.front();

  RemarkStream Remarks;
  PipelineOptions Opts = PipelineOptions::baseline();
  Opts.Remarks = &Remarks;
  runSyncPipeline(*P.M, Opts);
  EXPECT_GE(Remarks.count("pdom-sync", RemarkKind::Downgrade), 1u);
  Remark Downgrade;
  ASSERT_TRUE(
      Remarks.first("pdom-sync", "out of barrier registers", Downgrade));
  EXPECT_EQ(Downgrade.Function, "kernel");
}
