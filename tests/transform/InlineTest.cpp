//===- InlineTest.cpp - Tests for function inlining -----------------------------===//

#include "transform/Inline.h"

#include "TestKernels.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

uint64_t runChecksum(Module &M, const std::string &Kernel, uint64_t Seed) {
  Function *F = M.functionByName(Kernel);
  LaunchConfig C;
  C.Seed = Seed;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return Sim.memoryChecksum();
}

unsigned countCalls(const Function &F) {
  unsigned N = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      N += I.opcode() == Opcode::Call;
  return N;
}

} // namespace

TEST(InlineTest, PreservesSemanticsOnCommonCallKernel) {
  auto Reference = commonCallKernel(/*Annotate=*/false);
  uint64_t Expected = runChecksum(*Reference, "commoncall", 5);

  auto Inlined = commonCallKernel(/*Annotate=*/false);
  Function *Foo = Inlined->functionByName("foo");
  EXPECT_EQ(inlineAllCalls(*Inlined, Foo), 2u);
  ASSERT_TRUE(isWellFormed(*Inlined));
  EXPECT_EQ(countCalls(*Inlined->functionByName("commoncall")), 0u);
  EXPECT_EQ(runChecksum(*Inlined, "commoncall", 5), Expected);
}

TEST(InlineTest, ReturnValueFlowsToCallDestination) {
  Module M;
  Function *Sq = M.createFunction("square", 1);
  {
    IRBuilder B(Sq);
    B.startBlock("entry");
    unsigned V = B.mul(Operand::reg(0), Operand::reg(0));
    B.ret(Operand::reg(V));
  }
  Function *K = M.createFunction("k", 0);
  {
    IRBuilder B(K);
    B.startBlock("entry");
    unsigned T = B.tid();
    unsigned R = B.call(Sq, {Operand::reg(T)});
    B.store(Operand::reg(T), Operand::reg(R));
    B.ret();
  }
  EXPECT_EQ(inlineAllCalls(M, Sq), 1u);
  ASSERT_TRUE(isWellFormed(M));
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, K, C);
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[7], 49);
  EXPECT_EQ(Sim.memory()[31], 961);
}

TEST(InlineTest, MultipleReturnsBecomeJumps) {
  Module M;
  Function *AbsFn = M.createFunction("absval", 1);
  {
    IRBuilder B(AbsFn);
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Neg = AbsFn->createBlock("neg");
    B.setInsertBlock(Entry);
    unsigned C = B.cmpLT(Operand::reg(0), Operand::imm(0));
    B.br(Operand::reg(C), Neg, Entry /*placeholder*/);
    // Fix the else arm to a dedicated ret block.
    BasicBlock *Pos = AbsFn->createBlock("pos");
    Entry->terminator().operand(2).setBlock(Pos);
    B.setInsertBlock(Pos);
    B.ret(Operand::reg(0));
    B.setInsertBlock(Neg);
    unsigned N = B.neg(Operand::reg(0));
    B.ret(Operand::reg(N));
  }
  Function *K = M.createFunction("k", 0);
  {
    IRBuilder B(K);
    B.startBlock("entry");
    unsigned T = B.tid();
    unsigned Shifted = B.sub(Operand::reg(T), Operand::imm(16));
    unsigned R = B.call(AbsFn, {Operand::reg(Shifted)});
    B.store(Operand::reg(T), Operand::reg(R));
    B.ret();
  }
  EXPECT_EQ(inlineAllCalls(M, AbsFn), 1u);
  ASSERT_TRUE(isWellFormed(M));
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, K, C);
  ASSERT_TRUE(Sim.run().ok());
  EXPECT_EQ(Sim.memory()[0], 16);
  EXPECT_EQ(Sim.memory()[16], 0);
  EXPECT_EQ(Sim.memory()[31], 15);
}

TEST(InlineTest, RefusesRecursiveCallee) {
  Module M;
  Function *F = M.createFunction("self", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.call(F);
  B.ret();
  Function *K = M.createFunction("k", 0);
  {
    IRBuilder KB(K);
    KB.startBlock("entry");
    KB.call(F);
    KB.ret();
  }
  EXPECT_EQ(inlineAllCalls(M, F), 0u);
}

// Section 6: inlining removes the common PC, so the interprocedural
// gather no longer applies — the Figure 2(c) opportunity is destroyed.
TEST(InlineTest, InliningDestroysCommonCallOpportunity) {
  auto M = commonCallKernel(/*Annotate=*/true);
  Function *Foo = M->functionByName("foo");
  EXPECT_EQ(inlineAllCalls(*M, Foo), 2u);
  PipelineReport Report =
      runSyncPipeline(*M, PipelineOptions::speculative());
  // The reconverge_entry function has no remaining call sites.
  bool NoSites = false;
  for (const auto &D : Report.Interproc.Diagnostics)
    NoSites |= D.find("no call sites") != std::string::npos;
  EXPECT_TRUE(NoSites);
  EXPECT_EQ(Report.Interproc.FunctionsConverged, 0u);
}
