//===- ExhaustionTest.cpp - Barrier-register exhaustion degradation -------===//
///
/// \file
/// The register file has 16 convergence barriers. A kernel with more
/// divergent branches than registers must still compile — the passes
/// degrade gracefully (skip reconvergence sync for the overflow branches),
/// record the downgrades in the pipeline report, and the result must stay
/// semantically identical to the unsynchronized module.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

/// \p N sequential divergent diamonds, each folding a lane-dependent value
/// into an accumulator that is stored to the thread's own cell at the end.
std::string makeDiamondKernel(unsigned N) {
  std::string S = "memory 64\n\nfunc @kernel(0) {\n"
                  "entry:\n  %0 = tid\n  %1 = laneid\n  %2 = mov 0\n"
                  "  jmp d0\n";
  for (unsigned I = 0; I < N; ++I) {
    std::string D = std::to_string(I);
    unsigned Mask = 1u << (I % 5);
    S += "d" + D + ":\n";
    S += "  %3 = and %1, " + std::to_string(Mask) + "\n";
    S += "  %4 = cmpeq %3, 0\n";
    S += "  br %4, t" + D + ", f" + D + "\n";
    S += "t" + D + ":\n  %2 = add %2, " + std::to_string(I + 1) + "\n";
    S += "  jmp j" + D + "\n";
    S += "f" + D + ":\n  %2 = add %2, " + std::to_string(2 * I + 3) + "\n";
    S += "  jmp j" + D + "\n";
    S += "j" + D + ":\n  jmp " + (I + 1 < N ? "d" + std::to_string(I + 1)
                                            : std::string("exit")) + "\n";
  }
  S += "exit:\n  store %0, %2\n  ret\n}\n";
  return S;
}

std::unique_ptr<Module> parse(const std::string &Text) {
  ParseResult P = parseModule(Text);
  EXPECT_TRUE(P.Errors.empty()) << P.Errors.front();
  return std::move(P.M);
}

uint64_t runChecksum(Module &M) {
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, M.functionByName("kernel"), C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return Sim.memoryChecksum();
}

} // namespace

TEST(ExhaustionTest, PdomSyncDegradesGracefullyPastSixteenDiamonds) {
  std::string Text = makeDiamondKernel(18);
  auto M = parse(Text);

  PipelineReport Report = runSyncPipeline(*M, PipelineOptions::baseline());
  EXPECT_TRUE(Report.clean()) << Report.VerifierDiagnostics.front();
  // More divergent branches than barrier registers: the overflow must be
  // recorded as graceful degradation, not dropped silently.
  EXPECT_EQ(Report.Pdom.DivergentBranches, 18u);
  EXPECT_GT(Report.Pdom.OutOfRegisters, 0u);
  EXPECT_GT(Report.barrierDowngrades(), 0u);

  auto Diags = verifyModule(*M);
  EXPECT_TRUE(Diags.empty()) << Diags.front();

  // The downgraded module still computes the same memory image as the
  // untransformed one.
  auto Reference = parse(Text);
  EXPECT_EQ(runChecksum(*M), runChecksum(*Reference));
}

TEST(ExhaustionTest, WithinBudgetNothingDowngrades) {
  auto M = parse(makeDiamondKernel(8));
  PipelineReport Report = runSyncPipeline(*M, PipelineOptions::baseline());
  EXPECT_TRUE(Report.clean());
  EXPECT_EQ(Report.Pdom.OutOfRegisters, 0u);
  EXPECT_EQ(Report.barrierDowngrades(), 0u);
}
