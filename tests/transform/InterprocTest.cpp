//===- InterprocTest.cpp - Tests for Section 4.4 ------------------------------===//

#include "transform/Interprocedural.h"

#include "TestKernels.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

unsigned countOps(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      N += I.opcode() == Op;
  return N;
}

} // namespace

TEST(InterprocTest, EntryWaitAndCallerJoins) {
  auto M = commonCallKernel();
  BarrierRegistry Registry;
  InterprocReport R = applyInterproceduralReconvergence(*M, Registry);
  EXPECT_EQ(R.FunctionsConverged, 1u);
  EXPECT_EQ(R.CallersAnnotated, 1u);
  EXPECT_TRUE(isWellFormed(*M));

  Function *Foo = M->functionByName("foo");
  Function *K = M->functionByName("commoncall");
  // Callee: wait at entry.
  EXPECT_EQ(Foo->entry()->inst(0).opcode(), Opcode::WaitBarrier);
  // Caller: exactly one join at the common dominator (the entry block,
  // which holds the divergent branch).
  EXPECT_EQ(countOps(*K, Opcode::JoinBarrier), 1u);
  const Instruction &Join = K->entry()->inst(K->entry()->size() - 2);
  EXPECT_EQ(Join.opcode(), Opcode::JoinBarrier);
  EXPECT_EQ(Join.barrierId(), Foo->entry()->inst(0).barrierId());
}

TEST(InterprocTest, NoRejoinWhenEachPathCallsOnce) {
  auto M = commonCallKernel();
  BarrierRegistry Registry;
  InterprocReport R = applyInterproceduralReconvergence(*M, Registry);
  // Each arm calls foo exactly once and cannot reach another call.
  EXPECT_EQ(R.RejoinsInserted, 0u);
}

TEST(InterprocTest, RejoinInsertedForCallInLoop) {
  auto M = std::make_unique<Module>();
  Function *Foo = M->createFunction("foo", 0);
  Foo->setReconvergeAtEntry(true);
  {
    IRBuilder B(Foo);
    B.startBlock("entry");
    B.ret(Operand::imm(3));
  }
  Function *K = M->createFunction("k", 0);
  IRBuilder B(K);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Loop = K->createBlock("loop");
  BasicBlock *Exit = K->createBlock("exit");
  B.setInsertBlock(Entry);
  B.jmp(Loop);
  B.setInsertBlock(Loop);
  B.call(Foo);
  unsigned C = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(C), Loop, Exit);
  B.setInsertBlock(Exit);
  B.ret();
  K->recomputePreds();

  BarrierRegistry Registry;
  InterprocReport R = applyInterproceduralReconvergence(*M, Registry);
  EXPECT_EQ(R.FunctionsConverged, 1u);
  EXPECT_GE(R.RejoinsInserted, 1u);
  EXPECT_GE(R.CancelsInserted, 1u);
  EXPECT_TRUE(isWellFormed(*M));
}

TEST(InterprocTest, RecursionSkippedWithDiagnostic) {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("self", 0);
  F->setReconvergeAtEntry(true);
  IRBuilder B(F);
  B.startBlock("entry");
  B.call(F);
  B.ret();
  BarrierRegistry Registry;
  InterprocReport R = applyInterproceduralReconvergence(*M, Registry);
  EXPECT_EQ(R.FunctionsConverged, 0u);
  ASSERT_FALSE(R.Diagnostics.empty());
  EXPECT_NE(R.Diagnostics[0].find("recursive"), std::string::npos);
}

TEST(InterprocTest, UncalledFunctionReported) {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("lonely", 0);
  F->setReconvergeAtEntry(true);
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret();
  BarrierRegistry Registry;
  InterprocReport R = applyInterproceduralReconvergence(*M, Registry);
  EXPECT_EQ(R.FunctionsConverged, 0u);
  ASSERT_FALSE(R.Diagnostics.empty());
  EXPECT_NE(R.Diagnostics[0].find("no call sites"), std::string::npos);
}

TEST(InterprocTest, UnannotatedModuleUntouched) {
  auto M = commonCallKernel(/*Annotate=*/false);
  BarrierRegistry Registry;
  InterprocReport R = applyInterproceduralReconvergence(*M, Registry);
  EXPECT_EQ(R.FunctionsConverged, 0u);
  Function *Foo = M->functionByName("foo");
  EXPECT_EQ(countOps(*Foo, Opcode::WaitBarrier), 0u);
}
