//===- BarrierRegistryTest.cpp - Tests for barrier-register allocation ----------===//

#include "transform/BarrierRegistry.h"

#include <gtest/gtest.h>

using namespace simtsr;

TEST(BarrierRegistryTest, LowAllocationsCountUp) {
  BarrierRegistry R;
  EXPECT_EQ(R.allocateLow(BarrierOrigin::Speculative), 0u);
  EXPECT_EQ(R.allocateLow(BarrierOrigin::RegionExit), 1u);
  EXPECT_EQ(R.allocateLow(BarrierOrigin::Interproc), 2u);
}

TEST(BarrierRegistryTest, HighAllocationsCountDown) {
  BarrierRegistry R;
  EXPECT_EQ(R.allocateHigh(BarrierOrigin::PdomSync), 15u);
  EXPECT_EQ(R.allocateHigh(BarrierOrigin::PdomSync), 14u);
}

TEST(BarrierRegistryTest, OriginsAreRecorded) {
  BarrierRegistry R;
  unsigned Low = *R.allocateLow(BarrierOrigin::Speculative);
  unsigned High = *R.allocateHigh(BarrierOrigin::PdomSync);
  EXPECT_EQ(*R.origin(Low), BarrierOrigin::Speculative);
  EXPECT_EQ(*R.origin(High), BarrierOrigin::PdomSync);
  EXPECT_FALSE(R.origin(7).has_value());
}

TEST(BarrierRegistryTest, ExhaustionReturnsNullopt) {
  BarrierRegistry R;
  for (unsigned I = 0; I < NumBarrierRegisters; ++I)
    ASSERT_TRUE(R.allocateLow(BarrierOrigin::Speculative).has_value());
  EXPECT_FALSE(R.allocateLow(BarrierOrigin::Speculative).has_value());
  EXPECT_FALSE(R.allocateHigh(BarrierOrigin::PdomSync).has_value());
  EXPECT_EQ(R.numAllocated(), NumBarrierRegisters);
}

TEST(BarrierRegistryTest, ReleaseMakesIdReusable) {
  BarrierRegistry R;
  unsigned Id = *R.allocateHigh(BarrierOrigin::PdomSync);
  R.release(Id);
  EXPECT_FALSE(R.origin(Id).has_value());
  EXPECT_EQ(*R.allocateHigh(BarrierOrigin::PdomSync), Id);
}

TEST(BarrierRegistryTest, LowAndHighMeetInTheMiddle) {
  BarrierRegistry R;
  for (unsigned I = 0; I < 8; ++I) {
    ASSERT_TRUE(R.allocateLow(BarrierOrigin::Speculative).has_value());
    ASSERT_TRUE(R.allocateHigh(BarrierOrigin::PdomSync).has_value());
  }
  EXPECT_FALSE(R.allocateLow(BarrierOrigin::Speculative).has_value());
}

TEST(BarrierRegistryTest, OriginNamesAreStable) {
  EXPECT_STREQ(getBarrierOriginName(BarrierOrigin::PdomSync), "pdom");
  EXPECT_STREQ(getBarrierOriginName(BarrierOrigin::Speculative),
               "speculative");
  EXPECT_STREQ(getBarrierOriginName(BarrierOrigin::RegionExit),
               "region-exit");
  EXPECT_STREQ(getBarrierOriginName(BarrierOrigin::Interproc),
               "interprocedural");
}
