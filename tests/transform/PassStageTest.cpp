//===- PassStageTest.cpp - Stage registry and pipeline catalog ------------===//
//
// The pipeline-composition API's contract: the catalog is the single
// source of truth for standardPipelineNames(), every catalog stage is
// registered, the legacy PipelineOptions bridge maps every historical
// configuration onto the exact stage list the catalog names, and the
// stage runner records a per-stage trace and rejects unknown stages.
//
//===----------------------------------------------------------------------===//

#include "transform/PassStage.h"

#include "TestIR.h"
#include "kernels/Runner.h"
#include "kernels/Workload.h"
#include "transform/Pipeline.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace simtsr;

TEST(PassStageTest, CatalogBacksStandardPipelineNames) {
  const std::vector<std::string> Names = standardPipelineNames();
  const std::vector<PipelineDef> &Catalog = pipelineCatalog();
  ASSERT_EQ(Names.size(), Catalog.size());
  for (size_t I = 0; I < Names.size(); ++I)
    EXPECT_EQ(Names[I], Catalog[I].Name);
}

TEST(PassStageTest, EveryCatalogStageIsRegistered) {
  for (const PipelineDef &Def : pipelineCatalog()) {
    EXPECT_FALSE(Def.Stages.empty()) << Def.Name;
    EXPECT_FALSE(Def.Summary.empty()) << Def.Name;
    for (const std::string &Stage : Def.Stages) {
      const PassStageDef *S = findPassStage(Stage);
      ASSERT_NE(S, nullptr) << Def.Name << " names unknown stage " << Stage;
      EXPECT_EQ(S->Name, Stage);
      EXPECT_TRUE(S->Run != nullptr) << Stage;
    }
  }
  EXPECT_EQ(findPassStage("no-such-stage"), nullptr);
}

TEST(PassStageTest, LegacyOptionsMapOntoCatalogStageLists) {
  // The byte-compatibility contract: constructing a PipelineSpec from each
  // historical options preset must yield exactly the stage list the
  // catalog publishes under the preset's name. This is what keeps the
  // pre-redesign golden digests valid.
  PipelineOptions Noop;
  Noop.PdomSync = false;
  Noop.StripPredicts = true;
  PipelineOptions Sr;
  Sr.ApplySR = true;
  PipelineOptions Realloc = PipelineOptions::speculative();
  Realloc.ReallocBarriers = true;
  const std::vector<std::pair<std::string, PipelineOptions>> Legacy = {
      {"noop", Noop},
      {"pdom", PipelineOptions::baseline()},
      {"sr", Sr},
      {"sr+ip", PipelineOptions::speculative()},
      {"soft", PipelineOptions::softBarrier(8)},
      {"sr+ip+realloc", Realloc},
  };
  for (const auto &[Name, Opts] : Legacy) {
    const PipelineDef *Def = findPipelineDef(Name);
    ASSERT_NE(Def, nullptr) << Name;
    const PipelineSpec Spec(Opts);
    EXPECT_EQ(Spec.Stages, Def->Stages) << Name;
    EXPECT_EQ(stageListForOptions(Opts), Def->Stages) << Name;
  }
}

TEST(PassStageTest, MeldConfigsComposeMeldWithTheLegacyStages) {
  const auto StagesOf = [](const char *Name) {
    const PipelineDef *Def = findPipelineDef(Name);
    EXPECT_NE(Def, nullptr) << Name;
    return Def ? Def->Stages : std::vector<std::string>{};
  };
  EXPECT_EQ(StagesOf("meld"),
            (std::vector<std::string>{"strip-predicts", "meld", "pdom-sync",
                                      "deconflict", "verify"}));
  EXPECT_EQ(StagesOf("meld+sr"),
            (std::vector<std::string>{"meld", "pdom-sync", "sr", "deconflict",
                                      "verify"}));
  EXPECT_EQ(StagesOf("meld+sr+ip"),
            (std::vector<std::string>{"meld", "pdom-sync", "sr", "interproc",
                                      "deconflict", "verify"}));
}

TEST(PassStageTest, StandardPipelineSpecParameterizesSoftThreshold) {
  const std::optional<PipelineSpec> Soft = standardPipelineSpec("soft", 6);
  ASSERT_TRUE(Soft.has_value());
  EXPECT_EQ(Soft->Params.SR.SoftThreshold, 6);
  // Only the soft config consumes the threshold; every other catalog
  // entry keeps classic full-warp waits regardless of the argument.
  for (const std::string &Name : standardPipelineNames()) {
    if (Name == "soft")
      continue;
    const std::optional<PipelineSpec> S = standardPipelineSpec(Name, 6);
    ASSERT_TRUE(S.has_value()) << Name;
    EXPECT_EQ(S->Params.SR.SoftThreshold, -1) << Name;
  }
  EXPECT_FALSE(standardPipelineSpec("srr").has_value());
  EXPECT_FALSE(standardPipelineSpec("").has_value());
}

TEST(PassStageTest, RunnerRecordsStageTraceInOrder) {
  testir::Listing1 L;
  const std::optional<PipelineSpec> Spec = standardPipelineSpec("meld+sr");
  ASSERT_TRUE(Spec.has_value());
  const PipelineReport Report = runSyncPipeline(*L.M, *Spec);
  EXPECT_TRUE(Report.clean());
  ASSERT_EQ(Report.Stages.size(), Spec->Stages.size());
  for (size_t I = 0; I < Spec->Stages.size(); ++I)
    EXPECT_EQ(Report.Stages[I].Stage, Spec->Stages[I]);
}

TEST(PassStageTest, UnknownStageDirtiesTheReport) {
  testir::Listing1 L;
  const PipelineSpec Spec =
      PipelineBuilder().stages({"pdom-sync", "not-a-stage", "verify"}).build();
  const PipelineReport Report = runSyncPipeline(*L.M, Spec);
  EXPECT_FALSE(Report.clean());
  bool Mentioned = false;
  for (const std::string &D : Report.VerifierDiagnostics)
    Mentioned = Mentioned || D.find("not-a-stage") != std::string::npos;
  EXPECT_TRUE(Mentioned);
}

TEST(PassStageTest, BuilderComposesStagesAndParams) {
  testir::Listing1 L;
  MeldOptions MO;
  MO.MinPairs = 2;
  const PipelineSpec Spec = PipelineBuilder()
                                .stage("strip-predicts")
                                .stage("meld")
                                .stages({"pdom-sync", "deconflict", "verify"})
                                .softThreshold(4)
                                .regionExitBarrier(false)
                                .meld(MO)
                                .deconflict(DeconflictStrategy::Static)
                                .build();
  EXPECT_EQ(Spec.Stages,
            (std::vector<std::string>{"strip-predicts", "meld", "pdom-sync",
                                      "deconflict", "verify"}));
  EXPECT_EQ(Spec.Params.SR.SoftThreshold, 4);
  EXPECT_FALSE(Spec.Params.SR.RegionExitBarrier);
  EXPECT_EQ(Spec.Params.Meld.MinPairs, 2u);
  const PipelineReport Report = runSyncPipeline(*L.M, Spec);
  EXPECT_TRUE(Report.clean());
}

TEST(PassStageTest, MeldConfigsMatchNoneOnWorkloadChecksums) {
  // The oracle's invariant, pinned as a unit test per the issue: meld is
  // an optimization, never a semantic change — every meld config computes
  // the same per-workload checksum as the untransformed module.
  for (const Workload &W : makeAllWorkloads(0.25)) {
    // "none": no optimizer stages at all, just the mandatory tail.
    const WorkloadOutcome None = runWorkload(
        W, PipelineBuilder().stages({"deconflict", "verify"}).build());
    ASSERT_TRUE(None.ok()) << W.Name;
    for (const char *Config : {"meld", "meld+sr", "meld+sr+ip"}) {
      const std::optional<PipelineSpec> Spec = standardPipelineSpec(Config);
      ASSERT_TRUE(Spec.has_value());
      const WorkloadOutcome Out = runWorkload(W, *Spec);
      ASSERT_TRUE(Out.ok()) << W.Name << " [" << Config << "]";
      EXPECT_EQ(Out.Checksum, None.Checksum)
          << W.Name << " [" << Config << "]";
    }
  }
}
