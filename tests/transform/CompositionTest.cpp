//===- CompositionTest.cpp - Transform stacking property tests -------------------===//
///
/// Stacks of standalone transforms (unroll, inline, simplify, realloc) in
/// varying orders, followed by the synchronization pipeline, must always
/// preserve kernel semantics and terminate deadlock-free. This is the
/// broad-spectrum interaction safety net for Section 6.
///
//===----------------------------------------------------------------------===//

#include "TestKernels.h"
#include "analysis/LoopInfo.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/BarrierRealloc.h"
#include "transform/Inline.h"
#include "transform/LoopUnroll.h"
#include "transform/Pipeline.h"
#include "transform/SimplifyCfg.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

void applyUnroll(Module &M, const char *FuncName, const char *HeaderName,
                 unsigned Factor) {
  Function *F = M.functionByName(FuncName);
  ASSERT_NE(F, nullptr);
  BasicBlock *Header = F->blockByName(HeaderName);
  if (!Header)
    return; // Merged away by a prior simplify; fine.
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  if (Loop *L = LI.loopWithHeader(Header))
    unrollLoop(*F, *L, Factor);
}

uint64_t runChecksum(Module &M, const char *Kernel) {
  Function *F = M.functionByName(Kernel);
  LaunchConfig C;
  C.Seed = 21;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return Sim.memoryChecksum();
}

} // namespace

TEST(CompositionTest, UnrollThenSimplifyThenSRLoopMerge) {
  auto Reference = loopMergeKernel(8, 1, 16);
  {
    PipelineOptions NoSync;
    NoSync.PdomSync = false;
    NoSync.StripPredicts = true;
    runSyncPipeline(*Reference, NoSync);
  }
  uint64_t Expected = runChecksum(*Reference, "loopmerge");

  auto M = loopMergeKernel(8, 1, 16);
  applyUnroll(*M, "loopmerge", "inner_header", 3);
  simplifyCfg(*M);
  PipelineOptions Opts = PipelineOptions::speculative();
  Opts.ReallocBarriers = true;
  PipelineReport Report = runSyncPipeline(*M, Opts);
  EXPECT_TRUE(Report.clean());
  ASSERT_TRUE(isWellFormed(*M));
  EXPECT_EQ(runChecksum(*M, "loopmerge"), Expected);
}

TEST(CompositionTest, InlineThenSimplifyThenPipelines) {
  auto Reference = commonCallKernel(false);
  uint64_t Expected = runChecksum(*Reference, "commoncall");
  for (auto Strategy :
       {DeconflictStrategy::Static, DeconflictStrategy::Dynamic}) {
    auto M = commonCallKernel(true);
    inlineAllCalls(*M, M->functionByName("foo"));
    simplifyCfg(*M);
    PipelineOptions Opts = PipelineOptions::speculative(Strategy);
    Opts.ReallocBarriers = true;
    PipelineReport Report = runSyncPipeline(*M, Opts);
    EXPECT_TRUE(Report.clean());
    EXPECT_EQ(runChecksum(*M, "commoncall"), Expected);
  }
}

TEST(CompositionTest, SimplifyBeforeAndAfterSRIsSafe) {
  auto Reference = iterationDelayKernel(16, 25, true, 40);
  {
    PipelineOptions NoSync;
    NoSync.PdomSync = false;
    NoSync.StripPredicts = true;
    runSyncPipeline(*Reference, NoSync);
  }
  uint64_t Expected = runChecksum(*Reference, "itdelay");

  auto M = iterationDelayKernel(16, 25, true, 40);
  simplifyCfg(*M);
  runSyncPipeline(*M, PipelineOptions::speculative());
  // Post-pipeline simplification must not disturb the synchronization.
  SimplifyReport SR = simplifyCfg(*M);
  (void)SR;
  ASSERT_TRUE(isWellFormed(*M));
  EXPECT_EQ(runChecksum(*M, "itdelay"), Expected);
}

TEST(CompositionTest, RepeatedPipelineApplicationIsRejectedSafely) {
  // Running the SR pipeline twice must not double-insert synchronization:
  // the second run has no predict directives left to consume.
  auto M = loopMergeKernel(8, 1, 16);
  PipelineReport First = runSyncPipeline(*M, PipelineOptions::speculative());
  EXPECT_EQ(First.SR.Applied.size(), 1u);
  PipelineReport Second =
      runSyncPipeline(*M, PipelineOptions::speculative());
  EXPECT_TRUE(Second.SR.Applied.empty());
  ASSERT_TRUE(isWellFormed(*M));
  // Still runs (the duplicated PDOM barriers from the second run are
  // redundant but harmless).
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("loopmerge"), C);
  EXPECT_TRUE(Sim.run().ok());
}
