//===- SimplifyCfgTest.cpp - Tests for CFG cleanup --------------------------------===//

#include "transform/SimplifyCfg.h"

#include "TestKernels.h"
#include "ir/CFGUtils.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/Inline.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

TEST(SimplifyCfgTest, RemovesUnreachableBlocks) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret();
  BasicBlock *Dead = F->createBlock("dead");
  B.setInsertBlock(Dead);
  B.nop();
  B.ret();
  SimplifyReport R = simplifyCfg(*F);
  EXPECT_EQ(R.UnreachableRemoved, 1u);
  EXPECT_EQ(F->size(), 1u);
  EXPECT_TRUE(isWellFormed(M));
}

TEST(SimplifyCfgTest, KeepsUnreachablePredictLabels) {
  // A predict label must not be deleted even if currently unreachable.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Label = F->createBlock("label");
  B.setInsertBlock(Label);
  B.ret();
  B.setInsertBlock(Entry);
  B.predict(Label);
  B.ret();
  simplifyCfg(*F);
  EXPECT_NE(F->blockByName("label"), nullptr);
}

TEST(SimplifyCfgTest, ForwardsTrampolines) {
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Tramp = F->createBlock("tramp");
  BasicBlock *Real = F->createBlock("real");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), Tramp, Real);
  B.setInsertBlock(Tramp);
  B.jmp(Real);
  B.setInsertBlock(Real);
  B.ret();
  F->recomputePreds();
  SimplifyReport R = simplifyCfg(*F);
  EXPECT_GE(R.TrampolinesForwarded, 1u);
  EXPECT_EQ(F->blockByName("tramp"), nullptr); // removed as unreachable
  auto Succs = F->entry()->successors();
  EXPECT_EQ(Succs[0], F->blockByName("real"));
  EXPECT_EQ(Succs[1], F->blockByName("real"));
}

TEST(SimplifyCfgTest, SurvivesTrampolineCycles) {
  // a -> b -> a as an intentional infinite loop must not hang the pass.
  Module M;
  Function *F = M.createFunction("f", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *C = F->createBlock("c");
  B.setInsertBlock(Entry);
  B.br(Operand::reg(0), A, C);
  B.setInsertBlock(A);
  BasicBlock *B2 = F->createBlock("b");
  B.jmp(B2);
  B.setInsertBlock(B2);
  B.jmp(A);
  B.setInsertBlock(C);
  B.ret();
  F->recomputePreds();
  simplifyCfg(*F);
  EXPECT_TRUE(isWellFormed(M));
  EXPECT_NE(F->blockByName("a"), nullptr);
}

TEST(SimplifyCfgTest, MergesStraightLineChains) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Mid = F->createBlock("mid");
  BasicBlock *End = F->createBlock("end");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  B.jmp(Mid);
  B.setInsertBlock(Mid);
  unsigned V = B.mul(Operand::reg(T), Operand::imm(2));
  B.jmp(End);
  B.setInsertBlock(End);
  B.store(Operand::reg(T), Operand::reg(V));
  B.ret();
  F->recomputePreds();
  SimplifyReport R = simplifyCfg(*F);
  EXPECT_EQ(R.ChainsMerged, 2u);
  EXPECT_EQ(F->size(), 1u);
  EXPECT_TRUE(isWellFormed(M));
}

TEST(SimplifyCfgTest, PreservesSemanticsAfterInlining) {
  auto Reference = commonCallKernel(/*Annotate=*/false);
  auto Simplified = commonCallKernel(/*Annotate=*/false);
  inlineAllCalls(*Simplified, Simplified->functionByName("foo"));
  SimplifyReport R = simplifyCfg(*Simplified);
  EXPECT_GT(R.total(), 0u);
  EXPECT_TRUE(isWellFormed(*Simplified));

  auto Run = [](Module &M) {
    LaunchConfig C;
    C.Seed = 4;
    C.Latency = LatencyModel::unit();
    WarpSimulator Sim(M, M.functionByName("commoncall"), C);
    EXPECT_TRUE(Sim.run().ok());
    return Sim.memoryChecksum();
  };
  EXPECT_EQ(Run(*Reference), Run(*Simplified));
}

TEST(SimplifyCfgTest, IdempotentOnWorkloads) {
  auto M = loopMergeKernel();
  simplifyCfg(*M);
  SimplifyReport Second = simplifyCfg(*M);
  EXPECT_EQ(Second.total(), 0u);
}

TEST(SimplifyCfgTest, WorkloadSemanticsUnchanged) {
  auto Reference = iterationDelayKernel();
  auto Cleaned = iterationDelayKernel();
  simplifyCfg(*Cleaned);
  for (auto &M : {std::ref(*Reference), std::ref(*Cleaned)})
    runSyncPipeline(M.get(), PipelineOptions::speculative());
  auto Run = [](Module &M) {
    LaunchConfig C;
    C.Seed = 8;
    C.Latency = LatencyModel::unit();
    WarpSimulator Sim(M, M.functionByName("itdelay"), C);
    EXPECT_TRUE(Sim.run().ok());
    return Sim.memoryChecksum();
  };
  EXPECT_EQ(Run(*Reference), Run(*Cleaned));
}
