//===- CoarsenTest.cpp - Tests for thread coarsening -----------------------------===//

#include "transform/Coarsen.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "kernels/KernelBuild.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::kernelbuild;

namespace {

/// A single-task kernel: task `t` runs a variable-length loop (length
/// derived deterministically from t) and adds its result into mem[t].
std::unique_ptr<Module> singleTaskKernel() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(512);
  Function *F = M->createFunction("task", 1);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Done = F->createBlock("done");
  B.setInsertBlock(Entry);
  unsigned Len = B.rem(Operand::reg(0), Operand::imm(13));
  unsigned J = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  B.jmp(Header);
  B.setInsertBlock(Header);
  unsigned C = B.cmpLT(Operand::reg(J), Operand::reg(Len));
  B.br(Operand::reg(C), Body, Done);
  B.setInsertBlock(Body);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(J));
  X = emitAluChain(B, X, 6, 31337);
  Body->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
  unsigned JN = B.add(Operand::reg(J), Operand::imm(1));
  Body->append(Instruction(Opcode::Mov, J, {Operand::reg(JN)}));
  B.jmp(Header);
  B.setInsertBlock(Done);
  B.store(Operand::reg(0), Operand::reg(Acc));
  B.ret(Operand::imm(0));
  F->recomputePreds();
  return M;
}

} // namespace

TEST(CoarsenTest, WrapperCoversAllTasks) {
  auto M = singleTaskKernel();
  Function *Task = M->functionByName("task");
  Function *Wrapper = coarsenKernel(*M, Task, 128);
  ASSERT_NE(Wrapper, nullptr);
  EXPECT_EQ(Wrapper->name(), "task.coarsened");
  EXPECT_TRUE(isWellFormed(*M));

  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, Wrapper, C);
  ASSERT_TRUE(Sim.run().ok());
  // Every one of the 128 tasks ran exactly once: mem[t] nonzero for all t.
  for (int64_t T = 0; T < 128; ++T)
    EXPECT_NE(Sim.memory()[static_cast<size_t>(T)], 0) << "task " << T;
  EXPECT_EQ(Sim.memory()[128], 0);
}

TEST(CoarsenTest, MatchesPerThreadExecutionForFirstWarp) {
  // With exactly warpSize tasks, coarsening degenerates to one task per
  // thread and must compute the identical results.
  auto Single = singleTaskKernel();
  Function *TaskA = Single->functionByName("task");
  Function *WrapA = coarsenKernel(*Single, TaskA, 32);
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator SimA(*Single, WrapA, C);
  ASSERT_TRUE(SimA.run().ok());

  // Reference: call task(tid) directly from a launcher.
  auto Ref = singleTaskKernel();
  Function *TaskB = Ref->functionByName("task");
  Function *Launcher = Ref->createFunction("launch", 0);
  {
    IRBuilder B(Launcher);
    B.startBlock("entry");
    unsigned T = B.tid();
    B.call(TaskB, {Operand::reg(T)});
    B.ret();
  }
  WarpSimulator SimB(*Ref, Launcher, C);
  ASSERT_TRUE(SimB.run().ok());
  EXPECT_EQ(SimA.memoryChecksum(), SimB.memoryChecksum());
}

TEST(CoarsenTest, RejectsWrongArity) {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("noargs", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret();
  EXPECT_EQ(coarsenKernel(*M, F, 10), nullptr);
}

TEST(CoarsenTest, EnablesEntryGatherOnTaskKernel) {
  // The paper's recipe: coarsen, then gather threads as they start tasks.
  auto Baseline = singleTaskKernel();
  Function *TaskA = Baseline->functionByName("task");
  Function *WrapA = coarsenKernel(*Baseline, TaskA, 256);
  runSyncPipeline(*Baseline, PipelineOptions::baseline());

  auto Gathered = singleTaskKernel();
  Function *TaskB = Gathered->functionByName("task");
  TaskB->setReconvergeAtEntry(true);
  Function *WrapB = coarsenKernel(*Gathered, TaskB, 256);
  PipelineReport Report =
      runSyncPipeline(*Gathered, PipelineOptions::speculative());
  EXPECT_EQ(Report.Interproc.FunctionsConverged, 1u);

  LaunchConfig C;
  C.Latency = LatencyModel::computeBound();
  WarpSimulator SimA(*Baseline, WrapA, C);
  WarpSimulator SimB(*Gathered, WrapB, C);
  RunResult RA = SimA.run();
  RunResult RB = SimB.run();
  ASSERT_TRUE(RA.ok());
  ASSERT_TRUE(RB.ok()) << RB.TrapMessage;
  EXPECT_EQ(SimA.memoryChecksum(), SimB.memoryChecksum());
}
