//===- AutoDetectTest.cpp - Tests for Section 4.5 -------------------------------===//

#include "transform/AutoDetect.h"

#include "TestKernels.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

/// Profiles a baseline run of \p M (on a clone, leaving \p M untouched).
/// Block names survive the baseline pipeline, so the profile rows line up
/// with the original module.
SimStats profileBaselineRun(const Module &M, const std::string &Kernel) {
  ParseResult Clone = parseModule(printModule(M));
  EXPECT_TRUE(Clone.ok());
  runSyncPipeline(*Clone.M, PipelineOptions::baseline());
  Function *F = Clone.M->functionByName(Kernel);
  LaunchConfig C;
  C.Seed = 9;
  C.Latency = LatencyModel::computeBound();
  C.ProfileBlocks = true;
  WarpSimulator Sim(*Clone.M, F, C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return R.Stats;
}

const AutoCandidate *findCandidate(const AutoDetectReport &R,
                                   AutoCandidate::Kind K) {
  for (const AutoCandidate &C : R.Candidates)
    if (C.PatternKind == K)
      return &C;
  return nullptr;
}

unsigned countPredicts(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M)
    for (BasicBlock *BB : *F)
      for (const Instruction &I : BB->instructions())
        N += I.opcode() == Opcode::Predict;
  return N;
}

} // namespace

TEST(AutoDetectTest, FindsLoopMergeInNestedDivergentLoop) {
  auto M = loopMergeKernel(16, 1, 32, /*Annotate=*/false);
  AutoDetectOptions Opts;
  AutoDetectReport R = detectReconvergence(*M, Opts);
  const AutoCandidate *C =
      findCandidate(R, AutoCandidate::Kind::LoopMerge);
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->Profitable) << C->Reason;
  EXPECT_EQ(C->Label->name(), "inner_body");
  EXPECT_EQ(C->RegionStart->name(), "entry"); // the outer preheader
  EXPECT_GT(C->Score, Opts.MinGainRatio);
  EXPECT_EQ(R.Inserted, 1u);
  EXPECT_EQ(countPredicts(*M), 1u);
}

TEST(AutoDetectTest, FindsIterationDelayForExpensiveArm) {
  auto M = iterationDelayKernel(32, 15, /*Annotate=*/false, 80);
  AutoDetectOptions Opts;
  AutoDetectReport R = detectReconvergence(*M, Opts);
  const AutoCandidate *C =
      findCandidate(R, AutoCandidate::Kind::IterationDelay);
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->Profitable) << C->Reason;
  EXPECT_EQ(C->Label->name(), "hot");
  EXPECT_EQ(R.Inserted, 1u);
}

TEST(AutoDetectTest, RejectsCheapArm) {
  // A hot arm barely heavier than the refill path fails the gain ratio.
  auto M = iterationDelayKernel(16, 40, /*Annotate=*/false, /*HotMuls=*/1);
  AutoDetectOptions Opts;
  AutoDetectReport R = detectReconvergence(*M, Opts);
  for (const AutoCandidate &C : R.Candidates)
    EXPECT_FALSE(C.Profitable) << C.Reason;
  EXPECT_EQ(R.Inserted, 0u);
  EXPECT_EQ(countPredicts(*M), 0u);
}

TEST(AutoDetectTest, VetoesRegionWithWarpSync) {
  auto M = loopMergeKernel(16, 1, 32, /*Annotate=*/false);
  // Inject a warp-synchronous op into the epilog.
  Function *F = M->functionByName("loopmerge");
  F->blockByName("epilog")->insert(
      0, Instruction(Opcode::WarpSync, NoRegister, {}));
  AutoDetectOptions Opts;
  AutoDetectReport R = detectReconvergence(*M, Opts);
  for (const AutoCandidate &C : R.Candidates) {
    EXPECT_FALSE(C.Profitable);
    EXPECT_NE(C.Reason.find("synchronization"), std::string::npos);
  }
  EXPECT_EQ(R.Inserted, 0u);
}

TEST(AutoDetectTest, ApplyFalseOnlyReports) {
  auto M = loopMergeKernel(16, 1, 32, /*Annotate=*/false);
  AutoDetectOptions Opts;
  Opts.Apply = false;
  AutoDetectReport R = detectReconvergence(*M, Opts);
  EXPECT_FALSE(R.Candidates.empty());
  EXPECT_EQ(R.Inserted, 0u);
  EXPECT_EQ(countPredicts(*M), 0u);
}

TEST(AutoDetectTest, ProfileGuidedWeightsUseMeasuredCycles) {
  // Build a profile by running the baseline with block profiling, then
  // verify the detector consumes the measured weights.
  auto M = loopMergeKernel(16, 1, 32, /*Annotate=*/false);
  SimStats Profiled = profileBaselineRun(*M, "loopmerge");

  AutoDetectOptions Opts;
  Opts.Profile = &Profiled;
  AutoDetectReport R = detectReconvergence(*M, Opts);
  const AutoCandidate *C =
      findCandidate(R, AutoCandidate::Kind::LoopMerge);
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->Profitable) << C->Reason;
  // Profile weights are measured totals, much larger than static sums.
  EXPECT_GT(C->BodyWeight, 1000.0);
}

TEST(AutoDetectTest, AutoMatchesManualAnnotation) {
  // Section 5.4: "automatic Speculative Reconvergence performs the same as
  // programmer-annotated variants".
  auto Manual = loopMergeKernel();
  runSyncPipeline(*Manual, PipelineOptions::speculative());

  auto Auto = loopMergeKernel(16, 1, 32, /*Annotate=*/false);
  AutoDetectOptions Opts;
  detectReconvergence(*Auto, Opts);
  runSyncPipeline(*Auto, PipelineOptions::speculative());

  auto Run = [](Module &M) {
    Function *F = M.functionByName("loopmerge");
    LaunchConfig C;
    C.Seed = 9;
    C.Latency = LatencyModel::computeBound();
    WarpSimulator Sim(M, F, C);
    RunResult R = Sim.run();
    EXPECT_TRUE(R.ok()) << R.TrapMessage;
    return R.Stats;
  };
  SimStats ManualStats = Run(*Manual);
  SimStats AutoStats = Run(*Auto);
  EXPECT_EQ(AutoStats.Cycles, ManualStats.Cycles);
  EXPECT_EQ(AutoStats.IssueSlots, ManualStats.IssueSlots);
}

TEST(AutoDetectTest, ProfileVetoesBranchThatNeverDiverges) {
  // The hot condition is statically divergent (rand-based) but never
  // actually fires both ways at run time: roll in [0,100) always < 1000.
  auto M = iterationDelayKernel(16, /*HotPct=*/1000, /*Annotate=*/false,
                                /*HotMuls=*/80);
  SimStats Profile = profileBaselineRun(*M, "itdelay");
  AutoDetectOptions Opts;
  Opts.Profile = &Profile;
  AutoDetectReport R = detectReconvergence(*M, Opts);
  for (const AutoCandidate &C : R.Candidates)
    EXPECT_FALSE(C.Profitable) << C.Reason;
  EXPECT_EQ(R.Inserted, 0u);

  // Static heuristics (no profile) would have accepted it.
  auto M2 = iterationDelayKernel(16, 1000, false, 80);
  AutoDetectOptions StaticOpts;
  AutoDetectReport R2 = detectReconvergence(*M2, StaticOpts);
  EXPECT_GE(R2.Inserted, 1u);
}

TEST(AutoDetectTest, BranchProfileRecordsDivergence) {
  auto M = iterationDelayKernel(16, 40, /*Annotate=*/false, 10);
  SimStats Profile = profileBaselineRun(*M, "itdelay");
  auto It = Profile.Branches.find({"itdelay", "header"});
  ASSERT_NE(It, Profile.Branches.end());
  EXPECT_GT(It->second.Executions, 0u);
  EXPECT_GT(It->second.Divergent, 0u);
  EXPECT_GT(It->second.divergenceRate(), 0.1);
}
