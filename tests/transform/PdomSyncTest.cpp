//===- PdomSyncTest.cpp - Tests for baseline PDOM synchronization -------------===//

#include "transform/PdomSync.h"

#include "TestIR.h"
#include "analysis/Divergence.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

namespace {

unsigned countOps(const Function &F, Opcode Op, int Barrier = -1) {
  unsigned N = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      if (I.opcode() == Op &&
          (Barrier < 0 ||
           I.barrierId() == static_cast<unsigned>(Barrier)))
        ++N;
  return N;
}

} // namespace

TEST(PdomSyncTest, InsertsJoinWaitAtDivergentBranchAndPdom) {
  Listing1 L;
  PostDominatorTree PDT(*L.F);
  DivergenceAnalysis DA(*L.F, PDT);
  BarrierRegistry Registry;
  PdomSyncReport R = insertPdomSync(*L.F, DA, Registry);

  // Both the condition branch (bb2) and the loop-again branch (bb4) are
  // divergent.
  EXPECT_EQ(R.DivergentBranches, 2u);
  EXPECT_EQ(R.BarriersInserted, 2u);
  EXPECT_EQ(R.Skipped, 0u);
  EXPECT_TRUE(isWellFormed(*L.M));

  // bb2's barrier: join before the branch, wait at bb4 (the IPDOM).
  const Instruction &JoinAtBranch = L.BB2->inst(L.BB2->size() - 2);
  EXPECT_EQ(JoinAtBranch.opcode(), Opcode::JoinBarrier);
  unsigned B2 = JoinAtBranch.barrierId();
  EXPECT_EQ(countOps(*L.F, Opcode::WaitBarrier, static_cast<int>(B2)), 1u);
  bool WaitInBB4 = false;
  for (const Instruction &I : L.BB4->instructions())
    WaitInBB4 |= I.opcode() == Opcode::WaitBarrier && I.barrierId() == B2;
  EXPECT_TRUE(WaitInBB4);

  // Barriers come from the high end of the register file.
  EXPECT_GE(B2, 14u);
}

TEST(PdomSyncTest, UniformBranchesLeftAlone) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned C = B.cmpLT(Operand::imm(1), Operand::imm(2)); // uniform
  B.br(Operand::reg(C), Then, Join);
  B.setInsertBlock(Then);
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.ret();
  F->recomputePreds();

  PostDominatorTree PDT(*F);
  DivergenceAnalysis::Options Opts;
  Opts.ParamsDivergent = false;
  DivergenceAnalysis DA(*F, PDT, Opts);
  BarrierRegistry Registry;
  PdomSyncReport R = insertPdomSync(*F, DA, Registry);
  EXPECT_EQ(R.DivergentBranches, 0u);
  EXPECT_EQ(countOps(*F, Opcode::JoinBarrier), 0u);
}

TEST(PdomSyncTest, BranchWithoutCommonPdomSkipped) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Left = F->createBlock("left");
  BasicBlock *Right = F->createBlock("right");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.br(Operand::reg(C), Left, Right);
  B.setInsertBlock(Left);
  B.ret();
  B.setInsertBlock(Right);
  B.ret();
  F->recomputePreds();

  PostDominatorTree PDT(*F);
  DivergenceAnalysis DA(*F, PDT);
  BarrierRegistry Registry;
  PdomSyncReport R = insertPdomSync(*F, DA, Registry);
  EXPECT_EQ(R.DivergentBranches, 1u);
  EXPECT_EQ(R.BarriersInserted, 0u);
  EXPECT_EQ(R.Skipped, 1u);
  ASSERT_EQ(R.Diagnostics.size(), 1u);
  EXPECT_NE(R.Diagnostics[0].find("no common post-dominator"),
            std::string::npos);
}

TEST(PdomSyncTest, RegisterExhaustionReported) {
  Listing1 L;
  PostDominatorTree PDT(*L.F);
  DivergenceAnalysis DA(*L.F, PDT);
  BarrierRegistry Registry;
  // Exhaust the register file first.
  for (unsigned I = 0; I < NumBarrierRegisters; ++I)
    ASSERT_TRUE(Registry.allocateLow(BarrierOrigin::Speculative).has_value());
  PdomSyncReport R = insertPdomSync(*L.F, DA, Registry);
  EXPECT_EQ(R.BarriersInserted, 0u);
  EXPECT_EQ(R.Skipped, 2u);
}
