//===- SRPassTest.cpp - Tests for the speculative-reconvergence pass ----------===//

#include "transform/SpeculativeReconvergence.h"

#include "TestIR.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "observe/Remark.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testir;

namespace {

std::vector<Opcode> opcodesOf(const BasicBlock *BB) {
  std::vector<Opcode> Ops;
  for (const Instruction &I : BB->instructions())
    Ops.push_back(I.opcode());
  return Ops;
}

} // namespace

// The golden Figure 4(d) shape on the Listing 1 CFG.
TEST(SRPassTest, MatchesFigure4dShape) {
  Listing1 L;
  BarrierRegistry Registry;
  SRReport R = applySpeculativeReconvergence(*L.F, Registry);

  ASSERT_EQ(R.Applied.size(), 1u);
  const AppliedRegion &A = R.Applied[0];
  EXPECT_EQ(A.Start, L.BB0);
  EXPECT_EQ(A.Label, L.BB3);
  EXPECT_TRUE(A.RejoinInserted);
  EXPECT_EQ(A.CancelsInserted, 1u);
  ASSERT_TRUE(A.ExitBarrier.has_value());
  EXPECT_TRUE(isWellFormed(*L.M)) << printModule(*L.M);

  const unsigned B0 = A.GatherBarrier;
  const unsigned B1 = *A.ExitBarrier;

  // bb0: join b0 (replacing the predict), join b1, jmp.
  auto Ops0 = opcodesOf(L.BB0);
  ASSERT_EQ(Ops0.size(), 3u);
  EXPECT_EQ(Ops0[0], Opcode::JoinBarrier);
  EXPECT_EQ(L.BB0->inst(0).barrierId(), B0);
  EXPECT_EQ(Ops0[1], Opcode::JoinBarrier);
  EXPECT_EQ(L.BB0->inst(1).barrierId(), B1);

  // bb3 (the label): wait b0, rejoin b0, then the original body.
  auto Ops3 = opcodesOf(L.BB3);
  ASSERT_GE(Ops3.size(), 3u);
  EXPECT_EQ(Ops3[0], Opcode::WaitBarrier);
  EXPECT_EQ(L.BB3->inst(0).barrierId(), B0);
  EXPECT_EQ(Ops3[1], Opcode::RejoinBarrier);
  EXPECT_EQ(L.BB3->inst(1).barrierId(), B0);

  // bb5 (the region post-exit): cancel b0 before wait b1 (Figure 4(d)).
  auto Ops5 = opcodesOf(L.BB5);
  ASSERT_GE(Ops5.size(), 3u);
  EXPECT_EQ(Ops5[0], Opcode::CancelBarrier);
  EXPECT_EQ(L.BB5->inst(0).barrierId(), B0);
  EXPECT_EQ(Ops5[1], Opcode::WaitBarrier);
  EXPECT_EQ(L.BB5->inst(1).barrierId(), B1);

  // The predict directive was consumed.
  for (BasicBlock *BB : *L.F)
    for (const Instruction &I : BB->instructions())
      EXPECT_NE(I.opcode(), Opcode::Predict);
}

TEST(SRPassTest, SoftThresholdEmitsSoftWaitWithoutRejoin) {
  Listing1 L;
  BarrierRegistry Registry;
  SROptions Opts;
  Opts.SoftThreshold = 8;
  SRReport R = applySpeculativeReconvergence(*L.F, Registry, Opts);
  ASSERT_EQ(R.Applied.size(), 1u);
  EXPECT_FALSE(R.Applied[0].RejoinInserted);

  const Instruction &Wait = L.BB3->inst(0);
  EXPECT_EQ(Wait.opcode(), Opcode::SoftWait);
  EXPECT_EQ(Wait.barrierId(), R.Applied[0].GatherBarrier);
  EXPECT_EQ(Wait.operand(1).getImm(), 8);
  // Membership persists across soft releases, so exits still cancel.
  EXPECT_EQ(R.Applied[0].CancelsInserted, 1u);
  EXPECT_TRUE(isWellFormed(*L.M));
}

TEST(SRPassTest, NoRejoinInAcyclicRegion) {
  // Straight-line region: the wait can never be re-reached.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Skip = F->createBlock("skip");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.predict(Hot);
  B.br(Operand::reg(C), Hot, Skip);
  B.setInsertBlock(Skip);
  B.jmp(Exit);
  B.setInsertBlock(Hot);
  unsigned X = B.mul(Operand::reg(T), Operand::imm(7));
  (void)X;
  B.jmp(Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();

  BarrierRegistry Registry;
  SRReport R = applySpeculativeReconvergence(*F, Registry);
  ASSERT_EQ(R.Applied.size(), 1u);
  EXPECT_FALSE(R.Applied[0].RejoinInserted);
  // Threads through `skip` exit the region holding the barrier: one cancel.
  EXPECT_GE(R.Applied[0].CancelsInserted, 1u);
  EXPECT_TRUE(isWellFormed(M));
}

TEST(SRPassTest, SkipsWhenStartDoesNotDominateLabel) {
  // The label is reachable around the predict block.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Annot = F->createBlock("annot");
  BasicBlock *Label = F->createBlock("label");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.br(Operand::reg(C), Annot, Label);
  B.setInsertBlock(Annot);
  B.predict(Label);
  B.jmp(Label);
  B.setInsertBlock(Label);
  B.jmp(Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();

  BarrierRegistry Registry;
  observe::RemarkStream Remarks;
  SRReport R;
  {
    observe::RemarkScope Scope(&Remarks);
    R = applySpeculativeReconvergence(*F, Registry);
  }
  EXPECT_TRUE(R.Applied.empty());
  EXPECT_EQ(R.RegionsSkipped, 1u);
  // The pass must say *why* it skipped, as a structured remark naming the
  // region (not just a free-form diagnostic string).
  EXPECT_EQ(Remarks.count("sr", observe::RemarkKind::Skipped), 1u);
  observe::Remark Skip;
  ASSERT_TRUE(Remarks.first("sr", "does not dominate", Skip));
  EXPECT_EQ(Skip.Function, "f");
  EXPECT_EQ(Skip.Block, "annot");
  // The directive must be consumed even on the failure path.
  for (BasicBlock *BB : *F)
    for (const Instruction &I : BB->instructions())
      EXPECT_NE(I.opcode(), Opcode::Predict);
}

TEST(SRPassTest, MultipleRegionsGetDistinctBarriers) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Hot1 = F->createBlock("hot1");
  BasicBlock *Mid = F->createBlock("mid");
  BasicBlock *Hot2 = F->createBlock("hot2");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(16));
  B.predict(Hot1);
  B.br(Operand::reg(C), Hot1, Mid);
  B.setInsertBlock(Hot1);
  B.jmp(Mid);
  B.setInsertBlock(Mid);
  unsigned C2 = B.cmpGE(Operand::reg(T), Operand::imm(8));
  B.predict(Hot2);
  B.br(Operand::reg(C2), Hot2, Exit);
  B.setInsertBlock(Hot2);
  B.jmp(Exit);
  B.setInsertBlock(Exit);
  B.ret();
  F->recomputePreds();

  BarrierRegistry Registry;
  SRReport R = applySpeculativeReconvergence(*F, Registry);
  ASSERT_EQ(R.Applied.size(), 2u);
  EXPECT_NE(R.Applied[0].GatherBarrier, R.Applied[1].GatherBarrier);
  EXPECT_TRUE(isWellFormed(M));
}

TEST(SRPassTest, ExitEdgeWithMixedPredecessorsIsSplit) {
  // The exit target has a predecessor outside the region, so the cancel
  // must go on a split edge, not at the target entry.
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Region = F->createBlock("region");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *Out = F->createBlock("out"); // reached from region AND entry
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C0 = B.cmpLT(Operand::reg(T), Operand::imm(24));
  B.br(Operand::reg(C0), Region, Out);
  B.setInsertBlock(Region);
  B.predict(Hot);
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(8));
  B.br(Operand::reg(C), Hot, Out);
  B.setInsertBlock(Hot);
  B.jmp(Out);
  B.setInsertBlock(Out);
  B.ret();
  F->recomputePreds();

  BarrierRegistry Registry;
  SRReport R = applySpeculativeReconvergence(*F, Registry);
  ASSERT_EQ(R.Applied.size(), 1u);
  // Both region exits (region->out, hot->out) carry the joined barrier:
  // hot's wait cleared it but... hot has no rejoin (acyclic), so only the
  // region->out edge cancels.
  EXPECT_GE(R.Applied[0].CancelsInserted, 1u);
  // `out` is also reached straight from `entry`, where the barrier was
  // never joined — so the cancel must NOT sit at `out` itself. It has to
  // live on a dedicated edge block: a new predecessor of `out` whose only
  // job is cancelling the gather barrier and falling through.
  const unsigned B0 = R.Applied[0].GatherBarrier;
  EXPECT_NE(Out->inst(0).opcode(), Opcode::CancelBarrier);
  bool CancelOnDedicatedEdge = false;
  for (BasicBlock *BB : *F) {
    if (BB == Out || BB->size() != 2)
      continue;
    const bool IsCancel = BB->inst(0).opcode() == Opcode::CancelBarrier &&
                          BB->inst(0).barrierId() == B0;
    const auto Succs = BB->successors();
    CancelOnDedicatedEdge |=
        IsCancel && Succs.size() == 1 && Succs[0] == Out;
  }
  EXPECT_TRUE(CancelOnDedicatedEdge);
  EXPECT_TRUE(isWellFormed(M));
}

TEST(SRPassTest, RegionExitBarrierCanBeDisabled) {
  Listing1 L;
  BarrierRegistry Registry;
  SROptions Opts;
  Opts.RegionExitBarrier = false;
  SRReport R = applySpeculativeReconvergence(*L.F, Registry, Opts);
  ASSERT_EQ(R.Applied.size(), 1u);
  EXPECT_FALSE(R.Applied[0].ExitBarrier.has_value());
  // bb5 then only carries the cancel, no exit wait.
  EXPECT_EQ(L.BB5->inst(0).opcode(), Opcode::CancelBarrier);
  EXPECT_NE(L.BB5->inst(1).opcode(), Opcode::WaitBarrier);
}

TEST(SRPassTest, BarrierRegistersComeFromTheLowEnd) {
  Listing1 L;
  BarrierRegistry Registry;
  SRReport R = applySpeculativeReconvergence(*L.F, Registry);
  ASSERT_EQ(R.Applied.size(), 1u);
  EXPECT_EQ(R.Applied[0].GatherBarrier, 0u);
  ASSERT_TRUE(R.Applied[0].ExitBarrier.has_value());
  EXPECT_EQ(*R.Applied[0].ExitBarrier, 1u);
}
