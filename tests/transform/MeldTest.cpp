//===- MeldTest.cpp - Control-flow melding correctness --------------------===//
//
// The meld pass's contract in three layers: the alignment laws (monotone,
// exact-shape-only pairing), the predication semantics (melded modules
// verify and compute bit-identical checksums), and the residue rules
// (unmeldable instructions survive in guarded stubs, unsafe arms are
// rejected with remarks).
//
//===----------------------------------------------------------------------===//

#include "transform/Meld.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "observe/Remark.h"
#include "sim/Warp.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace simtsr;

namespace {

uint64_t runChecksum(Module &M, const char *Kernel, uint64_t Seed = 5) {
  Function *F = M.functionByName(Kernel);
  LaunchConfig C;
  C.Seed = Seed;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return Sim.memoryChecksum();
}

/// Melds \p M and checks it still verifies and still computes the same
/// memory image as the unmelded original, over a few seeds.
MeldReport meldAndCheck(Module &M, const char *Kernel,
                        MeldOptions Opts = {}) {
  std::vector<uint64_t> Before;
  for (uint64_t Seed : {1u, 5u, 99u}) {
    auto Copy = M.clone();
    Before.push_back(runChecksum(*Copy, Kernel, Seed));
  }
  const MeldReport Report = applyControlFlowMeld(M, Opts);
  EXPECT_TRUE(verifyModule(M).empty())
      << verifyModule(M).front();
  size_t I = 0;
  for (uint64_t Seed : {1u, 5u, 99u})
    EXPECT_EQ(runChecksum(M, Kernel, Seed), Before[I++]) << "seed " << Seed;
  return Report;
}

/// if (rand) {a = t*3; store; a = f(a)} else {a = t^c; a = f(a); store} —
/// a divergent diamond with pairable common work plus per-arm residue.
/// \p CalleeOp controls what the shared callee contains (Nop = pure ALU).
std::unique_ptr<Module> diamondWithCalls(Opcode CalleeOp = Opcode::Nop,
                                         bool SameCallee = true) {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);

  const auto MakeHelper = [&](const char *Name) {
    Function *H = M->createFunction(Name, 1);
    IRBuilder B(H);
    B.startBlock("entry");
    unsigned X = B.add(Operand::reg(0), Operand::imm(17));
    if (CalleeOp == Opcode::WarpSync)
      B.warpSync();
    else if (CalleeOp == Opcode::JoinBarrier)
      B.joinBarrier(0);
    unsigned Y = B.mul(Operand::reg(X), Operand::imm(3));
    B.ret(Operand::reg(Y));
    return H;
  };
  Function *H1 = MakeHelper("helper");
  Function *H2 = SameCallee ? H1 : MakeHelper("helper2");

  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");

  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned A = B.mov(Operand::imm(7));
  unsigned C = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(C), Then, Else);

  B.setInsertBlock(Then);
  unsigned T1 = B.mul(Operand::reg(T), Operand::imm(3));
  unsigned R1 = B.call(H1, {Operand::reg(T1)});
  Then->append(Instruction(Opcode::Mov, A, {Operand::reg(R1)}));
  B.jmp(Join);

  B.setInsertBlock(Else);
  unsigned T2 = B.xorOp(Operand::reg(T), Operand::imm(0x5a));
  unsigned T3 = B.sub(Operand::reg(T2), Operand::imm(9));
  unsigned R2 = B.call(H2, {Operand::reg(T3)});
  Else->append(Instruction(Opcode::Mov, A, {Operand::reg(R2)}));
  B.jmp(Join);

  B.setInsertBlock(Join);
  unsigned Slot = B.add(Operand::reg(T), Operand::imm(64));
  B.store(Operand::reg(Slot), Operand::reg(A));
  B.ret();
  F->recomputePreds();
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Alignment laws
//===----------------------------------------------------------------------===//

TEST(MeldAlignTest, PairsOnlyEqualPairableFingerprints) {
  Rng R(42);
  for (int Trial = 0; Trial < 200; ++Trial) {
    const size_t N = R.nextBelow(13), M = R.nextBelow(13);
    std::vector<uint64_t> A(N), B(M);
    std::vector<bool> AP(N), BP(M);
    for (size_t I = 0; I < N; ++I) {
      A[I] = R.nextBelow(4); // Small alphabet forces collisions.
      AP[I] = R.nextBool(0.5);
    }
    for (size_t J = 0; J < M; ++J) {
      B[J] = R.nextBelow(4);
      BP[J] = R.nextBool(0.5);
    }
    const std::vector<MeldAlignStep> Steps =
        alignFingerprints(A, B, AP, BP);

    // Every index appears exactly once, strictly increasing on each side
    // (per-thread program order is preserved), and a pair implies equal
    // fingerprints with both sides pairable.
    size_t NextA = 0, NextB = 0;
    for (const MeldAlignStep &S : Steps) {
      if (S.ThenIndex != MeldGap) {
        EXPECT_EQ(S.ThenIndex, NextA++);
      }
      if (S.ElseIndex != MeldGap) {
        EXPECT_EQ(S.ElseIndex, NextB++);
      }
      if (S.isPair()) {
        EXPECT_EQ(A[S.ThenIndex], B[S.ElseIndex]);
        EXPECT_TRUE(AP[S.ThenIndex] && BP[S.ElseIndex]);
      }
    }
    EXPECT_EQ(NextA, N);
    EXPECT_EQ(NextB, M);
  }
}

TEST(MeldAlignTest, IdenticalSequencesFullyPair) {
  const std::vector<uint64_t> Seq{3, 1, 4, 1, 5};
  const std::vector<bool> Pairable(Seq.size(), true);
  const std::vector<MeldAlignStep> Steps =
      alignFingerprints(Seq, Seq, Pairable, Pairable);
  ASSERT_EQ(Steps.size(), Seq.size());
  for (const MeldAlignStep &S : Steps)
    EXPECT_TRUE(S.isPair());
}

TEST(MeldFingerprintTest, CallsToDifferentCalleesNeverPair) {
  auto Same = diamondWithCalls(Opcode::Nop, /*SameCallee=*/true);
  auto Diff = diamondWithCalls(Opcode::Nop, /*SameCallee=*/false);
  const auto CallIn = [](Module &M, const char *Block) -> const Instruction & {
    const BasicBlock *BB = M.functionByName("k")->blockByName(Block);
    for (size_t I = 0; I < BB->size(); ++I)
      if (BB->inst(I).opcode() == Opcode::Call)
        return BB->inst(I);
    ADD_FAILURE() << "no call in " << Block;
    return BB->inst(0);
  };
  EXPECT_EQ(meldFingerprint(CallIn(*Same, "then")),
            meldFingerprint(CallIn(*Same, "else")));
  EXPECT_NE(meldFingerprint(CallIn(*Diff, "then")),
            meldFingerprint(CallIn(*Diff, "else")));
}

//===----------------------------------------------------------------------===//
// Predication semantics
//===----------------------------------------------------------------------===//

TEST(MeldTest, MeldsDiamondPreservingChecksums) {
  auto M = diamondWithCalls();
  const MeldReport R = meldAndCheck(*M, "k");
  EXPECT_EQ(R.BranchesMelded, 1u);
  EXPECT_GE(R.PairsMelded, 2u);   // The call and the result move.
  EXPECT_GE(R.StubsEmitted, 1u);  // The unalignable pre-processing.
  EXPECT_GE(R.SelectsInserted, 1u);
  // The melded function no longer branches into the old arms.
  EXPECT_EQ(M->functionByName("k")->blockByName("then"), nullptr);
  EXPECT_EQ(M->functionByName("k")->blockByName("else"), nullptr);
}

TEST(MeldTest, MinPairsGatesRestructuring) {
  auto M = diamondWithCalls();
  MeldOptions Opts;
  Opts.MinPairs = 100; // Unreachable bar: nothing may be restructured.
  const MeldReport R = applyControlFlowMeld(*M, Opts);
  EXPECT_EQ(R.BranchesMelded, 0u);
  EXPECT_GE(R.Skipped, 1u);
  EXPECT_NE(M->functionByName("k")->blockByName("then"), nullptr);
}

//===----------------------------------------------------------------------===//
// Residue and rejection rules
//===----------------------------------------------------------------------===//

TEST(MeldTest, AtomicsStayInGuardedStubs) {
  // Arms share ALU work but each performs its own atomic: the atomic must
  // survive in a stub (never a merged block), and semantics must hold.
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(256);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.randRange(Operand::imm(0), Operand::imm(2));
  B.br(Operand::reg(C), Then, Else);
  B.setInsertBlock(Then);
  unsigned X1 = B.mul(Operand::reg(T), Operand::imm(3));
  B.atomicAdd(Operand::imm(0), Operand::reg(X1));
  B.jmp(Join);
  B.setInsertBlock(Else);
  unsigned X2 = B.mul(Operand::reg(T), Operand::imm(5));
  B.atomicAdd(Operand::imm(1), Operand::reg(X2));
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.ret();
  F->recomputePreds();

  const MeldReport R = meldAndCheck(*M, "k");
  ASSERT_EQ(R.BranchesMelded, 1u);
  EXPECT_GE(R.StubsEmitted, 2u); // One guarded stub per arm's atomic.
  unsigned AtomicsLeft = 0;
  for (const BasicBlock *BB : *M->functionByName("k"))
    for (size_t I = 0; I < BB->size(); ++I)
      if (BB->inst(I).opcode() == Opcode::AtomicAdd)
        ++AtomicsLeft;
  EXPECT_EQ(AtomicsLeft, 2u);
}

TEST(MeldTest, BarrierArmsAreRejectedWithRemark) {
  auto M = diamondWithCalls();
  // Plant a barrier op in one arm: the whole diamond must be rejected
  // (barrier placement is the barrier passes' job, not meld's).
  Function *F = M->functionByName("k");
  BasicBlock *Then = F->blockByName("then");
  Then->insertBeforeTerminator(
      Instruction(Opcode::JoinBarrier, NoRegister, {Operand::imm(0)}));

  observe::RemarkStream Remarks;
  observe::RemarkScope Scope(&Remarks);
  const MeldReport R = applyControlFlowMeld(*M);
  EXPECT_EQ(R.BranchesMelded, 0u);
  EXPECT_GE(R.Skipped, 1u);
  observe::Remark Skip;
  EXPECT_TRUE(Remarks.first("meld", "arm contains", Skip));
  EXPECT_EQ(Skip.Kind, observe::RemarkKind::Skipped);
}

TEST(MeldTest, CalleeWithWarpSharedStateBlocksCallMelding) {
  auto Pure = diamondWithCalls();
  const Instruction &PureCall =
      Pure->functionByName("k")->blockByName("then")->inst(1);
  ASSERT_EQ(PureCall.opcode(), Opcode::Call);
  EXPECT_TRUE(isMeldableCall(PureCall));

  // A WarpSync (or barrier) inside the callee makes the call unmeldable:
  // warp-shared state must not change its executing mask.
  for (Opcode Bad : {Opcode::WarpSync, Opcode::JoinBarrier}) {
    auto M = diamondWithCalls(Bad);
    const Instruction &Call =
        M->functionByName("k")->blockByName("then")->inst(1);
    ASSERT_EQ(Call.opcode(), Opcode::Call);
    EXPECT_FALSE(isMeldableCall(Call));
  }
}

TEST(MeldTest, SameCalleeCallsMeldIntoOneCall) {
  auto M = diamondWithCalls();
  const MeldReport R = meldAndCheck(*M, "k");
  EXPECT_EQ(R.BranchesMelded, 1u);
  unsigned Calls = 0;
  for (const BasicBlock *BB : *M->functionByName("k"))
    for (size_t I = 0; I < BB->size(); ++I)
      if (BB->inst(I).opcode() == Opcode::Call)
        ++Calls;
  // Figure 2(c), melded: both arms' calls collapsed into one call site.
  EXPECT_EQ(Calls, 1u);
}

TEST(MeldTest, DifferentCalleesStayInStubs) {
  auto M = diamondWithCalls(Opcode::Nop, /*SameCallee=*/false);
  const MeldReport R = meldAndCheck(*M, "k");
  EXPECT_EQ(R.BranchesMelded, 1u);
  unsigned Calls = 0;
  for (const BasicBlock *BB : *M->functionByName("k"))
    for (size_t I = 0; I < BB->size(); ++I)
      if (BB->inst(I).opcode() == Opcode::Call)
        ++Calls;
  EXPECT_EQ(Calls, 2u); // One guarded stub call per arm.
}

TEST(MeldTest, AppliedRemarkCarriesAlignmentStats) {
  auto M = diamondWithCalls();
  observe::RemarkStream Remarks;
  observe::RemarkScope Scope(&Remarks);
  applyControlFlowMeld(*M);
  observe::Remark Applied;
  ASSERT_TRUE(Remarks.first("meld", "melded divergent branch", Applied));
  EXPECT_EQ(Applied.Kind, observe::RemarkKind::Applied);
  EXPECT_EQ(Applied.Function, "k");
  bool SawPairs = false;
  for (const auto &[K, V] : Applied.Args)
    if (K == "pairs")
      SawPairs = !V.empty();
  EXPECT_TRUE(SawPairs);
}
