//===- IfConvertTest.cpp - Tests for predication by if-conversion ---------------===//

#include "transform/IfConvert.h"

#include "TestKernels.h"
#include "kernels/Workload.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"
#include "transform/SimplifyCfg.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

uint64_t runChecksum(Module &M, const char *Kernel, uint64_t Seed = 5) {
  Function *F = M.functionByName(Kernel);
  LaunchConfig C;
  C.Seed = Seed;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return Sim.memoryChecksum();
}

/// if (tid < K) x = x*3+1; store x — a triangle with a pure arm.
std::unique_ptr<Module> triangleKernel() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(64);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned X = B.add(Operand::reg(T), Operand::imm(10));
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(12));
  B.br(Operand::reg(C), Then, Join);
  B.setInsertBlock(Then);
  unsigned X3 = B.mul(Operand::reg(X), Operand::imm(3));
  unsigned X31 = B.add(Operand::reg(X3), Operand::imm(1));
  Then->append(Instruction(Opcode::Mov, X, {Operand::reg(X31)}));
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.store(Operand::reg(T), Operand::reg(X));
  B.ret();
  F->recomputePreds();
  return M;
}

/// if (tid&1) y = a+b else y = a-b; store y — a pure diamond.
std::unique_ptr<Module> diamondKernel() {
  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(64);
  Function *F = M->createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned Y = B.mov(Operand::imm(0));
  unsigned C = B.andOp(Operand::reg(T), Operand::imm(1));
  B.br(Operand::reg(C), Then, Else);
  B.setInsertBlock(Then);
  unsigned A1 = B.add(Operand::reg(T), Operand::imm(100));
  Then->append(Instruction(Opcode::Mov, Y, {Operand::reg(A1)}));
  B.jmp(Join);
  B.setInsertBlock(Else);
  unsigned A2 = B.sub(Operand::reg(T), Operand::imm(100));
  Else->append(Instruction(Opcode::Mov, Y, {Operand::reg(A2)}));
  B.jmp(Join);
  B.setInsertBlock(Join);
  B.store(Operand::reg(T), Operand::reg(Y));
  B.ret();
  F->recomputePreds();
  return M;
}

} // namespace

TEST(IfConvertTest, ConvertsTriangleAndPreservesSemantics) {
  auto Reference = triangleKernel();
  uint64_t Expected = runChecksum(*Reference, "k");

  auto M = triangleKernel();
  IfConvertReport R = ifConvert(*M);
  EXPECT_EQ(R.TrianglesConverted, 1u);
  simplifyCfg(*M);
  ASSERT_TRUE(isWellFormed(*M));
  // Straight-line now: a single block, no branch.
  EXPECT_EQ(M->functionByName("k")->size(), 1u);
  EXPECT_EQ(runChecksum(*M, "k"), Expected);
}

TEST(IfConvertTest, ConvertsDiamondAndPreservesSemantics) {
  auto Reference = diamondKernel();
  uint64_t Expected = runChecksum(*Reference, "k");

  auto M = diamondKernel();
  IfConvertReport R = ifConvert(*M);
  EXPECT_EQ(R.DiamondsConverted, 1u);
  simplifyCfg(*M);
  ASSERT_TRUE(isWellFormed(*M));
  EXPECT_EQ(runChecksum(*M, "k"), Expected);
}

TEST(IfConvertTest, ConvertedCodeIsFullyConverged) {
  auto M = diamondKernel();
  ifConvert(*M);
  simplifyCfg(*M);
  LaunchConfig C;
  C.Latency = LatencyModel::unit();
  WarpSimulator Sim(*M, M->functionByName("k"), C);
  RunResult R = Sim.run();
  ASSERT_TRUE(R.ok());
  EXPECT_DOUBLE_EQ(R.Stats.simtEfficiency(), 1.0);
}

TEST(IfConvertTest, RefusesArmsWithSideEffects) {
  // Stores, rand and div must not be speculated.
  for (int Kind = 0; Kind < 3; ++Kind) {
    auto M = std::make_unique<Module>();
    M->setGlobalMemoryWords(64);
    Function *F = M->createFunction("k", 0);
    IRBuilder B(F);
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Then = F->createBlock("then");
    BasicBlock *Join = F->createBlock("join");
    B.setInsertBlock(Entry);
    unsigned T = B.tid();
    unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(5));
    B.br(Operand::reg(C), Then, Join);
    B.setInsertBlock(Then);
    if (Kind == 0)
      B.store(Operand::reg(T), Operand::imm(1));
    else if (Kind == 1)
      B.rand();
    else
      B.div(Operand::imm(100), Operand::reg(T)); // traps for tid 0
    B.jmp(Join);
    B.setInsertBlock(Join);
    B.ret();
    F->recomputePreds();
    IfConvertReport R = ifConvert(*M);
    EXPECT_EQ(R.total(), 0u) << "kind " << Kind;
  }
}

TEST(IfConvertTest, RefusesArmsWithExtraPredecessors) {
  // The then block is also a loop target: cannot hoist.
  Module M;
  Function *F = M.createFunction("k", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertBlock(Entry);
  unsigned T = B.tid();
  unsigned C = B.cmpLT(Operand::reg(T), Operand::imm(5));
  B.br(Operand::reg(C), Then, Join);
  B.setInsertBlock(Then);
  unsigned V = B.add(Operand::reg(T), Operand::imm(1));
  (void)V;
  B.jmp(Join);
  B.setInsertBlock(Join);
  unsigned C2 = B.cmpLT(Operand::reg(T), Operand::imm(2));
  B.br(Operand::reg(C2), Then, Join /*self*/);
  F->recomputePreds();
  // `then` now has two predecessors; `join` branches to itself — the pass
  // must simply leave this shape alone and terminate.
  IfConvertReport R = ifConvert(*F);
  EXPECT_EQ(R.total(), 0u);
}

TEST(IfConvertTest, MCBHotArmIsNotConvertible) {
  // The collision arm contains rand + atomics: predication cannot touch
  // it, which is exactly why reconvergence techniques are needed there.
  Workload W = makeMCB();
  IfConvertReport R = ifConvert(*W.M);
  EXPECT_EQ(R.total(), 0u);
}

TEST(IfConvertTest, SemanticsPreservedInsideLoop) {
  // A pure triangle inside the iteration-delay loop shape: convert the
  // arm, run both versions, compare.
  auto Build = []() {
    auto M = std::make_unique<Module>();
    M->setGlobalMemoryWords(64);
    Function *F = M->createFunction("k", 0);
    IRBuilder B(F);
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Hot = F->createBlock("hot");
    BasicBlock *Latch = F->createBlock("latch");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertBlock(Entry);
    unsigned T = B.tid();
    unsigned I = B.mov(Operand::imm(0));
    unsigned Acc = B.mov(Operand::imm(1));
    B.jmp(Header);
    B.setInsertBlock(Header);
    unsigned Bit = B.andOp(Operand::reg(I), Operand::reg(T));
    B.br(Operand::reg(Bit), Hot, Latch);
    B.setInsertBlock(Hot);
    unsigned X = B.mul(Operand::reg(Acc), Operand::imm(5));
    Hot->append(Instruction(Opcode::Mov, Acc, {Operand::reg(X)}));
    B.jmp(Latch);
    B.setInsertBlock(Latch);
    unsigned IN = B.add(Operand::reg(I), Operand::imm(1));
    Latch->append(Instruction(Opcode::Mov, I, {Operand::reg(IN)}));
    unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(9));
    B.br(Operand::reg(Done), Exit, Header);
    B.setInsertBlock(Exit);
    B.store(Operand::reg(T), Operand::reg(Acc));
    B.ret();
    F->recomputePreds();
    return M;
  };
  auto Reference = Build();
  uint64_t Expected = runChecksum(*Reference, "k");
  auto M = Build();
  IfConvertReport R = ifConvert(*M);
  EXPECT_EQ(R.TrianglesConverted, 1u);
  simplifyCfg(*M);
  EXPECT_EQ(runChecksum(*M, "k"), Expected);
}
