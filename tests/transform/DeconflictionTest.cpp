//===- DeconflictionTest.cpp - Tests for Section 4.3 ---------------------------===//

#include "transform/Deconfliction.h"

#include "TestIR.h"
#include "analysis/BarrierAnalysis.h"
#include "analysis/Divergence.h"
#include "ir/Verifier.h"
#include "transform/BarrierVerifier.h"
#include "transform/PdomSync.h"
#include "transform/SpeculativeReconvergence.h"

#include <gtest/gtest.h>

#include <set>

using namespace simtsr;
using namespace simtsr::testir;

namespace {

/// Builds Listing 1 with both PDOM and SR synchronization applied — the
/// Figure 5(a) conflict configuration.
struct ConflictedListing1 {
  Listing1 L;
  BarrierRegistry Registry;
  unsigned GatherBarrier = 0;
  unsigned PdomBarrier = 0;

  ConflictedListing1() {
    PostDominatorTree PDT(*L.F);
    DivergenceAnalysis DA(*L.F, PDT);
    insertPdomSync(*L.F, DA, Registry);
    SRReport R = applySpeculativeReconvergence(*L.F, Registry);
    EXPECT_EQ(R.Applied.size(), 1u);
    GatherBarrier = R.Applied[0].GatherBarrier;
    // The PDOM barrier of bb2's branch is the first high allocation.
    PdomBarrier = 15;
  }
};

unsigned countOps(const Function &F, Opcode Op, unsigned Barrier) {
  unsigned N = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      if (I.opcode() == Op && isBarrierOp(Op) && I.barrierId() == Barrier)
        ++N;
  return N;
}

} // namespace

TEST(DeconflictionTest, ConflictDetectedInFigure5aConfiguration) {
  ConflictedListing1 C;
  BarrierConflictAnalysis Conflicts(*C.L.F);
  EXPECT_TRUE(Conflicts.conflict(C.GatherBarrier, C.PdomBarrier));
  EXPECT_FALSE(
      verifyDeconflicted(*C.L.F, C.Registry).empty());
}

TEST(DeconflictionTest, StaticStrategyDeletesPdomBarriers) {
  ConflictedListing1 C;
  DeconflictReport R = deconflictBarriers(*C.L.F, C.Registry,
                                          DeconflictStrategy::Static);
  EXPECT_GE(R.ConflictsFound, 1u);
  // Both loop-carried PDOM barriers (the condition branch's b15 and the
  // loop-again branch's b14) are held at the speculative wait and deleted.
  EXPECT_EQ(R.BarriersDeleted, 2u);
  EXPECT_EQ(R.CancelsInserted, 0u);
  // Every op of the PDOM barriers is gone; the SR barrier survives.
  for (unsigned B : {14u, 15u}) {
    EXPECT_EQ(countOps(*C.L.F, Opcode::JoinBarrier, B), 0u);
    EXPECT_EQ(countOps(*C.L.F, Opcode::WaitBarrier, B), 0u);
    EXPECT_FALSE(C.Registry.origin(B).has_value());
  }
  EXPECT_EQ(countOps(*C.L.F, Opcode::WaitBarrier, C.GatherBarrier), 1u);
  EXPECT_TRUE(verifyDeconflicted(*C.L.F, C.Registry).empty());
  EXPECT_TRUE(isWellFormed(*C.L.M));
}

TEST(DeconflictionTest, DynamicStrategyCancelsBeforeSpeculativeWait) {
  ConflictedListing1 C;
  DeconflictReport R = deconflictBarriers(*C.L.F, C.Registry,
                                          DeconflictStrategy::Dynamic);
  EXPECT_GE(R.ConflictsFound, 1u);
  EXPECT_EQ(R.BarriersDeleted, 0u);
  EXPECT_GE(R.CancelsInserted, 2u);
  // Figure 5(c): bb3 cancels every held PDOM barrier before the SR wait.
  const BasicBlock *BB3 = C.L.BB3;
  ASSERT_GE(BB3->size(), 3u);
  std::set<unsigned> Cancelled;
  size_t I = 0;
  while (BB3->inst(I).opcode() == Opcode::CancelBarrier)
    Cancelled.insert(BB3->inst(I++).barrierId());
  EXPECT_EQ(Cancelled, (std::set<unsigned>{14u, 15u}));
  EXPECT_EQ(BB3->inst(I).opcode(), Opcode::WaitBarrier);
  EXPECT_EQ(BB3->inst(I).barrierId(), C.GatherBarrier);
  // PDOM ops remain in place.
  EXPECT_EQ(countOps(*C.L.F, Opcode::WaitBarrier, C.PdomBarrier), 1u);
  EXPECT_TRUE(verifyDeconflicted(*C.L.F, C.Registry).empty());
  EXPECT_TRUE(isWellFormed(*C.L.M));
}

TEST(DeconflictionTest, DynamicIsIdempotent) {
  ConflictedListing1 C;
  deconflictBarriers(*C.L.F, C.Registry, DeconflictStrategy::Dynamic);
  DeconflictReport Second = deconflictBarriers(*C.L.F, C.Registry,
                                               DeconflictStrategy::Dynamic);
  EXPECT_EQ(Second.CancelsInserted, 0u);
}

TEST(DeconflictionTest, NestedBarriersReportNoConflict) {
  Module M;
  Function *F = M.createFunction("f", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.joinBarrier(0);
  B.joinBarrier(15);
  B.waitBarrier(15);
  B.waitBarrier(0);
  B.ret();
  F->recomputePreds();
  BarrierRegistry Registry;
  DeconflictReport R =
      deconflictBarriers(*F, Registry, DeconflictStrategy::Dynamic);
  EXPECT_EQ(R.ConflictsFound, 0u);
}
