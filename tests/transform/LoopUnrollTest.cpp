//===- LoopUnrollTest.cpp - Tests for partial unrolling ------------------------===//

#include "transform/LoopUnroll.h"

#include "TestKernels.h"
#include "analysis/LoopInfo.h"
#include "ir/Verifier.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::testkernels;

namespace {

/// Unrolls the inner loop of the Loop Merge kernel by \p Factor.
/// \returns true on success.
bool unrollInner(Module &M, unsigned Factor) {
  Function *F = M.functionByName("loopmerge");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *Inner = LI.loopWithHeader(F->blockByName("inner_header"));
  if (!Inner)
    return false;
  return unrollLoop(*F, *Inner, Factor);
}

struct RunStats {
  uint64_t Checksum;
  uint64_t Cycles;
  uint64_t BarrierWaits;
  double Efficiency;
};

RunStats run(Module &M, uint64_t Seed) {
  Function *F = M.functionByName("loopmerge");
  LaunchConfig C;
  C.Seed = Seed;
  C.Latency = LatencyModel::computeBound();
  WarpSimulator Sim(M, F, C);
  RunResult R = Sim.run();
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return {Sim.memoryChecksum(), R.Stats.Cycles, R.Stats.BarrierWaits,
          R.Stats.simtEfficiency()};
}

} // namespace

TEST(LoopUnrollTest, PreservesSemantics) {
  for (unsigned Factor : {2u, 3u, 4u}) {
    auto Reference = loopMergeKernel(8, 1, 16, /*Annotate=*/false);
    auto Unrolled = loopMergeKernel(8, 1, 16, /*Annotate=*/false);
    ASSERT_TRUE(unrollInner(*Unrolled, Factor));
    ASSERT_TRUE(isWellFormed(*Unrolled));
    EXPECT_EQ(run(*Reference, 3).Checksum, run(*Unrolled, 3).Checksum)
        << "factor " << Factor;
  }
}

TEST(LoopUnrollTest, ReplicatesLoopBlocks) {
  auto M = loopMergeKernel(8, 1, 16, /*Annotate=*/false);
  Function *F = M->functionByName("loopmerge");
  size_t Before = F->size();
  ASSERT_TRUE(unrollInner(*M, 3));
  // Inner loop has 2 blocks (header + body); 2 extra copies of each.
  EXPECT_EQ(F->size(), Before + 4);
  EXPECT_NE(F->blockByName("inner_body.u1"), nullptr);
  EXPECT_NE(F->blockByName("inner_header.u2"), nullptr);
}

TEST(LoopUnrollTest, PredictStaysInOriginalBodyOnly) {
  auto M = loopMergeKernel(8, 1, 16, /*Annotate=*/true);
  // The annotation sits in the entry block (outside the loop), so move the
  // check to: clones never carry predicts even when the loop has one.
  Function *F = M->functionByName("loopmerge");
  F->blockByName("inner_body")
      ->insert(0, Instruction(Opcode::Predict, NoRegister,
                              {Operand::block(F->blockByName("inner_body"))}));
  ASSERT_TRUE(unrollInner(*M, 2));
  unsigned Predicts = 0;
  for (BasicBlock *BB : *F)
    for (const Instruction &I : BB->instructions())
      Predicts += I.opcode() == Opcode::Predict;
  // One in entry (the kernel's own) + one in inner_body; none in clones.
  EXPECT_EQ(Predicts, 2u);
}

TEST(LoopUnrollTest, RefusesBarriersInLoop) {
  auto M = loopMergeKernel(8, 1, 16, /*Annotate=*/true);
  runSyncPipeline(*M, PipelineOptions::speculative());
  EXPECT_FALSE(unrollInner(*M, 2));
}

TEST(LoopUnrollTest, RefusesFactorBelowTwo) {
  auto M = loopMergeKernel(8, 1, 16, /*Annotate=*/false);
  EXPECT_FALSE(unrollInner(*M, 1));
}

// Section 6: with the predict kept in the first copy only, reconvergence
// synchronization executes once per Factor iterations.
TEST(LoopUnrollTest, UnrollCutsBarrierWaitOverhead) {
  auto Plain = loopMergeKernel();
  runSyncPipeline(*Plain, PipelineOptions::speculative());
  RunStats PlainStats = run(*Plain, 9);

  auto Unrolled = loopMergeKernel();
  ASSERT_TRUE(unrollInner(*Unrolled, 4));
  PipelineReport Report =
      runSyncPipeline(*Unrolled, PipelineOptions::speculative());
  EXPECT_TRUE(Report.clean());
  RunStats UnrolledStats = run(*Unrolled, 9);

  EXPECT_EQ(PlainStats.Checksum, UnrolledStats.Checksum);
  // Gathers fire roughly 4x less often.
  EXPECT_LT(UnrolledStats.BarrierWaits, PlainStats.BarrierWaits);
}
