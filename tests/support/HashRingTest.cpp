//===- HashRingTest.cpp - consistent-hash ring properties ---------------------===//
//
// The ring carries the sharded-serving routing contract (serve/Router.h,
// scripts/serve_client.py): deterministic placement across platforms and
// languages, bounded load imbalance, and minimal remap on membership
// change. Each of those is pinned here — the cross-language half by
// golden vnode points any implementation must reproduce.
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"
#include "support/HashRing.h"

#include "gtest/gtest.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace simtsr;

namespace {

std::vector<uint64_t> sampleKeys(size_t N) {
  // Deterministic pseudo-keys drawn the way real route keys are made:
  // FNV-1a of distinct content strings.
  std::vector<uint64_t> Keys;
  Keys.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Keys.push_back(fnv1a("workload-" + std::to_string(I)));
  return Keys;
}

TEST(HashRingTest, LookupIsDeterministicAndMemberValued) {
  HashRing Ring;
  Ring.addNode("a.sock");
  Ring.addNode("b.sock");
  Ring.addNode("c.sock");
  for (const uint64_t Key : sampleKeys(256)) {
    const std::string &Owner = Ring.lookup(Key);
    EXPECT_TRUE(Owner == "a.sock" || Owner == "b.sock" || Owner == "c.sock");
    EXPECT_EQ(Owner, Ring.lookup(Key)) << "same key, same owner";
  }
}

TEST(HashRingTest, MembershipIsInsertionOrderIndependent) {
  HashRing A, B;
  A.addNode("x");
  A.addNode("y");
  A.addNode("z");
  B.addNode("z");
  B.addNode("x");
  B.addNode("y");
  for (const uint64_t Key : sampleKeys(512))
    EXPECT_EQ(A.lookup(Key), B.lookup(Key));
}

TEST(HashRingTest, DistributionIsBoundedlyUniform) {
  // With 64 vnodes/node the arc-length variance is small; assert every
  // node owns within 2x of its fair share over a large key sample. The
  // bound is deliberately loose — it guards against a broken hash or a
  // broken wrap, not statistical perfection.
  HashRing Ring;
  const std::vector<std::string> Nodes = {"s0", "s1", "s2", "s3"};
  for (const std::string &N : Nodes)
    Ring.addNode(N);
  std::map<std::string, size_t> Count;
  const size_t Samples = 8192;
  for (const uint64_t Key : sampleKeys(Samples))
    ++Count[Ring.lookup(Key)];
  const double Fair = static_cast<double>(Samples) / Nodes.size();
  for (const std::string &N : Nodes) {
    EXPECT_GT(Count[N], Fair / 2) << N << " owns too little";
    EXPECT_LT(Count[N], Fair * 2) << N << " owns too much";
  }
}

TEST(HashRingTest, RemoveOnlyRemapsTheRemovedNodesKeys) {
  HashRing Ring;
  Ring.addNode("a");
  Ring.addNode("b");
  Ring.addNode("c");
  const std::vector<uint64_t> Keys = sampleKeys(4096);
  std::map<uint64_t, std::string> Before;
  for (const uint64_t K : Keys)
    Before[K] = Ring.lookup(K);

  ASSERT_TRUE(Ring.removeNode("b"));
  size_t Moved = 0;
  for (const uint64_t K : Keys) {
    const std::string &Now = Ring.lookup(K);
    if (Before[K] == "b") {
      // Orphaned keys must land on a surviving node...
      EXPECT_NE(Now, "b");
      ++Moved;
    } else {
      // ...and every key that was NOT on the removed node must not move
      // at all. This is the property a plain modulo hash lacks.
      EXPECT_EQ(Now, Before[K]);
    }
  }
  EXPECT_GT(Moved, 0u) << "b owned nothing; the sample is meaningless";
}

TEST(HashRingTest, AddOnlyStealsKeysForTheNewNode) {
  HashRing Ring;
  Ring.addNode("a");
  Ring.addNode("b");
  const std::vector<uint64_t> Keys = sampleKeys(4096);
  std::map<uint64_t, std::string> Before;
  for (const uint64_t K : Keys)
    Before[K] = Ring.lookup(K);

  ASSERT_TRUE(Ring.addNode("c"));
  for (const uint64_t K : Keys) {
    const std::string &Now = Ring.lookup(K);
    // A key either stays where it was or moves to the new node; it never
    // moves between the two old nodes.
    EXPECT_TRUE(Now == Before[K] || Now == "c")
        << "key moved a->b or b->a on an unrelated membership change";
  }
}

TEST(HashRingTest, SuccessorSkipsTheFailedNode) {
  HashRing Ring;
  Ring.addNode("a");
  Ring.addNode("b");
  Ring.addNode("c");
  for (const uint64_t Key : sampleKeys(256)) {
    const std::string &Primary = Ring.lookup(Key);
    const std::string &Failover = Ring.lookupSuccessor(Key, Primary);
    EXPECT_NE(Failover, Primary);
    // Failover must agree with the ring the survivors would form — the
    // successor is exactly where the key lands once the primary is gone.
    HashRing Survivors;
    for (const std::string &N : Ring.nodes())
      if (N != Primary)
        Survivors.addNode(N);
    EXPECT_EQ(Failover, Survivors.lookup(Key));
  }
}

TEST(HashRingTest, SingleNodeSuccessorIsItself) {
  HashRing Ring;
  Ring.addNode("only");
  EXPECT_EQ(Ring.lookupSuccessor(42, "only"), "only");
}

TEST(HashRingTest, VnodePointGoldenValues) {
  // Cross-platform / cross-language anchors: mix64(fnv1a("name#index")).
  // scripts/serve_client.py mirrors these exact placements; if this test
  // needs updating, the Python ring is broken too.
  EXPECT_EQ(HashRing::vnodePoint("a", 0), mix64(fnv1a("a#0")));
  EXPECT_EQ(HashRing::vnodePoint("shard", 63), mix64(fnv1a("shard#63")));
  // Pin absolute values so a changed FNV constant or mix64 multiplier
  // cannot hide behind self-consistency.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(HashRing::vnodePoint("a", 0), 0xb9b5fec617b7e565ull);
  EXPECT_EQ(HashRing::vnodePoint("shard", 63), 0xab295eca8ca1809eull);
}

TEST(HashRingTest, DuplicateAddAndMissingRemoveAreNoops) {
  HashRing Ring;
  EXPECT_TRUE(Ring.addNode("a"));
  EXPECT_FALSE(Ring.addNode("a"));
  EXPECT_EQ(Ring.size(), 1u);
  EXPECT_FALSE(Ring.removeNode("b"));
  EXPECT_TRUE(Ring.removeNode("a"));
  EXPECT_TRUE(Ring.empty());
}

} // namespace
