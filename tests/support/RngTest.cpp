//===- RngTest.cpp - Tests for deterministic RNG ---------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace simtsr;

TEST(SplitMix64Test, DeterministicSequence) {
  uint64_t A = 42, B = 42;
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(splitMix64(A), splitMix64(B));
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  uint64_t A = 1, B = 2;
  EXPECT_NE(splitMix64(A), splitMix64(B));
}

TEST(RngTest, SameSeedSameStream) {
  Rng A(123), B(123);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng A(1), B(2);
  int Matches = 0;
  for (int I = 0; I < 1000; ++I)
    Matches += A.next() == B.next();
  EXPECT_LT(Matches, 5);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.seed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(99);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 321ull, 1000000ull})
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
}

TEST(RngTest, NextBelowZeroIsZero) {
  Rng R(5);
  EXPECT_EQ(R.nextBelow(0), 0u);
}

TEST(RngTest, NextInRangeCoversRange) {
  Rng R(17);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(4, 10);
    EXPECT_GE(V, 4);
    EXPECT_LT(V, 10);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 6u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng R(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyCalibrated) {
  Rng R(13);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBool(0.25);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.02);
}
