//===- ThreadPoolTest.cpp - Tests for the support thread pool -------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace simtsr;

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  unsigned Calls = 0;
  parallelFor(0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
  parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1u);
}

TEST(ThreadPoolTest, ResultsReducibleInIndexOrder) {
  // The canonical usage: parallel compute into disjoint slots, then a
  // sequential in-order reduction that is bit-identical to a plain loop.
  constexpr size_t N = 257;
  std::vector<uint64_t> Slots(N, 0);
  parallelFor(N, [&](size_t I) { Slots[I] = I * I + 1; });
  uint64_t Sum = 0;
  for (size_t I = 0; I < N; ++I)
    Sum = Sum * 31 + Slots[I];
  uint64_t Expected = 0;
  for (size_t I = 0; I < N; ++I)
    Expected = Expected * 31 + (I * I + 1);
  EXPECT_EQ(Sum, Expected);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  constexpr size_t Outer = 8, Inner = 16;
  std::vector<std::atomic<int>> Hits(Outer * Inner);
  parallelFor(Outer, [&](size_t O) {
    parallelFor(Inner,
                [&](size_t I) { Hits[O * Inner + I].fetch_add(1); });
  });
  for (size_t I = 0; I < Outer * Inner; ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

TEST(ThreadPoolTest, SequentialPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.concurrency(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(5, [&](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, DedicatedPoolCoversRange) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.concurrency(), 4u);
  std::atomic<uint64_t> Sum{0};
  Pool.parallelFor(100, [&](size_t I) { Sum.fetch_add(I + 1); });
  EXPECT_EQ(Sum.load(), 5050u);
}

TEST(ThreadPoolTest, BackToBackJobsReuseWorkers) {
  ThreadPool Pool(3);
  for (int Round = 0; Round < 20; ++Round) {
    std::atomic<unsigned> Count{0};
    Pool.parallelFor(7, [&](size_t) { Count.fetch_add(1); });
    ASSERT_EQ(Count.load(), 7u) << "round " << Round;
  }
}

TEST(ThreadPoolTest, BodyExceptionPropagatesAfterCompletion) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  EXPECT_THROW(Pool.parallelFor(10,
                                [&](size_t I) {
                                  Ran.fetch_add(1);
                                  if (I == 3)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // Every index still executed; the error is reported, not a truncation.
  EXPECT_EQ(Ran.load(), 10u);
}

TEST(ThreadPoolTest, GlobalPoolIsUsableAndSingleton) {
  ThreadPool &A = ThreadPool::global();
  ThreadPool &B = ThreadPool::global();
  EXPECT_EQ(&A, &B);
  EXPECT_GE(A.concurrency(), 1u);
  EXPECT_EQ(ThreadPool::defaultConcurrency(), A.concurrency());
}
