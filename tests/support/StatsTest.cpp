//===- StatsTest.cpp - Tests for statistics helpers -------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace simtsr;

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat S;
  S.add(5.0);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 5.0);
  EXPECT_DOUBLE_EQ(S.max(), 5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
}

TEST(RunningStatTest, KnownMeanAndVariance) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 4.0, 1e-12);
  EXPECT_NEAR(S.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(RunningStatTest, WeightedMeanMatchesExpansion) {
  RunningStat Weighted, Expanded;
  Weighted.addWeighted(1.0, 3.0);
  Weighted.addWeighted(5.0, 1.0);
  for (int I = 0; I < 3; ++I)
    Expanded.add(1.0);
  Expanded.add(5.0);
  EXPECT_NEAR(Weighted.mean(), Expanded.mean(), 1e-12);
  EXPECT_NEAR(Weighted.variance(), Expanded.variance(), 1e-12);
}

TEST(RunningStatTest, ZeroWeightIgnored) {
  RunningStat S;
  S.add(2.0);
  S.addWeighted(100.0, 0.0);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_EQ(S.count(), 1u);
}

TEST(HistogramTest, BucketsCountCorrectly) {
  Histogram H(0.0, 10.0, 10);
  for (double X : {0.5, 1.5, 1.6, 9.5})
    H.add(X);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 2u);
  EXPECT_EQ(H.bucket(9), 1u);
  EXPECT_EQ(H.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram H(0.0, 1.0, 4);
  H.add(-5.0);
  H.add(42.0);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(3), 1u);
}

TEST(HistogramTest, RenderHasOneGlyphPerBucket) {
  Histogram H(0.0, 1.0, 8);
  H.add(0.1);
  EXPECT_EQ(H.render().size(), 8u);
}
