//===- FaultInjectTest.cpp - fault-injection spec grammar and RNG -------------===//
///
/// \file
/// The harness itself has to be trustworthy before the robustness tests
/// can lean on it: the SIMTSR_FAULTS grammar must reject nonsense, the
/// seeded firing sequence must replay exactly, and corruptBytes must
/// touch exactly one byte. A disarmed injector must be inert.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace simtsr;
using Fault = FaultInjector::Fault;

namespace {

TEST(FaultInjectTest, DefaultIsDisarmed) {
  FaultInjector FI;
  EXPECT_FALSE(FI.any());
  for (unsigned I = 0; I < FaultInjector::NumFaults; ++I) {
    EXPECT_FALSE(FI.armed(static_cast<Fault>(I)));
    EXPECT_FALSE(FI.fire(static_cast<Fault>(I)));
  }
}

TEST(FaultInjectTest, ParsesEveryClass) {
  FaultInjector FI;
  std::string Error;
  ASSERT_TRUE(FaultInjector::parse(
      "seed=7,short_read,short_write:0.5,eintr:0.25,enospc:1,"
      "fsync_fail:0,corrupt,drop:0.75,stall:250",
      FI, Error))
      << Error;
  EXPECT_TRUE(FI.any());
  for (unsigned I = 0; I < FaultInjector::NumFaults; ++I)
    EXPECT_TRUE(FI.armed(static_cast<Fault>(I)))
        << FaultInjector::name(static_cast<Fault>(I));
  EXPECT_EQ(FI.stallMillis(), 250u);
}

TEST(FaultInjectTest, RateOneAlwaysFiresRateZeroNever) {
  FaultInjector FI;
  std::string Error;
  ASSERT_TRUE(FaultInjector::parse("enospc:1,eintr:0", FI, Error)) << Error;
  for (int I = 0; I < 64; ++I) {
    EXPECT_TRUE(FI.fire(Fault::Enospc));
    EXPECT_FALSE(FI.fire(Fault::Eintr));
  }
  EXPECT_EQ(FI.firedCount(Fault::Enospc), 64u);
  EXPECT_EQ(FI.firedCount(Fault::Eintr), 0u);
}

TEST(FaultInjectTest, SeededFiringSequenceReplays) {
  const auto Draw = [](const std::string &Spec) {
    FaultInjector FI;
    std::string Error;
    EXPECT_TRUE(FaultInjector::parse(Spec, FI, Error)) << Error;
    std::vector<bool> Seq;
    for (int I = 0; I < 256; ++I)
      Seq.push_back(FI.fire(Fault::Drop));
    return Seq;
  };
  const std::vector<bool> A = Draw("seed=42,drop:0.5");
  const std::vector<bool> B = Draw("seed=42,drop:0.5");
  const std::vector<bool> C = Draw("seed=43,drop:0.5");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C); // 2^-256 odds of a flaky failure; effectively never.
  // A 0.5 rate should actually fire sometimes and skip sometimes.
  size_t Fired = 0;
  for (const bool F : A)
    Fired += F;
  EXPECT_GT(Fired, 64u);
  EXPECT_LT(Fired, 192u);
}

TEST(FaultInjectTest, CorruptFlipsExactlyOneByte) {
  FaultInjector FI;
  std::string Error;
  ASSERT_TRUE(FaultInjector::parse("seed=9,corrupt:1", FI, Error)) << Error;
  const std::string Original(1024, 'x');
  std::string Mutated = Original;
  ASSERT_TRUE(FI.corruptBytes(Mutated));
  ASSERT_EQ(Mutated.size(), Original.size());
  size_t Diffs = 0;
  for (size_t I = 0; I < Original.size(); ++I)
    Diffs += Original[I] != Mutated[I];
  EXPECT_EQ(Diffs, 1u);

  // Disarmed: the buffer is untouched.
  FaultInjector Off;
  std::string Same = Original;
  EXPECT_FALSE(Off.corruptBytes(Same));
  EXPECT_EQ(Same, Original);
}

TEST(FaultInjectTest, MalformedSpecsAreRejected) {
  for (const char *Bad :
       {"bogus_class", "eintr:nan", "eintr:1.5", "eintr:-0.5", "seed=",
        "seed=notanumber", "stall:999999999", ":", "eintr:"}) {
    FaultInjector FI;
    std::string Error;
    EXPECT_FALSE(FaultInjector::parse(Bad, FI, Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
    EXPECT_FALSE(FI.any()) << Bad;
  }
}

TEST(FaultInjectTest, EmptySpecParsesDisarmed) {
  FaultInjector FI;
  std::string Error;
  ASSERT_TRUE(FaultInjector::parse("", FI, Error)) << Error;
  EXPECT_FALSE(FI.any());
}

TEST(FaultInjectTest, InstallOverridesActiveAndNests) {
  FaultInjector Outer;
  std::string Error;
  ASSERT_TRUE(FaultInjector::parse("drop:1", Outer, Error)) << Error;

  FaultInjector *Prev = FaultInjector::install(&Outer);
  EXPECT_TRUE(FaultInjector::active().armed(Fault::Drop));

  FaultInjector Inner; // Disarmed.
  FaultInjector *Mid = FaultInjector::install(&Inner);
  EXPECT_EQ(Mid, &Outer);
  EXPECT_FALSE(FaultInjector::active().any());

  FaultInjector::install(Mid);
  EXPECT_TRUE(FaultInjector::active().armed(Fault::Drop));
  FaultInjector::install(Prev);
}

TEST(FaultInjectTest, NamesRoundTripTheGrammar) {
  for (unsigned I = 0; I < FaultInjector::NumFaults; ++I) {
    const Fault F = static_cast<Fault>(I);
    FaultInjector FI;
    std::string Error;
    ASSERT_TRUE(FaultInjector::parse(FaultInjector::name(F), FI, Error))
        << FaultInjector::name(F);
    EXPECT_TRUE(FI.armed(F));
  }
}

} // namespace
