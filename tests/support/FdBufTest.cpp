//===- FdBufTest.cpp - line-framed fd I/O under fault injection ---------------===//
///
/// \file
/// FdBuf is the byte layer under every serve connection, so it is tested
/// the way it fails in production: over socketpairs and pipes, blocking
/// and nonblocking, with synthetic EINTR, one-byte reads/writes and
/// connection drops injected by the fault harness. The invariant under
/// every benign fault class is byte-for-byte identical framing.
///
//===----------------------------------------------------------------------===//

#include "support/FdBuf.h"

#include "support/FaultInject.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace simtsr;

namespace {

/// RAII socketpair; index 0 and 1 are the two ends.
struct SocketPair {
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, FDs), 0);
  }
  ~SocketPair() {
    ::close(FDs[0]);
    ::close(FDs[1]);
  }
  int FDs[2];
};

/// Installs a parsed injector for the test's scope.
struct ScopedFaults {
  explicit ScopedFaults(const std::string &Spec) {
    std::string Error;
    EXPECT_TRUE(FaultInjector::parse(Spec, FI, Error)) << Error;
    Prev = FaultInjector::install(&FI);
  }
  ~ScopedFaults() { FaultInjector::install(Prev); }
  FaultInjector FI;
  FaultInjector *Prev = nullptr;
};

/// Hermetic base: a disarmed injector is installed for every test, so a
/// SIMTSR_FAULTS environment (the CI serve-faults job exports one) cannot
/// leak into tests that assert clean-I/O behavior. Fault tests install
/// their own armed injector on top.
struct FdBufTest : ::testing::Test {
  ScopedFaults Hermetic{""};
};

/// Pumps Writer.flushSome() and Reader.fill()/nextLine() until \p Want
/// lines arrived or nothing moves anymore.
std::vector<std::string> pump(FdBuf &Writer, FdBuf &Reader, size_t Want) {
  std::vector<std::string> Lines;
  std::string Line;
  for (int Spin = 0; Lines.size() < Want && Spin < 100000; ++Spin) {
    if (Writer.hasPendingOut())
      Writer.flushSome();
    const IoResult R = Reader.fill();
    while (Reader.nextLine(Line))
      Lines.push_back(Line);
    if (R == IoResult::Eof || R == IoResult::Closed)
      break;
  }
  return Lines;
}

TEST_F(FdBufTest, LinesRoundTripOverSocketpair) {
  SocketPair SP;
  FdBuf Writer(SP.FDs[0]), Reader(SP.FDs[1]);
  ASSERT_TRUE(FdBuf::setNonBlocking(SP.FDs[0]));
  ASSERT_TRUE(FdBuf::setNonBlocking(SP.FDs[1]));

  Writer.queueLine("alpha");
  Writer.queueLine("");
  Writer.queueLine("gamma with spaces");
  const std::vector<std::string> Lines = pump(Writer, Reader, 3);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(Lines[0], "alpha");
  EXPECT_EQ(Lines[1], "");
  EXPECT_EQ(Lines[2], "gamma with spaces");
  EXPECT_FALSE(Writer.hasPendingOut());
}

TEST_F(FdBufTest, CrLfIsStripped) {
  int Pipe[2];
  ASSERT_EQ(::pipe(Pipe), 0);
  FdBuf Reader(Pipe[0]);
  ASSERT_EQ(::write(Pipe[1], "with\r\nbare\n", 11), 11);
  ::close(Pipe[1]);
  EXPECT_EQ(Reader.fill(), IoResult::Ok);
  std::string Line;
  ASSERT_TRUE(Reader.nextLine(Line));
  EXPECT_EQ(Line, "with");
  ASSERT_TRUE(Reader.nextLine(Line));
  EXPECT_EQ(Line, "bare");
  EXPECT_FALSE(Reader.nextLine(Line));
  ::close(Pipe[0]);
}

TEST_F(FdBufTest, PartialLineWaitsForNewline) {
  SocketPair SP;
  FdBuf Reader(SP.FDs[1]);
  ASSERT_EQ(::send(SP.FDs[0], "no newline yet", 14, 0), 14);
  EXPECT_EQ(Reader.fill(), IoResult::Ok);
  std::string Line;
  EXPECT_FALSE(Reader.nextLine(Line));
  EXPECT_EQ(Reader.bufferedInBytes(), 14u);
  ASSERT_EQ(::send(SP.FDs[0], "!\n", 2, 0), 2);
  EXPECT_EQ(Reader.fill(), IoResult::Ok);
  ASSERT_TRUE(Reader.nextLine(Line));
  EXPECT_EQ(Line, "no newline yet!");
}

TEST_F(FdBufTest, EofAfterPeerCloses) {
  SocketPair SP;
  FdBuf Reader(SP.FDs[1]);
  ASSERT_EQ(::send(SP.FDs[0], "last\n", 5, 0), 5);
  ::close(SP.FDs[0]);
  SP.FDs[0] = -1; // The destructor's close(-1) is a harmless no-op.
  EXPECT_EQ(Reader.fill(), IoResult::Ok);
  EXPECT_EQ(Reader.fill(), IoResult::Eof);
  std::string Line;
  ASSERT_TRUE(Reader.nextLine(Line)); // Buffered lines survive the EOF.
  EXPECT_EQ(Line, "last");
}

TEST_F(FdBufTest, NonblockingEmptyReadIsWouldBlock) {
  SocketPair SP;
  ASSERT_TRUE(FdBuf::setNonBlocking(SP.FDs[1]));
  FdBuf Reader(SP.FDs[1]);
  EXPECT_EQ(Reader.fill(), IoResult::WouldBlock);
}

TEST_F(FdBufTest, ShortWriteResumesAtOffset) {
  SocketPair SP;
  ASSERT_TRUE(FdBuf::setNonBlocking(SP.FDs[0]));
  ASSERT_TRUE(FdBuf::setNonBlocking(SP.FDs[1]));
  FdBuf Writer(SP.FDs[0]), Reader(SP.FDs[1]);

  // Bigger than the socket buffer, so flushSome must stop at WouldBlock
  // and resume mid-line later without losing its place.
  const std::string Big(1u << 20, 'q');
  Writer.queueLine(Big);
  const std::vector<std::string> Lines = pump(Writer, Reader, 1);
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_EQ(Lines[0], Big);
}

TEST_F(FdBufTest, SurvivesEintrAndShortIo) {
  ScopedFaults Faults("seed=5,eintr:1,short_read:0.5,short_write:0.5");
  SocketPair SP;
  ASSERT_TRUE(FdBuf::setNonBlocking(SP.FDs[0]));
  ASSERT_TRUE(FdBuf::setNonBlocking(SP.FDs[1]));
  FdBuf Writer(SP.FDs[0]), Reader(SP.FDs[1]);

  std::vector<std::string> Sent;
  for (int I = 0; I < 32; ++I) {
    Sent.push_back("line-" + std::to_string(I) + "-" +
                   std::string(static_cast<size_t>(I * 17 % 97), 'z'));
    Writer.queueLine(Sent.back());
  }
  const std::vector<std::string> Lines = pump(Writer, Reader, Sent.size());
  EXPECT_EQ(Lines, Sent);
  // The faults actually bit: at least one synthetic EINTR was consumed.
  EXPECT_GT(Faults.FI.firedCount(FaultInjector::Fault::Eintr), 0u);
}

TEST_F(FdBufTest, InjectedDropClosesBothDirections) {
  ScopedFaults Faults("drop:1");
  SocketPair SP;
  FdBuf Writer(SP.FDs[0]), Reader(SP.FDs[1]);
  Writer.queueLine("never arrives");
  EXPECT_EQ(Writer.flushSome(), IoResult::Closed);
  EXPECT_EQ(Reader.fill(), IoResult::Closed);
}

} // namespace
