//===- ServeRouterTest.cpp - consistent-hash shard routing --------------------===//
///
/// \file
/// The sharded-serving contract (serve/Router.h): requests route by
/// content key to the owning shard and come back bit-identical to local
/// execution; module references route to the shard that compiled them; a
/// dead, dying or fault-dropped shard degrades to local execution, never
/// to a wrong or missing answer; and the "cluster" verb reports the
/// fleet. Shards are real serve::Server instances on AF_UNIX sockets.
///
//===----------------------------------------------------------------------===//

#include "serve/Router.h"
#include "serve/Server.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtsr;
using namespace simtsr::serve;

namespace {

const char *TinyKernel = R"(memory 64

func @k(0) {
entry:
  %0 = tid
  store %0, %0
  ret
}
)";

// A second kernel so two requests can hash to (potentially) different
// shards and fallback tests can use a cold key.
const char *TinyKernel2 = R"(memory 64

func @k2(0) {
entry:
  %0 = tid
  %1 = add %0, 7
  store %1, %0
  ret
}
)";

std::string field(const std::string &Response, const std::string &Key) {
  const JsonParseResult J = parseJson(Response);
  if (!J.ok() || !J.Value.isObject())
    return "<unparseable>";
  const JsonValue *V = J.Value.field(Key);
  if (!V)
    return "<missing>";
  if (V->isString())
    return V->asString();
  if (V->isBool())
    return V->asBool() ? "true" : "false";
  if (V->isIntegral())
    return std::to_string(V->asInt());
  return "<other>";
}

std::string compileReq(int64_t Id, const char *Source = TinyKernel) {
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(Id);
  W.key("op");
  W.string("compile");
  W.key("source");
  W.string(Source);
  W.endObject();
  return W.take();
}

std::string simulateReq(int64_t Id, const char *Source = TinyKernel) {
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(Id);
  W.key("op");
  W.string("simulate");
  W.key("source");
  W.string(Source);
  W.key("warps");
  W.numberUnsigned(2);
  W.endObject();
  return W.take();
}

std::string simulateByModuleReq(int64_t Id, const std::string &ModuleKey) {
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(Id);
  W.key("op");
  W.string("simulate");
  W.key("module");
  W.string(ModuleKey);
  W.key("warps");
  W.numberUnsigned(2);
  W.endObject();
  return W.take();
}

struct ScopedFaults {
  explicit ScopedFaults(const std::string &Spec) {
    std::string Error;
    EXPECT_TRUE(FaultInjector::parse(Spec, FI, Error)) << Error;
    Prev = FaultInjector::install(&FI);
  }
  ~ScopedFaults() { FaultInjector::install(Prev); }
  FaultInjector FI;
  FaultInjector *Prev = nullptr;
};

/// Hermetic base: a disarmed injector for every test so a SIMTSR_FAULTS
/// environment cannot leak in; fault tests install their own on top.
struct ServeRouterTest : ::testing::Test {
  ScopedFaults Hermetic{""};
};

struct TempDir {
  TempDir() {
    char Buf[] = "/tmp/simtsr-route-XXXXXX";
    Path = ::mkdtemp(Buf);
    EXPECT_FALSE(Path.empty());
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string Path;
};

/// One shard: a Server on an AF_UNIX socket in its own thread.
struct Shard {
  explicit Shard(const std::string &Sock, ServerOptions Opts = {})
      : Sock(Sock), S(Opts), T([this] { Result = S.serveUnixSocket(this->Sock); }) {
    // Wait until the listener accepts (the thread races us to bind).
    for (int I = 0; I < 500; ++I) {
      const int Fd = connectToAddress(this->Sock, 100);
      if (Fd >= 0) {
        ::close(Fd);
        Up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(Up);
  }

  ~Shard() { stop(); }

  /// Sends a shutdown request (idempotent) and joins the serve thread.
  void stop() {
    if (!T.joinable())
      return;
    const int Fd = connectToAddress(Sock, 200);
    if (Fd >= 0) {
      const std::string Line = "{\"id\":0,\"op\":\"shutdown\"}\n";
      [[maybe_unused]] const ssize_t W =
          ::send(Fd, Line.data(), Line.size(), MSG_NOSIGNAL);
      // Wait for the response/EOF so the drain completes before close.
      char Buf[256];
      while (::recv(Fd, Buf, sizeof(Buf), 0) > 0) {
      }
      ::close(Fd);
    }
    T.join();
  }

  std::string Sock;
  Server S;
  int Result = -1;
  bool Up = false;
  std::thread T;
};

ServerOptions routedOptions(const std::vector<std::string> &Shards,
                            bool Verify = false) {
  ServerOptions O;
  O.RouteShards = Shards;
  O.RouteTimeoutMillis = 2000;
  O.RouteVerify = Verify;
  return O;
}

TEST_F(ServeRouterTest, RouteKeyMatchesCompileKeyForBothRequestForms) {
  const RequestParse Src = parseRequest(compileReq(1));
  ASSERT_TRUE(Src.ok());
  const uint64_t SrcKey = routeKey(Src.R);
  EXPECT_EQ(SrcKey, compileKeyNamed(TinyKernel, "pdom", 8));

  // A simulate naming the module the compile returned routes identically.
  Server Local;
  const std::string Module = field(Local.handle(compileReq(2)), "module");
  const RequestParse ByMod = parseRequest(simulateByModuleReq(3, Module));
  ASSERT_TRUE(ByMod.ok());
  EXPECT_EQ(routeKey(ByMod.R), SrcKey);
}

TEST_F(ServeRouterTest, ForwardedAnswersAreBitIdenticalToLocal) {
  TempDir Dir;
  Shard S0(Dir.Path + "/s0.sock");
  Shard S1(Dir.Path + "/s1.sock");
  Server Router(routedOptions({S0.Sock, S1.Sock}));
  Server Local;

  const std::string RC = Router.handle(compileReq(1));
  const std::string LC = Local.handle(compileReq(1));
  EXPECT_EQ(field(RC, "ok"), "true");
  EXPECT_EQ(field(RC, "module"), field(LC, "module"));
  EXPECT_EQ(field(RC, "post_digest"), field(LC, "post_digest"));

  const std::string RS = Router.handle(simulateReq(2));
  const std::string LS = Local.handle(simulateReq(2));
  EXPECT_EQ(field(RS, "ok"), "true");
  EXPECT_EQ(field(RS, "checksum"), field(LS, "checksum"));
  EXPECT_EQ(field(RS, "trace_digest"), field(LS, "trace_digest"));

  // The work actually happened remotely, not via silent fallback: the
  // router's own caches never saw these keys.
  const ClusterSnapshot C = Router.clusterSnapshot();
  EXPECT_EQ(C.LocalFallbacks, 0u);
  uint64_t Forwarded = 0, ShardRequests = 0;
  for (const ShardClusterStat &Row : C.Shards) {
    EXPECT_TRUE(Row.Reachable) << Row.Address;
    Forwarded += Row.Forwarded;
    ShardRequests += Row.Requests;
  }
  EXPECT_EQ(Forwarded, 2u);
  EXPECT_GE(ShardRequests, 2u);
}

TEST_F(ServeRouterTest, ModuleReferenceRoutesToTheCompilingShard) {
  TempDir Dir;
  Shard S0(Dir.Path + "/s0.sock");
  Shard S1(Dir.Path + "/s1.sock");
  Shard S2(Dir.Path + "/s2.sock");
  Server Router(routedOptions({S0.Sock, S1.Sock, S2.Sock}));

  for (const char *Src : {TinyKernel, TinyKernel2}) {
    const std::string RC = Router.handle(compileReq(1, Src));
    ASSERT_EQ(field(RC, "ok"), "true");
    // The follow-up by module key must land on the shard holding the
    // compiled entry — "unknown_module" here would mean routing skew.
    const std::string RS =
        Router.handle(simulateByModuleReq(2, field(RC, "module")));
    EXPECT_EQ(field(RS, "ok"), "true") << RS;
    EXPECT_NE(field(RS, "error"), "unknown_module");
  }
  EXPECT_EQ(Router.clusterSnapshot().LocalFallbacks, 0u);
}

TEST_F(ServeRouterTest, DeadShardFallsBackToLocalExecution) {
  TempDir Dir;
  // Nothing listens on either address.
  Server Router(
      routedOptions({Dir.Path + "/dead0.sock", Dir.Path + "/dead1.sock"}));
  Server Local;

  const std::string R = Router.handle(simulateReq(1));
  EXPECT_EQ(field(R, "ok"), "true");
  EXPECT_EQ(field(R, "checksum"), field(Local.handle(simulateReq(1)),
                                        "checksum"));

  const ClusterSnapshot C = Router.clusterSnapshot();
  EXPECT_EQ(C.LocalFallbacks, 1u);
  for (const ShardClusterStat &Row : C.Shards)
    EXPECT_FALSE(Row.Reachable);
}

TEST_F(ServeRouterTest, ShardDeathMidSessionFallsBackAndStaysCorrect) {
  TempDir Dir;
  auto S0 = std::make_unique<Shard>(Dir.Path + "/s0.sock");
  const std::string Sock = S0->Sock;
  Server Router(routedOptions({Sock}));
  Server Local;

  EXPECT_EQ(field(Router.handle(compileReq(1)), "ok"), "true");
  // The shard dies between requests; its socket file disappears with it.
  S0.reset();

  const std::string R = Router.handle(simulateReq(2, TinyKernel2));
  EXPECT_EQ(field(R, "ok"), "true");
  EXPECT_EQ(field(R, "checksum"),
            field(Local.handle(simulateReq(2, TinyKernel2)), "checksum"));
  EXPECT_GE(Router.clusterSnapshot().LocalFallbacks, 1u);
}

TEST_F(ServeRouterTest, InjectedConnectionDropsFallBackToLocal) {
  TempDir Dir;
  Shard S0(Dir.Path + "/s0.sock");
  Server Router(routedOptions({S0.Sock}));

  // Every FdBuf I/O now reports the connection reset — the transport is
  // gone even though the shard process is alive. Requests must degrade to
  // local execution, not error out.
  ScopedFaults Faults("drop:1");
  const std::string R = Router.handle(simulateReq(1));
  EXPECT_EQ(field(R, "ok"), "true");
  EXPECT_EQ(field(R, "status"), "finished");

  // Disarm before teardown so the shutdown handshake works again.
  ScopedFaults Clean("");
  const ClusterSnapshot C = Router.clusterSnapshot();
  EXPECT_GE(C.LocalFallbacks, 1u);
  ASSERT_EQ(C.Shards.size(), 1u);
  EXPECT_GE(C.Shards[0].Errors, 1u);
}

TEST_F(ServeRouterTest, RouteVerifyPassesAgainstAnHonestShard) {
  TempDir Dir;
  Shard S0(Dir.Path + "/s0.sock");
  Server Router(routedOptions({S0.Sock}, /*Verify=*/true));

  EXPECT_EQ(field(Router.handle(compileReq(1)), "ok"), "true");
  EXPECT_EQ(field(Router.handle(simulateReq(2)), "ok"), "true");
  EXPECT_EQ(Router.clusterSnapshot().VerifyFailures, 0u);
}

TEST_F(ServeRouterTest, ClusterVerbRendersFleetAndLocalStats) {
  TempDir Dir;
  Shard S0(Dir.Path + "/s0.sock");
  Server Router(routedOptions({S0.Sock, Dir.Path + "/dead.sock"}));

  EXPECT_EQ(field(Router.handle(simulateReq(1)), "ok"), "true");
  const std::string C = Router.handle("{\"id\":7,\"op\":\"cluster\"}");
  const JsonParseResult J = parseJson(C);
  ASSERT_TRUE(J.ok()) << C;
  EXPECT_EQ(field(C, "op"), "cluster");
  EXPECT_EQ(field(C, "ok"), "true");
  EXPECT_EQ(field(C, "schema"), "simtsr-serve-v2");
  EXPECT_EQ(field(C, "routing"), "true");

  const JsonValue *Fleet = J.Value.field("fleet");
  ASSERT_TRUE(Fleet && Fleet->isObject());
  EXPECT_EQ(Fleet->field("shards")->asInt(), 2);
  EXPECT_EQ(Fleet->field("reachable")->asInt(), 1);

  const JsonValue *Shards = J.Value.field("shards");
  ASSERT_TRUE(Shards && Shards->isArray());
  ASSERT_EQ(Shards->items().size(), 2u);

  const JsonValue *LocalStats = J.Value.field("local");
  ASSERT_TRUE(LocalStats && LocalStats->isObject());
  EXPECT_TRUE(LocalStats->field("requests"));

  // An unrouted server still answers the verb, with an empty fleet.
  Server Plain;
  const std::string P = Plain.handle("{\"id\":8,\"op\":\"cluster\"}");
  EXPECT_EQ(field(P, "ok"), "true");
  EXPECT_EQ(field(P, "routing"), "false");
}

TEST_F(ServeRouterTest, TcpAddressClassification) {
  EXPECT_TRUE(isTcpAddress("127.0.0.1:9000"));
  EXPECT_TRUE(isTcpAddress("localhost:80"));
  EXPECT_TRUE(isTcpAddress(":9000"));
  EXPECT_FALSE(isTcpAddress("/tmp/serve.sock"));
  EXPECT_FALSE(isTcpAddress("/tmp/odd:name.sock"));
  EXPECT_FALSE(isTcpAddress("plainname"));
  EXPECT_FALSE(isTcpAddress("host:"));
  EXPECT_FALSE(isTcpAddress("host:port"));
}

TEST_F(ServeRouterTest, ServesOverTcpLoopback) {
  // The same poll loop behind --socket must work on a TCP listener; pick
  // an ephemeral-range port from the PID to dodge collisions.
  const uint16_t Port =
      static_cast<uint16_t>(20000 + (::getpid() % 20000));
  const std::string Addr = "127.0.0.1:" + std::to_string(Port);
  Shard S0(Addr);
  if (!S0.Up)
    GTEST_SKIP() << "port " << Port << " unavailable";
  Server Router(routedOptions({Addr}));
  const std::string R = Router.handle(simulateReq(1));
  EXPECT_EQ(field(R, "ok"), "true");
  EXPECT_EQ(Router.clusterSnapshot().LocalFallbacks, 0u);
}

} // namespace
