//===- ServeErrorTest.cpp - serve error paths and backpressure ----------------===//
///
/// \file
/// The daemon's failure behavior is part of the protocol: malformed lines
/// get correlated error responses, compile failures are cached like
/// successes (same source, same answer), and a saturated queue sheds load
/// with "queue_full" instead of buffering without bound. QueueDepth=0
/// makes the overflow path deterministic to test.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace simtsr;
using namespace simtsr::serve;

namespace {

const char *TinyKernel = R"(memory 64

func @k(0) {
entry:
  %0 = tid
  store %0, %0
  ret
}
)";

std::string field(const std::string &Response, const std::string &Key) {
  const JsonParseResult J = parseJson(Response);
  if (!J.ok() || !J.Value.isObject())
    return "<unparseable>";
  const JsonValue *V = J.Value.field(Key);
  if (!V)
    return "<missing>";
  if (V->isString())
    return V->asString();
  if (V->isBool())
    return V->asBool() ? "true" : "false";
  if (V->isIntegral())
    return std::to_string(V->asInt());
  return "<other>";
}

TEST(ServeErrorTest, MalformedLineAnswersParseError) {
  Server S;
  const std::string Resp = S.handle("{nope");
  EXPECT_EQ(field(Resp, "ok"), "false");
  EXPECT_EQ(field(Resp, "error"), "parse_error");
}

TEST(ServeErrorTest, BadRequestKeepsCorrelationId) {
  Server S;
  const std::string Resp = S.handle(R"({"id":55,"op":"levitate"})");
  EXPECT_EQ(field(Resp, "id"), "55");
  EXPECT_EQ(field(Resp, "error"), "bad_request");
}

TEST(ServeErrorTest, UnknownModuleKey) {
  Server S;
  const std::string Resp = S.handle(
      R"({"id":1,"op":"simulate","module":"0x0123456789abcdef"})");
  EXPECT_EQ(field(Resp, "ok"), "false");
  EXPECT_EQ(field(Resp, "error"), "unknown_module");
}

TEST(ServeErrorTest, UnknownKernelName) {
  Server S;
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(int64_t{1});
  W.key("op");
  W.string("simulate");
  W.key("source");
  W.string(TinyKernel);
  W.key("kernel");
  W.string("nope");
  W.endObject();
  const std::string Resp = S.handle(W.take());
  EXPECT_EQ(field(Resp, "error"), "unknown_kernel");
}

TEST(ServeErrorTest, CompileFailuresAreCachedToo) {
  Server S;
  const std::string Req =
      R"({"id":1,"op":"compile","source":"func garbage {{{"})";
  const std::string First = S.handle(Req);
  EXPECT_EQ(field(First, "error"), "compile_error");
  const std::string Second = S.handle(Req);
  EXPECT_EQ(field(Second, "error"), "compile_error");
  // Same source, same answer — served from the cache the second time.
  const StatsSnapshot Stats = S.statsSnapshot();
  EXPECT_EQ(Stats.Compile.Misses, 1u);
  EXPECT_EQ(Stats.Compile.Hits, 1u);
  // The diagnostics themselves must be identical.
  EXPECT_EQ(field(First, "detail"), field(Second, "detail"));
}

TEST(ServeErrorTest, QueueOverflowShedsWithQueueFull) {
  ServerOptions Opts;
  Opts.QueueDepth = 0; // Shed every data-plane request, deterministically.
  Server S(Opts);

  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(int64_t{1});
  W.key("op");
  W.string("compile");
  W.key("source");
  W.string(TinyKernel);
  W.endObject();

  std::istringstream In(W.take() + "\n" + R"({"id":2,"op":"stats"})" + "\n");
  std::ostringstream Out;
  const uint64_t Accepted = S.serve(In, Out);
  EXPECT_EQ(Accepted, 2u);

  // First response line: the shed compile. Second: the inline stats,
  // which must observe the rejection (control plane bypasses the queue).
  std::istringstream Lines(Out.str());
  std::string Shed, Stats;
  ASSERT_TRUE(std::getline(Lines, Shed));
  ASSERT_TRUE(std::getline(Lines, Stats));
  EXPECT_EQ(field(Shed, "error"), "queue_full");
  EXPECT_EQ(field(Shed, "id"), "1");
  EXPECT_EQ(field(Stats, "rejected"), "1");
  // The shed response tells the client how long to back off.
  const std::string Retry = field(Shed, "retry_after_ms");
  ASSERT_NE(Retry, "<missing>");
  EXPECT_GE(std::stoull(Retry), 10u);
  EXPECT_LE(std::stoull(Retry), 2000u);
}

TEST(ServeErrorTest, ShutdownDrainsAndReportsServed) {
  Server S;
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(int64_t{1});
  W.key("op");
  W.string("compile");
  W.key("source");
  W.string(TinyKernel);
  W.endObject();

  std::istringstream In(W.take() + "\n" +
                        R"({"id":2,"op":"shutdown"})" + "\n" +
                        R"({"id":3,"op":"stats"})" + "\n");
  std::ostringstream Out;
  const uint64_t Accepted = S.serve(In, Out);
  // The line after shutdown is never read.
  EXPECT_EQ(Accepted, 2u);

  // Both responses present; the shutdown one reports the served count.
  std::istringstream Lines(Out.str());
  std::string Line;
  bool SawCompile = false, SawShutdown = false;
  while (std::getline(Lines, Line)) {
    if (field(Line, "op") == "compile")
      SawCompile = true;
    if (field(Line, "op") == "shutdown") {
      SawShutdown = true;
      EXPECT_EQ(field(Line, "served"), "2");
    }
  }
  EXPECT_TRUE(SawCompile);
  EXPECT_TRUE(SawShutdown);
}

TEST(ServeErrorTest, BlankLinesAreIgnored) {
  Server S;
  std::istringstream In("\n   \n" + std::string(R"({"id":1,"op":"stats"})") +
                        "\n\n");
  std::ostringstream Out;
  EXPECT_EQ(S.serve(In, Out), 1u);
}

} // namespace
