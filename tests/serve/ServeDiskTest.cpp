//===- ServeDiskTest.cpp - crash-safe disk tier under the serve caches --------===//
///
/// \file
/// The disk tier's contract, proven end to end: a restarted daemon serves
/// bit-identical answers out of the directory a previous daemon left
/// behind; a corrupt or truncated entry is quarantined and recomputed,
/// never served; injected disk failures (ENOSPC, fsync) degrade the
/// daemon to memory-only instead of failing requests; and the payload
/// codecs round-trip every field exactly.
///
//===----------------------------------------------------------------------===//

#include "serve/DiskTier.h"
#include "serve/Server.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

using namespace simtsr;
using namespace simtsr::serve;

namespace {

const char *TinyKernel = R"(memory 64

func @k(0) {
entry:
  %0 = tid
  %1 = randrange 0, 10
  %2 = cmplt %1, 5
  br %2, a, b
a:
  %3 = add %0, %1
  jmp b
b:
  store %0, %1
  ret
}
)";

/// Extracts the raw JSON token after "Key": — byte-exact, so comparing
/// two responses' fields proves bit-identity, doubles included.
std::string rawField(const std::string &Response, const std::string &Key) {
  const std::string Needle = "\"" + Key + "\":";
  const size_t At = Response.find(Needle);
  if (At == std::string::npos)
    return "<missing>";
  size_t End = At + Needle.size();
  int Depth = 0;
  bool InString = false;
  for (; End < Response.size(); ++End) {
    const char C = Response[End];
    if (InString) {
      if (C == '\\')
        ++End;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']') {
      if (Depth == 0)
        break;
      --Depth;
    } else if (C == ',' && Depth == 0)
      break;
  }
  return Response.substr(At + Needle.size(), End - At - Needle.size());
}

struct TempDir {
  TempDir() {
    char Buf[] = "/tmp/simtsr-disk-XXXXXX";
    Path = ::mkdtemp(Buf);
    EXPECT_FALSE(Path.empty());
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string Path;
};

struct ScopedFaults {
  explicit ScopedFaults(const std::string &Spec) {
    std::string Error;
    EXPECT_TRUE(FaultInjector::parse(Spec, FI, Error)) << Error;
    Prev = FaultInjector::install(&FI);
  }
  ~ScopedFaults() { FaultInjector::install(Prev); }
  FaultInjector FI;
  FaultInjector *Prev = nullptr;
};

/// Hermetic base: a disarmed injector is installed for every test, so a
/// SIMTSR_FAULTS environment (the CI serve-faults job exports one) cannot
/// leak into tests that assert clean-disk behavior. Fault tests install
/// their own armed injector on top.
struct ServeDiskTest : ::testing::Test {
  ScopedFaults Hermetic{""};
};

std::string simulateReq(int64_t Id) {
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(Id);
  W.key("op");
  W.string("simulate");
  W.key("source");
  W.string(TinyKernel);
  W.key("pipeline");
  W.string("sr");
  W.key("warps");
  W.numberUnsigned(2);
  W.endObject();
  return W.take();
}

ServerOptions diskOpts(const std::string &Dir) {
  ServerOptions Opts;
  Opts.DiskCacheDir = Dir;
  return Opts;
}

/// The headline oracle: cold == warm == disk-hit == post-restart, bit for
/// bit, across a full process "restart" (a second Server over the same
/// directory, memory caches cold).
TEST_F(ServeDiskTest, RestartServesBitIdenticalFromDisk) {
  TempDir Dir;
  std::string Cold, Warm;
  {
    Server A(diskOpts(Dir.Path));
    Cold = A.handle(simulateReq(1));
    Warm = A.handle(simulateReq(2));
    const DiskTierStats DS = A.statsSnapshot().Disk;
    EXPECT_EQ(DS.Writes, 2u); // One compile entry, one sim entry.
    EXPECT_FALSE(DS.Degraded);
  }

  Server B(diskOpts(Dir.Path)); // "Restart": same disk, cold memory.
  const std::string FromDisk = B.handle(simulateReq(3));
  EXPECT_EQ(rawField(FromDisk, "cached"), "true");
  EXPECT_EQ(rawField(FromDisk, "compile_cached"), "true");
  for (const char *Key :
       {"post_digest", "trace_digest", "checksum", "cycles", "issue_slots",
        "simt_efficiency", "status", "module"}) {
    EXPECT_EQ(rawField(Cold, Key), rawField(FromDisk, Key)) << Key;
    EXPECT_EQ(rawField(Warm, Key), rawField(FromDisk, Key)) << Key;
  }
  const DiskTierStats DS = B.statsSnapshot().Disk;
  EXPECT_EQ(DS.Hits, 2u); // Compile entry + sim entry.
  EXPECT_EQ(DS.Quarantined, 0u);

  // Nothing changed on disk, so B re-persisted nothing... except that the
  // tier is write-through only on misses — no writes on a pure hit.
  EXPECT_EQ(DS.Writes, 0u);
}

TEST_F(ServeDiskTest, CompileFailuresPersistToo) {
  TempDir Dir;
  const std::string Req =
      R"({"id":1,"op":"compile","source":"func garbage {{{"})";
  std::string First;
  {
    Server A(diskOpts(Dir.Path));
    First = A.handle(Req);
    EXPECT_EQ(rawField(First, "error"), "\"compile_error\"");
  }
  Server B(diskOpts(Dir.Path));
  const std::string Second = B.handle(Req);
  EXPECT_EQ(rawField(Second, "error"), "\"compile_error\"");
  EXPECT_EQ(rawField(Second, "cached"), "true");
  EXPECT_EQ(rawField(First, "detail"), rawField(Second, "detail"));
  EXPECT_EQ(B.statsSnapshot().Disk.Hits, 1u);
}

TEST_F(ServeDiskTest, CorruptEntryIsQuarantinedAndRecomputed) {
  TempDir Dir;
  std::string Clean;
  {
    Server A(diskOpts(Dir.Path));
    Clean = A.handle(simulateReq(1));
  }

  // Flip one byte in every stored entry — a checksum must catch each.
  unsigned Flipped = 0;
  for (const auto &DE : std::filesystem::directory_iterator(Dir.Path)) {
    if (!DE.is_regular_file())
      continue;
    std::string Bytes;
    {
      std::ifstream In(DE.path(), std::ios::binary);
      ASSERT_TRUE(In.good());
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Bytes = Buf.str();
    }
    ASSERT_FALSE(Bytes.empty());
    Bytes[Bytes.size() / 2] =
        static_cast<char>(Bytes[Bytes.size() / 2] ^ 0x40);
    std::ofstream Out(DE.path(), std::ios::binary | std::ios::trunc);
    Out << Bytes;
    ++Flipped;
  }
  ASSERT_EQ(Flipped, 2u);

  Server B(diskOpts(Dir.Path));
  const std::string Recomputed = B.handle(simulateReq(2));
  // Same bits as the clean run — the corrupt entries were never served.
  for (const char *Key :
       {"trace_digest", "checksum", "cycles", "simt_efficiency"})
    EXPECT_EQ(rawField(Clean, Key), rawField(Recomputed, Key)) << Key;
  const DiskTierStats DS = B.statsSnapshot().Disk;
  EXPECT_EQ(DS.Quarantined, 2u);
  EXPECT_EQ(DS.Hits, 0u);
  EXPECT_FALSE(DS.Degraded); // Corruption is not an I/O error.
  // The bad bytes were preserved for post-mortem, not destroyed.
  EXPECT_TRUE(std::filesystem::exists(Dir.Path + "/quarantine"));
  unsigned InQuarantine = 0;
  for (const auto &DE :
       std::filesystem::directory_iterator(Dir.Path + "/quarantine"))
    InQuarantine += DE.is_regular_file();
  EXPECT_EQ(InQuarantine, 2u);
}

TEST_F(ServeDiskTest, TruncatedEntryIsAMiss) {
  TempDir Dir;
  {
    Server A(diskOpts(Dir.Path));
    A.handle(simulateReq(1));
  }
  // Simulate a torn write that bypassed the atomic rename (e.g. a hostile
  // edit): chop every entry in half.
  for (const auto &DE : std::filesystem::directory_iterator(Dir.Path)) {
    if (!DE.is_regular_file())
      continue;
    std::error_code Ec;
    std::filesystem::resize_file(DE.path(),
                                 DE.file_size() / 2, Ec);
    ASSERT_FALSE(Ec);
  }
  Server B(diskOpts(Dir.Path));
  const std::string Resp = B.handle(simulateReq(2));
  EXPECT_EQ(rawField(Resp, "ok"), "true");
  EXPECT_EQ(B.statsSnapshot().Disk.Quarantined, 2u);
}

TEST_F(ServeDiskTest, EnospcDegradesToMemoryOnly) {
  TempDir Dir;
  ScopedFaults Faults("enospc:1");
  Server S(diskOpts(Dir.Path));
  const std::string Resp = S.handle(simulateReq(1));
  EXPECT_EQ(rawField(Resp, "ok"), "true"); // The request still succeeds.
  const DiskTierStats DS = S.statsSnapshot().Disk;
  EXPECT_TRUE(DS.Degraded);
  EXPECT_GE(DS.WriteErrors, 1u);
  EXPECT_EQ(DS.Writes, 0u);
  // Memory tier still works: warm repeat is a cache hit.
  const std::string Warm = S.handle(simulateReq(2));
  EXPECT_EQ(rawField(Warm, "cached"), "true");
  // Degraded mode stops touching the disk entirely.
  const uint64_t ErrorsBefore = S.statsSnapshot().Disk.WriteErrors;
  S.handle(simulateReq(3));
  EXPECT_EQ(S.statsSnapshot().Disk.WriteErrors, ErrorsBefore);
  // No temp files were left behind by the failed writes.
  unsigned Files = 0;
  for (const auto &DE : std::filesystem::directory_iterator(Dir.Path))
    Files += DE.is_regular_file();
  EXPECT_EQ(Files, 0u);
}

TEST_F(ServeDiskTest, FsyncFailureDegradesWithoutTornEntries) {
  TempDir Dir;
  {
    ScopedFaults Faults("fsync_fail:1");
    Server S(diskOpts(Dir.Path));
    EXPECT_EQ(rawField(S.handle(simulateReq(1)), "ok"), "true");
    EXPECT_TRUE(S.statsSnapshot().Disk.Degraded);
  }
  // Whatever the failed durable writes left behind, a restart must not
  // serve torn bytes: every surviving entry still checksums or is
  // quarantined, and the answer matches a fresh compute.
  Server Fresh(ServerOptions{});
  Server B(diskOpts(Dir.Path));
  EXPECT_EQ(rawField(B.handle(simulateReq(2)), "trace_digest"),
            rawField(Fresh.handle(simulateReq(2)), "trace_digest"));
}

TEST_F(ServeDiskTest, CorruptedAtWriteIsNeverServedAfterRestart) {
  TempDir Dir;
  std::string Clean;
  {
    Server Fresh(ServerOptions{});
    Clean = Fresh.handle(simulateReq(1));
  }
  {
    // Every entry this daemon persists gets one byte flipped on the way
    // to the disk.
    ScopedFaults Faults("seed=3,corrupt:1");
    Server A(diskOpts(Dir.Path));
    A.handle(simulateReq(1));
  }
  Server B(diskOpts(Dir.Path));
  const std::string Resp = B.handle(simulateReq(2));
  for (const char *Key : {"trace_digest", "checksum", "cycles"})
    EXPECT_EQ(rawField(Clean, Key), rawField(Resp, Key)) << Key;
  EXPECT_GE(B.statsSnapshot().Disk.Quarantined, 1u);
}

TEST_F(ServeDiskTest, UnusableDirectoryStartsDegraded) {
  Server S(diskOpts("/proc/definitely/not/creatable"));
  const std::string Resp = S.handle(simulateReq(1));
  EXPECT_EQ(rawField(Resp, "ok"), "true");
  EXPECT_TRUE(S.statsSnapshot().Disk.Degraded);
}

TEST_F(ServeDiskTest, RehydrationFailureQuarantines) {
  TempDir Dir;
  // A structurally valid entry whose stored module no longer parses —
  // e.g. written by a future version with new syntax.
  const uint64_t Key = compileKeyNamed(TinyKernel, "sr", 8);
  CompileEntry Fake;
  Fake.Key = Key;
  Fake.Ok = true;
  Fake.PipelineName = "sr";
  Fake.PostText = "this is not a module";
  {
    DiskTier D(Dir.Path);
    D.store('c', Key, encodeCompileEntry(Fake));
    EXPECT_EQ(D.stats().Writes, 1u);
  }
  Server S(diskOpts(Dir.Path));
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(int64_t{1});
  W.key("op");
  W.string("compile");
  W.key("source");
  W.string(TinyKernel);
  W.key("pipeline");
  W.string("sr");
  W.endObject();
  const std::string Resp = S.handle(W.take());
  EXPECT_EQ(rawField(Resp, "ok"), "true");       // Recomputed from source.
  EXPECT_EQ(rawField(Resp, "cached"), "false");  // Not served from disk.
  EXPECT_EQ(S.statsSnapshot().Disk.Quarantined, 1u);
}

TEST_F(ServeDiskTest, KeyMismatchIsCorruption) {
  TempDir Dir;
  DiskTier D(Dir.Path);
  D.store('s', 42, "some payload");
  // The file under key 42 is internally consistent; asking for it under
  // key 42 succeeds, and the header binds it to that key.
  EXPECT_TRUE(D.load('s', 42).has_value());
  EXPECT_FALSE(D.load('s', 43).has_value()); // Plain miss, no file.
  // Rename the entry so its header key disagrees with its filename key.
  std::string From, To;
  for (const auto &DE : std::filesystem::directory_iterator(Dir.Path))
    if (DE.is_regular_file())
      From = DE.path();
  ASSERT_FALSE(From.empty());
  To = From;
  To.replace(To.find("002a"), 4, "002b"); // 42 -> 43 in the hex name.
  std::filesystem::rename(From, To);
  EXPECT_FALSE(D.load('s', 43).has_value());
  EXPECT_EQ(D.stats().Quarantined, 1u);
}

TEST_F(ServeDiskTest, CompileEntryCodecRoundTrips) {
  CompileEntry E;
  E.Key = 0xdeadbeefcafef00dull;
  E.Ok = true;
  E.PipelineName = "sr";
  E.KernelName = "k";
  E.PostText = "line one\nline two\nwith \"quotes\" and \x01 bytes";
  E.PostDigest = 0x1234;
  E.RemarksJsonl = "{\"pass\":\"sr\"}\n";
  E.RemarkCount = 1;
  E.Downgrades = 2;
  E.Errors = {"err: one", "err: two\nwith newline"};
  E.VerifierDiagnostics = {"diag"};
  CompileEntry Out;
  ASSERT_TRUE(decodeCompileEntry(encodeCompileEntry(E), Out));
  EXPECT_EQ(Out.Key, E.Key);
  EXPECT_EQ(Out.Ok, E.Ok);
  EXPECT_EQ(Out.PipelineName, E.PipelineName);
  EXPECT_EQ(Out.KernelName, E.KernelName);
  EXPECT_EQ(Out.PostText, E.PostText);
  EXPECT_EQ(Out.PostDigest, E.PostDigest);
  EXPECT_EQ(Out.RemarksJsonl, E.RemarksJsonl);
  EXPECT_EQ(Out.RemarkCount, E.RemarkCount);
  EXPECT_EQ(Out.Downgrades, E.Downgrades);
  EXPECT_EQ(Out.Errors, E.Errors);
  EXPECT_EQ(Out.VerifierDiagnostics, E.VerifierDiagnostics);

  // Truncation and trailing garbage are both structural corruption.
  const std::string Good = encodeCompileEntry(E);
  EXPECT_FALSE(decodeCompileEntry(Good.substr(0, Good.size() / 2), Out));
  EXPECT_FALSE(decodeCompileEntry(Good + "x", Out));
  EXPECT_FALSE(decodeCompileEntry("", Out));
}

TEST_F(ServeDiskTest, SimEntryCodecRoundTripsExactDouble) {
  SimEntry E;
  E.Key = 0xabcdef;
  E.Ok = true;
  E.Status = "finished";
  E.FailMessage = "";
  E.WarpsRun = 7;
  E.Cycles = 123456789;
  E.IssueSlots = 987654321;
  E.SimtEfficiency = 0.1 + 0.2; // Deliberately not exactly 0.3.
  E.Checksum = 0x1111;
  E.TraceDigest = 0x2222;
  SimEntry Out;
  ASSERT_TRUE(decodeSimEntry(encodeSimEntry(E), Out));
  EXPECT_EQ(Out.Key, E.Key);
  EXPECT_EQ(Out.Status, E.Status);
  EXPECT_EQ(Out.WarpsRun, E.WarpsRun);
  EXPECT_EQ(Out.Cycles, E.Cycles);
  EXPECT_EQ(Out.IssueSlots, E.IssueSlots);
  // Bit-exact, not approximately equal.
  uint64_t InBits = 0, OutBits = 0;
  std::memcpy(&InBits, &E.SimtEfficiency, sizeof(InBits));
  std::memcpy(&OutBits, &Out.SimtEfficiency, sizeof(OutBits));
  EXPECT_EQ(InBits, OutBits);
  EXPECT_EQ(Out.Checksum, E.Checksum);
  EXPECT_EQ(Out.TraceDigest, E.TraceDigest);

  EXPECT_FALSE(decodeSimEntry("", Out));
  const std::string Good = encodeSimEntry(E);
  EXPECT_FALSE(decodeSimEntry(Good.substr(0, Good.size() - 2), Out));
}

} // namespace
