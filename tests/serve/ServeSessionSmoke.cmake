# Scripted daemon session: compile -> cached compile -> simulate -> stats
# -> shutdown over stdin, asserting the second compile and the simulate's
# compile both hit the content-addressed cache.
#
# Invoked as:
#   cmake -DSERVE_BIN=<simtsr-serve> -DEXAMPLE=<listing1.sir> -P ServeSessionSmoke.cmake

if(NOT SERVE_BIN OR NOT EXAMPLE)
  message(FATAL_ERROR "ServeSessionSmoke.cmake needs -DSERVE_BIN and -DEXAMPLE")
endif()

file(READ "${EXAMPLE}" SOURCE)

# JSON-escape the kernel source (backslash first, then quotes, then
# newlines; the example files contain no other control characters).
string(REPLACE "\\" "\\\\" SOURCE "${SOURCE}")
string(REPLACE "\"" "\\\"" SOURCE "${SOURCE}")
string(REPLACE "\n" "\\n" SOURCE "${SOURCE}")

set(SESSION "")
string(APPEND SESSION "{\"id\":1,\"op\":\"compile\",\"source\":\"${SOURCE}\",\"pipeline\":\"sr\"}\n")
string(APPEND SESSION "{\"id\":2,\"op\":\"compile\",\"source\":\"${SOURCE}\",\"pipeline\":\"sr\"}\n")
string(APPEND SESSION "{\"id\":3,\"op\":\"simulate\",\"source\":\"${SOURCE}\",\"pipeline\":\"sr\",\"warps\":2}\n")
string(APPEND SESSION "{\"id\":4,\"op\":\"stats\"}\n")
string(APPEND SESSION "{\"id\":5,\"op\":\"shutdown\"}\n")

set(INPUT "${CMAKE_CURRENT_BINARY_DIR}/serve_session_input.jsonl")
file(WRITE "${INPUT}" "${SESSION}")

execute_process(
  COMMAND "${SERVE_BIN}"
  INPUT_FILE "${INPUT}"
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)

if(NOT RC EQUAL 0)
  message(FATAL_ERROR "simtsr-serve exited ${RC}\nstdout:\n${OUT}\nstderr:\n${ERR}")
endif()

# The second compile must be a cache hit.
if(NOT OUT MATCHES "\"id\":2,\"ok\":true,\"op\":\"compile\",\"cached\":true")
  message(FATAL_ERROR "warm compile was not served from cache:\n${OUT}")
endif()

# The simulate must reuse the cached compile and finish.
if(NOT OUT MATCHES "\"compile_cached\":true")
  message(FATAL_ERROR "simulate did not reuse the cached compile:\n${OUT}")
endif()
if(NOT OUT MATCHES "\"status\":\"finished\"")
  message(FATAL_ERROR "simulate did not finish:\n${OUT}")
endif()

# Stats must report a nonzero compile-cache hit count.
if(NOT OUT MATCHES "\"compile_cache\":{\"hits\":[1-9]")
  message(FATAL_ERROR "stats reported zero compile-cache hits:\n${OUT}")
endif()

# Shutdown acknowledges the whole session.
if(NOT OUT MATCHES "\"op\":\"shutdown\",\"served\":5")
  message(FATAL_ERROR "shutdown did not report 5 served requests:\n${OUT}")
endif()

message(STATUS "serve session smoke passed")
