//===- ServeCacheTest.cpp - content-addressed cache correctness ---------------===//
///
/// \file
/// The serve caches' contract is bit-identity: a warm answer must equal
/// the cold answer it replaced, for every pipeline configuration and
/// scheduler policy — proven here through the observe-layer digests. Also
/// pins the LRU mechanics (hit/miss/eviction/promotion) and the
/// content-key construction (source and pipeline axes both feed the key;
/// the simulate key folds in every launch axis).
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "ir/Parser.h"
#include "serve/Server.h"
#include "sim/Grid.h"
#include "support/Json.h"
#include "transform/Pipeline.h"

#include "gtest/gtest.h"

#include <memory>
#include <set>

using namespace simtsr;
using namespace simtsr::serve;

namespace {

const char *TinyKernel = R"(memory 64

func @k(0) {
entry:
  %0 = tid
  %1 = randrange 0, 10
  %2 = cmplt %1, 5
  br %2, a, b
a:
  %3 = add %0, %1
  jmp b
b:
  store %0, %1
  ret
}
)";

std::string field(const std::string &Response, const std::string &Key) {
  const JsonParseResult J = parseJson(Response);
  if (!J.ok() || !J.Value.isObject())
    return "<unparseable>";
  const JsonValue *V = J.Value.field(Key);
  if (!V)
    return "<missing>";
  if (V->isString())
    return V->asString();
  if (V->isBool())
    return V->asBool() ? "true" : "false";
  if (V->isIntegral())
    return std::to_string(V->asInt());
  return "<other>";
}

TEST(ContentCacheTest, LruEvictsLeastRecentlyUsed) {
  ContentCache<SimEntry> C(2);
  for (uint64_t K : {1, 2}) {
    auto E = std::make_shared<SimEntry>();
    E->Key = K;
    C.insert(E);
  }
  EXPECT_NE(C.lookup(1), nullptr); // Promotes 1; 2 is now LRU.
  auto E3 = std::make_shared<SimEntry>();
  E3->Key = 3;
  C.insert(E3);
  EXPECT_EQ(C.lookup(2), nullptr);
  EXPECT_NE(C.lookup(1), nullptr);
  EXPECT_NE(C.lookup(3), nullptr);
  const CacheStats S = C.stats();
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 1u);
}

TEST(ContentCacheTest, FirstInsertWins) {
  ContentCache<SimEntry> C(4);
  auto A = std::make_shared<SimEntry>();
  A->Key = 7;
  A->Cycles = 100;
  auto B = std::make_shared<SimEntry>();
  B->Key = 7;
  B->Cycles = 999;
  C.insert(A);
  C.insert(B);
  EXPECT_EQ(C.lookup(7)->Cycles, 100u);
}

TEST(ServeCacheTest, CompileKeySeparatesSourceAndPipeline) {
  const uint64_t A = compileKeyNamed("src", "pdom", 8);
  EXPECT_EQ(A, compileKeyNamed("src", "pdom", 8));
  EXPECT_NE(A, compileKeyNamed("src2", "pdom", 8));
  EXPECT_NE(A, compileKeyNamed("src", "sr", 8));
  EXPECT_NE(A, compileKeyNamed("src", "none", 8));
  // The soft threshold is an axis only for configs that use it.
  EXPECT_NE(compileKeyNamed("src", "soft", 4),
            compileKeyNamed("src", "soft", 8));
  EXPECT_EQ(compileKeyNamed("src", "pdom", 4),
            compileKeyNamed("src", "pdom", 8));
}

TEST(ServeCacheTest, AxisStringCoversEveryStandardConfig) {
  // Every standard config must map to a distinct axis string — if two
  // collided, their compiles would poison each other's cache entries.
  std::vector<std::string> Seen;
  for (const std::string &Name : standardPipelineNames()) {
    const auto O = standardPipelineSpec(Name);
    ASSERT_TRUE(O.has_value());
    const std::string Axes = pipelineCacheAxes(*O);
    for (const std::string &Prior : Seen)
      EXPECT_NE(Axes, Prior) << Name;
    Seen.push_back(Axes);
  }
}

TEST(ServeCacheTest, AxisStringFormatIsThePythonMirrorContract) {
  // scripts/serve_client.py re-derives these strings to compute route
  // keys client-side; any change here must land there too (and is a
  // deliberate cache-key break). Pin one meld config and the
  // soft-threshold substitution exactly.
  EXPECT_EQ(pipelineCacheAxes(*standardPipelineSpec("meld+sr")),
            "stages=meld,pdom-sync,sr,deconflict,verify;"
            "soft=-1;exitbar=1;deconflict=dynamic;meld=1/64");
  EXPECT_EQ(pipelineCacheAxes(*standardPipelineSpec("soft", 6)),
            "stages=pdom-sync,sr,interproc,deconflict,verify;"
            "soft=6;exitbar=1;deconflict=dynamic;meld=1/64");
}

/// The tentpole acceptance property: cold and warm answers are
/// bit-identical across every standard pipeline config, proven by the
/// observe-layer digests in the responses.
TEST(ServeCacheTest, ColdAndWarmAnswersBitIdenticalAcrossConfigs) {
  Server S;
  std::vector<std::string> Configs = standardPipelineNames();
  Configs.push_back("none");
  int64_t Id = 1;
  // The sim cache is keyed on the post-pipeline digest, not the config
  // name: two configs that produce the same post-module share one entry
  // (e.g. "none" and "noop"). Track seen digests to predict hits.
  std::set<std::string> SeenDigests;
  for (const std::string &Config : Configs) {
    JsonWriter W;
    W.beginObject();
    W.key("id");
    W.number(Id++);
    W.key("op");
    W.string("simulate");
    W.key("source");
    W.string(TinyKernel);
    W.key("pipeline");
    W.string(Config);
    W.key("warps");
    W.numberUnsigned(2);
    W.endObject();
    const std::string Req = W.take();

    const std::string Cold = S.handle(Req);
    const std::string Warm = S.handle(Req);
    const std::string Digest = field(Cold, "post_digest");
    const bool ExpectHit = SeenDigests.count(Digest) > 0;
    SeenDigests.insert(Digest);
    EXPECT_EQ(field(Cold, "cached"), ExpectHit ? "true" : "false")
        << Config << ": " << Cold;
    EXPECT_EQ(field(Warm, "cached"), "true") << Config << ": " << Warm;
    for (const char *Key : {"post_digest", "trace_digest", "checksum",
                            "cycles", "issue_slots", "status"})
      EXPECT_EQ(field(Cold, Key), field(Warm, Key)) << Config << "/" << Key;
  }
}

/// Different scheduler policies must land in different simulate-cache
/// entries (the policy is a launch axis), while re-sending one policy
/// hits its own entry.
TEST(ServeCacheTest, PolicyIsALaunchAxis) {
  Server S;
  std::vector<std::string> Digests;
  int64_t Id = 1;
  for (const char *Policy :
       {"max-convergence", "min-pc", "round-robin"}) {
    JsonWriter W;
    W.beginObject();
    W.key("id");
    W.number(Id++);
    W.key("op");
    W.string("simulate");
    W.key("source");
    W.string(TinyKernel);
    W.key("pipeline");
    W.string("sr");
    W.key("policy");
    W.string(Policy);
    W.key("warps");
    W.numberUnsigned(2);
    W.endObject();
    const std::string Req = W.take();
    const std::string Cold = S.handle(Req);
    EXPECT_EQ(field(Cold, "cached"), "false") << Policy;
    const std::string Warm = S.handle(Req);
    EXPECT_EQ(field(Warm, "cached"), "true") << Policy;
    EXPECT_EQ(field(Cold, "trace_digest"), field(Warm, "trace_digest"));
    Digests.push_back(field(Cold, "trace_digest"));
  }
  // All three policies answered (their digests need not all differ, but
  // each got a cold run — the cache never served one policy another's
  // schedule).
  const StatsSnapshot Stats = S.statsSnapshot();
  EXPECT_EQ(Stats.Sim.Misses, 3u);
  EXPECT_EQ(Stats.Sim.Hits, 3u);
}

/// Cross-oracle: the daemon's cached digest equals a direct in-process
/// pipeline + runGrid of the same source — the cache layer adds nothing
/// and loses nothing.
TEST(ServeCacheTest, ServeDigestMatchesDirectSimulation) {
  Server S;
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(int64_t{1});
  W.key("op");
  W.string("simulate");
  W.key("source");
  W.string(TinyKernel);
  W.key("pipeline");
  W.string("sr");
  W.key("warps");
  W.numberUnsigned(2);
  W.endObject();
  const std::string Resp = S.handle(W.take());

  ParseResult P = parseModule(TinyKernel);
  ASSERT_TRUE(P.ok());
  ASSERT_TRUE(
      driver::runConfiguredPipeline(*P.M, "sr").has_value());
  LaunchConfig Config;
  Config.CollectTraceDigest = true;
  const GridResult G =
      runGrid(*P.M, P.M->functionByName("k"), Config, 2);
  ASSERT_TRUE(G.Ok);
  EXPECT_EQ(field(Resp, "trace_digest"), jsonHex64(G.TraceDigest));
  EXPECT_EQ(field(Resp, "checksum"), jsonHex64(G.CombinedChecksum));
}

} // namespace
