//===- ServeProtocolTest.cpp - serve protocol golden tests --------------------===//
///
/// \file
/// The serve protocol is a public interface: requests must parse exactly
/// as documented (docs/SERVE.md) and responses must render byte-for-byte
/// deterministically, because clients and the CI smoke scripts match on
/// them. These tests pin both directions — parseRequest field handling
/// and the renderers' golden output — plus a full scripted Server.handle
/// session.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/Json.h"
#include "transform/Pipeline.h"

#include "gtest/gtest.h"

using namespace simtsr;
using namespace simtsr::serve;

namespace {

/// A minimal valid kernel used across the serve tests.
const char *TinyKernel = R"(memory 64

func @k(0) {
entry:
  %0 = tid
  %1 = randrange 0, 10
  %2 = cmplt %1, 5
  br %2, a, b
a:
  %3 = add %0, %1
  jmp b
b:
  store %0, %1
  ret
}
)";

TEST(ServeProtocolTest, ParsesCompileRequest) {
  const RequestParse P = parseRequest(
      R"({"id":7,"op":"compile","source":"x","pipeline":"sr","want_module":true})");
  ASSERT_TRUE(P.ok()) << P.Error << ": " << P.Detail;
  EXPECT_EQ(P.R.Id, 7);
  EXPECT_EQ(P.R.Op, RequestOp::Compile);
  EXPECT_EQ(P.R.Source, "x");
  EXPECT_EQ(P.R.Pipeline, "sr");
  EXPECT_TRUE(P.R.WantModule);
  EXPECT_FALSE(P.R.WantRemarks);
}

TEST(ServeProtocolTest, DefaultsPipelinePdomExceptLint) {
  const RequestParse C =
      parseRequest(R"({"id":1,"op":"compile","source":"x"})");
  ASSERT_TRUE(C.ok());
  EXPECT_EQ(C.R.Pipeline, "pdom");
  const RequestParse L = parseRequest(R"({"id":1,"op":"lint","source":"x"})");
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(L.R.Pipeline, "none");
}

TEST(ServeProtocolTest, ParsesSimulateLaunchAxes) {
  const RequestParse P = parseRequest(
      R"({"id":3,"op":"simulate","source":"x","warps":4,"warp_size":16,)"
      R"("seed":99,"policy":"min-pc","args":[1,-2,3],"kernel":"main"})");
  ASSERT_TRUE(P.ok()) << P.Error << ": " << P.Detail;
  EXPECT_EQ(P.R.Warps, 4u);
  EXPECT_EQ(P.R.WarpSize, 16u);
  EXPECT_EQ(P.R.Seed, 99u);
  EXPECT_EQ(P.R.Policy, SchedulerPolicy::MinPC);
  EXPECT_EQ(P.R.Args, (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(P.R.Kernel, "main");
}

TEST(ServeProtocolTest, ParsesModuleKeyReference) {
  const uint64_t Key = 0xdeadbeefcafe1234ull;
  const RequestParse P = parseRequest(
      R"({"id":1,"op":"simulate","module":")" + jsonHex64(Key) + R"("})");
  ASSERT_TRUE(P.ok()) << P.Error << ": " << P.Detail;
  EXPECT_TRUE(P.R.HasModuleKey);
  EXPECT_EQ(P.R.ModuleKey, Key);
}

TEST(ServeProtocolTest, RejectsMissingId) {
  const RequestParse P = parseRequest(R"({"op":"stats"})");
  EXPECT_EQ(P.Error, "bad_request");
  EXPECT_EQ(P.Detail, "missing \"id\" field");
}

TEST(ServeProtocolTest, RejectsUnknownOp) {
  const RequestParse P = parseRequest(R"({"id":1,"op":"transmogrify"})");
  EXPECT_EQ(P.Error, "bad_request");
  EXPECT_EQ(P.Detail, "unknown op 'transmogrify'");
  EXPECT_TRUE(P.R.HasId); // Still correlated.
}

TEST(ServeProtocolTest, RejectsUnknownField) {
  // Strict by design: a typo'd launch axis must not silently change what
  // gets simulated (and cached).
  const RequestParse P = parseRequest(
      R"({"id":1,"op":"compile","source":"x","warp_sise":16})");
  EXPECT_EQ(P.Error, "bad_request");
  EXPECT_EQ(P.Detail, "unknown field \"warp_sise\"");
}

TEST(ServeProtocolTest, RejectsUnknownPipeline) {
  const RequestParse P = parseRequest(
      R"({"id":1,"op":"compile","source":"x","pipeline":"srr"})");
  // Structured rejection: its own error code, and the detail enumerates
  // the entire catalog so clients can self-correct.
  EXPECT_EQ(P.Error, "unknown_pipeline");
  EXPECT_NE(P.Detail.find("unknown pipeline 'srr'"), std::string::npos);
  EXPECT_NE(P.Detail.find("none"), std::string::npos);
  for (const std::string &Name : standardPipelineNames())
    EXPECT_NE(P.Detail.find(Name), std::string::npos) << Name;
}

TEST(ServeProtocolTest, SimulateNeedsExactlyOneModuleSource) {
  const RequestParse Neither =
      parseRequest(R"({"id":1,"op":"simulate"})");
  EXPECT_EQ(Neither.Error, "bad_request");
  const RequestParse Both = parseRequest(
      R"({"id":1,"op":"simulate","source":"x","module":"0x0000000000000001"})");
  EXPECT_EQ(Both.Error, "bad_request");
  EXPECT_EQ(Both.Detail,
            "simulate needs exactly one of \"source\" and \"module\"");
}

TEST(ServeProtocolTest, MalformedJsonReportsOffset) {
  const RequestParse P = parseRequest(R"({"id":1,)");
  EXPECT_EQ(P.Error, "parse_error");
  EXPECT_NE(P.Detail.find("offset"), std::string::npos) << P.Detail;
}

TEST(ServeProtocolTest, ErrorResponseGolden) {
  Request R;
  R.HasId = true;
  R.Id = 42;
  R.Op = RequestOp::Compile;
  EXPECT_EQ(renderErrorResponse(R, "queue_full", "retry later"),
            R"({"id":42,"ok":false,"op":"compile","error":"queue_full",)"
            R"("detail":"retry later"})");
}

TEST(ServeProtocolTest, ShutdownResponseGolden) {
  Request R;
  R.HasId = true;
  R.Id = 9;
  R.Op = RequestOp::Shutdown;
  EXPECT_EQ(renderShutdownResponse(R, 17),
            R"({"id":9,"ok":true,"op":"shutdown","served":17})");
}

TEST(ServeProtocolTest, StatsResponseGolden) {
  Request R;
  R.HasId = true;
  R.Id = 1;
  R.Op = RequestOp::Stats;
  StatsSnapshot S;
  S.Compile = {3, 5, 2, 1};
  S.Sim = {0, 4, 4, 0};
  S.Disk.Hits = 1;
  S.Disk.Misses = 6;
  S.Disk.Writes = 7;
  S.Disk.WriteErrors = 1;
  S.Disk.Quarantined = 1;
  S.Disk.Degraded = true;
  S.Requests = 12;
  S.Rejected = 2;
  S.Timeouts = 1;
  S.QueueDepth = 1;
  S.QueueLimit = 64;
  S.P50Micros = 10;
  S.P90Micros = 20;
  S.P99Micros = 30;
  EXPECT_EQ(
      renderStatsResponse(R, S),
      R"({"id":1,"ok":true,"op":"stats","schema":"simtsr-serve-v2",)"
      R"("requests":12,"rejected":2,"queue_depth":1,"queue_limit":64,)"
      R"("timeouts":1,"degraded":true,)"
      R"("compile_cache":{"hits":3,"misses":5,"entries":2,"evictions":1},)"
      R"("sim_cache":{"hits":0,"misses":4,"entries":4,"evictions":0},)"
      R"("disk_cache":{"hits":1,"misses":6,"writes":7,"write_errors":1,)"
      R"("quarantined":1},)"
      R"("latency_us":{"p50":10,"p90":20,"p99":30}})");
}

/// End-to-end: a scripted session against a real Server. The compile
/// response's deterministic fields are pinned (digests come from the
/// response itself so the golden stays host-independent).
TEST(ServeProtocolTest, ScriptedSessionRoundTrip) {
  Server S;
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(int64_t{1});
  W.key("op");
  W.string("compile");
  W.key("source");
  W.string(TinyKernel);
  W.key("pipeline");
  W.string("sr");
  W.endObject();
  const std::string CompileReq = W.take();

  const std::string Cold = S.handle(CompileReq);
  const std::string Warm = S.handle(CompileReq);

  const JsonParseResult ColdJ = parseJson(Cold);
  const JsonParseResult WarmJ = parseJson(Warm);
  ASSERT_TRUE(ColdJ.ok()) << Cold;
  ASSERT_TRUE(WarmJ.ok()) << Warm;
  EXPECT_TRUE(ColdJ.Value.field("ok")->asBool());
  EXPECT_FALSE(ColdJ.Value.field("cached")->asBool());
  EXPECT_TRUE(WarmJ.Value.field("cached")->asBool());
  EXPECT_EQ(ColdJ.Value.field("kernel")->asString(), "k");
  // Identical apart from the cache marker.
  EXPECT_EQ(ColdJ.Value.field("module")->asString(),
            WarmJ.Value.field("module")->asString());
  EXPECT_EQ(ColdJ.Value.field("post_digest")->asString(),
            WarmJ.Value.field("post_digest")->asString());

  // Simulate by module key instead of source.
  const std::string SimReq =
      R"({"id":2,"op":"simulate","module":")" +
      ColdJ.Value.field("module")->asString() + R"(","warps":2})";
  const std::string Sim = S.handle(SimReq);
  const JsonParseResult SimJ = parseJson(Sim);
  ASSERT_TRUE(SimJ.ok()) << Sim;
  EXPECT_TRUE(SimJ.Value.field("ok")->asBool()) << Sim;
  EXPECT_TRUE(SimJ.Value.field("compile_cached")->asBool());
  EXPECT_EQ(SimJ.Value.field("status")->asString(), "finished");
  EXPECT_EQ(SimJ.Value.field("warps")->asInt(), 2);

  const std::string Stats = S.handle(R"({"id":3,"op":"stats"})");
  const JsonParseResult StatsJ = parseJson(Stats);
  ASSERT_TRUE(StatsJ.ok()) << Stats;
  const JsonValue *CC = StatsJ.Value.field("compile_cache");
  ASSERT_NE(CC, nullptr);
  EXPECT_GE(CC->field("hits")->asInt(), 2); // Warm compile + sim-by-key.
  EXPECT_EQ(StatsJ.Value.field("requests")->asInt(), 4);
}

/// A kernel whose only defect is a leaked membership — the simplest
/// repairable input for the fix path.
const char *LeakyKernel = R"(memory 64

func @k(0) {
entry:
  joinbar b1
  %0 = tid
  ret
}
)";

TEST(ServeProtocolTest, LintFixRepairsAndStaysByteCompatible) {
  Server S;
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(int64_t{1});
  W.key("op");
  W.string("lint");
  W.key("source");
  W.string(LeakyKernel);
  W.endObject();
  const std::string Plain = S.handle(W.take());
  const JsonParseResult PlainJ = parseJson(Plain);
  ASSERT_TRUE(PlainJ.ok()) << Plain;
  EXPECT_TRUE(PlainJ.Value.field("ok")->asBool());
  EXPECT_EQ(PlainJ.Value.field("errors")->asInt(), 1);
  // Without "fix": true the response carries no fix fields at all —
  // byte-compatible with pre-fix clients.
  EXPECT_EQ(PlainJ.Value.field("fix_status"), nullptr);
  EXPECT_EQ(PlainJ.Value.field("repaired_source"), nullptr);

  JsonWriter WF;
  WF.beginObject();
  WF.key("id");
  WF.number(int64_t{2});
  WF.key("op");
  WF.string("lint");
  WF.key("source");
  WF.string(LeakyKernel);
  WF.key("fix");
  WF.boolean(true);
  WF.endObject();
  const std::string Fixed = S.handle(WF.take());
  const JsonParseResult FixedJ = parseJson(Fixed);
  ASSERT_TRUE(FixedJ.ok()) << Fixed;
  EXPECT_TRUE(FixedJ.Value.field("ok")->asBool());
  EXPECT_EQ(FixedJ.Value.field("fix_status")->asString(), "repaired");
  EXPECT_EQ(FixedJ.Value.field("fix_certified")->asString(), "static");
  ASSERT_NE(FixedJ.Value.field("fix_edits"), nullptr);
  const std::string Repaired =
      FixedJ.Value.field("repaired_source")->asString();
  EXPECT_FALSE(Repaired.empty());

  // The repaired source must re-lint clean through the same verb.
  JsonWriter WR;
  WR.beginObject();
  WR.key("id");
  WR.number(int64_t{3});
  WR.key("op");
  WR.string("lint");
  WR.key("source");
  WR.string(Repaired);
  WR.key("fix");
  WR.boolean(true);
  WR.endObject();
  const std::string Again = S.handle(WR.take());
  const JsonParseResult AgainJ = parseJson(Again);
  ASSERT_TRUE(AgainJ.ok()) << Again;
  EXPECT_EQ(AgainJ.Value.field("errors")->asInt(), 0);
  EXPECT_EQ(AgainJ.Value.field("fix_status")->asString(), "clean");
  // Fix is idempotent: a clean module's repaired source is itself.
  EXPECT_EQ(AgainJ.Value.field("repaired_source")->asString(), Repaired);
}

} // namespace
