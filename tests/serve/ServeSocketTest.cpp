//===- ServeSocketTest.cpp - poll-loop socket serving ------------------------===//
///
/// \file
/// The concurrent socket front end, tested over real AF_UNIX sockets: two
/// clients multiplexed through one poll loop (the old accept loop served
/// them strictly one at a time), graceful drain on SIGTERM and on a
/// shutdown request, late requests answered with "shutting_down", and
/// per-request deadlines answered with "timeout" instead of a hang. The
/// `stall` fault class makes in-flight work observable deterministically.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <csignal>
#include <filesystem>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtsr;
using namespace simtsr::serve;

namespace {

const char *TinyKernel = R"(memory 64

func @k(0) {
entry:
  %0 = tid
  store %0, %0
  ret
}
)";

std::string field(const std::string &Response, const std::string &Key) {
  const JsonParseResult J = parseJson(Response);
  if (!J.ok() || !J.Value.isObject())
    return "<unparseable>";
  const JsonValue *V = J.Value.field(Key);
  if (!V)
    return "<missing>";
  if (V->isString())
    return V->asString();
  if (V->isBool())
    return V->asBool() ? "true" : "false";
  if (V->isIntegral())
    return std::to_string(V->asInt());
  return "<other>";
}

std::string compileReq(int64_t Id) {
  JsonWriter W;
  W.beginObject();
  W.key("id");
  W.number(Id);
  W.key("op");
  W.string("compile");
  W.key("source");
  W.string(TinyKernel);
  W.endObject();
  return W.take();
}

struct ScopedFaults {
  explicit ScopedFaults(const std::string &Spec) {
    std::string Error;
    EXPECT_TRUE(FaultInjector::parse(Spec, FI, Error)) << Error;
    Prev = FaultInjector::install(&FI);
  }
  ~ScopedFaults() { FaultInjector::install(Prev); }
  FaultInjector FI;
  FaultInjector *Prev = nullptr;
};

/// Hermetic base: a disarmed injector is installed for every test, so a
/// SIMTSR_FAULTS environment (the CI serve-faults job exports one) cannot
/// leak into tests that assert clean-I/O behavior. Fault tests install
/// their own armed injector on top.
struct ServeSocketTest : ::testing::Test {
  ScopedFaults Hermetic{""};
};

struct TempDir {
  TempDir() {
    char Buf[] = "/tmp/simtsr-sock-XXXXXX";
    Path = ::mkdtemp(Buf);
    EXPECT_FALSE(Path.empty());
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string Path;
};

/// Blocking test client with a receive timeout so a server bug fails the
/// test instead of hanging ctest.
struct Client {
  ~Client() {
    if (FD >= 0)
      ::close(FD);
  }

  bool connectTo(const std::string &Path, int Attempts = 500) {
    FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (FD < 0)
      return false;
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::copy(Path.begin(), Path.end(), Addr.sun_path);
    for (int I = 0; I < Attempts; ++I) {
      if (::connect(FD, reinterpret_cast<const sockaddr *>(&Addr),
                    sizeof(Addr)) == 0) {
        timeval TV{10, 0};
        ::setsockopt(FD, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  void send(const std::string &Bytes) {
    size_t Done = 0;
    while (Done < Bytes.size()) {
      const ssize_t W = ::send(FD, Bytes.data() + Done, Bytes.size() - Done,
                               MSG_NOSIGNAL);
      if (W <= 0)
        break;
      Done += static_cast<size_t>(W);
    }
  }

  void sendLine(const std::string &Line) { send(Line + "\n"); }

  /// Reads one newline-terminated line; empty on timeout or EOF.
  std::string readLine() {
    std::string Line;
    char C;
    while (true) {
      const ssize_t N = ::recv(FD, &C, 1, 0);
      if (N <= 0)
        return "";
      if (C == '\n')
        return Line;
      Line += C;
    }
  }

  bool atEof() {
    char C;
    return ::recv(FD, &C, 1, 0) == 0;
  }

  int FD = -1;
};

struct ServerThread {
  explicit ServerThread(ServerOptions Opts = {})
      : S(Opts), T([this] { Result = S.serveUnixSocket(Path()); }) {}
  ~ServerThread() {
    if (T.joinable()) {
      // Belt and braces: a test that bailed early still shuts the server
      // down cleanly (if it already exited, the connect simply fails).
      Client C;
      if (C.connectTo(Path(), 1))
        C.sendLine(R"({"id":0,"op":"shutdown"})");
      T.join();
    }
  }
  std::string Path() const { return Dir.Path + "/serve.sock"; }
  void join() { T.join(); }

  TempDir Dir;
  Server S;
  int Result = -1;
  std::thread T;
};

TEST_F(ServeSocketTest, TwoClientsAreMultiplexed) {
  ServerThread Srv;
  Client A, B;
  ASSERT_TRUE(A.connectTo(Srv.Path()));
  ASSERT_TRUE(B.connectTo(Srv.Path()));

  // A sends half a request and stalls. The old one-connection-at-a-time
  // loop would now ignore B until A disconnected; the poll loop must
  // answer B immediately.
  const std::string AReq = compileReq(1);
  A.send(AReq.substr(0, AReq.size() / 2));
  B.sendLine(compileReq(2));
  const std::string BResp = B.readLine();
  EXPECT_EQ(field(BResp, "id"), "2");
  EXPECT_EQ(field(BResp, "ok"), "true");

  // A completes its line and still gets its answer.
  A.send(AReq.substr(AReq.size() / 2) + "\n");
  const std::string AResp = A.readLine();
  EXPECT_EQ(field(AResp, "id"), "1");
  EXPECT_EQ(field(AResp, "ok"), "true");

  // Interleaved responses went to the right sockets, not just any socket.
  A.sendLine(R"({"id":11,"op":"stats"})");
  B.sendLine(R"({"id":12,"op":"stats"})");
  EXPECT_EQ(field(A.readLine(), "id"), "11");
  EXPECT_EQ(field(B.readLine(), "id"), "12");

  A.sendLine(R"({"id":99,"op":"shutdown"})");
  EXPECT_EQ(field(A.readLine(), "op"), "shutdown");
  Srv.join();
  EXPECT_EQ(Srv.Result, 0);
}

TEST_F(ServeSocketTest, ShutdownRequestDrainsAndAnswers) {
  ScopedFaults Faults("stall:300"); // Every data-plane request takes 300ms.
  ServerThread Srv;
  Client C;
  ASSERT_TRUE(C.connectTo(Srv.Path()));

  // One write carrying: a slow compile, the shutdown, and a straggler.
  // The straggler is answered with "shutting_down" immediately; the
  // compile still completes (drain, not abandon); shutdown answers last.
  C.send(compileReq(1) + "\n" + R"({"id":2,"op":"shutdown"})" + "\n" +
         compileReq(3) + "\n");
  std::string ById[4];
  for (int I = 0; I < 3; ++I) {
    const std::string Line = C.readLine();
    ASSERT_FALSE(Line.empty());
    const int Id = std::stoi(field(Line, "id"));
    ASSERT_GE(Id, 1);
    ASSERT_LE(Id, 3);
    ById[Id] = Line;
  }
  EXPECT_EQ(field(ById[1], "ok"), "true"); // Drained, not dropped.
  EXPECT_EQ(field(ById[1], "op"), "compile");
  EXPECT_EQ(field(ById[2], "op"), "shutdown");
  EXPECT_EQ(field(ById[3], "error"), "shutting_down");
  EXPECT_TRUE(C.atEof()); // Server closed the connection after the drain.
  Srv.join();
  EXPECT_EQ(Srv.Result, 0);
}

TEST_F(ServeSocketTest, SigtermDrainsInFlightWork) {
  ScopedFaults Faults("stall:300");
  ServerThread Srv;
  Client C;
  ASSERT_TRUE(C.connectTo(Srv.Path()));

  C.sendLine(compileReq(1));
  // The inline stats response proves the loop is live (and the signal
  // handlers installed) with the compile still in flight.
  C.sendLine(R"({"id":2,"op":"stats"})");
  const std::string Stats = C.readLine();
  EXPECT_EQ(field(Stats, "id"), "2");

  ::raise(SIGTERM);
  const std::string Resp = C.readLine();
  EXPECT_EQ(field(Resp, "id"), "1"); // In-flight work was drained.
  EXPECT_EQ(field(Resp, "ok"), "true");
  EXPECT_TRUE(C.atEof());
  Srv.join();
  EXPECT_EQ(Srv.Result, 0);
}

TEST_F(ServeSocketTest, DeadlineAnswersTimeoutNotAHang) {
  ScopedFaults Faults("stall:2000");
  ServerOptions Opts;
  Opts.DeadlineMillis = 100;
  ServerThread Srv(Opts);
  Client C;
  ASSERT_TRUE(C.connectTo(Srv.Path()));

  C.sendLine(compileReq(1));
  const std::string Resp = C.readLine();
  EXPECT_EQ(field(Resp, "id"), "1");
  EXPECT_EQ(field(Resp, "ok"), "false");
  EXPECT_EQ(field(Resp, "error"), "timeout");

  C.sendLine(R"({"id":2,"op":"stats"})");
  EXPECT_EQ(field(C.readLine(), "timeouts"), "1");

  // Shutdown still drains the abandoned worker before exiting.
  C.sendLine(R"({"id":3,"op":"shutdown"})");
  EXPECT_EQ(field(C.readLine(), "op"), "shutdown");
  Srv.join();
  EXPECT_EQ(Srv.Result, 0);
}

TEST_F(ServeSocketTest, PeerDisconnectMidRequestIsSurvived) {
  ScopedFaults Faults("stall:200");
  ServerThread Srv;
  {
    Client C;
    ASSERT_TRUE(C.connectTo(Srv.Path()));
    C.sendLine(compileReq(1));
    // Vanish with the response still being computed.
  }
  // The server must shrug that off and keep serving others.
  Client D;
  ASSERT_TRUE(D.connectTo(Srv.Path()));
  D.sendLine(R"({"id":2,"op":"stats"})");
  EXPECT_EQ(field(D.readLine(), "id"), "2");
  D.sendLine(R"({"id":3,"op":"shutdown"})");
  EXPECT_EQ(field(D.readLine(), "op"), "shutdown");
  Srv.join();
  EXPECT_EQ(Srv.Result, 0);
}

TEST_F(ServeSocketTest, StaleSocketFileIsReplaced) {
  TempDir Dir;
  const std::string Path = Dir.Path + "/serve.sock";
  // A previous daemon that died without cleanup leaves the file behind.
  const int Old = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::copy(Path.begin(), Path.end(), Addr.sun_path);
  ASSERT_EQ(::bind(Old, reinterpret_cast<const sockaddr *>(&Addr),
                   sizeof(Addr)),
            0);
  ::close(Old);
  ASSERT_TRUE(std::filesystem::exists(Path));

  Server S;
  std::thread T([&] { S.serveUnixSocket(Path); });
  Client C;
  ASSERT_TRUE(C.connectTo(Path));
  C.sendLine(R"({"id":1,"op":"shutdown"})");
  EXPECT_EQ(field(C.readLine(), "op"), "shutdown");
  T.join();
  // Clean exit removes the socket file again.
  EXPECT_FALSE(std::filesystem::exists(Path));
}

} // namespace
