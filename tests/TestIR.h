//===- TestIR.h - Shared IR fixtures for tests -----------------*- C++ -*-===//
///
/// \file
/// Common CFG shapes used across the analysis and transform tests,
/// including the Listing 1 / Figure 4 loop from the paper, plus a random
/// CFG generator for property tests.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TESTS_TESTIR_H
#define SIMTSR_TESTS_TESTIR_H

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/Rng.h"

#include <memory>

namespace simtsr {
namespace testir {

/// Listing 1 from the paper, shaped like Figure 4's CFG:
///
///   bb0: predict bb3; jmp bb1            (region start)
///   bb1: prolog; jmp bb2
///   bb2: c = divergent; br c, bb3, bb4
///   bb3: expensive; jmp bb4              (user reconvergence point L1)
///   bb4: epilog; br again, bb1, bb5
///   bb5: ret
struct Listing1 {
  std::unique_ptr<Module> M;
  Function *F;
  BasicBlock *BB0, *BB1, *BB2, *BB3, *BB4, *BB5;

  /// \p WithBarriers adds the user-level Join/Wait pair the SR pass starts
  /// from (Figure 4(a)): join b0 in bb0, wait b0 at bb3 entry.
  explicit Listing1(bool WithBarriers = false) {
    M = std::make_unique<Module>();
    F = M->createFunction("listing1", 0);
    IRBuilder B(F);
    BB0 = B.startBlock("bb0");
    BB1 = F->createBlock("bb1");
    BB2 = F->createBlock("bb2");
    BB3 = F->createBlock("bb3");
    BB4 = F->createBlock("bb4");
    BB5 = F->createBlock("bb5");

    B.setInsertBlock(BB0);
    B.predict(BB3);
    if (WithBarriers)
      B.joinBarrier(0);
    B.jmp(BB1);

    B.setInsertBlock(BB1);
    unsigned P = B.add(Operand::imm(1), Operand::imm(2)); // prolog
    (void)P;
    B.jmp(BB2);

    B.setInsertBlock(BB2);
    unsigned R = B.randRange(Operand::imm(0), Operand::imm(100));
    unsigned C = B.cmpLT(Operand::reg(R), Operand::imm(30));
    B.br(Operand::reg(C), BB3, BB4);

    B.setInsertBlock(BB3);
    if (WithBarriers)
      B.waitBarrier(0);
    unsigned E = B.mul(Operand::imm(3), Operand::imm(4)); // expensive
    (void)E;
    B.jmp(BB4);

    B.setInsertBlock(BB4);
    unsigned Again = B.randRange(Operand::imm(0), Operand::imm(2));
    B.br(Operand::reg(Again), BB1, BB5);

    B.setInsertBlock(BB5);
    B.ret();

    F->recomputePreds();
  }
};

/// Generates a random, always-terminated CFG for property tests: block 0 is
/// the entry; each block ends in ret / jmp / br with random targets. Some
/// blocks may be unreachable. Every block also carries one arithmetic
/// instruction so it is non-empty.
inline std::unique_ptr<Module> randomCfg(uint64_t Seed, unsigned NumBlocks) {
  Rng R(Seed);
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("random", 1);
  std::vector<BasicBlock *> Blocks;
  for (unsigned I = 0; I < NumBlocks; ++I)
    Blocks.push_back(F->createBlock("b" + std::to_string(I)));
  IRBuilder B(F);
  for (unsigned I = 0; I < NumBlocks; ++I) {
    B.setInsertBlock(Blocks[I]);
    unsigned V = B.add(Operand::reg(0), Operand::imm(static_cast<int64_t>(I)));
    uint64_t Kind = R.nextBelow(10);
    if (Kind < 2 || I + 1 == NumBlocks) {
      B.ret();
    } else if (Kind < 5) {
      B.jmp(Blocks[R.nextBelow(NumBlocks)]);
    } else {
      BasicBlock *T = Blocks[R.nextBelow(NumBlocks)];
      BasicBlock *E = Blocks[R.nextBelow(NumBlocks)];
      B.br(Operand::reg(V), T, E);
    }
  }
  F->recomputePreds();
  return M;
}

} // namespace testir
} // namespace simtsr

#endif // SIMTSR_TESTS_TESTIR_H
