//===- TraceTest.cpp - Trace sink / digest / diff unit tests ------------------===//
//
// Contracts of the tracer building blocks: the digest hashes names (not
// pointers), order matters, the recorder caps storage but never the
// digest, diffTraces finds the first divergent position by value, and the
// Chrome export is well-formed JSON.
//
//===----------------------------------------------------------------------===//

#include "observe/Trace.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace simtsr;
using namespace simtsr::observe;

namespace {

/// Two structurally identical modules: same names, different pointers.
std::unique_ptr<Module> namedModule() {
  auto M = std::make_unique<Module>();
  Function *F = M->createFunction("kernel", 0);
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret();
  F->recomputePreds();
  return M;
}

TraceEvent issueAt(const Module &M, uint32_t Index, uint64_t Lanes,
                   uint32_t Latency) {
  TraceEvent E;
  E.Kind = TraceEventKind::Issue;
  E.F = M.function(0);
  E.BB = M.function(0)->entry();
  E.Index = Index;
  E.Lanes = Lanes;
  E.Latency = Latency;
  return E;
}

TraceEvent barrierEvent(TraceEventKind Kind, uint8_t Id, uint64_t Lanes,
                        uint64_t Released) {
  TraceEvent E;
  E.Kind = Kind;
  E.BarrierId = Id;
  E.Lanes = Lanes;
  E.Released = Released;
  return E;
}

} // namespace

TEST(TraceTest, DigestHashesNamesNotPointers) {
  auto M1 = namedModule();
  auto M2 = namedModule();
  TraceDigester D1, D2;
  D1.onEvent(issueAt(*M1, 0, 0xff, 4));
  D2.onEvent(issueAt(*M2, 0, 0xff, 4));
  EXPECT_EQ(D1.digest(), D2.digest());
}

TEST(TraceTest, DigestSeesEveryDigestedField) {
  auto M = namedModule();
  const TraceEvent Base = issueAt(*M, 0, 0xff, 4);
  TraceDigester Ref;
  Ref.onEvent(Base);
  auto DigestWith = [&](TraceEvent E) {
    TraceDigester D;
    D.onEvent(E);
    return D.digest();
  };
  TraceEvent E = Base;
  E.Index = 1;
  EXPECT_NE(DigestWith(E), Ref.digest());
  E = Base;
  E.Lanes = 0xfe;
  EXPECT_NE(DigestWith(E), Ref.digest());
  E = Base;
  E.Latency = 5;
  EXPECT_NE(DigestWith(E), Ref.digest());
  // Slot and Cycle are implied by event order and must NOT be digested —
  // they differ between a fresh run and a replay that skips setup work.
  E = Base;
  E.Slot = 99;
  E.Cycle = 1234;
  EXPECT_EQ(DigestWith(E), Ref.digest());
}

TEST(TraceTest, DigestIsOrderSensitive) {
  auto M = namedModule();
  TraceDigester AB, BA;
  const TraceEvent A = issueAt(*M, 0, 0xff, 1);
  const TraceEvent B = issueAt(*M, 1, 0xff, 1);
  AB.onEvent(A);
  AB.onEvent(B);
  BA.onEvent(B);
  BA.onEvent(A);
  EXPECT_NE(AB.digest(), BA.digest());
}

TEST(TraceTest, CombineIsOrderSensitiveAndSeedsFromZero) {
  const uint64_t W0 = 0x1111, W1 = 0x2222;
  uint64_t Fwd = combineTraceDigests(combineTraceDigests(0, W0), W1);
  uint64_t Rev = combineTraceDigests(combineTraceDigests(0, W1), W0);
  EXPECT_NE(Fwd, Rev);
  EXPECT_NE(Fwd, 0u);
}

TEST(TraceTest, RecorderCapsEventsButNotDigest) {
  auto M = namedModule();
  TraceRecorder Small(4);
  TraceDigester Full;
  for (uint32_t I = 0; I < 10; ++I) {
    const TraceEvent E = issueAt(*M, I, 0xff, 1);
    Small.onEvent(E);
    Full.onEvent(E);
  }
  EXPECT_EQ(Small.events().size(), 4u);
  EXPECT_TRUE(Small.truncated());
  EXPECT_EQ(Small.digest(), Full.digest());
}

TEST(TraceTest, DiffFindsFirstDivergentPosition) {
  auto M1 = namedModule();
  auto M2 = namedModule();
  std::vector<TraceEvent> A = {issueAt(*M1, 0, 0xff, 1),
                               issueAt(*M1, 1, 0xff, 1),
                               issueAt(*M1, 2, 0xff, 1)};
  std::vector<TraceEvent> B = {issueAt(*M2, 0, 0xff, 1),
                               issueAt(*M2, 1, 0xfe, 1),
                               issueAt(*M2, 2, 0xff, 1)};
  const TraceDivergence D = diffTraces(A, B);
  ASSERT_TRUE(D.Diverged);
  EXPECT_EQ(D.Index, 1u);
  EXPECT_NE(D.A.find("lanes=0x00000000000000ff"), std::string::npos);
  EXPECT_NE(D.B.find("lanes=0x00000000000000fe"), std::string::npos);
}

TEST(TraceTest, DiffComparesAcrossModuleInstancesByName) {
  auto M1 = namedModule();
  auto M2 = namedModule();
  std::vector<TraceEvent> A = {issueAt(*M1, 0, 0xff, 1)};
  std::vector<TraceEvent> B = {issueAt(*M2, 0, 0xff, 1)};
  EXPECT_FALSE(diffTraces(A, B).Diverged);
}

TEST(TraceTest, DiffReportsLengthMismatch) {
  auto M = namedModule();
  std::vector<TraceEvent> A = {issueAt(*M, 0, 0xff, 1),
                               issueAt(*M, 1, 0xff, 1)};
  std::vector<TraceEvent> B = {issueAt(*M, 0, 0xff, 1)};
  const TraceDivergence D = diffTraces(A, B);
  ASSERT_TRUE(D.Diverged);
  EXPECT_EQ(D.Index, 1u);
  EXPECT_EQ(D.B, "<end of trace>");
}

TEST(TraceTest, DiffSeesBarrierFields) {
  std::vector<TraceEvent> A = {
      barrierEvent(TraceEventKind::BarrierJoin, 1, 0xff, 0)};
  std::vector<TraceEvent> B = {
      barrierEvent(TraceEventKind::BarrierJoin, 2, 0xff, 0)};
  EXPECT_TRUE(diffTraces(A, B).Diverged);
  B[0] = barrierEvent(TraceEventKind::BarrierJoin, 1, 0xff, 0);
  EXPECT_FALSE(diffTraces(A, B).Diverged);
  B[0] = barrierEvent(TraceEventKind::BarrierCancel, 1, 0xff, 0);
  EXPECT_TRUE(diffTraces(A, B).Diverged);
}

TEST(TraceTest, ChromeTraceShapesIssueAndBarrierEvents) {
  auto M = namedModule();
  TraceEvent Issue = issueAt(*M, 0, 0xff, 3);
  Issue.Cycle = 10;
  Issue.Slot = 2;
  TraceEvent Join = barrierEvent(TraceEventKind::BarrierJoin, 5, 0xff, 0);
  Join.Cycle = 13;
  std::vector<TraceEvent> Events = {Issue, Join};
  std::vector<std::pair<unsigned, const std::vector<TraceEvent> *>> Warps = {
      {7, &Events}};
  const std::string Json = renderChromeTrace(Warps);
  EXPECT_EQ(Json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos); // Issue: duration
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos); // Barrier: instant
  EXPECT_NE(Json.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":3"), std::string::npos);
  EXPECT_NE(Json.find("kernel/entry"), std::string::npos);
  EXPECT_NE(Json.find("barrier_join"), std::string::npos);
}

TEST(TraceTest, EventKindNamesAreStable) {
  EXPECT_STREQ(getTraceEventKindName(TraceEventKind::Issue), "issue");
  EXPECT_STREQ(getTraceEventKindName(TraceEventKind::BarrierJoin),
               "barrier_join");
  EXPECT_STREQ(getTraceEventKindName(TraceEventKind::BarrierSoftWait),
               "barrier_softwait");
  EXPECT_STREQ(getTraceEventKindName(TraceEventKind::LanesExited),
               "lanes_exited");
}
