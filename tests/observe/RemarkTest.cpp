//===- RemarkTest.cpp - Remark stream unit tests ------------------------------===//
//
// The remark layer's contract: thread-local scoped routing (no stream, no
// cost; nested scopes restore), queryability, and a JSONL serialization
// that round-trips through a strict JSON parser (the CI schema check).
//
//===----------------------------------------------------------------------===//

#include "observe/Remark.h"

#include <gtest/gtest.h>

#include <thread>

using namespace simtsr;
using namespace simtsr::observe;

namespace {

Remark makeRemark(const std::string &Pass, RemarkKind Kind,
                  const std::string &Message) {
  Remark R;
  R.Pass = Pass;
  R.Kind = Kind;
  R.Function = "kernel";
  R.Block = "entry";
  R.Message = Message;
  return R;
}

} // namespace

TEST(RemarkTest, NoScopeMeansDisabledAndDropped) {
  EXPECT_FALSE(remarksEnabled());
  // Emission without a scope must be a harmless no-op.
  emitRemark(makeRemark("sr", RemarkKind::Applied, "dropped"));
}

TEST(RemarkTest, ScopeRoutesAndRestores) {
  RemarkStream Outer;
  RemarkStream Inner;
  {
    RemarkScope OuterScope(&Outer);
    EXPECT_TRUE(remarksEnabled());
    emitRemark(makeRemark("sr", RemarkKind::Applied, "to outer"));
    {
      RemarkScope InnerScope(&Inner);
      emitRemark(makeRemark("sr", RemarkKind::Applied, "to inner"));
    }
    emitRemark(makeRemark("sr", RemarkKind::Skipped, "to outer again"));
    {
      // A null scope silences emission without uninstalling the check.
      RemarkScope Silent(nullptr);
      EXPECT_FALSE(remarksEnabled());
      emitRemark(makeRemark("sr", RemarkKind::Applied, "silenced"));
    }
  }
  EXPECT_FALSE(remarksEnabled());
  EXPECT_EQ(Outer.size(), 2u);
  EXPECT_EQ(Inner.size(), 1u);
  Remark R;
  ASSERT_TRUE(Inner.first("sr", "inner", R));
  EXPECT_EQ(R.Message, "to inner");
}

TEST(RemarkTest, ScopeIsThreadLocal) {
  RemarkStream Main;
  RemarkScope Scope(&Main);
  std::thread Worker([] {
    // The worker thread has no scope of its own.
    EXPECT_FALSE(remarksEnabled());
    emitRemark(makeRemark("sr", RemarkKind::Applied, "from worker"));
  });
  Worker.join();
  EXPECT_EQ(Main.size(), 0u);
}

TEST(RemarkTest, QueriesFilterByPassKindAndMessage) {
  RemarkStream S;
  RemarkScope Scope(&S);
  emitRemark(makeRemark("sr", RemarkKind::Applied, "placed gather at 'bb3'"));
  emitRemark(makeRemark("sr", RemarkKind::Skipped, "label is region start"));
  emitRemark(makeRemark("pdom-sync", RemarkKind::Applied, "join before"));
  EXPECT_EQ(S.count("sr", RemarkKind::Applied), 1u);
  EXPECT_EQ(S.count("sr", RemarkKind::Skipped), 1u);
  EXPECT_EQ(S.count("pdom-sync", RemarkKind::Applied), 1u);
  EXPECT_EQ(S.count("pdom-sync", RemarkKind::Skipped), 0u);
  EXPECT_EQ(S.matching("sr", "gather").size(), 1u);
  EXPECT_EQ(S.matching("sr", "").size(), 2u);
  Remark R;
  EXPECT_TRUE(S.first("", "join", R));
  EXPECT_EQ(R.Pass, "pdom-sync");
  EXPECT_FALSE(S.first("sr", "no such message", R));
}

TEST(RemarkTest, JsonSerializationEscapesAndStructures) {
  Remark R;
  R.Pass = "sr";
  R.Kind = RemarkKind::Downgrade;
  R.Function = "f\"quoted\"";
  R.Block = "bb1";
  R.Message = "line\nbreak";
  R.Args = {{"barrier", "b3"}, {"threshold", "8"}};
  const std::string Json = R.toJson();
  EXPECT_NE(Json.find("\"pass\":\"sr\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\":\"downgrade\""), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(Json.find("\\n"), std::string::npos);
  EXPECT_NE(Json.find("\"barrier\":\"b3\""), std::string::npos);
  // Raw control characters must never survive into the JSON text.
  EXPECT_EQ(Json.find('\n'), std::string::npos);
}

TEST(RemarkTest, JsonlEmitsOneObjectPerLine) {
  RemarkStream S;
  RemarkScope Scope(&S);
  emitRemark("sr", RemarkKind::Applied, "kernel", "bb0", "first");
  emitRemark("sr", RemarkKind::Applied, "kernel", "bb1", "second");
  const std::string Jsonl = S.toJsonl();
  size_t Lines = 0;
  for (char C : Jsonl)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 2u);
  EXPECT_EQ(Jsonl.find("{"), 0u);
}

TEST(RemarkTest, KindNamesAreStable) {
  EXPECT_STREQ(getRemarkKindName(RemarkKind::Applied), "applied");
  EXPECT_STREQ(getRemarkKindName(RemarkKind::Skipped), "skipped");
  EXPECT_STREQ(getRemarkKindName(RemarkKind::Downgrade), "downgrade");
  EXPECT_STREQ(getRemarkKindName(RemarkKind::Conflict), "conflict");
  EXPECT_STREQ(getRemarkKindName(RemarkKind::Analysis), "analysis");
}
