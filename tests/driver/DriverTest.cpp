//===- DriverTest.cpp - shared tool driver facade tests -----------------------===//
///
/// \file
/// The driver facade is the one place flag spellings, input loading and
/// pipeline-config resolution live; every CLI and the serve daemon sit on
/// it. These tests pin the ArgParser mechanics (flags, values, bounds,
/// aliases, --version/--help), the canonical policy spellings, and the
/// InputUnit/loadInputs behavior the tools rely on.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "ir/Printer.h"
#include "observe/Remark.h"

#include "gtest/gtest.h"

#include <vector>

using namespace simtsr;
using namespace simtsr::driver;

namespace {

ArgParser::Result parse(ArgParser &P,
                        std::initializer_list<const char *> Args) {
  std::vector<char *> Argv;
  Argv.push_back(const_cast<char *>("tool"));
  for (const char *A : Args)
    Argv.push_back(const_cast<char *>(A));
  return P.parse(static_cast<int>(Argv.size()), Argv.data());
}

TEST(ArgParserTest, ParsesSharedFlags) {
  ToolConfig C;
  ArgParser P("tool", "[file.sir ...]");
  addPipelineFlags(P, C);
  addPolicyFlag(P, C);
  addWorkloadFlags(P, C);
  addJsonFlag(P, C);
  addLaunchFlags(P, C);
  addFileArgs(P, C);
  ASSERT_EQ(parse(P, {"--pipeline", "sr+ip", "--policy", "min-pc",
                      "--workloads", "--json", "--warps", "16", "--seed",
                      "7", "--scale", "0.5", "a.sir", "b.sir"}),
            ArgParser::Result::Ok);
  EXPECT_EQ(C.Pipeline, "sr+ip");
  EXPECT_EQ(C.Policy, SchedulerPolicy::MinPC);
  EXPECT_TRUE(C.Workloads);
  EXPECT_TRUE(C.Json);
  EXPECT_EQ(C.Warps, 16u);
  EXPECT_EQ(C.Seed, 7u);
  EXPECT_DOUBLE_EQ(C.Scale, 0.5);
  EXPECT_EQ(C.Files, (std::vector<std::string>{"a.sir", "b.sir"}));
}

TEST(ArgParserTest, RejectsUnknownFlagAndBadValues) {
  ToolConfig C;
  ArgParser P("tool");
  addPipelineFlags(P, C);
  addLaunchFlags(P, C);
  EXPECT_EQ(parse(P, {"--frobnicate"}), ArgParser::Result::Error);
  EXPECT_EQ(parse(P, {"--pipeline", "bogus"}), ArgParser::Result::Error);
  EXPECT_EQ(parse(P, {"--warps", "0"}), ArgParser::Result::Error);
  EXPECT_EQ(parse(P, {"--warps", "9999"}), ArgParser::Result::Error);
  EXPECT_EQ(parse(P, {"--warps"}), ArgParser::Result::Error);
  // No positional() registered: stray arguments are errors.
  EXPECT_EQ(parse(P, {"stray.sir"}), ArgParser::Result::Error);
}

TEST(ArgParserTest, VersionAndHelpExit) {
  ToolConfig C;
  ArgParser P("tool");
  addJsonFlag(P, C);
  EXPECT_EQ(parse(P, {"--version"}), ArgParser::Result::Exit);
  EXPECT_EQ(parse(P, {"--help"}), ArgParser::Result::Exit);
}

TEST(ArgParserTest, PipelineAndConfigParseIdentically) {
  // --pipeline is the canonical spelling; --config is its historical
  // alias. Both must land in the same ToolConfig field with the same
  // validation, so scripts written against either keep working.
  for (const char *Spelling : {"--pipeline", "--config"}) {
    ToolConfig C;
    ArgParser P("tool");
    addPipelineFlags(P, C);
    ASSERT_EQ(parse(P, {Spelling, "meld+sr"}), ArgParser::Result::Ok)
        << Spelling;
    EXPECT_EQ(C.Pipeline, "meld+sr") << Spelling;
    // The alias shares the canonical flag's validator too.
    EXPECT_EQ(parse(P, {Spelling, "bogus"}), ArgParser::Result::Error)
        << Spelling;
  }
}

TEST(ArgParserTest, ListPipelinesIsAnExitAction) {
  ToolConfig C;
  ArgParser P("tool");
  addPipelineFlags(P, C);
  EXPECT_EQ(parse(P, {"--list-pipelines"}), ArgParser::Result::Exit);
}

TEST(ArgParserTest, PipelineFlagAcceptsEveryCatalogName) {
  for (const std::string &Name : standardPipelineNames()) {
    ToolConfig C;
    ArgParser P("tool");
    addPipelineFlags(P, C);
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>("tool"));
    Argv.push_back(const_cast<char *>("--pipeline"));
    Argv.push_back(const_cast<char *>(Name.c_str()));
    ASSERT_EQ(P.parse(static_cast<int>(Argv.size()), Argv.data()),
              ArgParser::Result::Ok)
        << Name;
    EXPECT_EQ(C.Pipeline, Name);
  }
}

TEST(ArgParserTest, AliasesResolveToCanonicalFlag) {
  std::string Dir;
  ArgParser P("tool");
  P.str("--repro-dir", "DIR", "where repros go", &Dir);
  P.alias("--out", "--repro-dir");
  ASSERT_EQ(parse(P, {"--out", "/tmp/x"}), ArgParser::Result::Ok);
  EXPECT_EQ(Dir, "/tmp/x");
}

TEST(DriverTest, PolicyNamesRoundTrip) {
  for (SchedulerPolicy P :
       {SchedulerPolicy::MaxConvergence, SchedulerPolicy::MinPC,
        SchedulerPolicy::RoundRobin}) {
    SchedulerPolicy Out;
    ASSERT_TRUE(parsePolicyName(policyName(P), Out)) << policyName(P);
    EXPECT_EQ(Out, P);
  }
  SchedulerPolicy Out;
  EXPECT_TRUE(parsePolicyName("maxconv", Out));
  EXPECT_EQ(Out, SchedulerPolicy::MaxConvergence);
  EXPECT_TRUE(parsePolicyName("rr", Out));
  EXPECT_EQ(Out, SchedulerPolicy::RoundRobin);
  EXPECT_FALSE(parsePolicyName("fastest", Out));
}

TEST(DriverTest, ExpandPipelineSpec) {
  const auto All = expandPipelineSpec("all");
  ASSERT_TRUE(All.has_value());
  EXPECT_EQ(*All, standardPipelineNames());
  const auto One = expandPipelineSpec("sr");
  ASSERT_TRUE(One.has_value());
  EXPECT_EQ(*One, std::vector<std::string>{"sr"});
  const auto None = expandPipelineSpec("none");
  ASSERT_TRUE(None.has_value());
  EXPECT_EQ(*None, std::vector<std::string>{"none"});
  EXPECT_FALSE(expandPipelineSpec("bogus").has_value());
}

TEST(DriverTest, LoadInputsCorpusOrderAndRebuild) {
  ToolConfig C;
  C.Corpus = 3;
  C.StartSeed = 10;
  const InputSet Set = loadInputs(C);
  ASSERT_TRUE(Set.ok());
  ASSERT_EQ(Set.Units.size(), 3u);
  EXPECT_EQ(Set.Units[0].Name, "seed10");
  EXPECT_EQ(Set.Units[2].Name, "seed12");
  for (const InputUnit &U : Set.Units) {
    std::vector<std::string> Errors;
    const std::unique_ptr<Module> M = U.rebuild(&Errors);
    ASSERT_NE(M, nullptr) << U.Name;
    EXPECT_TRUE(Errors.empty());
    // Rebuilding twice gives equal modules (fresh copies, same content).
    EXPECT_EQ(printModule(*M), printModule(*U.rebuild(nullptr)));
  }
}

TEST(DriverTest, LoadInputsReportsMissingFiles) {
  ToolConfig C;
  C.Files = {"/nonexistent/never.sir"};
  const InputSet Set = loadInputs(C);
  EXPECT_FALSE(Set.ok());
  ASSERT_EQ(Set.Errors.size(), 1u);
  EXPECT_NE(Set.Errors[0].find("never.sir"), std::string::npos);
}

TEST(DriverTest, LoadInputsWorkloadUnitsCloneFresh) {
  ToolConfig C;
  C.Workloads = true;
  C.Scale = 0.25;
  const InputSet Set = loadInputs(C);
  ASSERT_TRUE(Set.ok());
  ASSERT_FALSE(Set.Units.empty());
  const InputUnit &U = Set.Units.front();
  EXPECT_EQ(U.From, InputUnit::Origin::Workload);
  const std::unique_ptr<Module> A = U.rebuild(nullptr);
  const std::unique_ptr<Module> B = U.rebuild(nullptr);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(A.get(), B.get());
  EXPECT_EQ(printModule(*A), printModule(*B));
}

TEST(DriverTest, RunConfiguredPipeline) {
  ToolConfig C;
  C.Corpus = 1;
  const InputSet Set = loadInputs(C);
  ASSERT_TRUE(Set.ok());
  std::unique_ptr<Module> M = Set.Units[0].rebuild(nullptr);
  ASSERT_NE(M, nullptr);

  // "none" runs nothing and reports an empty (clean) report.
  const std::string Before = printModule(*M);
  const auto NoneReport = runConfiguredPipeline(*M, "none");
  ASSERT_TRUE(NoneReport.has_value());
  EXPECT_TRUE(NoneReport->clean());
  EXPECT_EQ(printModule(*M), Before);

  EXPECT_FALSE(runConfiguredPipeline(*M, "bogus").has_value());

  // A real config runs and can emit remarks into the supplied stream.
  observe::RemarkStream Remarks;
  std::unique_ptr<Module> M2 = Set.Units[0].rebuild(nullptr);
  const auto SrReport = runConfiguredPipeline(*M2, "sr", 8, &Remarks);
  ASSERT_TRUE(SrReport.has_value());
  EXPECT_NE(printModule(*M2), Before); // The pass stack did something.
}

TEST(DriverTest, BaseNameStripsDirectories) {
  EXPECT_EQ(baseName("a/b/c.sir"), "c.sir");
  EXPECT_EQ(baseName("c.sir"), "c.sir");
  EXPECT_EQ(baseName("/abs/path/x"), "x");
}

TEST(DriverTest, FileRoundTrip) {
  const std::string Path = ::testing::TempDir() + "/driver_file_rt.txt";
  std::string Error;
  ASSERT_TRUE(writeStringToFile(Path, "hello\nserve\n", Error)) << Error;
  std::string Back;
  ASSERT_TRUE(readFileToString(Path, Back, Error)) << Error;
  EXPECT_EQ(Back, "hello\nserve\n");
}

} // namespace
