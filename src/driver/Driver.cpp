//===- Driver.cpp - Shared tool driver facade ---------------------------------===//

#include "driver/Driver.h"

#include "fuzz/KernelGen.h"
#include "ir/Parser.h"
#include "observe/Remark.h"
#include "support/DurableFile.h"
#include "transform/PassStage.h"

#include <fstream>
#include <sstream>

using namespace simtsr;
using namespace simtsr::driver;

const char *simtsr::driver::versionString() { return "0.6.0"; }

const char *simtsr::driver::policyName(SchedulerPolicy P) {
  switch (P) {
  case SchedulerPolicy::MaxConvergence:
    return "max-convergence";
  case SchedulerPolicy::MinPC:
    return "min-pc";
  case SchedulerPolicy::RoundRobin:
    return "round-robin";
  }
  return "unknown";
}

bool simtsr::driver::parsePolicyName(const std::string &Name,
                                     SchedulerPolicy &Out) {
  if (Name == "max-convergence" || Name == "maxconv") {
    Out = SchedulerPolicy::MaxConvergence;
    return true;
  }
  if (Name == "min-pc" || Name == "minpc") {
    Out = SchedulerPolicy::MinPC;
    return true;
  }
  if (Name == "round-robin" || Name == "rr") {
    Out = SchedulerPolicy::RoundRobin;
    return true;
  }
  return false;
}

void simtsr::driver::addPipelineFlags(ArgParser &P, ToolConfig &C) {
  P.custom("--pipeline", "NAME",
           "pipeline config: none, all, or a catalog name "
           "(see --list-pipelines)",
           [&C](const std::string &V) {
             if (V != "none" && V != "all" && !findPipelineDef(V))
               return false;
             C.Pipeline = V;
             return true;
           });
  // One alias, registered once: every tool that takes --pipeline also
  // accepts the historical --config spelling, unlisted in --help.
  P.alias("--config", "--pipeline");
  P.num("--soft-threshold", "N",
        "threshold for the 'soft' config (default 8)", &C.SoftThreshold, 0,
        64);
  P.exitAction("--list-pipelines",
               "print the pipeline catalog and stage vocabulary",
               [] { printPipelineCatalog(stdout); });
}

void simtsr::driver::printPipelineCatalog(std::FILE *To) {
  std::fprintf(To, "pipeline configurations:\n");
  for (const PipelineDef &D : pipelineCatalog()) {
    std::string Stages;
    for (const std::string &S : D.Stages) {
      if (!Stages.empty())
        Stages += ",";
      Stages += S;
    }
    std::fprintf(To, "  %-15s [%s]\n", D.Name.c_str(), Stages.c_str());
    std::fprintf(To, "  %-15s %s%s\n", "", D.Summary.c_str(),
                 D.UsesSoftThreshold ? " (uses --soft-threshold)" : "");
  }
  std::fprintf(To, "stages:\n");
  for (const PassStageDef &S : passStageRegistry())
    std::fprintf(To, "  %-15s %s\n", S.Name.c_str(), S.Summary.c_str());
}

void simtsr::driver::addPolicyFlag(ArgParser &P, ToolConfig &C) {
  P.custom("--policy", "P", "max-convergence | min-pc | round-robin",
           [&C](const std::string &V) {
             return parsePolicyName(V, C.Policy);
           });
}

void simtsr::driver::addProgressFlag(ArgParser &P, ToolConfig &C) {
  P.custom("--progress", "M",
           "forward-progress model: fair | hsa | obe[:slots] | bounded[:K] "
           "(default fair; see docs/PROGRESS.md)",
           [&C](const std::string &V) {
             return parseProgressSpec(V, C.Progress);
           });
}

void simtsr::driver::addWorkloadFlags(ArgParser &P, ToolConfig &C) {
  P.flag("--workloads", "include the Table 2 workload suite",
         &C.Workloads);
  P.dbl("--scale", "S", "workload scale factor in (0, 1]", &C.Scale, 0.0,
        1.0);
}

void simtsr::driver::addCorpusFlags(ArgParser &P, ToolConfig &C) {
  P.uns("--corpus", "N", "include N generated fuzz kernels", &C.Corpus, 0,
        1u << 20);
  P.uns("--start-seed", "N", "first corpus seed (default 0)", &C.StartSeed);
}

void simtsr::driver::addJsonFlag(ArgParser &P, ToolConfig &C) {
  P.flag("--json", "emit machine-readable JSON instead of text", &C.Json);
}

void simtsr::driver::addLaunchFlags(ArgParser &P, ToolConfig &C) {
  P.uns("--warps", "N", "warps per grid", &C.Warps, 1, 4096);
  P.uns("--seed", "N", "launch seed", &C.Seed);
}

void simtsr::driver::addFileArgs(ArgParser &P, ToolConfig &C) {
  P.positional(&C.Files);
}

std::unique_ptr<Module>
InputUnit::rebuild(std::vector<std::string> *Errors) const {
  if (From == Origin::Workload)
    return W->M->clone();
  ParseResult P = parseModule(Text);
  if (!P.ok()) {
    if (Errors)
      for (const std::string &E : P.Errors)
        Errors->push_back(Name + ": " + E);
    return nullptr;
  }
  return std::move(P.M);
}

InputSet simtsr::driver::loadInputs(const ToolConfig &C) {
  InputSet Set;
  for (const std::string &Path : C.Files) {
    InputUnit U;
    U.Name = baseName(Path);
    U.From = InputUnit::Origin::File;
    std::string Error;
    if (!readFileToString(Path, U.Text, Error)) {
      Set.Errors.push_back(Error);
      continue;
    }
    Set.Units.push_back(std::move(U));
  }
  if (C.Workloads) {
    Set.Suite = makeAllWorkloads(C.Scale);
    for (const Workload &W : Set.Suite) {
      InputUnit U;
      U.Name = W.Name;
      U.From = InputUnit::Origin::Workload;
      U.W = &W;
      Set.Units.push_back(std::move(U));
    }
  }
  for (uint64_t S = 0; S < C.Corpus; ++S) {
    GenOptions G;
    G.Seed = C.StartSeed + S;
    InputUnit U;
    U.Name = "seed" + std::to_string(G.Seed);
    U.From = InputUnit::Origin::Corpus;
    U.Text = generateKernelText(G);
    Set.Units.push_back(std::move(U));
  }
  return Set;
}

std::optional<std::vector<std::string>>
simtsr::driver::expandPipelineSpec(const std::string &Spec) {
  if (Spec == "all")
    return standardPipelineNames();
  if (Spec == "none" || findPipelineDef(Spec))
    return std::vector<std::string>{Spec};
  return std::nullopt;
}

std::optional<PipelineReport>
simtsr::driver::runConfiguredPipeline(Module &M, const std::string &Name,
                                      int SoftThreshold,
                                      observe::RemarkStream *Remarks) {
  if (Name == "none")
    return PipelineReport{};
  std::optional<PipelineSpec> Spec = standardPipelineSpec(Name, SoftThreshold);
  if (!Spec)
    return std::nullopt;
  Spec->Params.Remarks = Remarks;
  return runSyncPipeline(M, *Spec);
}

bool simtsr::driver::readFileToString(const std::string &Path,
                                      std::string &Out, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

bool simtsr::driver::writeStringToFile(const std::string &Path,
                                       const std::string &Content,
                                       std::string &Error) {
  // Atomic temp-file + fsync + rename: tool output files are either the
  // old complete version or the new one, even across a crash.
  return durableWriteFile(Path, Content, Error);
}

std::string simtsr::driver::baseName(const std::string &Path) {
  const size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}
