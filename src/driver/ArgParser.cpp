//===- ArgParser.cpp - Shared CLI argument parser -----------------------------===//

#include "driver/ArgParser.h"

#include "driver/Driver.h"

#include <cstdlib>

using namespace simtsr::driver;

ArgParser::ArgParser(std::string Tool, std::string Positional)
    : Tool(std::move(Tool)), Positional(std::move(Positional)) {}

void ArgParser::flag(const std::string &Name, const std::string &Help,
                     bool *Out) {
  Option O;
  O.Name = Name;
  O.Help = Help;
  O.Kind = OptKind::Flag;
  O.FlagOut = Out;
  Options.push_back(std::move(O));
}

void ArgParser::custom(const std::string &Name, const std::string &Metavar,
                       const std::string &Help,
                       std::function<bool(const std::string &)> Parse) {
  Option O;
  O.Name = Name;
  O.Metavar = Metavar;
  O.Help = Help;
  O.Kind = OptKind::Value;
  O.Parse = std::move(Parse);
  Options.push_back(std::move(O));
}

void ArgParser::str(const std::string &Name, const std::string &Metavar,
                    const std::string &Help, std::string *Out) {
  custom(Name, Metavar, Help, [Out](const std::string &V) {
    *Out = V;
    return true;
  });
}

void ArgParser::uns(const std::string &Name, const std::string &Metavar,
                    const std::string &Help, uint64_t *Out, uint64_t Min,
                    uint64_t Max) {
  custom(Name, Metavar, Help, [Out, Min, Max](const std::string &V) {
    char *End = nullptr;
    const unsigned long long Parsed = std::strtoull(V.c_str(), &End, 10);
    if (V.empty() || End == V.c_str() || *End != '\0' || Parsed < Min ||
        Parsed > Max)
      return false;
    *Out = Parsed;
    return true;
  });
}

void ArgParser::num(const std::string &Name, const std::string &Metavar,
                    const std::string &Help, int64_t *Out, int64_t Min,
                    int64_t Max) {
  custom(Name, Metavar, Help, [Out, Min, Max](const std::string &V) {
    char *End = nullptr;
    const long long Parsed = std::strtoll(V.c_str(), &End, 10);
    if (V.empty() || End == V.c_str() || *End != '\0' || Parsed < Min ||
        Parsed > Max)
      return false;
    *Out = Parsed;
    return true;
  });
}

void ArgParser::dbl(const std::string &Name, const std::string &Metavar,
                    const std::string &Help, double *Out, double Min,
                    double Max) {
  custom(Name, Metavar, Help, [Out, Min, Max](const std::string &V) {
    char *End = nullptr;
    const double Parsed = std::strtod(V.c_str(), &End);
    if (V.empty() || End == V.c_str() || *End != '\0' || Parsed <= Min ||
        Parsed > Max)
      return false;
    *Out = Parsed;
    return true;
  });
}

void ArgParser::exitAction(const std::string &Name, const std::string &Help,
                           std::function<void()> Action) {
  Option O;
  O.Name = Name;
  O.Help = Help;
  O.Kind = OptKind::Exit;
  O.Action = std::move(Action);
  Options.push_back(std::move(O));
}

void ArgParser::alias(const std::string &Name, const std::string &Canonical) {
  Aliases.emplace_back(Name, Canonical);
}

void ArgParser::positional(std::vector<std::string> *Out) {
  PositionalOut = Out;
}

ArgParser::Option *ArgParser::find(const std::string &Name) {
  std::string Resolved = Name;
  for (const auto &[Alias, Canonical] : Aliases)
    if (Alias == Name) {
      Resolved = Canonical;
      break;
    }
  for (Option &O : Options)
    if (O.Name == Resolved)
      return &O;
  return nullptr;
}

ArgParser::Result ArgParser::parse(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--version") {
      std::printf("%s (simtsr) %s\n", Tool.c_str(), versionString());
      return Result::Exit;
    }
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return Result::Exit;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      Option *O = find(Arg);
      if (!O) {
        std::fprintf(stderr, "%s: unknown option '%s'\n", Tool.c_str(),
                     Arg.c_str());
        printUsage(stderr);
        return Result::Error;
      }
      if (O->Kind == OptKind::Exit) {
        O->Action();
        return Result::Exit;
      }
      if (O->Kind == OptKind::Flag) {
        *O->FlagOut = true;
        continue;
      }
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: option '%s' requires a value\n",
                     Tool.c_str(), Arg.c_str());
        printUsage(stderr);
        return Result::Error;
      }
      const std::string Value = Argv[++I];
      if (!O->Parse(Value)) {
        std::fprintf(stderr, "%s: invalid value '%s' for option '%s'\n",
                     Tool.c_str(), Value.c_str(), Arg.c_str());
        printUsage(stderr);
        return Result::Error;
      }
      continue;
    }
    if (!PositionalOut) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", Tool.c_str(),
                   Arg.c_str());
      printUsage(stderr);
      return Result::Error;
    }
    PositionalOut->push_back(Arg);
  }
  return Result::Ok;
}

void ArgParser::printUsage(std::FILE *To) const {
  std::fprintf(To, "usage: %s [options]%s%s\n", Tool.c_str(),
               Positional.empty() ? "" : " ", Positional.c_str());
  for (const Option &O : Options) {
    std::string Left = "  " + O.Name;
    if (O.Kind == OptKind::Value)
      Left += " " + O.Metavar;
    std::fprintf(To, "%-26s %s\n", Left.c_str(), O.Help.c_str());
  }
  std::fprintf(To, "%-26s %s\n", "  --version",
               "print the tool and library version");
  std::fprintf(To, "%-26s %s\n", "  --help", "show this help");
}
