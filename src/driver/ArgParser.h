//===- ArgParser.h - Shared CLI argument parser ----------------*- C++ -*-===//
///
/// \file
/// The one argument parser behind every simtsr tool. Before this existed,
/// each of the four CLIs hand-rolled its own strtoul loop and the flag
/// spellings drifted (--out meaning three different things). Tools now
/// declare options against this parser; the canonical cross-tool flags
/// (--pipeline, --policy, --workloads, --json, --version) are registered
/// through the driver::addXxxFlag helpers in Driver.h so their spelling,
/// validation and help text are identical everywhere. --pipeline is the
/// canonical spelling everywhere; --config is its alias, accepted by every
/// tool but unlisted in --help (registered centrally in addPipelineFlags).
///
/// Every tool gets --version (prints "<tool> (simtsr) <version>") and
/// --help for free. Unknown options and malformed values print a one-line
/// error plus the usage text to stderr.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_DRIVER_ARGPARSER_H
#define SIMTSR_DRIVER_ARGPARSER_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace simtsr::driver {

class ArgParser {
public:
  enum class Result {
    Ok,      ///< All arguments consumed; outputs written.
    Error,   ///< Malformed command line; message + usage printed to stderr.
    Exit,    ///< --version or --help handled; caller should exit 0.
  };

  /// \p Tool is the program name for messages ("simtsr-bench"); \p
  /// Positional describes trailing arguments in the usage line (e.g.
  /// "[file.sir ...]"), empty when the tool takes none.
  ArgParser(std::string Tool, std::string Positional = "");

  /// Boolean switch: presence sets \p Out to true.
  void flag(const std::string &Name, const std::string &Help, bool *Out);
  /// String-valued option.
  void str(const std::string &Name, const std::string &Metavar,
           const std::string &Help, std::string *Out);
  /// Unsigned option validated against [Min, Max].
  void uns(const std::string &Name, const std::string &Metavar,
           const std::string &Help, uint64_t *Out, uint64_t Min = 0,
           uint64_t Max = UINT64_MAX);
  /// Signed option validated against [Min, Max].
  void num(const std::string &Name, const std::string &Metavar,
           const std::string &Help, int64_t *Out, int64_t Min, int64_t Max);
  /// Double option validated against (Min, Max].
  void dbl(const std::string &Name, const std::string &Metavar,
           const std::string &Help, double *Out, double Min, double Max);
  /// Option with a custom value parser; \p Parse returns false to reject.
  void custom(const std::string &Name, const std::string &Metavar,
              const std::string &Help,
              std::function<bool(const std::string &)> Parse);
  /// Informational switch in the --version/--help family: when present,
  /// \p Action runs (printing to stdout) and parse() returns Result::Exit.
  void exitAction(const std::string &Name, const std::string &Help,
                  std::function<void()> Action);
  /// Registers \p Name as an alternate spelling of \p Canonical (which
  /// must already be registered). Aliases are accepted but not listed in
  /// the usage text.
  void alias(const std::string &Name, const std::string &Canonical);
  /// Accept non-option arguments into \p Out; without this, positional
  /// arguments are errors.
  void positional(std::vector<std::string> *Out);

  Result parse(int Argc, char **Argv);
  void printUsage(std::FILE *To) const;

  const std::string &toolName() const { return Tool; }

private:
  enum class OptKind { Flag, Value, Exit };
  struct Option {
    std::string Name;
    std::string Metavar;
    std::string Help;
    OptKind Kind;
    bool *FlagOut = nullptr;
    std::function<bool(const std::string &)> Parse;
    std::function<void()> Action;
  };

  Option *find(const std::string &Name);

  std::string Tool;
  std::string Positional;
  std::vector<Option> Options;
  std::vector<std::pair<std::string, std::string>> Aliases;
  std::vector<std::string> *PositionalOut = nullptr;
};

} // namespace simtsr::driver

#endif // SIMTSR_DRIVER_ARGPARSER_H
