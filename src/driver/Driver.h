//===- Driver.h - Shared tool driver facade --------------------*- C++ -*-===//
///
/// \file
/// The public facade every simtsr front end (the four CLIs, the serve
/// daemon, external embedders) builds on. It owns the glue that each tool
/// previously re-implemented:
///
///  - ToolConfig: the cross-tool knobs (pipeline config, scheduler policy,
///    warps/scale/seed, input selection) with one canonical flag spelling
///    each, registered through the addXxxFlags helpers;
///  - input loading: `.sir` files, the Table 2 workload suite and
///    generated fuzz corpora are presented as one uniform InputUnit list,
///    each unit able to rebuild a fresh module per pipeline config
///    (pipelines mutate modules in place);
///  - pipeline running: name -> PipelineSpec resolution ("none", "all"
///    and the stage-list catalog in transform/PassStage.h) plus remark
///    plumbing;
///  - small file IO helpers shared by every tool.
///
/// See docs/SERVE.md for how the daemon maps protocol requests onto this
/// facade and README.md for the canonical flag table.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_DRIVER_DRIVER_H
#define SIMTSR_DRIVER_DRIVER_H

#include "driver/ArgParser.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"
#include "transform/Pipeline.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace simtsr::observe {
class RemarkStream;
} // namespace simtsr::observe

namespace simtsr::driver {

/// The library version every tool's --version reports.
const char *versionString();

/// Canonical scheduler-policy spellings: "max-convergence", "min-pc",
/// "round-robin" (the short forms "maxconv", "minpc", "rr" are accepted).
const char *policyName(SchedulerPolicy P);
bool parsePolicyName(const std::string &Name, SchedulerPolicy &Out);

/// Cross-tool configuration carried by the shared flags.
struct ToolConfig {
  /// --pipeline: "none", "all" or a standard config name.
  std::string Pipeline = "none";
  /// --policy.
  SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence;
  /// --progress: forward-progress model (fair, hsa, obe[:N], bounded[:K]).
  ProgressSpec Progress;
  /// --workloads: include the Table 2 suite in the input set.
  bool Workloads = false;
  /// --json: machine-readable output.
  bool Json = false;
  uint64_t Warps = 2;      ///< --warps
  double Scale = 1.0;      ///< --scale
  uint64_t Seed = 2020;    ///< --seed
  int64_t SoftThreshold = 8; ///< --soft-threshold
  uint64_t Corpus = 0;     ///< --corpus: generated fuzz kernels to load.
  uint64_t StartSeed = 0;  ///< --start-seed: first corpus seed.
  /// Positional `.sir` files.
  std::vector<std::string> Files;
};

/// Registers --pipeline (canonical spelling; --config stays accepted as an
/// unlisted alias), --soft-threshold and --list-pipelines.
void addPipelineFlags(ArgParser &P, ToolConfig &C);
/// Prints the pipeline configuration catalog (name, stage list, summary)
/// plus the stage vocabulary — the one printer behind every tool's
/// --list-pipelines.
void printPipelineCatalog(std::FILE *To);
/// Registers --policy.
void addPolicyFlag(ArgParser &P, ToolConfig &C);
/// Registers --progress (docs/PROGRESS.md has the model semantics).
void addProgressFlag(ArgParser &P, ToolConfig &C);
/// Registers --workloads and --scale.
void addWorkloadFlags(ArgParser &P, ToolConfig &C);
/// Registers --corpus and --start-seed.
void addCorpusFlags(ArgParser &P, ToolConfig &C);
/// Registers --json.
void addJsonFlag(ArgParser &P, ToolConfig &C);
/// Registers --warps and --seed.
void addLaunchFlags(ArgParser &P, ToolConfig &C);
/// Registers positional `.sir` file arguments.
void addFileArgs(ArgParser &P, ToolConfig &C);

/// One loadable compilation unit from files/workloads/corpus.
struct InputUnit {
  enum class Origin { File, Workload, Corpus };

  std::string Name; ///< File basename, workload name, or "seed<N>".
  Origin From = Origin::File;
  /// `.sir` source text (File and Corpus units; empty for workloads,
  /// which rebuild by cloning the suite's module).
  std::string Text;
  /// Workload units: the suite entry (owned by the enclosing InputSet).
  const Workload *W = nullptr;

  /// Builds a fresh module for one pipeline run (pipelines mutate modules
  /// in place, so every config needs its own copy). Returns null and
  /// appends diagnostics to \p Errors on parse failure.
  std::unique_ptr<Module> rebuild(std::vector<std::string> *Errors) const;
};

struct InputSet {
  /// Keeps workload modules alive for the units that reference them.
  std::vector<Workload> Suite;
  std::vector<InputUnit> Units;
  /// File-IO problems discovered while loading (missing files, ...).
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Loads every input the config selects, in deterministic order: files
/// first (command-line order), then the workload suite, then the corpus.
InputSet loadInputs(const ToolConfig &C);

/// Expands \p Spec ("none", "all", or one config name) into the list of
/// configs a tool should run; std::nullopt for unknown names.
std::optional<std::vector<std::string>>
expandPipelineSpec(const std::string &Spec);

/// Runs standard pipeline config \p Name over \p M ("none" runs nothing
/// and reports an empty PipelineReport). Remarks land in \p Remarks when
/// non-null. std::nullopt for unknown config names.
std::optional<PipelineReport>
runConfiguredPipeline(Module &M, const std::string &Name,
                      int SoftThreshold = 8,
                      observe::RemarkStream *Remarks = nullptr);

/// Reads \p Path into \p Out; on failure returns false and sets \p Error.
bool readFileToString(const std::string &Path, std::string &Out,
                      std::string &Error);
/// Writes \p Content to \p Path; on failure returns false and sets
/// \p Error.
bool writeStringToFile(const std::string &Path, const std::string &Content,
                       std::string &Error);
/// \returns the path's final component ("a/b/c.sir" -> "c.sir").
std::string baseName(const std::string &Path);

} // namespace simtsr::driver

#endif // SIMTSR_DRIVER_DRIVER_H
