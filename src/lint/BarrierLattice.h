//===- BarrierLattice.h - Abstract barrier-state lattice -------*- C++ -*-===//
///
/// \file
/// The abstract domain of the convergence-safety analyzer (docs/LINT.md).
///
/// Each of the 16 architectural barrier registers is modelled per thread as
/// a four-state machine:
///
///     Unjoined --join--> Joined --wait--> Waited
///         ^                 |
///         |              cancel
///         +---(realloc)--- Cancelled
///
/// Two abstractions are layered on top:
///
///  * A StateMask is a set of possible current states (4 bits) — the
///    classic may-analysis view, used for diagnostics.
///  * A Relation is a set of (state-at-entry, state-here) pairs (16 bits).
///    Relations compose, which is what makes function summaries work: the
///    callee's entry-to-exit relation is composed onto the caller's state
///    at each call site, and the caller later projects its real entry set
///    through the result. A Relation is strictly richer than the
///    union-meet BitDataflow bitmask: it can distinguish "joined on every
///    path" (row maps only to Joined) from "joined on some paths" (row
///    maps to Joined and something else).
///
/// The lattice meet at CFG join points is set union (may-analysis); bottom
/// is the empty set, which only unreachable code has.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_LINT_BARRIERLATTICE_H
#define SIMTSR_LINT_BARRIERLATTICE_H

#include <cstdint>

namespace simtsr::lint {

/// Per-thread abstract state of one barrier register.
enum class BState : uint8_t {
  Unjoined = 0,  ///< Never joined, or membership released by a realloc.
  Joined = 1,    ///< Membership pending: a join/rejoin with no wait yet.
  Waited = 2,    ///< Cleared by a WaitBarrier (membership released).
  Cancelled = 3, ///< Withdrawn by a CancelBarrier.
};
constexpr unsigned NumBStates = 4;

/// Set of possible BStates; bit (1 << state).
using StateMask = uint8_t;

/// Set of (entry-state, current-state) pairs; bit (4*entry + current).
using Relation = uint16_t;

constexpr StateMask stateBit(BState S) {
  return static_cast<StateMask>(1u << static_cast<unsigned>(S));
}

constexpr StateMask AllStates = 0xF;

/// The identity relation: every entry state maps to itself.
constexpr Relation identityRelation() {
  Relation R = 0;
  for (unsigned S = 0; S < NumBStates; ++S)
    R |= static_cast<Relation>(1u << (NumBStates * S + S));
  return R;
}

/// \returns the set of entry states that have at least one pair in \p R.
constexpr StateMask relationDomain(Relation R) {
  StateMask M = 0;
  for (unsigned S = 0; S < NumBStates; ++S)
    if ((R >> (NumBStates * S)) & AllStates)
      M |= static_cast<StateMask>(1u << S);
  return M;
}

/// Forces every pair's current state to \p To (a barrier op executed).
constexpr Relation forceState(Relation R, BState To) {
  Relation Out = 0;
  for (unsigned S = 0; S < NumBStates; ++S)
    if ((R >> (NumBStates * S)) & AllStates)
      Out |= static_cast<Relation>(stateBit(To)) << (NumBStates * S);
  return Out;
}

/// Relation composition: (s, u) iff some t has (s, t) in A and (t, u) in B.
/// B's "entry" axis is A's "current" axis — exactly a call boundary.
constexpr Relation composeRelation(Relation A, Relation B) {
  Relation Out = 0;
  for (unsigned S = 0; S < NumBStates; ++S) {
    const unsigned Mid = (A >> (NumBStates * S)) & AllStates;
    unsigned Row = 0;
    for (unsigned T = 0; T < NumBStates; ++T)
      if (Mid & (1u << T))
        Row |= (B >> (NumBStates * T)) & AllStates;
    Out |= static_cast<Relation>(Row) << (NumBStates * S);
  }
  return Out;
}

/// Projects \p R through the entry set \p Entry: the states possible here
/// given that the function was entered in one of \p Entry's states.
constexpr StateMask projectRelation(Relation R, StateMask Entry) {
  unsigned Out = 0;
  for (unsigned S = 0; S < NumBStates; ++S)
    if (Entry & (1u << S))
      Out |= (R >> (NumBStates * S)) & AllStates;
  return static_cast<StateMask>(Out);
}

/// \returns true when (From, To) is a member of \p R.
constexpr bool relationHas(Relation R, BState From, BState To) {
  return (R >> (NumBStates * static_cast<unsigned>(From) +
                static_cast<unsigned>(To))) &
         1u;
}

/// Single relation pair (From, To).
constexpr Relation relationPair(BState From, BState To) {
  return static_cast<Relation>(1u << (NumBStates * static_cast<unsigned>(From) +
                                      static_cast<unsigned>(To)));
}

} // namespace simtsr::lint

#endif // SIMTSR_LINT_BARRIERLATTICE_H
