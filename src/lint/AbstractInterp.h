//===- AbstractInterp.h - Barrier-state abstract interpretation -*- C++ -*-===//
///
/// \file
/// Two fixpoint engines over the BarrierLattice domain, shared by every
/// detector in ConvergenceLint:
///
///  * RelationalAnalysis propagates per-barrier entry-to-here Relations
///    forward over one function's CFG. Its result summarizes as a
///    FunctionSummary (entry-to-exit relation plus blocking/leak facts),
///    computed bottom-up over the call graph so Call instructions compose
///    the callee's behaviour instead of being ignored — this is what
///    replaces the old blanket "Interproc barriers are exempt" escape
///    hatch with a real obligation check.
///
///  * MaskAnalysis propagates concrete state sets (StateMask) plus the set
///    of join sites whose membership may still be pending, given the entry
///    states observed at real call sites (top-down). Detectors replay its
///    block inputs instruction by instruction.
///
/// Both engines use union as the meet, so every fact is a may-fact; "must"
/// facts are singleton sets (e.g. mask == {Joined}).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_LINT_ABSTRACTINTERP_H
#define SIMTSR_LINT_ABSTRACTINTERP_H

#include "ir/Function.h"
#include "lint/BarrierLattice.h"

#include <array>
#include <map>
#include <vector>

namespace simtsr::lint {

/// Entry-to-exit behaviour of one function, per barrier register.
struct FunctionSummary {
  /// Union over all reachable `ret` points of the entry-to-here relation.
  std::array<Relation, NumBarrierRegisters> Transfer;
  /// Barriers with a reachable wait/softwait while membership inherited
  /// from the caller may still be intact — calling this function can block
  /// until threads outside it arrive (Section 4.4 entry gathering).
  /// Transitive through nested calls.
  uint32_t MayBlockEntry = 0;
  /// Barriers a locally-created membership of which may still be pending
  /// at some `ret` (the callee leaks its own join to the caller).
  uint32_t LeavesLocalJoin = 0;
  /// Barriers whose caller-side membership may pass through untouched (no
  /// overwriting join and no releasing wait on some path).
  uint32_t IntactThrough = 0;
  /// False when the summary could not be computed (recursive call graph);
  /// calls then conservatively behave as the identity.
  bool Valid = false;

  FunctionSummary() { Transfer.fill(identityRelation()); }
};

using SummaryMap = std::map<const Function *, FunctionSummary>;

/// Numbering of the Join/Rejoin sites of one function. Each site gets a
/// unique bit so MaskAnalysis can track *which* join a pending membership
/// came from; bit 63 stands for membership created outside the function
/// (inherited from the caller or leaked by a callee), bit 62 saturates
/// when a function has more than 62 sites.
class JoinSiteTable {
public:
  static constexpr uint64_t ExternalBit = 1ull << 63;
  static constexpr uint64_t OverflowBit = 1ull << 62;
  static constexpr unsigned MaxLocalSites = 62;

  explicit JoinSiteTable(const Function &F);

  /// Bit for the join/rejoin at (\p BB, \p Index); OverflowBit when the
  /// function exceeded MaxLocalSites.
  uint64_t bitFor(const BasicBlock *BB, size_t Index) const;

  struct Site {
    const BasicBlock *Block;
    size_t Index;
    unsigned Barrier;
    bool Rejoin; ///< True for RejoinBarrier sites (membership add, not
                 ///< overwrite — they can never orphan another group).
  };
  /// Sites in allocation order; Sites[i] owns bit (1 << i).
  const std::vector<Site> &sites() const { return SiteList; }

  /// Bits of the overwriting (JoinBarrier, non-rejoin) sites.
  uint64_t joinKindMask() const { return JoinKind; }

  /// Human-readable description of the sites in \p Mask (local bits only).
  std::string describe(uint64_t Mask) const;

private:
  std::map<std::pair<unsigned, size_t>, uint64_t> Bits;
  std::vector<Site> SiteList;
  uint64_t JoinKind = 0;
};

/// Relational state at one program point.
struct RelState {
  std::array<Relation, NumBarrierRegisters> Rel{};
  /// Barriers with a possibly-pending locally-created membership.
  uint32_t LocalJoin = 0;
  /// Barriers whose inherited (caller-side) membership may be intact.
  uint32_t Intact = 0;
  bool Reachable = false;

  void meet(const RelState &O);
  bool operator==(const RelState &O) const = default;

  /// Function-entry boundary value.
  static RelState entry();
};

/// Forward fixpoint of RelState over one function. \p Summaries supplies
/// callee behaviour at Call instructions (callees missing from the map or
/// marked invalid act as the identity).
class RelationalAnalysis {
public:
  RelationalAnalysis(Function &F, const SummaryMap &Summaries);

  const RelState &in(const BasicBlock *BB) const { return In[BB->number()]; }
  const RelState &out(const BasicBlock *BB) const { return Out[BB->number()]; }

  /// Applies one instruction's transfer to \p S in place.
  static void step(RelState &S, const Instruction &I,
                   const SummaryMap &Summaries);

  /// Derives this function's summary (always Valid). Must be handed the
  /// same summary map the analysis ran with, for the transitive
  /// MayBlockEntry facts.
  FunctionSummary summarize(const Function &F,
                            const SummaryMap &Summaries) const;

private:
  std::vector<RelState> In, Out;
};

/// Concrete state sets at one program point.
struct MaskState {
  std::array<StateMask, NumBarrierRegisters> S{};
  /// Join sites whose membership may still be pending (JoinSiteTable bits);
  /// nonzero only when S has the Joined bit.
  std::array<uint64_t, NumBarrierRegisters> Sites{};
  /// Barriers whose pending membership may have been overwritten by a
  /// JoinBarrier while another join site's membership was still live — the
  /// signature of two live ranges folded onto one register (bit per
  /// barrier). Cleared by wait/cancel.
  uint32_t Clobbered = 0;
  bool Reachable = false;

  void meet(const MaskState &O);
  bool operator==(const MaskState &O) const = default;
};

/// Possible entry states per barrier, accumulated from real call sites.
using EntryStates = std::array<StateMask, NumBarrierRegisters>;

/// Forward fixpoint of MaskState over one function, given its entry states.
class MaskAnalysis {
public:
  MaskAnalysis(Function &F, const EntryStates &Entry,
               const SummaryMap &Summaries, const JoinSiteTable &Sites);

  const MaskState &in(const BasicBlock *BB) const { return In[BB->number()]; }
  const MaskState &out(const BasicBlock *BB) const {
    return Out[BB->number()];
  }

  static void step(MaskState &S, const Instruction &I, const BasicBlock *BB,
                   size_t Index, const SummaryMap &Summaries,
                   const JoinSiteTable &Sites);

  /// Function-entry boundary value for \p Entry.
  static MaskState entryState(const EntryStates &Entry);

private:
  std::vector<MaskState> In, Out;
};

} // namespace simtsr::lint

#endif // SIMTSR_LINT_ABSTRACTINTERP_H
