//===- Repair.h - Proof-driven barrier-repair synthesizer ------*- C++ -*-===//
///
/// \file
/// The repair half of the convergence-safety analyzer (docs/LINT.md,
/// "Repair"): consumes each lint finding's lattice witness — the
/// entry-to-current relation, the join-site provenance bits and the
/// dominance facts the detectors already computed — and proposes minimal
/// IR edits that discharge the finding. Edits are first-class and
/// serializable (RepairEdit), so a repair is a reviewable patch, not a
/// mutated module.
///
/// The synthesizer runs lint -> edit -> re-lint to a fixpoint under a
/// candidate budget: each iteration picks the first gating finding that
/// has a candidate generator, scores every candidate by re-linting a
/// trial clone, and keeps the strictly-best improvement. A module whose
/// gating findings cannot be improved within the budget is *proven
/// unrepairable* and carries the blocking witness.
///
/// Static cleanliness is necessary, not sufficient: callers that can run
/// code certify the winner with the differential oracle
/// (fuzz/Oracle.h certifyRepair) before trusting it.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_LINT_REPAIR_H
#define SIMTSR_LINT_REPAIR_H

#include "lint/ConvergenceLint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simtsr {
class Module;
}

namespace simtsr::lint {

/// The edit taxonomy. Every action is expressible in the `.sir` text the
/// printer round-trips, so an edit list fully determines the repaired
/// module. A "move" is a DeleteInst + Insert pair.
enum class RepairAction : uint8_t {
  InsertCancel,     ///< Insert `cancelbar b<Barrier>` at (Block, Index).
  InsertWait,       ///< Insert `waitbar b<Barrier>` at (Block, Index).
  InsertJoin,       ///< Insert `joinbar b<Barrier>` at (Block, Index).
  DeleteInst,       ///< Delete the instruction at (Block, Index).
  RetargetBarrier,  ///< Rename the barrier operand at (Block, Index) to
                    ///< register Value (splits a realloc overlap).
  SetSoftThreshold, ///< Set the soft-wait threshold at (Block, Index) to
                    ///< Value.
};

/// \returns a stable kebab-case name ("insert-cancel", "delete", ...).
const char *getRepairActionName(RepairAction A);

/// One primitive edit, addressed positionally against the module it was
/// generated for. Within a candidate, edits apply in list order and later
/// edits use post-shift indices.
struct RepairEdit {
  RepairAction Action = RepairAction::InsertCancel;
  std::string Function;
  std::string Block;
  size_t Index = 0;
  /// Barrier operand for the insert actions; ~0u when unused.
  unsigned Barrier = ~0u;
  /// RetargetBarrier: the new register. SetSoftThreshold: the new
  /// threshold.
  int64_t Value = 0;
  /// Rationale: the lint kind this edit discharges, plus the evidence.
  std::string Note;

  /// "action @func:block[index] bN [-> V] -- note"; the serialized form
  /// printed by the CLI, the serve response and the repair golden.
  std::string format() const;
};

struct RepairOptions {
  /// Options for every internal lint run. Remarks are always suppressed:
  /// trial candidates would otherwise flood the remark stream.
  LintOptions Lint;
  /// Fixpoint bound: each iteration discharges at least one finding, so
  /// this also bounds the edit count.
  unsigned MaxIterations = 8;
  /// Total trial re-lints across the whole synthesis.
  unsigned CandidateBudget = 64;
};

enum class RepairStatus : uint8_t {
  Clean,        ///< No gating findings; the module was left untouched.
  Repaired,     ///< Fixpoint reached with zero gating findings.
  Unrepairable, ///< No candidate improved the blocking finding.
};

const char *getRepairStatusName(RepairStatus S);

struct RepairOutcome {
  RepairStatus Status = RepairStatus::Clean;
  /// Applied edits in application order (empty for Clean).
  std::vector<RepairEdit> Edits;
  /// printModule() of the final module. For Clean this is the printed
  /// original — byte-identical to printing the input, so untouched inputs
  /// are provably untouched. For Unrepairable it is the best partial
  /// repair reached before the blocking finding.
  std::string RepairedText;
  /// The final lint verdict over RepairedText's module.
  LintResult FinalLint;
  /// Unrepairable only: the formatted finding no candidate improved.
  std::string BlockingWitness;
  unsigned Iterations = 0;
  unsigned CandidatesTried = 0;
};

/// Synthesizes a repair for \p M (which is never mutated; all work happens
/// on clones). Deterministic: same module and options, same outcome.
RepairOutcome synthesizeRepair(const Module &M, const RepairOptions &Opts = {});

/// Applies one edit to \p M in place. \returns false (and sets \p Error
/// when non-null) if the edit does not address \p M — unknown function or
/// block, out-of-range index, or an action/instruction mismatch.
bool applyRepairEdit(Module &M, const RepairEdit &E,
                     std::string *Error = nullptr);

} // namespace simtsr::lint

#endif // SIMTSR_LINT_REPAIR_H
