//===- Repair.cpp - Proof-driven barrier-repair synthesizer ---------------===//

#include "lint/Repair.h"

#include "ir/Module.h"
#include "ir/Printer.h"
#include "lint/AbstractInterp.h"

#include <memory>
#include <string>
#include <vector>

using namespace simtsr;
using namespace simtsr::lint;

const char *lint::getRepairActionName(RepairAction A) {
  switch (A) {
  case RepairAction::InsertCancel:
    return "insert-cancel";
  case RepairAction::InsertWait:
    return "insert-wait";
  case RepairAction::InsertJoin:
    return "insert-join";
  case RepairAction::DeleteInst:
    return "delete";
  case RepairAction::RetargetBarrier:
    return "retarget";
  case RepairAction::SetSoftThreshold:
    return "set-threshold";
  }
  return "unknown";
}

const char *lint::getRepairStatusName(RepairStatus S) {
  switch (S) {
  case RepairStatus::Clean:
    return "clean";
  case RepairStatus::Repaired:
    return "repaired";
  case RepairStatus::Unrepairable:
    return "unrepairable";
  }
  return "unknown";
}

std::string RepairEdit::format() const {
  std::string Out = getRepairActionName(Action);
  Out += " @" + Function + ":" + Block + "[" + std::to_string(Index) + "]";
  switch (Action) {
  case RepairAction::InsertCancel:
  case RepairAction::InsertWait:
  case RepairAction::InsertJoin:
    Out += " b" + std::to_string(Barrier);
    break;
  case RepairAction::RetargetBarrier:
    Out += " -> b" + std::to_string(Value);
    break;
  case RepairAction::SetSoftThreshold:
    Out += " -> " + std::to_string(Value);
    break;
  case RepairAction::DeleteInst:
    break;
  }
  if (!Note.empty())
    Out += " -- " + Note;
  return Out;
}

bool lint::applyRepairEdit(Module &M, const RepairEdit &E, std::string *Error) {
  auto Fail = [&](std::string Msg) {
    if (Error)
      *Error = std::move(Msg);
    return false;
  };
  Function *F = M.functionByName(E.Function);
  if (!F)
    return Fail("no function named @" + E.Function);
  BasicBlock *BB = F->blockByName(E.Block);
  if (!BB)
    return Fail("no block named " + E.Block + " in @" + E.Function);

  switch (E.Action) {
  case RepairAction::InsertCancel:
  case RepairAction::InsertWait:
  case RepairAction::InsertJoin: {
    if (E.Index > BB->size())
      return Fail("insert position out of range");
    if (E.Barrier >= NumBarrierRegisters)
      return Fail("barrier id out of range");
    // Never insert past the terminator: the block would become malformed.
    if (BB->hasTerminator() && E.Index >= BB->size())
      return Fail("insert position past the terminator");
    const Opcode Op = E.Action == RepairAction::InsertCancel
                          ? Opcode::CancelBarrier
                          : E.Action == RepairAction::InsertWait
                                ? Opcode::WaitBarrier
                                : Opcode::JoinBarrier;
    BB->insert(E.Index, Instruction(Op, NoRegister, {Operand::barrier(E.Barrier)}));
    return true;
  }
  case RepairAction::DeleteInst: {
    if (E.Index >= BB->size())
      return Fail("delete position out of range");
    if (BB->inst(E.Index).isTerminator())
      return Fail("refusing to delete a terminator");
    BB->erase(E.Index);
    return true;
  }
  case RepairAction::RetargetBarrier: {
    if (E.Index >= BB->size())
      return Fail("retarget position out of range");
    Instruction &I = BB->inst(E.Index);
    if (!isBarrierOp(I.opcode()))
      return Fail("retarget target is not a barrier instruction");
    if (E.Value < 0 || static_cast<uint64_t>(E.Value) >= NumBarrierRegisters)
      return Fail("retarget barrier id out of range");
    I.operand(0).setBarrier(static_cast<unsigned>(E.Value));
    return true;
  }
  case RepairAction::SetSoftThreshold: {
    if (E.Index >= BB->size())
      return Fail("threshold position out of range");
    Instruction &I = BB->inst(E.Index);
    if (I.opcode() != Opcode::SoftWait)
      return Fail("threshold target is not a soft wait");
    if (I.numOperands() < 2 || !I.operand(1).isImm())
      return Fail("soft wait has no immediate threshold");
    I.operand(1) = Operand::imm(E.Value);
    return true;
  }
  }
  return Fail("unknown repair action");
}

namespace {

/// One candidate repair: edits in application order (later edits use
/// post-shift indices).
using Candidate = std::vector<RepairEdit>;

RepairEdit makeEdit(RepairAction A, const std::string &Fn,
                    const std::string &Blk, size_t Idx, unsigned B, int64_t V,
                    std::string Note) {
  RepairEdit E;
  E.Action = A;
  E.Function = Fn;
  E.Block = Blk;
  E.Index = Idx;
  E.Barrier = B;
  E.Value = V;
  E.Note = std::move(Note);
  return E;
}

std::string barrierName(unsigned B) { return "b" + std::to_string(B); }

/// Candidate generators, one per gating lint kind. Each proposal is the
/// *minimal* edit discharging the finding's witness; alternatives are
/// ordered most-surgical first so the fixpoint loop's tie-break (fewest
/// edits, then generation order) prefers them. Proposals are speculative:
/// the caller scores each one by re-linting a trial clone, so a generator
/// may emit candidates that turn out not to help.
void generateCandidates(const Module &M, const LintDiagnostic &D,
                        unsigned WarpSize, std::vector<Candidate> &Out) {
  const Function *F = M.functionByName(D.Function);

  switch (D.Kind) {
  case LintKind::JoinLeak:
    // Witness: membership from SiteBits still pending at this ret.
    // Discharge it right before the exit — cancel withdraws the leaking
    // lanes (releasing any partner group), wait gathers them.
    if (D.Block.empty() || D.Barrier >= NumBarrierRegisters)
      return;
    Out.push_back({makeEdit(RepairAction::InsertCancel, D.Function, D.Block,
                            D.Index, D.Barrier, 0,
                            "join-leak: discharge the leaked membership of " +
                                barrierName(D.Barrier) + " before the ret")});
    Out.push_back({makeEdit(RepairAction::InsertWait, D.Function, D.Block,
                            D.Index, D.Barrier, 0,
                            "join-leak: gather the leaked membership of " +
                                barrierName(D.Barrier) + " before the ret")});
    return;

  case LintKind::DeadJoin:
    // Witness: this join has no reachable wait or cancel. Either the join
    // is noise (delete it) or the discharge is missing (cancel after it).
    if (D.Block.empty() || D.Barrier >= NumBarrierRegisters)
      return;
    Out.push_back({makeEdit(RepairAction::DeleteInst, D.Function, D.Block,
                            D.Index, ~0u, 0,
                            "dead-join: remove the join of " +
                                barrierName(D.Barrier) +
                                " with no reachable discharge")});
    Out.push_back({makeEdit(RepairAction::InsertCancel, D.Function, D.Block,
                            D.Index + 1, D.Barrier, 0,
                            "dead-join: discharge " + barrierName(D.Barrier) +
                                " right after the join")});
    return;

  case LintKind::DoubleJoin: {
    // Witness: SiteBits names the dominating join sites whose membership
    // this join orphans. Delete one of them, or discharge the earlier
    // membership right before re-joining.
    if (!F || D.Block.empty() || D.Barrier >= NumBarrierRegisters)
      return;
    const JoinSiteTable Sites(*F);
    const uint64_t Local = D.SiteBits & ~JoinSiteTable::ExternalBit &
                           ~JoinSiteTable::OverflowBit;
    for (size_t I = 0; I < Sites.sites().size(); ++I) {
      if (!(Local & (1ull << I)))
        continue;
      const JoinSiteTable::Site &S = Sites.sites()[I];
      Out.push_back({makeEdit(RepairAction::DeleteInst, D.Function,
                              S.Block->name(), S.Index, ~0u, 0,
                              "double-join: remove the earlier join of " +
                                  barrierName(D.Barrier) +
                                  " this join orphans")});
    }
    Out.push_back(
        {makeEdit(RepairAction::InsertCancel, D.Function, D.Block, D.Index,
                  D.Barrier, 0,
                  "double-join: discharge the earlier membership of " +
                      barrierName(D.Barrier) + " before re-joining")});
    return;
  }

  case LintKind::ReallocOverlap: {
    // Witness: SiteBits holds the join sites whose memberships interleave
    // on this register. Remove an overwriting (join-kind) site, or close
    // the earlier live range with a cancel right before it.
    if (!F || D.Block.empty() || D.Barrier >= NumBarrierRegisters)
      return;
    const JoinSiteTable Sites(*F);
    const uint64_t Local = D.SiteBits & Sites.joinKindMask() &
                           ~JoinSiteTable::ExternalBit &
                           ~JoinSiteTable::OverflowBit;
    for (size_t I = 0; I < Sites.sites().size(); ++I) {
      if (!(Local & (1ull << I)))
        continue;
      const JoinSiteTable::Site &S = Sites.sites()[I];
      Out.push_back({makeEdit(RepairAction::DeleteInst, D.Function,
                              S.Block->name(), S.Index, ~0u, 0,
                              "realloc-overlap: remove the join of " +
                                  barrierName(D.Barrier) +
                                  " overwriting a live membership")});
    }
    for (size_t I = 0; I < Sites.sites().size(); ++I) {
      if (!(Local & (1ull << I)))
        continue;
      const JoinSiteTable::Site &S = Sites.sites()[I];
      Out.push_back(
          {makeEdit(RepairAction::InsertCancel, D.Function, S.Block->name(),
                    S.Index, D.Barrier, 0,
                    "realloc-overlap: close the earlier live range of " +
                        barrierName(D.Barrier) + " before this join")});
    }
    return;
  }

  case LintKind::BlockedWhileJoined: {
    // Witness: membership of D.Barrier (SiteBits) held while blocking at
    // the wait at (Block, Index). Move the join past the wait, or
    // discharge the held membership before blocking.
    if (!F || D.Block.empty() || D.Barrier >= NumBarrierRegisters)
      return;
    const JoinSiteTable Sites(*F);
    const uint64_t Local = D.SiteBits & ~JoinSiteTable::ExternalBit &
                           ~JoinSiteTable::OverflowBit;
    for (size_t I = 0; I < Sites.sites().size(); ++I) {
      if (!(Local & (1ull << I)))
        continue;
      const JoinSiteTable::Site &S = Sites.sites()[I];
      const bool SameBlock = S.Block->name() == D.Block;
      if (SameBlock && S.Index >= D.Index)
        continue; // The join does not precede the wait here.
      // Post-shift index: deleting an earlier instruction in the wait's
      // own block moves the wait down by one.
      const size_t After = SameBlock ? D.Index : D.Index + 1;
      Out.push_back(
          {makeEdit(RepairAction::DeleteInst, D.Function, S.Block->name(),
                    S.Index, ~0u, 0,
                    "blocked-while-joined: unpark the join of " +
                        barrierName(D.Barrier) + " held across the wait"),
           makeEdit(RepairAction::InsertJoin, D.Function, D.Block, After,
                    D.Barrier, 0,
                    "blocked-while-joined: re-establish the join of " +
                        barrierName(D.Barrier) + " after the wait")});
    }
    Out.push_back(
        {makeEdit(RepairAction::InsertCancel, D.Function, D.Block, D.Index,
                  D.Barrier, 0,
                  "blocked-while-joined: discharge the held membership of " +
                      barrierName(D.Barrier) + " before the wait")});
    return;
  }

  case LintKind::CallHazard:
    // Witness: membership of D.Barrier held at a call that gathers on
    // entry. Discharge it before handing control to the callee.
    if (D.Block.empty() || D.Barrier >= NumBarrierRegisters)
      return;
    Out.push_back(
        {makeEdit(RepairAction::InsertCancel, D.Function, D.Block, D.Index,
                  D.Barrier, 0,
                  "call-hazard: discharge the held membership of " +
                      barrierName(D.Barrier) + " before the gathering call")});
    Out.push_back(
        {makeEdit(RepairAction::InsertWait, D.Function, D.Block, D.Index,
                  D.Barrier, 0,
                  "call-hazard: gather the held membership of " +
                      barrierName(D.Barrier) + " before the gathering call")});
    return;

  case LintKind::InterprocLeak: {
    // Witness: the callee (D.Callee) may return with the entry obligation
    // on D.Barrier undischarged. A caller-side edit cannot fix the
    // callee's summary, so repair the callee: discharge before every ret.
    if (D.Barrier >= NumBarrierRegisters)
      return;
    const Function *Callee = M.functionByName(D.Callee);
    if (!Callee)
      return;
    // Preferred repair: revoke the obligation at the callee's entry. A
    // partially-covering gather is a schedule hazard however late the
    // discharge lands — a reconvergence pass may park the uncovered arm on
    // its own barrier ahead of any exit-block cancel (PdomSync inserts its
    // wait at the post-dominator's index 0), deadlocking against the
    // covered arm. An entry cancel empties the participant set before any
    // wait can block, so it is safe under every pipeline and schedule.
    // Exit-block placements follow as fallbacks.
    Candidate TopCancels, RetCancels, Waits;
    Out.push_back({makeEdit(
        RepairAction::InsertCancel, Callee->name(),
        Callee->entry()->name(), 0, D.Barrier, 0,
        "interproc-leak: revoke the partially-discharged entry obligation "
        "on " +
            barrierName(D.Barrier) + " at @" + Callee->name() + " entry")});
    for (const BasicBlock *BB : *Callee) {
      if (!BB->hasTerminator() || BB->terminator().opcode() != Opcode::Ret)
        continue;
      const std::string Why =
          "interproc-leak: discharge the entry obligation on " +
          barrierName(D.Barrier) + " at @" + Callee->name() + " exit";
      TopCancels.push_back(makeEdit(RepairAction::InsertCancel,
                                    Callee->name(), BB->name(), 0, D.Barrier,
                                    0, Why));
      RetCancels.push_back(makeEdit(RepairAction::InsertCancel,
                                    Callee->name(), BB->name(), BB->size() - 1,
                                    D.Barrier, 0, Why));
      Waits.push_back(
          makeEdit(RepairAction::InsertWait, Callee->name(), BB->name(),
                   BB->size() - 1, D.Barrier, 0,
                   "interproc-leak: gather the entry obligation on " +
                       barrierName(D.Barrier) + " at @" + Callee->name() +
                       " exit"));
    }
    if (!TopCancels.empty()) {
      Out.push_back(std::move(TopCancels));
      Out.push_back(std::move(RetCancels));
      Out.push_back(std::move(Waits));
    }
    return;
  }

  case LintKind::DeadlockCycle:
    // Witness: the wait here holds Barrier2 while the partner wait at
    // (Block2, Index2) holds D.Barrier. Breaking either hold breaks the
    // cycle; breaking both restores symmetry. The two waits are in
    // different blocks (the detector guarantees it), so the pair needs no
    // index shifting.
    if (D.Block.empty() || D.Block2.empty() ||
        D.Barrier >= NumBarrierRegisters || D.Barrier2 >= NumBarrierRegisters)
      return;
    Out.push_back(
        {makeEdit(RepairAction::InsertCancel, D.Function, D.Block, D.Index,
                  D.Barrier2, 0,
                  "deadlock-cycle: release held " + barrierName(D.Barrier2) +
                      " before blocking on " + barrierName(D.Barrier)),
         makeEdit(RepairAction::InsertCancel, D.Function, D.Block2, D.Index2,
                  D.Barrier, 0,
                  "deadlock-cycle: release held " + barrierName(D.Barrier) +
                      " before blocking on " + barrierName(D.Barrier2))});
    Out.push_back(
        {makeEdit(RepairAction::InsertCancel, D.Function, D.Block, D.Index,
                  D.Barrier2, 0,
                  "deadlock-cycle: release held " + barrierName(D.Barrier2) +
                      " before blocking on " + barrierName(D.Barrier))});
    Out.push_back(
        {makeEdit(RepairAction::InsertCancel, D.Function, D.Block2, D.Index2,
                  D.Barrier, 0,
                  "deadlock-cycle: release held " + barrierName(D.Barrier) +
                      " before blocking on " + barrierName(D.Barrier2))});
    return;

  case LintKind::SoftThreshold:
    // Gating only when the threshold exceeds the warp width; clamp it.
    if (D.Block.empty() || D.Barrier >= NumBarrierRegisters)
      return;
    Out.push_back({makeEdit(
        RepairAction::SetSoftThreshold, D.Function, D.Block, D.Index, ~0u,
        static_cast<int64_t>(WarpSize),
        "soft-threshold: clamp to the warp width " + std::to_string(WarpSize))});
    return;

  case LintKind::UnjoinedWait:
  case LintKind::Recursion:
    // Notes only; never gating, nothing to repair.
    return;
  }
}

/// Lexicographic severity score; strict decrease guarantees the fixpoint
/// loop terminates (at most score(original) acceptances).
unsigned scoreOf(const LintResult &R) {
  return R.count(LintSeverity::Error) * 1000u + R.count(LintSeverity::Warning);
}

} // namespace

RepairOutcome lint::synthesizeRepair(const Module &M,
                                     const RepairOptions &Opts) {
  RepairOutcome Out;
  LintOptions LO = Opts.Lint;
  LO.Remarks = false;

  std::unique_ptr<Module> Cur = M.clone();
  LintResult CurLint = runConvergenceLint(*Cur, LO);
  unsigned CurScore = scoreOf(CurLint);

  if (CurLint.clean()) {
    Out.Status = RepairStatus::Clean;
    Out.RepairedText = printModule(*Cur);
    Out.FinalLint = std::move(CurLint);
    return Out;
  }

  bool BudgetExhausted = false;
  for (unsigned Iter = 0;
       Iter < Opts.MaxIterations && !CurLint.clean() && !BudgetExhausted;
       ++Iter) {
    ++Out.Iterations;
    bool Accepted = false;
    // Walk gating findings in diagnostic order; the first one with a
    // strictly-improving candidate wins the iteration.
    for (const LintDiagnostic &D : CurLint.Diagnostics) {
      if (D.Severity == LintSeverity::Note)
        continue;
      std::vector<Candidate> Cands;
      generateCandidates(*Cur, D, LO.WarpSize, Cands);

      std::unique_ptr<Module> Best;
      LintResult BestLint;
      unsigned BestScore = 0;
      size_t BestSize = 0;
      const Candidate *BestCand = nullptr;
      for (const Candidate &C : Cands) {
        if (Out.CandidatesTried >= Opts.CandidateBudget) {
          BudgetExhausted = true;
          break;
        }
        std::unique_ptr<Module> Trial = Cur->clone();
        bool AppliedAll = true;
        for (const RepairEdit &E : C)
          if (!applyRepairEdit(*Trial, E)) {
            AppliedAll = false;
            break;
          }
        if (!AppliedAll)
          continue;
        ++Out.CandidatesTried;
        LintResult TrialLint = runConvergenceLint(*Trial, LO);
        const unsigned S = scoreOf(TrialLint);
        if (S >= CurScore)
          continue; // Only strict improvements are eligible.
        if (!BestCand || S < BestScore ||
            (S == BestScore && C.size() < BestSize)) {
          BestCand = &C;
          Best = std::move(Trial);
          BestLint = std::move(TrialLint);
          BestScore = S;
          BestSize = C.size();
        }
      }
      if (BestCand) {
        Out.Edits.insert(Out.Edits.end(), BestCand->begin(), BestCand->end());
        Cur = std::move(Best);
        CurLint = std::move(BestLint);
        CurScore = BestScore;
        Accepted = true;
        break;
      }
      if (BudgetExhausted)
        break;
    }
    if (!Accepted)
      break;
  }

  Out.RepairedText = printModule(*Cur);
  if (CurLint.clean()) {
    Out.Status = RepairStatus::Repaired;
  } else {
    Out.Status = RepairStatus::Unrepairable;
    for (const LintDiagnostic &D : CurLint.Diagnostics)
      if (D.Severity != LintSeverity::Note) {
        Out.BlockingWitness = D.format();
        break;
      }
  }
  Out.FinalLint = std::move(CurLint);
  return Out;
}
