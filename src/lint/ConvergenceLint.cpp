//===- ConvergenceLint.cpp - Static convergence-safety analyzer ---------------===//

#include "lint/ConvergenceLint.h"

#include "analysis/BarrierAnalysis.h"
#include "analysis/CallGraph.h"
#include "analysis/Divergence.h"
#include "analysis/Dominators.h"
#include "ir/CFGUtils.h"
#include "ir/Module.h"
#include "lint/AbstractInterp.h"
#include "observe/Remark.h"

#include <optional>

using namespace simtsr;
using namespace simtsr::lint;

const char *lint::getLintKindName(LintKind K) {
  switch (K) {
  case LintKind::UnjoinedWait:
    return "unjoined-wait";
  case LintKind::JoinLeak:
    return "join-leak";
  case LintKind::DeadJoin:
    return "dead-join";
  case LintKind::DoubleJoin:
    return "double-join";
  case LintKind::ReallocOverlap:
    return "realloc-overlap";
  case LintKind::BlockedWhileJoined:
    return "blocked-while-joined";
  case LintKind::CallHazard:
    return "call-hazard";
  case LintKind::InterprocLeak:
    return "interproc-leak";
  case LintKind::DeadlockCycle:
    return "deadlock-cycle";
  case LintKind::SoftThreshold:
    return "soft-threshold";
  case LintKind::Recursion:
    return "recursion";
  }
  return "unknown";
}

const char *lint::getLintSeverityName(LintSeverity S) {
  switch (S) {
  case LintSeverity::Note:
    return "note";
  case LintSeverity::Warning:
    return "warning";
  case LintSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string LintDiagnostic::format() const {
  std::string Out = std::string(getLintSeverityName(Severity)) + ": " +
                    Message + " (" + getLintKindName(Kind) + ")";
  if (!Witness.empty())
    Out += "; " + Witness;
  return Out;
}

unsigned LintResult::count(LintSeverity S) const {
  unsigned N = 0;
  for (const LintDiagnostic &D : Diagnostics)
    if (D.Severity == S)
      ++N;
  return N;
}

unsigned LintResult::countKind(LintKind K) const {
  unsigned N = 0;
  for (const LintDiagnostic &D : Diagnostics)
    if (D.Kind == K)
      ++N;
  return N;
}

bool LintResult::clean() const {
  return count(LintSeverity::Error) == 0 && count(LintSeverity::Warning) == 0;
}

std::vector<std::string> LintResult::gateStrings() const {
  std::vector<std::string> Out;
  for (const LintDiagnostic &D : Diagnostics)
    if (D.Severity != LintSeverity::Note)
      Out.push_back(D.Message);
  return Out;
}

namespace {

constexpr StateMask UBit = stateBit(BState::Unjoined);
constexpr StateMask JBit = stateBit(BState::Joined);

std::string barrierName(unsigned B) {
  std::string Out = "b";
  Out += std::to_string(B);
  return Out;
}

/// Whole-module lint state: summaries, entry propagation, reachability
/// memos and the accumulated diagnostics.
class Linter {
public:
  Linter(Module &M, const LintOptions &Opts) : M(M), Opts(Opts) {}

  LintResult run();

private:
  struct WaitHold {
    Function *F;
    const BasicBlock *BB;
    size_t Index;
    unsigned WaitB; ///< Barrier blocked on.
    unsigned HeldC; ///< Barrier must-joined while blocking.
  };

  LintDiagnostic &diag(LintKind K, LintSeverity Sev, const Function &F,
                       const BasicBlock *BB, size_t Index, unsigned B,
                       std::string Msg) {
    LintDiagnostic D;
    D.Kind = K;
    D.Severity = Sev;
    D.Function = F.name();
    if (BB)
      D.Block = BB->name();
    D.Index = Index;
    D.Barrier = B;
    D.Message = std::move(Msg);
    Result.Diagnostics.push_back(std::move(D));
    return Result.Diagnostics.back();
  }

  static std::string loc(const Function &F, const BasicBlock *BB) {
    return "@" + F.name() + ":" + BB->name();
  }

  const std::vector<bool> &reach(Function &F, const BasicBlock *BB) {
    auto It = ReachMemo.find(BB);
    if (It != ReachMemo.end())
      return It->second;
    return ReachMemo
        .emplace(BB, blocksReachableFrom(F, const_cast<BasicBlock *>(BB)))
        .first->second;
  }

  void analyzeFunction(Function &F);
  void checkWait(Function &F, const BasicBlock *BB, size_t I,
                 const Instruction &Inst, const MaskState &S,
                 const MaskAnalysis &MA,
                 const BarrierConflictAnalysis *Conflicts);
  void checkJoin(Function &F, const BasicBlock *BB, size_t I,
                 const Instruction &Inst, const MaskState &S,
                 const JoinSiteTable &Sites);
  void checkCall(Function &F, const BasicBlock *BB, size_t I,
                 const Instruction &Inst, const MaskState &S);
  void checkRet(Function &F, const BasicBlock *BB, size_t I,
                const MaskState &S, const JoinSiteTable &Sites,
                uint32_t DischargeMask);
  void checkDeadJoins(Function &F, const JoinSiteTable &Sites,
                      const MaskAnalysis &MA);

  DominatorTree &domTree(Function &F) {
    if (!DomTree || DomTreeFn != &F) {
      DomTree.emplace(F);
      DomTreeFn = &F;
    }
    return *DomTree;
  }
  void detectCycles();
  void emitRemarks() const;

  Module &M;
  const LintOptions &Opts;
  LintResult Result;

  CallGraph *CG = nullptr;
  SummaryMap Summaries;
  std::map<const Function *, EntryStates> Entries;
  uint32_t PdomMask = 0, SpecMask = 0, InterprocMask = 0, AnyOriginMask = 0;
  std::vector<WaitHold> MustHeld;
  std::map<const BasicBlock *, std::vector<bool>> ReachMemo;
  std::optional<ModuleDivergenceInfo> Divergence;
  std::optional<DominatorTree> DomTree;
  const Function *DomTreeFn = nullptr;
};

void Linter::checkWait(Function &F, const BasicBlock *BB, size_t I,
                       const Instruction &Inst, const MaskState &S,
                       const MaskAnalysis &MA,
                       const BarrierConflictAnalysis *Conflicts) {
  const unsigned B = Inst.barrierId();
  if (B >= NumBarrierRegisters)
    return;
  const bool Classic = Inst.opcode() == Opcode::WaitBarrier;
  const StateMask Mb = S.S[B];

  // Detector: unjoined wait. A classic wait reachable while the barrier is
  // possibly unjoined on an incoming path. A note, not a warning: waiting
  // on a barrier one never joined is dynamically benign (an empty or
  // partial participant set releases the waiter immediately — that is how
  // nested PDOM sync and arm-side gathers work), but in hand-written IR it
  // usually marks a join the author forgot. Soft waits are exempt: their
  // threshold clamps to the participant count by construction.
  if (Classic && (Mb & UBit)) {
    if (Mb & JBit) {
      LintDiagnostic &D =
          diag(LintKind::UnjoinedWait, LintSeverity::Note, F, BB, I, B,
               loc(F, BB) + ": wait on barrier " + barrierName(B) +
                   " is reachable while possibly unjoined (joined on some "
                   "incoming paths only)");
      std::string Via;
      for (const BasicBlock *P : BB->predecessors())
        if (MA.out(P).Reachable && (MA.out(P).S[B] & UBit)) {
          if (!Via.empty())
            Via += ", ";
          Via += P->name();
        }
      if (!Via.empty())
        D.Witness = "unjoined on the path through: " + Via;
    } else if (!(Mb & JBit)) {
      diag(LintKind::UnjoinedWait, LintSeverity::Note, F, BB, I, B,
           loc(F, BB) + ": wait on barrier " + barrierName(B) +
               " which is never joined on any incoming path");
    }
  }

  // Detector: realloc overlap. This wait's matching membership may have
  // been overwritten by another join site — two logically distinct live
  // ranges interleaving on one physical register, which is exactly what an
  // unsound BarrierRealloc merge produces. The group parked here can be
  // released prematurely (convergence silently lost).
  if (Classic && (S.Clobbered & (1u << B)))
    diag(LintKind::ReallocOverlap, LintSeverity::Warning, F, BB, I, B,
         loc(F, BB) + ": membership gathered by this wait on " +
             barrierName(B) +
             " may have been overwritten by another join site (overlapping "
             "live ranges on one register)")
        .SiteBits = S.Sites[B];

  // Detector: blocked-while-joined (the deconfliction hazard). With
  // origins this mirrors the old verifyDeconflicted byte for byte; without
  // them the Section 4.3 non-inclusive conflict test stands in as the
  // filter, which keeps the legitimate inclusive nesting of a region-exit
  // barrier around a speculative gather quiet.
  if (Opts.OriginAware) {
    const LintOrigin O = Opts.Origins[B];
    if (O == LintOrigin::Speculative || O == LintOrigin::Interproc) {
      for (unsigned C = 0; C < NumBarrierRegisters; ++C) {
        if (C == B || !(S.S[C] & JBit))
          continue;
        // Only memberships created in this function count as "held" here:
        // an inherited or callee-leaked membership (external site only) is
        // the callee-side half of the entry-gather idiom, discharged by
        // whoever created it.
        if (!(S.Sites[C] & ~JoinSiteTable::ExternalBit))
          continue;
        if (PdomMask & (1u << C))
          diag(LintKind::BlockedWhileJoined, LintSeverity::Warning, F, BB, I,
               C,
               loc(F, BB) + ": PDOM barrier " + barrierName(C) +
                   " still joined at speculative wait on " + barrierName(B))
              .SiteBits = S.Sites[C];
        else if (SpecMask & (1u << C))
          diag(LintKind::BlockedWhileJoined, LintSeverity::Warning, F, BB, I,
               C,
               loc(F, BB) + ": speculative barrier " + barrierName(C) +
                   " still joined at speculative wait on " + barrierName(B) +
                   " (overlapping predictions)")
              .SiteBits = S.Sites[C];
      }
    }
  } else if (Conflicts) {
    // Origin-blind mode (raw IR, or post-realloc where the registry is
    // stale): a note only. Without origins we cannot tell a hazardous
    // held-PDOM membership from the legitimate enclosing region-exit
    // barrier that covers every inner wait.
    for (unsigned C = 0; C < NumBarrierRegisters; ++C)
      if (C != B && (S.S[C] & JBit) && Conflicts->conflict(B, C))
        diag(LintKind::BlockedWhileJoined, LintSeverity::Note, F, BB, I, C,
             loc(F, BB) + ": barrier " + barrierName(C) +
                 " still joined at wait on " + barrierName(B));
  }

  // Guaranteed-deadlock candidates: a classic wait that blocks while some
  // other membership is held on *every* incoming path.
  if (Classic)
    for (unsigned C = 0; C < NumBarrierRegisters; ++C)
      if (C != B && S.S[C] == JBit)
        MustHeld.push_back({&F, BB, I, B, C});

  // Detector: soft-threshold sanity.
  if (!Classic && Inst.numOperands() >= 2 && Inst.operand(1).isImm()) {
    const int64_t T = Inst.operand(1).getImm();
    if (T < 1)
      // A note, not a warning: threshold 0 is the degenerate-but-legal end
      // of the Figure 9 sweep (the gather never blocks).
      diag(LintKind::SoftThreshold, LintSeverity::Note, F, BB, I, B,
           loc(F, BB) + ": soft wait on " + barrierName(B) + " has threshold " +
               std::to_string(T) + ", which releases the barrier immediately");
    else if (static_cast<uint64_t>(T) > Opts.WarpSize)
      diag(LintKind::SoftThreshold, LintSeverity::Warning, F, BB, I, B,
           loc(F, BB) + ": soft wait on " + barrierName(B) + " has threshold " +
               std::to_string(T) + " exceeding the warp width " +
               std::to_string(Opts.WarpSize) +
               " (always clamps to the participant count)");
  }
}

void Linter::checkJoin(Function &F, const BasicBlock *BB, size_t I,
                       const Instruction &Inst, const MaskState &S,
                       const JoinSiteTable &Sites) {
  const unsigned B = Inst.barrierId();
  if (B >= NumBarrierRegisters)
    return;
  // Detector: double join. Only an overwriting JoinBarrier can orphan a
  // pending membership, and only when the earlier join certainly executed
  // first in the same thread — i.e. a pending *join*-kind site that
  // dominates this one with no discharge in between. Arm rejoins, merged
  // alternatives and a loop re-executing its own join are all the normal
  // gather idiom and stay quiet.
  if (Inst.opcode() != Opcode::JoinBarrier || !(S.S[B] & JBit))
    return;
  const uint64_t Self = Sites.bitFor(BB, I);
  const uint64_t Pending = S.Sites[B] & Sites.joinKindMask() & ~Self &
                           ~JoinSiteTable::ExternalBit &
                           ~JoinSiteTable::OverflowBit;
  if (!Pending)
    return;
  uint64_t Dominating = 0;
  for (size_t SiteIdx = 0; SiteIdx < Sites.sites().size(); ++SiteIdx) {
    if (!(Pending & (1ull << SiteIdx)))
      continue;
    const JoinSiteTable::Site &Y = Sites.sites()[SiteIdx];
    const bool Dominates = Y.Block == BB
                               ? Y.Index < I
                               : domTree(F).strictlyDominates(Y.Block, BB);
    if (Dominates)
      Dominating |= 1ull << SiteIdx;
  }
  if (!Dominating)
    return;
  const bool Must = S.S[B] == JBit;
  LintDiagnostic &D = diag(
      LintKind::DoubleJoin, Must ? LintSeverity::Error : LintSeverity::Warning,
      F, BB, I, B,
      loc(F, BB) + ": barrier " + barrierName(B) +
          " joined again while the earlier join's membership is still "
          "pending");
  D.Witness = "orphans the join at: " + Sites.describe(Dominating);
  D.SiteBits = Dominating;
}

void Linter::checkCall(Function &F, const BasicBlock *BB, size_t I,
                       const Instruction &Inst, const MaskState &S) {
  Function *Callee = Inst.operand(0).getFunc();

  // Top-down entry-state propagation: the callee is analyzed (later, in
  // reverse bottom-up order) against the union of what its call sites
  // actually pass in.
  EntryStates &CE = Entries[Callee];
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    if (S.S[B] & JBit)
      CE[B] |= JBit;
    if (S.S[B] & ~JBit)
      CE[B] |= UBit; // Waited/cancelled membership is gone at the callee.
  }

  auto It = Summaries.find(Callee);
  if (It == Summaries.end() || !It->second.Valid)
    return;
  const FunctionSummary &Sum = It->second;

  // Detector: call hazard. The callee (transitively) gathers on an entry
  // barrier, so this call is a wait site from the caller's perspective;
  // any other membership still held here can cross-deadlock against it.
  // With origins the trigger is the old verifier's: the callee blocks on
  // an *interprocedural* entry barrier (the compiler-inserted gather),
  // and only locally-created, origin-tracked memberships count as held.
  // Without origins we cannot tell an entry gather from an ordinary
  // callee-side wait, so the finding degrades to a note.
  const bool BlocksEntry = Opts.OriginAware
                               ? (Sum.MayBlockEntry & InterprocMask) != 0
                               : Sum.MayBlockEntry != 0;
  if (BlocksEntry) {
    for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
      if (!(S.S[B] & JBit) || (Sum.MayBlockEntry & (1u << B)))
        continue;
      if (!(S.Sites[B] & ~JoinSiteTable::ExternalBit))
        continue;
      if (Opts.OriginAware && !(AnyOriginMask & (1u << B)))
        continue;
      LintDiagnostic &D =
          diag(LintKind::CallHazard,
               Opts.OriginAware ? LintSeverity::Warning : LintSeverity::Note,
               F, BB, I, B,
               loc(F, BB) + ": barrier " + barrierName(B) +
                   " still joined at call to @" + Callee->name() +
                   ", which blocks on an entry barrier");
      D.Callee = Callee->name();
      D.SiteBits = S.Sites[B];
    }
  }

  // Detector: interprocedural obligation. Membership handed into a callee
  // that gathers on it must be discharged (waited or cancelled) on every
  // callee path — the summary-based replacement for the old blanket
  // "Interproc barriers are exempt" escape hatch.
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    if (!(S.S[B] & JBit) || !(Sum.MayBlockEntry & (1u << B)))
      continue;
    if (projectRelation(Sum.Transfer[B], JBit) & JBit)
      diag(LintKind::InterprocLeak, LintSeverity::Warning, F, BB, I, B,
           loc(F, BB) + ": call to @" + Callee->name() +
               " may return with barrier " + barrierName(B) +
               " still joined (entry obligation not discharged on every "
               "path)")
          .Callee = Callee->name();
  }
}

void Linter::checkRet(Function &F, const BasicBlock *BB, size_t I,
                      const MaskState &S, const JoinSiteTable &Sites,
                      uint32_t DischargeMask) {
  // Detector: join leak. Only locally-created memberships are charged to
  // this function; an inherited membership that passes through untouched
  // is the caller's to discharge and is reported there.
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    if (!(S.S[B] & JBit))
      continue;
    if (!(S.Sites[B] & ~JoinSiteTable::ExternalBit))
      continue;
    const bool Must = S.S[B] == JBit;
    // A may-leak next to a reachable discharge site is the Figure 4(a)
    // skip-arm idiom: only one arm waits, and the threads that bypass it
    // are released from the participant set by thread exit. Dynamically
    // benign, so it degrades to a note. A barrier with no discharge site
    // anywhere keeps its severity — nothing ever gathers it.
    LintSeverity Sev = Must ? LintSeverity::Error : LintSeverity::Warning;
    std::string Msg = loc(F, BB) + ": barrier " + barrierName(B) +
                      " may still be joined at function exit";
    if (!Must && (DischargeMask & (1u << B))) {
      Sev = LintSeverity::Note;
      Msg += " (skip-arm of a reachable wait; released by thread exit)";
    }
    LintDiagnostic &D = diag(LintKind::JoinLeak, Sev, F, BB, I, B, Msg);
    D.Witness = "joined at: " + Sites.describe(S.Sites[B]);
    D.SiteBits = S.Sites[B];
  }
}

void Linter::checkDeadJoins(Function &F, const JoinSiteTable &Sites,
                            const MaskAnalysis &MA) {
  // Detector: dead join. A join whose matching wait is unreachable — and
  // with no cancel reachable either, the membership provably never gets
  // discharged before the exit.
  if (Sites.sites().empty())
    return;
  BarrierLivenessAnalysis Live(F);
  for (const JoinSiteTable::Site &Site : Sites.sites()) {
    if (!MA.in(Site.Block).Reachable)
      continue;
    if (Live.liveAfter(Site.Block, Site.Index) & (1u << Site.Barrier))
      continue;
    const std::vector<bool> &R = reach(F, Site.Block);
    bool Discharged = false;
    for (const BasicBlock *BB : F) {
      if (BB->number() >= R.size() || !R[BB->number()])
        continue;
      for (size_t I = 0; I < BB->size() && !Discharged; ++I) {
        const Instruction &Inst = BB->inst(I);
        if (Inst.opcode() == Opcode::CancelBarrier &&
            Inst.barrierId() == Site.Barrier) {
          Discharged = true;
        } else if (Inst.opcode() == Opcode::Call) {
          // The entry-gather idiom: a callee that blocks on this barrier
          // discharges the membership for the caller.
          auto It = Summaries.find(Inst.operand(0).getFunc());
          if (It != Summaries.end() && It->second.Valid &&
              (It->second.MayBlockEntry & (1u << Site.Barrier)))
            Discharged = true;
        }
      }
      if (Discharged)
        break;
    }
    if (Discharged)
      continue;
    diag(LintKind::DeadJoin, LintSeverity::Warning, F, Site.Block, Site.Index,
         Site.Barrier,
         loc(F, Site.Block) + ": join of barrier " +
             barrierName(Site.Barrier) + " has no reachable wait or cancel");
  }
}

void Linter::analyzeFunction(Function &F) {
  const JoinSiteTable Sites(F);
  EntryStates Entry{};
  if (auto It = Entries.find(&F); It != Entries.end())
    Entry = It->second;
  if (CG->callers(&F).empty())
    for (unsigned B = 0; B < NumBarrierRegisters; ++B)
      Entry[B] |= UBit; // Root: launched with no memberships.
  const MaskAnalysis MA(F, Entry, Summaries, Sites);

  std::optional<BarrierConflictAnalysis> Conflicts;
  if (!Opts.OriginAware)
    Conflicts.emplace(F);

  // Barriers with any reachable discharge site (wait, soft wait, or
  // cancel) in this function — used to tell the skip-arm idiom from a
  // genuinely undischargeable leak.
  uint32_t DischargeMask = 0;
  for (const BasicBlock *BB : F) {
    if (!MA.in(BB).Reachable)
      continue;
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      switch (Inst.opcode()) {
      case Opcode::WaitBarrier:
      case Opcode::SoftWait:
      case Opcode::CancelBarrier:
        DischargeMask |= 1u << Inst.barrierId();
        break;
      default:
        break;
      }
    }
  }

  for (BasicBlock *BB : F) {
    MaskState S = MA.in(BB);
    if (!S.Reachable)
      continue;
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      switch (Inst.opcode()) {
      case Opcode::WaitBarrier:
      case Opcode::SoftWait:
        checkWait(F, BB, I, Inst, S, MA, Conflicts ? &*Conflicts : nullptr);
        break;
      case Opcode::JoinBarrier:
      case Opcode::RejoinBarrier:
        checkJoin(F, BB, I, Inst, S, Sites);
        break;
      case Opcode::Call:
        checkCall(F, BB, I, Inst, S);
        break;
      case Opcode::Ret:
        checkRet(F, BB, I, S, Sites, DischargeMask);
        break;
      default:
        break;
      }
      MaskAnalysis::step(S, Inst, BB, I, Summaries, Sites);
    }
  }

  checkDeadJoins(F, Sites, MA);
}

void Linter::detectCycles() {
  for (size_t I = 0; I < MustHeld.size(); ++I) {
    for (size_t J = I + 1; J < MustHeld.size(); ++J) {
      const WaitHold &A = MustHeld[I];
      const WaitHold &B = MustHeld[J];
      if (A.F != B.F || A.BB == B.BB || A.WaitB != B.HeldC ||
          A.HeldC != B.WaitB)
        continue;
      Function &F = *A.F;
      // The two waits must be mutually unreachable: if one can flow into
      // the other, the first release un-blocks the chain.
      if (reach(F, A.BB)[B.BB->number()] || reach(F, B.BB)[A.BB->number()])
        continue;
      // And they must sit on opposite arms of a divergent branch, so that
      // two non-empty thread groups really can be parked on them at once.
      if (!Divergence)
        Divergence.emplace(M);
      const DivergenceAnalysis &DA = Divergence->forFunction(&F);
      const BasicBlock *Branch = nullptr;
      for (BasicBlock *X : F) {
        if (!DA.isDivergentBranch(X))
          continue;
        const std::vector<BasicBlock *> Succs = X->successors();
        for (BasicBlock *S1 : Succs) {
          for (BasicBlock *S2 : Succs) {
            if (S1 == S2)
              continue;
            if (reach(F, S1)[A.BB->number()] && reach(F, S2)[B.BB->number()]) {
              Branch = X;
              break;
            }
          }
          if (Branch)
            break;
        }
        if (Branch)
          break;
      }
      if (!Branch)
        continue;
      LintDiagnostic &D = diag(
          LintKind::DeadlockCycle, LintSeverity::Error, F, A.BB, A.Index,
          A.WaitB,
          loc(F, A.BB) + ": guaranteed cross-barrier deadlock: wait on " +
              barrierName(A.WaitB) + " holds joined " + barrierName(A.HeldC) +
              " while the wait on " + barrierName(B.WaitB) + " at " +
              loc(F, B.BB) + " holds joined " + barrierName(B.HeldC));
      D.Witness = "thread groups part ways at " + loc(F, Branch);
      D.Barrier2 = A.HeldC;
      D.Block2 = B.BB->name();
      D.Index2 = B.Index;
      Result.ProvenDeadlock = true;
    }
  }
}

void Linter::emitRemarks() const {
  if (!Opts.Remarks || !observe::remarksEnabled())
    return;
  for (const LintDiagnostic &D : Result.Diagnostics)
    observe::emitRemark(
        "lint",
        D.Severity == LintSeverity::Note ? observe::RemarkKind::Analysis
                                         : observe::RemarkKind::Conflict,
        D.Function, D.Block, D.Message,
        {{"kind", getLintKindName(D.Kind)},
         {"severity", getLintSeverityName(D.Severity)},
         {"barrier",
          D.Barrier == ~0u ? std::string("-") : std::to_string(D.Barrier)}});
}

LintResult Linter::run() {
  for (size_t I = 0; I < M.size(); ++I)
    M.function(I)->recomputePreds();

  CallGraph G(M);
  CG = &G;

  if (Opts.OriginAware) {
    for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
      const uint32_t Bit = 1u << B;
      switch (Opts.Origins[B]) {
      case LintOrigin::Unknown:
        break;
      case LintOrigin::Pdom:
        PdomMask |= Bit;
        AnyOriginMask |= Bit;
        break;
      case LintOrigin::Speculative:
        SpecMask |= Bit;
        AnyOriginMask |= Bit;
        break;
      case LintOrigin::RegionExit:
        AnyOriginMask |= Bit;
        break;
      case LintOrigin::Interproc:
        InterprocMask |= Bit;
        AnyOriginMask |= Bit;
        break;
      }
    }
  }

  const std::vector<Function *> Bottom = G.bottomUpOrder();
  if (!G.isRecursive()) {
    for (Function *F : Bottom) {
      RelationalAnalysis RA(*F, Summaries);
      Summaries[F] = RA.summarize(*F, Summaries);
    }
  } else {
    LintDiagnostic D;
    D.Kind = LintKind::Recursion;
    D.Severity = LintSeverity::Note;
    D.Message = "recursive call graph: interprocedural barrier obligations "
                "not checked";
    Result.Diagnostics.push_back(std::move(D));
  }

  // Callers before callees, so every call site's entry contribution lands
  // before the callee is analyzed.
  for (auto It = Bottom.rbegin(); It != Bottom.rend(); ++It)
    analyzeFunction(**It);

  detectCycles();
  emitRemarks();
  return std::move(Result);
}

} // namespace

LintResult lint::runConvergenceLint(Module &M, const LintOptions &Opts) {
  return Linter(M, Opts).run();
}
