//===- AbstractInterp.cpp - Barrier-state abstract interpretation -------------===//

#include "lint/AbstractInterp.h"

#include "ir/CFGUtils.h"

#include <string>

using namespace simtsr;
using namespace simtsr::lint;

//===----------------------------------------------------------------------===//
// JoinSiteTable
//===----------------------------------------------------------------------===//

JoinSiteTable::JoinSiteTable(const Function &F) {
  for (const BasicBlock *BB : F) {
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.opcode() != Opcode::JoinBarrier &&
          Inst.opcode() != Opcode::RejoinBarrier)
        continue;
      if (Inst.barrierId() >= NumBarrierRegisters)
        continue;
      const bool Rejoin = Inst.opcode() == Opcode::RejoinBarrier;
      uint64_t Bit = OverflowBit;
      if (SiteList.size() < MaxLocalSites) {
        Bit = 1ull << SiteList.size();
        SiteList.push_back({BB, I, Inst.barrierId(), Rejoin});
        if (!Rejoin)
          JoinKind |= Bit;
      } else if (!Rejoin) {
        JoinKind |= OverflowBit;
      }
      Bits[{BB->number(), I}] = Bit;
    }
  }
}

uint64_t JoinSiteTable::bitFor(const BasicBlock *BB, size_t Index) const {
  auto It = Bits.find({BB->number(), Index});
  return It == Bits.end() ? OverflowBit : It->second;
}

std::string JoinSiteTable::describe(uint64_t Mask) const {
  std::string Out;
  for (size_t I = 0; I < SiteList.size(); ++I) {
    if (!(Mask & (1ull << I)))
      continue;
    if (!Out.empty())
      Out += ", ";
    Out += SiteList[I].Block->name() + "#" + std::to_string(SiteList[I].Index);
  }
  if (Mask & OverflowBit) {
    if (!Out.empty())
      Out += ", ";
    Out += "<overflow>";
  }
  if (Mask & ExternalBit) {
    if (!Out.empty())
      Out += ", ";
    Out += "<external>";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// RelState / RelationalAnalysis
//===----------------------------------------------------------------------===//

void RelState::meet(const RelState &O) {
  if (!O.Reachable)
    return;
  Reachable = true;
  for (unsigned B = 0; B < NumBarrierRegisters; ++B)
    Rel[B] |= O.Rel[B];
  LocalJoin |= O.LocalJoin;
  Intact |= O.Intact;
}

RelState RelState::entry() {
  RelState S;
  S.Rel.fill(identityRelation());
  S.Intact = (1u << NumBarrierRegisters) - 1;
  S.Reachable = true;
  return S;
}

void RelationalAnalysis::step(RelState &S, const Instruction &I,
                              const SummaryMap &Summaries) {
  if (!S.Reachable)
    return;
  switch (I.opcode()) {
  case Opcode::JoinBarrier:
  case Opcode::RejoinBarrier: {
    const unsigned B = I.barrierId();
    if (B >= NumBarrierRegisters)
      return;
    S.Rel[B] = forceState(S.Rel[B], BState::Joined);
    S.LocalJoin |= 1u << B;
    // A join *overwrites* the participant set (Volta BSSY semantics), so
    // it destroys any caller-side membership; a rejoin only re-adds the
    // current group and leaves other participants alone.
    if (I.opcode() == Opcode::JoinBarrier)
      S.Intact &= ~(1u << B);
    return;
  }
  case Opcode::WaitBarrier: {
    const unsigned B = I.barrierId();
    if (B >= NumBarrierRegisters)
      return;
    S.Rel[B] = forceState(S.Rel[B], BState::Waited);
    S.LocalJoin &= ~(1u << B);
    S.Intact &= ~(1u << B); // Release clears every participant.
    return;
  }
  case Opcode::CancelBarrier: {
    const unsigned B = I.barrierId();
    if (B >= NumBarrierRegisters)
      return;
    S.Rel[B] = forceState(S.Rel[B], BState::Cancelled);
    S.LocalJoin &= ~(1u << B);
    // Cancel withdraws only the executing thread: caller-side
    // participants remain, so Intact is preserved.
    return;
  }
  case Opcode::SoftWait:
    // Soft release keeps the released threads as participants
    // (Section 4.6); membership is managed by the surrounding join/cancel.
    return;
  case Opcode::Call: {
    auto It = Summaries.find(I.operand(0).getFunc());
    if (It == Summaries.end() || !It->second.Valid)
      return; // Conservative identity (recursive call graph).
    const FunctionSummary &Sum = It->second;
    for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
      S.Rel[B] = composeRelation(S.Rel[B], Sum.Transfer[B]);
      const uint32_t Bit = 1u << B;
      if ((S.LocalJoin & Bit) &&
          !relationHas(Sum.Transfer[B], BState::Joined, BState::Joined))
        S.LocalJoin &= ~Bit;
    }
    S.LocalJoin |= Sum.LeavesLocalJoin;
    S.Intact &= Sum.IntactThrough;
    return;
  }
  default:
    return;
  }
}

RelationalAnalysis::RelationalAnalysis(Function &F,
                                       const SummaryMap &Summaries) {
  In.assign(F.size(), RelState{});
  Out.assign(F.size(), RelState{});
  const std::vector<BasicBlock *> Order = reversePostOrder(F);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Order) {
      const unsigned N = BB->number();
      RelState NewIn;
      if (BB == F.entry())
        NewIn = RelState::entry();
      for (BasicBlock *Pred : BB->predecessors())
        NewIn.meet(Out[Pred->number()]);
      RelState NewOut = NewIn;
      for (size_t I = 0; I < BB->size(); ++I)
        step(NewOut, BB->inst(I), Summaries);
      if (!(NewIn == In[N]) || !(NewOut == Out[N])) {
        In[N] = std::move(NewIn);
        Out[N] = std::move(NewOut);
        Changed = true;
      }
    }
  }
}

FunctionSummary
RelationalAnalysis::summarize(const Function &F,
                              const SummaryMap &Summaries) const {
  FunctionSummary Sum;
  Sum.Valid = true;
  Sum.Transfer.fill(0);
  bool SawRet = false;
  for (const BasicBlock *BB : F) {
    RelState S = In[BB->number()];
    if (!S.Reachable)
      continue;
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      // Blocking facts are read *before* the instruction's own transfer.
      if ((Inst.opcode() == Opcode::WaitBarrier ||
           Inst.opcode() == Opcode::SoftWait) &&
          Inst.barrierId() < NumBarrierRegisters) {
        if (S.Intact & (1u << Inst.barrierId()))
          Sum.MayBlockEntry |= 1u << Inst.barrierId();
      } else if (Inst.opcode() == Opcode::Call) {
        auto It = Summaries.find(Inst.operand(0).getFunc());
        if (It != Summaries.end() && It->second.Valid)
          Sum.MayBlockEntry |= S.Intact & It->second.MayBlockEntry;
      } else if (Inst.opcode() == Opcode::Ret) {
        SawRet = true;
        for (unsigned B = 0; B < NumBarrierRegisters; ++B)
          Sum.Transfer[B] |= S.Rel[B];
        Sum.LeavesLocalJoin |= S.LocalJoin;
        Sum.IntactThrough |= S.Intact;
      }
      step(S, Inst, Summaries);
    }
  }
  if (!SawRet) {
    // No reachable return: callers never resume, so the identity is a
    // harmless (and maximally quiet) description of the call's effect.
    Sum.Transfer.fill(identityRelation());
    Sum.IntactThrough = (1u << NumBarrierRegisters) - 1;
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// MaskState / MaskAnalysis
//===----------------------------------------------------------------------===//

void MaskState::meet(const MaskState &O) {
  if (!O.Reachable)
    return;
  Reachable = true;
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    S[B] |= O.S[B];
    Sites[B] |= O.Sites[B];
  }
  Clobbered |= O.Clobbered;
}

MaskState MaskAnalysis::entryState(const EntryStates &Entry) {
  MaskState S;
  S.Reachable = true;
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    S.S[B] = Entry[B] ? Entry[B] : stateBit(BState::Unjoined);
    if (S.S[B] & stateBit(BState::Joined))
      S.Sites[B] = JoinSiteTable::ExternalBit;
  }
  return S;
}

void MaskAnalysis::step(MaskState &S, const Instruction &I,
                        const BasicBlock *BB, size_t Index,
                        const SummaryMap &Summaries,
                        const JoinSiteTable &Sites) {
  if (!S.Reachable)
    return;
  switch (I.opcode()) {
  case Opcode::JoinBarrier: {
    const unsigned B = I.barrierId();
    if (B >= NumBarrierRegisters)
      return;
    // The overwrite orphans any other overwriting site's live membership —
    // the signature of two reallocation-merged live ranges interleaving.
    // Rejoin-created membership is the arm-rejoin idiom and doesn't count.
    const uint64_t Self = Sites.bitFor(BB, Index);
    if (S.Sites[B] & Sites.joinKindMask() & ~Self)
      S.Clobbered |= 1u << B;
    S.S[B] = stateBit(BState::Joined);
    S.Sites[B] = Self;
    return;
  }
  case Opcode::RejoinBarrier: {
    const unsigned B = I.barrierId();
    if (B >= NumBarrierRegisters)
      return;
    // Rejoin adds the executing group without touching other participants,
    // so pending sites accumulate rather than being replaced.
    S.S[B] = stateBit(BState::Joined);
    S.Sites[B] |= Sites.bitFor(BB, Index);
    return;
  }
  case Opcode::WaitBarrier: {
    const unsigned B = I.barrierId();
    if (B >= NumBarrierRegisters)
      return;
    S.S[B] = stateBit(BState::Waited);
    S.Sites[B] = 0;
    S.Clobbered &= ~(1u << B);
    return;
  }
  case Opcode::CancelBarrier: {
    const unsigned B = I.barrierId();
    if (B >= NumBarrierRegisters)
      return;
    S.S[B] = stateBit(BState::Cancelled);
    S.Sites[B] = 0;
    S.Clobbered &= ~(1u << B);
    return;
  }
  case Opcode::SoftWait:
    return; // Released threads remain participants.
  case Opcode::Call: {
    auto It = Summaries.find(I.operand(0).getFunc());
    if (It == Summaries.end() || !It->second.Valid)
      return;
    const FunctionSummary &Sum = It->second;
    for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
      S.S[B] = projectRelation(Sum.Transfer[B], S.S[B]);
      const bool Preserved =
          relationHas(Sum.Transfer[B], BState::Joined, BState::Joined);
      uint64_t NewSites = Preserved ? S.Sites[B] : 0;
      if (Sum.LeavesLocalJoin & (1u << B))
        NewSites |= JoinSiteTable::ExternalBit;
      S.Sites[B] = (S.S[B] & stateBit(BState::Joined)) ? NewSites : 0;
      if (!S.Sites[B])
        S.Clobbered &= ~(1u << B);
    }
    return;
  }
  default:
    return;
  }
}

MaskAnalysis::MaskAnalysis(Function &F, const EntryStates &Entry,
                           const SummaryMap &Summaries,
                           const JoinSiteTable &Sites) {
  In.assign(F.size(), MaskState{});
  Out.assign(F.size(), MaskState{});
  const std::vector<BasicBlock *> Order = reversePostOrder(F);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Order) {
      const unsigned N = BB->number();
      MaskState NewIn;
      if (BB == F.entry())
        NewIn = entryState(Entry);
      for (BasicBlock *Pred : BB->predecessors())
        NewIn.meet(Out[Pred->number()]);
      MaskState NewOut = NewIn;
      for (size_t I = 0; I < BB->size(); ++I)
        step(NewOut, BB->inst(I), BB, I, Summaries, Sites);
      if (!(NewIn == In[N]) || !(NewOut == Out[N])) {
        In[N] = std::move(NewIn);
        Out[N] = std::move(NewOut);
        Changed = true;
      }
    }
  }
}
