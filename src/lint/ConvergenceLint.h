//===- ConvergenceLint.h - Static convergence-safety analyzer --*- C++ -*-===//
///
/// \file
/// The static convergence-safety analyzer (docs/LINT.md): a path-sensitive
/// abstract interpretation of per-barrier-register state over the whole
/// module, with summary-based interprocedural propagation, feeding a set
/// of concrete detectors:
///
///   unjoined-wait        wait reachable while possibly unjoined
///   join-leak            membership may still be pending at function exit
///   dead-join            join with no reachable wait or cancel
///   double-join          join overwrites a dominating join's membership
///   realloc-overlap      wait whose membership was overwritten en route
///   blocked-while-joined membership held while blocking at a wait
///   call-hazard          membership held at a call that gathers on entry
///   interproc-leak       callee may not discharge its entry obligation
///   deadlock-cycle       proven mutual wait cycle (guaranteed deadlock)
///   soft-threshold       soft-wait threshold out of range
///
/// Diagnostics carry severity, location, barrier id and witness evidence,
/// and are mirrored into the PR-3 remark stream when one is installed.
/// The analyzer is the single source of truth for barrier discipline: the
/// pipeline gate and the legacy BarrierVerifier entry points both run it.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_LINT_CONVERGENCELINT_H
#define SIMTSR_LINT_CONVERGENCELINT_H

#include "ir/Opcode.h"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace simtsr {
class Module;
}

namespace simtsr::lint {

enum class LintSeverity : uint8_t {
  Note,    ///< Informational; never gates a pipeline.
  Warning, ///< May-fact: wrong on some path or under some schedule.
  Error,   ///< Must-fact: wrong on every path that reaches the location.
};

enum class LintKind : uint8_t {
  UnjoinedWait,
  JoinLeak,
  DeadJoin,
  DoubleJoin,
  ReallocOverlap,
  BlockedWhileJoined,
  CallHazard,
  InterprocLeak,
  DeadlockCycle,
  SoftThreshold,
  Recursion,
};

/// \returns a stable kebab-case name ("join-leak", "deadlock-cycle", ...).
const char *getLintKindName(LintKind K);
/// \returns "note", "warning" or "error".
const char *getLintSeverityName(LintSeverity S);

/// Why a barrier register exists. Mirrors the transform layer's
/// BarrierOrigin without depending on it (the transform library links
/// against the lint, not the other way round); Unknown covers user-written
/// barriers and post-realloc registers.
enum class LintOrigin : uint8_t {
  Unknown = 0,
  Pdom,
  Speculative,
  RegionExit,
  Interproc,
};

struct LintDiagnostic {
  LintKind Kind = LintKind::JoinLeak;
  LintSeverity Severity = LintSeverity::Warning;
  std::string Function; ///< No '@' sigil; empty for module-level findings.
  std::string Block;    ///< Anchor block name; empty when function-level.
  size_t Index = 0;     ///< Instruction index within Block.
  unsigned Barrier = ~0u; ///< Barrier register id, or ~0u when none.
  /// Complete human-readable line, "@func:block: ..." — byte-compatible
  /// with the old BarrierVerifier texts for the migrated checks.
  std::string Message;
  /// Optional evidence: the path, partner site or callee that makes the
  /// finding concrete.
  std::string Witness;

  /// Machine-readable witness fields consumed by the repair synthesizer
  /// (lint/Repair.h). format() never prints them, so the golden diagnostic
  /// stream is independent of how much evidence a detector records.
  unsigned Barrier2 = ~0u; ///< Partner barrier (deadlock-cycle: held id).
  std::string Block2;      ///< Partner site's block (deadlock-cycle).
  size_t Index2 = 0;       ///< Partner site's instruction index.
  uint64_t SiteBits = 0;   ///< JoinSiteTable bits backing the finding.
  std::string Callee;      ///< Callee (call-hazard / interproc-leak).

  /// "severity: message (kind)[; witness]" — the CLI / golden line format.
  std::string format() const;
};

struct LintOptions {
  /// Warp width for the soft-threshold sanity check.
  unsigned WarpSize = 32;
  /// Mirror findings into the installed remark stream. Mid-pipeline
  /// expensive checks turn this off: transient warnings there are expected
  /// and would pollute the stream.
  bool Remarks = true;
  /// When true, Origins drives the origin-filtered detectors exactly like
  /// the old verifyDeconflicted; when false, conflict analysis stands in.
  bool OriginAware = false;
  std::array<LintOrigin, NumBarrierRegisters> Origins{};
};

struct LintResult {
  std::vector<LintDiagnostic> Diagnostics;
  /// True when a deadlock-cycle finding proved a guaranteed deadlock
  /// (modulo the guarding branch actually diverging at run time).
  bool ProvenDeadlock = false;

  unsigned count(LintSeverity S) const;
  unsigned countKind(LintKind K) const;
  /// No errors and no warnings (notes allowed).
  bool clean() const;
  /// Messages of every Warning/Error finding — the pipeline gate format
  /// (drop-in for the old verifier's diagnostics vector).
  std::vector<std::string> gateStrings() const;
};

/// Runs the full analyzer over \p M. Recomputes predecessor lists; emits
/// each finding as a "lint" remark when a remark scope is installed.
LintResult runConvergenceLint(Module &M, const LintOptions &Opts = {});

} // namespace simtsr::lint

#endif // SIMTSR_LINT_CONVERGENCELINT_H
