//===- BarrierVerifier.cpp - Synchronization discipline checks ----------------===//

#include "transform/BarrierVerifier.h"

#include "ir/Function.h"
#include "ir/Module.h"

#include <initializer_list>

using namespace simtsr;

lint::LintOptions simtsr::lintOptionsFromRegistry(const BarrierRegistry &Reg) {
  lint::LintOptions Opts;
  Opts.OriginAware = true;
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    auto Origin = Reg.origin(B);
    if (!Origin)
      continue;
    switch (*Origin) {
    case BarrierOrigin::PdomSync:
      Opts.Origins[B] = lint::LintOrigin::Pdom;
      break;
    case BarrierOrigin::Speculative:
      Opts.Origins[B] = lint::LintOrigin::Speculative;
      break;
    case BarrierOrigin::RegionExit:
      Opts.Origins[B] = lint::LintOrigin::RegionExit;
      break;
    case BarrierOrigin::Interproc:
      Opts.Origins[B] = lint::LintOrigin::Interproc;
      break;
    }
  }
  return Opts;
}

static std::vector<std::string>
runFiltered(Function &F, const BarrierRegistry &Reg,
            std::initializer_list<lint::LintKind> Kinds) {
  const lint::LintResult R =
      lint::runConvergenceLint(*F.parent(), lintOptionsFromRegistry(Reg));
  std::vector<std::string> Diags;
  for (const lint::LintDiagnostic &D : R.Diagnostics) {
    if (D.Severity == lint::LintSeverity::Note || D.Function != F.name())
      continue;
    for (lint::LintKind K : Kinds)
      if (D.Kind == K) {
        Diags.push_back(D.Message);
        break;
      }
  }
  return Diags;
}

std::vector<std::string>
simtsr::verifyBarrierDiscipline(Function &F, const BarrierRegistry &Reg) {
  return runFiltered(F, Reg, {lint::LintKind::JoinLeak});
}

std::vector<std::string>
simtsr::verifyDeconflicted(Function &F, const BarrierRegistry &Reg) {
  return runFiltered(F, Reg,
                     {lint::LintKind::BlockedWhileJoined,
                      lint::LintKind::CallHazard,
                      lint::LintKind::InterprocLeak});
}
