//===- BarrierVerifier.cpp - Synchronization discipline checks ----------------===//

#include "transform/BarrierVerifier.h"

#include "analysis/BarrierAnalysis.h"
#include "ir/Function.h"
#include "transform/Deconfliction.h"

using namespace simtsr;

std::vector<std::string>
simtsr::verifyBarrierDiscipline(Function &F, const BarrierRegistry &Reg) {
  std::vector<std::string> Diags;
  JoinedBarrierAnalysis Joined(F);
  for (BasicBlock *BB : F) {
    if (!BB->hasTerminator() || BB->terminator().opcode() != Opcode::Ret)
      continue;
    uint32_t AtRet = Joined.before(BB, BB->size() - 1);
    for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
      if (!(AtRet & (1u << B)))
        continue;
      auto Origin = Reg.origin(B);
      if (Origin && *Origin == BarrierOrigin::Interproc)
        continue; // Cleared by the callee-side wait or thread exit.
      Diags.push_back("@" + F.name() + ":" + BB->name() + ": barrier b" +
                      std::to_string(B) +
                      " may still be joined at function exit");
    }
  }
  return Diags;
}

std::vector<std::string>
simtsr::verifyDeconflicted(Function &F, const BarrierRegistry &Reg) {
  std::vector<std::string> Diags;

  // Primary hazard check: no PDOM barrier may still be joined when a
  // thread blocks at a speculative/interprocedural wait.
  JoinedBarrierAnalysis Joined(F);
  uint32_t PdomMask = 0, SpecMask = 0, AnyOriginMask = 0;
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    auto Origin = Reg.origin(B);
    if (!Origin)
      continue;
    AnyOriginMask |= 1u << B;
    if (*Origin == BarrierOrigin::PdomSync)
      PdomMask |= 1u << B;
    if (*Origin == BarrierOrigin::Speculative)
      SpecMask |= 1u << B;
  }
  for (BasicBlock *BB : F) {
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      const bool IsWait = Inst.opcode() == Opcode::WaitBarrier ||
                          Inst.opcode() == Opcode::SoftWait;
      if (!IsWait)
        continue;
      auto Origin = Reg.origin(Inst.barrierId());
      if (!Origin || (*Origin != BarrierOrigin::Speculative &&
                      *Origin != BarrierOrigin::Interproc))
        continue;
      uint32_t Held =
          Joined.before(BB, I) & PdomMask & ~(1u << Inst.barrierId());
      for (unsigned B = 0; B < NumBarrierRegisters; ++B)
        if (Held & (1u << B))
          Diags.push_back("@" + F.name() + ":" + BB->name() +
                          ": PDOM barrier b" + std::to_string(B) +
                          " still joined at speculative wait on b" +
                          std::to_string(Inst.barrierId()));
      // Cross-speculative overlap: two gathers can deadlock each other
      // (overlapping predictions are future work per Section 6).
      uint32_t HeldSpec =
          Joined.before(BB, I) & SpecMask & ~(1u << Inst.barrierId());
      for (unsigned B = 0; B < NumBarrierRegisters; ++B)
        if (HeldSpec & (1u << B))
          Diags.push_back("@" + F.name() + ":" + BB->name() +
                          ": speculative barrier b" + std::to_string(B) +
                          " still joined at speculative wait on b" +
                          std::to_string(Inst.barrierId()) +
                          " (overlapping predictions)");
    }
  }

  // Interprocedural hazard: a call into a function that may block on an
  // interprocedural entry barrier is a wait site from the caller's
  // perspective — the thread suspends inside the callee until threads
  // outside it arrive. Any compiler-managed membership still held at such
  // a call (other than the entry barriers the callee itself gathers on)
  // can cross-deadlock against that wait.
  for (BasicBlock *BB : F) {
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.opcode() != Opcode::Call)
        continue;
      Function *Callee = Inst.operand(0).getFunc();
      const uint32_t Blocking = entryBarriersBlockingCall(Callee, Reg);
      if (!Blocking)
        continue;
      const uint32_t Held = Joined.before(BB, I) & AnyOriginMask & ~Blocking;
      for (unsigned B = 0; B < NumBarrierRegisters; ++B)
        if (Held & (1u << B))
          Diags.push_back("@" + F.name() + ":" + BB->name() +
                          ": barrier b" + std::to_string(B) +
                          " still joined at call to @" + Callee->name() +
                          ", which blocks on an entry barrier");
    }
  }

  // Note: Section 4.3's non-inclusive live-range overlap (exposed by
  // BarrierConflictAnalysis) is intentionally NOT re-checked here — after
  // dynamic deconfliction a PDOM barrier legitimately keeps a small range
  // of its own beyond the speculative one (its wait at the post-dominator
  // runs after the speculative barrier was cancelled), which is harmless:
  // the actual hazard is blocking while still joined, checked above.
  return Diags;
}
