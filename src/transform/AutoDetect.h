//===- AutoDetect.h - Section 4.5 automatic detection ----------*- C++ -*-===//
///
/// \file
/// Compiler heuristics that find speculative-reconvergence opportunities
/// without user hints: Loop Merge (an inner loop with a divergent trip
/// count nested in an outer loop) and Iteration Delay (a divergent branch
/// with an expensive arm inside a loop). Profitability weighs the common
/// code against the prolog/epilog that would become divergent, using
/// static latency estimates or, when available, a per-block execution
/// profile from a prior simulator run (the paper's "profile information
/// may help improve the accuracy of our profitability tests").
///
/// Vetoes (Section 4.5): regions containing warp-synchronous operations
/// or pre-existing user synchronization are rejected, and loads in the
/// refill path are charged a divergent-access penalty.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_AUTODETECT_H
#define SIMTSR_TRANSFORM_AUTODETECT_H

#include "sim/LatencyModel.h"
#include "sim/SimStats.h"

#include <string>
#include <vector>

namespace simtsr {

class BasicBlock;
class Function;
class Module;

struct AutoDetectOptions {
  /// Accept a candidate when bodyWeight / refillWeight >= this ratio.
  double MinGainRatio = 3.0;
  /// Static trip-count guess for loops with unknown bounds.
  double AssumedTripCount = 8.0;
  /// Extra weight multiplier charged to loads on the refill path (their
  /// previously convergent accesses become divergent).
  double DivergentLoadPenalty = 2.0;
  /// Latency model for static instruction weights.
  LatencyModel Latency = LatencyModel::computeBound();
  /// Optional per-block profile from a previous run; when set, block
  /// weights come from measured cycles instead of static estimates.
  const SimStats *Profile = nullptr;
  /// Insert predict directives for profitable candidates.
  bool Apply = true;
};

struct AutoCandidate {
  enum class Kind { LoopMerge, IterationDelay };
  Kind PatternKind;
  Function *F;
  BasicBlock *RegionStart; ///< Where the predict directive goes.
  BasicBlock *Label;       ///< Proposed reconvergence point.
  double BodyWeight = 0;   ///< Weight of the common code.
  double RefillWeight = 0; ///< Weight of the newly divergent refill path.
  double Score = 0;        ///< BodyWeight / max(RefillWeight, 1).
  bool Profitable = false;
  std::string Reason; ///< Human-readable accept/reject note.
  /// Blocks the prediction region would cover; used to reject overlapping
  /// predictions (left to future work in Section 6).
  std::vector<const BasicBlock *> RegionBlocks;
};

struct AutoDetectReport {
  std::vector<AutoCandidate> Candidates;
  unsigned Inserted = 0; ///< Predict directives placed.
};

/// Scans \p M for opportunities; inserts predict directives for the
/// profitable ones when Opts.Apply is set. Run before the synchronization
/// pipeline (the SR pass then consumes the directives).
AutoDetectReport detectReconvergence(Module &M, const AutoDetectOptions &Opts);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_AUTODETECT_H
