//===- PassStage.h - Composable pass-pipeline stages -----------*- C++ -*-===//
///
/// \file
/// The pipeline layer's composition API. A pipeline is no longer a bag of
/// booleans: it is a *named sequence of stages*, each stage a registered
/// PassStageDef that knows how to run itself over a module, whether the
/// expensive per-stage verifier applies after it, and how to describe
/// itself to `--list-pipelines`.
///
/// Three layers:
///
///  - `passStageRegistry()` — the canonical stage vocabulary
///    (strip-predicts, meld, pdom-sync, sr, interproc, deconflict, verify,
///    realloc). Adding an optimizer means registering one stage here.
///  - `PipelineSpec` — an ordered stage list plus the parameter block
///    (`PipelineParams`) the stages read. Build one by hand, through
///    `PipelineBuilder`, from a catalog name via `standardPipelineSpec()`,
///    or implicitly from a legacy `PipelineOptions` (every historical
///    options combination maps to a stage list bit-compatibly).
///  - `pipelineCatalog()` — the named configurations every tool, the
///    differential oracle, the golden digest tests and the serve cache
///    agree on. `standardPipelineNames()` is a view of this data.
///
/// Serve cache keys derive from the stage list (see
/// serve::pipelineCacheAxes), so a pipeline's identity is its composition,
/// not an options-struct encoding.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_PASSSTAGE_H
#define SIMTSR_TRANSFORM_PASSSTAGE_H

#include "transform/Pipeline.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace simtsr {

/// Everything a stage may read beyond the module: per-pass options and the
/// remark sink. One block shared by all stages of a spec.
struct PipelineParams {
  SROptions SR;
  MeldOptions Meld;
  DeconflictStrategy Deconflict = DeconflictStrategy::Dynamic;
  /// Structured pass remarks land here for the pipeline's extent
  /// (installed as the thread's remark scope). Null disables emission.
  observe::RemarkStream *Remarks = nullptr;
};

/// An ordered stage list plus its parameters — the unit every pipeline
/// consumer passes around.
struct PipelineSpec {
  std::vector<std::string> Stages;
  PipelineParams Params;

  PipelineSpec() = default;
  /// Compatibility bridge: every legacy options combination maps onto the
  /// stage list runSyncPipeline(PipelineOptions) historically executed.
  /*implicit*/ PipelineSpec(const PipelineOptions &O);
};

/// The legacy options -> stage list mapping (strip-predicts only without
/// SR, the always-on deconflict + verify tail, realloc last).
std::vector<std::string> stageListForOptions(const PipelineOptions &O);

/// Fluent construction for hand-rolled pipelines (tests, experiments).
class PipelineBuilder {
public:
  PipelineBuilder &stage(std::string Name) {
    S.Stages.push_back(std::move(Name));
    return *this;
  }
  PipelineBuilder &stages(std::initializer_list<const char *> Names) {
    for (const char *N : Names)
      S.Stages.push_back(N);
    return *this;
  }
  PipelineBuilder &softThreshold(int T) {
    S.Params.SR.SoftThreshold = T;
    return *this;
  }
  PipelineBuilder &regionExitBarrier(bool On) {
    S.Params.SR.RegionExitBarrier = On;
    return *this;
  }
  PipelineBuilder &meld(MeldOptions M) {
    S.Params.Meld = M;
    return *this;
  }
  PipelineBuilder &deconflict(DeconflictStrategy D) {
    S.Params.Deconflict = D;
    return *this;
  }
  PipelineBuilder &remarks(observe::RemarkStream *R) {
    S.Params.Remarks = R;
    return *this;
  }
  PipelineSpec build() const { return S; }

private:
  PipelineSpec S;
};

/// One registered stage: the unit of pipeline composition.
struct PassStageDef {
  std::string Name;    ///< Canonical stage name ("pdom-sync", "meld", ...).
  std::string Summary; ///< One line for --list-pipelines and docs.
  /// Re-verify the module (IR verifier + lint must-facts) after this stage
  /// under SIMTSR_EXPENSIVE_CHECKS.
  bool CheckAfter = false;
  /// The stage invalidates the registry's id->origin map (realloc), so the
  /// per-stage check must run origin-blind.
  bool OriginBlind = false;
  std::function<void(Module &, PipelineReport &, const PipelineParams &)> Run;
};

/// The stage vocabulary, in canonical documentation order.
const std::vector<PassStageDef> &passStageRegistry();

/// \returns the registered stage named \p Name, or nullptr.
const PassStageDef *findPassStage(const std::string &Name);

/// One named pipeline configuration: the data behind
/// standardPipelineNames().
struct PipelineDef {
  std::string Name;
  std::string Summary;
  std::vector<std::string> Stages;
  /// The configuration consumes the --soft-threshold parameter (the "soft"
  /// config); all others run classic full-warp waits.
  bool UsesSoftThreshold = false;
};

/// The standard configuration catalog, in canonical order. Legacy names
/// (noop, pdom, sr, sr+ip, soft, sr+ip+realloc) keep their historical
/// stage semantics byte-for-byte; the meld configs extend the list.
const std::vector<PipelineDef> &pipelineCatalog();

/// \returns the catalog entry named \p Name, or nullptr.
const PipelineDef *findPipelineDef(const std::string &Name);

/// Resolves a catalog name to a runnable spec (std::nullopt for unknown
/// names). \p SoftThreshold parameterizes configs with UsesSoftThreshold.
std::optional<PipelineSpec>
standardPipelineSpec(const std::string &Name, int SoftThreshold = 8);

/// Runs \p Spec's stages over \p M in order. Unknown stage names land in
/// VerifierDiagnostics (the report is not clean()). This is the pipeline
/// core; the PipelineOptions overload adapts onto it.
PipelineReport runSyncPipeline(Module &M, const PipelineSpec &Spec);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_PASSSTAGE_H
