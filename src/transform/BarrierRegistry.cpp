//===- BarrierRegistry.cpp - Module-wide barrier allocation -------------------===//

#include "transform/BarrierRegistry.h"

#include <cassert>

using namespace simtsr;

const char *simtsr::getBarrierOriginName(BarrierOrigin O) {
  switch (O) {
  case BarrierOrigin::PdomSync:
    return "pdom";
  case BarrierOrigin::Speculative:
    return "speculative";
  case BarrierOrigin::RegionExit:
    return "region-exit";
  case BarrierOrigin::Interproc:
    return "interprocedural";
  }
  return "unknown";
}

std::optional<unsigned> BarrierRegistry::allocateLow(BarrierOrigin Origin,
                                                     std::string Note) {
  for (unsigned Id = 0; Id < NumBarrierRegisters; ++Id) {
    if (Allocated.count(Id))
      continue;
    Allocated[Id] = {Origin, std::move(Note)};
    return Id;
  }
  return std::nullopt;
}

std::optional<unsigned> BarrierRegistry::allocateHigh(BarrierOrigin Origin,
                                                      std::string Note) {
  for (unsigned Id = NumBarrierRegisters; Id-- > 0;) {
    if (Allocated.count(Id))
      continue;
    Allocated[Id] = {Origin, std::move(Note)};
    return Id;
  }
  return std::nullopt;
}

std::optional<BarrierOrigin> BarrierRegistry::origin(unsigned Id) const {
  auto It = Allocated.find(Id);
  if (It == Allocated.end())
    return std::nullopt;
  return It->second.Origin;
}

void BarrierRegistry::release(unsigned Id) {
  assert(Allocated.count(Id) && "releasing unallocated barrier");
  Allocated.erase(Id);
}
