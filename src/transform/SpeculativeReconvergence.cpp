//===- SpeculativeReconvergence.cpp - Section 4.2 synchronization -------------===//

#include "transform/SpeculativeReconvergence.h"

#include "analysis/BarrierAnalysis.h"
#include "analysis/Dominators.h"
#include "ir/CFGUtils.h"
#include "observe/Remark.h"

#include <algorithm>
#include <map>

using namespace simtsr;
using observe::RemarkKind;

namespace {

/// Removes the predict directive of \p R from its block.
void consumePredict(const PredictionRegion &R) {
  auto &Insts = R.Start->instructions();
  Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(R.PredictIndex));
}

/// Applies synchronization for one region. \returns nullopt when the region
/// must be skipped (diagnostics appended to \p Report).
std::optional<AppliedRegion> applyOne(Function &F, const PredictionRegion &R,
                                      BarrierRegistry &Registry,
                                      const SROptions &Opts,
                                      SRReport &Report) {
  DominatorTree DT(F);
  if (!DT.dominates(R.Start, R.Label)) {
    Report.Diagnostics.push_back(
        "@" + F.name() + ": predict in '" + R.Start->name() +
        "' does not dominate label '" + R.Label->name() + "'; skipped");
    if (observe::remarksEnabled())
      observe::emitRemark("sr", RemarkKind::Skipped, F.name(),
                          R.Start->name(),
                          "predict does not dominate label '" +
                              R.Label->name() + "'",
                          {{"label", R.Label->name()}});
    return std::nullopt;
  }
  if (R.Start == R.Label) {
    Report.Diagnostics.push_back("@" + F.name() + ": predict label '" +
                                 R.Label->name() +
                                 "' is the region start; skipped");
    if (observe::remarksEnabled())
      observe::emitRemark("sr", RemarkKind::Skipped, F.name(),
                          R.Start->name(),
                          "predict label is the region start",
                          {{"label", R.Label->name()}});
    return std::nullopt;
  }

  // Overlapping concurrent predictions are future work (Section 6): a
  // thread blocking at this region's gather while still joined to another
  // speculative barrier can cross-deadlock. Skip when any speculative or
  // region-exit barrier may be joined at the new reconvergence point.
  {
    JoinedBarrierAnalysis Joined(F);
    uint32_t Held = Joined.before(R.Label, 0);
    for (unsigned Id = 0; Id < NumBarrierRegisters; ++Id) {
      if (!(Held & (1u << Id)))
        continue;
      auto Origin = Registry.origin(Id);
      if (Origin && (*Origin == BarrierOrigin::Speculative ||
                     *Origin == BarrierOrigin::RegionExit)) {
        Report.Diagnostics.push_back(
            "@" + F.name() + ": prediction region for '" +
            R.Label->name() +
            "' overlaps an already applied prediction; skipped");
        if (observe::remarksEnabled())
          observe::emitRemark("sr", RemarkKind::Skipped, F.name(),
                              R.Start->name(),
                              "region overlaps an already applied "
                              "prediction",
                              {{"label", R.Label->name()},
                               {"held-barrier", "b" + std::to_string(Id)}});
        return std::nullopt;
      }
    }
  }

  auto Gather = Registry.allocateLow(BarrierOrigin::Speculative,
                                     F.name() + ":" + R.Label->name());
  if (!Gather) {
    ++Report.PdomFallbacks;
    Report.Diagnostics.push_back(
        "@" + F.name() + ": out of barrier registers for region '" +
        R.Label->name() + "'; falling back to PDOM-only synchronization");
    if (observe::remarksEnabled())
      observe::emitRemark("sr", RemarkKind::Downgrade, F.name(),
                          R.Start->name(),
                          "out of barrier registers; falling back to "
                          "PDOM-only synchronization",
                          {{"label", R.Label->name()}});
    return std::nullopt;
  }

  AppliedRegion Applied;
  Applied.Start = R.Start;
  Applied.Label = R.Label;
  Applied.GatherBarrier = *Gather;

  const bool Soft = Opts.SoftThreshold >= 0;

  // 1. Replace the predict with the gather join (Figure 4(a)).
  size_t StartInsertIndex = R.PredictIndex;
  consumePredict(R);
  R.Start->insert(StartInsertIndex,
                  Instruction(Opcode::JoinBarrier, NoRegister,
                              {Operand::barrier(*Gather)}));

  // 2. The wait at the predicted reconvergence point.
  if (Soft) {
    R.Label->insert(0, Instruction(Opcode::SoftWait, NoRegister,
                                   {Operand::barrier(*Gather),
                                    Operand::imm(Opts.SoftThreshold)}));
    if (observe::remarksEnabled())
      observe::emitRemark(
          "sr", RemarkKind::Analysis, F.name(), R.Label->name(),
          "soft wait with threshold " + std::to_string(Opts.SoftThreshold),
          {{"barrier", "b" + std::to_string(*Gather)},
           {"threshold", std::to_string(Opts.SoftThreshold)}});
  } else {
    R.Label->insert(0, Instruction(Opcode::WaitBarrier, NoRegister,
                                   {Operand::barrier(*Gather)}));
  }

  // 3. Rejoin where the barrier was cleared but may be waited on again
  //    (classic waits only — soft waits do not clear membership).
  if (!Soft) {
    BarrierLivenessAnalysis Liveness(F);
    if (Liveness.liveAfter(R.Label, 0) & (1u << *Gather)) {
      R.Label->insert(1, Instruction(Opcode::RejoinBarrier, NoRegister,
                                     {Operand::barrier(*Gather)}));
      Applied.RejoinInserted = true;
    }
  }

  // 4. Cancels on region exits where the barrier may still be joined.
  JoinedBarrierAnalysis Joined(F);
  const uint32_t GatherBit = 1u << *Gather;
  // Group exit edges by target; a target whose every predecessor is an
  // exiting, joined region block takes a single cancel at its entry
  // (Figure 4(d) places the cancel in BB5); otherwise edges are split.
  std::map<unsigned, std::pair<BasicBlock *, std::vector<BasicBlock *>>>
      EdgesByTargetNumber;
  for (const auto &[From, To] : R.ExitEdges)
    if (Joined.out(From) & GatherBit) {
      auto &Slot = EdgesByTargetNumber[To->number()];
      Slot.first = To;
      Slot.second.push_back(From);
    }
  // Materialize with stable pointers: edge splitting renumbers blocks.
  std::vector<std::pair<BasicBlock *, std::vector<BasicBlock *>>>
      EdgesByTarget;
  for (auto &[Number, Slot] : EdgesByTargetNumber) {
    (void)Number;
    EdgesByTarget.push_back(std::move(Slot));
  }

  for (auto &[To, Froms] : EdgesByTarget) {
    const auto &Preds = To->predecessors();
    const bool AllPredsExitHere =
        std::all_of(Preds.begin(), Preds.end(), [&](BasicBlock *P) {
          return std::find(Froms.begin(), Froms.end(), P) != Froms.end();
        });
    if (AllPredsExitHere) {
      To->insert(0, Instruction(Opcode::CancelBarrier, NoRegister,
                                {Operand::barrier(*Gather)}));
      ++Applied.CancelsInserted;
      continue;
    }
    for (BasicBlock *From : Froms) {
      BasicBlock *Mid = splitEdge(F, From, To);
      Mid->insert(0, Instruction(Opcode::CancelBarrier, NoRegister,
                                 {Operand::barrier(*Gather)}));
      ++Applied.CancelsInserted;
    }
  }
  F.recomputePreds();

  // 5. Orthogonal region-exit barrier: join at the region dominator, wait
  //    at the common post-dominator of the exits (Figure 4(d) b1).
  if (Opts.RegionExitBarrier && !R.ExitEdges.empty()) {
    PostDominatorTree PDT(F);
    BasicBlock *PostExit = nullptr;
    bool First = true;
    for (const auto &[From, To] : R.ExitEdges) {
      (void)From;
      // Edge splitting may have retargeted the edge; the original target
      // block still post-dominates the split trampoline.
      if (First) {
        PostExit = To;
        First = false;
        continue;
      }
      if (PostExit)
        PostExit = PDT.nearestCommonDominator(PostExit, To);
    }
    if (PostExit) {
      auto Exit = Registry.allocateLow(BarrierOrigin::RegionExit,
                                       F.name() + ":" + R.Label->name() +
                                           ".exit");
      if (Exit) {
        R.Start->insert(StartInsertIndex + 1,
                        Instruction(Opcode::JoinBarrier, NoRegister,
                                    {Operand::barrier(*Exit)}));
        // Place the wait after any leading cancels (Figure 4(d): BB5 runs
        // CancelBarrier(b0) before WaitBarrier(b1)).
        size_t Index = 0;
        while (Index < PostExit->size() &&
               PostExit->inst(Index).opcode() == Opcode::CancelBarrier)
          ++Index;
        PostExit->insert(Index, Instruction(Opcode::WaitBarrier, NoRegister,
                                            {Operand::barrier(*Exit)}));
        Applied.ExitBarrier = *Exit;
        if (observe::remarksEnabled())
          observe::emitRemark("sr", RemarkKind::Applied, F.name(),
                              R.Start->name(),
                              "region-exit barrier joined at region start; "
                              "wait at '" + PostExit->name() + "'",
                              {{"barrier", "b" + std::to_string(*Exit)},
                               {"post-exit", PostExit->name()}});
      } else {
        ++Report.ExitDowngrades;
        Report.Diagnostics.push_back(
            "@" + F.name() + ": out of barrier registers for region-exit "
            "barrier; region compiled without it");
        if (observe::remarksEnabled())
          observe::emitRemark("sr", RemarkKind::Downgrade, F.name(),
                              R.Start->name(),
                              "out of barrier registers for region-exit "
                              "barrier; region compiled without it");
      }
    }
  }

  // 6. Exit hygiene: a thread can reach a function exit still joined — a
  //    soft wait never clears membership, and the region-exit wait sits
  //    only at the common post-dominator of the exits. Thread exit clears
  //    membership at run time, but the static discipline (no barrier
  //    joined at ret) is kept explicit: cancel on every ret the barrier
  //    may still reach.
  {
    F.recomputePreds();
    JoinedBarrierAnalysis AtExit(F);
    uint32_t Bits = 1u << *Gather;
    if (Applied.ExitBarrier)
      Bits |= 1u << *Applied.ExitBarrier;
    for (BasicBlock *BB : F) {
      if (!BB->hasTerminator() || BB->terminator().opcode() != Opcode::Ret)
        continue;
      const uint32_t Held = AtExit.before(BB, BB->size() - 1) & Bits;
      for (unsigned Id = 0; Id < NumBarrierRegisters; ++Id)
        if (Held & (1u << Id)) {
          BB->insertBeforeTerminator(Instruction(
              Opcode::CancelBarrier, NoRegister, {Operand::barrier(Id)}));
          ++Applied.CancelsInserted;
        }
    }
  }

  if (observe::remarksEnabled())
    observe::emitRemark(
        "sr", RemarkKind::Applied, F.name(), R.Start->name(),
        "placed gather at '" + R.Start->name() + "'; reconvergence wait at '" +
            R.Label->name() + "'",
        {{"barrier", "b" + std::to_string(*Gather)},
         {"label", R.Label->name()},
         {"mode", Soft ? "soft" : "classic"},
         {"rejoin", Applied.RejoinInserted ? "yes" : "no"},
         {"cancels", std::to_string(Applied.CancelsInserted)},
         {"exit-barrier",
          Applied.ExitBarrier ? "b" + std::to_string(*Applied.ExitBarrier)
                              : "none"}});
  return Applied;
}

} // namespace

SRReport simtsr::applySpeculativeReconvergence(Function &F,
                                               BarrierRegistry &Registry,
                                               const SROptions &Opts) {
  SRReport Report;
  // Regions are re-discovered after each application because edge splitting
  // invalidates block numbering.
  while (true) {
    auto Regions = findPredictionRegions(F);
    if (Regions.empty())
      break;
    const PredictionRegion &R = Regions.front();
    auto Applied = applyOne(F, R, Registry, Opts, Report);
    if (Applied) {
      Report.Applied.push_back(*Applied);
    } else {
      ++Report.RegionsSkipped;
      // Failure paths do not consume the directive; drop it so the loop
      // terminates.
      auto &Insts = R.Start->instructions();
      auto It = std::find_if(Insts.begin(), Insts.end(),
                             [&](const Instruction &I) {
                               return I.opcode() == Opcode::Predict &&
                                      I.operand(0).getBlock() == R.Label;
                             });
      if (It != Insts.end())
        Insts.erase(It);
    }
  }
  F.recomputePreds();
  return Report;
}
