//===- Meld.h - DARM-style control-flow melding ----------------*- C++ -*-===//
///
/// \file
/// The repo's second divergence optimizer: instead of reconverging early
/// (speculative reconvergence), *meld* the two arms of a divergent branch
/// into predicated straight-line code, DARM-style (arXiv 2107.05681).
///
/// For every divergent diamond — `br c, T, E` where T and E are
/// single-entry, single-exit arms funnelling into one join — the pass
/// aligns the arms' instruction sequences with gap-penalty sequence
/// alignment over opcode/operand-shape fingerprints. Aligned instruction
/// pairs are melded into merged blocks that every thread executes once,
/// with per-operand `select c, thenOp, elseOp` feeds so each thread still
/// computes exactly its own side's values. Unalignable residue stays
/// behind as shortened divergent stubs guarded by the original condition,
/// so arbitrary (non-speculatable) instructions are legal there.
///
/// The transformation is semantics-preserving per thread: every thread
/// executes the same instruction trace it would have executed before, in
/// the same order, only co-scheduled with the other arm's threads. That is
/// what lets the differential oracle demand bit-identical checksums
/// against the unsynchronized baseline.
///
/// Every meld/reject decision is reported as a structured remark under
/// pass name "meld" (observe/Remark.h).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_MELD_H
#define SIMTSR_TRANSFORM_MELD_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simtsr {

class DivergenceAnalysis;
class Function;
class Instruction;
class Module;

struct MeldOptions {
  /// Minimum aligned pairs for a diamond to be worth restructuring; below
  /// this the branch is left alone (remark "pairs below min-pairs").
  unsigned MinPairs = 1;
  /// Safety cap on meld applications per function. Melding a diamond can
  /// expose new (stub) diamonds; each application strictly shrinks the
  /// total divergent residue, so this cap is a backstop, not a tuning
  /// knob.
  unsigned MaxIterations = 64;
};

struct MeldReport {
  /// Divergent diamonds examined as meld candidates.
  unsigned BranchesExamined = 0;
  /// Diamonds actually melded (arms replaced by merged blocks + stubs).
  unsigned BranchesMelded = 0;
  /// Instruction pairs fused into merged blocks.
  unsigned PairsMelded = 0;
  /// Residue stub blocks emitted (shortened divergent regions).
  unsigned StubsEmitted = 0;
  /// Operand-feed and register-merge selects inserted.
  unsigned SelectsInserted = 0;
  /// Candidates rejected (each explained by a "meld" Skipped remark).
  unsigned Skipped = 0;
};

/// One step of an arm-to-arm alignment: indices into the then/else
/// instruction sequences, or MeldGap on the side that sits out this step.
constexpr size_t MeldGap = static_cast<size_t>(-1);
struct MeldAlignStep {
  size_t ThenIndex = MeldGap;
  size_t ElseIndex = MeldGap;

  bool isPair() const { return ThenIndex != MeldGap && ElseIndex != MeldGap; }
};

/// Opcode/operand-shape fingerprint: two instructions may meld into one
/// predicated instruction iff their fingerprints are equal (same opcode,
/// same dst-ness, same operand kinds). Register numbers and immediate
/// values are deliberately not part of the shape — differing values are
/// fed through operand selects.
uint64_t meldFingerprint(const Instruction &I);

/// True when \p I may be melded into a merged (both-arms) block: pure ALU
/// and data movement, per-thread memory ops, and the per-thread random
/// stream. Atomics, barrier ops, annotations and terminators must stay in
/// guarded stubs where only their own threads execute them. Calls are
/// handled separately (isMeldableCall below).
bool isMeldableInstruction(const Instruction &I);

/// True when call \p I may be melded: the callee body is itself meld-safe
/// (only meldable instructions and plain control flow — no barriers,
/// warp syncs, atomics, annotations or nested calls). Calls push a
/// per-thread frame with per-thread argument values, so a melded call is
/// exact per thread; the callee restriction keeps warp-shared state out.
/// The two arms' calls only pair when they name the same callee — the
/// fingerprint of a call mixes in the callee's name, so alignment never
/// pairs calls to different functions. This is the paper's Figure 2(c)
/// common-call pattern, melded instead of reconverged.
bool isMeldableCall(const Instruction &I);

/// Gap-penalty global alignment (Needleman-Wunsch) over fingerprint
/// sequences: maximizes matches, pays a constant penalty per gap, and
/// never pairs unequal fingerprints. \p ThenPairable / \p ElsePairable
/// mask instructions that must not be paired even when shapes match.
/// Steps come back in sequence order; indices on each side are strictly
/// increasing (alignment preserves per-thread program order).
std::vector<MeldAlignStep>
alignFingerprints(const std::vector<uint64_t> &Then,
                  const std::vector<uint64_t> &Else,
                  const std::vector<bool> &ThenPairable,
                  const std::vector<bool> &ElsePairable);

/// Melds divergent diamonds of \p F to a fixpoint. \p DA must be current
/// for \p F; the caller re-runs divergence analysis between applications
/// (the module entry point below does).
MeldReport applyControlFlowMeld(Function &F, const DivergenceAnalysis &DA,
                                const MeldOptions &Opts = {});

/// Module driver: call-graph-refined divergence info, per-function melding
/// to a fixpoint.
MeldReport applyControlFlowMeld(Module &M, const MeldOptions &Opts = {});

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_MELD_H
