//===- Pipeline.h - Synchronization pass pipeline --------------*- C++ -*-===//
///
/// \file
/// Drives the paper's pass stack over a module in the required order:
/// (optional) automatic detection -> baseline PDOM synchronization ->
/// speculative reconvergence -> interprocedural reconvergence ->
/// deconfliction -> discipline verification. Benchmarks and examples
/// configure everything through PipelineOptions.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_PIPELINE_H
#define SIMTSR_TRANSFORM_PIPELINE_H

#include "transform/BarrierRealloc.h"
#include "transform/Deconfliction.h"
#include "transform/Interprocedural.h"
#include "transform/Meld.h"
#include "transform/PdomSync.h"
#include "transform/SpeculativeReconvergence.h"

#include <optional>
#include <string>
#include <vector>

namespace simtsr {

class Module;

namespace observe {
class RemarkStream;
} // namespace observe

struct PipelineOptions {
  /// Insert baseline PDOM barriers at divergent branches.
  bool PdomSync = true;
  /// Consume predict directives and apply speculative reconvergence.
  bool ApplySR = false;
  SROptions SR;
  /// Strip predict directives without applying them (pure-baseline runs on
  /// annotated kernels). Ignored when ApplySR is set.
  bool StripPredicts = false;
  /// Handle reconverge_entry functions.
  bool Interprocedural = false;
  DeconflictStrategy Deconflict = DeconflictStrategy::Dynamic;
  /// Recolour barrier registers as a final step (reduces pressure on the
  /// 16-register file; invalidates the registry's id->origin map, so it
  /// runs after deconfliction and verification).
  bool ReallocBarriers = false;
  /// Collect structured pass remarks into this stream for the pipeline's
  /// duration (installed as the thread's remark scope; see
  /// observe/Remark.h). Null leaves remark emission disabled.
  observe::RemarkStream *Remarks = nullptr;

  static PipelineOptions baseline() {
    PipelineOptions O;
    O.StripPredicts = true;
    return O;
  }
  static PipelineOptions speculative(DeconflictStrategy Strategy =
                                         DeconflictStrategy::Dynamic) {
    PipelineOptions O;
    O.ApplySR = true;
    O.Interprocedural = true;
    O.Deconflict = Strategy;
    return O;
  }
  static PipelineOptions softBarrier(int Threshold) {
    PipelineOptions O = speculative();
    O.SR.SoftThreshold = Threshold;
    return O;
  }
};

/// Per-stage accounting recorded while a spec runs: which stages executed,
/// in order, and how many remarks each contributed to the pipeline's
/// stream. Scoping is by count sampling, not by extra emission, so the
/// remark byte stream itself is unchanged by the redesign.
struct StageTrace {
  std::string Stage;
  unsigned Remarks = 0;
};

struct PipelineReport {
  BarrierRegistry Registry;
  MeldReport Meld;
  PdomSyncReport Pdom;
  SRReport SR;
  InterprocReport Interproc;
  DeconflictReport Deconflict;
  ReallocReport Realloc;
  /// Stages executed, in order (empty for reports produced outside the
  /// stage runner).
  std::vector<StageTrace> Stages;
  /// Barrier-discipline and residual-conflict diagnostics (test oracle).
  std::vector<std::string> VerifierDiagnostics;

  bool clean() const { return VerifierDiagnostics.empty(); }

  /// Number of sites where a pass ran out of barrier registers and
  /// degraded gracefully (PDOM-only fallback, dropped region-exit barrier,
  /// skipped entry reconvergence) instead of failing the compile.
  unsigned barrierDowngrades() const {
    return Pdom.OutOfRegisters + SR.PdomFallbacks + SR.ExitDowngrades +
           Interproc.Downgrades;
  }
};

/// Runs the configured passes over every function of \p M. Compatibility
/// adapter: maps \p Opts onto its stage list (see PassStage.h) and runs
/// that. New code should build a PipelineSpec instead.
PipelineReport runSyncPipeline(Module &M, const PipelineOptions &Opts);

/// Names of the standard pipeline configurations, in canonical order:
/// "noop", "pdom", "sr", "sr+ip", "soft", "sr+ip+realloc", then the meld
/// configs "meld", "meld+sr", "meld+sr+ip". A view over pipelineCatalog()
/// (PassStage.h): the differential oracle, the trace tool and the golden
/// digest tests all run this catalog so their config axes stay in sync.
const std::vector<std::string> &standardPipelineNames();

/// Removes every predict directive from \p M.
unsigned stripPredictDirectives(Module &M);

/// Clears every function's reconverge_entry flag. Together with
/// stripPredictDirectives this produces a fully unannotated module.
unsigned stripReconvergeEntryFlags(Module &M);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_PIPELINE_H
