//===- BarrierRealloc.cpp - Barrier-register re-allocation -----------------------===//

#include "transform/BarrierRealloc.h"

#include "analysis/BarrierAnalysis.h"
#include "ir/Module.h"

#include <algorithm>
#include <set>

using namespace simtsr;

namespace {

/// Marks, for every instruction-boundary point of \p F, which barriers are
/// joined; additionally marks the op site of every barrier instruction so
/// that barriers are considered live where they are manipulated.
std::vector<std::vector<bool>> barrierRanges(Function &F) {
  JoinedBarrierAnalysis Joined(F);
  size_t NumPoints = 0;
  for (BasicBlock *BB : F)
    NumPoints += BB->size() + 1;
  std::vector<std::vector<bool>> Ranges(
      NumBarrierRegisters, std::vector<bool>(NumPoints, false));
  size_t Point = 0;
  for (BasicBlock *BB : F) {
    uint32_t State = Joined.in(BB);
    for (size_t I = 0; I <= BB->size(); ++I) {
      if (I > 0) {
        const Instruction &Inst = BB->inst(I - 1);
        State = (State & ~barriereffect::killJoined(Inst)) |
                barriereffect::genJoined(Inst);
        if (isBarrierOp(Inst.opcode()))
          Ranges[Inst.barrierId()][Point] = true; // The op site itself.
      }
      for (unsigned B = 0; B < NumBarrierRegisters; ++B)
        if (State & (1u << B))
          Ranges[B][Point] = true;
      ++Point;
    }
  }
  return Ranges;
}

bool rangesOverlap(const std::vector<bool> &A, const std::vector<bool> &B) {
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I] && B[I])
      return true;
  return false;
}

std::set<unsigned> usedBarriers(const Function &F) {
  std::set<unsigned> Used;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      if (isBarrierOp(I.opcode()))
        Used.insert(I.barrierId());
  return Used;
}

/// Recolours \p F's barriers, skipping \p Pinned ids (kept verbatim) and
/// never assigning a pinned id as a colour. \returns old->new, or an
/// identity mapping when the colouring would exceed the register file.
std::map<unsigned, unsigned> colorFunction(Function &F, unsigned FirstColor,
                                           const std::set<unsigned> &Pinned) {
  std::map<unsigned, unsigned> Renaming;
  std::set<unsigned> Used = usedBarriers(F);
  if (Used.empty())
    return Renaming;
  auto Ranges = barrierRanges(F);

  for (unsigned Old : Used) {
    if (Pinned.count(Old)) {
      Renaming[Old] = Old;
      continue;
    }
    for (unsigned Color = FirstColor;; ++Color) {
      if (Color >= NumBarrierRegisters)
        return {}; // Out of registers: keep the original allocation.
      if (Pinned.count(Color))
        continue;
      bool Clash = false;
      for (const auto &[OtherOld, OtherNew] : Renaming)
        if (OtherNew == Color &&
            rangesOverlap(Ranges[Old], Ranges[OtherOld]))
          Clash = true;
      if (!Clash) {
        Renaming[Old] = Color;
        break;
      }
    }
  }

  // Apply.
  for (BasicBlock *BB : F)
    for (Instruction &I : BB->instructions())
      if (isBarrierOp(I.opcode()))
        I.operand(0).setBarrier(Renaming.at(I.barrierId()));
  return Renaming;
}

} // namespace

std::map<unsigned, unsigned> simtsr::reallocateBarriers(Function &F,
                                                        unsigned FirstColor) {
  return colorFunction(F, FirstColor, {});
}

ReallocReport simtsr::reallocateBarriers(Module &M) {
  ReallocReport Report;

  // Ids used by several functions are interprocedural (caller-side join,
  // callee-side wait): pin them so the linkage survives.
  std::map<unsigned, unsigned> FunctionsUsing;
  for (size_t FI = 0; FI < M.size(); ++FI)
    for (unsigned Id : usedBarriers(*M.function(FI)))
      ++FunctionsUsing[Id];
  std::set<unsigned> Pinned;
  std::set<unsigned> AllBefore;
  for (const auto &[Id, Count] : FunctionsUsing) {
    AllBefore.insert(Id);
    if (Count > 1)
      Pinned.insert(Id);
  }
  Report.BarriersBefore = static_cast<unsigned>(AllBefore.size());

  // Functions get stacked colour ranges so that two functions co-resident
  // in one warp never share a (non-pinned) register.
  unsigned NextColor = 0;
  std::set<unsigned> AllAfter(Pinned.begin(), Pinned.end());
  for (size_t FI = 0; FI < M.size(); ++FI) {
    Function &F = *M.function(FI);
    auto Renaming = colorFunction(F, NextColor, Pinned);
    if (Renaming.empty() && !usedBarriers(F).empty()) {
      // Colouring failed; the function keeps its original ids.
      for (unsigned Id : usedBarriers(F))
        AllAfter.insert(Id);
      continue;
    }
    unsigned MaxColor = 0;
    bool Any = false;
    for (const auto &[Old, New] : Renaming) {
      (void)Old;
      if (Pinned.count(New))
        continue;
      AllAfter.insert(New);
      MaxColor = std::max(MaxColor, New);
      Any = true;
    }
    if (Any)
      NextColor = MaxColor + 1;
    if (!Renaming.empty())
      Report.Renaming[F.name()] = std::move(Renaming);
  }
  Report.BarriersAfter = static_cast<unsigned>(AllAfter.size());
  return Report;
}
