//===- BarrierRealloc.cpp - Barrier-register re-allocation -----------------------===//

#include "transform/BarrierRealloc.h"

#include "analysis/Dominators.h"
#include "ir/Module.h"
#include "observe/Remark.h"

#include <algorithm>
#include <set>

using namespace simtsr;
using observe::RemarkKind;

namespace {

/// One barrier op site: (block, instruction index, opcode).
struct OpSite {
  BasicBlock *Block;
  size_t Index;
  Opcode Op;
};

/// All op sites per barrier id.
std::map<unsigned, std::vector<OpSite>> barrierOpSites(Function &F) {
  std::map<unsigned, std::vector<OpSite>> Sites;
  for (BasicBlock *BB : F)
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      if (isBarrierOp(Inst.opcode()) &&
          Inst.opcode() != Opcode::ArrivedCount)
        Sites[Inst.barrierId()].push_back({BB, I, Inst.opcode()});
    }
  return Sites;
}

/// True when op site \p A strictly precedes \p B in the dominance order.
bool strictlyDominates(const DominatorTree &DT, const OpSite &A,
                       const OpSite &B) {
  if (A.Block == B.Block)
    return A.Index < B.Index;
  return DT.dominates(A.Block, B.Block);
}

/// Per-block forward reachability through at least one CFG edge.
struct EdgeReachability {
  std::vector<std::vector<bool>> Reach; // [from][to]

  explicit EdgeReachability(Function &F) : Reach(F.size()) {
    for (BasicBlock *BB : F) {
      std::vector<bool> &R = Reach[BB->number()];
      R.assign(F.size(), false);
      std::vector<BasicBlock *> Worklist = BB->successors();
      while (!Worklist.empty()) {
        BasicBlock *Next = Worklist.back();
        Worklist.pop_back();
        if (R[Next->number()])
          continue;
        R[Next->number()] = true;
        for (BasicBlock *S : Next->successors())
          Worklist.push_back(S);
      }
    }
  }

  /// True when execution can pass op \p A and later reach op \p B.
  bool opReaches(const OpSite &A, const OpSite &B) const {
    if (A.Block == B.Block && B.Index > A.Index)
      return true;
    return Reach[A.Block->number()][B.Block->number()];
  }
};

/// True when barrier \p X provably completes before barrier \p Y can begin
/// for every lane of the warp. Under independent thread scheduling a lane
/// can run arbitrarily far ahead of its warp-mates, so statically disjoint
/// joined ranges are NOT enough for two barriers to share a register: one
/// lane can sit inside X's range while another executes Y's join on the
/// same physical register, clobbering the participant mask (a join
/// overwrites it) and deadlocking the warp. The only separation the
/// hardware offers is a classic wait: no lane passes it before the
/// barrier releases and its membership clears. We therefore require every
/// op of \p Y to be dominated by a classic wait of \p X, every op of \p X
/// to dominate every op of \p Y (so X cannot come back to life later),
/// and \p X to have no soft waits (soft releases do not clear
/// membership). Dominance alone is not execution order in a cycle — a
/// loop header's op dominates the loop body yet re-executes after it — so
/// no op of \p X may be reachable from any op of \p Y.
bool completesBefore(const DominatorTree &DT, const EdgeReachability &ER,
                     const std::vector<OpSite> &X,
                     const std::vector<OpSite> &Y) {
  bool HasClassicWait = false;
  for (const OpSite &Op : X) {
    if (Op.Op == Opcode::SoftWait)
      return false;
    if (Op.Op == Opcode::WaitBarrier)
      HasClassicWait = true;
  }
  if (!HasClassicWait)
    return false;
  for (const OpSite &OpX : X)
    for (const OpSite &OpY : Y)
      if (!strictlyDominates(DT, OpX, OpY) || ER.opReaches(OpY, OpX))
        return false;
  for (const OpSite &OpY : Y) {
    bool Separated = false;
    for (const OpSite &OpX : X)
      if (OpX.Op == Opcode::WaitBarrier && strictlyDominates(DT, OpX, OpY)) {
        Separated = true;
        break;
      }
    if (!Separated)
      return false;
  }
  return true;
}

/// True when \p X and \p Y may share one physical barrier register.
bool canShare(const DominatorTree &DT, const EdgeReachability &ER,
              const std::vector<OpSite> &X, const std::vector<OpSite> &Y) {
  return completesBefore(DT, ER, X, Y) || completesBefore(DT, ER, Y, X);
}

std::set<unsigned> usedBarriers(const Function &F) {
  std::set<unsigned> Used;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      if (isBarrierOp(I.opcode()))
        Used.insert(I.barrierId());
  return Used;
}

/// Recolours \p F's barriers, skipping \p Pinned ids (kept verbatim) and
/// never assigning a pinned id as a colour. \returns old->new, or an
/// identity mapping when the colouring would exceed the register file.
std::map<unsigned, unsigned> colorFunction(Function &F, unsigned FirstColor,
                                           const std::set<unsigned> &Pinned) {
  std::map<unsigned, unsigned> Renaming;
  std::set<unsigned> Used = usedBarriers(F);
  if (Used.empty())
    return Renaming;
  auto Sites = barrierOpSites(F);
  DominatorTree DT(F);
  EdgeReachability ER(F);

  for (unsigned Old : Used) {
    if (Pinned.count(Old)) {
      Renaming[Old] = Old;
      continue;
    }
    for (unsigned Color = FirstColor;; ++Color) {
      if (Color >= NumBarrierRegisters)
        return {}; // Out of registers: keep the original allocation.
      if (Pinned.count(Color))
        continue;
      bool Clash = false;
      for (const auto &[OtherOld, OtherNew] : Renaming)
        if (OtherNew == Color &&
            !canShare(DT, ER, Sites[Old], Sites[OtherOld]))
          Clash = true;
      if (!Clash) {
        Renaming[Old] = Color;
        break;
      }
    }
  }

  // Apply.
  for (BasicBlock *BB : F)
    for (Instruction &I : BB->instructions())
      if (isBarrierOp(I.opcode()))
        I.operand(0).setBarrier(Renaming.at(I.barrierId()));
  return Renaming;
}

} // namespace

std::map<unsigned, unsigned> simtsr::reallocateBarriers(Function &F,
                                                        unsigned FirstColor) {
  return colorFunction(F, FirstColor, {});
}

ReallocReport simtsr::reallocateBarriers(Module &M) {
  ReallocReport Report;

  // Ids used by several functions are interprocedural (caller-side join,
  // callee-side wait): pin them so the linkage survives.
  std::map<unsigned, unsigned> FunctionsUsing;
  for (size_t FI = 0; FI < M.size(); ++FI)
    for (unsigned Id : usedBarriers(*M.function(FI)))
      ++FunctionsUsing[Id];
  std::set<unsigned> Pinned;
  std::set<unsigned> AllBefore;
  for (const auto &[Id, Count] : FunctionsUsing) {
    AllBefore.insert(Id);
    if (Count > 1)
      Pinned.insert(Id);
  }
  Report.BarriersBefore = static_cast<unsigned>(AllBefore.size());

  // Functions get stacked colour ranges so that two functions co-resident
  // in one warp never share a (non-pinned) register.
  unsigned NextColor = 0;
  std::set<unsigned> AllAfter(Pinned.begin(), Pinned.end());
  for (size_t FI = 0; FI < M.size(); ++FI) {
    Function &F = *M.function(FI);
    auto Renaming = colorFunction(F, NextColor, Pinned);
    if (Renaming.empty() && !usedBarriers(F).empty()) {
      // Colouring failed; the function keeps its original ids.
      for (unsigned Id : usedBarriers(F))
        AllAfter.insert(Id);
      if (observe::remarksEnabled())
        observe::emitRemark("realloc", RemarkKind::Skipped, F.name(), "",
                            "recolouring would exceed the register file; "
                            "original allocation kept");
      continue;
    }
    unsigned MaxColor = 0;
    bool Any = false;
    for (const auto &[Old, New] : Renaming) {
      (void)Old;
      if (Pinned.count(New))
        continue;
      AllAfter.insert(New);
      MaxColor = std::max(MaxColor, New);
      Any = true;
    }
    if (Any)
      NextColor = MaxColor + 1;
    if (!Renaming.empty()) {
      if (observe::remarksEnabled()) {
        unsigned Merged = 0;
        std::set<unsigned> Colors;
        for (const auto &[Old, New] : Renaming) {
          (void)Old;
          if (!Colors.insert(New).second)
            ++Merged;
        }
        observe::emitRemark(
            "realloc", RemarkKind::Applied, F.name(), "",
            "recoloured " + std::to_string(Renaming.size()) +
                " barrier(s) into " + std::to_string(Colors.size()) +
                " register(s)",
            {{"before", std::to_string(Renaming.size())},
             {"after", std::to_string(Colors.size())},
             {"merged", std::to_string(Merged)},
             {"pinned", std::to_string(Pinned.size())}});
      }
      Report.Renaming[F.name()] = std::move(Renaming);
    }
  }
  Report.BarriersAfter = static_cast<unsigned>(AllAfter.size());
  return Report;
}
