//===- Deconfliction.cpp - Section 4.3 barrier deconfliction ------------------===//

#include "transform/Deconfliction.h"

#include "analysis/BarrierAnalysis.h"
#include "ir/Function.h"
#include "observe/Remark.h"

#include <algorithm>
#include <set>

using namespace simtsr;
using observe::RemarkKind;

namespace {

/// True for origins that designate "our" speculative synchronization, which
/// takes priority over standard PDOM synchronization (Section 4.1: user
/// hints win over conflicting compiler-inserted reconvergence).
bool isSpeculativeOrigin(BarrierOrigin O) {
  return O == BarrierOrigin::Speculative || O == BarrierOrigin::Interproc;
}

/// A speculative wait site together with the PDOM barriers a thread may
/// still be joined to when it arrives there — the Figure 5(a) hazard.
struct HazardSite {
  BasicBlock *Block;
  size_t Index;
  uint32_t Held;
};

void deleteBarrierOps(Function &F, unsigned Barrier) {
  for (BasicBlock *BB : F) {
    auto &Insts = BB->instructions();
    for (size_t I = Insts.size(); I-- > 0;) {
      const Instruction &Inst = Insts[I];
      if (!isBarrierOp(Inst.opcode()) ||
          Inst.opcode() == Opcode::ArrivedCount)
        continue;
      if (Inst.barrierId() == Barrier)
        Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(I));
    }
  }
}

/// Cancels every barrier in \p Held directly before (\p BB, \p Index),
/// skipping barriers whose cancel already sits in the run of cancels
/// immediately above. \returns the number of cancels inserted.
unsigned cancelHeldBefore(BasicBlock *BB, size_t Index, uint32_t Held) {
  unsigned Inserted = 0;
  for (unsigned B = NumBarrierRegisters; B-- > 0;) {
    if (!(Held & (1u << B)))
      continue;
    bool Already = false;
    for (size_t K = Index; K-- > 0;) {
      const Instruction &Prev = BB->inst(K);
      if (Prev.opcode() != Opcode::CancelBarrier)
        break;
      if (Prev.barrierId() == B) {
        Already = true;
        break;
      }
    }
    if (Already)
      continue;
    BB->insert(Index, Instruction(Opcode::CancelBarrier, NoRegister,
                                  {Operand::barrier(B)}));
    ++Inserted;
  }
  return Inserted;
}

} // namespace

uint32_t simtsr::entryBarriersBlockingCall(Function *Callee,
                                           const BarrierRegistry &Registry) {
  uint32_t Mask = 0;
  std::set<const Function *> Visited;
  std::vector<Function *> Worklist{Callee};
  while (!Worklist.empty()) {
    Function *F = Worklist.back();
    Worklist.pop_back();
    if (!F || !Visited.insert(F).second)
      continue;
    for (BasicBlock *BB : *F) {
      for (size_t I = 0; I < BB->size(); ++I) {
        const Instruction &Inst = BB->inst(I);
        if (Inst.opcode() == Opcode::Call) {
          Worklist.push_back(Inst.operand(0).getFunc());
          continue;
        }
        if (Inst.opcode() != Opcode::WaitBarrier &&
            Inst.opcode() != Opcode::SoftWait)
          continue;
        auto Origin = Registry.origin(Inst.barrierId());
        if (Origin && *Origin == BarrierOrigin::Interproc)
          Mask |= 1u << Inst.barrierId();
      }
    }
  }
  return Mask;
}

DeconflictReport simtsr::deconflictBarriers(Function &F,
                                            BarrierRegistry &Registry,
                                            DeconflictStrategy Strategy) {
  DeconflictReport Report;
  JoinedBarrierAnalysis Joined(F);

  // Which barriers have PDOM origin?
  uint32_t PdomMask = 0;
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    auto Origin = Registry.origin(B);
    if (Origin && *Origin == BarrierOrigin::PdomSync)
      PdomMask |= 1u << B;
  }

  // Collect hazard sites: a thread must never block at a speculative wait
  // while still a member of a PDOM barrier — the PDOM waiters could wait
  // on it (and it on them) with unpredictable results.
  std::vector<HazardSite> Sites;
  std::set<std::pair<unsigned, unsigned>> Pairs; // (spec, pdom)
  for (BasicBlock *BB : F) {
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      const bool IsWait = Inst.opcode() == Opcode::WaitBarrier ||
                          Inst.opcode() == Opcode::SoftWait;
      if (!IsWait)
        continue;
      auto Origin = Registry.origin(Inst.barrierId());
      if (!Origin || !isSpeculativeOrigin(*Origin))
        continue;
      uint32_t Held = Joined.before(BB, I) & PdomMask;
      Held &= ~(1u << Inst.barrierId());
      if (Held == 0)
        continue;
      Sites.push_back({BB, I, Held});
      for (unsigned B = 0; B < NumBarrierRegisters; ++B)
        if (Held & (1u << B))
          Pairs.insert({Inst.barrierId(), B});
    }
  }
  Report.ConflictsFound = static_cast<unsigned>(Pairs.size());
  if (observe::remarksEnabled())
    for (const auto &[Spec, Pdom] : Pairs)
      observe::emitRemark(
          "deconflict", RemarkKind::Conflict, F.name(), "",
          "speculative barrier b" + std::to_string(Spec) +
              " can block while PDOM barrier b" + std::to_string(Pdom) +
              " is still joined (Figure 5(a) hazard)",
          {{"speculative", "b" + std::to_string(Spec)},
           {"pdom", "b" + std::to_string(Pdom)}});

  if (Strategy == DeconflictStrategy::Static) {
    // Delete each conflicting PDOM barrier outright (Figure 5(b)).
    std::set<unsigned> Doomed;
    for (const auto &[Spec, Pdom] : Pairs) {
      (void)Spec;
      Doomed.insert(Pdom);
    }
    for (unsigned B : Doomed) {
      deleteBarrierOps(F, B);
      Registry.release(B);
      ++Report.BarriersDeleted;
      if (observe::remarksEnabled())
        observe::emitRemark("deconflict", RemarkKind::Applied, F.name(), "",
                            "deleted conflicting PDOM barrier b" +
                                std::to_string(B) + " (static strategy)",
                            {{"barrier", "b" + std::to_string(B)},
                             {"strategy", "static"}});
    }
    F.recomputePreds();
  } else {
    // Dynamic (Figure 5(c)): cancel each held PDOM barrier right before
    // the speculative wait. Process blocks back-to-front so indices stay
    // valid.
    std::stable_sort(Sites.begin(), Sites.end(),
                     [](const HazardSite &A, const HazardSite &B) {
                       if (A.Block != B.Block)
                         return A.Block->number() < B.Block->number();
                       return A.Index > B.Index;
                     });
    for (const HazardSite &S : Sites) {
      const unsigned Inserted = cancelHeldBefore(S.Block, S.Index, S.Held);
      Report.CancelsInserted += Inserted;
      if (Inserted && observe::remarksEnabled())
        observe::emitRemark("deconflict", RemarkKind::Applied, F.name(),
                            S.Block->name(),
                            "cancelled " + std::to_string(Inserted) +
                                " held PDOM barrier(s) before the "
                                "speculative wait (dynamic strategy)",
                            {{"cancels", std::to_string(Inserted)},
                             {"strategy", "dynamic"}});
    }
    F.recomputePreds();
  }

  // Interprocedural hazard — the same Figure 5(a) shape across a call: a
  // thread entering a reconverge_entry callee suspends at the callee-side
  // entry wait until threads outside the callee arrive, so any membership
  // it still holds at the call site can cross-deadlock against that wait
  // (PDOM waiters need the caller; the entry wait needs the PDOM waiters).
  // Intraprocedural analyses cannot see the callee's wait, so the call
  // itself is the hazard site. Resolution is always dynamic: deleting a
  // barrier over a call site would forfeit its reconvergence on every
  // path, not just the conflicting ones.
  uint32_t ConflictMask = 0;
  for (unsigned B = 0; B < NumBarrierRegisters; ++B) {
    auto Origin = Registry.origin(B);
    if (Origin && (*Origin == BarrierOrigin::PdomSync ||
                   *Origin == BarrierOrigin::Speculative ||
                   *Origin == BarrierOrigin::RegionExit ||
                   *Origin == BarrierOrigin::Interproc))
      ConflictMask |= 1u << B;
  }
  if (ConflictMask) {
    JoinedBarrierAnalysis JoinedNow(F);
    std::vector<HazardSite> CallSites;
    for (BasicBlock *BB : F) {
      for (size_t I = 0; I < BB->size(); ++I) {
        const Instruction &Inst = BB->inst(I);
        if (Inst.opcode() != Opcode::Call)
          continue;
        const uint32_t Blocking =
            entryBarriersBlockingCall(Inst.operand(0).getFunc(), Registry);
        if (!Blocking)
          continue;
        // The callee's own entry barriers stay joined — arriving at their
        // wait as a participant is the intended interprocedural gather.
        const uint32_t Held =
            JoinedNow.before(BB, I) & ConflictMask & ~Blocking;
        if (Held)
          CallSites.push_back({BB, I, Held});
      }
    }
    std::stable_sort(CallSites.begin(), CallSites.end(),
                     [](const HazardSite &A, const HazardSite &B) {
                       if (A.Block != B.Block)
                         return A.Block->number() < B.Block->number();
                       return A.Index > B.Index;
                     });
    for (const HazardSite &S : CallSites) {
      const unsigned Inserted =
          cancelHeldBefore(S.Block, S.Index, S.Held);
      Report.CancelsInserted += Inserted;
      Report.CallSiteCancels += Inserted;
      if (Inserted)
        ++Report.ConflictsFound;
      if (Inserted && observe::remarksEnabled())
        observe::emitRemark("deconflict", RemarkKind::Applied, F.name(),
                            S.Block->name(),
                            "cancelled " + std::to_string(Inserted) +
                                " held barrier(s) before a call into a "
                                "gathering callee",
                            {{"cancels", std::to_string(Inserted)},
                             {"site", "call"}});
    }
    if (!CallSites.empty())
      F.recomputePreds();
  }
  return Report;
}
