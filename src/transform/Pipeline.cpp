//===- Pipeline.cpp - Synchronization pass pipeline ---------------------------===//

#include "transform/Pipeline.h"

#include "analysis/Divergence.h"
#include "ir/Module.h"
#include "observe/Remark.h"
#include "transform/BarrierVerifier.h"

using namespace simtsr;

unsigned simtsr::stripPredictDirectives(Module &M) {
  unsigned Removed = 0;
  for (const auto &F : M) {
    for (BasicBlock *BB : *F) {
      auto &Insts = BB->instructions();
      for (size_t I = Insts.size(); I-- > 0;) {
        if (Insts[I].opcode() == Opcode::Predict) {
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(I));
          ++Removed;
        }
      }
    }
  }
  return Removed;
}

unsigned simtsr::stripReconvergeEntryFlags(Module &M) {
  unsigned Cleared = 0;
  for (const auto &F : M) {
    if (F->reconvergeAtEntry()) {
      F->setReconvergeAtEntry(false);
      ++Cleared;
    }
  }
  return Cleared;
}

namespace {

void mergeReports(SRReport &Into, SRReport From) {
  Into.Applied.insert(Into.Applied.end(), From.Applied.begin(),
                      From.Applied.end());
  Into.RegionsSkipped += From.RegionsSkipped;
  Into.PdomFallbacks += From.PdomFallbacks;
  Into.ExitDowngrades += From.ExitDowngrades;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

void mergeReports(PdomSyncReport &Into, PdomSyncReport From) {
  Into.DivergentBranches += From.DivergentBranches;
  Into.BarriersInserted += From.BarriersInserted;
  Into.Skipped += From.Skipped;
  Into.OutOfRegisters += From.OutOfRegisters;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

void mergeReports(DeconflictReport &Into, DeconflictReport From) {
  Into.ConflictsFound += From.ConflictsFound;
  Into.BarriersDeleted += From.BarriersDeleted;
  Into.CancelsInserted += From.CancelsInserted;
  Into.CallSiteCancels += From.CallSiteCancels;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

} // namespace

PipelineReport simtsr::runSyncPipeline(Module &M,
                                       const PipelineOptions &Opts) {
  PipelineReport Report;
  // Route every pass's emitRemark() calls into the caller's stream for the
  // pipeline's extent (thread-local, so concurrent oracle pipelines on
  // other pool threads are unaffected).
  observe::RemarkScope Scope(Opts.Remarks);

  if (!Opts.ApplySR && Opts.StripPredicts)
    stripPredictDirectives(M);

  if (Opts.PdomSync) {
    ModuleDivergenceInfo Divergence(M);
    for (size_t I = 0; I < M.size(); ++I) {
      Function &F = *M.function(I);
      mergeReports(Report.Pdom,
                   insertPdomSync(F, Divergence.forFunction(&F),
                                  Report.Registry));
    }
  }

  if (Opts.ApplySR)
    for (size_t I = 0; I < M.size(); ++I)
      mergeReports(Report.SR,
                   applySpeculativeReconvergence(*M.function(I),
                                                 Report.Registry, Opts.SR));

  if (Opts.Interprocedural) {
    InterprocReport IR =
        applyInterproceduralReconvergence(M, Report.Registry);
    Report.Interproc = std::move(IR);
  }

  for (size_t I = 0; I < M.size(); ++I)
    mergeReports(Report.Deconflict,
                 deconflictBarriers(*M.function(I), Report.Registry,
                                    Opts.Deconflict));

  for (size_t I = 0; I < M.size(); ++I) {
    Function &F = *M.function(I);
    auto D1 = verifyBarrierDiscipline(F, Report.Registry);
    auto D2 = verifyDeconflicted(F, Report.Registry);
    Report.VerifierDiagnostics.insert(Report.VerifierDiagnostics.end(),
                                      D1.begin(), D1.end());
    Report.VerifierDiagnostics.insert(Report.VerifierDiagnostics.end(),
                                      D2.begin(), D2.end());
  }

  // Final lowering: recolour barrier registers after all checks ran (the
  // registry's id->origin map is stale from here on).
  if (Opts.ReallocBarriers)
    Report.Realloc = reallocateBarriers(M);
  return Report;
}

const std::vector<std::string> &simtsr::standardPipelineNames() {
  static const std::vector<std::string> Names = {
      "noop", "pdom", "sr", "sr+ip", "soft", "sr+ip+realloc"};
  return Names;
}

std::optional<PipelineOptions>
simtsr::standardPipelineByName(const std::string &Name, int SoftThreshold) {
  if (Name == "noop") {
    // No synchronization at all: strip the annotations, insert nothing.
    PipelineOptions O;
    O.PdomSync = false;
    O.StripPredicts = true;
    return O;
  }
  if (Name == "pdom")
    return PipelineOptions::baseline();
  if (Name == "sr") {
    PipelineOptions O;
    O.ApplySR = true;
    return O;
  }
  if (Name == "sr+ip")
    return PipelineOptions::speculative();
  if (Name == "soft")
    return PipelineOptions::softBarrier(SoftThreshold);
  if (Name == "sr+ip+realloc") {
    PipelineOptions O = PipelineOptions::speculative();
    O.ReallocBarriers = true;
    return O;
  }
  return std::nullopt;
}
