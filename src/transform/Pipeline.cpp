//===- Pipeline.cpp - Synchronization pass pipeline ---------------------------===//

#include "transform/Pipeline.h"

#include "analysis/Divergence.h"
#include "ir/Module.h"
#include "lint/ConvergenceLint.h"
#include "observe/Remark.h"
#include "transform/BarrierVerifier.h"

#ifdef SIMTSR_EXPENSIVE_CHECKS
#include "ir/Verifier.h"
#endif

using namespace simtsr;

namespace {

#ifdef SIMTSR_EXPENSIVE_CHECKS
/// With SIMTSR_EXPENSIVE_CHECKS on, every pass boundary re-verifies the
/// module and runs the analyzer, keeping only must-facts (errors): the
/// mid-pipeline IR legitimately carries warnings (e.g. conflicts that
/// deconfliction has not resolved yet).
void expensiveStageCheck(Module &M, const char *Stage,
                         const lint::LintOptions &LintOpts,
                         std::vector<std::string> &Diags) {
  for (const std::string &D : verifyModule(M))
    Diags.push_back(std::string("expensive-check after ") + Stage + ": " + D);
  lint::LintOptions Quiet = LintOpts;
  Quiet.Remarks = false;
  const lint::LintResult R = lint::runConvergenceLint(M, Quiet);
  for (const lint::LintDiagnostic &D : R.Diagnostics)
    if (D.Severity == lint::LintSeverity::Error)
      Diags.push_back(std::string("expensive-check after ") + Stage + ": " +
                      D.Message);
}
#define SIMTSR_STAGE_CHECK(M, Stage, Report)                                   \
  expensiveStageCheck(M, Stage, lintOptionsFromRegistry((Report).Registry),    \
                      (Report).VerifierDiagnostics)
#else
#define SIMTSR_STAGE_CHECK(M, Stage, Report) (void)0
#endif

} // namespace

unsigned simtsr::stripPredictDirectives(Module &M) {
  unsigned Removed = 0;
  for (const auto &F : M) {
    for (BasicBlock *BB : *F) {
      auto &Insts = BB->instructions();
      for (size_t I = Insts.size(); I-- > 0;) {
        if (Insts[I].opcode() == Opcode::Predict) {
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(I));
          ++Removed;
        }
      }
    }
  }
  return Removed;
}

unsigned simtsr::stripReconvergeEntryFlags(Module &M) {
  unsigned Cleared = 0;
  for (const auto &F : M) {
    if (F->reconvergeAtEntry()) {
      F->setReconvergeAtEntry(false);
      ++Cleared;
    }
  }
  return Cleared;
}

namespace {

void mergeReports(SRReport &Into, SRReport From) {
  Into.Applied.insert(Into.Applied.end(), From.Applied.begin(),
                      From.Applied.end());
  Into.RegionsSkipped += From.RegionsSkipped;
  Into.PdomFallbacks += From.PdomFallbacks;
  Into.ExitDowngrades += From.ExitDowngrades;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

void mergeReports(PdomSyncReport &Into, PdomSyncReport From) {
  Into.DivergentBranches += From.DivergentBranches;
  Into.BarriersInserted += From.BarriersInserted;
  Into.Skipped += From.Skipped;
  Into.OutOfRegisters += From.OutOfRegisters;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

void mergeReports(DeconflictReport &Into, DeconflictReport From) {
  Into.ConflictsFound += From.ConflictsFound;
  Into.BarriersDeleted += From.BarriersDeleted;
  Into.CancelsInserted += From.CancelsInserted;
  Into.CallSiteCancels += From.CallSiteCancels;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

} // namespace

PipelineReport simtsr::runSyncPipeline(Module &M,
                                       const PipelineOptions &Opts) {
  PipelineReport Report;
  // Route every pass's emitRemark() calls into the caller's stream for the
  // pipeline's extent (thread-local, so concurrent oracle pipelines on
  // other pool threads are unaffected).
  observe::RemarkScope Scope(Opts.Remarks);

  if (!Opts.ApplySR && Opts.StripPredicts)
    stripPredictDirectives(M);

  if (Opts.PdomSync) {
    ModuleDivergenceInfo Divergence(M);
    for (size_t I = 0; I < M.size(); ++I) {
      Function &F = *M.function(I);
      mergeReports(Report.Pdom,
                   insertPdomSync(F, Divergence.forFunction(&F),
                                  Report.Registry));
    }
    SIMTSR_STAGE_CHECK(M, "pdom-sync", Report);
  }

  if (Opts.ApplySR) {
    for (size_t I = 0; I < M.size(); ++I)
      mergeReports(Report.SR,
                   applySpeculativeReconvergence(*M.function(I),
                                                 Report.Registry, Opts.SR));
    SIMTSR_STAGE_CHECK(M, "speculative-reconvergence", Report);
  }

  if (Opts.Interprocedural) {
    InterprocReport IR =
        applyInterproceduralReconvergence(M, Report.Registry);
    Report.Interproc = std::move(IR);
    SIMTSR_STAGE_CHECK(M, "interprocedural", Report);
  }

  for (size_t I = 0; I < M.size(); ++I)
    mergeReports(Report.Deconflict,
                 deconflictBarriers(*M.function(I), Report.Registry,
                                    Opts.Deconflict));

  // The pipeline gate: one run of the convergence-safety analyzer over the
  // whole module, origin-aware through the registry. Every warning and
  // error lands in VerifierDiagnostics, where the old per-function
  // verifiers used to report.
  {
    const lint::LintResult Lint =
        lint::runConvergenceLint(M, lintOptionsFromRegistry(Report.Registry));
    std::vector<std::string> Gate = Lint.gateStrings();
    Report.VerifierDiagnostics.insert(Report.VerifierDiagnostics.end(),
                                      Gate.begin(), Gate.end());
  }

  // Final lowering: recolour barrier registers after all checks ran (the
  // registry's id->origin map is stale from here on).
  if (Opts.ReallocBarriers) {
    Report.Realloc = reallocateBarriers(M);
#ifdef SIMTSR_EXPENSIVE_CHECKS
    // Origin-blind on purpose: the registry no longer matches the
    // recoloured registers.
    expensiveStageCheck(M, "barrier-realloc", lint::LintOptions{},
                        Report.VerifierDiagnostics);
#endif
  }
  return Report;
}

const std::vector<std::string> &simtsr::standardPipelineNames() {
  static const std::vector<std::string> Names = {
      "noop", "pdom", "sr", "sr+ip", "soft", "sr+ip+realloc"};
  return Names;
}

std::optional<PipelineOptions>
simtsr::standardPipelineByName(const std::string &Name, int SoftThreshold) {
  if (Name == "noop") {
    // No synchronization at all: strip the annotations, insert nothing.
    PipelineOptions O;
    O.PdomSync = false;
    O.StripPredicts = true;
    return O;
  }
  if (Name == "pdom")
    return PipelineOptions::baseline();
  if (Name == "sr") {
    PipelineOptions O;
    O.ApplySR = true;
    return O;
  }
  if (Name == "sr+ip")
    return PipelineOptions::speculative();
  if (Name == "soft")
    return PipelineOptions::softBarrier(SoftThreshold);
  if (Name == "sr+ip+realloc") {
    PipelineOptions O = PipelineOptions::speculative();
    O.ReallocBarriers = true;
    return O;
  }
  return std::nullopt;
}
