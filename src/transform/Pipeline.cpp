//===- Pipeline.cpp - Synchronization pass pipeline ---------------------------===//

#include "transform/Pipeline.h"

#include "ir/Module.h"
#include "transform/PassStage.h"

using namespace simtsr;

unsigned simtsr::stripPredictDirectives(Module &M) {
  unsigned Removed = 0;
  for (const auto &F : M) {
    for (BasicBlock *BB : *F) {
      auto &Insts = BB->instructions();
      for (size_t I = Insts.size(); I-- > 0;) {
        if (Insts[I].opcode() == Opcode::Predict) {
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(I));
          ++Removed;
        }
      }
    }
  }
  return Removed;
}

unsigned simtsr::stripReconvergeEntryFlags(Module &M) {
  unsigned Cleared = 0;
  for (const auto &F : M) {
    if (F->reconvergeAtEntry()) {
      F->setReconvergeAtEntry(false);
      ++Cleared;
    }
  }
  return Cleared;
}

PipelineReport simtsr::runSyncPipeline(Module &M,
                                       const PipelineOptions &Opts) {
  // The options bag is a legacy surface: convert to its stage list and run
  // through the composable core (PassStage.cpp).
  return runSyncPipeline(M, PipelineSpec(Opts));
}

const std::vector<std::string> &simtsr::standardPipelineNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const PipelineDef &D : pipelineCatalog())
      N.push_back(D.Name);
    return N;
  }();
  return Names;
}
