//===- Interprocedural.h - Section 4.4 function-entry gather ---*- C++ -*-===//
///
/// \file
/// Interprocedural speculative reconvergence: for a function marked
/// `reconverge_entry`, all threads heading towards a call of it gather at
/// the function entry before executing the body, even when the calls sit
/// on different arms of a divergent branch (Figure 2(c)).
///
/// Barrier information propagates from the callee up to the call sites:
/// the callee's entry carries the wait; each caller joins at the nearest
/// common dominator of its call sites, rejoins after a call when another
/// call is still reachable, and cancels on paths that leave the set of
/// blocks from which a call is reachable.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_INTERPROCEDURAL_H
#define SIMTSR_TRANSFORM_INTERPROCEDURAL_H

#include "transform/BarrierRegistry.h"

#include <string>
#include <vector>

namespace simtsr {

class Module;

struct InterprocReport {
  unsigned FunctionsConverged = 0; ///< Callees that got an entry wait.
  unsigned CallersAnnotated = 0;   ///< Caller functions with joins inserted.
  unsigned RejoinsInserted = 0;
  unsigned CancelsInserted = 0;
  /// Callees left without entry reconvergence because the barrier-register
  /// file was exhausted (intraprocedural sync still applies).
  unsigned Downgrades = 0;
  std::vector<std::string> Diagnostics;
};

/// Applies function-entry reconvergence to every `reconverge_entry`
/// function of \p M. Recursive call graphs are skipped with a diagnostic.
InterprocReport applyInterproceduralReconvergence(Module &M,
                                                  BarrierRegistry &Registry);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_INTERPROCEDURAL_H
