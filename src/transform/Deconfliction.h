//===- Deconfliction.h - Section 4.3 barrier deconfliction -----*- C++ -*-===//
///
/// \file
/// Barriers conflict when their joined ranges overlap non-inclusively
/// (Figure 5(a)); threads could then block at two different places with
/// unpredictable results. Two strategies from the paper:
///
///  * Static: delete every operation of the conflicting PDOM barrier
///    (Figure 5(b)). Cheapest, but loses the original reconvergence point
///    even when the speculative one is rarely reached.
///  * Dynamic: keep everything; threads about to wait on the speculative
///    barrier first cancel out of the conflicting barrier (Figure 5(c)),
///    so the conflict dissolves only on executions that actually reach the
///    speculative point.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_DECONFLICTION_H
#define SIMTSR_TRANSFORM_DECONFLICTION_H

#include "transform/BarrierRegistry.h"

#include <string>
#include <vector>

namespace simtsr {

class Function;

enum class DeconflictStrategy { Static, Dynamic };

struct DeconflictReport {
  unsigned ConflictsFound = 0;
  unsigned BarriersDeleted = 0;   ///< Static strategy.
  unsigned CancelsInserted = 0;   ///< Dynamic strategy (incl. call sites).
  unsigned CallSiteCancels = 0;   ///< Subset inserted before blocking calls.
  std::vector<std::string> Diagnostics;
};

/// Mask of interprocedural entry barriers a thread may block on while
/// executing \p Callee or any of its transitive callees. A call to such a
/// function behaves like a wait on those barriers from the caller's
/// perspective: the thread can suspend inside the callee until threads
/// outside it arrive, so any conflicting membership it still holds at the
/// call can cross-deadlock exactly like Figure 5(a).
uint32_t entryBarriersBlockingCall(Function *Callee,
                                   const BarrierRegistry &Registry);

/// Resolves conflicts between speculative barriers and others in \p F.
/// Conflicts between two non-speculative barriers are reported but left
/// alone (properly nested PDOM barriers never conflict).
DeconflictReport deconflictBarriers(Function &F, BarrierRegistry &Registry,
                                    DeconflictStrategy Strategy);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_DECONFLICTION_H
