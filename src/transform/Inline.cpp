//===- Inline.cpp - Function inlining ----------------------------------------===//

#include "transform/Inline.h"

#include "ir/CFGUtils.h"
#include "ir/Module.h"

#include <map>

using namespace simtsr;

bool simtsr::inlineCallSite(Function &Caller, BasicBlock *BB,
                            unsigned Index) {
  assert(Index < BB->size() && BB->inst(Index).opcode() == Opcode::Call &&
         "not a call site");
  Function *Callee = BB->inst(Index).operand(0).getFunc();
  if (Callee == &Caller)
    return false; // Direct recursion cannot be inlined away.
  for (BasicBlock *CB : *Callee)
    for (const Instruction &I : CB->instructions())
      if (I.opcode() == Opcode::Call && I.operand(0).getFunc() == Callee)
        return false; // Self-recursive callee.

  // Split so the code after the call becomes the continuation block.
  BasicBlock *Tail = splitBlockAfter(Caller, BB, Index);

  // Map callee registers into a fresh window of the caller's space.
  const unsigned Base = Caller.numRegs();
  for (unsigned R = 0; R < Callee->numRegs(); ++R)
    Caller.createReg();

  // Clone the callee's blocks.
  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  for (BasicBlock *CB : *Callee)
    BlockMap[CB] = Caller.createBlock(uniqueBlockName(
        Caller, "inline." + Callee->name() + "." + CB->name()));

  const Instruction Call = BB->inst(Index); // Copy before erasing.
  const unsigned DstReg = Call.hasDst() ? Call.dst() : NoRegister;

  auto remapOperand = [&](const Operand &O) {
    if (O.isReg())
      return Operand::reg(O.getReg() + Base);
    if (O.isBlock()) {
      auto It = BlockMap.find(O.getBlock());
      assert(It != BlockMap.end() && "callee block operand not mapped");
      return Operand::block(It->second);
    }
    return O;
  };

  for (BasicBlock *CB : *Callee) {
    BasicBlock *Copy = BlockMap[CB];
    for (const Instruction &I : CB->instructions()) {
      if (I.opcode() == Opcode::Ret) {
        // ret [val] -> [mov dst, val;] jmp tail.
        if (I.numOperands() == 1 && DstReg != NoRegister)
          Copy->append(
              Instruction(Opcode::Mov, DstReg, {remapOperand(I.operand(0))}));
        Copy->append(
            Instruction(Opcode::Jmp, NoRegister, {Operand::block(Tail)}));
        continue;
      }
      std::vector<Operand> Ops;
      Ops.reserve(I.numOperands());
      for (const Operand &O : I.operands())
        Ops.push_back(remapOperand(O));
      Copy->append(Instruction(I.opcode(),
                               I.hasDst() ? I.dst() + Base : NoRegister,
                               std::move(Ops)));
    }
  }

  // Replace the call with argument moves, then branch into the clone.
  auto &Insts = BB->instructions();
  Insts.erase(Insts.begin() + Index);
  for (unsigned A = 1; A < Call.numOperands(); ++A) {
    BB->insert(Index + (A - 1),
               Instruction(Opcode::Mov, Base + (A - 1), {Call.operand(A)}));
  }
  assert(BB->terminator().opcode() == Opcode::Jmp &&
         "split block must end in a jump");
  BB->terminator().operand(0).setBlock(BlockMap[Callee->entry()]);

  Caller.recomputePreds();
  return true;
}

unsigned simtsr::inlineAllCalls(Module &M, Function *Callee) {
  unsigned Inlined = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t FI = 0; FI < M.size() && !Progress; ++FI) {
      Function *F = M.function(FI);
      if (F == Callee)
        continue;
      for (size_t BI = 0; BI < F->size() && !Progress; ++BI) {
        BasicBlock *BB = F->block(BI);
        for (unsigned I = 0; I < BB->size(); ++I) {
          const Instruction &Inst = BB->inst(I);
          if (Inst.opcode() != Opcode::Call ||
              Inst.operand(0).getFunc() != Callee)
            continue;
          if (!inlineCallSite(*F, BB, I))
            return Inlined;
          ++Inlined;
          Progress = true;
          break;
        }
      }
    }
  }
  return Inlined;
}
