//===- Interprocedural.cpp - Section 4.4 function-entry gather ----------------===//

#include "transform/Interprocedural.h"

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "ir/CFGUtils.h"
#include "ir/Module.h"
#include "observe/Remark.h"

#include <algorithm>

using namespace simtsr;
using observe::RemarkKind;

namespace {

/// Splits every call to \p Callee in \p G so the call is the last real
/// instruction of its block. \returns the blocks ending in such a call.
std::vector<BasicBlock *> isolateCallSites(Function &G, Function *Callee) {
  std::vector<BasicBlock *> CallBlocks;
  for (size_t BlockIndex = 0; BlockIndex < G.size(); ++BlockIndex) {
    BasicBlock *BB = G.block(BlockIndex);
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.opcode() != Opcode::Call ||
          Inst.operand(0).getFunc() != Callee)
        continue;
      // Leave the block alone only when the call is directly followed by an
      // unconditional jump (the continuation is then the jump target) or by
      // a ret (no continuation). Everything else splits.
      const bool FollowedByJmp =
          I + 2 == BB->size() && BB->inst(I + 1).opcode() == Opcode::Jmp;
      const bool FollowedByRet =
          I + 2 == BB->size() && BB->inst(I + 1).opcode() == Opcode::Ret;
      if (!FollowedByJmp && !FollowedByRet)
        splitBlockAfter(G, BB, I);
      CallBlocks.push_back(BB);
      break; // The rest of this block moved to the continuation.
    }
  }
  G.recomputePreds();
  return CallBlocks;
}

/// Marks the blocks from which some block in \p Targets is reachable
/// (inclusive). Assumes current preds/numbering.
std::vector<bool> blocksReachingAny(Function &G,
                                    const std::vector<BasicBlock *> &Targets) {
  std::vector<bool> Reaches(G.size(), false);
  std::vector<BasicBlock *> Worklist;
  for (BasicBlock *T : Targets) {
    if (!Reaches[T->number()]) {
      Reaches[T->number()] = true;
      Worklist.push_back(T);
    }
  }
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Pred : BB->predecessors()) {
      if (Reaches[Pred->number()])
        continue;
      Reaches[Pred->number()] = true;
      Worklist.push_back(Pred);
    }
  }
  return Reaches;
}

void annotateCaller(Function &G, Function *Callee, unsigned Barrier,
                    InterprocReport &Report) {
  std::vector<BasicBlock *> CallBlocks = isolateCallSites(G, Callee);
  if (CallBlocks.empty())
    return;

  // Join at the nearest common dominator of all reachable call sites
  // (unreachable ones never execute, and the dominator tree has no
  // position for them).
  DominatorTree DT(G);
  BasicBlock *Dom = nullptr;
  for (BasicBlock *CB : CallBlocks) {
    if (!DT.isReachable(CB))
      continue;
    Dom = Dom ? DT.nearestCommonDominator(Dom, CB) : CB;
    if (!Dom)
      break;
  }
  if (!Dom) {
    Report.Diagnostics.push_back("@" + G.name() +
                                 ": call sites of @" + Callee->name() +
                                 " have no common dominator; skipped");
    return;
  }
  const bool DomIsCallBlock =
      std::find(CallBlocks.begin(), CallBlocks.end(), Dom) !=
      CallBlocks.end();
  if (DomIsCallBlock) {
    // Join immediately before the call itself.
    size_t CallIndex = Dom->size() - 2; // call is last real instruction
    Dom->insert(CallIndex, Instruction(Opcode::JoinBarrier, NoRegister,
                                       {Operand::barrier(Barrier)}));
  } else {
    Dom->insertBeforeTerminator(Instruction(Opcode::JoinBarrier, NoRegister,
                                            {Operand::barrier(Barrier)}));
  }

  // Region: blocks reachable from the join that can still reach a call.
  G.recomputePreds();
  std::vector<bool> FromDom = blocksReachableFrom(G, Dom);
  std::vector<bool> ReachCall = blocksReachingAny(G, CallBlocks);
  std::vector<bool> InRegion(G.size(), false);
  for (size_t N = 0; N < G.size(); ++N)
    InRegion[N] = FromDom[N] && ReachCall[N];
  InRegion[Dom->number()] = true;

  // Rejoin in continuations that can still reach another call. A call block
  // ending in ret has no continuation (thread exit clears membership).
  for (BasicBlock *CB : CallBlocks) {
    auto Succs = CB->successors();
    if (Succs.size() != 1)
      continue;
    BasicBlock *Cont = Succs[0];
    if (ReachCall[Cont->number()]) {
      Cont->insert(0, Instruction(Opcode::RejoinBarrier, NoRegister,
                                  {Operand::barrier(Barrier)}));
      ++Report.RejoinsInserted;
    }
  }

  // Cancels on region exits. A thread leaving through a call block's
  // continuation has just been released by the callee-entry wait (its
  // membership is cleared), so those edges only need a cancel when a
  // rejoin was inserted upstream — cancelling a non-member is a no-op, so
  // we cancel uniformly for simplicity.
  struct Exit {
    BasicBlock *From;
    BasicBlock *To;
  };
  std::vector<Exit> Exits;
  for (BasicBlock *From : G) {
    if (!InRegion[From->number()])
      continue;
    for (BasicBlock *To : From->successors())
      if (!InRegion[To->number()])
        Exits.push_back({From, To});
  }
  for (const Exit &E : Exits) {
    const auto &Preds = E.To->predecessors();
    const bool AllPredsInRegion =
        std::all_of(Preds.begin(), Preds.end(), [&](BasicBlock *P) {
          return InRegion[P->number()];
        });
    if (AllPredsInRegion && E.To->predecessors().size() >= 1 &&
        (E.To->empty() || E.To->inst(0).opcode() != Opcode::CancelBarrier ||
         E.To->inst(0).barrierId() != Barrier)) {
      E.To->insert(0, Instruction(Opcode::CancelBarrier, NoRegister,
                                  {Operand::barrier(Barrier)}));
      ++Report.CancelsInserted;
      continue;
    }
    if (!AllPredsInRegion) {
      BasicBlock *Mid = splitEdge(G, E.From, E.To);
      Mid->insert(0, Instruction(Opcode::CancelBarrier, NoRegister,
                                 {Operand::barrier(Barrier)}));
      ++Report.CancelsInserted;
      G.recomputePreds();
    }
  }
  G.recomputePreds();
  ++Report.CallersAnnotated;
  if (observe::remarksEnabled())
    observe::emitRemark("interproc", RemarkKind::Applied, G.name(),
                        Dom->name(),
                        "joined entry barrier for callee '@" +
                            Callee->name() +
                            "' at the call sites' common dominator",
                        {{"callee", Callee->name()},
                         {"barrier", "b" + std::to_string(Barrier)},
                         {"call-sites",
                          std::to_string(CallBlocks.size())}});
}

} // namespace

InterprocReport
simtsr::applyInterproceduralReconvergence(Module &M,
                                          BarrierRegistry &Registry) {
  InterprocReport Report;
  CallGraph CG(M);

  for (size_t FI = 0; FI < M.size(); ++FI) {
    Function *Callee = M.function(FI);
    if (!Callee->reconvergeAtEntry())
      continue;
    if (CG.isRecursive()) {
      Report.Diagnostics.push_back(
          "@" + Callee->name() +
          ": recursive call graph; interprocedural reconvergence skipped");
      if (observe::remarksEnabled())
        observe::emitRemark("interproc", RemarkKind::Skipped, Callee->name(),
                            "",
                            "recursive call graph; entry reconvergence "
                            "skipped");
      continue;
    }
    if (CG.callers(Callee).empty()) {
      Report.Diagnostics.push_back("@" + Callee->name() +
                                   ": no call sites; nothing to converge");
      continue;
    }
    auto Barrier = Registry.allocateLow(BarrierOrigin::Interproc,
                                        "entry:" + Callee->name());
    if (!Barrier) {
      ++Report.Downgrades;
      Report.Diagnostics.push_back(
          "@" + Callee->name() + ": out of barrier registers; entry "
          "reconvergence downgraded to intraprocedural sync");
      if (observe::remarksEnabled())
        observe::emitRemark("interproc", RemarkKind::Downgrade,
                            Callee->name(), "",
                            "out of barrier registers; entry reconvergence "
                            "downgraded to intraprocedural sync");
      continue;
    }
    // Callee side: the entry wait.
    Callee->entry()->insert(0, Instruction(Opcode::WaitBarrier, NoRegister,
                                           {Operand::barrier(*Barrier)}));
    ++Report.FunctionsConverged;
    if (observe::remarksEnabled())
      observe::emitRemark("interproc", RemarkKind::Applied, Callee->name(),
                          Callee->entry()->name(),
                          "entry wait placed; callers gather before calling",
                          {{"barrier", "b" + std::to_string(*Barrier)},
                           {"callers", std::to_string(
                                           CG.callers(Callee).size())}});
    // Caller side: joins/rejoins/cancels per caller.
    for (Function *Caller : CG.callers(Callee))
      annotateCaller(*Caller, Callee, *Barrier, Report);
  }
  return Report;
}
