//===- BarrierVerifier.h - Synchronization discipline checks ---*- C++ -*-===//
///
/// \file
/// Static checks that the inserted synchronization is well behaved:
/// no barrier may still be joined at a function exit (modulo
/// interprocedural barriers, whose waits live in callees), and after
/// deconfliction no speculative/PDOM conflicts may remain. Used as a test
/// oracle for every pass pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_BARRIERVERIFIER_H
#define SIMTSR_TRANSFORM_BARRIERVERIFIER_H

#include "transform/BarrierRegistry.h"

#include <string>
#include <vector>

namespace simtsr {

class Function;

/// \returns diagnostics; empty means the discipline holds. Barriers with
/// Interproc origin are exempt from the exit-cleanliness check.
std::vector<std::string> verifyBarrierDiscipline(Function &F,
                                                 const BarrierRegistry &Reg);

/// \returns diagnostics for conflicts that survive between a speculative
/// barrier and a PDOM barrier (should be empty after deconfliction).
std::vector<std::string> verifyDeconflicted(Function &F,
                                            const BarrierRegistry &Reg);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_BARRIERVERIFIER_H
