//===- BarrierVerifier.h - Synchronization discipline checks ---*- C++ -*-===//
///
/// \file
/// Legacy entry points for the synchronization discipline checks. Both are
/// thin wrappers over the convergence-safety analyzer (lint/ConvergenceLint.h)
/// filtered down to the historical checks: no barrier still joined at a
/// function exit, and no membership held while blocking at a speculative
/// wait or gathering call. New code should run the analyzer directly —
/// it reports strictly more (see docs/LINT.md).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_BARRIERVERIFIER_H
#define SIMTSR_TRANSFORM_BARRIERVERIFIER_H

#include "lint/ConvergenceLint.h"
#include "transform/BarrierRegistry.h"

#include <string>
#include <vector>

namespace simtsr {

class Function;

/// Translates a pass-pipeline barrier registry into origin-aware lint
/// options, so the analyzer applies the same origin filters the old
/// verifier did. Invalid after BarrierRealloc renames registers.
lint::LintOptions lintOptionsFromRegistry(const BarrierRegistry &Reg);

/// \returns the analyzer's join-leak diagnostics for \p F; empty means the
/// discipline holds. Interprocedural obligations are checked through callee
/// summaries rather than exempted wholesale.
std::vector<std::string> verifyBarrierDiscipline(Function &F,
                                                 const BarrierRegistry &Reg);

/// \returns the analyzer's blocked-while-joined / call-hazard diagnostics
/// for \p F (should be empty after deconfliction).
std::vector<std::string> verifyDeconflicted(Function &F,
                                            const BarrierRegistry &Reg);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_BARRIERVERIFIER_H
