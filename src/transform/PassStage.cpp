//===- PassStage.cpp - Composable pass-pipeline stages ------------------===//

#include "transform/PassStage.h"

#include "analysis/Divergence.h"
#include "ir/Module.h"
#include "lint/ConvergenceLint.h"
#include "observe/Remark.h"
#include "transform/BarrierVerifier.h"

#ifdef SIMTSR_EXPENSIVE_CHECKS
#include "ir/Verifier.h"
#endif

using namespace simtsr;

namespace {

#ifdef SIMTSR_EXPENSIVE_CHECKS
/// With SIMTSR_EXPENSIVE_CHECKS on, every CheckAfter stage boundary
/// re-verifies the module and runs the analyzer, keeping only must-facts
/// (errors): the mid-pipeline IR legitimately carries warnings (e.g.
/// conflicts that deconfliction has not resolved yet).
void expensiveStageCheck(Module &M, const std::string &Stage,
                         const lint::LintOptions &LintOpts,
                         std::vector<std::string> &Diags) {
  for (const std::string &D : verifyModule(M))
    Diags.push_back("expensive-check after " + Stage + ": " + D);
  lint::LintOptions Quiet = LintOpts;
  Quiet.Remarks = false;
  const lint::LintResult R = lint::runConvergenceLint(M, Quiet);
  for (const lint::LintDiagnostic &D : R.Diagnostics)
    if (D.Severity == lint::LintSeverity::Error)
      Diags.push_back("expensive-check after " + Stage + ": " + D.Message);
}
#endif

void mergeReports(MeldReport &Into, MeldReport From) {
  Into.BranchesExamined += From.BranchesExamined;
  Into.BranchesMelded += From.BranchesMelded;
  Into.PairsMelded += From.PairsMelded;
  Into.StubsEmitted += From.StubsEmitted;
  Into.SelectsInserted += From.SelectsInserted;
  Into.Skipped += From.Skipped;
}

void mergeReports(SRReport &Into, SRReport From) {
  Into.Applied.insert(Into.Applied.end(), From.Applied.begin(),
                      From.Applied.end());
  Into.RegionsSkipped += From.RegionsSkipped;
  Into.PdomFallbacks += From.PdomFallbacks;
  Into.ExitDowngrades += From.ExitDowngrades;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

void mergeReports(PdomSyncReport &Into, PdomSyncReport From) {
  Into.DivergentBranches += From.DivergentBranches;
  Into.BarriersInserted += From.BarriersInserted;
  Into.Skipped += From.Skipped;
  Into.OutOfRegisters += From.OutOfRegisters;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

void mergeReports(DeconflictReport &Into, DeconflictReport From) {
  Into.ConflictsFound += From.ConflictsFound;
  Into.BarriersDeleted += From.BarriersDeleted;
  Into.CancelsInserted += From.CancelsInserted;
  Into.CallSiteCancels += From.CallSiteCancels;
  Into.Diagnostics.insert(Into.Diagnostics.end(), From.Diagnostics.begin(),
                          From.Diagnostics.end());
}

std::vector<PassStageDef> makeStageRegistry() {
  std::vector<PassStageDef> Stages;

  {
    PassStageDef S;
    S.Name = "strip-predicts";
    S.Summary = "remove predict directives without applying them";
    S.Run = [](Module &M, PipelineReport &, const PipelineParams &) {
      stripPredictDirectives(M);
    };
    Stages.push_back(std::move(S));
  }
  {
    PassStageDef S;
    S.Name = "meld";
    S.Summary = "DARM-style melding of divergent branch arms into "
                "predicated merged blocks";
    S.CheckAfter = true;
    S.Run = [](Module &M, PipelineReport &R, const PipelineParams &P) {
      mergeReports(R.Meld, applyControlFlowMeld(M, P.Meld));
    };
    Stages.push_back(std::move(S));
  }
  {
    PassStageDef S;
    S.Name = "pdom-sync";
    S.Summary = "baseline PDOM reconvergence barriers at divergent branches";
    S.CheckAfter = true;
    S.Run = [](Module &M, PipelineReport &R, const PipelineParams &) {
      ModuleDivergenceInfo Divergence(M);
      for (size_t I = 0; I < M.size(); ++I) {
        Function &F = *M.function(I);
        mergeReports(R.Pdom, insertPdomSync(F, Divergence.forFunction(&F),
                                            R.Registry));
      }
    };
    Stages.push_back(std::move(S));
  }
  {
    PassStageDef S;
    S.Name = "sr";
    S.Summary = "speculative reconvergence from predict directives";
    S.CheckAfter = true;
    S.Run = [](Module &M, PipelineReport &R, const PipelineParams &P) {
      for (size_t I = 0; I < M.size(); ++I)
        mergeReports(R.SR, applySpeculativeReconvergence(*M.function(I),
                                                         R.Registry, P.SR));
    };
    Stages.push_back(std::move(S));
  }
  {
    PassStageDef S;
    S.Name = "interproc";
    S.Summary = "interprocedural reconvergence for reconverge_entry callees";
    S.CheckAfter = true;
    S.Run = [](Module &M, PipelineReport &R, const PipelineParams &) {
      R.Interproc = applyInterproceduralReconvergence(M, R.Registry);
    };
    Stages.push_back(std::move(S));
  }
  {
    PassStageDef S;
    S.Name = "deconflict";
    S.Summary = "resolve or cancel conflicting barrier waits";
    S.Run = [](Module &M, PipelineReport &R, const PipelineParams &P) {
      for (size_t I = 0; I < M.size(); ++I)
        mergeReports(R.Deconflict, deconflictBarriers(*M.function(I),
                                                      R.Registry,
                                                      P.Deconflict));
    };
    Stages.push_back(std::move(S));
  }
  {
    PassStageDef S;
    S.Name = "verify";
    S.Summary = "convergence-safety gate (origin-aware lint over the module)";
    S.Run = [](Module &M, PipelineReport &R, const PipelineParams &) {
      const lint::LintResult Lint =
          lint::runConvergenceLint(M, lintOptionsFromRegistry(R.Registry));
      std::vector<std::string> Gate = Lint.gateStrings();
      R.VerifierDiagnostics.insert(R.VerifierDiagnostics.end(), Gate.begin(),
                                   Gate.end());
    };
    Stages.push_back(std::move(S));
  }
  {
    PassStageDef S;
    S.Name = "realloc";
    S.Summary = "recolour barrier registers (final lowering; invalidates "
                "the registry's origin map)";
    S.CheckAfter = true;
    S.OriginBlind = true;
    S.Run = [](Module &M, PipelineReport &R, const PipelineParams &) {
      R.Realloc = reallocateBarriers(M);
    };
    Stages.push_back(std::move(S));
  }
  return Stages;
}

std::vector<PipelineDef> makePipelineCatalog() {
  // Legacy configurations first, byte-compatible with the historical
  // bool-bag semantics; meld configurations are appended so golden digest
  // row order over standardPipelineNames() stays stable.
  return {
      {"noop", "strip annotations, insert nothing",
       {"strip-predicts", "deconflict", "verify"}, false},
      {"pdom", "baseline PDOM synchronization (predicts stripped)",
       {"strip-predicts", "pdom-sync", "deconflict", "verify"}, false},
      {"sr", "speculative reconvergence over the PDOM baseline",
       {"pdom-sync", "sr", "deconflict", "verify"}, false},
      {"sr+ip", "speculative + interprocedural reconvergence",
       {"pdom-sync", "sr", "interproc", "deconflict", "verify"}, false},
      {"soft", "sr+ip with soft (bounded-wait) barriers",
       {"pdom-sync", "sr", "interproc", "deconflict", "verify"}, true},
      {"sr+ip+realloc", "sr+ip plus final barrier-register reallocation",
       {"pdom-sync", "sr", "interproc", "deconflict", "verify", "realloc"},
       false},
      {"meld", "control-flow melding, then PDOM sync on the residue",
       {"strip-predicts", "meld", "pdom-sync", "deconflict", "verify"},
       false},
      {"meld+sr", "melding stacked under speculative reconvergence",
       {"meld", "pdom-sync", "sr", "deconflict", "verify"}, false},
      {"meld+sr+ip", "melding stacked under sr+ip",
       {"meld", "pdom-sync", "sr", "interproc", "deconflict", "verify"},
       false},
  };
}

} // namespace

const std::vector<PassStageDef> &simtsr::passStageRegistry() {
  static const std::vector<PassStageDef> Registry = makeStageRegistry();
  return Registry;
}

const PassStageDef *simtsr::findPassStage(const std::string &Name) {
  for (const PassStageDef &S : passStageRegistry())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const std::vector<PipelineDef> &simtsr::pipelineCatalog() {
  static const std::vector<PipelineDef> Catalog = makePipelineCatalog();
  return Catalog;
}

const PipelineDef *simtsr::findPipelineDef(const std::string &Name) {
  for (const PipelineDef &D : pipelineCatalog())
    if (D.Name == Name)
      return &D;
  return nullptr;
}

std::optional<PipelineSpec>
simtsr::standardPipelineSpec(const std::string &Name, int SoftThreshold) {
  const PipelineDef *D = findPipelineDef(Name);
  if (!D)
    return std::nullopt;
  PipelineSpec S;
  S.Stages = D->Stages;
  if (D->UsesSoftThreshold)
    S.Params.SR.SoftThreshold = SoftThreshold;
  return S;
}

std::vector<std::string>
simtsr::stageListForOptions(const PipelineOptions &O) {
  std::vector<std::string> Stages;
  if (!O.ApplySR && O.StripPredicts)
    Stages.push_back("strip-predicts");
  if (O.PdomSync)
    Stages.push_back("pdom-sync");
  if (O.ApplySR)
    Stages.push_back("sr");
  if (O.Interprocedural)
    Stages.push_back("interproc");
  Stages.push_back("deconflict");
  Stages.push_back("verify");
  if (O.ReallocBarriers)
    Stages.push_back("realloc");
  return Stages;
}

PipelineSpec::PipelineSpec(const PipelineOptions &O)
    : Stages(stageListForOptions(O)) {
  Params.SR = O.SR;
  Params.Deconflict = O.Deconflict;
  Params.Remarks = O.Remarks;
}

PipelineReport simtsr::runSyncPipeline(Module &M, const PipelineSpec &Spec) {
  PipelineReport Report;
  // Route every pass's emitRemark() calls into the caller's stream for the
  // pipeline's extent (thread-local, so concurrent oracle pipelines on
  // other pool threads are unaffected).
  observe::RemarkScope Scope(Spec.Params.Remarks);

  for (const std::string &Name : Spec.Stages) {
    const PassStageDef *Def = findPassStage(Name);
    if (!Def) {
      Report.VerifierDiagnostics.push_back("unknown pipeline stage '" + Name +
                                           "'");
      continue;
    }
    const size_t RemarksBefore =
        Spec.Params.Remarks ? Spec.Params.Remarks->size() : 0;
    Def->Run(M, Report, Spec.Params);
    if (Def->CheckAfter) {
#ifdef SIMTSR_EXPENSIVE_CHECKS
      // Origin-blind stages (realloc) invalidated the registry's id->origin
      // map, so their check runs without it.
      expensiveStageCheck(M, Def->Name,
                          Def->OriginBlind
                              ? lint::LintOptions{}
                              : lintOptionsFromRegistry(Report.Registry),
                          Report.VerifierDiagnostics);
#endif
    }
    const size_t RemarksAfter =
        Spec.Params.Remarks ? Spec.Params.Remarks->size() : 0;
    Report.Stages.push_back(
        {Def->Name, static_cast<unsigned>(RemarksAfter - RemarksBefore)});
  }
  return Report;
}
