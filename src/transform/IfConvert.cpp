//===- IfConvert.cpp - Predication by if-conversion -----------------------------===//

#include "transform/IfConvert.h"

#include "ir/Function.h"
#include "ir/Module.h"

#include <map>

using namespace simtsr;

namespace {

/// Safe to execute unconditionally: pure, non-trapping, stream-free.
bool isSpeculatable(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Not:
  case Opcode::Neg:
  case Opcode::Mov:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::Select:
  case Opcode::Tid:
  case Opcode::LaneId:
  case Opcode::WarpSize:
    return true;
  default:
    return false;
  }
}

/// True when \p Arm is a convertible arm: jumps to \p Join, is entered
/// only from \p Entry, and holds speculatable instructions only.
bool isConvertibleArm(const BasicBlock *Arm, const BasicBlock *Entry,
                      const BasicBlock *Join) {
  if (Arm->predecessors().size() != 1 || Arm->predecessors()[0] != Entry)
    return false;
  if (!Arm->hasTerminator() || Arm->terminator().opcode() != Opcode::Jmp ||
      Arm->terminator().operand(0).getBlock() != Join)
    return false;
  for (size_t I = 0; I + 1 < Arm->size(); ++I)
    if (!isSpeculatable(Arm->inst(I)))
      return false;
  return true;
}

/// Hoists \p Arm's instructions into \p Entry before the terminator,
/// renaming every defined register to a fresh temporary. \returns the
/// original-register -> final-temporary map.
std::map<unsigned, unsigned> hoistArm(Function &F, BasicBlock *Entry,
                                      const BasicBlock *Arm) {
  std::map<unsigned, unsigned> Renamed;
  for (size_t I = 0; I + 1 < Arm->size(); ++I) {
    const Instruction &Inst = Arm->inst(I);
    std::vector<Operand> Ops;
    Ops.reserve(Inst.numOperands());
    for (const Operand &O : Inst.operands()) {
      if (O.isReg()) {
        auto It = Renamed.find(O.getReg());
        Ops.push_back(It == Renamed.end() ? O : Operand::reg(It->second));
      } else {
        Ops.push_back(O);
      }
    }
    unsigned Temp = F.createReg();
    Entry->insertBeforeTerminator(
        Instruction(Inst.opcode(), Temp, std::move(Ops)));
    Renamed[Inst.dst()] = Temp;
  }
  return Renamed;
}

/// Attempts to convert the conditional ending \p Entry. \returns 0 on no
/// match, 1 for a triangle, 2 for a diamond.
int convertAt(Function &F, BasicBlock *Entry) {
  if (!Entry->hasTerminator() || Entry->terminator().opcode() != Opcode::Br)
    return 0;
  Operand Cond = Entry->terminator().operand(0);
  BasicBlock *Then = Entry->terminator().operand(1).getBlock();
  BasicBlock *Else = Entry->terminator().operand(2).getBlock();
  if (Then == Else || Then == Entry || Else == Entry)
    return 0;

  // The join an arm funnels into, or null when the arm has no plain jump.
  auto isJoinOf = [](const BasicBlock *Arm) -> BasicBlock * {
    if (!Arm->hasTerminator() || Arm->terminator().opcode() != Opcode::Jmp)
      return nullptr;
    return Arm->terminator().operand(0).getBlock();
  };

  // Diamond: both arms convertible into a common join.
  const bool ThenOk = isConvertibleArm(Then, Entry, isJoinOf(Then));
  if (ThenOk && isConvertibleArm(Else, Entry, isJoinOf(Else)) &&
      isJoinOf(Then) == isJoinOf(Else)) {
    BasicBlock *Join = isJoinOf(Then);
    auto ThenMap = hoistArm(F, Entry, Then);
    auto ElseMap = hoistArm(F, Entry, Else);
    // Merge per-register: select(c, thenVal-or-old, elseVal-or-old).
    std::map<unsigned, std::pair<unsigned, unsigned>> Merged;
    for (const auto &[Reg, Temp] : ThenMap)
      Merged[Reg] = {Temp, Reg};
    for (const auto &[Reg, Temp] : ElseMap) {
      auto It = Merged.find(Reg);
      if (It == Merged.end())
        Merged[Reg] = {Reg, Temp};
      else
        It->second.second = Temp;
    }
    for (const auto &[Reg, Vals] : Merged)
      Entry->insertBeforeTerminator(
          Instruction(Opcode::Select, Reg,
                      {Cond, Operand::reg(Vals.first),
                       Operand::reg(Vals.second)}));
    Entry->instructions().back() =
        Instruction(Opcode::Jmp, NoRegister, {Operand::block(Join)});
    return 2;
  }

  // Triangle with the then arm.
  if (isConvertibleArm(Then, Entry, Else)) {
    auto Map = hoistArm(F, Entry, Then);
    for (const auto &[Reg, Temp] : Map)
      Entry->insertBeforeTerminator(Instruction(
          Opcode::Select, Reg,
          {Cond, Operand::reg(Temp), Operand::reg(Reg)}));
    Entry->instructions().back() =
        Instruction(Opcode::Jmp, NoRegister, {Operand::block(Else)});
    return 1;
  }
  // Triangle with the else arm (br c, join, else with else -> join).
  if (isConvertibleArm(Else, Entry, Then)) {
    auto Map = hoistArm(F, Entry, Else);
    for (const auto &[Reg, Temp] : Map)
      Entry->insertBeforeTerminator(Instruction(
          Opcode::Select, Reg,
          {Cond, Operand::reg(Reg), Operand::reg(Temp)}));
    Entry->instructions().back() =
        Instruction(Opcode::Jmp, NoRegister, {Operand::block(Then)});
    return 1;
  }
  return 0;
}

} // namespace

IfConvertReport simtsr::ifConvert(Function &F) {
  IfConvertReport Report;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    F.recomputePreds();
    for (BasicBlock *BB : F) {
      int Kind = convertAt(F, BB);
      if (Kind == 0)
        continue;
      if (Kind == 1)
        ++Report.TrianglesConverted;
      else
        ++Report.DiamondsConverted;
      Changed = true;
      break; // CFG changed; restart the scan.
    }
  }
  F.recomputePreds();
  return Report;
}

IfConvertReport simtsr::ifConvert(Module &M) {
  IfConvertReport Report;
  for (size_t I = 0; I < M.size(); ++I) {
    IfConvertReport One = ifConvert(*M.function(I));
    Report.TrianglesConverted += One.TrianglesConverted;
    Report.DiamondsConverted += One.DiamondsConverted;
  }
  return Report;
}
