//===- SpeculativeReconvergence.h - Section 4.2 synchronization -*- C++ -*-===//
///
/// \file
/// Consumes `predict` directives and inserts the synchronization of
/// Figure 4(d): a gather barrier joined at the region start and waited on
/// at the predicted reconvergence point, rejoin/cancel placement driven by
/// the joined-barrier and liveness analyses, and an orthogonal region-exit
/// barrier so threads reconverge after the region.
///
/// With a soft threshold (Section 4.6) the gather wait becomes a SoftWait:
/// threads proceed once at least min(threshold, remaining-region-threads)
/// have arrived; membership then persists across releases and is cleared
/// only by the region-exit cancels.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_SPECULATIVERECONVERGENCE_H
#define SIMTSR_TRANSFORM_SPECULATIVERECONVERGENCE_H

#include "analysis/Region.h"
#include "transform/BarrierRegistry.h"

#include <optional>
#include <string>
#include <vector>

namespace simtsr {

struct SROptions {
  /// Negative: classic full-warp wait. Otherwise the SoftWait threshold.
  int SoftThreshold = -1;
  /// Insert the orthogonal region-exit barrier (Figure 4(d) b1).
  bool RegionExitBarrier = true;
};

struct AppliedRegion {
  BasicBlock *Start;
  BasicBlock *Label;
  unsigned GatherBarrier;
  std::optional<unsigned> ExitBarrier;
  unsigned CancelsInserted = 0;
  bool RejoinInserted = false;
};

struct SRReport {
  std::vector<AppliedRegion> Applied;
  unsigned RegionsSkipped = 0;
  /// Regions downgraded to the baseline PDOM-only synchronization because
  /// the 16-register file was exhausted (the predict is dropped; the PDOM
  /// barriers inserted earlier keep the region correct).
  unsigned PdomFallbacks = 0;
  /// Applied regions whose orthogonal region-exit barrier was dropped for
  /// the same reason.
  unsigned ExitDowngrades = 0;
  std::vector<std::string> Diagnostics;
};

/// Applies speculative reconvergence to every prediction region of \p F.
/// Predict directives are consumed (removed) when applied.
SRReport applySpeculativeReconvergence(Function &F, BarrierRegistry &Registry,
                                       const SROptions &Opts);

inline SRReport applySpeculativeReconvergence(Function &F,
                                              BarrierRegistry &Registry) {
  return applySpeculativeReconvergence(F, Registry, SROptions{});
}

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_SPECULATIVERECONVERGENCE_H
