//===- PdomSync.cpp - Baseline post-dominator reconvergence -------------------===//

#include "transform/PdomSync.h"

#include "analysis/Dominators.h"
#include "observe/Remark.h"

using namespace simtsr;
using observe::RemarkKind;

PdomSyncReport simtsr::insertPdomSync(Function &F,
                                      const DivergenceAnalysis &DA,
                                      BarrierRegistry &Registry) {
  PdomSyncReport Report;
  F.recomputePreds();
  PostDominatorTree PDT(F);

  // Collect targets first: inserting instructions does not change the CFG,
  // so block pointers and the post-dominator tree stay valid.
  struct Site {
    BasicBlock *Branch;
    BasicBlock *Pdom;
  };
  std::vector<Site> Sites;
  for (BasicBlock *BB : F) {
    if (!BB->hasTerminator() || BB->terminator().opcode() != Opcode::Br)
      continue;
    if (!DA.isDivergentBranch(BB))
      continue;
    ++Report.DivergentBranches;
    auto Succs = BB->successors();
    BasicBlock *Pdom = PDT.nearestCommonDominator(Succs[0], Succs[1]);
    if (!Pdom) {
      ++Report.Skipped;
      Report.Diagnostics.push_back(
          "@" + F.name() + ":" + BB->name() +
          ": divergent branch has no common post-dominator; skipped");
      if (observe::remarksEnabled())
        observe::emitRemark("pdom-sync", RemarkKind::Skipped, F.name(),
                            BB->name(),
                            "divergent branch has no common post-dominator");
      continue;
    }
    Sites.push_back({BB, Pdom});
  }

  for (const Site &S : Sites) {
    auto Id = Registry.allocateHigh(BarrierOrigin::PdomSync,
                                    F.name() + ":" + S.Branch->name());
    if (!Id) {
      ++Report.Skipped;
      ++Report.OutOfRegisters;
      Report.Diagnostics.push_back(
          "@" + F.name() + ":" + S.Branch->name() +
          ": out of barrier registers; branch left unsynchronized");
      if (observe::remarksEnabled())
        observe::emitRemark(
            "pdom-sync", RemarkKind::Downgrade, F.name(), S.Branch->name(),
            "out of barrier registers; branch left unsynchronized");
      continue;
    }
    S.Branch->insertBeforeTerminator(Instruction(
        Opcode::JoinBarrier, NoRegister, {Operand::barrier(*Id)}));
    S.Pdom->insert(0, Instruction(Opcode::WaitBarrier, NoRegister,
                                  {Operand::barrier(*Id)}));
    ++Report.BarriersInserted;
    if (observe::remarksEnabled())
      observe::emitRemark("pdom-sync", RemarkKind::Applied, F.name(),
                          S.Branch->name(),
                          "join before divergent branch; wait at "
                          "post-dominator '" + S.Pdom->name() + "'",
                          {{"barrier", "b" + std::to_string(*Id)},
                           {"pdom", S.Pdom->name()}});
  }
  return Report;
}
