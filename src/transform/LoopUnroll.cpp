//===- LoopUnroll.cpp - Partial loop unrolling ------------------------------------===//

#include "transform/LoopUnroll.h"

#include "analysis/LoopInfo.h"
#include "ir/CFGUtils.h"
#include "ir/Function.h"

#include <map>
#include <vector>

using namespace simtsr;

bool simtsr::unrollLoop(Function &F, const Loop &L, unsigned Factor) {
  if (Factor < 2)
    return false;
  if (L.latches().size() != 1)
    return false; // Multiple back edges: iteration order is ambiguous.
  for (const BasicBlock *BB : L.blocks())
    for (const Instruction &I : BB->instructions())
      if (isBarrierOp(I.opcode()))
        return false; // Unroll before the synchronization pipeline.

  BasicBlock *Header = L.header();
  BasicBlock *Latch = L.latches().front();
  const std::vector<BasicBlock *> Originals = L.blocks();

  // Clone the loop body Factor-1 times. Register numbers are reused
  // verbatim: in the register-machine IR, re-executing the same
  // instructions *is* another iteration, so no renaming is needed.
  std::vector<std::map<const BasicBlock *, BasicBlock *>> Clones(Factor - 1);
  for (unsigned K = 0; K + 1 < Factor; ++K) {
    for (BasicBlock *BB : Originals) {
      BasicBlock *Copy = F.createBlock(uniqueBlockName(
          F, BB->name() + ".u" + std::to_string(K + 1)));
      for (const Instruction &I : BB->instructions()) {
        // The reconvergence hint stays in the original body only, so a
        // later SR pass gathers once per Factor iterations (Section 6).
        if (I.opcode() == Opcode::Predict)
          continue;
        Copy->append(I);
      }
      Clones[K][BB] = Copy;
    }
  }

  // Remap block operands inside the clones: in-loop targets point at the
  // same copy; the back edge chains to the next copy (the last copy
  // returns to the original header); exits are untouched.
  for (unsigned K = 0; K + 1 < Factor; ++K) {
    for (BasicBlock *BB : Originals) {
      BasicBlock *Copy = Clones[K][BB];
      for (Instruction &I : Copy->instructions()) {
        for (unsigned OpIdx = 0; OpIdx < I.numOperands(); ++OpIdx) {
          Operand &O = I.operand(OpIdx);
          if (!O.isBlock())
            continue;
          BasicBlock *T = O.getBlock();
          if (T == Header) {
            // Back edge: chain to the next copy's header, or close the
            // circle at the original header after the last copy.
            O.setBlock(K + 1 < Factor - 1 ? Clones[K + 1][Header] : Header);
          } else if (L.contains(T)) {
            O.setBlock(Clones[K][T]);
          }
        }
      }
    }
  }

  // The original latch now feeds the first copy instead of the header.
  for (unsigned OpIdx = 0; OpIdx < Latch->terminator().numOperands();
       ++OpIdx) {
    Operand &O = Latch->terminator().operand(OpIdx);
    if (O.isBlock() && O.getBlock() == Header)
      O.setBlock(Clones[0][Header]);
  }

  F.recomputePreds();
  return true;
}
