//===- Coarsen.cpp - Thread coarsening --------------------------------------------===//

#include "transform/Coarsen.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"

using namespace simtsr;

Function *simtsr::coarsenKernel(Module &M, Function *TaskKernel,
                                int64_t NumTasks) {
  if (TaskKernel->numParams() != 1)
    return nullptr;

  Function *Wrapper =
      M.createFunction(TaskKernel->name() + ".coarsened", 0);
  IRBuilder B(Wrapper);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = Wrapper->createBlock("task_header");
  BasicBlock *Body = Wrapper->createBlock("task_body");
  BasicBlock *Exit = Wrapper->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Stride = B.warpSize();
  unsigned Task = B.mov(Operand::reg(Tid));
  B.jmp(Header);

  B.setInsertBlock(Header);
  unsigned More = B.cmpLT(Operand::reg(Task), Operand::imm(NumTasks));
  B.br(Operand::reg(More), Body, Exit);

  B.setInsertBlock(Body);
  B.call(TaskKernel, {Operand::reg(Task)});
  unsigned Next = B.add(Operand::reg(Task), Operand::reg(Stride));
  Body->append(Instruction(Opcode::Mov, Task, {Operand::reg(Next)}));
  B.jmp(Header);

  B.setInsertBlock(Exit);
  B.ret();

  Wrapper->recomputePreds();
  return Wrapper;
}
