//===- AutoDetect.cpp - Section 4.5 automatic detection -------------------------===//

#include "transform/AutoDetect.h"

#include "analysis/Divergence.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"
#include "observe/Remark.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace simtsr;
using observe::RemarkKind;

namespace {

/// Weight of one block: measured cycles when a profile row exists,
/// otherwise static latencies scaled by assumed trip counts for loop
/// nesting below \p BaseDepth.
double blockWeight(const BasicBlock *BB, const Function &F,
                   const LoopInfo &LI, unsigned BaseDepth,
                   const AutoDetectOptions &Opts, bool IsRefill) {
  if (Opts.Profile) {
    auto It = Opts.Profile->Blocks.find({F.name(), BB->name()});
    if (It != Opts.Profile->Blocks.end())
      return static_cast<double>(It->second.Cycles);
    return 0.0; // Never executed in the profile.
  }
  double Weight = 0.0;
  for (const Instruction &I : BB->instructions()) {
    double Cost = Opts.Latency.cost(I.opcode());
    if (IsRefill && I.opcode() == Opcode::Load)
      Cost *= Opts.DivergentLoadPenalty;
    Weight += Cost;
  }
  Loop *L = LI.loopFor(BB);
  unsigned Depth = L ? L->depth() : 0;
  for (unsigned D = BaseDepth; D < Depth; ++D)
    Weight *= Opts.AssumedTripCount;
  return Weight;
}

/// True when any block of \p Blocks contains synchronization that vetoes
/// re-timing the region (Section 4.5's "synchronization requirements").
bool regionHasSyncVeto(const std::vector<BasicBlock *> &Blocks) {
  for (const BasicBlock *BB : Blocks)
    for (const Instruction &I : BB->instructions())
      if (I.opcode() == Opcode::WarpSync || isBarrierOp(I.opcode()) ||
          I.opcode() == Opcode::Predict)
        return true;
  return false;
}

/// Influence region of \p Arm: blocks reachable from it inside \p L
/// without passing \p Stop.
std::vector<BasicBlock *> armBlocks(BasicBlock *Arm, const Loop *L,
                                    const BasicBlock *Stop) {
  std::vector<BasicBlock *> Result;
  std::set<const BasicBlock *> Seen;
  std::vector<BasicBlock *> Worklist = {Arm};
  Seen.insert(Arm);
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    Result.push_back(BB);
    for (BasicBlock *Succ : BB->successors()) {
      if (Succ == Stop || Seen.count(Succ) || !L->contains(Succ))
        continue;
      Seen.insert(Succ);
      Worklist.push_back(Succ);
    }
  }
  return Result;
}

class Detector {
public:
  Detector(Function &F, const AutoDetectOptions &Opts,
           AutoDetectReport &Report)
      : F(F), Opts(Opts), Report(Report), DT(F), PDT(F), LI(F, DT),
        DA(F, PDT) {}

  /// With a profile available, a branch that executed but never split its
  /// lanes is not worth re-timing (static divergence analysis cannot see
  /// this). \returns true when the candidate should be dropped.
  bool branchNeverDivergedInProfile(const BasicBlock *Branch) const {
    if (!Opts.Profile)
      return false;
    auto It = Opts.Profile->Branches.find({F.name(), Branch->name()});
    if (It == Opts.Profile->Branches.end())
      return false; // Never executed: the weight test handles it.
    return It->second.Executions > 0 && It->second.Divergent == 0;
  }

  void run() {
    for (Loop *Outer : LI.loops())
      for (Loop *Inner : Outer->subLoops())
        considerLoopMerge(Outer, Inner);
    for (Loop *L : LI.loops())
      considerIterationDelays(L);
  }

private:
  void finishCandidate(AutoCandidate C,
                       const std::vector<BasicBlock *> &BodyBlocks,
                       const std::vector<BasicBlock *> &RefillBlocks,
                       unsigned BaseDepth) {
    if (regionHasSyncVeto(BodyBlocks) || regionHasSyncVeto(RefillBlocks)) {
      C.Profitable = false;
      C.Reason = "vetoed: region contains synchronization";
      Report.Candidates.push_back(std::move(C));
      return;
    }
    for (const BasicBlock *BB : BodyBlocks) {
      C.BodyWeight +=
          blockWeight(BB, F, LI, BaseDepth, Opts, /*IsRefill=*/false);
      C.RegionBlocks.push_back(BB);
    }
    for (const BasicBlock *BB : RefillBlocks) {
      C.RefillWeight +=
          blockWeight(BB, F, LI, BaseDepth, Opts, /*IsRefill=*/true);
      C.RegionBlocks.push_back(BB);
    }
    C.Score = C.BodyWeight / std::max(C.RefillWeight, 1.0);
    C.Profitable = C.Score >= Opts.MinGainRatio;
    C.Reason = C.Profitable ? "accepted: common code dominates refill"
                            : "rejected: refill cost too high";
    Report.Candidates.push_back(std::move(C));
  }

  void considerLoopMerge(Loop *Outer, Loop *Inner) {
    // Divergent-trip inner loop: some exit branch of Inner is divergent.
    BasicBlock *ExitBranch = nullptr;
    for (const auto &[From, To] : Inner->exitEdges()) {
      (void)To;
      if (From->hasTerminator() &&
          From->terminator().opcode() == Opcode::Br &&
          DA.isDivergentBranch(From)) {
        ExitBranch = From;
        break;
      }
    }
    if (!ExitBranch)
      return;
    if (branchNeverDivergedInProfile(ExitBranch)) {
      AutoCandidate C;
      C.PatternKind = AutoCandidate::Kind::LoopMerge;
      C.F = &F;
      C.RegionStart = Outer->preheader();
      C.Label = Inner->header();
      C.Profitable = false;
      C.Reason = "rejected: exit branch never diverged in profile";
      Report.Candidates.push_back(std::move(C));
      return;
    }
    // The reconvergence point: the heaviest single-predecessor block of
    // the inner loop — where gathering buys the most convergent work. A
    // single-block (do-while) loop gathers at its header; as a fallback
    // use the in-loop continuation of the divergent exit branch.
    BasicBlock *Label = nullptr;
    if (Inner->blocks().size() == 1) {
      Label = Inner->header();
    } else {
      double BestWeight = -1.0;
      for (BasicBlock *BB : Inner->blocks()) {
        if (BB == Inner->header() || BB->predecessors().size() != 1)
          continue;
        double Weight = blockWeight(BB, F, LI, Inner->depth(), Opts,
                                    /*IsRefill=*/false);
        if (Weight > BestWeight) {
          BestWeight = Weight;
          Label = BB;
        }
      }
      if (!Label)
        for (BasicBlock *Succ : ExitBranch->successors())
          if (Inner->contains(Succ) && Succ != Inner->header())
            Label = Succ;
    }
    if (!Label)
      return;
    BasicBlock *Preheader = Outer->preheader();
    AutoCandidate C;
    C.PatternKind = AutoCandidate::Kind::LoopMerge;
    C.F = &F;
    C.RegionStart = Preheader;
    C.Label = Label;
    if (!Preheader) {
      C.Profitable = false;
      C.Reason = "rejected: outer loop has no preheader";
      Report.Candidates.push_back(std::move(C));
      return;
    }
    std::vector<BasicBlock *> Body;
    std::vector<BasicBlock *> Refill;
    for (BasicBlock *BB : Outer->blocks()) {
      if (Inner->contains(BB))
        Body.push_back(BB);
      else
        Refill.push_back(BB);
    }
    finishCandidate(std::move(C), Body, Refill, Outer->depth());
  }

  void considerIterationDelays(Loop *L) {
    for (BasicBlock *BB : L->blocks()) {
      if (!BB->hasTerminator() || BB->terminator().opcode() != Opcode::Br)
        continue;
      if (!DA.isDivergentBranch(BB))
        continue;
      if (branchNeverDivergedInProfile(BB))
        continue;
      auto Succs = BB->successors();
      // Skip loop-exit branches (handled as Loop Merge by the parent).
      if (!L->contains(Succs[0]) || !L->contains(Succs[1]))
        continue;
      BasicBlock *Pdom = PDT.nearestCommonDominator(Succs[0], Succs[1]);
      BasicBlock *Preheader = L->preheader();
      // Weigh both arms; propose the heavier one when it dominates the
      // rest of the loop body.
      for (BasicBlock *Arm : Succs) {
        if (Arm == Pdom || Arm == L->header())
          continue;
        // Candidate label must be reached only through the branch, else
        // gathering there re-times unrelated paths.
        if (Arm->predecessors().size() != 1)
          continue;
        AutoCandidate C;
        C.PatternKind = AutoCandidate::Kind::IterationDelay;
        C.F = &F;
        C.RegionStart = Preheader;
        C.Label = Arm;
        if (!Preheader) {
          C.Profitable = false;
          C.Reason = "rejected: loop has no preheader";
          Report.Candidates.push_back(std::move(C));
          continue;
        }
        std::vector<BasicBlock *> Body = armBlocks(Arm, L, Pdom);
        std::set<const BasicBlock *> InBody(Body.begin(), Body.end());
        std::vector<BasicBlock *> Refill;
        for (BasicBlock *Other : L->blocks())
          if (!InBody.count(Other))
            Refill.push_back(Other);
        finishCandidate(std::move(C), Body, Refill, L->depth());
      }
    }
  }

  Function &F;
  const AutoDetectOptions &Opts;
  AutoDetectReport &Report;
  DominatorTree DT;
  PostDominatorTree PDT;
  LoopInfo LI;
  DivergenceAnalysis DA;
};

} // namespace

AutoDetectReport simtsr::detectReconvergence(Module &M,
                                             const AutoDetectOptions &Opts) {
  AutoDetectReport Report;
  for (size_t I = 0; I < M.size(); ++I) {
    Function &F = *M.function(I);
    F.recomputePreds();
    Detector D(F, Opts, Report);
    D.run();
  }

  // Rank and apply: best score first; a candidate is dropped when its
  // label or start collides with an already accepted one (overlapping
  // predictions are future work per Section 6).
  std::stable_sort(Report.Candidates.begin(), Report.Candidates.end(),
                   [](const AutoCandidate &A, const AutoCandidate &B) {
                     return A.Score > B.Score;
                   });
  if (observe::remarksEnabled())
    for (const AutoCandidate &C : Report.Candidates) {
      char Score[32];
      std::snprintf(Score, sizeof(Score), "%.2f", C.Score);
      observe::emitRemark(
          "auto-detect", RemarkKind::Analysis,
          C.F ? C.F->name() : std::string(),
          C.Label ? C.Label->name() : std::string(),
          std::string(C.PatternKind == AutoCandidate::Kind::LoopMerge
                          ? "loop-merge"
                          : "iteration-delay") +
              " candidate: " + C.Reason,
          {{"score", Score},
           {"profitable", C.Profitable ? "yes" : "no"},
           {"pattern", C.PatternKind == AutoCandidate::Kind::LoopMerge
                           ? "loop-merge"
                           : "iteration-delay"}});
    }
  if (!Opts.Apply)
    return Report;
  std::set<const BasicBlock *> Claimed;
  for (AutoCandidate &C : Report.Candidates) {
    if (!C.Profitable)
      continue;
    bool Overlaps = Claimed.count(C.RegionStart) || Claimed.count(C.Label);
    for (const BasicBlock *BB : C.RegionBlocks)
      Overlaps |= Claimed.count(BB) != 0;
    if (Overlaps) {
      C.Profitable = false;
      C.Reason = "rejected: overlaps a higher-scoring prediction";
      continue;
    }
    Claimed.insert(C.RegionStart);
    Claimed.insert(C.Label);
    Claimed.insert(C.RegionBlocks.begin(), C.RegionBlocks.end());
    C.RegionStart->insertBeforeTerminator(Instruction(
        Opcode::Predict, NoRegister, {Operand::block(C.Label)}));
    ++Report.Inserted;
    if (observe::remarksEnabled())
      observe::emitRemark("auto-detect", RemarkKind::Applied,
                          C.F ? C.F->name() : std::string(),
                          C.RegionStart->name(),
                          "inserted prediction toward '" + C.Label->name() +
                              "'",
                          {{"label", C.Label->name()}});
  }
  return Report;
}
