//===- PdomSync.h - Baseline post-dominator reconvergence ------*- C++ -*-===//
///
/// \file
/// The baseline every GPU compiler implements and the paper's point of
/// comparison: for each divergent conditional branch, join a convergence
/// barrier before the branch and wait on it at the branch's immediate
/// post-dominator, so diverged threads reconverge at the earliest point
/// where all of them are guaranteed to arrive.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_PDOMSYNC_H
#define SIMTSR_TRANSFORM_PDOMSYNC_H

#include "analysis/Divergence.h"
#include "transform/BarrierRegistry.h"

#include <string>
#include <vector>

namespace simtsr {

struct PdomSyncReport {
  unsigned DivergentBranches = 0;
  unsigned BarriersInserted = 0;
  /// Branches skipped because they have no common post-dominator or the
  /// register file ran out.
  unsigned Skipped = 0;
  /// Subset of Skipped caused by barrier-register exhaustion: the branch
  /// compiles without reconvergence sync (correct, just less convergent).
  unsigned OutOfRegisters = 0;
  std::vector<std::string> Diagnostics;
};

/// Inserts PDOM join/wait pairs for every divergent branch of \p F.
/// Barriers come from \p Registry's high end.
PdomSyncReport insertPdomSync(Function &F, const DivergenceAnalysis &DA,
                              BarrierRegistry &Registry);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_PDOMSYNC_H
